package ecfrm

// One benchmark per table/figure of the paper's evaluation (§VI), plus the
// ablations DESIGN.md calls out. Each figure benchmark replays the paper's
// randomized protocol (at a trial count scaled for benchmarking) and reports
// the regenerated series as custom metrics:
//
//	<form>_<params>_MBps   mean read speed of that form (figures 8a-8b, 9c-9d)
//	<form>_<params>_cost   mean degraded read cost (figures 9a-9b)
//	gain_vs_std_<params>   EC-FRM's relative improvement over standard
//
// Run with: go test -bench=Fig -benchmem
// The full-protocol tables come from: go run ./cmd/ecfrmbench

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/disksim"
	"repro/internal/experiment"
	"repro/internal/layout"
)

// benchOpts scales the paper's protocol down so a single benchmark iteration
// stays subsecond; cmd/ecfrmbench runs the full 2000/5000-trial protocol.
func benchOpts() experiment.Options {
	return experiment.Options{NormalTrials: 250, DegradedTrials: 400, TotalElements: 600}
}

func benchFigure(b *testing.B, id string) {
	fig, err := experiment.FigureByID(id)
	if err != nil {
		b.Fatal(err)
	}
	var res *experiment.FigureResult
	for i := 0; i < b.N; i++ {
		res, err = experiment.Run(fig, benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	family := fig.Specs[0].Family
	unit := "MBps"
	if fig.Metric == experiment.MetricDegradedCost {
		unit = "cost"
	}
	for i, spec := range fig.Specs {
		label := strings.NewReplacer("(", "", ")", "", ",", "_").Replace(spec.Label())
		for _, form := range experiment.Forms {
			name := fmt.Sprintf("%s_%s_%s", experiment.FormLabel(form, family), label, unit)
			b.ReportMetric(res.Value(form, i), name)
		}
		b.ReportMetric(100*res.Improvement(layout.FormStandard, i),
			fmt.Sprintf("gain_vs_std_%s_pct", label))
	}
}

// BenchmarkFig8aNormalReadRS regenerates Figure 8(a): normal read speed for
// RS, R-RS, and EC-FRM-RS at (6,3), (8,4), (10,5).
func BenchmarkFig8aNormalReadRS(b *testing.B) { benchFigure(b, "8a") }

// BenchmarkFig8bNormalReadLRC regenerates Figure 8(b): normal read speed for
// LRC, R-LRC, and EC-FRM-LRC at (6,2,2), (8,2,3), (10,2,4).
func BenchmarkFig8bNormalReadLRC(b *testing.B) { benchFigure(b, "8b") }

// BenchmarkFig9aDegradedCostRS regenerates Figure 9(a): degraded read cost
// for the RS family.
func BenchmarkFig9aDegradedCostRS(b *testing.B) { benchFigure(b, "9a") }

// BenchmarkFig9bDegradedCostLRC regenerates Figure 9(b): degraded read cost
// for the LRC family.
func BenchmarkFig9bDegradedCostLRC(b *testing.B) { benchFigure(b, "9b") }

// BenchmarkFig9cDegradedSpeedRS regenerates Figure 9(c): degraded read speed
// for the RS family.
func BenchmarkFig9cDegradedSpeedRS(b *testing.B) { benchFigure(b, "9c") }

// BenchmarkFig9dDegradedSpeedLRC regenerates Figure 9(d): degraded read
// speed for the LRC family.
func BenchmarkFig9dDegradedSpeedLRC(b *testing.B) { benchFigure(b, "9d") }

// BenchmarkTable1Configs exercises every Table I configuration's encode path
// end-to-end (stripe encode under the EC-FRM layout), reporting bytes/s.
func BenchmarkTable1Configs(b *testing.B) {
	specs := append(append([]experiment.CodeSpec{}, experiment.RSConfigs...), experiment.LRCConfigs...)
	for _, spec := range specs {
		b.Run(spec.Family+spec.Label(), func(b *testing.B) {
			code, err := spec.Build()
			if err != nil {
				b.Fatal(err)
			}
			scheme, err := NewScheme(code, FormECFRM)
			if err != nil {
				b.Fatal(err)
			}
			const elem = 64 << 10
			data := make([][]byte, scheme.DataPerStripe())
			for i := range data {
				data[i] = make([]byte, elem)
			}
			b.SetBytes(int64(len(data) * elem))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := scheme.EncodeStripe(data); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Ablations (DESIGN.md §5) -------------------------------------------

// BenchmarkAblationElementSize varies the element size around the paper's
// 1 MB and reports the EC-FRM-vs-standard normal-read gain at each size.
// The gain grows with element size because positioning time amortizes away
// and the max-load term dominates.
func BenchmarkAblationElementSize(b *testing.B) {
	for _, size := range []int{64 << 10, 256 << 10, 1 << 20, 4 << 20} {
		b.Run(fmt.Sprintf("elem_%dKiB", size>>10), func(b *testing.B) {
			fig, _ := experiment.FigureByID("8b")
			opt := benchOpts()
			opt.ElementBytes = size
			var res *experiment.FigureResult
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = experiment.Run(fig, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Improvement(layout.FormStandard, 0), "gain_622_pct")
		})
	}
}

// BenchmarkAblationReadSize varies the maximum request size (paper: 20
// elements). Small requests fit inside k disks, so EC-FRM's extra
// parallelism matters less; the gain rises with the size cap.
func BenchmarkAblationReadSize(b *testing.B) {
	for _, maxSize := range []int{4, 10, 20, 40} {
		b.Run(fmt.Sprintf("max_%d", maxSize), func(b *testing.B) {
			fig, _ := experiment.FigureByID("8b")
			opt := benchOpts()
			opt.MaxReadSize = maxSize
			var res *experiment.FigureResult
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = experiment.Run(fig, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Improvement(layout.FormStandard, 0), "gain_622_pct")
		})
	}
}

// BenchmarkAblationRecoveryPolicy compares the two degraded-read recovery
// policies on EC-FRM-LRC(6,2,2): min-cost (paper-faithful) vs load-balance.
func BenchmarkAblationRecoveryPolicy(b *testing.B) {
	code, err := NewLRC(6, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	scheme, err := NewScheme(code, FormECFRM)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewWorkload(WorkloadConfig{TotalElements: 600, Disks: scheme.N(), Seed: 11})
	if err != nil {
		b.Fatal(err)
	}
	trials := gen.DegradedSeries(400)
	for _, pol := range []struct {
		name   string
		policy RecoveryPolicy
	}{{"min_cost", PolicyMinCost}, {"balance", PolicyBalance}} {
		b.Run(pol.name, func(b *testing.B) {
			var cost, maxLoad float64
			for i := 0; i < b.N; i++ {
				cost, maxLoad = 0, 0
				for _, tr := range trials {
					p, err := scheme.PlanDegradedReadPolicy(tr.Start, tr.Count, []int{tr.FailedDisk}, pol.policy)
					if err != nil {
						b.Fatal(err)
					}
					cost += p.Cost()
					maxLoad += float64(p.MaxLoad())
				}
			}
			b.ReportMetric(cost/float64(len(trials)), "cost")
			b.ReportMetric(maxLoad/float64(len(trials)), "max_load")
		})
	}
}

// BenchmarkAblationDiskModel varies the positioning/transfer ratio to show
// the EC-FRM speedup is robust to the disk model: faster positioning makes
// the max-load term dominate and the gain larger, not smaller.
func BenchmarkAblationDiskModel(b *testing.B) {
	for _, pos := range []time.Duration{2 * time.Millisecond, 8 * time.Millisecond, 15 * time.Millisecond, 30 * time.Millisecond} {
		b.Run(fmt.Sprintf("pos_%v", pos), func(b *testing.B) {
			cfg := disksim.DefaultConfig()
			cfg.Positioning = pos
			fig, _ := experiment.FigureByID("8a")
			opt := benchOpts()
			opt.Disk = cfg
			var res *experiment.FigureResult
			var err error
			for i := 0; i < b.N; i++ {
				if res, err = experiment.Run(fig, opt); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(100*res.Improvement(layout.FormStandard, 0), "gain_63_pct")
		})
	}
}

// --- Extension experiments (DESIGN.md §7) ---------------------------------

// BenchmarkMotivationTable regenerates the §III-A vertical-vs-horizontal
// comparison, reporting each code's normal-read speed.
func BenchmarkMotivationTable(b *testing.B) {
	var rows []experiment.MotivationRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiment.MotivationTable(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := strings.NewReplacer("(", "_", ")", "", ",", "_", "-", "_").Replace(r.Name)
		b.ReportMetric(r.NormalSpeedMBps, name+"_MBps")
	}
}

// BenchmarkRecoverySweep regenerates the single-disk recovery table,
// reporting each scheme's recovery amplification.
func BenchmarkRecoverySweep(b *testing.B) {
	var rows []experiment.RecoveryRow
	var err error
	for i := 0; i < b.N; i++ {
		if rows, err = experiment.RecoverySweep(benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := strings.NewReplacer("(", "_", ")", "", ",", "_", "-", "_").Replace(r.Scheme)
		b.ReportMetric(r.Amplification, name+"_amp")
	}
}

// BenchmarkConcurrencySweep regenerates the open-loop concurrency extension,
// reporting mean latency (ms) per form at a moderately loaded arrival rate.
func BenchmarkConcurrencySweep(b *testing.B) {
	var points []experiment.ConcurrencyPoint
	var err error
	ias := []time.Duration{120 * time.Millisecond, 60 * time.Millisecond}
	for i := 0; i < b.N; i++ {
		if points, err = experiment.ConcurrencySweep(ias, 400, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		name := fmt.Sprintf("%s_ia%dms_lat_ms", p.Form, p.InterArrival.Milliseconds())
		b.ReportMetric(float64(p.MeanLatency.Microseconds())/1000, name)
	}
}

// BenchmarkAblationRotationStride varies the rotated layout's per-stripe
// rotation amount on the (6,2,2) shape. Measured result: moderate strides
// (2-3) beat the conventional stride 1 by ~13% — they hop the next stripe's
// data window clear of the previous stripe's tail — while large strides
// (5, 9) wrap around into collisions and lose. None approaches EC-FRM,
// which removes the window entirely.
func BenchmarkAblationRotationStride(b *testing.B) {
	code, err := NewLRC(6, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewWorkload(WorkloadConfig{TotalElements: 600, Disks: code.N(), Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	trials := gen.NormalSeries(400)
	arrCfg := DefaultDiskConfig()
	for _, stride := range []int{1, 2, 3, 5, 9} {
		b.Run(fmt.Sprintf("stride_%d", stride), func(b *testing.B) {
			lay := layout.NewRotatedStride(code.N(), code.K(), stride)
			arr, err := NewDiskArray(code.N(), arrCfg, 14)
			if err != nil {
				b.Fatal(err)
			}
			var speed float64
			for i := 0; i < b.N; i++ {
				speed = 0
				for _, tr := range trials {
					loads := make([]int, code.N())
					for x := tr.Start; x < tr.Start+tr.Count; x++ {
						stripe := x / lay.DataPerStripe()
						p := lay.DataPos(x % lay.DataPerStripe())
						loads[lay.Disk(stripe, p.Col)]++
					}
					t := arr.ServeRead(loads, 1<<20)
					speed += float64(tr.Count) / 1 / t.Seconds()
				}
			}
			b.ReportMetric(speed/float64(len(trials)), "MBps")
		})
	}
}

// BenchmarkAblationHeterogeneity varies per-disk bandwidth diversity
// (mixed-generation arrays) and reports EC-FRM's normal-read gain. The
// paper's premise — the most loaded disk is usually the slowest — bites
// harder the more the disks differ, and EC-FRM's spreading keeps requests
// off a single slow+hot disk.
func BenchmarkAblationHeterogeneity(b *testing.B) {
	code, err := NewLRC(6, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := NewWorkload(WorkloadConfig{TotalElements: 600, Disks: code.N(), Seed: 15})
	if err != nil {
		b.Fatal(err)
	}
	trials := gen.NormalSeries(400)
	for _, spread := range []float64{0, 0.2, 0.4, 0.6} {
		b.Run(fmt.Sprintf("spread_%02.0f", spread*100), func(b *testing.B) {
			var gain float64
			for i := 0; i < b.N; i++ {
				speeds := map[Form]float64{}
				for _, form := range []Form{FormStandard, FormECFRM} {
					scheme, err := NewScheme(code, form)
					if err != nil {
						b.Fatal(err)
					}
					arr, err := disksim.NewHeterogeneousArray(scheme.N(), DefaultDiskConfig(), 16, spread)
					if err != nil {
						b.Fatal(err)
					}
					var sum float64
					for _, tr := range trials {
						p, err := scheme.PlanNormalRead(tr.Start, tr.Count)
						if err != nil {
							b.Fatal(err)
						}
						t := arr.ServeRead(p.Loads, 1<<20)
						sum += disksim.SpeedMBps(tr.Count<<20, t)
					}
					speeds[form] = sum / float64(len(trials))
				}
				gain = 100 * (speeds[FormECFRM]/speeds[FormStandard] - 1)
			}
			b.ReportMetric(gain, "gain_pct")
		})
	}
}

// BenchmarkBandwidthSweep regenerates the client-bandwidth sensitivity
// extension, reporting each form's speed at the fat- and thin-link ends.
func BenchmarkBandwidthSweep(b *testing.B) {
	var points []experiment.BandwidthPoint
	var err error
	for i := 0; i < b.N; i++ {
		if points, err = experiment.BandwidthSweep([]float64{1250, 25}, benchOpts()); err != nil {
			b.Fatal(err)
		}
	}
	for _, p := range points {
		b.ReportMetric(p.SpeedMBps, fmt.Sprintf("%s_client%.0f_MBps", p.Form, p.ClientLinkMBps))
	}
}
