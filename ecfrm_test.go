package ecfrm

import (
	"bytes"
	"math/rand"
	"testing"
	"time"
)

func TestPublicQuickstartFlow(t *testing.T) {
	// The README's quickstart, as a test: encode, fail a disk, read
	// degraded, recover, verify.
	code, err := NewLRC(6, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	scheme, err := NewScheme(code, FormECFRM)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(scheme, 4096)
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096*scheme.DataPerStripe()*2)
	rand.New(rand.NewSource(1)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	res, err := st.ReadAt(0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Fatal("normal read mismatch")
	}
	st.FailDisk(3)
	res, err = st.ReadAt(100, 9000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, payload[100:9100]) {
		t.Fatal("degraded read mismatch")
	}
	if _, err := st.RecoverDisk(3); err != nil {
		t.Fatal(err)
	}
	if bad, err := st.Scrub(); err != nil || bad != nil {
		t.Fatalf("scrub after recovery: %v %v", bad, err)
	}
}

func TestPublicRSMDS(t *testing.T) {
	code, err := NewRS(6, 3)
	if err != nil {
		t.Fatal(err)
	}
	if code.FaultTolerance() != 3 {
		t.Fatalf("RS(6,3) tolerance = %d", code.FaultTolerance())
	}
	for _, form := range []Form{FormStandard, FormRotated, FormECFRM} {
		scheme, err := NewScheme(code, form)
		if err != nil {
			t.Fatal(err)
		}
		if scheme.FaultTolerance() != 3 {
			t.Fatalf("%s: tolerance %d", scheme.Name(), scheme.FaultTolerance())
		}
	}
}

func TestPublicPlanAPIs(t *testing.T) {
	code, _ := NewLRC(6, 2, 2)
	scheme, _ := NewScheme(code, FormECFRM)
	p, err := scheme.PlanNormalRead(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxLoad() != 1 {
		t.Fatalf("EC-FRM 8-element read max load = %d, want 1 (Figure 7a)", p.MaxLoad())
	}
	pd, err := scheme.PlanDegradedRead(0, 8, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if pd.Cost() <= 1.0 && pd.Loads[2] != 0 {
		t.Fatal("degraded plan malformed")
	}
	pb, err := scheme.PlanDegradedReadPolicy(0, 8, []int{2}, PolicyBalance)
	if err != nil {
		t.Fatal(err)
	}
	if pb.MaxLoad() > pd.MaxLoad() {
		t.Fatal("balance policy produced worse max load than min-cost")
	}
}

func TestPublicDiskArrayAndSpeed(t *testing.T) {
	arr, err := NewDiskArray(10, DefaultDiskConfig(), 5)
	if err != nil {
		t.Fatal(err)
	}
	d := arr.ServeRead([]int{1, 1, 0, 0, 0, 0, 0, 0, 0, 0}, 1<<20)
	if d <= 0 {
		t.Fatal("non-positive service time")
	}
	if s := SpeedMBps(2<<20, d); s <= 0 {
		t.Fatal("non-positive speed")
	}
	if got := SpeedMBps(5e6, 50*time.Millisecond); got != 100 {
		t.Fatalf("SpeedMBps = %v, want 100", got)
	}
}

func TestPublicWorkload(t *testing.T) {
	gen, err := NewWorkload(WorkloadConfig{TotalElements: 100, Disks: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tr := gen.Degraded()
	if tr.FailedDisk < 0 || tr.FailedDisk >= 10 || tr.Count < 1 || tr.Count > 20 {
		t.Fatalf("bad trial %+v", tr)
	}
}

func TestPublicCluster(t *testing.T) {
	code, _ := NewLRC(6, 2, 2)
	scheme, _ := NewScheme(code, FormECFRM)
	cl, err := NewCluster(scheme, DefaultClusterConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.Read(0, 8, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DiskBound || res.NetworkBytes != 8<<20 {
		t.Fatalf("cluster read wrong: %+v", res)
	}
}
