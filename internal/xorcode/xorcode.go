// Package xorcode is a generic engine for XOR-linear array codes: a code is
// declared as a grid of data cells plus an ordered list of parity equations
// (each parity cell = XOR of previously defined cells), and the engine
// derives encoding, whole-disk reconstruction, and decodability analysis.
//
// The declaration style covers the classic array codes the EC-FRM paper
// surveys (§II-B): vertical codes (X-Code, WEAVER — see internal/vertical)
// and horizontal RAID-6 array codes (RDP, EVENODD — see internal/raid6),
// including codes like RDP whose diagonal parity is computed over another
// parity column.
//
// Decoding is exact: erased cells are unknowns in the GF(2) constraint
// system given by all equations, solved per byte-vector with
// bitmatrix.SolveVec; a failure pattern is recoverable iff the system has
// full column rank, so decodability is decided, not pattern-matched.
package xorcode

import (
	"errors"
	"fmt"

	"repro/internal/bitmatrix"
)

// ErrUnrecoverable is returned when a failure pattern cannot be decoded.
var ErrUnrecoverable = errors.New("xorcode: failure pattern unrecoverable")

// ErrShardSize flags missing or ragged cell data.
var ErrShardSize = errors.New("xorcode: invalid cell sizes")

// CellRef addresses a cell in the (rows × disks) array.
type CellRef struct {
	Row  int
	Disk int
}

// Equation defines one parity cell as the XOR of its sources.
type Equation struct {
	Target  CellRef
	Sources []CellRef
}

// Code is an XOR-linear array code.
type Code struct {
	name  string
	rows  int
	disks int
	data  map[CellRef]bool
	eqs   []Equation      // in evaluation order
	byTgt map[CellRef]int // target → eqs index
}

// New validates and builds a code. Every cell must be either a data cell or
// the target of exactly one equation; equation sources must be data cells or
// targets of earlier equations (so Encode can evaluate in order).
func New(name string, rows, disks int, data []CellRef, eqs []Equation) (*Code, error) {
	if rows < 1 || disks < 1 {
		return nil, fmt.Errorf("xorcode: invalid array %d×%d", rows, disks)
	}
	c := &Code{
		name: name, rows: rows, disks: disks,
		data:  make(map[CellRef]bool, len(data)),
		eqs:   eqs,
		byTgt: make(map[CellRef]int, len(eqs)),
	}
	inRange := func(ref CellRef) bool {
		return ref.Row >= 0 && ref.Row < rows && ref.Disk >= 0 && ref.Disk < disks
	}
	for _, ref := range data {
		if !inRange(ref) {
			return nil, fmt.Errorf("xorcode: data cell %v out of %d×%d", ref, rows, disks)
		}
		if c.data[ref] {
			return nil, fmt.Errorf("xorcode: duplicate data cell %v", ref)
		}
		c.data[ref] = true
	}
	defined := make(map[CellRef]bool, len(eqs))
	for i, eq := range eqs {
		if !inRange(eq.Target) {
			return nil, fmt.Errorf("xorcode: equation %d target %v out of range", i, eq.Target)
		}
		if c.data[eq.Target] {
			return nil, fmt.Errorf("xorcode: equation %d target %v is a data cell", i, eq.Target)
		}
		if defined[eq.Target] {
			return nil, fmt.Errorf("xorcode: cell %v defined twice", eq.Target)
		}
		if len(eq.Sources) == 0 {
			return nil, fmt.Errorf("xorcode: equation %d has no sources", i)
		}
		seen := make(map[CellRef]bool, len(eq.Sources))
		for _, s := range eq.Sources {
			if !inRange(s) {
				return nil, fmt.Errorf("xorcode: equation %d source %v out of range", i, s)
			}
			if !c.data[s] && !defined[s] {
				return nil, fmt.Errorf("xorcode: equation %d source %v is neither data nor previously defined parity", i, s)
			}
			if seen[s] {
				return nil, fmt.Errorf("xorcode: equation %d repeats source %v", i, s)
			}
			seen[s] = true
		}
		defined[eq.Target] = true
		c.byTgt[eq.Target] = i
	}
	if len(c.data)+len(eqs) != rows*disks {
		return nil, fmt.Errorf("xorcode: %d data + %d parity cells cover %d of %d cells",
			len(c.data), len(eqs), len(c.data)+len(eqs), rows*disks)
	}
	return c, nil
}

// Name identifies the code.
func (c *Code) Name() string { return c.name }

// Rows returns the number of rows in the array.
func (c *Code) Rows() int { return c.rows }

// Disks returns the number of disks (columns).
func (c *Code) Disks() int { return c.disks }

// IsData reports whether the cell holds data.
func (c *Code) IsData(ref CellRef) bool { return c.data[ref] }

// DataCells returns the number of data cells per array.
func (c *Code) DataCells() int { return len(c.data) }

// StorageOverhead returns total cells / data cells.
func (c *Code) StorageOverhead() float64 {
	return float64(c.rows*c.disks) / float64(len(c.data))
}

// DataRefs lists the data cells in row-major order — the order user bytes
// fill the array.
func (c *Code) DataRefs() []CellRef {
	var out []CellRef
	for r := 0; r < c.rows; r++ {
		for d := 0; d < c.disks; d++ {
			ref := CellRef{r, d}
			if c.data[ref] {
				out = append(out, ref)
			}
		}
	}
	return out
}

// Idx flattens a cell reference into the row-major cells index.
func (c *Code) Idx(ref CellRef) int { return ref.Row*c.disks + ref.Disk }

// Encode fills the parity cells of a full array in place. cells is indexed
// row-major; data cells must be non-nil and equally sized.
func (c *Code) Encode(cells [][]byte) error {
	if len(cells) != c.rows*c.disks {
		return fmt.Errorf("%w: got %d cells, want %d", ErrShardSize, len(cells), c.rows*c.disks)
	}
	size := -1
	for ref := range c.data {
		cell := cells[c.Idx(ref)]
		if cell == nil {
			return fmt.Errorf("%w: data cell %v is nil", ErrShardSize, ref)
		}
		if size == -1 {
			size = len(cell)
		}
		if len(cell) != size {
			return fmt.Errorf("%w: cell %v has %d bytes, want %d", ErrShardSize, ref, len(cell), size)
		}
	}
	for _, eq := range c.eqs {
		out := make([]byte, size)
		for _, s := range eq.Sources {
			src := cells[c.Idx(s)]
			for i := range out {
				out[i] ^= src[i]
			}
		}
		cells[c.Idx(eq.Target)] = out
	}
	return nil
}

// CanRecover reports whether losing the given disks entirely is decodable.
func (c *Code) CanRecover(failedDisks []int) bool {
	failed := make(map[int]bool)
	for _, d := range failedDisks {
		if d < 0 || d >= c.disks {
			return false
		}
		failed[d] = true
	}
	unknowns, A := c.buildSystem(failed, nil, nil)
	if len(unknowns) == 0 {
		return true
	}
	return A.Rank() == len(unknowns)
}

// buildSystem constructs the GF(2) constraint matrix over the erased cells
// of the failed disks. If cells and rhsOut are non-nil, the constant side of
// each kept equation (XOR of its known cells) is appended to rhsOut;
// equations touching no unknown are dropped.
func (c *Code) buildSystem(failed map[int]bool, cells [][]byte, rhsOut *[][]byte) ([]CellRef, *bitmatrix.Matrix) {
	unknownIdx := make(map[CellRef]int)
	var unknowns []CellRef
	for r := 0; r < c.rows; r++ {
		for d := 0; d < c.disks; d++ {
			if failed[d] {
				ref := CellRef{r, d}
				unknownIdx[ref] = len(unknowns)
				unknowns = append(unknowns, ref)
			}
		}
	}
	size := 0
	if cells != nil {
		for _, cl := range cells {
			if cl != nil {
				size = len(cl)
				break
			}
		}
	}
	var rows [][]int
	for _, eq := range c.eqs {
		var row []int
		var cst []byte
		if cells != nil {
			cst = make([]byte, size)
		}
		touch := func(ref CellRef) {
			if i, ok := unknownIdx[ref]; ok {
				row = append(row, i)
				return
			}
			if cells != nil {
				src := cells[c.Idx(ref)]
				for b := range cst {
					cst[b] ^= src[b]
				}
			}
		}
		touch(eq.Target)
		for _, s := range eq.Sources {
			touch(s)
		}
		if len(row) == 0 {
			continue
		}
		rows = append(rows, row)
		if rhsOut != nil {
			*rhsOut = append(*rhsOut, cst)
		}
	}
	A := bitmatrix.New(len(rows), len(unknowns))
	for i, row := range rows {
		for _, j := range row {
			A.Set(i, j, true)
		}
	}
	return unknowns, A
}

// ReconstructDisks rebuilds every cell of the failed disks in place. cells
// is the full array with the failed disks' cells nil.
func (c *Code) ReconstructDisks(cells [][]byte, failedDisks []int) error {
	if len(cells) != c.rows*c.disks {
		return fmt.Errorf("%w: got %d cells, want %d", ErrShardSize, len(cells), c.rows*c.disks)
	}
	failed := make(map[int]bool)
	for _, d := range failedDisks {
		if d < 0 || d >= c.disks {
			return fmt.Errorf("%w: disk %d out of range", ErrShardSize, d)
		}
		failed[d] = true
	}
	if len(failed) == 0 {
		return nil
	}
	// Every cell on a surviving disk must be present and equally sized;
	// failed-disk cells are treated as erased regardless of content.
	size := -1
	for r := 0; r < c.rows; r++ {
		for d := 0; d < c.disks; d++ {
			if failed[d] {
				cells[c.Idx(CellRef{Row: r, Disk: d})] = nil
				continue
			}
			cell := cells[c.Idx(CellRef{Row: r, Disk: d})]
			if cell == nil {
				return fmt.Errorf("%w: cell (%d,%d) nil on surviving disk", ErrShardSize, r, d)
			}
			if size == -1 {
				size = len(cell)
			}
			if len(cell) != size {
				return fmt.Errorf("%w: cell (%d,%d) has %d bytes, want %d", ErrShardSize, r, d, len(cell), size)
			}
		}
	}
	var rhs [][]byte
	unknowns, A := c.buildSystem(failed, cells, &rhs)
	if len(unknowns) == 0 {
		return nil
	}
	sol, err := A.SolveVec(rhs)
	if err != nil {
		return fmt.Errorf("%w: disks %v", ErrUnrecoverable, failedDisks)
	}
	for i, ref := range unknowns {
		cells[c.Idx(ref)] = sol[i]
	}
	return nil
}
