package xorcode

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
)

// mirror4 is a tiny hand-made code: 1 row × 4 disks, data on disks 0,1,
// parity p2 = d0^d1, parity p3 = d0^p2 (= d1) — exercises parity-referencing-
// parity and gives known decode behaviour.
func mirror4(t testing.TB) *Code {
	t.Helper()
	c, err := New("mirror4", 1, 4,
		[]CellRef{{0, 0}, {0, 1}},
		[]Equation{
			{Target: CellRef{0, 2}, Sources: []CellRef{{0, 0}, {0, 1}}},
			{Target: CellRef{0, 3}, Sources: []CellRef{{0, 0}, {0, 2}}},
		})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	data := []CellRef{{0, 0}}
	checks := []struct {
		name string
		fn   func() (*Code, error)
	}{
		{"zeroRows", func() (*Code, error) { return New("x", 0, 2, data, nil) }},
		{"dataOutOfRange", func() (*Code, error) {
			return New("x", 1, 2, []CellRef{{0, 2}}, nil)
		}},
		{"duplicateData", func() (*Code, error) {
			return New("x", 1, 2, []CellRef{{0, 0}, {0, 0}}, nil)
		}},
		{"targetIsData", func() (*Code, error) {
			return New("x", 1, 2, []CellRef{{0, 0}, {0, 1}},
				[]Equation{{Target: CellRef{0, 0}, Sources: []CellRef{{0, 1}}}})
		}},
		{"targetTwice", func() (*Code, error) {
			return New("x", 1, 3, []CellRef{{0, 0}},
				[]Equation{
					{Target: CellRef{0, 1}, Sources: []CellRef{{0, 0}}},
					{Target: CellRef{0, 1}, Sources: []CellRef{{0, 0}}},
				})
		}},
		{"emptySources", func() (*Code, error) {
			return New("x", 1, 2, []CellRef{{0, 0}},
				[]Equation{{Target: CellRef{0, 1}}})
		}},
		{"forwardReference", func() (*Code, error) {
			return New("x", 1, 3, []CellRef{{0, 0}},
				[]Equation{
					{Target: CellRef{0, 1}, Sources: []CellRef{{0, 2}}},
					{Target: CellRef{0, 2}, Sources: []CellRef{{0, 0}}},
				})
		}},
		{"repeatedSource", func() (*Code, error) {
			return New("x", 1, 2, []CellRef{{0, 0}},
				[]Equation{{Target: CellRef{0, 1}, Sources: []CellRef{{0, 0}, {0, 0}}}})
		}},
		{"uncoveredCells", func() (*Code, error) {
			return New("x", 1, 3, []CellRef{{0, 0}},
				[]Equation{{Target: CellRef{0, 1}, Sources: []CellRef{{0, 0}}}})
		}},
	}
	for _, c := range checks {
		if _, err := c.fn(); err == nil {
			t.Errorf("%s: constructor succeeded", c.name)
		}
	}
}

func TestParityOfParityEncoding(t *testing.T) {
	c := mirror4(t)
	cells := [][]byte{{0x12}, {0x34}, nil, nil}
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	if cells[2][0] != 0x12^0x34 {
		t.Fatalf("p2 = %#x", cells[2][0])
	}
	if cells[3][0] != 0x34 { // d0 ^ (d0^d1) = d1
		t.Fatalf("p3 = %#x, want d1", cells[3][0])
	}
}

func TestAccessors(t *testing.T) {
	c := mirror4(t)
	if c.Name() != "mirror4" || c.Rows() != 1 || c.Disks() != 4 || c.DataCells() != 2 {
		t.Fatal("accessors wrong")
	}
	if !c.IsData(CellRef{0, 0}) || c.IsData(CellRef{0, 2}) {
		t.Fatal("IsData wrong")
	}
	if c.StorageOverhead() != 2.0 {
		t.Fatalf("overhead = %v", c.StorageOverhead())
	}
	refs := c.DataRefs()
	if len(refs) != 2 || refs[0] != (CellRef{0, 0}) || refs[1] != (CellRef{0, 1}) {
		t.Fatalf("DataRefs = %v", refs)
	}
}

func TestMirrorDoubleFailureDecodability(t *testing.T) {
	// mirror4 is effectively d0,d1 plus (d0^d1) and d1 again. Losing
	// {d0, p2} leaves d1, p3=d1 — d0 unrecoverable? p3 = d0^p2; with p3
	// and d1 known but p2 unknown too: equations p2=d0^d1, p3=d0^p2 →
	// two equations, two unknowns (d0,p2): p3 = d0^p2 = d1... singular?
	// Substitute: p2 = d0^d1 → p3 = d1: no info on d0. Unrecoverable.
	c := mirror4(t)
	if c.CanRecover([]int{0, 2}) {
		t.Fatal("{d0,p2} must be unrecoverable in mirror4")
	}
	// Losing {d1, p3}: p2 = d0^d1 gives d1 ✓, p3 = d0^p2 recomputable ✓.
	if !c.CanRecover([]int{1, 3}) {
		t.Fatal("{d1,p3} must be recoverable")
	}
	cells := [][]byte{{0x12}, {0x34}, nil, nil}
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	broken := [][]byte{cells[0], nil, cells[2], nil}
	if err := c.ReconstructDisks(broken, []int{1, 3}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(broken[1], cells[1]) || !bytes.Equal(broken[3], cells[3]) {
		t.Fatal("reconstruction wrong")
	}
}

func TestEncodeErrors(t *testing.T) {
	c := mirror4(t)
	if err := c.Encode(make([][]byte, 3)); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short: %v", err)
	}
	if err := c.Encode([][]byte{{1}, nil, nil, nil}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("nil data: %v", err)
	}
	if err := c.Encode([][]byte{{1}, {2, 3}, nil, nil}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged: %v", err)
	}
}

func TestReconstructErrors(t *testing.T) {
	c := mirror4(t)
	if err := c.ReconstructDisks(make([][]byte, 2), []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short: %v", err)
	}
	if err := c.ReconstructDisks(make([][]byte, 4), []int{7}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("bad disk: %v", err)
	}
	if err := c.ReconstructDisks(make([][]byte, 4), []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("all nil: %v", err)
	}
	good := [][]byte{{1}, {2}, nil, nil}
	if err := c.Encode(good); err != nil {
		t.Fatal(err)
	}
	if err := c.ReconstructDisks(good, nil); err != nil {
		t.Fatal("no-failure reconstruct must be a no-op")
	}
	// A nil cell on a surviving disk is invalid input.
	if err := c.ReconstructDisks([][]byte{good[0], nil, good[2], good[3]}, []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("nil survivor: %v", err)
	}
	// {d0, p2} is an unrecoverable pattern (see decodability test).
	if err := c.ReconstructDisks([][]byte{nil, good[1], nil, good[3]}, []int{0, 2}); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("unrecoverable: %v", err)
	}
}

func TestCanRecoverBounds(t *testing.T) {
	c := mirror4(t)
	if c.CanRecover([]int{-1}) || c.CanRecover([]int{4}) {
		t.Fatal("out-of-range must be unrecoverable")
	}
	if !c.CanRecover(nil) {
		t.Fatal("no failures must be recoverable")
	}
}

func TestRandomizedRoundTripProperty(t *testing.T) {
	// Random recoverable patterns on a random-ish code: build a RAID-4
	// style code with extra mirror, fail each single disk, verify bytes.
	c, err := New("raid4+", 2, 4,
		[]CellRef{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}},
		[]Equation{
			{Target: CellRef{0, 3}, Sources: []CellRef{{0, 0}, {0, 1}, {0, 2}}},
			{Target: CellRef{1, 3}, Sources: []CellRef{{1, 0}, {1, 1}, {1, 2}}},
		})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	cells := make([][]byte, 8)
	for _, ref := range c.DataRefs() {
		b := make([]byte, 32)
		rng.Read(b)
		cells[c.Idx(ref)] = b
	}
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	for d := 0; d < 4; d++ {
		broken := make([][]byte, 8)
		for i := range cells {
			if i%4 != d {
				broken[i] = cells[i]
			}
		}
		if err := c.ReconstructDisks(broken, []int{d}); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		for i := range cells {
			if !bytes.Equal(broken[i], cells[i]) {
				t.Fatalf("disk %d cell %d mismatch", d, i)
			}
		}
	}
	// Two failures beat single parity.
	if c.CanRecover([]int{0, 1}) {
		t.Fatal("RAID-4 must not recover two disks")
	}
}
