package core

import (
	"sync"

	"repro/internal/codes"
)

// Buffers is a reusable shard arena backed by sync.Pool. The steady-state
// encode/reconstruct paths (EncodeStripeInto, ReconstructStripeInto,
// RebuildDataInto) draw every parity and decode-output buffer from it, so a
// long-running server performs zero heap allocations per stripe once the
// pools are warm.
//
// Two pools cooperate: shards holds recycled backing arrays (as *[]byte so
// the slice header itself lives on the heap exactly once), and headers holds
// empty *[]byte containers so PutShard never allocates a header either. A
// buffer whose capacity no longer matches the requested size is dropped on
// the floor for the GC — the pool self-heals when shard sizes change.
//
// The zero value is ready to use, and all methods are safe for concurrent
// use. Buffers returned by GetShard have unspecified contents; every
// consumer in this package fully overwrites them.
type Buffers struct {
	shards  sync.Pool // *[]byte with non-nil backing array
	headers sync.Pool // *[]byte with nil backing array
}

// GetShard returns a buffer of exactly size bytes, reusing pooled memory
// when a large-enough backing array is available.
func (b *Buffers) GetShard(size int) []byte {
	if v := b.shards.Get(); v != nil {
		p := v.(*[]byte)
		s := *p
		*p = nil
		b.headers.Put(p)
		if cap(s) >= size {
			return s[:size]
		}
	}
	return make([]byte, size)
}

// PutShard returns a buffer to the arena for reuse. The caller must not
// touch buf afterwards. Putting a buffer that did not come from GetShard is
// fine; zero-capacity buffers are ignored.
func (b *Buffers) PutShard(buf []byte) {
	if cap(buf) == 0 {
		return
	}
	var p *[]byte
	if v := b.headers.Get(); v != nil {
		p = v.(*[]byte)
	} else {
		p = new([]byte)
	}
	*p = buf[:cap(buf)]
	b.shards.Put(p)
}

// PutShards returns every non-nil buffer in bufs to the arena and nils the
// slots, a convenience for recycling a whole stripe of cells at once.
func (b *Buffers) PutShards(bufs [][]byte) {
	for i, s := range bufs {
		if s != nil {
			b.PutShard(s)
			bufs[i] = nil
		}
	}
}

// stripeScratch holds the per-call shard-pointer slices the stripe
// operations need, recycled through a pool so the hot paths allocate
// nothing. The slices are sized for the scheme on first use and keep their
// capacity across calls.
type stripeScratch struct {
	group     [][]byte // one code group's cells, length n
	groupData [][]byte // one group's data cells, length k
	parity    [][]byte // one group's parity cells, length n-k
	target    [1]int   // single-element target list for RebuildDataInto
}

var stripeScratchPool = sync.Pool{New: func() any { return new(stripeScratch) }}

func getStripeScratch(n, k int) *stripeScratch {
	sc := stripeScratchPool.Get().(*stripeScratch)
	sc.group = growCells(sc.group, n)
	sc.groupData = growCells(sc.groupData, k)
	sc.parity = growCells(sc.parity, n-k)
	return sc
}

func putStripeScratch(sc *stripeScratch) {
	clearCells(sc.group)
	clearCells(sc.groupData)
	clearCells(sc.parity)
	stripeScratchPool.Put(sc)
}

// growCells resizes s to length n, reusing capacity when possible.
func growCells(s [][]byte, n int) [][]byte {
	if cap(s) < n {
		return make([][]byte, n)
	}
	return s[:n]
}

// clearCells nils every slot so pooled scratch never pins shard memory.
func clearCells(s [][]byte) {
	for i := range s {
		s[i] = nil
	}
}

var _ codes.Allocator = (*Buffers)(nil)
