package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/codes"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

// allSchemes builds every (code × form) combination the paper evaluates,
// at the smallest Table I parameters, plus an odd shape.
func allSchemes(t testing.TB) []*Scheme {
	t.Helper()
	var schemes []*Scheme
	codesList := []codes.Code{
		rs.Must(6, 3), rs.Must(8, 4), rs.Must(10, 5),
		lrc.Must(6, 2, 2), lrc.Must(8, 2, 3), lrc.Must(10, 2, 4),
		rs.Must(4, 3), // coprime shape: r = 1
	}
	for _, c := range codesList {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM} {
			schemes = append(schemes, MustScheme(c, form))
		}
	}
	return schemes
}

func randData(rng *rand.Rand, count, size int) [][]byte {
	d := make([][]byte, count)
	for i := range d {
		d[i] = make([]byte, size)
		rng.Read(d[i])
	}
	return d
}

func TestSchemeNames(t *testing.T) {
	c := rs.Must(6, 3)
	cases := map[layout.Form]string{
		layout.FormStandard: "RS(6,3)",
		layout.FormRotated:  "R-RS(6,3)",
		layout.FormECFRM:    "EC-FRM-RS(6,3)",
	}
	for form, want := range cases {
		if got := MustScheme(c, form).Name(); got != want {
			t.Errorf("Name(%s) = %q, want %q", form, got, want)
		}
	}
	l := lrc.Must(6, 2, 2)
	if got := MustScheme(l, layout.FormECFRM).Name(); got != "EC-FRM-LRC(6,2,2)" {
		t.Errorf("Name = %q", got)
	}
}

func TestPropertiesInherited(t *testing.T) {
	// §IV-C and §V-B: EC-FRM keeps the candidate's fault tolerance and
	// storage overhead exactly.
	for _, c := range []codes.Code{rs.Must(6, 3), lrc.Must(6, 2, 2)} {
		std := MustScheme(c, layout.FormStandard)
		frm := MustScheme(c, layout.FormECFRM)
		if std.FaultTolerance() != frm.FaultTolerance() {
			t.Errorf("%s: tolerance changed %d → %d", c.Name(),
				std.FaultTolerance(), frm.FaultTolerance())
		}
		if std.StorageOverhead() != frm.StorageOverhead() {
			t.Errorf("%s: overhead changed %v → %v", c.Name(),
				std.StorageOverhead(), frm.StorageOverhead())
		}
	}
}

func TestEncodeStripeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for _, s := range allSchemes(t) {
		data := randData(rng, s.DataPerStripe(), 31)
		cells, err := s.EncodeStripe(data)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(cells) != s.CellsPerStripe() {
			t.Fatalf("%s: %d cells, want %d", s.Name(), len(cells), s.CellsPerStripe())
		}
		for i, c := range cells {
			if len(c) != 31 {
				t.Fatalf("%s: cell %d size %d", s.Name(), i, len(c))
			}
		}
		// Data shards come back out in order.
		got := s.DataShards(cells)
		for e := range data {
			if !bytes.Equal(got[e], data[e]) {
				t.Fatalf("%s: data shard %d not preserved", s.Name(), e)
			}
		}
		if ok, err := s.VerifyStripe(cells); err != nil || !ok {
			t.Fatalf("%s: fresh stripe fails verify: ok=%v err=%v", s.Name(), ok, err)
		}
	}
}

func TestEncodeStripeBadInput(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	if _, err := s.EncodeStripe(make([][]byte, 3)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestReconstructStripeAllSingleDiskFailures(t *testing.T) {
	// Fail each disk in turn (erase its entire column) and rebuild.
	rng := rand.New(rand.NewSource(41))
	for _, s := range allSchemes(t) {
		data := randData(rng, s.DataPerStripe(), 17)
		cells, err := s.EncodeStripe(data)
		if err != nil {
			t.Fatal(err)
		}
		n := s.N()
		for disk := 0; disk < n; disk++ {
			broken := make([][]byte, len(cells))
			for i := range cells {
				if i%n == disk { // column == cell index mod n
					continue
				}
				broken[i] = cells[i]
			}
			if err := s.ReconstructStripe(broken); err != nil {
				t.Fatalf("%s disk %d: %v", s.Name(), disk, err)
			}
			for i := range cells {
				if !bytes.Equal(broken[i], cells[i]) {
					t.Fatalf("%s disk %d: cell %d mismatch", s.Name(), disk, i)
				}
			}
		}
	}
}

func TestReconstructStripeMaxTolerance(t *testing.T) {
	// Fail FaultTolerance() disks at once, 30 random combinations each.
	rng := rand.New(rand.NewSource(42))
	for _, s := range allSchemes(t) {
		data := randData(rng, s.DataPerStripe(), 9)
		cells, _ := s.EncodeStripe(data)
		f := s.FaultTolerance()
		n := s.N()
		for trial := 0; trial < 30; trial++ {
			perm := rng.Perm(n)
			failedSet := make(map[int]bool)
			for _, d := range perm[:f] {
				failedSet[d] = true
			}
			broken := make([][]byte, len(cells))
			for i := range cells {
				if !failedSet[i%n] {
					broken[i] = cells[i]
				}
			}
			if err := s.ReconstructStripe(broken); err != nil {
				t.Fatalf("%s failed=%v: %v", s.Name(), perm[:f], err)
			}
			for i := range cells {
				if !bytes.Equal(broken[i], cells[i]) {
					t.Fatalf("%s failed=%v: cell %d mismatch", s.Name(), perm[:f], i)
				}
			}
		}
	}
}

func TestReconstructStripeBeyondToleranceFails(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	cells, _ := s.EncodeStripe(randData(rng, s.DataPerStripe(), 8))
	n := s.N()
	broken := make([][]byte, len(cells))
	for i := range cells {
		if i%n >= 4 { // fail disks 0..3 > tolerance 3
			broken[i] = cells[i]
		}
	}
	if err := s.ReconstructStripe(broken); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestVerifyStripeDetectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	cells, _ := s.EncodeStripe(randData(rng, s.DataPerStripe(), 8))
	cells[len(cells)-1][0] ^= 0xff
	if ok, err := s.VerifyStripe(cells); err != nil || ok {
		t.Fatalf("corruption not detected: ok=%v err=%v", ok, err)
	}
}

func TestPlanNormalReadPaperFigure3And7a(t *testing.T) {
	// (6,2,2) LRC, 8-element read from element 0:
	// standard and rotated load some disk twice; EC-FRM loads each disk
	// at most once (Figures 3a, 3b, 7a).
	c := lrc.Must(6, 2, 2)
	for form, wantMax := range map[layout.Form]int{
		layout.FormStandard: 2,
		layout.FormRotated:  2,
		layout.FormECFRM:    1,
	} {
		s := MustScheme(c, form)
		p, err := s.PlanNormalRead(0, 8)
		if err != nil {
			t.Fatal(err)
		}
		if got := p.MaxLoad(); got != wantMax {
			t.Errorf("%s: max load = %d, want %d", s.Name(), got, wantMax)
		}
		if p.TotalReads() != 8 || p.Cost() != 1.0 {
			t.Errorf("%s: reads=%d cost=%v, want 8 reads cost 1", s.Name(), p.TotalReads(), p.Cost())
		}
	}
}

func TestPlanNormalReadNeverTouchesParity(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for _, s := range allSchemes(t) {
		for trial := 0; trial < 40; trial++ {
			start := rng.Intn(3 * s.DataPerStripe())
			count := 1 + rng.Intn(20)
			p, err := s.PlanNormalRead(start, count)
			if err != nil {
				t.Fatal(err)
			}
			for _, a := range p.Reads {
				if !s.Layout().CellAt(a.Pos).IsData {
					t.Fatalf("%s: normal read touched parity cell %+v", s.Name(), a)
				}
			}
			if p.TotalReads() != count {
				t.Fatalf("%s: %d reads for %d elements", s.Name(), p.TotalReads(), count)
			}
			// Load conservation: sum of loads equals total reads.
			sum := 0
			for _, l := range p.Loads {
				sum += l
			}
			if sum != p.TotalReads() {
				t.Fatalf("%s: loads sum %d != reads %d", s.Name(), sum, p.TotalReads())
			}
		}
	}
}

func TestPlanNormalReadECFRMOptimallyBalanced(t *testing.T) {
	// EC-FRM places sequential data round-robin across all n disks, so a
	// count-element read has max load exactly ⌈count/n⌉.
	for _, c := range []codes.Code{rs.Must(6, 3), lrc.Must(8, 2, 3)} {
		s := MustScheme(c, layout.FormECFRM)
		n := s.N()
		for count := 1; count <= 3*n; count++ {
			for start := 0; start < s.DataPerStripe(); start += 7 {
				p, err := s.PlanNormalRead(start, count)
				if err != nil {
					t.Fatal(err)
				}
				want := (count + n - 1) / n
				if got := p.MaxLoad(); got != want {
					t.Fatalf("%s start=%d count=%d: max load %d, want %d",
						s.Name(), start, count, got, want)
				}
			}
		}
	}
}

func TestPlanNormalReadBadInput(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormStandard)
	for _, args := range [][2]int{{-1, 5}, {0, 0}, {3, -2}} {
		if _, err := s.PlanNormalRead(args[0], args[1]); !errors.Is(err, ErrBadRequest) {
			t.Errorf("PlanNormalRead(%d,%d) err = %v, want ErrBadRequest", args[0], args[1], err)
		}
	}
}

func TestPlanDegradedReadAvoidsFailedDisks(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for _, s := range allSchemes(t) {
		for trial := 0; trial < 60; trial++ {
			start := rng.Intn(2 * s.DataPerStripe())
			count := 1 + rng.Intn(20)
			failed := []int{rng.Intn(s.N())}
			p, err := s.PlanDegradedRead(start, count, failed)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for _, a := range p.Reads {
				if a.Disk == failed[0] {
					t.Fatalf("%s: degraded plan reads failed disk %d", s.Name(), failed[0])
				}
			}
			if p.Loads[failed[0]] != 0 {
				t.Fatalf("%s: failed disk has load", s.Name())
			}
			if p.TotalReads() < count-((count+s.N()-1)/s.N()+1) {
				t.Fatalf("%s: suspiciously few reads %d for count %d", s.Name(), p.TotalReads(), count)
			}
		}
	}
}

func TestPlanDegradedReadCostLRCBelowRS(t *testing.T) {
	// LRC's reason to exist: repairing one data element costs k/l reads
	// instead of k. Compare average degraded cost on identical workloads.
	rsS := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	lrcS := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	rng := rand.New(rand.NewSource(47))
	var rsCost, lrcCost float64
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		start := rng.Intn(60)
		count := 1 + rng.Intn(20)
		fr := rng.Intn(rsS.N())
		fl := rng.Intn(lrcS.N())
		pr, err := rsS.PlanDegradedRead(start, count, []int{fr})
		if err != nil {
			t.Fatal(err)
		}
		plc, err := lrcS.PlanDegradedRead(start, count, []int{fl})
		if err != nil {
			t.Fatal(err)
		}
		rsCost += pr.Cost()
		lrcCost += plc.Cost()
	}
	if lrcCost >= rsCost {
		t.Fatalf("LRC degraded cost %v not below RS %v", lrcCost/trials, rsCost/trials)
	}
}

func TestPlanDegradedReadNoFailuresEqualsNormal(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	pd, err := s.PlanDegradedRead(5, 12, nil)
	if err != nil {
		t.Fatal(err)
	}
	pn, err := s.PlanNormalRead(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	if pd.TotalReads() != pn.TotalReads() || pd.MaxLoad() != pn.MaxLoad() {
		t.Fatal("degraded plan with no failures must match normal plan")
	}
}

func TestPlanDegradedReadMultiFailure(t *testing.T) {
	// Up to FaultTolerance() failed disks must still plan successfully.
	rng := rand.New(rand.NewSource(48))
	for _, s := range allSchemes(t) {
		f := s.FaultTolerance()
		for trial := 0; trial < 20; trial++ {
			perm := rng.Perm(s.N())
			failed := perm[:f]
			p, err := s.PlanDegradedRead(0, s.DataPerStripe(), failed)
			if err != nil {
				t.Fatalf("%s failed=%v: %v", s.Name(), failed, err)
			}
			fs := make(map[int]bool)
			for _, d := range failed {
				fs[d] = true
			}
			for _, a := range p.Reads {
				if fs[a.Disk] {
					t.Fatalf("%s: plan touches failed disk %d", s.Name(), a.Disk)
				}
			}
		}
	}
}

func TestPlanDegradedReadBeyondToleranceFails(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	// 4 failures beat RS(6,3); a full-stripe read must hit an
	// unrecoverable group.
	_, err := s.PlanDegradedRead(0, s.DataPerStripe(), []int{0, 1, 2, 3})
	if !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestPlanDegradedReadBadInput(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormStandard)
	if _, err := s.PlanDegradedRead(0, 1, []int{9}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range disk: err = %v", err)
	}
	if _, err := s.PlanDegradedRead(-1, 1, nil); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative start: err = %v", err)
	}
}

func TestDegradedPlanRecoverySetsAreSufficient(t *testing.T) {
	// Execute a degraded plan end-to-end: read exactly the planned cells,
	// reconstruct, and check the requested bytes come back right. This
	// closes the loop between planner and decoder.
	rng := rand.New(rand.NewSource(49))
	for _, s := range allSchemes(t) {
		data := randData(rng, 2*s.DataPerStripe(), 13)
		stripes := make([][][]byte, 2)
		for st := 0; st < 2; st++ {
			var err error
			stripes[st], err = s.EncodeStripe(data[st*s.DataPerStripe() : (st+1)*s.DataPerStripe()])
			if err != nil {
				t.Fatal(err)
			}
		}
		for trial := 0; trial < 25; trial++ {
			start := rng.Intn(s.DataPerStripe())
			count := 1 + rng.Intn(20)
			if start+count > 2*s.DataPerStripe() {
				count = 2*s.DataPerStripe() - start
			}
			failed := rng.Intn(s.N())
			p, err := s.PlanDegradedRead(start, count, []int{failed})
			if err != nil {
				t.Fatal(err)
			}
			// Materialize only the planned reads.
			avail := make([][][]byte, 2)
			for st := range avail {
				avail[st] = make([][]byte, s.CellsPerStripe())
			}
			for _, a := range p.Reads {
				idx := a.Pos.Row*s.N() + a.Pos.Col
				avail[a.Stripe][idx] = stripes[a.Stripe][idx]
			}
			// Rebuild each requested element from the planned reads only.
			for x := start; x < start+count; x++ {
				st, e := x/s.DataPerStripe(), x%s.DataPerStripe()
				got, err := s.RebuildData(avail[st], e)
				if err != nil {
					t.Fatalf("%s: rebuild element %d from planned reads: %v", s.Name(), x, err)
				}
				if !bytes.Equal(got, data[x]) {
					t.Fatalf("%s: element %d wrong after degraded read", s.Name(), x)
				}
			}
		}
	}
}

func TestContributingDisks(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	p, err := s.PlanNormalRead(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.ContributingDisks(); got != 10 {
		t.Fatalf("ContributingDisks = %d, want 10 (all disks)", got)
	}
	std := MustScheme(lrc.Must(6, 2, 2), layout.FormStandard)
	p, _ = std.PlanNormalRead(0, 10)
	if got := p.ContributingDisks(); got != 6 {
		t.Fatalf("standard ContributingDisks = %d, want 6 (data disks only)", got)
	}
}

func TestPlanCostZeroRequested(t *testing.T) {
	p := &Plan{}
	if p.Cost() != 0 {
		t.Fatal("empty plan cost must be 0")
	}
}

func TestPolicyBalanceNeverWorseMaxLoad(t *testing.T) {
	// Property: for identical requests, the balance policy's max load is
	// never above the min-cost policy's, and min-cost's total reads are
	// never above balance's.
	rng := rand.New(rand.NewSource(50))
	for _, s := range allSchemes(t) {
		for trial := 0; trial < 40; trial++ {
			start := rng.Intn(2 * s.DataPerStripe())
			count := 1 + rng.Intn(20)
			failed := []int{rng.Intn(s.N())}
			pc, err := s.PlanDegradedReadPolicy(start, count, failed, PolicyMinCost)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := s.PlanDegradedReadPolicy(start, count, failed, PolicyBalance)
			if err != nil {
				t.Fatal(err)
			}
			if pb.MaxLoad() > pc.MaxLoad() {
				t.Fatalf("%s trial %d: balance max load %d > min-cost %d",
					s.Name(), trial, pb.MaxLoad(), pc.MaxLoad())
			}
			if pc.TotalReads() > pb.TotalReads() {
				t.Fatalf("%s trial %d: min-cost reads %d > balance %d",
					s.Name(), trial, pc.TotalReads(), pb.TotalReads())
			}
		}
	}
}

func TestDegradedPlanDedupesSharedReads(t *testing.T) {
	// When a requested element also serves as a recovery-set member, it is
	// read once: the Figure 7(b) scenario where a 14-element read on
	// EC-FRM-LRC with a failed disk costs exactly 14 reads (one recovery
	// read replaces the lost element's own read).
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	p, err := s.PlanDegradedRead(0, 14, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.TotalReads() != 14 {
		t.Fatalf("total reads = %d, want 14 (full overlap)", p.TotalReads())
	}
	seen := make(map[Access]bool)
	for _, a := range p.Reads {
		if seen[a] {
			t.Fatalf("duplicate access %+v", a)
		}
		seen[a] = true
	}
}

func TestSchemeWithVerticalShapeParams(t *testing.T) {
	// Coprime (n,k) degenerates EC-FRM to a single-group-per-... actually
	// r=1 gives n rows and n groups; check geometry consistency anyway.
	s := MustScheme(rs.Must(4, 3), layout.FormECFRM)
	lay := s.Layout()
	if lay.Rows() != 7 || lay.Groups() != 7 || s.DataPerStripe() != 28 {
		t.Fatalf("coprime geometry wrong: rows=%d groups=%d dps=%d",
			lay.Rows(), lay.Groups(), s.DataPerStripe())
	}
}

func TestUpdateDataConsistency(t *testing.T) {
	// After an in-place update via the delta path, the stripe must verify
	// against a full re-encode, for every scheme and every element.
	rng := rand.New(rand.NewSource(51))
	for _, s := range allSchemes(t) {
		data := randData(rng, s.DataPerStripe(), 24)
		cells, err := s.EncodeStripe(data)
		if err != nil {
			t.Fatal(err)
		}
		for e := 0; e < s.DataPerStripe(); e += 5 {
			newData := make([]byte, 24)
			rng.Read(newData)
			touched, err := s.UpdateData(cells, e, newData)
			if err != nil {
				t.Fatalf("%s element %d: %v", s.Name(), e, err)
			}
			// Exactly 1 data + n-k parity cells touched.
			if len(touched) != 1+s.Code().N()-s.Code().K() {
				t.Fatalf("%s: %d cells touched", s.Name(), len(touched))
			}
			if ok, err := s.VerifyStripe(cells); err != nil || !ok {
				t.Fatalf("%s element %d: stripe inconsistent after update (ok=%v err=%v)",
					s.Name(), e, ok, err)
			}
			if !bytes.Equal(s.DataShards(cells)[e], newData) {
				t.Fatalf("%s element %d: data not updated", s.Name(), e)
			}
		}
	}
}

func TestUpdateDataErrors(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	rng := rand.New(rand.NewSource(52))
	data := randData(rng, s.DataPerStripe(), 16)
	cells, _ := s.EncodeStripe(data)
	if _, err := s.UpdateData(make([][]byte, 3), 0, make([]byte, 16)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("short cells: %v", err)
	}
	if _, err := s.UpdateData(cells, 0, make([]byte, 5)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("size mismatch: %v", err)
	}
	broken := append([][]byte{}, cells...)
	broken[0] = nil
	if _, err := s.UpdateData(broken, 0, make([]byte, 16)); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("missing cell: %v", err)
	}
}
