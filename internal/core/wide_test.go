package core

import (
	"bytes"
	"testing"

	"repro/internal/codes"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

// TestWideStripeSchemes drives GF(2^16) codes at production stripe widths
// (k = 32/64/128) through the framework end to end: encode, verify, repair
// after FaultTolerance() disk failures, and plan+execute a degraded read.
// This is the integration gate for the wide-stripe hot path — the widths are
// far beyond the 256-element ceiling the GF(2^8) codes top out at.
func TestWideStripeSchemes(t *testing.T) {
	const size = 2048
	type cfg struct {
		code codes.Code
		fail []int
	}
	cfgs := []cfg{
		{rs.Must16(32, 4), []int{0, 7, 18, 33}},
		{rs.Must16(64, 4), []int{3, 20, 41, 66}},
		{rs.Must16(128, 4), []int{0, 64, 100, 131}},
		{lrc.Must16(64, 8, 2), []int{5, 40}},
		{crs.Must16(64, 4), []int{1, 30, 50, 67}},
	}
	for _, c := range cfgs {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
			s := MustScheme(c.code, form)
			t.Run(s.Name(), func(t *testing.T) {
				data := makeStripeData(s, size, int64(c.code.N()))
				cells, err := s.EncodeStripe(data)
				if err != nil {
					t.Fatal(err)
				}
				if ok, err := s.VerifyStripe(cells); err != nil || !ok {
					t.Fatalf("VerifyStripe: ok=%v err=%v", ok, err)
				}

				// Fail FaultTolerance() disks and repair the stripe.
				failed := make(map[int]bool, len(c.fail))
				for _, d := range c.fail {
					failed[d] = true
				}
				broken := make([][]byte, len(cells))
				lay := s.Layout()
				for i := range cells {
					if !failed[lay.Disk(0, i%s.N())] {
						broken[i] = cells[i]
					}
				}
				if err := s.ReconstructStripe(broken); err != nil {
					t.Fatal(err)
				}
				for i := range cells {
					if !bytes.Equal(broken[i], cells[i]) {
						t.Fatalf("cell %d mismatch after repair", i)
					}
				}

				// Degraded read across the whole stripe with one disk down.
				plan, err := s.PlanDegradedRead(0, s.DataPerStripe(), c.fail[:1])
				if err != nil {
					t.Fatal(err)
				}
				for _, r := range plan.Reads {
					if r.Disk == c.fail[0] {
						t.Fatalf("plan reads failed disk %d", c.fail[0])
					}
				}
				degraded := make([][]byte, len(cells))
				for i := range cells {
					if lay.Disk(0, i%s.N()) != c.fail[0] {
						degraded[i] = cells[i]
					}
				}
				for e := 0; e < s.DataPerStripe(); e++ {
					got, err := s.RebuildData(degraded, e)
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, data[e]) {
						t.Fatalf("degraded read of element %d wrong", e)
					}
				}
			})
		}
	}
}

// TestWideStripeChunkedEncode checks byte-range chunking stays correct for
// 2-byte-symbol positional codes: chunk boundaries land on multiples of
// chunkAlign (16), which never splits a GF(2^16) symbol, so the chunked
// encode must be bit-identical to the whole-shard encode.
func TestWideStripeChunkedEncode(t *testing.T) {
	s := MustScheme(rs.Must16(32, 4), layout.FormECFRM)
	pc := s.NewParallelCodec(4)
	pc.SetChunkBytes(48) // force many chunks; rounds to chunkAlign
	const size = 4096 + 32
	var bufs Buffers
	data := makeStripeData(s, size, 99)
	want, err := s.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	cells := make([][]byte, s.CellsPerStripe())
	if err := pc.EncodeStripeChunked(&bufs, cells, data); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !bytes.Equal(cells[i], want[i]) {
			t.Fatalf("cell %d differs between chunked and whole-shard encode", i)
		}
	}
}

// TestSchemeSymbolBytes checks the symbol width each scheme reports — what
// stores and benchmarks use to align shard sizes.
func TestSchemeSymbolBytes(t *testing.T) {
	for _, tc := range []struct {
		code codes.Code
		want int
	}{
		{rs.Must(6, 3), 1},
		{crs.Must(4, 2), 1},
		{rs.Must16(32, 4), 2},
		{lrc.Must16(32, 4, 2), 2},
		{crs.Must16(8, 3), 16},
	} {
		s := MustScheme(tc.code, layout.FormStandard)
		if got := s.SymbolBytes(); got != tc.want {
			t.Errorf("%s: SymbolBytes = %d, want %d", s.Name(), got, tc.want)
		}
	}
}

// TestZeroAllocSteadyState16 is the GF(2^16) twin of TestZeroAllocSteadyState:
// once the Buffers arena, the scratch pools, the kernel table cache, and the
// decode-coefficient cache are warm, the pooled wide-stripe encode,
// reconstruct, and degraded-rebuild paths must allocate nothing.
func TestZeroAllocSteadyState16(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector, so allocs/op cannot be 0")
	}
	const size = 4096
	for _, c := range []codes.Code{rs.Must16(32, 4), lrc.Must16(32, 4, 2)} {
		s := MustScheme(c, layout.FormECFRM)
		var bufs Buffers
		data := makeStripeData(s, size, 7)
		cells := make([][]byte, s.CellsPerStripe())

		// Warm-up: fill pools, build kernel tables, populate the
		// decode-coefficient cache.
		if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
			t.Fatal(err)
		}
		lost := []int{1, len(cells) - 1}
		idx0 := s.cellIndex(s.lay.DataPos(0))

		check := func(name string, fn func()) {
			t.Helper()
			if avg := testing.AllocsPerRun(20, fn); avg != 0 {
				t.Errorf("%s/%s: %v allocs/op, want 0", s.Name(), name, avg)
			}
		}
		check("EncodeStripeInto", func() {
			if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
				t.Fatal(err)
			}
		})
		check("ReconstructStripeInto", func() {
			for _, i := range lost {
				bufs.PutShard(cells[i])
				cells[i] = nil
			}
			if err := s.ReconstructStripeInto(&bufs, cells); err != nil {
				t.Fatal(err)
			}
		})
		check("RebuildDataInto", func() {
			bufs.PutShard(cells[idx0])
			cells[idx0] = nil
			if _, err := s.RebuildDataInto(&bufs, cells, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func BenchmarkEncodeStripeWide16(b *testing.B) {
	const size = 64 << 10
	s := MustScheme(rs.Must16(64, 4), layout.FormECFRM)
	var bufs Buffers
	data := makeStripeData(s, size, 1)
	cells := make([][]byte, s.CellsPerStripe())
	if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.DataPerStripe() * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
			b.Fatal(err)
		}
	}
}
