package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lrc"
	"repro/internal/rs"

	"repro/internal/layout"
)

// TestPlanDegradedReadBiasedNilMatchesUnbiased: the biased planner with a
// nil (or all-zero) bias is exactly the unbiased planner — same plans,
// element for element — so single-threaded replays stay deterministic.
func TestPlanDegradedReadBiasedNilMatchesUnbiased(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	zero := func(n int) []int { return make([]int, n) }
	for _, s := range allSchemes(t) {
		for trial := 0; trial < 30; trial++ {
			start := rng.Intn(2 * s.DataPerStripe())
			count := 1 + rng.Intn(20)
			failed := []int{rng.Intn(s.N())}
			want, err := s.PlanDegradedReadPolicy(start, count, failed, PolicyMinCost)
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			for _, bias := range [][]int{nil, zero(s.N())} {
				got, err := s.PlanDegradedReadBiased(start, count, failed, PolicyMinCost, bias)
				if err != nil {
					t.Fatalf("%s bias=%v: %v", s.Name(), bias, err)
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s bias=%v: biased plan differs from unbiased", s.Name(), bias)
				}
			}
		}
	}
}

// TestPlanDegradedReadBiasedSteersAwayFromBusyDisk: a large external bias on
// one surviving disk must shift rebuild reads off it whenever an equivalent
// recovery set exists — the store feeds live in-flight run counts through
// this knob. The bias may only move reads around: the plan still avoids
// failed disks and reads the same number of elements per rebuilt target.
func TestPlanDegradedReadBiasedSteersAwayFromBusyDisk(t *testing.T) {
	for _, s := range []*Scheme{
		MustScheme(rs.Must(6, 3), layout.FormECFRM),
		MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM),
	} {
		failed := []int{0}
		unbiased, err := s.PlanDegradedRead(0, 2*s.DataPerStripe(), failed)
		if err != nil {
			t.Fatal(err)
		}
		// Pick the busiest surviving disk of the unbiased plan and bias it.
		busy, bl := -1, 0
		for d, l := range unbiased.Loads {
			if d != 0 && l > bl {
				busy, bl = d, l
			}
		}
		bias := make([]int, s.N())
		bias[busy] = 1000
		biased, err := s.PlanDegradedReadBiased(0, 2*s.DataPerStripe(), failed, PolicyMinCost, bias)
		if err != nil {
			t.Fatal(err)
		}
		if biased.Loads[busy] >= unbiased.Loads[busy] {
			t.Fatalf("%s: bias on disk %d did not reduce its load (%d -> %d)",
				s.Name(), busy, unbiased.Loads[busy], biased.Loads[busy])
		}
		if biased.Loads[0] != 0 {
			t.Fatalf("%s: biased plan reads failed disk 0", s.Name())
		}
		for _, a := range biased.Reads {
			if a.Disk == 0 {
				t.Fatalf("%s: biased plan touches failed disk", s.Name())
			}
		}
	}
}

// TestPlanDegradedReadBiasedValidation: a bias of the wrong length is a bad
// request, not a silent truncation.
func TestPlanDegradedReadBiasedValidation(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	if _, err := s.PlanDegradedReadBiased(0, 1, []int{1}, PolicyMinCost, []int{1, 2}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("short bias: err = %v, want ErrBadRequest", err)
	}
}
