package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

func makeBatch(t testing.TB, s *Scheme, stripes, size int, seed int64) [][][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch := make([][][]byte, stripes)
	for i := range batch {
		batch[i] = randData(rng, s.DataPerStripe(), size)
	}
	return batch
}

func TestParallelCodecWorkers(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	if got := s.NewParallelCodec(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d", got)
	}
	if got := s.NewParallelCodec(3).Workers(); got != 3 {
		t.Fatalf("workers = %d", got)
	}
}

func TestParallelEncodeMatchesSerial(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	batch := makeBatch(t, s, 17, 64, 80)
	pc := s.NewParallelCodec(4)
	got, err := pc.EncodeStripes(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range batch {
		want, err := s.EncodeStripe(data)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if !bytes.Equal(got[i][c], want[c]) {
				t.Fatalf("stripe %d cell %d differs from serial encode", i, c)
			}
		}
	}
}

func TestParallelEncodeEmptyBatch(t *testing.T) {
	s := MustScheme(rs.Must(4, 3), layout.FormStandard)
	out, err := s.NewParallelCodec(2).EncodeStripes(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %d", err, len(out))
	}
}

func TestParallelEncodePropagatesError(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	batch := makeBatch(t, s, 5, 32, 81)
	batch[3] = batch[3][:2] // wrong shard count
	if _, err := s.NewParallelCodec(4).EncodeStripes(batch); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestParallelReconstruct(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	batch := makeBatch(t, s, 9, 48, 82)
	pc := s.NewParallelCodec(8)
	cells, err := pc.EncodeStripes(batch)
	if err != nil {
		t.Fatal(err)
	}
	// Keep originals, erase three whole disks in every stripe.
	orig := make([][][]byte, len(cells))
	n := s.N()
	for i := range cells {
		orig[i] = append([][]byte{}, cells[i]...)
		for c := range cells[i] {
			if c%n == 1 || c%n == 5 || c%n == 8 {
				cells[i][c] = nil
			}
		}
	}
	if err := pc.ReconstructStripes(cells); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		for c := range cells[i] {
			if !bytes.Equal(cells[i][c], orig[i][c]) {
				t.Fatalf("stripe %d cell %d mismatch", i, c)
			}
		}
	}
}

func TestParallelReconstructError(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	batch := makeBatch(t, s, 3, 16, 83)
	pc := s.NewParallelCodec(2)
	cells, err := pc.EncodeStripes(batch)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	for c := range cells[1] {
		if c%n < 4 { // 4 disks > tolerance 3
			cells[1][c] = nil
		}
	}
	if err := pc.ReconstructStripes(cells); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestParallelRace(t *testing.T) {
	// Concurrent use of one codec from multiple goroutines (run with
	// -race to exercise).
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	pc := s.NewParallelCodec(4)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			batch := makeBatch(t, s, 6, 32, seed)
			_, err := pc.EncodeStripes(batch)
			done <- err
		}(int64(90 + g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkParallelEncode(b *testing.B) {
	s := MustScheme(rs.Must(10, 5), layout.FormECFRM)
	rng := rand.New(rand.NewSource(84))
	batch := make([][][]byte, 32)
	for i := range batch {
		batch[i] = randData(rng, s.DataPerStripe(), 64<<10)
	}
	bytesPer := int64(32 * s.DataPerStripe() * (64 << 10))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			pc := s.NewParallelCodec(workers)
			b.SetBytes(bytesPer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pc.EncodeStripes(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestForEachEarlyAbort pins the abort contract deterministically: one
// worker, an error on the very first index, and a counter — fn must run
// exactly once even though many indices are queued.
func TestForEachEarlyAbort(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	pc := s.NewParallelCodec(1)
	calls := 0
	err := pc.forEach(100, func(i int) error {
		calls++
		return fmt.Errorf("boom at %d", i)
	})
	if err == nil || calls != 1 {
		t.Fatalf("calls = %d, err = %v; want 1 call and an error", calls, err)
	}
}

// TestForEachAbortStopsDispatch checks the multi-worker case: after the
// first error, the vast majority of the batch must be skipped (exact counts
// are scheduling-dependent, but bounded by workers' in-flight items).
func TestForEachAbortStopsDispatch(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	const workers, n = 4, 10000
	pc := s.NewParallelCodec(workers)
	var calls atomic.Int64
	err := pc.forEach(n, func(i int) error {
		calls.Add(1)
		return errors.New("boom")
	})
	if err == nil {
		t.Fatal("expected error")
	}
	// Every worker may already hold one item when the abort lands, plus the
	// producer's send in flight; anything near n means abort didn't work.
	if got := calls.Load(); got > int64(workers)*2 {
		t.Fatalf("fn ran %d times after first error; want ≤ %d", got, workers*2)
	}
}

// TestEncodeStripeChunkedMatchesSerial checks intra-stripe chunking yields
// bit-identical stripes for positional codes (many chunks) and for CRS
// (groups-only fallback), including sizes that don't divide evenly.
func TestEncodeStripeChunkedMatchesSerial(t *testing.T) {
	schemes := []*Scheme{
		MustScheme(rs.Must(6, 3), layout.FormECFRM),
		MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM),
		MustScheme(crs.Must(4, 2), layout.FormStandard),
	}
	for _, s := range schemes {
		for _, size := range []int{4096, 4096 + 64, 96} {
			pc := s.NewParallelCodec(4)
			pc.SetChunkBytes(1000) // rounds up to 1008, forces ragged chunks
			var bufs Buffers
			data := makeStripeData(s, size, int64(size))
			want, err := s.EncodeStripe(data)
			if err != nil {
				t.Fatal(err)
			}
			cells := make([][]byte, s.CellsPerStripe())
			if err := pc.EncodeStripeChunked(&bufs, cells, data); err != nil {
				t.Fatal(err)
			}
			for i := range cells {
				if !bytes.Equal(cells[i], want[i]) {
					t.Fatalf("%s size %d: cell %d differs from serial encode", s.Name(), size, i)
				}
			}
		}
	}
}

// TestEncodeStripesIntoMatchesSerial checks the pooled batch encode and the
// pooled batch repair against the serial paths.
func TestEncodeStripesIntoMatchesSerial(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	pc := s.NewParallelCodec(4)
	var bufs Buffers
	batch := makeBatch(t, s, 11, 64, 99)
	cells := make([][][]byte, len(batch))
	for i := range cells {
		cells[i] = make([][]byte, s.CellsPerStripe())
	}
	if err := pc.EncodeStripesInto(&bufs, cells, batch); err != nil {
		t.Fatal(err)
	}
	n := s.N()
	orig := make([][][]byte, len(cells))
	for i, data := range batch {
		want, err := s.EncodeStripe(data)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if !bytes.Equal(cells[i][c], want[c]) {
				t.Fatalf("stripe %d cell %d differs from serial encode", i, c)
			}
		}
		orig[i] = want
	}
	for i := range cells {
		for c := range cells[i] {
			if c%n == 2 || c%n == 6 {
				cells[i][c] = nil
			}
		}
	}
	if err := pc.ReconstructStripesInto(&bufs, cells); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		for c := range cells[i] {
			if !bytes.Equal(cells[i][c], orig[i][c]) {
				t.Fatalf("stripe %d cell %d mismatch after pooled repair", i, c)
			}
		}
	}
}

// TestSetChunkBytes pins the rounding and reset semantics.
func TestSetChunkBytes(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormStandard)
	pc := s.NewParallelCodec(2)
	if pc.ChunkBytes() != DefaultChunkBytes {
		t.Fatalf("default chunk = %d", pc.ChunkBytes())
	}
	pc.SetChunkBytes(1000)
	if pc.ChunkBytes() != 1008 {
		t.Fatalf("chunk = %d, want 1008 (1000 rounded up to ×16)", pc.ChunkBytes())
	}
	pc.SetChunkBytes(0)
	if pc.ChunkBytes() != DefaultChunkBytes {
		t.Fatalf("reset chunk = %d", pc.ChunkBytes())
	}
}
