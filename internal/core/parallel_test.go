package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

func makeBatch(t testing.TB, s *Scheme, stripes, size int, seed int64) [][][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	batch := make([][][]byte, stripes)
	for i := range batch {
		batch[i] = randData(rng, s.DataPerStripe(), size)
	}
	return batch
}

func TestParallelCodecWorkers(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	if got := s.NewParallelCodec(0).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("default workers = %d", got)
	}
	if got := s.NewParallelCodec(3).Workers(); got != 3 {
		t.Fatalf("workers = %d", got)
	}
}

func TestParallelEncodeMatchesSerial(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	batch := makeBatch(t, s, 17, 64, 80)
	pc := s.NewParallelCodec(4)
	got, err := pc.EncodeStripes(batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, data := range batch {
		want, err := s.EncodeStripe(data)
		if err != nil {
			t.Fatal(err)
		}
		for c := range want {
			if !bytes.Equal(got[i][c], want[c]) {
				t.Fatalf("stripe %d cell %d differs from serial encode", i, c)
			}
		}
	}
}

func TestParallelEncodeEmptyBatch(t *testing.T) {
	s := MustScheme(rs.Must(4, 3), layout.FormStandard)
	out, err := s.NewParallelCodec(2).EncodeStripes(nil)
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %d", err, len(out))
	}
}

func TestParallelEncodePropagatesError(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	batch := makeBatch(t, s, 5, 32, 81)
	batch[3] = batch[3][:2] // wrong shard count
	if _, err := s.NewParallelCodec(4).EncodeStripes(batch); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("err = %v, want ErrBadRequest", err)
	}
}

func TestParallelReconstruct(t *testing.T) {
	s := MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	batch := makeBatch(t, s, 9, 48, 82)
	pc := s.NewParallelCodec(8)
	cells, err := pc.EncodeStripes(batch)
	if err != nil {
		t.Fatal(err)
	}
	// Keep originals, erase three whole disks in every stripe.
	orig := make([][][]byte, len(cells))
	n := s.N()
	for i := range cells {
		orig[i] = append([][]byte{}, cells[i]...)
		for c := range cells[i] {
			if c%n == 1 || c%n == 5 || c%n == 8 {
				cells[i][c] = nil
			}
		}
	}
	if err := pc.ReconstructStripes(cells); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		for c := range cells[i] {
			if !bytes.Equal(cells[i][c], orig[i][c]) {
				t.Fatalf("stripe %d cell %d mismatch", i, c)
			}
		}
	}
}

func TestParallelReconstructError(t *testing.T) {
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	batch := makeBatch(t, s, 3, 16, 83)
	pc := s.NewParallelCodec(2)
	cells, err := pc.EncodeStripes(batch)
	if err != nil {
		t.Fatal(err)
	}
	n := s.N()
	for c := range cells[1] {
		if c%n < 4 { // 4 disks > tolerance 3
			cells[1][c] = nil
		}
	}
	if err := pc.ReconstructStripes(cells); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestParallelRace(t *testing.T) {
	// Concurrent use of one codec from multiple goroutines (run with
	// -race to exercise).
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	pc := s.NewParallelCodec(4)
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func(seed int64) {
			batch := makeBatch(t, s, 6, 32, seed)
			_, err := pc.EncodeStripes(batch)
			done <- err
		}(int64(90 + g))
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkParallelEncode(b *testing.B) {
	s := MustScheme(rs.Must(10, 5), layout.FormECFRM)
	rng := rand.New(rand.NewSource(84))
	batch := make([][][]byte, 32)
	for i := range batch {
		batch[i] = randData(rng, s.DataPerStripe(), 64<<10)
	}
	bytesPer := int64(32 * s.DataPerStripe() * (64 << 10))
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers_%d", workers), func(b *testing.B) {
			pc := s.NewParallelCodec(workers)
			b.SetBytes(bytesPer)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pc.EncodeStripes(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
