package core

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/codes"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

// makeStripeData builds DataPerStripe deterministic shards of the given size.
func makeStripeData(s *Scheme, size int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]byte, s.DataPerStripe())
	for i := range data {
		data[i] = make([]byte, size)
		rng.Read(data[i])
	}
	return data
}

// TestIntoPathsMatchAllocatingPaths checks the pooled ...Into variants
// produce bit-identical stripes to the legacy allocating paths, across
// codes (including packet-layout CRS via its EncodeInto) and layouts.
func TestIntoPathsMatchAllocatingPaths(t *testing.T) {
	const size = 96 // multiple of crs.W
	codesUnder := []codes.Code{rs.Must(6, 3), lrc.Must(6, 2, 2), crs.Must(4, 2)}
	for _, c := range codesUnder {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
			s := MustScheme(c, form)
			t.Run(s.Name(), func(t *testing.T) {
				var bufs Buffers
				data := makeStripeData(s, size, 42)
				want, err := s.EncodeStripe(data)
				if err != nil {
					t.Fatal(err)
				}
				cells := make([][]byte, s.CellsPerStripe())
				if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
					t.Fatal(err)
				}
				for i := range cells {
					if !bytes.Equal(cells[i], want[i]) {
						t.Fatalf("cell %d differs between EncodeStripeInto and EncodeStripe", i)
					}
				}

				// Knock out two cells and repair via the pooled path.
				lost := []int{0, len(cells) / 2}
				for _, i := range lost {
					cells[i] = nil
				}
				if err := s.ReconstructStripeInto(&bufs, cells); err != nil {
					t.Fatal(err)
				}
				for i := range cells {
					if !bytes.Equal(cells[i], want[i]) {
						t.Fatalf("cell %d differs after ReconstructStripeInto", i)
					}
				}

				// Degraded single-element rebuild via the pooled path.
				idx := s.cellIndex(s.lay.DataPos(0))
				cells[idx] = nil
				got, err := s.RebuildDataInto(&bufs, cells, 0)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, data[0]) {
					t.Fatal("RebuildDataInto returned wrong data")
				}
			})
		}
	}
}

// TestZeroAllocSteadyState asserts the pooled encode/reconstruct/rebuild
// paths allocate nothing once the Buffers arena and scratch pools are warm —
// the regression gate for the zero-allocation hot path.
func TestZeroAllocSteadyState(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector, so allocs/op cannot be 0")
	}
	const size = 4096
	for _, c := range []codes.Code{rs.Must(6, 3), lrc.Must(6, 2, 2)} {
		s := MustScheme(c, layout.FormECFRM)
		var bufs Buffers
		data := makeStripeData(s, size, 7)
		cells := make([][]byte, s.CellsPerStripe())

		// Warm-up: fill pools, populate the decode-coefficient cache.
		if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
			t.Fatal(err)
		}
		lost := []int{1, len(cells) - 1}
		idx0 := s.cellIndex(s.lay.DataPos(0))

		check := func(name string, fn func()) {
			t.Helper()
			if avg := testing.AllocsPerRun(20, fn); avg != 0 {
				t.Errorf("%s/%s: %v allocs/op, want 0", s.Name(), name, avg)
			}
		}
		check("EncodeStripeInto", func() {
			if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
				t.Fatal(err)
			}
		})
		check("ReconstructStripeInto", func() {
			for _, i := range lost {
				bufs.PutShard(cells[i])
				cells[i] = nil
			}
			if err := s.ReconstructStripeInto(&bufs, cells); err != nil {
				t.Fatal(err)
			}
		})
		check("RebuildDataInto", func() {
			bufs.PutShard(cells[idx0])
			cells[idx0] = nil
			if _, err := s.RebuildDataInto(&bufs, cells, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBuffersRecycle checks the arena actually reuses memory and self-heals
// across size changes.
func TestBuffersRecycle(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector, so recycling is not deterministic")
	}
	var b Buffers
	s1 := b.GetShard(128)
	b.PutShard(s1)
	s2 := b.GetShard(64)
	if cap(s2) < 128 {
		t.Fatalf("expected recycled 128-cap buffer, got cap %d", cap(s2))
	}
	b.PutShard(s2)
	s3 := b.GetShard(256) // larger than anything pooled: fresh allocation
	if len(s3) != 256 {
		t.Fatalf("got %d bytes, want 256", len(s3))
	}
	cells := [][]byte{[]byte{1}, nil, []byte{2, 3}}
	b.PutShards(cells)
	for i, c := range cells {
		if c != nil {
			t.Fatalf("PutShards left slot %d non-nil", i)
		}
	}
}

func BenchmarkEncodeStripePooled(b *testing.B) {
	const size = 64 << 10
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	var bufs Buffers
	data := makeStripeData(s, size, 1)
	cells := make([][]byte, s.CellsPerStripe())
	if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(s.DataPerStripe() * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructStripePooled(b *testing.B) {
	const size = 64 << 10
	s := MustScheme(rs.Must(6, 3), layout.FormECFRM)
	var bufs Buffers
	data := makeStripeData(s, size, 2)
	cells := make([][]byte, s.CellsPerStripe())
	if err := s.EncodeStripeInto(&bufs, cells, data); err != nil {
		b.Fatal(err)
	}
	lost := []int{0, len(cells) / 2}
	b.SetBytes(int64(len(lost) * size))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, x := range lost {
			bufs.PutShard(cells[x])
			cells[x] = nil
		}
		if err := s.ReconstructStripeInto(&bufs, cells); err != nil {
			b.Fatal(err)
		}
	}
}
