package core

import (
	"fmt"
	"runtime"
	"sync"
)

// ParallelCodec encodes and reconstructs batches of stripes concurrently.
// Stripes are independent by construction (groups never span stripes), so
// the batch parallelizes embarrassingly; the codec fans work out to a fixed
// worker pool to bound memory and scheduler pressure. The zero value is not
// usable; construct with Scheme.NewParallelCodec.
//
// The codec itself is safe for concurrent use: each call spawns its own
// workers and shares no mutable state.
type ParallelCodec struct {
	scheme  *Scheme
	workers int
}

// NewParallelCodec returns a codec running at most workers stripe
// operations concurrently; workers ≤ 0 selects GOMAXPROCS.
func (s *Scheme) NewParallelCodec(workers int) *ParallelCodec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelCodec{scheme: s, workers: workers}
}

// Workers returns the concurrency limit.
func (pc *ParallelCodec) Workers() int { return pc.workers }

// forEach runs fn over [0,n) on the worker pool, collecting the first error.
func (pc *ParallelCodec) forEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := pc.workers
	if workers > n {
		workers = n
	}
	var (
		wg   sync.WaitGroup
		next = make(chan int)
		mu   sync.Mutex
		err  error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
				}
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return err
}

// EncodeStripes encodes a batch: stripes[i] is one stripe's data shards
// (DataPerStripe() equally sized slices). The result holds one cell slice
// per stripe, in order.
func (pc *ParallelCodec) EncodeStripes(stripes [][][]byte) ([][][]byte, error) {
	out := make([][][]byte, len(stripes))
	err := pc.forEach(len(stripes), func(i int) error {
		cells, e := pc.scheme.EncodeStripe(stripes[i])
		if e != nil {
			return fmt.Errorf("stripe %d: %w", i, e)
		}
		out[i] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReconstructStripes rebuilds the nil cells of every stripe in the batch in
// place.
func (pc *ParallelCodec) ReconstructStripes(stripes [][][]byte) error {
	return pc.forEach(len(stripes), func(i int) error {
		if e := pc.scheme.ReconstructStripe(stripes[i]); e != nil {
			return fmt.Errorf("stripe %d: %w", i, e)
		}
		return nil
	})
}
