package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultChunkBytes is the intra-stripe chunk size ParallelCodec splits
// shards into: 64 KiB keeps a chunk's working set (k+m shard sub-ranges plus
// the multiply tables) inside per-core cache while leaving enough work per
// task to amortize dispatch.
const DefaultChunkBytes = 64 << 10

// chunkAlign keeps chunk boundaries on multiples of 16 so every word kernel
// runs its full-speed path on whole chunks. 16 is also a multiple of every
// positional code's symbol width (2 for the GF(2^16) codes), so chunk
// boundaries never split a multi-byte symbol.
const chunkAlign = 16

// ParallelCodec encodes and reconstructs batches of stripes concurrently.
// Stripes are independent by construction (groups never span stripes), so
// the batch parallelizes embarrassingly; the codec fans work out to a fixed
// worker pool to bound memory and scheduler pressure. For a single large
// stripe, EncodeStripeChunked additionally splits shards into cache-sized
// byte ranges so one stripe can saturate every core. The zero value is not
// usable; construct with Scheme.NewParallelCodec.
//
// The codec itself is safe for concurrent use: each call spawns its own
// workers and shares no mutable state.
type ParallelCodec struct {
	scheme     *Scheme
	workers    int
	chunkBytes int
}

// NewParallelCodec returns a codec running at most workers stripe
// operations concurrently; workers ≤ 0 selects GOMAXPROCS.
func (s *Scheme) NewParallelCodec(workers int) *ParallelCodec {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &ParallelCodec{scheme: s, workers: workers, chunkBytes: DefaultChunkBytes}
}

// Workers returns the concurrency limit.
func (pc *ParallelCodec) Workers() int { return pc.workers }

// SetChunkBytes overrides the intra-stripe chunk size used by
// EncodeStripeChunked. Values ≤ 0 restore the default; other values are
// rounded up to the kernel alignment.
func (pc *ParallelCodec) SetChunkBytes(n int) {
	if n <= 0 {
		pc.chunkBytes = DefaultChunkBytes
		return
	}
	if r := n % chunkAlign; r != 0 {
		n += chunkAlign - r
	}
	pc.chunkBytes = n
}

// ChunkBytes returns the intra-stripe chunk size.
func (pc *ParallelCodec) ChunkBytes() int { return pc.chunkBytes }

// forEach runs fn over [0,n) on the worker pool, collecting the first error.
// After any fn fails, no further indices are dispatched and queued ones are
// skipped — a doomed batch stops burning CPU as soon as possible.
func (pc *ParallelCodec) forEach(n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	workers := pc.workers
	if workers > n {
		workers = n
	}
	var (
		wg      sync.WaitGroup
		next    = make(chan int)
		mu      sync.Mutex
		err     error
		aborted atomic.Bool
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if aborted.Load() {
					continue // drain without running
				}
				if e := fn(i); e != nil {
					mu.Lock()
					if err == nil {
						err = e
					}
					mu.Unlock()
					aborted.Store(true)
				}
			}
		}()
	}
	for i := 0; i < n && !aborted.Load(); i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	return err
}

// EncodeStripes encodes a batch: stripes[i] is one stripe's data shards
// (DataPerStripe() equally sized slices). The result holds one cell slice
// per stripe, in order.
func (pc *ParallelCodec) EncodeStripes(stripes [][][]byte) ([][][]byte, error) {
	out := make([][][]byte, len(stripes))
	err := pc.forEach(len(stripes), func(i int) error {
		cells, e := pc.scheme.EncodeStripe(stripes[i])
		if e != nil {
			return fmt.Errorf("stripe %d: %w", i, e)
		}
		out[i] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// EncodeStripesInto encodes a batch into caller-provided cell slices,
// drawing parity buffers from bufs: cells[i] receives stripe i. The
// zero-allocation batch encode. Buffers is safe for concurrent use, so all
// workers share it.
func (pc *ParallelCodec) EncodeStripesInto(bufs *Buffers, cells [][][]byte, stripes [][][]byte) error {
	if len(cells) != len(stripes) {
		return fmt.Errorf("%w: got %d cell slices for %d stripes", ErrBadRequest, len(cells), len(stripes))
	}
	return pc.forEach(len(stripes), func(i int) error {
		if e := pc.scheme.EncodeStripeInto(bufs, cells[i], stripes[i]); e != nil {
			return fmt.Errorf("stripe %d: %w", i, e)
		}
		return nil
	})
}

// ReconstructStripes rebuilds the nil cells of every stripe in the batch in
// place.
func (pc *ParallelCodec) ReconstructStripes(stripes [][][]byte) error {
	return pc.forEach(len(stripes), func(i int) error {
		if e := pc.scheme.ReconstructStripe(stripes[i]); e != nil {
			return fmt.Errorf("stripe %d: %w", i, e)
		}
		return nil
	})
}

// ReconstructStripesInto rebuilds the nil cells of every stripe in place,
// drawing decode buffers from bufs — the zero-allocation batch repair.
func (pc *ParallelCodec) ReconstructStripesInto(bufs *Buffers, stripes [][][]byte) error {
	return pc.forEach(len(stripes), func(i int) error {
		if e := pc.scheme.ReconstructStripeInto(bufs, stripes[i]); e != nil {
			return fmt.Errorf("stripe %d: %w", i, e)
		}
		return nil
	})
}

// EncodeStripeChunked encodes ONE stripe across all workers by splitting
// every shard into cache-sized byte ranges (see SetChunkBytes), so a single
// large stripe saturates cores instead of pinning one. cells and data follow
// the EncodeStripeInto contract.
//
// Byte-range splitting requires a positional code (parity byte b depends
// only on data bytes b — true for the generator-matrix codes, false for
// CRS's packet layout); for non-positional codes the work is split across
// groups only, which is always safe.
func (pc *ParallelCodec) EncodeStripeChunked(bufs *Buffers, cells [][]byte, data [][]byte) error {
	s := pc.scheme
	dps := s.DataPerStripe()
	if len(data) != dps {
		return fmt.Errorf("%w: got %d data shards, want %d", ErrBadRequest, len(data), dps)
	}
	if len(cells) != s.CellsPerStripe() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	if dps == 0 {
		return nil
	}
	size := len(data[0])
	for e, d := range data {
		if len(d) != size {
			return fmt.Errorf("%w: data shard %d has %d bytes, want %d", ErrBadRequest, e, len(d), size)
		}
		cells[s.cellIndex(s.lay.DataPos(e))] = d
	}
	k, n := s.code.K(), s.code.N()
	groups := s.lay.Groups()
	for g := 0; g < groups; g++ {
		for t := k; t < n; t++ {
			idx := s.cellIndex(s.lay.GroupCell(g, t))
			if len(cells[idx]) != size {
				cells[idx] = bufs.GetShard(size)
			}
		}
	}
	chunks := 1
	if s.positional && size > pc.chunkBytes {
		chunks = (size + pc.chunkBytes - 1) / pc.chunkBytes
	}
	return pc.forEach(groups*chunks, func(task int) error {
		g, c := task/chunks, task%chunks
		lo := c * pc.chunkBytes
		hi := lo + pc.chunkBytes
		if chunks == 1 {
			lo, hi = 0, size
		} else if hi > size {
			hi = size
		}
		if err := s.encodeGroupRange(cells, g, lo, hi); err != nil {
			return fmt.Errorf("group %d chunk %d: %w", g, c, err)
		}
		return nil
	})
}
