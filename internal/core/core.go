// Package core implements the EC-FRM framework itself: it combines a
// candidate code (internal/codes) with a stripe layout (internal/layout)
// into an operational erasure-coding scheme that can encode stripes, rebuild
// lost cells, and plan normal and degraded reads with per-disk load
// accounting.
//
// This is the paper's primary contribution (§IV): the framework is the
// machinery that rewires where a candidate code's elements live — Step-1
// (identify groups) is the layout, Step-2 (construct over each group) is the
// per-group application of the candidate code done here.
package core

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/codes"
	"repro/internal/gf"
	"repro/internal/layout"
)

// ErrBadRequest flags an invalid read request or stripe input.
var ErrBadRequest = errors.New("core: bad request")

// ErrUnrecoverable flags a failure pattern the scheme cannot decode.
var ErrUnrecoverable = errors.New("core: unrecoverable failure pattern")

// Scheme is a candidate code deployed under a particular layout. The paper's
// nomenclature maps as:
//
//	code=RS,  layout=standard → "RS"
//	code=RS,  layout=rotated  → "R-RS"
//	code=RS,  layout=ecfrm    → "EC-FRM-RS"
//	code=LRC, layout=standard → "LRC", etc.
type Scheme struct {
	code codes.Code
	lay  layout.Layout
	// Capability views of code, resolved once at construction so the hot
	// paths pay no per-call type assertions.
	intoEnc    codes.IntoEncoder       // nil if the code lacks EncodeInto
	intoRec    codes.IntoReconstructor // nil if the code lacks the Into decodes
	positional bool                    // byte-range chunking is valid
	symBytes   int                     // code symbol width — shard-size granularity
}

// NewScheme deploys code under the given layout form.
func NewScheme(code codes.Code, form layout.Form) (*Scheme, error) {
	lay, err := layout.New(form, code.N(), code.K())
	if err != nil {
		return nil, err
	}
	s := &Scheme{code: code, lay: lay}
	s.intoEnc, _ = code.(codes.IntoEncoder)
	s.intoRec, _ = code.(codes.IntoReconstructor)
	if p, ok := code.(codes.PositionalCoder); ok {
		s.positional = p.PositionalKernel()
	}
	s.symBytes = codes.SymbolBytesOf(code)
	return s, nil
}

// MustScheme is NewScheme for known-good forms; it panics on error.
func MustScheme(code codes.Code, form layout.Form) *Scheme {
	s, err := NewScheme(code, form)
	if err != nil {
		panic(err)
	}
	return s
}

// Name combines layout form and code name, e.g. "EC-FRM-RS(6,3)".
func (s *Scheme) Name() string {
	switch s.lay.Name() {
	case "standard":
		return s.code.Name()
	case "rotated":
		return "R-" + s.code.Name()
	case "ecfrm":
		return "EC-FRM-" + s.code.Name()
	default:
		return s.lay.Name() + "-" + s.code.Name()
	}
}

// Code returns the candidate code.
func (s *Scheme) Code() codes.Code { return s.code }

// Layout returns the stripe layout.
func (s *Scheme) Layout() layout.Layout { return s.lay }

// SymbolBytes returns the candidate code's symbol width in bytes — the
// granularity shard sizes must respect: 1 for byte-wise codes, 2 for the
// GF(2^16) generator-matrix codes, 16 for packet-layout CRS16. Callers
// sizing shards (stores, benchmarks) should round sizes up to a multiple of
// this.
func (s *Scheme) SymbolBytes() int { return s.symBytes }

// N returns the number of disks a stripe spans.
func (s *Scheme) N() int { return s.lay.N() }

// DataPerStripe returns the number of data elements per stripe.
func (s *Scheme) DataPerStripe() int { return s.lay.DataPerStripe() }

// CellsPerStripe returns the total number of cells (data+parity) per stripe.
func (s *Scheme) CellsPerStripe() int { return s.lay.Rows() * s.lay.N() }

// FaultTolerance returns the number of arbitrary concurrent disk failures
// the scheme survives — identical to the candidate code's tolerance (§IV-C):
// every disk holds at most one element of each group, so f disk failures
// erase at most f elements per group.
func (s *Scheme) FaultTolerance() int { return s.code.FaultTolerance() }

// StorageOverhead returns total cells divided by data cells — identical to
// the candidate code's n/k (§V-B).
func (s *Scheme) StorageOverhead() float64 {
	return float64(s.CellsPerStripe()) / float64(s.DataPerStripe())
}

// cellIndex flattens a stripe position into the cell slice index.
func (s *Scheme) cellIndex(p layout.Pos) int { return p.Row*s.lay.N() + p.Col }

// EncodeStripe computes a full stripe from its data elements. data must hold
// DataPerStripe() equally sized shards in sequential (user byte) order. The
// result has CellsPerStripe() cells indexed row-major; data shards are
// aliased, parity shards freshly allocated.
func (s *Scheme) EncodeStripe(data [][]byte) ([][]byte, error) {
	dps := s.DataPerStripe()
	if len(data) != dps {
		return nil, fmt.Errorf("%w: got %d data shards, want %d", ErrBadRequest, len(data), dps)
	}
	cells := make([][]byte, s.CellsPerStripe())
	for e, d := range data {
		cells[s.cellIndex(s.lay.DataPos(e))] = d
	}
	k, n := s.code.K(), s.code.N()
	groupData := make([][]byte, k)
	for g := 0; g < s.lay.Groups(); g++ {
		for t := 0; t < k; t++ {
			groupData[t] = cells[s.cellIndex(s.lay.GroupCell(g, t))]
		}
		parity, err := s.code.Encode(groupData)
		if err != nil {
			return nil, err
		}
		for t := k; t < n; t++ {
			cells[s.cellIndex(s.lay.GroupCell(g, t))] = parity[t-k]
		}
	}
	return cells, nil
}

// EncodeStripeInto computes a full stripe into the caller-provided cells
// slice — the zero-allocation encode path. cells must have CellsPerStripe()
// slots; data shards are aliased into their cells, and each parity cell is
// either reused (when the slot already holds a buffer of the right size) or
// drawn from bufs. Together with a warm Buffers arena this performs no heap
// allocations in steady state.
func (s *Scheme) EncodeStripeInto(bufs *Buffers, cells [][]byte, data [][]byte) error {
	dps := s.DataPerStripe()
	if len(data) != dps {
		return fmt.Errorf("%w: got %d data shards, want %d", ErrBadRequest, len(data), dps)
	}
	if len(cells) != s.CellsPerStripe() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	if dps == 0 {
		return nil
	}
	size := len(data[0])
	for e, d := range data {
		cells[s.cellIndex(s.lay.DataPos(e))] = d
	}
	k, n := s.code.K(), s.code.N()
	sc := getStripeScratch(n, k)
	defer putStripeScratch(sc)
	for g := 0; g < s.lay.Groups(); g++ {
		for t := 0; t < k; t++ {
			sc.groupData[t] = cells[s.cellIndex(s.lay.GroupCell(g, t))]
		}
		for t := k; t < n; t++ {
			idx := s.cellIndex(s.lay.GroupCell(g, t))
			if len(cells[idx]) != size {
				cells[idx] = bufs.GetShard(size)
			}
			sc.parity[t-k] = cells[idx]
		}
		if err := s.encodeGroup(sc.parity, sc.groupData); err != nil {
			return err
		}
	}
	return nil
}

// encodeGroup encodes one group's parity into the given cells, using the
// code's allocation-free EncodeInto when available.
func (s *Scheme) encodeGroup(parity, groupData [][]byte) error {
	if s.intoEnc != nil {
		return s.intoEnc.EncodeInto(parity, groupData)
	}
	fresh, err := s.code.Encode(groupData)
	if err != nil {
		return err
	}
	for i := range parity {
		copy(parity[i], fresh[i])
	}
	return nil
}

// encodeGroupRange encodes byte range [lo,hi) of one group's cells. Only
// valid for positional codes (see codes.PositionalCoder); the ParallelCodec
// guards that. cells is the full stripe.
func (s *Scheme) encodeGroupRange(cells [][]byte, g, lo, hi int) error {
	k, n := s.code.K(), s.code.N()
	sc := getStripeScratch(n, k)
	defer putStripeScratch(sc)
	for t := 0; t < k; t++ {
		sc.groupData[t] = cells[s.cellIndex(s.lay.GroupCell(g, t))][lo:hi]
	}
	for t := k; t < n; t++ {
		sc.parity[t-k] = cells[s.cellIndex(s.lay.GroupCell(g, t))][lo:hi]
	}
	return s.encodeGroup(sc.parity, sc.groupData)
}

// ReconstructStripe rebuilds every nil cell of a stripe in place, group by
// group (the paper's §IV-D three-step reconstruction). It fails with
// ErrUnrecoverable if any group's erasure pattern is undecodable.
func (s *Scheme) ReconstructStripe(cells [][]byte) error {
	if len(cells) != s.CellsPerStripe() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	n := s.code.N()
	group := make([][]byte, n)
	for g := 0; g < s.lay.Groups(); g++ {
		missing := false
		for t := 0; t < n; t++ {
			group[t] = cells[s.cellIndex(s.lay.GroupCell(g, t))]
			if group[t] == nil {
				missing = true
			}
		}
		if !missing {
			continue
		}
		if err := s.code.Reconstruct(group); err != nil {
			return fmt.Errorf("%w: group %d: %v", ErrUnrecoverable, g, err)
		}
		for t := 0; t < n; t++ {
			idx := s.cellIndex(s.lay.GroupCell(g, t))
			if cells[idx] == nil {
				cells[idx] = group[t]
			}
		}
	}
	return nil
}

// ReconstructStripeInto is ReconstructStripe drawing decode buffers from
// bufs and pooling its scratch — the zero-allocation repair path.
func (s *Scheme) ReconstructStripeInto(bufs *Buffers, cells [][]byte) error {
	if len(cells) != s.CellsPerStripe() {
		return fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	n := s.code.N()
	sc := getStripeScratch(n, s.code.K())
	defer putStripeScratch(sc)
	group := sc.group
	for g := 0; g < s.lay.Groups(); g++ {
		missing := false
		for t := 0; t < n; t++ {
			group[t] = cells[s.cellIndex(s.lay.GroupCell(g, t))]
			if group[t] == nil {
				missing = true
			}
		}
		if !missing {
			continue
		}
		if err := s.reconstructGroup(bufs, group); err != nil {
			return fmt.Errorf("%w: group %d: %v", ErrUnrecoverable, g, err)
		}
		for t := 0; t < n; t++ {
			idx := s.cellIndex(s.lay.GroupCell(g, t))
			if cells[idx] == nil {
				cells[idx] = group[t]
			}
		}
	}
	return nil
}

// reconstructGroup decodes one group in place, using the code's
// allocation-free ReconstructInto when available.
func (s *Scheme) reconstructGroup(bufs *Buffers, group [][]byte) error {
	if s.intoRec != nil {
		return s.intoRec.ReconstructInto(group, bufs)
	}
	return s.code.Reconstruct(group)
}

// RebuildDataInto is RebuildData drawing the decode buffer from bufs and
// pooling its scratch — the zero-allocation degraded-read decode.
func (s *Scheme) RebuildDataInto(bufs *Buffers, cells [][]byte, e int) ([]byte, error) {
	if len(cells) != s.CellsPerStripe() {
		return nil, fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	pos := s.lay.DataPos(e)
	idx := s.cellIndex(pos)
	if cells[idx] != nil {
		return cells[idx], nil
	}
	c := s.lay.CellAt(pos)
	n := s.code.N()
	sc := getStripeScratch(n, s.code.K())
	defer putStripeScratch(sc)
	group := sc.group
	for t := 0; t < n; t++ {
		group[t] = cells[s.cellIndex(s.lay.GroupCell(c.Group, t))]
	}
	sc.target[0] = c.Element
	var err error
	if s.intoRec != nil {
		err = s.intoRec.ReconstructElementsInto(group, sc.target[:], bufs)
	} else {
		err = s.code.ReconstructElements(group, sc.target[:])
	}
	if err != nil {
		return nil, fmt.Errorf("%w: element %d: %v", ErrUnrecoverable, e, err)
	}
	cells[idx] = group[c.Element]
	return cells[idx], nil
}

// RebuildData rebuilds the in-stripe data element e from whatever cells of
// its group are present (non-nil) in cells, stores it into cells, and
// returns it. Cells outside e's group are ignored, and other erased cells
// of the group are left nil — this is the targeted decode a degraded read
// performs after fetching only a minimal recovery set.
func (s *Scheme) RebuildData(cells [][]byte, e int) ([]byte, error) {
	if len(cells) != s.CellsPerStripe() {
		return nil, fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	pos := s.lay.DataPos(e)
	idx := s.cellIndex(pos)
	if cells[idx] != nil {
		return cells[idx], nil
	}
	c := s.lay.CellAt(pos)
	n := s.code.N()
	group := make([][]byte, n)
	for t := 0; t < n; t++ {
		group[t] = cells[s.cellIndex(s.lay.GroupCell(c.Group, t))]
	}
	if err := s.code.ReconstructElements(group, []int{c.Element}); err != nil {
		return nil, fmt.Errorf("%w: element %d: %v", ErrUnrecoverable, e, err)
	}
	cells[idx] = group[c.Element]
	return cells[idx], nil
}

// UpdateData overwrites the in-stripe data element e with newData and folds
// the change into the group's parity cells via the candidate code's delta
// path (read-modify-write small write). Only e's cell and its group's n-k
// parity cells change; the updated cell indices are returned so callers can
// account the write I/O. The old cell and every parity cell of the group
// must be present (non-nil).
func (s *Scheme) UpdateData(cells [][]byte, e int, newData []byte) ([]int, error) {
	if len(cells) != s.CellsPerStripe() {
		return nil, fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	pos := s.lay.DataPos(e)
	idx := s.cellIndex(pos)
	old := cells[idx]
	if old == nil {
		return nil, fmt.Errorf("%w: element %d not present for update", ErrBadRequest, e)
	}
	if len(newData) != len(old) {
		return nil, fmt.Errorf("%w: new data %d bytes, cell holds %d", ErrBadRequest, len(newData), len(old))
	}
	delta := make([]byte, len(old))
	gf.XorSlice(delta, old, newData)
	c := s.lay.CellAt(pos)
	k, n := s.code.K(), s.code.N()
	parity := make([][]byte, n-k)
	touched := []int{idx}
	for t := k; t < n; t++ {
		pIdx := s.cellIndex(s.lay.GroupCell(c.Group, t))
		if cells[pIdx] == nil {
			return nil, fmt.Errorf("%w: parity cell of group %d missing for update", ErrBadRequest, c.Group)
		}
		parity[t-k] = cells[pIdx]
		touched = append(touched, pIdx)
	}
	if err := s.code.ApplyDelta(parity, c.Element, delta); err != nil {
		return nil, err
	}
	copy(cells[idx], newData)
	return touched, nil
}

// DataShards extracts the stripe's data shards in sequential order.
func (s *Scheme) DataShards(cells [][]byte) [][]byte {
	data := make([][]byte, s.DataPerStripe())
	for e := range data {
		data[e] = cells[s.cellIndex(s.lay.DataPos(e))]
	}
	return data
}

// VerifyStripe re-encodes the stripe's data and reports whether every parity
// cell matches. Used by scrubbing and by tests.
func (s *Scheme) VerifyStripe(cells [][]byte) (bool, error) {
	if len(cells) != s.CellsPerStripe() {
		return false, fmt.Errorf("%w: got %d cells, want %d", ErrBadRequest, len(cells), s.CellsPerStripe())
	}
	fresh, err := s.EncodeStripe(s.DataShards(cells))
	if err != nil {
		return false, err
	}
	for i := range cells {
		if len(cells[i]) != len(fresh[i]) {
			return false, nil
		}
		for b := range cells[i] {
			if cells[i][b] != fresh[i][b] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Access is one planned physical element read.
type Access struct {
	Disk   int        // physical disk
	Stripe int        // stripe index
	Pos    layout.Pos // cell within the stripe
}

// Plan is the result of read planning: the set of physical element reads
// (deduplicated — an element read once serves every consumer) and the
// per-disk load they induce.
type Plan struct {
	Requested int // data elements the user asked for
	Reads     []Access
	Loads     []int // per-disk element counts, indexed by disk
	Failed    []int // failed disks the plan avoided (empty for normal reads)
}

// MaxLoad returns the element count on the most loaded disk — the quantity
// the paper's whole design minimizes (§III-B).
func (p *Plan) MaxLoad() int {
	max := 0
	for _, l := range p.Loads {
		if l > max {
			max = l
		}
	}
	return max
}

// TotalReads returns the number of distinct physical element reads.
func (p *Plan) TotalReads() int { return len(p.Reads) }

// Cost returns TotalReads/Requested — the paper's "degraded read cost"
// metric (network/IO amplification). 1.0 for any normal read.
func (p *Plan) Cost() float64 {
	if p.Requested == 0 {
		return 0
	}
	return float64(len(p.Reads)) / float64(p.Requested)
}

// ContributingDisks returns how many distinct disks serve at least one read.
func (p *Plan) ContributingDisks() int {
	c := 0
	for _, l := range p.Loads {
		if l > 0 {
			c++
		}
	}
	return c
}

// planner accumulates deduplicated accesses.
type planner struct {
	s      *Scheme
	seen   map[Access]bool
	reads  []Access
	loads  []int
	failed map[int]bool
	// bias, when non-nil, is an external per-disk load offset (e.g. live
	// queue depth) added to the planned load when recovery-set options are
	// compared. It shifts which survivors are chosen without ever appearing
	// in the resulting Plan.Loads.
	bias []int
}

func newPlanner(s *Scheme, failed []int) *planner {
	f := make(map[int]bool, len(failed))
	for _, d := range failed {
		f[d] = true
	}
	return &planner{
		s:      s,
		seen:   make(map[Access]bool),
		loads:  make([]int, s.N()),
		failed: f,
	}
}

func (pl *planner) add(a Access) {
	if pl.seen[a] {
		return
	}
	pl.seen[a] = true
	pl.reads = append(pl.reads, a)
	pl.loads[a.Disk]++
}

// access builds the Access for element t of group g in the given stripe.
func (pl *planner) access(stripe, g, t int) Access {
	pos := pl.s.lay.GroupCell(g, t)
	return Access{Disk: pl.s.lay.Disk(stripe, pos.Col), Stripe: stripe, Pos: pos}
}

// PlanNormalRead plans a read of count sequential data elements starting at
// global data element index start, with all disks healthy. Only data cells
// are touched; the plan's Cost is exactly 1.
func (s *Scheme) PlanNormalRead(start, count int) (*Plan, error) {
	if start < 0 || count <= 0 {
		return nil, fmt.Errorf("%w: start=%d count=%d", ErrBadRequest, start, count)
	}
	pl := newPlanner(s, nil)
	dps := s.DataPerStripe()
	for x := start; x < start+count; x++ {
		stripe, e := x/dps, x%dps
		pos := s.lay.DataPos(e)
		pl.add(Access{Disk: s.lay.Disk(stripe, pos.Col), Stripe: stripe, Pos: pos})
	}
	return &Plan{Requested: count, Reads: pl.reads, Loads: pl.loads}, nil
}

// RecoveryPolicy selects how the degraded-read planner chooses among a lost
// element's candidate recovery sets.
type RecoveryPolicy int

const (
	// PolicyMinCost prefers the set adding the fewest extra reads, with
	// resulting max load as the tie-breaker. This mirrors the paper's
	// Jerasure-based implementation, whose decoder always fetches the
	// canonical minimum-I/O survivors — it is why the paper measures
	// near-identical degraded read *cost* across layout forms (Figure 9a/9b).
	PolicyMinCost RecoveryPolicy = iota
	// PolicyBalance prefers the set minimizing the resulting maximum disk
	// load (the paper's §III-B objective applied to recovery reads too),
	// with extra reads as the tie-breaker. Trades some extra I/O for lower
	// tail latency; kept as an ablation.
	PolicyBalance
)

// PlanDegradedRead plans a read of count sequential data elements starting
// at start while the given disks are failed, using PolicyMinCost. Elements
// on surviving disks are read directly; elements on failed disks are rebuilt
// from a recovery set of their group.
//
// If none of the candidate code's minimal recovery sets avoids the failed
// disks, the planner falls back to reading every surviving element of the
// group, which succeeds whenever the pattern is information-theoretically
// decodable; otherwise ErrUnrecoverable is returned.
func (s *Scheme) PlanDegradedRead(start, count int, failed []int) (*Plan, error) {
	return s.PlanDegradedReadPolicy(start, count, failed, PolicyMinCost)
}

// PlanDegradedReadPolicy is PlanDegradedRead with an explicit recovery-set
// selection policy.
func (s *Scheme) PlanDegradedReadPolicy(start, count int, failed []int, policy RecoveryPolicy) (*Plan, error) {
	return s.PlanDegradedReadBiased(start, count, failed, policy, nil)
}

// PlanDegradedReadBiased is PlanDegradedReadPolicy with an external per-disk
// load bias: bias[d] (typically the disk's live queue depth) is added to
// disk d's planned load whenever candidate recovery sets are compared, so a
// momentarily busy disk loses ties it would otherwise win. A nil bias is the
// unbiased planner; a non-nil bias must have one entry per disk. The bias
// influences only which survivors are selected — Plan.Loads still reports
// the plan's own element counts — and any recovery set produces the same
// decoded bytes, so biased and unbiased plans are byte-equivalent to execute.
func (s *Scheme) PlanDegradedReadBiased(start, count int, failed []int, policy RecoveryPolicy, bias []int) (*Plan, error) {
	if start < 0 || count <= 0 {
		return nil, fmt.Errorf("%w: start=%d count=%d", ErrBadRequest, start, count)
	}
	if bias != nil && len(bias) != s.N() {
		return nil, fmt.Errorf("%w: bias has %d entries for %d disks", ErrBadRequest, len(bias), s.N())
	}
	for _, d := range failed {
		if d < 0 || d >= s.N() {
			return nil, fmt.Errorf("%w: failed disk %d out of [0,%d)", ErrBadRequest, d, s.N())
		}
	}
	pl := newPlanner(s, failed)
	pl.bias = bias
	dps := s.DataPerStripe()

	// Pass 1: direct reads for elements on surviving disks.
	type lost struct{ stripe, g, t int }
	var rebuilds []lost
	for x := start; x < start+count; x++ {
		stripe, e := x/dps, x%dps
		pos := s.lay.DataPos(e)
		disk := s.lay.Disk(stripe, pos.Col)
		if !pl.failed[disk] {
			pl.add(Access{Disk: disk, Stripe: stripe, Pos: pos})
			continue
		}
		c := s.lay.CellAt(pos)
		rebuilds = append(rebuilds, lost{stripe, c.Group, c.Element})
	}

	// Pass 2: choose a recovery set for each lost element per the policy.
	for _, lo := range rebuilds {
		if err := s.planRebuild(pl, lo.stripe, lo.g, lo.t, policy); err != nil {
			return nil, err
		}
	}
	sort.Slice(pl.reads, func(i, j int) bool {
		a, b := pl.reads[i], pl.reads[j]
		if a.Stripe != b.Stripe {
			return a.Stripe < b.Stripe
		}
		if a.Pos.Row != b.Pos.Row {
			return a.Pos.Row < b.Pos.Row
		}
		return a.Pos.Col < b.Pos.Col
	})
	fcopy := append([]int(nil), failed...)
	return &Plan{Requested: count, Reads: pl.reads, Loads: pl.loads, Failed: fcopy}, nil
}

// planRebuild adds the reads needed to rebuild element t of group g in the
// given stripe to the plan.
func (s *Scheme) planRebuild(pl *planner, stripe, g, t int, policy RecoveryPolicy) error {
	type option struct {
		accesses []Access
		maxLoad  int
		newReads int
		order    int
	}
	var best *option
	better := func(a, b *option) bool {
		var ka, kb [3]int
		if policy == PolicyBalance {
			ka = [3]int{a.maxLoad, a.newReads, a.order}
			kb = [3]int{b.maxLoad, b.newReads, b.order}
		} else {
			ka = [3]int{a.newReads, a.maxLoad, a.order}
			kb = [3]int{b.newReads, b.maxLoad, b.order}
		}
		for i := range ka {
			if ka[i] != kb[i] {
				return ka[i] < kb[i]
			}
		}
		return false
	}
	consider := func(set []int, order int) {
		accesses := make([]Access, 0, len(set))
		extra := make(map[int]int)
		newReads := 0
		for _, tt := range set {
			a := pl.access(stripe, g, tt)
			if pl.failed[a.Disk] {
				return // unusable set
			}
			accesses = append(accesses, a)
			if !pl.seen[a] {
				extra[a.Disk]++
				newReads++
			}
		}
		maxLoad := 0
		for d, l := range pl.loads {
			load := l + extra[d]
			if pl.bias != nil {
				load += pl.bias[d]
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		cand := &option{accesses, maxLoad, newReads, order}
		if best == nil || better(cand, best) {
			best = cand
		}
	}
	for order, set := range s.code.RecoverySets(t) {
		consider(set, order)
	}
	if best == nil {
		// Fallback: read every surviving element of the group and decode
		// generally, if the overall pattern allows it.
		var surviving []int
		var erased []int
		for tt := 0; tt < s.code.N(); tt++ {
			a := pl.access(stripe, g, tt)
			if pl.failed[a.Disk] {
				erased = append(erased, tt)
			} else if tt != t {
				surviving = append(surviving, tt)
			}
		}
		if !s.code.CanRecover(erased) {
			return fmt.Errorf("%w: group %d stripe %d, erased elements %v",
				ErrUnrecoverable, g, stripe, erased)
		}
		consider(surviving, 0)
	}
	if best == nil {
		return fmt.Errorf("%w: group %d stripe %d has no usable recovery set",
			ErrUnrecoverable, g, stripe)
	}
	for _, a := range best.accesses {
		pl.add(a)
	}
	return nil
}
