package raid6

import (
	"bytes"
	"math/rand"
	"testing"
)

func encodeRandom(t testing.TB, c *Code, size int, seed int64) [][]byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	cells := make([][]byte, c.Rows()*c.Disks())
	for _, ref := range c.DataRefs() {
		b := make([]byte, size)
		rng.Read(b)
		cells[c.Idx(ref)] = b
	}
	if err := c.Encode(cells); err != nil {
		t.Fatal(err)
	}
	return cells
}

func eraseDisks(c *Code, cells [][]byte, disks []int) [][]byte {
	failed := make(map[int]bool)
	for _, d := range disks {
		failed[d] = true
	}
	out := make([][]byte, len(cells))
	for i, cell := range cells {
		if !failed[i%c.Disks()] {
			out[i] = cell
		}
	}
	return out
}

func TestConstructorValidation(t *testing.T) {
	for _, p := range []int{0, 1, 4, 6, 8, 9} {
		if _, err := NewRDP(p); err == nil {
			t.Errorf("NewRDP(%d) succeeded", p)
		}
		if _, err := NewEVENODD(p); err == nil {
			t.Errorf("NewEVENODD(%d) succeeded", p)
		}
	}
}

func TestRDPShape(t *testing.T) {
	c, err := NewRDP(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "RDP(5)" || c.Rows() != 4 || c.Disks() != 6 {
		t.Fatalf("shape: %s %d×%d", c.Name(), c.Rows(), c.Disks())
	}
	if c.DataCells() != 16 { // (p-1)·(p-1)
		t.Fatalf("data cells = %d", c.DataCells())
	}
	// Overhead: 24 cells / 16 data = 1.5x (two parity disks of six).
	if got := c.StorageOverhead(); got != 1.5 {
		t.Fatalf("overhead = %v", got)
	}
}

func TestEVENODDShape(t *testing.T) {
	c, err := NewEVENODD(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Rows() != 4 || c.Disks() != 7 || c.DataCells() != 20 {
		t.Fatalf("shape: %d×%d data %d", c.Rows(), c.Disks(), c.DataCells())
	}
}

func TestRDPRowParityDefinition(t *testing.T) {
	c, _ := NewRDP(5)
	cells := encodeRandom(t, c, 16, 1)
	for r := 0; r < c.Rows(); r++ {
		want := make([]byte, 16)
		for d := 0; d < 4; d++ {
			src := cells[c.Idx(CellRef{Row: r, Disk: d})]
			for i := range want {
				want[i] ^= src[i]
			}
		}
		if !bytes.Equal(cells[c.Idx(CellRef{Row: r, Disk: 4})], want) {
			t.Fatalf("row parity %d wrong", r)
		}
	}
}

func TestRDPDiagonalIncludesRowParity(t *testing.T) {
	// RDP's signature property: diagonal parity is computed over data AND
	// row-parity columns. Check diagonal 0 of RDP(5) explicitly:
	// cells (i, (0-i) mod 5) for i=0..3 → (0,0),(1,4),(2,3),(3,2).
	c, _ := NewRDP(5)
	cells := encodeRandom(t, c, 8, 2)
	want := make([]byte, 8)
	for _, ref := range []CellRef{{Row: 0, Disk: 0}, {Row: 1, Disk: 4}, {Row: 2, Disk: 3}, {Row: 3, Disk: 2}} {
		src := cells[c.Idx(ref)]
		for i := range want {
			want[i] ^= src[i]
		}
	}
	if !bytes.Equal(cells[c.Idx(CellRef{Row: 0, Disk: 5})], want) {
		t.Fatal("diagonal parity 0 wrong")
	}
}

func TestAllDoubleDiskFailures(t *testing.T) {
	build := []struct {
		name string
		mk   func(int) (*Code, error)
		ps   []int
	}{
		{"RDP", NewRDP, []int{3, 5, 7, 11}},
		{"EVENODD", NewEVENODD, []int{3, 5, 7}},
	}
	for _, b := range build {
		for _, p := range b.ps {
			c, err := b.mk(p)
			if err != nil {
				t.Fatal(err)
			}
			cells := encodeRandom(t, c, 16, int64(p))
			n := c.Disks()
			for a := 0; a < n; a++ {
				for bb := a + 1; bb < n; bb++ {
					broken := eraseDisks(c, cells, []int{a, bb})
					if err := c.ReconstructDisks(broken, []int{a, bb}); err != nil {
						t.Fatalf("%s(%d) disks {%d,%d}: %v", b.name, p, a, bb, err)
					}
					for i := range cells {
						if !bytes.Equal(broken[i], cells[i]) {
							t.Fatalf("%s(%d) disks {%d,%d}: cell %d mismatch", b.name, p, a, bb, i)
						}
					}
				}
			}
		}
	}
}

func TestTripleFailureUnrecoverable(t *testing.T) {
	for _, mk := range []func(int) (*Code, error){NewRDP, NewEVENODD} {
		c, _ := mk(5)
		if c.CanRecover([]int{0, 1, 2}) {
			t.Fatalf("%s must not recover 3 disks", c.Name())
		}
	}
}

func TestSingleFailureEveryDisk(t *testing.T) {
	c, _ := NewEVENODD(7)
	cells := encodeRandom(t, c, 8, 3)
	for d := 0; d < c.Disks(); d++ {
		broken := eraseDisks(c, cells, []int{d})
		if err := c.ReconstructDisks(broken, []int{d}); err != nil {
			t.Fatalf("disk %d: %v", d, err)
		}
		for i := range cells {
			if !bytes.Equal(broken[i], cells[i]) {
				t.Fatalf("disk %d cell %d mismatch", d, i)
			}
		}
	}
}

func BenchmarkRDPEncode7(b *testing.B) {
	c, _ := NewRDP(7)
	cells := make([][]byte, c.Rows()*c.Disks())
	for _, ref := range c.DataRefs() {
		cells[c.Idx(ref)] = make([]byte, 64<<10)
	}
	b.SetBytes(int64(c.DataCells() * 64 << 10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(cells); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSTARShapeAndValidation(t *testing.T) {
	for _, p := range []int{0, 4, 6} {
		if _, err := NewSTAR(p); err == nil {
			t.Errorf("NewSTAR(%d) succeeded", p)
		}
	}
	c, err := NewSTAR(5)
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "STAR(5)" || c.Rows() != 4 || c.Disks() != 8 || c.DataCells() != 20 {
		t.Fatalf("shape: %s %d×%d data %d", c.Name(), c.Rows(), c.Disks(), c.DataCells())
	}
}

func TestSTARAllTripleDiskFailures(t *testing.T) {
	for _, p := range []int{3, 5, 7} {
		c, err := NewSTAR(p)
		if err != nil {
			t.Fatal(err)
		}
		cells := encodeRandom(t, c, 16, int64(40+p))
		n := c.Disks()
		for a := 0; a < n; a++ {
			for b := a + 1; b < n; b++ {
				for d := b + 1; d < n; d++ {
					broken := eraseDisks(c, cells, []int{a, b, d})
					if err := c.ReconstructDisks(broken, []int{a, b, d}); err != nil {
						t.Fatalf("STAR(%d) disks {%d,%d,%d}: %v", p, a, b, d, err)
					}
					for i := range cells {
						if !bytes.Equal(broken[i], cells[i]) {
							t.Fatalf("STAR(%d) disks {%d,%d,%d}: cell %d mismatch", p, a, b, d, i)
						}
					}
				}
			}
		}
	}
}

func TestSTARQuadFailureUnrecoverable(t *testing.T) {
	c, _ := NewSTAR(5)
	if c.CanRecover([]int{0, 1, 2, 3}) {
		t.Fatal("STAR must not recover 4 disks")
	}
}
