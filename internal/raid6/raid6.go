// Package raid6 implements the classic horizontal RAID-6 array codes the
// EC-FRM paper surveys in §II-B: RDP (Corbett et al., FAST'04) and EVENODD
// (Blaum et al.). Both protect against any two disk failures using pure XOR
// arithmetic over a (p-1)-row array with p prime, and both are declared over
// the internal/xorcode engine, which derives encoding, reconstruction, and
// exact decodability analysis from the parity equations.
//
// They are horizontal (dedicated parity disks) but multi-row, so they are
// not EC-FRM candidate codes; they serve as comparison baselines for the
// §II-B taxonomy and as further exercise for the XOR engine.
package raid6

import (
	"fmt"

	"repro/internal/xorcode"
)

// Code is an XOR-linear array code (see internal/xorcode).
type Code = xorcode.Code

// CellRef addresses a cell in the (rows × disks) array.
type CellRef = xorcode.CellRef

func isPrime(n int) bool {
	if n < 2 {
		return false
	}
	for i := 2; i*i <= n; i++ {
		if n%i == 0 {
			return false
		}
	}
	return true
}

// NewRDP constructs the Row-Diagonal Parity code for prime p ≥ 3: an array
// of p-1 rows × p+1 disks. Disks 0..p-2 hold data, disk p-1 the row parity,
// and disk p the diagonal parity. Diagonal k (k = 0..p-2) collects the
// cells (i, j) with (i+j) mod p = k over the data AND row-parity columns;
// diagonal p-1 is the "missing" diagonal and is never stored — the
// construction that makes double-failure recovery a deterministic chain.
func NewRDP(p int) (*Code, error) {
	if p < 3 || !isPrime(p) {
		return nil, fmt.Errorf("raid6: RDP needs a prime p ≥ 3, got %d", p)
	}
	rows, disks := p-1, p+1
	var data []CellRef
	for r := 0; r < rows; r++ {
		for d := 0; d < p-1; d++ {
			data = append(data, CellRef{Row: r, Disk: d})
		}
	}
	var eqs []xorcode.Equation
	// Row parity first: disk p-1.
	for r := 0; r < rows; r++ {
		var src []CellRef
		for d := 0; d < p-1; d++ {
			src = append(src, CellRef{Row: r, Disk: d})
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: r, Disk: p - 1}, Sources: src})
	}
	// Diagonal parity: disk p, diagonal k stored in row k. Sources span
	// columns 0..p-1 (including the row-parity column) — legal because the
	// row parities are defined by the earlier equations.
	for k := 0; k < rows; k++ {
		var src []CellRef
		for i := 0; i < rows; i++ {
			j := ((k-i)%p + p) % p
			if j <= p-1 {
				src = append(src, CellRef{Row: i, Disk: j})
			}
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: k, Disk: p}, Sources: src})
	}
	return xorcode.New(fmt.Sprintf("RDP(%d)", p), rows, disks, data, eqs)
}

// NewSTAR constructs the STAR code (Huang & Xu, FAST'05) for prime p ≥ 3:
// EVENODD extended with a third parity column of anti-diagonals, giving
// p-1 rows × p+3 disks and tolerance for ANY three disk failures. Disk p
// holds row parity, disk p+1 the slope-(+1) diagonal parity with its
// missing-diagonal adjuster (exactly EVENODD's), and disk p+2 the
// slope-(-1) anti-diagonal parity with the symmetric adjuster.
func NewSTAR(p int) (*Code, error) {
	if p < 3 || !isPrime(p) {
		return nil, fmt.Errorf("raid6: STAR needs a prime p ≥ 3, got %d", p)
	}
	rows, disks := p-1, p+3
	var data []CellRef
	for r := 0; r < rows; r++ {
		for d := 0; d < p; d++ {
			data = append(data, CellRef{Row: r, Disk: d})
		}
	}
	var eqs []xorcode.Equation
	// Row parity.
	for r := 0; r < rows; r++ {
		var src []CellRef
		for d := 0; d < p; d++ {
			src = append(src, CellRef{Row: r, Disk: d})
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: r, Disk: p}, Sources: src})
	}
	// Diagonal parity (slope +1), EVENODD-style: diagonal k = {(i,j):
	// (i+j) mod p = k}, adjuster = diagonal p-1.
	for k := 0; k < rows; k++ {
		var src []CellRef
		for i := 0; i < rows; i++ {
			src = append(src, CellRef{Row: i, Disk: ((k-i)%p + p) % p})
		}
		for i := 0; i < rows; i++ {
			src = append(src, CellRef{Row: i, Disk: ((p - 1 - i) % p)})
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: k, Disk: p + 1}, Sources: src})
	}
	// Anti-diagonal parity (slope -1): anti-diagonal k = {(i,j):
	// (j-i) mod p = k}, adjuster = anti-diagonal p-1... mirrored through
	// j → (k+i) mod p.
	for k := 0; k < rows; k++ {
		var src []CellRef
		for i := 0; i < rows; i++ {
			src = append(src, CellRef{Row: i, Disk: (k + i) % p})
		}
		for i := 0; i < rows; i++ {
			src = append(src, CellRef{Row: i, Disk: (p - 1 + i) % p})
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: k, Disk: p + 2}, Sources: src})
	}
	return xorcode.New(fmt.Sprintf("STAR(%d)", p), rows, disks, data, eqs)
}

// NewEVENODD constructs the EVENODD code for prime p ≥ 3: p-1 rows × p+2
// disks. Disks 0..p-1 hold data, disk p the row parity, disk p+1 the
// diagonal parity. The diagonal parity of diagonal k also folds in the
// XOR of the missing diagonal p-1 (the "S" adjuster), which is what lets
// EVENODD keep its parity columns independent of each other.
func NewEVENODD(p int) (*Code, error) {
	if p < 3 || !isPrime(p) {
		return nil, fmt.Errorf("raid6: EVENODD needs a prime p ≥ 3, got %d", p)
	}
	rows, disks := p-1, p+2
	var data []CellRef
	for r := 0; r < rows; r++ {
		for d := 0; d < p; d++ {
			data = append(data, CellRef{Row: r, Disk: d})
		}
	}
	// The S diagonal: cells (i, p-1-i) for i = 0..p-2.
	sCells := make(map[CellRef]bool, rows)
	for i := 0; i < rows; i++ {
		sCells[CellRef{Row: i, Disk: p - 1 - i}] = true
	}
	var eqs []xorcode.Equation
	for r := 0; r < rows; r++ {
		var src []CellRef
		for d := 0; d < p; d++ {
			src = append(src, CellRef{Row: r, Disk: d})
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: r, Disk: p}, Sources: src})
	}
	for k := 0; k < rows; k++ {
		var src []CellRef
		for i := 0; i < rows; i++ {
			j := ((k-i)%p + p) % p
			if j <= p-1 {
				src = append(src, CellRef{Row: i, Disk: j})
			}
		}
		// Fold in S (diagonal p-1), skipping any accidental overlap —
		// there is none, since diagonals are disjoint for distinct k.
		for i := 0; i < rows; i++ {
			src = append(src, CellRef{Row: i, Disk: p - 1 - i})
		}
		eqs = append(eqs, xorcode.Equation{Target: CellRef{Row: k, Disk: p + 1}, Sources: src})
	}
	return xorcode.New(fmt.Sprintf("EVENODD(%d)", p), rows, disks, data, eqs)
}
