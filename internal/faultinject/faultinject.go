// Package faultinject provides a seeded, deterministic fault-injection
// subsystem for the erasure-coded store — the machinery for reproducibly
// exercising slow, flaky, and corrupting disks across every layer built on
// store.Device.
//
// A Plan is a seed plus per-device policies (added latency, transient
// read/write errors, stuck/slow operations, silent bit corruption,
// fail-after-N-ops). An Injector compiled from a plan implements
// store.FaultInjector: every device operation draws its fault verdict from
// a per-device RNG stream derived from (seed, device), so
//
//   - the i-th operation on device d always receives the same verdict for a
//     given seed, independent of what other devices do, and
//   - any single-threaded schedule replays byte-for-byte from the seed
//     alone (the determinism tests pin this down).
//
// Under concurrency, per-device operation order still fully determines the
// fault sequence each device serves.
//
// CheckStore is the companion invariant checker: after any fault schedule
// whose permanent damage stays within tolerance, every logical byte must
// decode correctly, every checksum must scrub clean (healing first), and
// the layout must still satisfy Lemma 1's placement precondition.
package faultinject

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/store"
)

// ErrInjected is the transient error surfaced by ReadErrProb/WriteErrProb
// faults, wrapped by the store into its ErrUnavailable retry machinery.
var ErrInjected = errors.New("faultinject: injected transient error")

// ErrPlan flags an invalid fault plan (bad probabilities, negative
// latencies, duplicate devices).
var ErrPlan = errors.New("faultinject: invalid plan")

// maxLatency bounds injected latencies so a decoded plan can never stall a
// system (or a fuzzer) indefinitely.
const maxLatency = 10 * time.Second

// Policy describes the faults injected on one device. Probabilities are
// per-operation in [0,1]; durations are nanoseconds in JSON.
type Policy struct {
	// Device is the device ID this policy applies to.
	Device int `json:"device"`
	// Latency is added to every operation; Jitter adds a uniform random
	// extra in [0, Jitter).
	Latency time.Duration `json:"latency,omitempty"`
	Jitter  time.Duration `json:"jitter,omitempty"`
	// ReadErrProb / WriteErrProb are the chances an operation returns a
	// transient error instead of completing.
	ReadErrProb  float64 `json:"read_err_prob,omitempty"`
	WriteErrProb float64 `json:"write_err_prob,omitempty"`
	// StuckProb is the chance an operation hangs past any per-op timeout —
	// a stuck or pathologically slow disk.
	StuckProb float64 `json:"stuck_prob,omitempty"`
	// CorruptProb is the chance a read returns silently bit-flipped bytes.
	// The store's cell checksums detect the mis-read and retry it.
	CorruptProb float64 `json:"corrupt_prob,omitempty"`
	// FailAfterOps, when positive, fail-stops the device after that many
	// total operations (reads + writes): every later operation behaves
	// like a failed disk until the plan is cleared.
	FailAfterOps int `json:"fail_after_ops,omitempty"`
}

// validate rejects out-of-range policy fields.
func (p Policy) validate() error {
	if p.Device < 0 {
		return fmt.Errorf("%w: negative device %d", ErrPlan, p.Device)
	}
	if p.Latency < 0 || p.Latency > maxLatency || p.Jitter < 0 || p.Jitter > maxLatency {
		return fmt.Errorf("%w: device %d latency %v jitter %v outside [0, %v]",
			ErrPlan, p.Device, p.Latency, p.Jitter, maxLatency)
	}
	for _, pr := range []struct {
		name string
		v    float64
	}{
		{"read_err_prob", p.ReadErrProb},
		{"write_err_prob", p.WriteErrProb},
		{"stuck_prob", p.StuckProb},
		{"corrupt_prob", p.CorruptProb},
	} {
		if pr.v < 0 || pr.v > 1 || pr.v != pr.v { // NaN-safe
			return fmt.Errorf("%w: device %d %s = %v outside [0,1]", ErrPlan, p.Device, pr.name, pr.v)
		}
	}
	if p.FailAfterOps < 0 {
		return fmt.Errorf("%w: device %d fail_after_ops %d negative", ErrPlan, p.Device, p.FailAfterOps)
	}
	return nil
}

// Plan is a reproducible fault schedule: a seed and per-device policies.
// The zero plan injects nothing.
type Plan struct {
	Seed     int64    `json:"seed"`
	Policies []Policy `json:"policies,omitempty"`
}

// Validate checks every policy and rejects duplicate device entries.
func (p Plan) Validate() error {
	seen := make(map[int]bool, len(p.Policies))
	for _, pol := range p.Policies {
		if err := pol.validate(); err != nil {
			return err
		}
		if seen[pol.Device] {
			return fmt.Errorf("%w: duplicate policy for device %d", ErrPlan, pol.Device)
		}
		seen[pol.Device] = true
	}
	return nil
}

// ParsePlan decodes and validates a fault plan from JSON bytes.
func ParsePlan(data []byte) (Plan, error) {
	var p Plan
	if err := json.Unmarshal(data, &p); err != nil {
		return Plan{}, fmt.Errorf("%w: %v", ErrPlan, err)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// devStream is one device's private fault stream: its policy, its RNG, and
// its operation count. The mutex serializes concurrent operations on the
// same device so each consumes exactly one slot of the stream.
type devStream struct {
	mu  sync.Mutex
	rng *rand.Rand
	pol Policy
	ops int
}

// Injector implements store.FaultInjector from a Plan. Safe for concurrent
// use; devices without a policy are fault-free.
type Injector struct {
	plan Plan
	devs map[int]*devStream
}

// New compiles a plan into an Injector. The plan should be validated first
// (ParsePlan does; hand-built plans can call Validate).
func New(plan Plan) *Injector {
	in := &Injector{plan: plan, devs: make(map[int]*devStream, len(plan.Policies))}
	for _, pol := range plan.Policies {
		in.devs[pol.Device] = &devStream{rng: rand.New(rand.NewSource(deviceSeed(plan.Seed, pol.Device))), pol: pol}
	}
	return in
}

// deviceSeed mixes the plan seed with the device ID (splitmix64 finalizer)
// so per-device streams are independent and a seed change reshuffles all.
func deviceSeed(seed int64, dev int) int64 {
	z := uint64(seed) + uint64(dev+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Plan returns a copy of the compiled plan (for /faults GET round-trips).
func (in *Injector) Plan() Plan {
	out := Plan{Seed: in.plan.Seed, Policies: append([]Policy(nil), in.plan.Policies...)}
	return out
}

// Ops returns the number of operations device dev has drawn so far.
func (in *Injector) Ops(dev int) int {
	ds := in.devs[dev]
	if ds == nil {
		return 0
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.ops
}

// ReadFault implements store.FaultInjector.
func (in *Injector) ReadFault(dev int) store.Fault { return in.fault(dev, false) }

// WriteFault implements store.FaultInjector.
func (in *Injector) WriteFault(dev int) store.Fault { return in.fault(dev, true) }

// fault draws the next verdict from the device's stream. Exactly four
// uniform draws are consumed per operation regardless of the policy's
// fields, so streams stay aligned and replayable whatever the policy mix.
func (in *Injector) fault(dev int, write bool) store.Fault {
	ds := in.devs[dev]
	if ds == nil {
		return store.Fault{}
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.ops++
	if ds.pol.FailAfterOps > 0 && ds.ops > ds.pol.FailAfterOps {
		return store.Fault{Failed: true}
	}
	stuckDraw := ds.rng.Float64()
	errDraw := ds.rng.Float64()
	corruptDraw := ds.rng.Float64()
	jitterDraw := ds.rng.Float64()

	var f store.Fault
	f.Delay = ds.pol.Latency + time.Duration(jitterDraw*float64(ds.pol.Jitter))
	if stuckDraw < ds.pol.StuckProb {
		f.Stuck = true
		return f
	}
	errProb := ds.pol.ReadErrProb
	if write {
		errProb = ds.pol.WriteErrProb
	}
	if errDraw < errProb {
		f.Err = ErrInjected
		return f
	}
	if !write && corruptDraw < ds.pol.CorruptProb {
		f.Corrupt = true
	}
	return f
}
