package faultinject

import (
	"bytes"
	"fmt"

	"repro/internal/store"
)

// CheckStore verifies the store's end-state invariants after a fault
// schedule, with fault injection suspended for the duration of the check
// (the checker inspects the store, not the fault plan):
//
//  1. Decode correctness — the first len(want) logical bytes read back
//     equal want, through whatever failures are still outstanding.
//  2. Self-repair — every cell whose checksum fails is healable, and after
//     healing, checksums verify clean and every stripe scrubs
//     parity-consistent. (Skipped while disks are failed: scrubbing reads
//     every cell, so recover first for the full check.)
//  3. Placement — per stripe, every code group still occupies one element
//     on each of the n disks (Lemma 1's precondition), and every device
//     holds exactly one cell per stripe-row.
//
// A nil error is the "within tolerance" verdict: no byte was silently
// wrong, nothing unrecoverable happened, geometry is intact.
func CheckStore(st *store.Store, want []byte) error {
	prev := st.FaultInjector()
	st.SetFaultInjector(nil)
	defer st.SetFaultInjector(prev)

	// 1. Every logical byte decodes correctly.
	if len(want) > 0 {
		res, err := st.ReadAt(0, len(want))
		if err != nil {
			return fmt.Errorf("faultinject: decode check: %w", err)
		}
		if !bytes.Equal(res.Data, want) {
			i := 0
			for i < len(want) && res.Data[i] == want[i] {
				i++
			}
			return fmt.Errorf("faultinject: decode check: byte %d differs (got %#x want %#x)",
				i, res.Data[i], want[i])
		}
	}

	// 3. Placement: one element of every group per disk, per stripe, and
	// full devices. Checked before scrub so geometry violations surface
	// even when failures block the repair checks.
	if err := checkPlacement(st); err != nil {
		return err
	}

	if len(st.FailedDisks()) > 0 {
		return nil // scrub reads every cell; recover first for a full check
	}

	// 2. Heal whatever checksum damage remains, then everything must
	// verify clean and scrub parity-consistent.
	for _, bad := range st.VerifyChecksums() {
		healed, err := st.Heal(bad.Stripe, bad.Pos)
		if err != nil {
			return fmt.Errorf("faultinject: heal stripe %d cell (%d,%d): %w",
				bad.Stripe, bad.Pos.Row, bad.Pos.Col, err)
		}
		if !healed {
			return fmt.Errorf("faultinject: stripe %d cell (%d,%d) flagged corrupt but not healed",
				bad.Stripe, bad.Pos.Row, bad.Pos.Col)
		}
	}
	if bad := st.VerifyChecksums(); len(bad) > 0 {
		return fmt.Errorf("faultinject: %d cells still fail checksums after healing (first %+v)", len(bad), bad[0])
	}
	badStripes, err := st.Scrub()
	if err != nil {
		return fmt.Errorf("faultinject: scrub: %w", err)
	}
	if len(badStripes) > 0 {
		return fmt.Errorf("faultinject: scrub found parity-inconsistent stripes %v", badStripes)
	}
	return nil
}

// checkPlacement re-verifies Lemma 1's placement precondition on the live
// store: within every stripe, each code group has exactly one element on
// every disk, and each device holds exactly Rows() cells per stripe.
func checkPlacement(st *store.Store) error {
	lay := st.Scheme().Layout()
	n := lay.N()
	for stripe := 0; stripe < st.Stripes(); stripe++ {
		for g := 0; g < lay.Groups(); g++ {
			disks := make(map[int]int, n)
			for t := 0; t < n; t++ {
				disks[lay.Disk(stripe, lay.GroupCell(g, t).Col)]++
			}
			if len(disks) != n {
				return fmt.Errorf("faultinject: stripe %d group %d spans %d disks, want %d (Lemma 1 violated)",
					stripe, g, len(disks), n)
			}
			for d, c := range disks {
				if c != 1 {
					return fmt.Errorf("faultinject: stripe %d group %d places %d elements on disk %d, want 1",
						stripe, g, c, d)
				}
			}
		}
	}
	for d := 0; d < n; d++ {
		want := st.Stripes() * lay.Rows()
		if got := st.Device(d).Elements(); got != want {
			return fmt.Errorf("faultinject: device %d holds %d cells, want %d", d, got, want)
		}
	}
	return nil
}
