package faultinject

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/store"
)

// chaosSeeds returns the fixed reproduction seeds plus an optional extra
// from CHAOS_SEED (the `make chaos` target passes a time-derived one,
// logged here so any failure names the seed that reproduces it).
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		extra, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		t.Logf("chaos: running extra seed %d (reproduce with CHAOS_SEED=%d)", extra, extra)
		seeds = append(seeds, extra)
	}
	return seeds
}

// chaosCells is the {RS, LRC, CRS} × {standard, rotated, ecfrm} grid the
// chaos suite sweeps.
func chaosCells(t testing.TB) map[string]*core.Scheme {
	t.Helper()
	cells := make(map[string]*core.Scheme)
	codesList := map[string]codes.Code{
		"rs":  rs.Must(6, 3),
		"lrc": lrc.Must(6, 2, 2),
		"crs": crs.Must(6, 3),
	}
	for cname, c := range codesList {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM} {
			cells[fmt.Sprintf("%s-%s", cname, form)] = core.MustScheme(c, form)
		}
	}
	return cells
}

// leakCheck asserts the test leaves no goroutines behind, giving stragglers
// a grace window to drain.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

// randomPlan draws a moderate per-device fault mix: all policy knobs
// exercised, latencies kept tiny so schedules stay fast, and fail-after
// thresholds high enough that at most transient outages occur mid-schedule.
func randomPlan(rng *rand.Rand, n int) Plan {
	p := Plan{Seed: rng.Int63()}
	for d := 0; d < n; d++ {
		if rng.Float64() < 0.4 {
			continue // leave some devices fault-free
		}
		pol := Policy{
			Device:      d,
			Latency:     time.Duration(rng.Intn(20)) * time.Microsecond,
			Jitter:      time.Duration(rng.Intn(30)) * time.Microsecond,
			ReadErrProb: rng.Float64() * 0.25,
			StuckProb:   rng.Float64() * 0.08,
			CorruptProb: rng.Float64() * 0.2,
		}
		if rng.Float64() < 0.3 {
			pol.WriteErrProb = rng.Float64() * 0.1
		}
		if rng.Float64() < 0.25 {
			pol.FailAfterOps = 300 + rng.Intn(500)
		}
		p.Policies = append(p.Policies, pol)
	}
	return p
}

// chaosStore builds a store with fast retry budgets and a seeded payload.
func chaosStore(t *testing.T, scheme *core.Scheme, seed int64, stripes int) (*store.Store, []byte) {
	t.Helper()
	st := store.MustNew(scheme, 64)
	st.SetRetryPolicy(200*time.Microsecond, 2)
	payload := make([]byte, stripes*scheme.DataPerStripe()*64)
	rand.New(rand.NewSource(seed)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	return st, payload
}

// TestChaosSeededWithinTolerance drives randomized fault schedules whose
// permanent damage stays within each scheme's tolerance — transient faults
// on every device, disks failing and recovering, cells corrupting, bytes
// overwritten — and asserts two things throughout: no read ever returns
// silent wrong bytes, and the invariant checker passes at the end.
func TestChaosSeededWithinTolerance(t *testing.T) {
	for name, scheme := range chaosCells(t) {
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				leakCheck(t)
				runWithinToleranceSchedule(t, scheme, seed)
			})
		}
	}
}

func runWithinToleranceSchedule(t *testing.T, scheme *core.Scheme, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	st, payload := chaosStore(t, scheme, seed, 4)
	st.SetFaultInjector(New(randomPlan(rng, scheme.N())))

	tol := scheme.FaultTolerance()
	elem := st.ElementSize()
	// Outstanding corruptions, one per stripe at most. Stripes never share a
	// code group, so with failed disks capped at tol-1 no group ever carries
	// more than tol erasures — the schedule stays within tolerance by
	// construction. (A read may heal an entry early; windDown tolerates that.)
	corrupted := make(map[int]layout.Pos)
	for step := 0; step < 50; step++ {
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4: // read a random range; correct bytes or loud error
			off := rng.Intn(len(payload) - 1)
			ln := 1 + rng.Intn(min(len(payload)-off, 3*scheme.DataPerStripe()*elem))
			res, err := st.ReadAt(int64(off), ln)
			if err == nil && !bytes.Equal(res.Data, payload[off:off+ln]) {
				t.Fatalf("step %d: silent wrong bytes at [%d,+%d)", step, off, ln)
			}
		case 5: // fail a disk, leaving headroom for one corruption per group
			if len(st.FailedDisks()) < tol-1 {
				st.FailDiskWithinTolerance(rng.Intn(scheme.N()))
			}
		case 6: // recover a failed disk (may fail transiently; retried later)
			if failed := st.FailedDisks(); len(failed) > 0 {
				st.RecoverDisk(failed[rng.Intn(len(failed))])
			}
		case 7: // corrupt one cell, max one outstanding per stripe
			stripe := rng.Intn(st.Stripes())
			if _, dirty := corrupted[stripe]; !dirty {
				lay := scheme.Layout()
				pos := layout.Pos{Row: rng.Intn(lay.Rows()), Col: rng.Intn(lay.N())}
				if err := st.CorruptCell(stripe, pos); err != nil {
					t.Fatalf("step %d: corrupt: %v", step, err)
				}
				corrupted[stripe] = pos
			}
		case 8, 9: // overwrite a few elements; atomic under write faults
			if len(st.FailedDisks()) > 0 {
				continue
			}
			count := 1 + rng.Intn(3)
			start := rng.Intn(len(payload)/elem - count)
			upd := make([]byte, count*elem)
			rng.Read(upd)
			if err := st.WriteAt(int64(start*elem), upd); err == nil {
				copy(payload[start*elem:], upd)
			}
		}
	}
	windDown(t, st, corrupted)
	if err := CheckStore(st, payload); err != nil {
		t.Fatalf("invariants violated after within-tolerance schedule: %v", err)
	}
}

// windDown clears the fault plan and repairs all tracked permanent damage:
// first heal outstanding corruptions (cells on failed disks are skipped —
// recovery rebuilds them clean), then recover every failed disk. After a
// within-tolerance schedule none of this may fail.
func windDown(t *testing.T, st *store.Store, corrupted map[int]layout.Pos) {
	t.Helper()
	st.SetFaultInjector(nil)
	lay := st.Scheme().Layout()
	failed := make(map[int]bool)
	for _, d := range st.FailedDisks() {
		failed[d] = true
	}
	for stripe, pos := range corrupted {
		if failed[lay.Disk(stripe, pos.Col)] {
			continue
		}
		if _, err := st.Heal(stripe, pos); err != nil {
			t.Fatalf("final heal of stripe %d cell (%d,%d): %v", stripe, pos.Row, pos.Col, err)
		}
	}
	for _, d := range st.FailedDisks() {
		if _, err := st.RecoverDisk(d); err != nil {
			t.Fatalf("final recovery of disk %d: %v", d, err)
		}
	}
}

// TestChaosConcurrentReaders runs the fault schedule against a pool of
// concurrent readers under -race: failures, recoveries, corruption, and
// healing churn in the foreground while readers continuously assert the
// no-silent-wrong-bytes contract (content never changes in this variant).
func TestChaosConcurrentReaders(t *testing.T) {
	cells := chaosCells(t)
	for _, name := range []string{"rs-ecfrm", "lrc-ecfrm", "crs-rotated"} {
		scheme := cells[name]
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				leakCheck(t)
				rng := rand.New(rand.NewSource(seed))
				st, payload := chaosStore(t, scheme, seed, 3)
				st.SetFaultInjector(New(randomPlan(rng, scheme.N())))

				var wg sync.WaitGroup
				stop := make(chan struct{})
				for r := 0; r < 4; r++ {
					wg.Add(1)
					go func(r int) {
						defer wg.Done()
						rrng := rand.New(rand.NewSource(seed + int64(r)))
						for {
							select {
							case <-stop:
								return
							default:
							}
							off := rrng.Intn(len(payload) - 1)
							ln := 1 + rrng.Intn(min(len(payload)-off, 2048))
							res, err := st.ReadAt(int64(off), ln)
							if err == nil && !bytes.Equal(res.Data, payload[off:off+ln]) {
								t.Errorf("reader %d: silent wrong bytes at [%d,+%d)", r, off, ln)
								return
							}
						}
					}(r)
				}

				tol := scheme.FaultTolerance()
				corrupted := make(map[int]layout.Pos)
				for step := 0; step < 25; step++ {
					switch rng.Intn(3) {
					case 0:
						if len(st.FailedDisks()) < tol-1 {
							st.FailDiskWithinTolerance(rng.Intn(scheme.N()))
						}
					case 1:
						if failed := st.FailedDisks(); len(failed) > 0 {
							st.RecoverDisk(failed[0])
						}
					case 2:
						stripe := rng.Intn(st.Stripes())
						if _, dirty := corrupted[stripe]; !dirty {
							lay := scheme.Layout()
							pos := layout.Pos{Row: rng.Intn(lay.Rows()), Col: rng.Intn(lay.N())}
							if st.CorruptCell(stripe, pos) == nil {
								corrupted[stripe] = pos
							}
						}
					}
					time.Sleep(time.Millisecond)
				}
				close(stop)
				wg.Wait()

				windDown(t, st, corrupted)
				if err := CheckStore(st, payload); err != nil {
					t.Fatalf("invariants violated: %v", err)
				}
			})
		}
	}
}

// TestChaosOutOfToleranceFailsLoudly: schedules that exceed tolerance must
// fail loudly — reads error, the invariant checker reports a violation, and
// no path returns fabricated bytes.
func TestChaosOutOfToleranceFailsLoudly(t *testing.T) {
	for name, scheme := range chaosCells(t) {
		if scheme.Code().FaultTolerance() != scheme.Code().N()-scheme.Code().K() {
			continue // LRC recovers some beyond-guarantee patterns; MDS codes give a crisp contract
		}
		for _, seed := range chaosSeeds(t) {
			t.Run(fmt.Sprintf("%s/seed%d", name, seed), func(t *testing.T) {
				leakCheck(t)
				rng := rand.New(rand.NewSource(seed))
				st, payload := chaosStore(t, scheme, seed, 2)
				st.SetFaultInjector(New(randomPlan(rng, scheme.N())))

				perm := rng.Perm(scheme.N())
				for _, d := range perm[:scheme.FaultTolerance()+1] {
					st.FailDisk(d) // deliberately unchecked: push past tolerance
				}
				res, err := st.ReadAt(0, len(payload))
				if err == nil {
					t.Fatalf("read through %d failures succeeded with data %v...",
						scheme.FaultTolerance()+1, res.Data[:8])
				}
				if err := CheckStore(st, payload); err == nil {
					t.Fatal("invariant checker blessed an out-of-tolerance store")
				}
			})
		}
	}
}
