package faultinject

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rs"
	"repro/internal/store"
)

// FuzzFaultPlan feeds arbitrary bytes through ParsePlan. Invalid plans must
// be rejected loudly; valid plans must drive a fixed read schedule plus the
// invariant checker to the exact same verdict on two independent replays —
// the determinism contract holds for every reachable plan, not just the
// hand-written ones.
func FuzzFaultPlan(f *testing.F) {
	f.Add([]byte(`{"seed":7,"policies":[{"device":0,"read_err_prob":0.4,"latency":1000}]}`))
	f.Add([]byte(`{"seed":-3,"policies":[{"device":2,"stuck_prob":0.5,"corrupt_prob":0.5},{"device":5,"fail_after_ops":9}]}`))
	f.Add([]byte(`{"seed":0}`))
	f.Add([]byte(`{"seed":1,"policies":[{"device":1,"jitter":500,"write_err_prob":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		plan, err := ParsePlan(data)
		if err != nil {
			return
		}
		// Clamp latencies so a fuzz-found plan cannot stall the harness; the
		// clamp is a pure function of the plan, so both replays see the same
		// schedule.
		for i := range plan.Policies {
			if plan.Policies[i].Latency > time.Millisecond {
				plan.Policies[i].Latency = time.Millisecond
			}
			if plan.Policies[i].Jitter > time.Millisecond {
				plan.Policies[i].Jitter = time.Millisecond
			}
		}
		first, second := replayVerdict(t, plan), replayVerdict(t, plan)
		if first != second {
			t.Fatalf("plan %+v replayed differently:\n--- first ---\n%s--- second ---\n%s", plan, first, second)
		}
		if bytes.Contains([]byte(first), []byte("WRONG BYTES")) {
			t.Fatalf("plan %+v produced silent wrong bytes:\n%s", plan, first)
		}
	})
}

// replayVerdict runs a fixed 20-read schedule against a fresh store under
// the plan and flattens every observable outcome — per-read error/ok plus
// the invariant-checker verdict — into one string for comparison.
func replayVerdict(t *testing.T, plan Plan) string {
	t.Helper()
	scheme := core.MustScheme(rs.Must(4, 2), layout.FormECFRM)
	st := store.MustNew(scheme, 64)
	st.SetRetryPolicy(200*time.Microsecond, 1)
	payload := make([]byte, 2*scheme.DataPerStripe()*64)
	rand.New(rand.NewSource(99)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(New(plan))

	var log bytes.Buffer
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		off := int64(rng.Intn(len(payload) - 128))
		res, err := st.ReadAt(off, 128)
		switch {
		case err != nil:
			fmt.Fprintf(&log, "%d:err=%v\n", i, err)
		case !bytes.Equal(res.Data, payload[off:off+128]):
			fmt.Fprintf(&log, "%d:WRONG BYTES\n", i)
		default:
			fmt.Fprintf(&log, "%d:ok healed=%d\n", i, res.Healed)
		}
	}
	fmt.Fprintf(&log, "check=%v\n", CheckStore(st, payload))
	return log.String()
}
