package faultinject

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rs"
	"repro/internal/store"
)

// spicyPlan exercises every policy field on three devices.
func spicyPlan(seed int64) Plan {
	return Plan{
		Seed: seed,
		Policies: []Policy{
			{Device: 0, Latency: 5 * time.Microsecond, Jitter: 10 * time.Microsecond,
				ReadErrProb: 0.3, WriteErrProb: 0.2, StuckProb: 0.1, CorruptProb: 0.25},
			{Device: 1, ReadErrProb: 0.5, FailAfterOps: 40},
			{Device: 2, StuckProb: 0.4, CorruptProb: 0.4},
		},
	}
}

// faultString flattens a fault for byte-for-byte sequence comparison.
func faultString(f store.Fault) string {
	return fmt.Sprintf("d=%v stuck=%v err=%v corrupt=%v failed=%v",
		f.Delay, f.Stuck, f.Err, f.Corrupt, f.Failed)
}

// TestFaultSequenceDeterministic is the determinism contract: two injectors
// compiled from the same plan serve identical fault sequences to identical
// per-device operation sequences, verdict by verdict.
func TestFaultSequenceDeterministic(t *testing.T) {
	a, b := New(spicyPlan(1234)), New(spicyPlan(1234))
	for i := 0; i < 600; i++ {
		dev := i % 3
		if i%5 == 0 {
			fa, fb := a.WriteFault(dev), b.WriteFault(dev)
			if faultString(fa) != faultString(fb) {
				t.Fatalf("write op %d device %d: %q vs %q", i, dev, faultString(fa), faultString(fb))
			}
			continue
		}
		fa, fb := a.ReadFault(dev), b.ReadFault(dev)
		if faultString(fa) != faultString(fb) {
			t.Fatalf("read op %d device %d: %q vs %q", i, dev, faultString(fa), faultString(fb))
		}
	}
}

// TestFaultStreamsPerDeviceIndependent: the sequence a device serves
// depends only on its own operation count, not on traffic to other devices.
func TestFaultStreamsPerDeviceIndependent(t *testing.T) {
	a, b := New(spicyPlan(77)), New(spicyPlan(77))
	// Drive device 0 identically on both, but hammer device 2 only on b.
	for i := 0; i < 200; i++ {
		b.ReadFault(2)
	}
	for i := 0; i < 200; i++ {
		fa, fb := a.ReadFault(0), b.ReadFault(0)
		if faultString(fa) != faultString(fb) {
			t.Fatalf("op %d: device 0 stream shifted by device 2 traffic: %q vs %q",
				i, faultString(fa), faultString(fb))
		}
	}
}

// TestDifferentSeedsDiffer: a different seed reshuffles the sequences.
func TestDifferentSeedsDiffer(t *testing.T) {
	a, b := New(spicyPlan(1)), New(spicyPlan(2))
	for i := 0; i < 400; i++ {
		if faultString(a.ReadFault(0)) != faultString(b.ReadFault(0)) {
			return
		}
	}
	t.Fatal("seeds 1 and 2 produced identical 400-op fault sequences")
}

// TestFailAfterOps: the device serves exactly FailAfterOps operations and
// fail-stops on every one after.
func TestFailAfterOps(t *testing.T) {
	in := New(Plan{Seed: 9, Policies: []Policy{{Device: 0, FailAfterOps: 10}}})
	for i := 0; i < 10; i++ {
		if f := in.ReadFault(0); f.Failed {
			t.Fatalf("op %d fail-stopped before the threshold", i)
		}
	}
	for i := 0; i < 5; i++ {
		if f := in.WriteFault(0); !f.Failed {
			t.Fatalf("op %d after threshold did not fail-stop", 10+i)
		}
	}
	if got := in.Ops(0); got != 15 {
		t.Fatalf("Ops(0) = %d, want 15", got)
	}
}

// TestPlanJSONRoundTrip: marshal → ParsePlan is the identity, and the
// injector's Plan() getter returns what was compiled.
func TestPlanJSONRoundTrip(t *testing.T) {
	p := spicyPlan(4242)
	blob, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParsePlan(blob)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%+v", got) != fmt.Sprintf("%+v", p) {
		t.Fatalf("round-trip changed the plan:\n%+v\n%+v", got, p)
	}
	if inPlan := New(p).Plan(); fmt.Sprintf("%+v", inPlan) != fmt.Sprintf("%+v", p) {
		t.Fatalf("Injector.Plan() = %+v, want %+v", inPlan, p)
	}
}

// TestParsePlanRejectsInvalid: every malformed shape is a loud ErrPlan.
func TestParsePlanRejectsInvalid(t *testing.T) {
	bad := map[string]string{
		"not json":       `{"seed":`,
		"prob above one": `{"seed":1,"policies":[{"device":0,"read_err_prob":1.5}]}`,
		"negative prob":  `{"seed":1,"policies":[{"device":0,"stuck_prob":-0.1}]}`,
		"negative lat":   `{"seed":1,"policies":[{"device":0,"latency":-5}]}`,
		"huge latency":   `{"seed":1,"policies":[{"device":0,"latency":99000000000000}]}`,
		"negative dev":   `{"seed":1,"policies":[{"device":-1}]}`,
		"dup device":     `{"seed":1,"policies":[{"device":3},{"device":3}]}`,
		"negative fails": `{"seed":1,"policies":[{"device":0,"fail_after_ops":-2}]}`,
	}
	for name, blob := range bad {
		if _, err := ParsePlan([]byte(blob)); !errors.Is(err, ErrPlan) {
			t.Errorf("%s: err = %v, want ErrPlan", name, err)
		}
	}
}

// TestScheduleReplaysIdentically is the end-to-end determinism test the
// acceptance criteria name: the same fault-plan seed driving the same
// single-threaded schedule against two fresh stores produces an identical
// observable outcome log, byte for byte.
func TestScheduleReplaysIdentically(t *testing.T) {
	run := func() string {
		scheme := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
		st := store.MustNew(scheme, 64)
		st.SetRetryPolicy(200*time.Microsecond, 2)
		payload := make([]byte, 3*scheme.DataPerStripe()*64)
		rand.New(rand.NewSource(5)).Read(payload)
		if err := st.Append(payload); err != nil {
			t.Fatal(err)
		}
		st.SetFaultInjector(New(spicyPlan(31337)))

		var log bytes.Buffer
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 60; i++ {
			off := int64(rng.Intn(len(payload) - 256))
			res, err := st.ReadAt(off, 256)
			switch {
			case err != nil:
				fmt.Fprintf(&log, "%d:err=%v\n", i, err)
			case !bytes.Equal(res.Data, payload[off:off+256]):
				fmt.Fprintf(&log, "%d:WRONG BYTES\n", i)
			default:
				fmt.Fprintf(&log, "%d:ok cost=%.3f healed=%d\n", i, res.Plan.Cost(), res.Healed)
			}
		}
		fmt.Fprintf(&log, "check=%v\n", CheckStore(st, payload))
		return log.String()
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("same seed, different schedules:\n--- first ---\n%s--- second ---\n%s", first, second)
	}
	if bytes.Contains([]byte(first), []byte("WRONG BYTES")) {
		t.Fatalf("schedule returned silent wrong bytes:\n%s", first)
	}
}

// TestCheckStoreCatchesViolations: the checker must actually detect wrong
// bytes and parity damage, not just bless everything.
func TestCheckStoreCatchesViolations(t *testing.T) {
	scheme := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := store.MustNew(scheme, 64)
	payload := make([]byte, 2*scheme.DataPerStripe()*64)
	rand.New(rand.NewSource(6)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := CheckStore(st, payload); err != nil {
		t.Fatalf("clean store flagged: %v", err)
	}
	// Wrong expectation ⇒ decode-correctness failure.
	mangled := append([]byte(nil), payload...)
	mangled[17] ^= 0xff
	if err := CheckStore(st, mangled); err == nil {
		t.Fatal("checker missed a byte mismatch")
	}
	// A corrupt cell is healable ⇒ still within tolerance.
	if err := st.CorruptCell(0, layout.Pos{Row: 1, Col: 3}); err != nil {
		t.Fatal(err)
	}
	if err := CheckStore(st, payload); err != nil {
		t.Fatalf("healable corruption flagged: %v", err)
	}
	if got := st.VerifyChecksums(); got != nil {
		t.Fatalf("CheckStore did not heal: %+v", got)
	}
}

// TestCheckStoreSuspendsInjection: the checker's own reads must not be
// sabotaged by the plan under test, and the plan must be restored after.
func TestCheckStoreSuspendsInjection(t *testing.T) {
	scheme := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := store.MustNew(scheme, 64)
	st.SetRetryPolicy(200*time.Microsecond, 1)
	payload := make([]byte, scheme.DataPerStripe()*64)
	rand.New(rand.NewSource(7)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	// Every device always errors: any un-suspended read would fail.
	pols := make([]Policy, scheme.N())
	for d := range pols {
		pols[d] = Policy{Device: d, ReadErrProb: 1}
	}
	in := New(Plan{Seed: 1, Policies: pols})
	st.SetFaultInjector(in)
	if err := CheckStore(st, payload); err != nil {
		t.Fatalf("CheckStore under a total-outage plan: %v", err)
	}
	if got := st.FaultInjector(); got != in {
		t.Fatal("CheckStore did not restore the installed injector")
	}
}
