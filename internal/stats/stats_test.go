package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestEmptySummary(t *testing.T) {
	var s Summary
	if s.Count() != 0 || s.Mean() != 0 || s.StdDev() != 0 || s.Percentile(50) != 0 {
		t.Fatal("empty summary must be all zeros")
	}
	if !strings.Contains(s.Histogram(5, "s"), "no samples") {
		t.Fatal("empty histogram placeholder missing")
	}
}

func TestKnownMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if s.Count() != 8 || s.Mean() != 5 {
		t.Fatalf("mean = %v", s.Mean())
	}
	// Sample stddev of that classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.StdDev()-want) > 1e-12 {
		t.Fatalf("sd = %v, want %v", s.StdDev(), want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Fatalf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestPercentiles(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	cases := map[float64]float64{0: 1, 50: 50, 99: 99, 100: 100, 1: 1}
	for p, want := range cases {
		if got := s.Percentile(p); got != want {
			t.Errorf("p%.0f = %v, want %v", p, got, want)
		}
	}
}

func TestPercentileAfterMoreAdds(t *testing.T) {
	// Adding after a percentile query must keep results correct
	// (sorted-flag handling).
	var s Summary
	s.Add(10)
	if s.Percentile(50) != 10 {
		t.Fatal("median of one")
	}
	s.Add(1)
	s.Add(20)
	if s.Percentile(50) != 10 || s.Percentile(100) != 20 {
		t.Fatal("percentiles after interleaved adds wrong")
	}
}

func TestAddDuration(t *testing.T) {
	var s Summary
	s.AddDuration(1500 * time.Millisecond)
	if s.Mean() != 1.5 {
		t.Fatalf("duration mean = %v", s.Mean())
	}
}

func TestHistogramShape(t *testing.T) {
	var s Summary
	for i := 0; i < 50; i++ {
		s.Add(1)
	}
	for i := 0; i < 10; i++ {
		s.Add(9)
	}
	h := s.Histogram(4, "ms")
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d histogram lines, want 4:\n%s", len(lines), h)
	}
	// Peak bucket gets the full 40-char bar.
	if !strings.Contains(lines[0], strings.Repeat("█", 40)) {
		t.Fatalf("peak bucket not full-width:\n%s", h)
	}
	// Constant samples render the degenerate single line.
	var c Summary
	c.Add(3)
	c.Add(3)
	if !strings.Contains(c.Histogram(4, "s"), "2 |") {
		t.Fatalf("degenerate histogram wrong:\n%s", c.Histogram(4, "s"))
	}
}

func TestStringFormat(t *testing.T) {
	var s Summary
	s.Add(1)
	s.Add(3)
	out := s.String()
	for _, want := range []string{"n=2", "mean=2", "p99=3"} {
		if !strings.Contains(out, want) {
			t.Errorf("String() missing %q: %s", want, out)
		}
	}
}

func TestPropertyMeanWithinMinMax(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(n uint8) bool {
		var s Summary
		count := int(n)%100 + 1
		for i := 0; i < count; i++ {
			s.Add(rng.NormFloat64() * 100)
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max() &&
			s.Percentile(0) == s.Min() && s.Percentile(100) == s.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestWelfordMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	var s Summary
	var vals []float64
	for i := 0; i < 1000; i++ {
		v := rng.Float64()*1e6 - 5e5
		vals = append(vals, v)
		s.Add(v)
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var ss float64
	for _, v := range vals {
		ss += (v - mean) * (v - mean)
	}
	naiveSD := math.Sqrt(ss / float64(len(vals)-1))
	if math.Abs(s.Mean()-mean) > 1e-6 || math.Abs(s.StdDev()-naiveSD) > 1e-6 {
		t.Fatalf("streaming %v/%v vs naive %v/%v", s.Mean(), s.StdDev(), mean, naiveSD)
	}
}
