// Package stats provides the small statistical toolkit the experiment
// harness and CLIs report with: streaming moments (Welford), exact sample
// percentiles, and a text histogram for latency distributions.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Summary accumulates streaming count/mean/variance/min/max and keeps the
// samples for exact percentiles. The zero value is ready to use.
type Summary struct {
	samples []float64
	mean    float64
	m2      float64
	min     float64
	max     float64
	sorted  bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if len(s.samples) == 0 || v < s.min {
		s.min = v
	}
	if len(s.samples) == 0 || v > s.max {
		s.max = v
	}
	s.samples = append(s.samples, v)
	s.sorted = false
	delta := v - s.mean
	s.mean += delta / float64(len(s.samples))
	s.m2 += delta * (v - s.mean)
}

// AddDuration records a duration observation in seconds.
func (s *Summary) AddDuration(d time.Duration) { s.Add(d.Seconds()) }

// Count returns the number of observations.
func (s *Summary) Count() int { return len(s.samples) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the sample standard deviation (0 for fewer than 2 samples).
func (s *Summary) StdDev() float64 {
	if len(s.samples) < 2 {
		return 0
	}
	return math.Sqrt(s.m2 / float64(len(s.samples)-1))
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using the
// nearest-rank method; 0 when empty. Percentile(50) is the median.
func (s *Summary) Percentile(p float64) float64 {
	if len(s.samples) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.samples)
		s.sorted = true
	}
	if p <= 0 {
		return s.samples[0]
	}
	if p >= 100 {
		return s.samples[len(s.samples)-1]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.samples))))
	return s.samples[rank-1]
}

// Histogram renders the sample distribution as `buckets` equal-width text
// bars, each line showing the bucket range, count, and a bar scaled to the
// largest bucket. Empty summaries render a placeholder.
func (s *Summary) Histogram(buckets int, unit string) string {
	if len(s.samples) == 0 || buckets < 1 {
		return "(no samples)\n"
	}
	width := (s.max - s.min) / float64(buckets)
	if width == 0 {
		return fmt.Sprintf("%10.4g %-6s %6d |%s\n", s.min, unit, len(s.samples),
			strings.Repeat("█", 40))
	}
	counts := make([]int, buckets)
	for _, v := range s.samples {
		b := int((v - s.min) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	peak := 0
	for _, c := range counts {
		if c > peak {
			peak = c
		}
	}
	var out strings.Builder
	for b, c := range counts {
		lo := s.min + float64(b)*width
		bar := strings.Repeat("█", int(math.Round(40*float64(c)/float64(peak))))
		fmt.Fprintf(&out, "%10.4g %-6s %6d |%s\n", lo, unit, c, bar)
	}
	return out.String()
}

// String summarizes as one line: count, mean, stddev, min/p50/p99/max.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.Count(), s.Mean(), s.StdDev(), s.Min(), s.Percentile(50), s.Percentile(99), s.Max())
}
