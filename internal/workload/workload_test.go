package workload

import "testing"

func TestConfigValidate(t *testing.T) {
	if err := (Config{TotalElements: 100, Disks: 10}).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{TotalElements: 10, Disks: 10},           // extent < default max size
		{TotalElements: 100, Disks: 0},           // no disks
		{TotalElements: 3, Disks: 4, MaxSize: 5}, // extent < custom max
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestMustGeneratorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustGenerator did not panic")
		}
	}()
	MustGenerator(Config{})
}

func TestNormalTrialBounds(t *testing.T) {
	g := MustGenerator(Config{TotalElements: 60, Disks: 10, Seed: 1})
	for i := 0; i < 10000; i++ {
		tr := g.Normal()
		if tr.Count < 1 || tr.Count > MaxReadElements {
			t.Fatalf("count %d out of [1,20]", tr.Count)
		}
		if tr.Start < 0 || tr.Start+tr.Count > 60 {
			t.Fatalf("trial [%d,%d) out of extent", tr.Start, tr.Start+tr.Count)
		}
		if tr.FailedDisk != -1 {
			t.Fatal("normal trial has a failed disk")
		}
	}
}

func TestDegradedTrialBounds(t *testing.T) {
	g := MustGenerator(Config{TotalElements: 60, Disks: 10, Seed: 2})
	seenDisk := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		tr := g.Degraded()
		if tr.FailedDisk < 0 || tr.FailedDisk >= 10 {
			t.Fatalf("failed disk %d out of range", tr.FailedDisk)
		}
		seenDisk[tr.FailedDisk] = true
	}
	if len(seenDisk) != 10 {
		t.Fatalf("only %d distinct failed disks in 10000 trials", len(seenDisk))
	}
}

func TestCustomMaxSize(t *testing.T) {
	g := MustGenerator(Config{TotalElements: 30, Disks: 4, MaxSize: 5, Seed: 3})
	for i := 0; i < 2000; i++ {
		if tr := g.Normal(); tr.Count > 5 {
			t.Fatalf("count %d exceeds custom max 5", tr.Count)
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []ReadTrial {
		g := MustGenerator(Config{TotalElements: 100, Disks: 12, Seed: 42})
		return append(g.NormalSeries(100), g.DegradedSeries(100)...)
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sequence diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Different seed differs.
	g := MustGenerator(Config{TotalElements: 100, Disks: 12, Seed: 43})
	c := append(g.NormalSeries(100), g.DegradedSeries(100)...)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical sequences")
	}
}

func TestSeriesLengths(t *testing.T) {
	g := MustGenerator(Config{TotalElements: 100, Disks: 10, Seed: 4})
	if len(g.NormalSeries(NormalTrials)) != 2000 {
		t.Fatal("NormalSeries length")
	}
	if len(g.DegradedSeries(DegradedTrials)) != 5000 {
		t.Fatal("DegradedSeries length")
	}
}

func TestSizeDistributionCoversRange(t *testing.T) {
	// Paper: size uniform in [1,20]. Every size must occur over many
	// trials, and the mean should be near 10.5.
	g := MustGenerator(Config{TotalElements: 1000, Disks: 10, Seed: 5})
	counts := make(map[int]int)
	sum := 0
	const n = 20000
	for i := 0; i < n; i++ {
		tr := g.Normal()
		counts[tr.Count]++
		sum += tr.Count
	}
	for size := 1; size <= 20; size++ {
		if counts[size] == 0 {
			t.Fatalf("size %d never generated", size)
		}
	}
	mean := float64(sum) / n
	if mean < 10 || mean > 11 {
		t.Fatalf("mean size %v, want ≈10.5", mean)
	}
}
