// Skewed workloads: real cloud read traffic is not uniform — a small set of
// hot objects absorbs most requests (Zipf rank-frequency), operators see
// hotspot ranges (a popular tenant or shard), and offered load ramps with
// the time of day. The skewed generator layers those three effects on top of
// the paper's uniform protocol so layout forms can be compared under the
// traffic that actually stresses per-disk load balance.
package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// SkewKind selects the start-element distribution of a skewed generator.
type SkewKind int

const (
	// SkewUniform reproduces the paper's uniform start selection.
	SkewUniform SkewKind = iota
	// SkewZipf draws the start element Zipf-distributed by rank: element 0
	// is the hottest, with frequency falling off as rank^-s.
	SkewZipf
	// SkewHotspot sends HotFraction of requests into the first HotExtent of
	// the element space and spreads the rest uniformly over the remainder.
	SkewHotspot
)

// String names the kind for reports.
func (k SkewKind) String() string {
	switch k {
	case SkewUniform:
		return "uniform"
	case SkewZipf:
		return "zipf"
	case SkewHotspot:
		return "hotspot"
	default:
		return fmt.Sprintf("skew(%d)", int(k))
	}
}

// SkewConfig shapes a skewed generator. The zero value is the uniform
// workload with no diurnal ramp.
type SkewConfig struct {
	Kind SkewKind
	// ZipfS is the Zipf exponent (> 1); 0 selects the default 1.2, a
	// middle-of-the-road value for storage traces.
	ZipfS float64
	// HotFraction is the share of requests aimed at the hot range; 0 selects
	// the default 0.9.
	HotFraction float64
	// HotExtent is the share of the element space that is hot; 0 selects the
	// default 0.1 (the classic 90/10 rule together with HotFraction).
	HotExtent float64
	// DiurnalPeriod is the number of trials in one simulated day; 0 disables
	// the ramp (Intensity is then always 1).
	DiurnalPeriod int
	// DiurnalMin is the trough intensity in (0,1]; 0 selects the default 0.2.
	// Peak intensity is always 1.
	DiurnalMin float64
}

func (s SkewConfig) zipfS() float64 {
	if s.ZipfS > 1 {
		return s.ZipfS
	}
	return 1.2
}

func (s SkewConfig) hotFraction() float64 {
	if s.HotFraction > 0 {
		return s.HotFraction
	}
	return 0.9
}

func (s SkewConfig) hotExtent() float64 {
	if s.HotExtent > 0 {
		return s.HotExtent
	}
	return 0.1
}

func (s SkewConfig) diurnalMin() float64 {
	if s.DiurnalMin > 0 {
		return s.DiurnalMin
	}
	return 0.2
}

// SkewedGenerator produces reproducible skewed trial sequences. It shares
// Config (extent, disks, sizes, seed) with the uniform Generator; only the
// start-element distribution and the intensity envelope differ.
type SkewedGenerator struct {
	cfg   Config
	skew  SkewConfig
	rng   *rand.Rand
	zipf  *rand.Zipf
	trial int
}

// NewSkewed builds a skewed generator, validating both configs.
func NewSkewed(cfg Config, skew SkewConfig) (*SkewedGenerator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if skew.Kind == SkewZipf && skew.ZipfS != 0 && skew.ZipfS <= 1 {
		return nil, fmt.Errorf("workload: zipf exponent %v must exceed 1", skew.ZipfS)
	}
	if skew.Kind == SkewHotspot && (skew.hotExtent() >= 1 || skew.hotFraction() > 1) {
		return nil, fmt.Errorf("workload: hotspot fraction %v / extent %v out of range",
			skew.hotFraction(), skew.hotExtent())
	}
	if skew.DiurnalMin < 0 || skew.DiurnalMin > 1 {
		return nil, fmt.Errorf("workload: diurnal trough %v outside [0,1]", skew.DiurnalMin)
	}
	g := &SkewedGenerator{cfg: cfg, skew: skew, rng: rand.New(rand.NewSource(cfg.Seed))}
	if skew.Kind == SkewZipf {
		g.zipf = rand.NewZipf(g.rng, skew.zipfS(), 1, uint64(cfg.TotalElements-1))
	}
	return g, nil
}

// MustSkewed is NewSkewed for known-good configs; it panics on error.
func MustSkewed(cfg Config, skew SkewConfig) *SkewedGenerator {
	g, err := NewSkewed(cfg, skew)
	if err != nil {
		panic(err)
	}
	return g
}

// start draws a start element for a request of the given size per the skew
// kind, clamped so the request fits the extent.
func (g *SkewedGenerator) start(count int) int {
	limit := g.cfg.TotalElements - count
	var s int
	switch g.skew.Kind {
	case SkewZipf:
		s = int(g.zipf.Uint64())
	case SkewHotspot:
		hot := int(float64(g.cfg.TotalElements) * g.skew.hotExtent())
		if hot < 1 {
			hot = 1
		}
		if g.rng.Float64() < g.skew.hotFraction() {
			s = g.rng.Intn(hot)
		} else if hot < g.cfg.TotalElements {
			s = hot + g.rng.Intn(g.cfg.TotalElements-hot)
		} else {
			s = g.rng.Intn(g.cfg.TotalElements)
		}
	default:
		s = g.rng.Intn(limit + 1)
	}
	if s > limit {
		s = limit
	}
	return s
}

// Next returns the next skewed normal-read trial and advances the diurnal
// clock.
func (g *SkewedGenerator) Next() ReadTrial {
	g.trial++
	count := 1 + g.rng.Intn(g.cfg.maxSize())
	return ReadTrial{Start: g.start(count), Count: count, FailedDisk: -1}
}

// NextDegraded is Next plus a uniform random failed disk.
func (g *SkewedGenerator) NextDegraded() ReadTrial {
	t := g.Next()
	t.FailedDisk = g.rng.Intn(g.cfg.Disks)
	return t
}

// Intensity returns the offered-load multiplier for the current position of
// the diurnal clock: a raised cosine running from DiurnalMin at the trough
// to 1 at the peak over DiurnalPeriod trials. Callers scale their request
// rate (or burst size) by it to replay a day/night cycle. Without a period
// it is always 1.
func (g *SkewedGenerator) Intensity() float64 {
	p := g.skew.DiurnalPeriod
	if p <= 0 {
		return 1
	}
	lo := g.skew.diurnalMin()
	phase := 2 * math.Pi * float64(g.trial%p) / float64(p)
	// Peak at mid-period, trough at the boundaries.
	return lo + (1-lo)*0.5*(1-math.Cos(phase))
}

// Series generates n skewed trials.
func (g *SkewedGenerator) Series(n int) []ReadTrial {
	out := make([]ReadTrial, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}
