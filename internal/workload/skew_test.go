package workload

import (
	"math"
	"testing"
)

func skewCfg() Config {
	return Config{TotalElements: 10000, Disks: 9, Seed: 77}
}

func TestSkewedTrialsStayInBounds(t *testing.T) {
	for _, kind := range []SkewKind{SkewUniform, SkewZipf, SkewHotspot} {
		g := MustSkewed(skewCfg(), SkewConfig{Kind: kind})
		for i := 0; i < 5000; i++ {
			tr := g.NextDegraded()
			if tr.Start < 0 || tr.Count < 1 || tr.Count > MaxReadElements ||
				tr.Start+tr.Count > skewCfg().TotalElements {
				t.Fatalf("%v trial %d out of bounds: %+v", kind, i, tr)
			}
			if tr.FailedDisk < 0 || tr.FailedDisk >= skewCfg().Disks {
				t.Fatalf("%v trial %d bad disk: %+v", kind, i, tr)
			}
		}
	}
}

func TestSkewedDeterministicBySeed(t *testing.T) {
	a := MustSkewed(skewCfg(), SkewConfig{Kind: SkewZipf})
	b := MustSkewed(skewCfg(), SkewConfig{Kind: SkewZipf})
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed diverged at trial %d", i)
		}
	}
}

func TestZipfConcentratesOnHead(t *testing.T) {
	// With exponent 1.2, the top 1% of elements must receive far more than
	// their uniform share (1%) of requests — the whole point of the skew.
	g := MustSkewed(skewCfg(), SkewConfig{Kind: SkewZipf})
	const trials = 20000
	head := skewCfg().TotalElements / 100
	hits := 0
	for i := 0; i < trials; i++ {
		if g.Next().Start < head {
			hits++
		}
	}
	if frac := float64(hits) / trials; frac < 0.30 {
		t.Fatalf("zipf head fraction %.3f; want well above the uniform 0.01", frac)
	}
}

func TestHotspotHonorsFractions(t *testing.T) {
	// Default 90/10: ~90% of starts inside the first 10% of the extent.
	g := MustSkewed(skewCfg(), SkewConfig{Kind: SkewHotspot})
	const trials = 20000
	hot := skewCfg().TotalElements / 10
	hits := 0
	for i := 0; i < trials; i++ {
		if g.Next().Start < hot {
			hits++
		}
	}
	frac := float64(hits) / trials
	if frac < 0.85 || frac > 0.95 {
		t.Fatalf("hotspot fraction %.3f, want ≈ 0.9", frac)
	}
}

func TestDiurnalIntensityRampsAndRepeats(t *testing.T) {
	g := MustSkewed(skewCfg(), SkewConfig{Kind: SkewUniform, DiurnalPeriod: 100, DiurnalMin: 0.25})
	var lo, hi = math.Inf(1), math.Inf(-1)
	first := make([]float64, 100)
	for i := 0; i < 200; i++ {
		v := g.Intensity()
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		if i < 100 {
			first[i] = v
		} else if math.Abs(v-first[i-100]) > 1e-12 {
			t.Fatalf("intensity not periodic at trial %d: %v vs %v", i, v, first[i-100])
		}
		g.Next()
	}
	if lo < 0.25-1e-9 || hi > 1+1e-9 {
		t.Fatalf("intensity range [%v,%v] outside [0.25,1]", lo, hi)
	}
	if hi-lo < 0.5 {
		t.Fatalf("intensity barely moves: [%v,%v]", lo, hi)
	}

	// No period → constant 1.
	flat := MustSkewed(skewCfg(), SkewConfig{})
	for i := 0; i < 10; i++ {
		if flat.Intensity() != 1 {
			t.Fatal("intensity must be 1 without a diurnal period")
		}
		flat.Next()
	}
}

func TestNewSkewedValidation(t *testing.T) {
	if _, err := NewSkewed(Config{TotalElements: 5, Disks: 0}, SkewConfig{}); err == nil {
		t.Fatal("bad base config accepted")
	}
	if _, err := NewSkewed(skewCfg(), SkewConfig{Kind: SkewZipf, ZipfS: 0.5}); err == nil {
		t.Fatal("zipf exponent <= 1 accepted")
	}
	if _, err := NewSkewed(skewCfg(), SkewConfig{Kind: SkewHotspot, HotExtent: 1.5}); err == nil {
		t.Fatal("hot extent >= 1 accepted")
	}
	if _, err := NewSkewed(skewCfg(), SkewConfig{DiurnalMin: 2}); err == nil {
		t.Fatal("diurnal trough > 1 accepted")
	}
}
