// Package workload generates the randomized read workloads of the paper's
// evaluation (§VI-B, §VI-C):
//
//   - Normal reads: 2000 trials; each trial picks a uniformly random start
//     data element and a uniformly random size of 1 to 20 data elements.
//   - Degraded reads: 5000 trials; each trial additionally picks a uniformly
//     random failed disk.
//
// All randomness is seeded, so every (code, form) configuration can be
// evaluated against the identical trial sequence — the paper's comparison is
// meaningful only if the three layout forms see the same requests.
package workload

import (
	"fmt"
	"math/rand"
)

// Paper protocol constants (§VI-B, §VI-C).
const (
	// MaxReadElements is the paper's maximum request size in data elements.
	MaxReadElements = 20
	// NormalTrials is the paper's normal-read experiment count.
	NormalTrials = 2000
	// DegradedTrials is the paper's degraded-read experiment count.
	DegradedTrials = 5000
)

// ReadTrial is one randomized read request.
type ReadTrial struct {
	// Start is the global index of the first data element requested.
	Start int
	// Count is the number of sequential data elements requested, in [1,20].
	Count int
	// FailedDisk is the disk erased for this trial; -1 for normal reads.
	FailedDisk int
}

// Config bounds trial generation.
type Config struct {
	// TotalElements is the extent of readable data elements; trials are
	// generated so Start+Count never exceeds it.
	TotalElements int
	// Disks is the array width; degraded trials fail one disk in [0,Disks).
	Disks int
	// MaxSize overrides the maximum request size when positive
	// (default MaxReadElements).
	MaxSize int
	// Seed drives the generator.
	Seed int64
}

func (c Config) maxSize() int {
	if c.MaxSize > 0 {
		return c.MaxSize
	}
	return MaxReadElements
}

// Validate reports whether trials can be generated from this config.
func (c Config) Validate() error {
	if c.TotalElements < c.maxSize() {
		return fmt.Errorf("workload: %d total elements < max request size %d",
			c.TotalElements, c.maxSize())
	}
	if c.Disks < 1 {
		return fmt.Errorf("workload: need at least one disk, got %d", c.Disks)
	}
	return nil
}

// Generator produces reproducible trial sequences.
type Generator struct {
	cfg Config
	rng *rand.Rand
}

// NewGenerator builds a generator, validating the config.
func NewGenerator(cfg Config) (*Generator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// MustGenerator is NewGenerator for known-good configs; it panics on error.
func MustGenerator(cfg Config) *Generator {
	g, err := NewGenerator(cfg)
	if err != nil {
		panic(err)
	}
	return g
}

// Normal returns the next normal-read trial: uniform random start, uniform
// random size in [1, max], clamped to fit the extent.
func (g *Generator) Normal() ReadTrial {
	count := 1 + g.rng.Intn(g.cfg.maxSize())
	start := g.rng.Intn(g.cfg.TotalElements - count + 1)
	return ReadTrial{Start: start, Count: count, FailedDisk: -1}
}

// Degraded returns the next degraded-read trial: like Normal plus a uniform
// random failed disk.
func (g *Generator) Degraded() ReadTrial {
	t := g.Normal()
	t.FailedDisk = g.rng.Intn(g.cfg.Disks)
	return t
}

// NormalSeries generates n normal-read trials.
func (g *Generator) NormalSeries(n int) []ReadTrial {
	out := make([]ReadTrial, n)
	for i := range out {
		out[i] = g.Normal()
	}
	return out
}

// DegradedSeries generates n degraded-read trials.
func (g *Generator) DegradedSeries(n int) []ReadTrial {
	out := make([]ReadTrial, n)
	for i := range out {
		out[i] = g.Degraded()
	}
	return out
}
