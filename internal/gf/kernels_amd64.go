//go:build amd64

package gf

// SIMD kernel selection for amd64. The assembly in kernels_amd64.s
// implements the nibble-split-table multiply with PSHUFB: mask out the low
// and high nibbles of 16 (SSSE3) or 32 (AVX2) source bytes, shuffle each
// through its 16-entry product table, and XOR the halves — a whole register
// of GF(2^8) products in a handful of instructions.

// Implemented in kernels_amd64.s.
func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv0() (eax, edx uint32)
func gfMulSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
func gfMulAddSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
func gfMulAVX2(lo, hi *[16]byte, dst, src *byte, n int)
func gfMulAddAVX2(lo, hi *[16]byte, dst, src *byte, n int)

var (
	hasSSSE3    bool
	hasAVX2     bool
	simdEnabled bool
)

func init() {
	maxID, _, _, _ := cpuidex(0, 0)
	if maxID < 1 {
		return
	}
	_, _, ecx1, _ := cpuidex(1, 0)
	hasSSSE3 = ecx1&(1<<9) != 0
	// AVX2 needs the CPU flag plus OS support for YMM state (OSXSAVE set and
	// XCR0 reporting XMM|YMM enabled).
	const osxsaveAVX = 1<<27 | 1<<28
	if ecx1&osxsaveAVX == osxsaveAVX && maxID >= 7 {
		if xlo, _ := xgetbv0(); xlo&6 == 6 {
			_, ebx7, _, _ := cpuidex(7, 0)
			hasAVX2 = ebx7&(1<<5) != 0
		}
	}
	simdEnabled = hasSSSE3 || hasAVX2
}

// mulSliceSIMD computes dst = c·src with the vector kernel; c must be ≥ 2 and
// len(dst) ≥ simdMin (callers dispatch). The vector body covers the largest
// 32- or 16-byte-aligned prefix; the reference kernel finishes the tail.
func mulSliceSIMD(c byte, dst, src []byte) {
	var n int
	if hasAVX2 {
		n = len(dst) &^ 31
		gfMulAVX2(&mulLo[c], &mulHi[c], &dst[0], &src[0], n)
	} else {
		n = len(dst) &^ 15
		gfMulSSSE3(&mulLo[c], &mulHi[c], &dst[0], &src[0], n)
	}
	MulSliceRef(c, dst[n:], src[n:])
}

// mulAddSliceSIMD computes dst ^= c·src with the vector kernel; same
// contract as mulSliceSIMD.
func mulAddSliceSIMD(c byte, dst, src []byte) {
	var n int
	if hasAVX2 {
		n = len(dst) &^ 31
		gfMulAddAVX2(&mulLo[c], &mulHi[c], &dst[0], &src[0], n)
	} else {
		n = len(dst) &^ 15
		gfMulAddSSSE3(&mulLo[c], &mulHi[c], &dst[0], &src[0], n)
	}
	MulAddSliceRef(c, dst[n:], src[n:])
}
