// GF(2^8) bulk multiply kernels for amd64: nibble-split product tables
// applied with the vector byte shuffle. For each 16/32-byte block of src:
//
//	products = SHUFFLE(loTable, src & 0x0f) XOR SHUFFLE(hiTable, src >> 4)
//
// PSHUFB/VPSHUFB treats the table register as a 16-entry byte LUT indexed by
// the low nibble of each selector byte, so the two masked shuffles look up
// c·lo(b) and c·hi(b)<<4 for every lane at once; XORing the halves gives
// c·b lane-wise. Callers guarantee n > 0 and n a multiple of the block size.

#include "textflag.h"

DATA nibMask<>+0(SB)/8, $0x0f0f0f0f0f0f0f0f
DATA nibMask<>+8(SB)/8, $0x0f0f0f0f0f0f0f0f
GLOBL nibMask<>(SB), RODATA|NOPTR, $16

// func cpuidex(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuidex(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv0() (eax, edx uint32)
TEXT ·xgetbv0(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func gfMulSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
// dst[i] = product of src[i]; n % 16 == 0, n > 0.
TEXT ·gfMulSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	MOVOU (AX), X4
	MOVOU (BX), X5
	MOVOU nibMask<>(SB), X6

mulLoop:
	MOVOU (SI), X0
	MOVOU X0, X1
	PSRLW $4, X1
	PAND  X6, X0
	PAND  X6, X1
	MOVOU X4, X2
	MOVOU X5, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR  X3, X2
	MOVOU X2, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNE   mulLoop
	RET

// func gfMulAddSSSE3(lo, hi *[16]byte, dst, src *byte, n int)
// dst[i] ^= product of src[i]; n % 16 == 0, n > 0.
TEXT ·gfMulAddSSSE3(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	MOVOU (AX), X4
	MOVOU (BX), X5
	MOVOU nibMask<>(SB), X6

mulAddLoop:
	MOVOU (SI), X0
	MOVOU X0, X1
	PSRLW $4, X1
	PAND  X6, X0
	PAND  X6, X1
	MOVOU X4, X2
	MOVOU X5, X3
	PSHUFB X0, X2
	PSHUFB X1, X3
	PXOR  X3, X2
	MOVOU (DI), X7
	PXOR  X7, X2
	MOVOU X2, (DI)
	ADDQ  $16, SI
	ADDQ  $16, DI
	SUBQ  $16, CX
	JNE   mulAddLoop
	RET

// func gfMulAVX2(lo, hi *[16]byte, dst, src *byte, n int)
// dst[i] = product of src[i]; n % 32 == 0, n > 0.
TEXT ·gfMulAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VBROADCASTI128 nibMask<>(SB), Y6

mulLoopAVX2:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y2, Y3, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     mulLoopAVX2
	VZEROUPPER
	RET

// func gfMulAddAVX2(lo, hi *[16]byte, dst, src *byte, n int)
// dst[i] ^= product of src[i]; n % 32 == 0, n > 0.
TEXT ·gfMulAddAVX2(SB), NOSPLIT, $0-40
	MOVQ lo+0(FP), AX
	MOVQ hi+8(FP), BX
	MOVQ dst+16(FP), DI
	MOVQ src+24(FP), SI
	MOVQ n+32(FP), CX
	VBROADCASTI128 (AX), Y4
	VBROADCASTI128 (BX), Y5
	VBROADCASTI128 nibMask<>(SB), Y6

mulAddLoopAVX2:
	VMOVDQU (SI), Y0
	VPSRLW  $4, Y0, Y1
	VPAND   Y6, Y0, Y0
	VPAND   Y6, Y1, Y1
	VPSHUFB Y0, Y4, Y2
	VPSHUFB Y1, Y5, Y3
	VPXOR   Y2, Y3, Y2
	VPXOR   (DI), Y2, Y2
	VMOVDQU Y2, (DI)
	ADDQ    $32, SI
	ADDQ    $32, DI
	SUBQ    $32, CX
	JNE     mulAddLoopAVX2
	VZEROUPPER
	RET
