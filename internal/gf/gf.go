// Package gf implements arithmetic over the finite field GF(2^8).
//
// It is the stand-in for the GF-Complete library the paper's Jerasure-based
// implementation relied on: full field arithmetic (add, multiply, divide,
// invert, exponentiate) built on log/exp tables over the primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d), plus the bulk slice kernels erasure
// coding actually spends its time in (see kernels.go).
//
// All operations are allocation-free and safe for concurrent use: the tables
// are computed once at package init and never mutated afterwards.
package gf

// Poly is the primitive polynomial used to generate the field,
// x^8 + x^4 + x^3 + x^2 + 1. The same polynomial is used by Jerasure's
// default GF(2^8) and by most storage systems, so test vectors carry over.
const Poly = 0x11d

// Order is the number of elements in the field.
const Order = 256

// generator of the multiplicative group. 2 is primitive for 0x11d.
const generator = 2

var (
	// expTable[i] = generator^i for i in [0, 510). Doubled so that
	// Mul can index exp[log(a)+log(b)] without a modulo reduction.
	expTable [2 * (Order - 1)]byte
	// logTable[a] = discrete log of a (log of 0 is unused and set to 0).
	logTable [Order]uint16
	// invTable[a] = multiplicative inverse of a (inv of 0 unused, 0).
	invTable [Order]byte
	// mulTable[a][b] = a*b, a full 64KiB product table. Bulk kernels use
	// a row of this table to avoid the double log lookup per byte.
	mulTable [Order][Order]byte
)

func init() {
	x := 1
	for i := 0; i < Order-1; i++ {
		expTable[i] = byte(x)
		expTable[i+Order-1] = byte(x)
		logTable[x] = uint16(i)
		x <<= 1
		if x >= Order {
			x ^= Poly
		}
	}
	for a := 1; a < Order; a++ {
		invTable[a] = expTable[(Order-1)-int(logTable[a])]
	}
	for a := 1; a < Order; a++ {
		la := int(logTable[a])
		for b := 1; b < Order; b++ {
			mulTable[a][b] = expTable[la+int(logTable[b])]
		}
	}
}

// Add returns a+b in GF(2^8). Addition and subtraction coincide (XOR).
func Add(a, b byte) byte { return a ^ b }

// Sub returns a-b in GF(2^8); identical to Add.
func Sub(a, b byte) byte { return a ^ b }

// Mul returns a*b in GF(2^8).
func Mul(a, b byte) byte { return mulTable[a][b] }

// Div returns a/b in GF(2^8). It panics if b is zero.
func Div(a, b byte) byte {
	if b == 0 {
		panic("gf: division by zero")
	}
	if a == 0 {
		return 0
	}
	d := int(logTable[a]) - int(logTable[b])
	if d < 0 {
		d += Order - 1
	}
	return expTable[d]
}

// Inv returns the multiplicative inverse of a. It panics if a is zero.
func Inv(a byte) byte {
	if a == 0 {
		panic("gf: inverse of zero")
	}
	return invTable[a]
}

// Exp returns base^e in GF(2^8). Exp(0, 0) is 1 by convention.
func Exp(base byte, e int) byte {
	if e == 0 {
		return 1
	}
	if base == 0 {
		return 0
	}
	if e < 0 {
		base = Inv(base)
		e = -e
	}
	lg := (int(logTable[base]) * e) % (Order - 1)
	return expTable[lg]
}

// Generator returns g^i where g is the field's primitive element (2).
// Generator(0) == 1 and the sequence has period 255.
func Generator(i int) byte {
	i %= Order - 1
	if i < 0 {
		i += Order - 1
	}
	return expTable[i]
}

// Log returns the discrete logarithm of a base the primitive element.
// It panics if a is zero, which has no logarithm.
func Log(a byte) int {
	if a == 0 {
		panic("gf: log of zero")
	}
	return int(logTable[a])
}

// PolyEval evaluates the polynomial with coefficients coeffs (coeffs[i] is
// the coefficient of x^i) at point x.
func PolyEval(coeffs []byte, x byte) byte {
	var acc byte
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc = Mul(acc, x) ^ coeffs[i]
	}
	return acc
}
