package gf

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAddIsXOR(t *testing.T) {
	if Add(0x53, 0xCA) != 0x53^0xCA {
		t.Fatalf("Add(0x53,0xCA) = %#x, want %#x", Add(0x53, 0xCA), 0x53^0xCA)
	}
	if Sub(0x53, 0xCA) != Add(0x53, 0xCA) {
		t.Fatal("Sub must equal Add in characteristic 2")
	}
}

func TestMulKnownVectors(t *testing.T) {
	// Vectors for polynomial 0x11d (standard in storage systems).
	cases := []struct{ a, b, want byte }{
		{0, 0, 0},
		{0, 21, 0},
		{1, 1, 1},
		{1, 0x53, 0x53},
		{2, 2, 4},
		{2, 0x80, 0x1d}, // overflow wraps through the polynomial
		{4, 0x80, 0x3a},
		{0x80, 0x80, 0x13},
	}
	for _, c := range cases {
		if got := Mul(c.a, c.b); got != c.want {
			t.Errorf("Mul(%#x,%#x) = %#x, want %#x", c.a, c.b, got, c.want)
		}
	}
}

// mulSlow is a bitwise carry-less multiply reduced by Poly, used as an
// independent oracle for the table-driven Mul.
func mulSlow(a, b byte) byte {
	var prod uint16
	aa, bb := uint16(a), uint16(b)
	for bb != 0 {
		if bb&1 != 0 {
			prod ^= aa
		}
		aa <<= 1
		if aa&0x100 != 0 {
			aa ^= Poly
		}
		bb >>= 1
	}
	return byte(prod)
}

func TestMulMatchesBitwiseOracle(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 0; b < 256; b++ {
			if got, want := Mul(byte(a), byte(b)), mulSlow(byte(a), byte(b)); got != want {
				t.Fatalf("Mul(%#x,%#x) = %#x, want %#x", a, b, got, want)
			}
		}
	}
}

func TestFieldAxiomsExhaustive(t *testing.T) {
	// Commutativity and identity over the full field.
	for a := 0; a < 256; a++ {
		if Mul(byte(a), 1) != byte(a) {
			t.Fatalf("1 is not multiplicative identity for %#x", a)
		}
		if Mul(byte(a), 0) != 0 {
			t.Fatalf("0 is not absorbing for %#x", a)
		}
		for b := a; b < 256; b++ {
			if Mul(byte(a), byte(b)) != Mul(byte(b), byte(a)) {
				t.Fatalf("Mul not commutative at %#x,%#x", a, b)
			}
		}
	}
}

func TestAssociativityAndDistributivity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 5000}
	assoc := func(a, b, c byte) bool {
		return Mul(Mul(a, b), c) == Mul(a, Mul(b, c))
	}
	if err := quick.Check(assoc, cfg); err != nil {
		t.Errorf("associativity: %v", err)
	}
	distrib := func(a, b, c byte) bool {
		return Mul(a, Add(b, c)) == Add(Mul(a, b), Mul(a, c))
	}
	if err := quick.Check(distrib, cfg); err != nil {
		t.Errorf("distributivity: %v", err)
	}
}

func TestInvDivExhaustive(t *testing.T) {
	for a := 1; a < 256; a++ {
		inv := Inv(byte(a))
		if Mul(byte(a), inv) != 1 {
			t.Fatalf("Inv(%#x)=%#x is not an inverse", a, inv)
		}
		if Div(1, byte(a)) != inv {
			t.Fatalf("Div(1,%#x) != Inv(%#x)", a, a)
		}
		for b := 1; b < 256; b++ {
			q := Div(byte(a), byte(b))
			if Mul(q, byte(b)) != byte(a) {
				t.Fatalf("Div(%#x,%#x)*%#x != %#x", a, b, b, a)
			}
		}
	}
	if Div(0, 7) != 0 {
		t.Fatal("0/x must be 0")
	}
}

func TestDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Div by zero did not panic")
		}
	}()
	Div(3, 0)
}

func TestInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) did not panic")
		}
	}()
	Inv(0)
}

func TestLogZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Log(0) did not panic")
		}
	}()
	Log(0)
}

func TestExp(t *testing.T) {
	if Exp(0, 0) != 1 {
		t.Fatal("Exp(0,0) must be 1 by convention")
	}
	if Exp(0, 5) != 0 {
		t.Fatal("Exp(0,5) must be 0")
	}
	for _, base := range []byte{1, 2, 3, 0x53, 0xff} {
		acc := byte(1)
		for e := 0; e < 520; e++ {
			if got := Exp(base, e); got != acc {
				t.Fatalf("Exp(%#x,%d) = %#x, want %#x", base, e, got, acc)
			}
			acc = Mul(acc, base)
		}
	}
	// Negative exponents invert.
	for _, base := range []byte{2, 3, 0x53} {
		if Mul(Exp(base, -3), Exp(base, 3)) != 1 {
			t.Fatalf("Exp(%#x,-3) is not inverse of Exp(%#x,3)", base, base)
		}
	}
}

func TestGeneratorCyclesThroughField(t *testing.T) {
	seen := make(map[byte]bool)
	for i := 0; i < 255; i++ {
		seen[Generator(i)] = true
	}
	if len(seen) != 255 {
		t.Fatalf("generator visits %d elements, want 255", len(seen))
	}
	if Generator(0) != 1 || Generator(255) != 1 {
		t.Fatal("generator period must be 255")
	}
	if Generator(-1) != Generator(254) {
		t.Fatal("negative indices must wrap")
	}
}

func TestLogExpRoundTrip(t *testing.T) {
	for a := 1; a < 256; a++ {
		if Generator(Log(byte(a))) != byte(a) {
			t.Fatalf("Generator(Log(%#x)) != %#x", a, a)
		}
	}
}

func TestPolyEval(t *testing.T) {
	// p(x) = 3 + 2x + x^2 over GF(256)
	p := []byte{3, 2, 1}
	if got := PolyEval(p, 0); got != 3 {
		t.Fatalf("p(0) = %#x, want 3", got)
	}
	for _, x := range []byte{1, 2, 7, 0xfe} {
		want := Add(Add(3, Mul(2, x)), Mul(x, x))
		if got := PolyEval(p, x); got != want {
			t.Fatalf("p(%#x) = %#x, want %#x", x, got, want)
		}
	}
	if PolyEval(nil, 9) != 0 {
		t.Fatal("empty polynomial must evaluate to 0")
	}
}

func TestAddSlice(t *testing.T) {
	dst := []byte{1, 2, 3, 4}
	src := []byte{4, 3, 2, 1}
	AddSlice(dst, src)
	want := []byte{5, 1, 1, 5}
	if !bytes.Equal(dst, want) {
		t.Fatalf("AddSlice = %v, want %v", dst, want)
	}
	AddSlice(dst, src)
	if !bytes.Equal(dst, []byte{1, 2, 3, 4}) {
		t.Fatal("AddSlice must be an involution")
	}
}

func TestSliceKernelMismatchPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"AddSlice":    func() { AddSlice(make([]byte, 3), make([]byte, 4)) },
		"MulSlice":    func() { MulSlice(2, make([]byte, 3), make([]byte, 4)) },
		"MulAddSlice": func() { MulAddSlice(2, make([]byte, 3), make([]byte, 4)) },
		"DotSlice":    func() { DotSlice(make([]byte, 3), []byte{1}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with mismatched lengths did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMulSliceAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	src := make([]byte, 257)
	dst := make([]byte, 257)
	for trial := 0; trial < 64; trial++ {
		c := byte(rng.Intn(256))
		rng.Read(src)
		MulSlice(c, dst, src)
		for i := range src {
			if dst[i] != Mul(c, src[i]) {
				t.Fatalf("MulSlice(c=%#x) mismatch at %d", c, i)
			}
		}
	}
}

func TestMulAddSliceAgainstScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	src := make([]byte, 129)
	dst := make([]byte, 129)
	orig := make([]byte, 129)
	for trial := 0; trial < 64; trial++ {
		c := byte(rng.Intn(256))
		rng.Read(src)
		rng.Read(dst)
		copy(orig, dst)
		MulAddSlice(c, dst, src)
		for i := range src {
			if dst[i] != orig[i]^Mul(c, src[i]) {
				t.Fatalf("MulAddSlice(c=%#x) mismatch at %d", c, i)
			}
		}
	}
}

func TestMulSliceSpecialCases(t *testing.T) {
	src := []byte{9, 8, 7}
	dst := []byte{1, 1, 1}
	MulSlice(0, dst, src)
	if !bytes.Equal(dst, []byte{0, 0, 0}) {
		t.Fatal("MulSlice with c=0 must zero dst")
	}
	MulSlice(1, dst, src)
	if !bytes.Equal(dst, src) {
		t.Fatal("MulSlice with c=1 must copy")
	}
	copy(dst, []byte{1, 1, 1})
	MulAddSlice(0, dst, src)
	if !bytes.Equal(dst, []byte{1, 1, 1}) {
		t.Fatal("MulAddSlice with c=0 must be a no-op")
	}
}

func TestDotSlice(t *testing.T) {
	vecs := [][]byte{{1, 0, 2}, {0, 1, 3}, {5, 5, 5}}
	coeffs := []byte{2, 3, 1}
	dst := make([]byte, 3)
	DotSlice(dst, coeffs, vecs)
	for i := 0; i < 3; i++ {
		want := Mul(2, vecs[0][i]) ^ Mul(3, vecs[1][i]) ^ Mul(1, vecs[2][i])
		if dst[i] != want {
			t.Fatalf("DotSlice[%d] = %#x, want %#x", i, dst[i], want)
		}
	}
}

func TestPropertyMulLinearOverSlices(t *testing.T) {
	f := func(c byte, a, b [16]byte) bool {
		// c*(a+b) == c*a + c*b elementwise.
		sum := make([]byte, 16)
		copy(sum, a[:])
		AddSlice(sum, b[:])
		lhs := make([]byte, 16)
		MulSlice(c, lhs, sum)

		ca := make([]byte, 16)
		cb := make([]byte, 16)
		MulSlice(c, ca, a[:])
		MulSlice(c, cb, b[:])
		AddSlice(ca, cb)
		return bytes.Equal(lhs, ca)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulAddSlice(b *testing.B) {
	src := make([]byte, 1<<20)
	dst := make([]byte, 1<<20)
	rand.New(rand.NewSource(3)).Read(src)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulAddSlice(0x57, dst, src)
	}
}

func BenchmarkMul(b *testing.B) {
	var acc byte
	for i := 0; i < b.N; i++ {
		acc ^= Mul(byte(i), byte(i>>8))
	}
	_ = acc
}
