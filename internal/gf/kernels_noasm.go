//go:build !amd64

package gf

// Non-amd64 builds have no vector kernels; simdEnabled is a compile-time
// false so the dispatchers in kernels.go fold the SIMD branches away and the
// stubs below are unreachable.
const simdEnabled = false

func mulSliceSIMD(c byte, dst, src []byte)    { mulSliceWord(c, dst, src) }
func mulAddSliceSIMD(c byte, dst, src []byte) { mulAddSliceWord(c, dst, src) }
