// Bulk slice kernels over GF(2^8) — the loops erasure coding actually spends
// its time in.
//
// Three implementations coexist, selected per call by slice length and CPU:
//
//   - The *SIMD* kernels (amd64 with SSSE3/AVX2, see kernels_amd64.go) use
//     split low/high-nibble product tables (16+16 byte entries per
//     coefficient, mulLo/mulHi) and a vector byte shuffle: one PSHUFB per
//     nibble table yields 16 or 32 product bytes per instruction pair. This
//     is the classic table-shuffle trick production erasure coders use and
//     the fastest path by a wide margin.
//
//   - The *word-parallel* kernels process 8 bytes per step in portable Go.
//     The add path is a plain uint64 XOR. The multiply path indexes
//     per-coefficient position-shifted product tables ([4][256]uint32, 4 KiB
//     per coefficient, see mulTable32): byte j of a word is looked up in
//     table j mod 4 and the entry already carries the product shifted to
//     byte j's position, so a word of products is assembled with XORs alone.
//     The dot-product kernel additionally fuses *pairs* of sources per pass,
//     which halves destination traffic while keeping the table working set
//     at 8 KiB, comfortably inside L1.
//
//   - The *byte-wise reference* kernels (…Ref) are the original
//     table-row-per-coefficient loops. They remain the source of truth: the
//     faster kernels fall back to them for short slices and tail bytes, and
//     the property/fuzz tests cross-check every kernel against them.
//
// All kernels are allocation-free and safe for concurrent use; the tables are
// computed once at package init and never mutated afterwards.
package gf

import (
	"encoding/binary"
	"fmt"
)

// wordMin is the slice length below which the word-parallel kernels hand the
// whole slice to the byte-wise reference: under two words the setup overhead
// outweighs the win.
const wordMin = 16

// simdMin is the slice length below which the SIMD kernels are not worth the
// vector setup; such slices take the word-parallel path instead.
const simdMin = 64

// mulLo[c][v] = c·v and mulHi[c][v] = c·(v<<4) for v in 0..15: split
// low/high-nibble product tables. Since b = hi<<4 ^ lo, the product of any
// byte is mulLo[c][b&15] ^ mulHi[c][b>>4] — two 16-entry lookups that a
// vector byte shuffle performs for a whole register at once. 16+16 bytes per
// coefficient, 8 KiB total, built at init.
var (
	mulLo [256][16]byte
	mulHi [256][16]byte
)

// mulTable32[c][p][b] = uint32(c·b) << (8·p) for p in 0..3. A word's 8
// product bytes are gathered as two uint32 halves (4 lookups each) and glued
// with one shift+or; entries are pre-shifted, so no per-byte shifting remains
// in the hot loop. 4 KiB per coefficient, 1 MiB total, built at init.
var mulTable32 [256][4][256]uint32

func init() {
	// Go runs same-package init functions in file-name order, so gf.go's init
	// has already filled mulTable when this derives mulTable32 from it.
	for c := 0; c < 256; c++ {
		row := &mulTable[c]
		t := &mulTable32[c]
		for b := 0; b < 256; b++ {
			v := uint32(row[b])
			t[0][b] = v
			t[1][b] = v << 8
			t[2][b] = v << 16
			t[3][b] = v << 24
		}
		for v := 0; v < 16; v++ {
			mulLo[c][v] = row[v]
			mulHi[c][v] = row[v<<4]
		}
	}
}

// SIMDEnabled reports whether the public kernels route long slices to the
// vector (SIMD) implementation on this CPU; otherwise the portable
// word-parallel path is the fast path.
func SIMDEnabled() bool { return simdEnabled }

// AddSlice sets dst[i] ^= src[i] for all i. dst and src must have equal
// length; it panics otherwise.
func AddSlice(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: AddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	n := len(dst) &^ 31
	for i := 0; i+32 <= n; i += 32 {
		s := src[i : i+32 : i+32]
		d := dst[i : i+32 : i+32]
		binary.LittleEndian.PutUint64(d[0:], binary.LittleEndian.Uint64(d[0:])^binary.LittleEndian.Uint64(s[0:]))
		binary.LittleEndian.PutUint64(d[8:], binary.LittleEndian.Uint64(d[8:])^binary.LittleEndian.Uint64(s[8:]))
		binary.LittleEndian.PutUint64(d[16:], binary.LittleEndian.Uint64(d[16:])^binary.LittleEndian.Uint64(s[16:]))
		binary.LittleEndian.PutUint64(d[24:], binary.LittleEndian.Uint64(d[24:])^binary.LittleEndian.Uint64(s[24:]))
	}
	for i := n; i+8 <= len(dst); i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
		n = i + 8
	}
	AddSliceRef(dst[n:], src[n:])
}

// AddSliceRef is the byte-wise reference implementation of AddSlice, kept for
// tails and for cross-checking the word kernel.
func AddSliceRef(dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: AddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	for i := range dst {
		dst[i] ^= src[i]
	}
}

// XorSlice sets dst[i] = a[i] ^ b[i]. All three slices must share one length.
// dst may alias a or b.
func XorSlice(dst, a, b []byte) {
	if len(dst) != len(a) || len(dst) != len(b) {
		panic(fmt.Sprintf("gf: XorSlice length mismatch %d/%d/%d", len(dst), len(a), len(b)))
	}
	n := len(dst) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(a[i:])^binary.LittleEndian.Uint64(b[i:]))
	}
	for i := n; i < len(dst); i++ {
		dst[i] = a[i] ^ b[i]
	}
}

// MulSlice sets dst[i] = c * src[i]. dst and src must have equal length.
// c == 0 zeroes dst; c == 1 copies. dst may alias src.
func MulSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulSlice length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		if len(src) < wordMin {
			MulSliceRef(c, dst, src)
			return
		}
		if simdEnabled && len(src) >= simdMin {
			mulSliceSIMD(c, dst, src)
			return
		}
		mulSliceWord(c, dst, src)
	}
}

// mulSliceWord is the word-parallel multiply body: c must be ≥ 2 and
// len(dst) ≥ wordMin (callers dispatch).
func mulSliceWord(c byte, dst, src []byte) {
	t := &mulTable32[c]
	n := len(src) &^ 15
	for i := 0; i+16 <= n; i += 16 {
		s := src[i : i+16 : i+16]
		lo1 := t[0][s[0]] ^ t[1][s[1]] ^ t[2][s[2]] ^ t[3][s[3]]
		hi1 := t[0][s[4]] ^ t[1][s[5]] ^ t[2][s[6]] ^ t[3][s[7]]
		lo2 := t[0][s[8]] ^ t[1][s[9]] ^ t[2][s[10]] ^ t[3][s[11]]
		hi2 := t[0][s[12]] ^ t[1][s[13]] ^ t[2][s[14]] ^ t[3][s[15]]
		binary.LittleEndian.PutUint64(dst[i:], uint64(lo1)|uint64(hi1)<<32)
		binary.LittleEndian.PutUint64(dst[i+8:], uint64(lo2)|uint64(hi2)<<32)
	}
	MulSliceRef(c, dst[n:], src[n:])
}

// MulSliceRef is the byte-wise reference implementation of MulSlice.
func MulSliceRef(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulSlice length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		row := &mulTable[c]
		for i, s := range src {
			dst[i] = row[s]
		}
	}
}

// MulAddSlice sets dst[i] ^= c * src[i]. dst and src must have equal length.
// This is the inner kernel of matrix-vector encoding.
func MulAddSlice(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulAddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		// no-op
	case 1:
		AddSlice(dst, src)
	default:
		if len(src) < wordMin {
			MulAddSliceRef(c, dst, src)
			return
		}
		if simdEnabled && len(src) >= simdMin {
			mulAddSliceSIMD(c, dst, src)
			return
		}
		mulAddSliceWord(c, dst, src)
	}
}

// mulAddSliceWord is the word-parallel multiply-accumulate body: c must be
// ≥ 2 and len(dst) ≥ wordMin (callers dispatch).
func mulAddSliceWord(c byte, dst, src []byte) {
	t := &mulTable32[c]
	n := len(src) &^ 15
	for i := 0; i+16 <= n; i += 16 {
		s := src[i : i+16 : i+16]
		lo1 := t[0][s[0]] ^ t[1][s[1]] ^ t[2][s[2]] ^ t[3][s[3]]
		hi1 := t[0][s[4]] ^ t[1][s[5]] ^ t[2][s[6]] ^ t[3][s[7]]
		lo2 := t[0][s[8]] ^ t[1][s[9]] ^ t[2][s[10]] ^ t[3][s[11]]
		hi2 := t[0][s[12]] ^ t[1][s[13]] ^ t[2][s[14]] ^ t[3][s[15]]
		binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^(uint64(lo1)|uint64(hi1)<<32))
		binary.LittleEndian.PutUint64(dst[i+8:], binary.LittleEndian.Uint64(dst[i+8:])^(uint64(lo2)|uint64(hi2)<<32))
	}
	MulAddSliceRef(c, dst[n:], src[n:])
}

// MulAddSliceRef is the byte-wise reference implementation of MulAddSlice.
func MulAddSliceRef(c byte, dst, src []byte) {
	if len(dst) != len(src) {
		panic(fmt.Sprintf("gf: MulAddSlice length mismatch %d != %d", len(dst), len(src)))
	}
	switch c {
	case 0:
		// no-op
	case 1:
		for i := range dst {
			dst[i] ^= src[i]
		}
	default:
		row := &mulTable[c]
		for i, s := range src {
			dst[i] ^= row[s]
		}
	}
}

// mulAdd2 computes dst = c1·a ^ c2·b when overwrite is true, or
// dst ^= c1·a ^ c2·b otherwise, one pass over memory for both sources. The
// two 4 KiB product tables together stay L1-resident, and fusing the pair
// halves the destination read/write traffic of two MulAddSlice passes —
// what keeps the portable dot product ahead of the byte-wise reference.
// All slices must share one length (callers validate).
func mulAdd2(c1, c2 byte, dst, a, b []byte, overwrite bool) {
	t1 := &mulTable32[c1]
	t2 := &mulTable32[c2]
	n := len(dst) &^ 7
	for i := 0; i+8 <= n; i += 8 {
		s1 := a[i : i+8 : i+8]
		s2 := b[i : i+8 : i+8]
		lo := t1[0][s1[0]] ^ t1[1][s1[1]] ^ t1[2][s1[2]] ^ t1[3][s1[3]] ^
			t2[0][s2[0]] ^ t2[1][s2[1]] ^ t2[2][s2[2]] ^ t2[3][s2[3]]
		hi := t1[0][s1[4]] ^ t1[1][s1[5]] ^ t1[2][s1[6]] ^ t1[3][s1[7]] ^
			t2[0][s2[4]] ^ t2[1][s2[5]] ^ t2[2][s2[6]] ^ t2[3][s2[7]]
		r := uint64(lo) | uint64(hi)<<32
		if overwrite {
			binary.LittleEndian.PutUint64(dst[i:], r)
		} else {
			binary.LittleEndian.PutUint64(dst[i:], binary.LittleEndian.Uint64(dst[i:])^r)
		}
	}
	r1 := &mulTable[c1]
	r2 := &mulTable[c2]
	for i := n; i < len(dst); i++ {
		v := r1[a[i]] ^ r2[b[i]]
		if overwrite {
			dst[i] = v
		} else {
			dst[i] ^= v
		}
	}
}

// DotSlice computes the dot product sum_i coeffs[i]*vecs[i] into dst,
// overwriting dst. All vecs must have at least len(dst) bytes; len(coeffs)
// must equal len(vecs). dst must not alias any vec except vecs[0].
//
// The first pass overwrites dst (no zeroing pass), later passes accumulate.
// This is the multiply-accumulate kernel behind matrix encoding and erasure
// decoding.
func DotSlice(dst []byte, coeffs []byte, vecs [][]byte) {
	if len(coeffs) != len(vecs) {
		panic(fmt.Sprintf("gf: DotSlice arity mismatch %d != %d", len(coeffs), len(vecs)))
	}
	for j, v := range vecs {
		if len(v) != len(dst) {
			panic(fmt.Sprintf("gf: DotSlice vec %d has %d bytes, want %d", j, len(v), len(dst)))
		}
	}
	if len(coeffs) == 0 {
		clear(dst)
		return
	}
	if len(dst) < wordMin {
		DotSliceRef(dst, coeffs, vecs)
		return
	}
	if simdEnabled && len(dst) >= simdMin {
		// One vector multiply pass per source: at SIMD speeds the extra
		// destination traffic of unfused passes is cheaper than falling back
		// to the scalar pairwise kernel.
		MulSlice(coeffs[0], dst, vecs[0])
		for j := 1; j < len(coeffs); j++ {
			MulAddSlice(coeffs[j], dst, vecs[j])
		}
		return
	}
	dotSliceWord(dst, coeffs, vecs)
}

// dotSliceWord is the portable dot-product body: sources are consumed in
// fused pairs (see mulAdd2), the first pass overwriting dst. len(coeffs) must
// be ≥ 1 and len(dst) ≥ wordMin (callers dispatch).
func dotSliceWord(dst []byte, coeffs []byte, vecs [][]byte) {
	j := 0
	overwrite := true
	for ; j+2 <= len(coeffs); j += 2 {
		mulAdd2(coeffs[j], coeffs[j+1], dst, vecs[j], vecs[j+1], overwrite)
		overwrite = false
	}
	if j < len(coeffs) {
		if overwrite {
			mulSliceDispatchWord(coeffs[j], dst, vecs[j])
		} else {
			mulAddSliceDispatchWord(coeffs[j], dst, vecs[j])
		}
	}
}

// mulSliceDispatchWord handles the 0/1 fast paths then the word body —
// MulSlice without the SIMD branch, so dotSliceWord stays a pure word-path
// kernel for tests and non-SIMD builds.
func mulSliceDispatchWord(c byte, dst, src []byte) {
	switch c {
	case 0:
		clear(dst)
	case 1:
		copy(dst, src)
	default:
		mulSliceWord(c, dst, src)
	}
}

func mulAddSliceDispatchWord(c byte, dst, src []byte) {
	switch c {
	case 0:
	case 1:
		AddSlice(dst, src)
	default:
		mulAddSliceWord(c, dst, src)
	}
}

// DotSliceRef is the byte-wise reference implementation of DotSlice: zero the
// destination, then one reference multiply-accumulate pass per source.
func DotSliceRef(dst []byte, coeffs []byte, vecs [][]byte) {
	if len(coeffs) != len(vecs) {
		panic(fmt.Sprintf("gf: DotSlice arity mismatch %d != %d", len(coeffs), len(vecs)))
	}
	clear(dst)
	for j, c := range coeffs {
		MulAddSliceRef(c, dst, vecs[j])
	}
}
