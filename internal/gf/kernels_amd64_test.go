//go:build amd64

package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestAsmKernelsMatchRef drives the SSSE3 and AVX2 assembly bodies directly
// (bypassing dispatch) so both ISA variants stay verified on machines where
// the faster one would otherwise shadow the other. Every coefficient is
// swept at block-aligned lengths, per the asm contract.
func TestAsmKernelsMatchRef(t *testing.T) {
	if !simdEnabled {
		t.Skip("no SIMD support on this CPU")
	}
	rng := rand.New(rand.NewSource(8))
	type variant struct {
		name   string
		ok     bool
		block  int
		mul    func(lo, hi *[16]byte, dst, src *byte, n int)
		mulAdd func(lo, hi *[16]byte, dst, src *byte, n int)
	}
	variants := []variant{
		{"ssse3", hasSSSE3, 16, gfMulSSSE3, gfMulAddSSSE3},
		{"avx2", hasAVX2, 32, gfMulAVX2, gfMulAddAVX2},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if !v.ok {
				t.Skipf("%s not supported on this CPU", v.name)
			}
			for _, blocks := range []int{1, 2, 3, 8} {
				n := blocks * v.block
				src := make([]byte, n)
				rng.Read(src)
				for c := 0; c < 256; c++ {
					dst := make([]byte, n)
					rng.Read(dst)
					want := append([]byte(nil), dst...)

					v.mul(&mulLo[c], &mulHi[c], &dst[0], &src[0], n)
					MulSliceRef(byte(c), want, src)
					if !bytes.Equal(dst, want) {
						t.Fatalf("mul c=%d n=%d: mismatch", c, n)
					}

					v.mulAdd(&mulLo[c], &mulHi[c], &dst[0], &src[0], n)
					MulAddSliceRef(byte(c), want, src)
					if !bytes.Equal(dst, want) {
						t.Fatalf("mulAdd c=%d n=%d: mismatch", c, n)
					}
				}
			}
		})
	}
}
