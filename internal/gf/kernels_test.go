package gf

import (
	"bytes"
	"math/rand"
	"testing"
)

// testLengths exercises the empty case, sub-word slices, exact word/stride
// multiples, and odd tails around every unroll boundary in the kernels.
var testLengths = []int{0, 1, 2, 3, 7, 8, 9, 15, 16, 17, 24, 31, 32, 33, 63, 64, 65, 100, 255, 256, 257, 1000}

// unaligned returns a slice of length n whose backing data starts at the
// given byte offset from an allocation boundary, so kernels are exercised on
// pointers with every alignment mod 8.
func unaligned(rng *rand.Rand, n, off int) []byte {
	b := make([]byte, n+off)
	rng.Read(b)
	return b[off : off+n]
}

func TestAddSliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range testLengths {
		for off := 0; off < 8; off++ {
			src := unaligned(rng, n, off)
			dst := unaligned(rng, n, (off+3)%8)
			want := append([]byte(nil), dst...)
			AddSliceRef(want, src)
			AddSlice(dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("AddSlice n=%d off=%d: mismatch", n, off)
			}
		}
	}
}

func TestXorSlice(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range testLengths {
		for off := 0; off < 8; off++ {
			a := unaligned(rng, n, off)
			b := unaligned(rng, n, (off+5)%8)
			dst := make([]byte, n)
			XorSlice(dst, a, b)
			for i := range dst {
				if dst[i] != a[i]^b[i] {
					t.Fatalf("XorSlice n=%d off=%d i=%d: %#x != %#x", n, off, i, dst[i], a[i]^b[i])
				}
			}
			// Aliased destination.
			want := append([]byte(nil), dst...)
			XorSlice(a, a, b)
			if !bytes.Equal(a, want) {
				t.Fatalf("XorSlice aliased n=%d off=%d: mismatch", n, off)
			}
		}
	}
}

// TestMulKernelsAllCoefficientsMatchRef sweeps every field element as the
// coefficient against the byte-wise reference, over odd lengths and
// unaligned offsets.
func TestMulKernelsAllCoefficientsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lengths := []int{0, 1, 7, 15, 16, 17, 31, 33, 63, 64, 65, 100, 512, 1023}
	for c := 0; c < 256; c++ {
		for _, n := range lengths {
			off := (c + n) % 8
			src := unaligned(rng, n, off)

			dst := unaligned(rng, n, (off+1)%8)
			want := append([]byte(nil), dst...)
			MulSliceRef(byte(c), want, src)
			MulSlice(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulSlice c=%d n=%d: mismatch", c, n)
			}

			dst = unaligned(rng, n, (off+2)%8)
			want = append([]byte(nil), dst...)
			MulAddSliceRef(byte(c), want, src)
			MulAddSlice(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("MulAddSlice c=%d n=%d: mismatch", c, n)
			}
		}
	}
}

// TestWordKernelsAllCoefficientsMatchRef pins the portable word-parallel
// bodies directly: on SIMD-capable hosts the public kernels route long slices
// to the vector path, so without this the word loops would only ever see
// short inputs.
func TestWordKernelsAllCoefficientsMatchRef(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	lengths := []int{16, 17, 31, 32, 33, 64, 100, 257, 1000}
	for c := 2; c < 256; c++ {
		for _, n := range lengths {
			off := (c + n) % 8
			src := unaligned(rng, n, off)

			dst := unaligned(rng, n, (off+1)%8)
			want := append([]byte(nil), dst...)
			MulSliceRef(byte(c), want, src)
			mulSliceWord(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulSliceWord c=%d n=%d: mismatch", c, n)
			}

			dst = unaligned(rng, n, (off+2)%8)
			want = append([]byte(nil), dst...)
			MulAddSliceRef(byte(c), want, src)
			mulAddSliceWord(byte(c), dst, src)
			if !bytes.Equal(dst, want) {
				t.Fatalf("mulAddSliceWord c=%d n=%d: mismatch", c, n)
			}
		}
	}
}

// TestDotSliceWordMatchesRef pins the pairwise-fused word dot product
// (dotSliceWord and mulAdd2) on long slices for the same reason.
func TestDotSliceWordMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []int{1, 2, 3, 4, 5, 6, 7, 12} {
		for _, n := range []int{16, 17, 64, 100, 1000} {
			coeffs := make([]byte, k)
			vecs := make([][]byte, k)
			for j := 0; j < k; j++ {
				coeffs[j] = byte(rng.Intn(256))
				vecs[j] = unaligned(rng, n, (j+n)%8)
			}
			if k > 1 {
				coeffs[0] = 0
			}
			if k > 2 {
				coeffs[1] = 1
			}
			dst := unaligned(rng, n, 3)
			want := make([]byte, n)
			DotSliceRef(want, coeffs, vecs)
			dotSliceWord(dst, coeffs, vecs)
			if !bytes.Equal(dst, want) {
				t.Fatalf("dotSliceWord k=%d n=%d: mismatch", k, n)
			}
		}
	}
}

func TestMulSliceInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for c := 0; c < 256; c++ {
		s := unaligned(rng, 257, c%8)
		want := make([]byte, len(s))
		MulSliceRef(byte(c), want, s)
		MulSlice(byte(c), s, s)
		if !bytes.Equal(s, want) {
			t.Fatalf("in-place MulSlice c=%d: mismatch", c)
		}
	}
}

// TestDotSliceMatchesRef covers every arity the pairwise-fused kernel
// branches on: 0 sources, odd/even counts (lone trailing source with and
// without a preceding fused pair), across odd lengths and offsets.
func TestDotSliceMatchesRef(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, k := range []int{0, 1, 2, 3, 4, 5, 6, 7, 12} {
		for _, n := range []int{0, 1, 7, 8, 15, 16, 17, 100, 1000} {
			coeffs := make([]byte, k)
			vecs := make([][]byte, k)
			for j := 0; j < k; j++ {
				coeffs[j] = byte(rng.Intn(256))
				vecs[j] = unaligned(rng, n, (j+n)%8)
			}
			// Include zero and one coefficients, which take special paths.
			if k > 1 {
				coeffs[0] = 0
			}
			if k > 2 {
				coeffs[1] = 1
			}
			dst := unaligned(rng, n, 3)
			want := make([]byte, n)
			DotSliceRef(want, coeffs, vecs)
			DotSlice(dst, coeffs, vecs)
			if !bytes.Equal(dst, want) {
				t.Fatalf("DotSlice k=%d n=%d: mismatch", k, n)
			}
		}
	}
}

func TestKernelLengthMismatchPanics(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic on length mismatch", name)
			}
		}()
		fn()
	}
	a, b := make([]byte, 4), make([]byte, 5)
	expectPanic("AddSlice", func() { AddSlice(a, b) })
	expectPanic("XorSlice", func() { XorSlice(a, a, b) })
	expectPanic("MulSlice", func() { MulSlice(3, a, b) })
	expectPanic("MulAddSlice", func() { MulAddSlice(3, a, b) })
	expectPanic("DotSlice arity", func() { DotSlice(a, []byte{1, 2}, [][]byte{a}) })
	expectPanic("DotSlice vec len", func() { DotSlice(a, []byte{1}, [][]byte{b}) })
}

// FuzzKernelEquivalence cross-checks the fast kernels — whichever path the
// public dispatchers pick (SIMD or word-parallel) plus the word bodies
// directly — against the byte-wise reference on fuzzer-chosen coefficients,
// lengths, and offsets.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint8(2), uint8(7), uint8(3), []byte("the quick brown fox jumps over the lazy dog"))
	f.Add(uint8(0), uint8(1), uint8(0), []byte{})
	f.Add(uint8(255), uint8(142), uint8(7), bytes.Repeat([]byte{0xa5}, 65))
	f.Fuzz(func(t *testing.T, c1, c2, off uint8, data []byte) {
		start := int(off % 8)
		if start > len(data) {
			start = len(data)
		}
		src := data[start:]
		n := len(src)

		dst := make([]byte, n)
		want := make([]byte, n)

		MulSlice(c1, dst, src)
		MulSliceRef(c1, want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulSlice c=%d n=%d: %x != %x", c1, n, dst, want)
		}

		copy(dst, src)
		copy(want, src)
		MulAddSlice(c2, dst, src)
		MulAddSliceRef(c2, want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("MulAddSlice c=%d n=%d: %x != %x", c2, n, dst, want)
		}

		// The portable word bodies, which long slices otherwise bypass on
		// SIMD-capable hosts.
		if n >= wordMin && c1 >= 2 {
			wdst := make([]byte, n)
			wwant := make([]byte, n)
			mulSliceWord(c1, wdst, src)
			MulSliceRef(c1, wwant, src)
			if !bytes.Equal(wdst, wwant) {
				t.Fatalf("mulSliceWord c=%d n=%d: %x != %x", c1, n, wdst, wwant)
			}
			mulAddSliceWord(c1, wdst, src)
			MulAddSliceRef(c1, wwant, src)
			if !bytes.Equal(wdst, wwant) {
				t.Fatalf("mulAddSliceWord c=%d n=%d: %x != %x", c1, n, wdst, wwant)
			}
		}

		AddSlice(dst, src)
		AddSliceRef(want, src)
		if !bytes.Equal(dst, want) {
			t.Fatalf("AddSlice n=%d: %x != %x", n, dst, want)
		}

		// Dot product over three sources derived from the input, covering the
		// fused-pair path plus the lone trailing source.
		v2 := make([]byte, n)
		MulSlice(0x1d, v2, src)
		v3 := make([]byte, n)
		MulSlice(c2, v3, src)
		coeffs := []byte{c1, c2, c1 ^ c2}
		vecs := [][]byte{src, v2, v3}
		DotSlice(dst, coeffs, vecs)
		DotSliceRef(want, coeffs, vecs)
		if !bytes.Equal(dst, want) {
			t.Fatalf("DotSlice n=%d: %x != %x", n, dst, want)
		}
	})
}
