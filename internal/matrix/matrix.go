// Package matrix implements dense linear algebra over GF(2^8).
//
// It provides the machinery the erasure codes are built from: matrix
// products, Gaussian elimination (inversion, rank, general linear solves),
// and the classic Vandermonde and Cauchy constructions used to build
// systematic MDS generator matrices.
//
// A Matrix is a rows×cols table of field elements stored row-major. The
// zero Matrix is empty; use New or one of the constructors.
package matrix

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/gf"
)

// ErrSingular is returned when an operation requires an invertible matrix
// and the input is rank-deficient.
var ErrSingular = errors.New("matrix: singular")

// ErrUnsolvable is returned by SpanSolve when a requested target row is not
// in the row span of the available rows, i.e. the corresponding element is
// information-theoretically unrecoverable.
var ErrUnsolvable = errors.New("matrix: target not in row span")

// Matrix is a dense rows×cols matrix over GF(2^8).
type Matrix struct {
	rows, cols int
	data       []byte // row-major, len rows*cols
}

// New returns a zero-valued rows×cols matrix. It panics if either dimension
// is negative or the product overflows.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

// FromRows builds a matrix from a slice of equally sized rows, copying the
// contents. It panics if rows are ragged.
func FromRows(rows [][]byte) *Matrix {
	if len(rows) == 0 {
		return New(0, 0)
	}
	m := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde returns the rows×cols Vandermonde matrix V[i][j] = g(i)^j
// where g(i) enumerates distinct nonzero field points (the generator powers
// would collide for rows >= 255, so i itself is used as the evaluation
// point, starting at 0: V[i][j] = i^j with 0^0 = 1).
//
// Any k rows of a Vandermonde matrix with distinct evaluation points are
// linearly independent when cols = k, which is the MDS property RS needs.
// rows must be at most 256 so evaluation points stay distinct.
func Vandermonde(rows, cols int) *Matrix {
	if rows > gf.Order {
		panic(fmt.Sprintf("matrix: Vandermonde rows %d exceeds field size", rows))
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf.Exp(byte(i), j))
		}
	}
	return m
}

// Cauchy returns the rows×cols Cauchy matrix C[i][j] = 1/(x_i + y_j) with
// x_i = i + cols and y_j = j. Every square submatrix of a Cauchy matrix is
// invertible, so it yields MDS codes directly. rows+cols must be ≤ 256.
func Cauchy(rows, cols int) *Matrix {
	if rows+cols > gf.Order {
		panic(fmt.Sprintf("matrix: Cauchy %d+%d exceeds field size", rows, cols))
	}
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf.Inv(byte(i+cols)^byte(j)))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) byte {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v byte) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []byte {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the product m·o. It panics on a dimension mismatch.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mr := m.Row(i)
		pr := p.Row(i)
		for t := 0; t < m.cols; t++ {
			gf.MulAddSlice(mr[t], pr, o.Row(t))
		}
	}
	return p
}

// MulVec applies the matrix to a vector of data shards: out[i] is the GF
// linear combination of shards with coefficients from row i. All shards must
// share one length; out must have m.Rows() slices of that length.
func (m *Matrix) MulVec(out, shards [][]byte) {
	if len(shards) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec got %d shards, want %d", len(shards), m.cols))
	}
	if len(out) != m.rows {
		panic(fmt.Sprintf("matrix: MulVec got %d outputs, want %d", len(out), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		gf.DotSlice(out[i], m.Row(i), shards)
	}
}

// Augment returns [m | o] side by side. Row counts must match.
func (m *Matrix) Augment(o *Matrix) *Matrix {
	if m.rows != o.rows {
		panic(fmt.Sprintf("matrix: Augment row mismatch %d != %d", m.rows, o.rows))
	}
	a := New(m.rows, m.cols+o.cols)
	for i := 0; i < m.rows; i++ {
		copy(a.Row(i)[:m.cols], m.Row(i))
		copy(a.Row(i)[m.cols:], o.Row(i))
	}
	return a
}

// Stack returns m on top of o. Column counts must match.
func (m *Matrix) Stack(o *Matrix) *Matrix {
	if m.cols != o.cols {
		panic(fmt.Sprintf("matrix: Stack column mismatch %d != %d", m.cols, o.cols))
	}
	s := New(m.rows+o.rows, m.cols)
	copy(s.data, m.data)
	copy(s.data[m.rows*m.cols:], o.data)
	return s
}

// SubMatrix returns the rectangle [r0,r1)×[c0,c1) as a copy.
func (m *Matrix) SubMatrix(r0, r1, c0, c1 int) *Matrix {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: SubMatrix [%d:%d,%d:%d] out of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	s := New(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), m.Row(i)[c0:c1])
	}
	return s
}

// SelectRows returns a new matrix whose rows are m's rows at the given
// indices, in order. Indices may repeat.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	s := New(len(idx), m.cols)
	for i, r := range idx {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for t := range ri {
		ri[t], rj[t] = rj[t], ri[t]
	}
}

// gaussian reduces m in place to reduced row-echelon form and returns the
// rank. Pivots are searched over every column.
func (m *Matrix) gaussian() int { return m.gaussianCols(m.cols) }

// gaussianCols row-reduces m in place, choosing pivots only from the first
// maxCol columns (later columns still participate in row operations). It
// returns the number of pivots found, i.e. the rank of the left block.
func (m *Matrix) gaussianCols(maxCol int) int {
	rank := 0
	for col := 0; col < maxCol && rank < m.rows; col++ {
		// Find a pivot at or below `rank` in this column.
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		// Scale the pivot row so the pivot is 1.
		inv := gf.Inv(m.At(rank, col))
		gf.MulSlice(inv, m.Row(rank), m.Row(rank))
		// Eliminate the column everywhere else.
		for r := 0; r < m.rows; r++ {
			if r != rank && m.At(r, col) != 0 {
				gf.MulAddSlice(m.At(r, col), m.Row(r), m.Row(rank))
			}
		}
		rank++
	}
	return rank
}

// Rank returns the rank of the matrix.
func (m *Matrix) Rank() int {
	return m.Clone().gaussian()
}

// Invert returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %d×%d", m.rows, m.cols)
	}
	aug := m.Augment(Identity(m.rows))
	if aug.gaussianCols(m.cols) < m.rows {
		return nil, ErrSingular
	}
	return aug.SubMatrix(0, m.rows, m.cols, 2*m.cols), nil
}

// IsIdentity reports whether m is a square identity matrix.
func (m *Matrix) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Equal(Identity(m.rows))
}

// SpanSolve expresses each target row as a linear combination of the
// available rows. available is a set of row vectors (each length w);
// targets likewise. The returned coefficient matrix C (len(targets) ×
// len(available)) satisfies targets = C · available.
//
// This is the general erasure decoder: rows are generator-matrix rows of
// surviving elements; targets are the rows of erased elements. A target
// outside the span returns ErrUnsolvable.
func SpanSolve(available, targets *Matrix) (*Matrix, error) {
	if available.cols != targets.cols {
		return nil, fmt.Errorf("matrix: SpanSolve width mismatch %d != %d", available.cols, targets.cols)
	}
	na := available.rows
	// Row-reduce [available | I]; the right block tracks the combination
	// of original available rows that produced each reduced row.
	work := available.Augment(Identity(na))
	rank := 0
	pivotCol := make([]int, 0, na) // pivot column for each reduced row
	for col := 0; col < available.cols && rank < na; col++ {
		pivot := -1
		for r := rank; r < na; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.SwapRows(rank, pivot)
		inv := gf.Inv(work.At(rank, col))
		gf.MulSlice(inv, work.Row(rank), work.Row(rank))
		for r := 0; r < na; r++ {
			if r != rank && work.At(r, col) != 0 {
				gf.MulAddSlice(work.At(r, col), work.Row(r), work.Row(rank))
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}

	w := available.cols
	coeff := New(targets.rows, na)
	resid := make([]byte, w)
	comb := make([]byte, na)
	for t := 0; t < targets.rows; t++ {
		copy(resid, targets.Row(t))
		for i := range comb {
			comb[i] = 0
		}
		for r := 0; r < rank; r++ {
			c := resid[pivotCol[r]]
			if c == 0 {
				continue
			}
			// Subtract c × reduced-row r; accumulate the same combination
			// of original rows.
			gf.MulAddSlice(c, resid, work.Row(r)[:w])
			gf.MulAddSlice(c, comb, work.Row(r)[w:])
		}
		for _, v := range resid {
			if v != 0 {
				return nil, ErrUnsolvable
			}
		}
		copy(coeff.Row(t), comb)
	}
	return coeff, nil
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d×%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%02x", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
