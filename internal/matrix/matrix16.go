// Dense linear algebra over GF(2^16) — the wide-symbol twin of matrix.go.
//
// Matrix16 carries uint16 elements and backs the wide-stripe code
// constructions, where n = k+m can exceed GF(2^8)'s 256-element ceiling
// (Cauchy generators need rows+cols distinct field points). Scalar row
// reduction runs on gf16's row kernels; MulVec applies coefficient rows to
// data shards holding little-endian-packed 16-bit symbols via the gf16
// slice kernels, so wide-stripe encode/decode hits the same SIMD paths as
// the GF(2^8) codes.
package matrix

import (
	"fmt"
	"strings"

	"repro/internal/gf16"
)

// Matrix16 is a dense rows×cols matrix over GF(2^16).
type Matrix16 struct {
	rows, cols int
	data       []uint16 // row-major, len rows*cols
}

// New16 returns a zero-valued rows×cols matrix over GF(2^16).
func New16(rows, cols int) *Matrix16 {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: invalid dimensions %d×%d", rows, cols))
	}
	return &Matrix16{rows: rows, cols: cols, data: make([]uint16, rows*cols)}
}

// FromRows16 builds a matrix from a slice of equally sized rows, copying
// the contents. It panics if rows are ragged.
func FromRows16(rows [][]uint16) *Matrix16 {
	if len(rows) == 0 {
		return New16(0, 0)
	}
	m := New16(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("matrix: ragged row %d: %d != %d", i, len(r), m.cols))
		}
		copy(m.Row(i), r)
	}
	return m
}

// Identity16 returns the n×n identity matrix over GF(2^16).
func Identity16(n int) *Matrix16 {
	m := New16(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Vandermonde16 returns the rows×cols Vandermonde matrix V[i][j] = i^j with
// 0^0 = 1, using row indices as the distinct evaluation points. rows must
// be at most 65536.
func Vandermonde16(rows, cols int) *Matrix16 {
	if rows > gf16.Order {
		panic(fmt.Sprintf("matrix: Vandermonde16 rows %d exceeds field size", rows))
	}
	m := New16(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf16.Exp(uint16(i), j))
		}
	}
	return m
}

// Cauchy16 returns the rows×cols Cauchy matrix C[i][j] = 1/(x_i + y_j) with
// x_i = i + cols and y_j = j. Every square submatrix of a Cauchy matrix is
// invertible, so it yields MDS codes directly — this is what makes wide
// stripes (rows+cols up to 65536) possible at all. rows+cols must be
// ≤ 65536.
func Cauchy16(rows, cols int) *Matrix16 {
	if rows+cols > gf16.Order {
		panic(fmt.Sprintf("matrix: Cauchy16 %d+%d exceeds field size", rows, cols))
	}
	m := New16(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, gf16.Inv(uint16(i+cols)^uint16(j)))
		}
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix16) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix16) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix16) At(i, j int) uint16 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix16) Set(i, j int, v uint16) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix16) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("matrix: index (%d,%d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a mutable slice aliasing the matrix storage.
func (m *Matrix16) Row(i int) []uint16 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("matrix: row %d out of %d", i, m.rows))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Clone returns a deep copy.
func (m *Matrix16) Clone() *Matrix16 {
	c := New16(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices have identical shape and contents.
func (m *Matrix16) Equal(o *Matrix16) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// Mul returns the product m·o. It panics on a dimension mismatch.
func (m *Matrix16) Mul(o *Matrix16) *Matrix16 {
	if m.cols != o.rows {
		panic(fmt.Sprintf("matrix: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New16(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		mr := m.Row(i)
		pr := p.Row(i)
		for t := 0; t < m.cols; t++ {
			gf16.MulAddRow(mr[t], pr, o.Row(t))
		}
	}
	return p
}

// MulVec applies the matrix to a vector of data shards: out[i] is the GF
// linear combination of shards with coefficients from row i. Shards hold
// little-endian-packed 16-bit symbols; all must share one even length, and
// out must have m.Rows() slices of that length.
func (m *Matrix16) MulVec(out, shards [][]byte) {
	if len(shards) != m.cols {
		panic(fmt.Sprintf("matrix: MulVec got %d shards, want %d", len(shards), m.cols))
	}
	if len(out) != m.rows {
		panic(fmt.Sprintf("matrix: MulVec got %d outputs, want %d", len(out), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		gf16.DotSlice(out[i], m.Row(i), shards)
	}
}

// Augment returns [m | o] side by side. Row counts must match.
func (m *Matrix16) Augment(o *Matrix16) *Matrix16 {
	if m.rows != o.rows {
		panic(fmt.Sprintf("matrix: Augment row mismatch %d != %d", m.rows, o.rows))
	}
	a := New16(m.rows, m.cols+o.cols)
	for i := 0; i < m.rows; i++ {
		copy(a.Row(i)[:m.cols], m.Row(i))
		copy(a.Row(i)[m.cols:], o.Row(i))
	}
	return a
}

// Stack returns m on top of o. Column counts must match.
func (m *Matrix16) Stack(o *Matrix16) *Matrix16 {
	if m.cols != o.cols {
		panic(fmt.Sprintf("matrix: Stack column mismatch %d != %d", m.cols, o.cols))
	}
	s := New16(m.rows+o.rows, m.cols)
	copy(s.data, m.data)
	copy(s.data[m.rows*m.cols:], o.data)
	return s
}

// SubMatrix returns the rectangle [r0,r1)×[c0,c1) as a copy.
func (m *Matrix16) SubMatrix(r0, r1, c0, c1 int) *Matrix16 {
	if r0 < 0 || r1 > m.rows || c0 < 0 || c1 > m.cols || r0 > r1 || c0 > c1 {
		panic(fmt.Sprintf("matrix: SubMatrix [%d:%d,%d:%d] out of %d×%d", r0, r1, c0, c1, m.rows, m.cols))
	}
	s := New16(r1-r0, c1-c0)
	for i := r0; i < r1; i++ {
		copy(s.Row(i-r0), m.Row(i)[c0:c1])
	}
	return s
}

// SelectRows returns a new matrix whose rows are m's rows at the given
// indices, in order. Indices may repeat.
func (m *Matrix16) SelectRows(idx []int) *Matrix16 {
	s := New16(len(idx), m.cols)
	for i, r := range idx {
		copy(s.Row(i), m.Row(r))
	}
	return s
}

// SwapRows exchanges rows i and j in place.
func (m *Matrix16) SwapRows(i, j int) {
	if i == j {
		return
	}
	ri, rj := m.Row(i), m.Row(j)
	for t := range ri {
		ri[t], rj[t] = rj[t], ri[t]
	}
}

// gaussianCols row-reduces m in place, choosing pivots only from the first
// maxCol columns (later columns still participate in row operations). It
// returns the number of pivots found, i.e. the rank of the left block.
func (m *Matrix16) gaussianCols(maxCol int) int {
	rank := 0
	for col := 0; col < maxCol && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if m.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		m.SwapRows(rank, pivot)
		inv := gf16.Inv(m.At(rank, col))
		gf16.MulRow(inv, m.Row(rank), m.Row(rank))
		for r := 0; r < m.rows; r++ {
			if r != rank && m.At(r, col) != 0 {
				gf16.MulAddRow(m.At(r, col), m.Row(r), m.Row(rank))
			}
		}
		rank++
	}
	return rank
}

// Rank returns the rank of the matrix.
func (m *Matrix16) Rank() int {
	return m.Clone().gaussianCols(m.cols)
}

// Invert returns the inverse of a square matrix, or ErrSingular.
func (m *Matrix16) Invert() (*Matrix16, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("matrix: cannot invert non-square %d×%d", m.rows, m.cols)
	}
	aug := m.Augment(Identity16(m.rows))
	if aug.gaussianCols(m.cols) < m.rows {
		return nil, ErrSingular
	}
	return aug.SubMatrix(0, m.rows, m.cols, 2*m.cols), nil
}

// IsIdentity reports whether m is a square identity matrix.
func (m *Matrix16) IsIdentity() bool {
	if m.rows != m.cols {
		return false
	}
	return m.Equal(Identity16(m.rows))
}

// SpanSolve16 expresses each target row as a linear combination of the
// available rows, exactly like SpanSolve but over GF(2^16): the returned
// coefficient matrix C (len(targets) × len(available)) satisfies
// targets = C · available, or ErrUnsolvable if a target is outside the
// span of the available rows.
func SpanSolve16(available, targets *Matrix16) (*Matrix16, error) {
	if available.cols != targets.cols {
		return nil, fmt.Errorf("matrix: SpanSolve width mismatch %d != %d", available.cols, targets.cols)
	}
	na := available.rows
	// Row-reduce [available | I]; the right block tracks the combination of
	// original available rows that produced each reduced row.
	work := available.Augment(Identity16(na))
	rank := 0
	pivotCol := make([]int, 0, na)
	for col := 0; col < available.cols && rank < na; col++ {
		pivot := -1
		for r := rank; r < na; r++ {
			if work.At(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.SwapRows(rank, pivot)
		inv := gf16.Inv(work.At(rank, col))
		gf16.MulRow(inv, work.Row(rank), work.Row(rank))
		for r := 0; r < na; r++ {
			if r != rank && work.At(r, col) != 0 {
				gf16.MulAddRow(work.At(r, col), work.Row(r), work.Row(rank))
			}
		}
		pivotCol = append(pivotCol, col)
		rank++
	}

	w := available.cols
	coeff := New16(targets.rows, na)
	resid := make([]uint16, w)
	comb := make([]uint16, na)
	for t := 0; t < targets.rows; t++ {
		copy(resid, targets.Row(t))
		for i := range comb {
			comb[i] = 0
		}
		for r := 0; r < rank; r++ {
			c := resid[pivotCol[r]]
			if c == 0 {
				continue
			}
			gf16.MulAddRow(c, resid, work.Row(r)[:w])
			gf16.MulAddRow(c, comb, work.Row(r)[w:])
		}
		for _, v := range resid {
			if v != 0 {
				return nil, ErrUnsolvable
			}
		}
		copy(coeff.Row(t), comb)
	}
	return coeff, nil
}

// String renders the matrix for debugging, one row per line.
func (m *Matrix16) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d×%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%04x", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
