package matrix

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf16"
)

func randMatrix16(rng *rand.Rand, rows, cols int) *Matrix16 {
	m := New16(rows, cols)
	for i := range m.data {
		m.data[i] = uint16(rng.Intn(gf16.Order))
	}
	return m
}

func TestMatrix16InvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 5, 17, 64} {
		var m *Matrix16
		for {
			m = randMatrix16(rng, n, n)
			if m.Rank() == n {
				break
			}
		}
		inv, err := m.Invert()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !m.Mul(inv).IsIdentity() {
			t.Fatalf("n=%d: m·inv != I", n)
		}
	}
	if _, err := New16(3, 3).Invert(); err != ErrSingular {
		t.Fatalf("zero matrix inverted: %v", err)
	}
	if _, err := New16(2, 3).Invert(); err == nil {
		t.Fatal("non-square matrix inverted")
	}
}

// TestCauchy16MDS verifies the property wide-stripe codes rest on: every
// square submatrix of a Cauchy matrix is invertible. Sampled over random
// row/column selections at wide dimensions GF(2^8) cannot even express.
func TestCauchy16MDS(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	c := Cauchy16(16, 512) // 528 distinct field points — impossible in gf8
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(16)
		rows := rng.Perm(c.Rows())[:n]
		cols := rng.Perm(c.Cols())[:n]
		sub := New16(n, n)
		for i, r := range rows {
			for j, cc := range cols {
				sub.Set(i, j, c.At(r, cc))
			}
		}
		if sub.Rank() != n {
			t.Fatalf("trial %d: %d×%d Cauchy submatrix singular", trial, n, n)
		}
	}
}

func TestMatrix16MulVecMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const k, rows, symbols = 7, 4, 33
	m := randMatrix16(rng, rows, k)
	shards := make([][]byte, k)
	sym := make([][]uint16, k)
	for j := range shards {
		sym[j] = make([]uint16, symbols)
		for s := range sym[j] {
			sym[j][s] = uint16(rng.Intn(gf16.Order))
		}
		shards[j] = gf16.PackSymbols(sym[j])
	}
	out := make([][]byte, rows)
	for i := range out {
		out[i] = make([]byte, symbols*gf16.SymbolBytes)
	}
	m.MulVec(out, shards)
	for i := 0; i < rows; i++ {
		want := make([]uint16, symbols)
		for j := 0; j < k; j++ {
			for s := 0; s < symbols; s++ {
				want[s] ^= gf16.Mul(m.At(i, j), sym[j][s])
			}
		}
		if !bytes.Equal(out[i], gf16.PackSymbols(want)) {
			t.Fatalf("row %d mismatch", i)
		}
	}
}

func TestSpanSolve16(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	// A wide systematic generator: can every data row be recovered from a
	// survivor subset of k rows?
	const k, m = 64, 4
	gen := Identity16(k).Stack(Cauchy16(m, k))
	lost := rng.Perm(k)[:m] // erase m data rows
	lostSet := map[int]bool{}
	for _, l := range lost {
		lostSet[l] = true
	}
	availIdx := []int{}
	for i := 0; i < k+m; i++ {
		if !lostSet[i] {
			availIdx = append(availIdx, i)
		}
	}
	avail := gen.SelectRows(availIdx)
	targets := gen.SelectRows(lost)
	coeff, err := SpanSolve16(avail, targets)
	if err != nil {
		t.Fatal(err)
	}
	if !coeff.Mul(avail).Equal(targets) {
		t.Fatal("SpanSolve16 coefficients do not reproduce targets")
	}

	// An unreachable target must be reported, not silently mis-solved.
	short := gen.SelectRows(availIdx[:k-1])
	if _, err := SpanSolve16(short.SubMatrix(0, k-1, 0, k), targets); err == nil {
		t.Fatal("expected ErrUnsolvable with too few survivors")
	}
}

func TestMatrix16Shape(t *testing.T) {
	m := FromRows16([][]uint16{{1, 2, 3}, {4, 5, 6}})
	if m.Rows() != 2 || m.Cols() != 3 || m.At(1, 2) != 6 {
		t.Fatal("FromRows16 broken")
	}
	a := m.Augment(FromRows16([][]uint16{{7}, {8}}))
	if a.Cols() != 4 || a.At(0, 3) != 7 {
		t.Fatal("Augment broken")
	}
	s := m.Stack(FromRows16([][]uint16{{9, 10, 11}}))
	if s.Rows() != 3 || s.At(2, 0) != 9 {
		t.Fatal("Stack broken")
	}
	sub := s.SubMatrix(1, 3, 1, 3)
	if sub.Rows() != 2 || sub.At(1, 1) != 11 {
		t.Fatal("SubMatrix broken")
	}
	if !m.Clone().Equal(m) {
		t.Fatal("Clone/Equal broken")
	}
	sel := s.SelectRows([]int{2, 0})
	if sel.At(0, 0) != 9 || sel.At(1, 0) != 1 {
		t.Fatal("SelectRows broken")
	}
	if len(m.String()) == 0 {
		t.Fatal("String broken")
	}
	if Vandermonde16(4, 3).At(3, 2) != gf16.Mul(3, 3) {
		t.Fatal("Vandermonde16 broken")
	}
}
