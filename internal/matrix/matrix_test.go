package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/gf"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	rng.Read(m.data)
	return m
}

func TestNewAndAccessors(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %d×%d, want 2×3", m.Rows(), m.Cols())
	}
	m.Set(1, 2, 0xab)
	if m.At(1, 2) != 0xab {
		t.Fatal("Set/At round trip failed")
	}
	if m.At(0, 0) != 0 {
		t.Fatal("new matrix must be zero")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 2)
	for name, fn := range map[string]func(){
		"At":        func() { m.At(2, 0) },
		"AtNeg":     func() { m.At(0, -1) },
		"Set":       func() { m.Set(0, 2, 1) },
		"Row":       func() { m.Row(5) },
		"SubMatrix": func() { m.SubMatrix(0, 3, 0, 1) },
		"NewNeg":    func() { New(-1, 2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged FromRows did not panic")
		}
	}()
	FromRows([][]byte{{1, 2}, {3}})
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows() != 0 || m.Cols() != 0 {
		t.Fatal("empty FromRows must give 0×0")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	if !id.IsIdentity() {
		t.Fatal("Identity(4) is not identity")
	}
	m := FromRows([][]byte{{1, 2}, {3, 4}})
	if m.IsIdentity() {
		t.Fatal("non-identity reported as identity")
	}
	if New(2, 3).IsIdentity() {
		t.Fatal("non-square reported as identity")
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	m := randMatrix(rng, 5, 5)
	if !m.Mul(Identity(5)).Equal(m) || !Identity(5).Mul(m).Equal(m) {
		t.Fatal("identity is not multiplicative identity")
	}
}

func TestMulKnown(t *testing.T) {
	a := FromRows([][]byte{{1, 2}, {3, 4}})
	b := FromRows([][]byte{{5, 6}, {7, 8}})
	p := a.Mul(b)
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			want := gf.Mul(a.At(i, 0), b.At(0, j)) ^ gf.Mul(a.At(i, 1), b.At(1, j))
			if p.At(i, j) != want {
				t.Fatalf("p[%d][%d] = %#x, want %#x", i, j, p.At(i, j), want)
			}
		}
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	New(2, 3).Mul(New(2, 2))
}

func TestMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 20; trial++ {
		a := randMatrix(rng, 4, 5)
		b := randMatrix(rng, 5, 3)
		c := randMatrix(rng, 3, 6)
		if !a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c))) {
			t.Fatal("matrix multiply not associative")
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	found := 0
	for trial := 0; trial < 100 && found < 25; trial++ {
		m := randMatrix(rng, 6, 6)
		inv, err := m.Invert()
		if err != nil {
			continue // singular random matrix, rare but possible
		}
		found++
		if !m.Mul(inv).IsIdentity() || !inv.Mul(m).IsIdentity() {
			t.Fatalf("M·M⁻¹ != I for\n%v", m)
		}
	}
	if found == 0 {
		t.Fatal("no invertible random matrices found (suspicious)")
	}
}

func TestInvertSingular(t *testing.T) {
	m := FromRows([][]byte{{1, 2, 3}, {2, 4, 6}, {0, 0, 1}}) // row1 = 2·row0
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("inverting non-square must fail")
	}
}

func TestRank(t *testing.T) {
	if got := Identity(5).Rank(); got != 5 {
		t.Fatalf("rank(I5) = %d, want 5", got)
	}
	if got := New(3, 4).Rank(); got != 0 {
		t.Fatalf("rank(0) = %d, want 0", got)
	}
	m := FromRows([][]byte{{1, 2, 3}, {2, 4, 6}, {1, 0, 0}})
	if got := m.Rank(); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
	// Rank is preserved under invertible row ops: multiply by identity.
	if m.Mul(Identity(3)).Rank() != 2 {
		t.Fatal("rank changed under identity multiply")
	}
}

func TestVandermondeSubmatricesInvertible(t *testing.T) {
	// For a k-column Vandermonde with distinct points, any k rows form an
	// invertible matrix.
	const k, rows = 4, 9
	v := Vandermonde(rows, k)
	idx := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			sub := v.SelectRows(idx)
			if _, err := sub.Invert(); err != nil {
				t.Fatalf("Vandermonde rows %v singular", idx)
			}
			return
		}
		for i := start; i < rows; i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

func TestVandermondeTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Vandermonde did not panic")
		}
	}()
	Vandermonde(257, 3)
}

func TestCauchyAllSquareSubmatricesInvertible(t *testing.T) {
	const rows, cols = 5, 5
	c := Cauchy(rows, cols)
	// Every square submatrix of a Cauchy matrix is invertible; spot-check
	// all 2×2 submatrices and the full matrix.
	for r0 := 0; r0 < rows; r0++ {
		for r1 := r0 + 1; r1 < rows; r1++ {
			for c0 := 0; c0 < cols; c0++ {
				for c1 := c0 + 1; c1 < cols; c1++ {
					sub := FromRows([][]byte{
						{c.At(r0, c0), c.At(r0, c1)},
						{c.At(r1, c0), c.At(r1, c1)},
					})
					if _, err := sub.Invert(); err != nil {
						t.Fatalf("Cauchy 2×2 (%d,%d)×(%d,%d) singular", r0, r1, c0, c1)
					}
				}
			}
		}
	}
	if _, err := c.Invert(); err != nil {
		t.Fatal("full Cauchy square singular")
	}
}

func TestCauchyTooLargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("oversized Cauchy did not panic")
		}
	}()
	Cauchy(200, 100)
}

func TestAugmentStack(t *testing.T) {
	a := FromRows([][]byte{{1, 2}, {3, 4}})
	b := FromRows([][]byte{{5}, {6}})
	aug := a.Augment(b)
	if aug.Rows() != 2 || aug.Cols() != 3 || aug.At(0, 2) != 5 || aug.At(1, 2) != 6 {
		t.Fatalf("Augment wrong: %v", aug)
	}
	c := FromRows([][]byte{{7, 8}})
	st := a.Stack(c)
	if st.Rows() != 3 || st.At(2, 0) != 7 {
		t.Fatalf("Stack wrong: %v", st)
	}
}

func TestSubMatrixSelectRows(t *testing.T) {
	m := FromRows([][]byte{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	s := m.SubMatrix(1, 3, 0, 2)
	want := FromRows([][]byte{{4, 5}, {7, 8}})
	if !s.Equal(want) {
		t.Fatalf("SubMatrix = %v, want %v", s, want)
	}
	sel := m.SelectRows([]int{2, 0, 2})
	if sel.At(0, 0) != 7 || sel.At(1, 0) != 1 || sel.At(2, 2) != 9 {
		t.Fatalf("SelectRows wrong: %v", sel)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := FromRows([][]byte{{1, 2}})
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMulVec(t *testing.T) {
	// Encode two parity shards from three data shards and verify bytewise.
	g := FromRows([][]byte{{1, 1, 1}, {1, 2, 3}})
	shards := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	out := [][]byte{make([]byte, 2), make([]byte, 2)}
	g.MulVec(out, shards)
	for b := 0; b < 2; b++ {
		want0 := shards[0][b] ^ shards[1][b] ^ shards[2][b]
		want1 := shards[0][b] ^ gf.Mul(2, shards[1][b]) ^ gf.Mul(3, shards[2][b])
		if out[0][b] != want0 || out[1][b] != want1 {
			t.Fatalf("MulVec byte %d wrong", b)
		}
	}
}

func TestMulVecArityPanics(t *testing.T) {
	g := Identity(2)
	defer func() {
		if recover() == nil {
			t.Fatal("MulVec with wrong shard count did not panic")
		}
	}()
	g.MulVec([][]byte{make([]byte, 1)}, [][]byte{make([]byte, 1)})
}

func TestSpanSolveRecoversErasedRows(t *testing.T) {
	// Generator of a (3,2) MDS code: rows are identity + two parity rows.
	g := Identity(3).Stack(Vandermonde(5, 3).SubMatrix(1, 3, 0, 3))
	rng := rand.New(rand.NewSource(10))
	data := randMatrix(rng, 3, 8) // 3 data shards of 8 bytes
	// All five encoded shards.
	enc := g.Mul(data)
	// Erase shards 0 and 3; available are 1, 2, 4.
	avail := []int{1, 2, 4}
	targets := []int{0, 3}
	coeff, err := SpanSolve(g.SelectRows(avail), g.SelectRows(targets))
	if err != nil {
		t.Fatalf("SpanSolve: %v", err)
	}
	rec := coeff.Mul(enc.SelectRows(avail))
	if !rec.Equal(enc.SelectRows(targets)) {
		t.Fatal("SpanSolve coefficients do not reconstruct erased shards")
	}
}

func TestSpanSolveUnsolvable(t *testing.T) {
	avail := FromRows([][]byte{{1, 0, 0}, {0, 1, 0}})
	target := FromRows([][]byte{{0, 0, 1}})
	if _, err := SpanSolve(avail, target); err != ErrUnsolvable {
		t.Fatalf("err = %v, want ErrUnsolvable", err)
	}
}

func TestSpanSolveWidthMismatch(t *testing.T) {
	if _, err := SpanSolve(New(1, 2), New(1, 3)); err == nil {
		t.Fatal("width mismatch must error")
	}
}

func TestSpanSolveTrivial(t *testing.T) {
	// Target equal to an available row: coefficient must be a unit vector.
	avail := FromRows([][]byte{{3, 1, 4}, {1, 5, 9}})
	coeff, err := SpanSolve(avail, FromRows([][]byte{{1, 5, 9}}))
	if err != nil {
		t.Fatal(err)
	}
	if coeff.At(0, 0) != 0 || coeff.At(0, 1) != 1 {
		t.Fatalf("coeff = %v, want [0 1]", coeff)
	}
}

func TestSpanSolveDependentAvailable(t *testing.T) {
	// Available rows contain a duplicate; solving must still work.
	avail := FromRows([][]byte{{1, 2, 3}, {1, 2, 3}, {0, 1, 1}})
	target := FromRows([][]byte{{1, 3, 2}}) // row0 + row2
	coeff, err := SpanSolve(avail, target)
	if err != nil {
		t.Fatal(err)
	}
	if !coeff.Mul(avail).Equal(target) {
		t.Fatal("combination does not reproduce target")
	}
}

func TestPropertyInverseOfProduct(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	f := func() bool {
		a := randMatrix(rng, 4, 4)
		b := randMatrix(rng, 4, 4)
		ia, err1 := a.Invert()
		ib, err2 := b.Invert()
		if err1 != nil || err2 != nil {
			return true // skip singulars
		}
		iab, err := a.Mul(b).Invert()
		if err != nil {
			return false
		}
		return iab.Equal(ib.Mul(ia))
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestStringRenders(t *testing.T) {
	s := FromRows([][]byte{{0xab, 1}}).String()
	if s == "" || len(s) < 5 {
		t.Fatalf("String too short: %q", s)
	}
}

func BenchmarkInvert16(b *testing.B) {
	m := Vandermonde(16, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Invert(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMulVecEncode(b *testing.B) {
	g := Cauchy(4, 10)
	shards := make([][]byte, 10)
	for i := range shards {
		shards[i] = make([]byte, 1<<16)
	}
	out := make([][]byte, 4)
	for i := range out {
		out[i] = make([]byte, 1<<16)
	}
	b.SetBytes(10 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.MulVec(out, shards)
	}
}
