package datanode

import (
	"bytes"
	"encoding/json"
	"hash/crc32"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/nodeapi"
	"repro/internal/obs"
	"repro/internal/store"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func do(t *testing.T, s *Server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, r)
	return rec
}

func frame(elem int, cells ...[]byte) []byte {
	var data []byte
	var crcs []uint32
	for _, c := range cells {
		data = append(data, c...)
		crcs = append(crcs, crc32.Checksum(c, castagnoli))
	}
	return nodeapi.EncodeRun(elem, data, crcs)
}

// TestNodeCellRoundTrip drives the wire protocol end to end: write a run,
// read it back (whole and sub-ranges), sync, meta, status, truncate, and the
// missing-cell marker.
func TestNodeCellRoundTrip(t *testing.T) {
	for _, backend := range []string{"mem", "file"} {
		t.Run(backend, func(t *testing.T) {
			cfg := Config{ElemSize: 64, Registry: obs.NewRegistry()}
			if backend == "file" {
				cfg.Dir = t.TempDir()
				cfg.File = store.FileConfig{Fsync: store.FsyncNever}
			}
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()

			cells := [][]byte{
				bytes.Repeat([]byte{0xaa}, 64),
				bytes.Repeat([]byte{0xbb}, 64),
				bytes.Repeat([]byte{0xcc}, 64),
			}
			if rec := do(t, s, http.MethodPut, "/cells/2/1?slot=4", frame(64, cells...)); rec.Code != http.StatusNoContent {
				t.Fatalf("write run: %d %s", rec.Code, rec.Body.String())
			}
			rec := do(t, s, http.MethodGet, "/cells/2/1?slot=4&count=3", nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("read run: %d %s", rec.Code, rec.Body.String())
			}
			data, crcs, err := nodeapi.DecodeRun(rec.Body.Bytes(), 64)
			if err != nil {
				t.Fatal(err)
			}
			if len(crcs) != 3 || !bytes.Equal(data, bytes.Join(cells, nil)) {
				t.Fatal("read run returned wrong cells")
			}
			// Checksums came back verbatim.
			for i, c := range cells {
				if crcs[i] != crc32.Checksum(c, castagnoli) {
					t.Fatalf("cell %d crc mismatch", i)
				}
			}

			// A slot never stored → 404 with the missing marker.
			rec = do(t, s, http.MethodGet, "/cells/2/1?slot=100&count=1", nil)
			if rec.Code != http.StatusNotFound || rec.Header().Get(nodeapi.MissingHeader) == "" {
				t.Fatalf("missing cell: %d, header %q", rec.Code, rec.Header().Get(nodeapi.MissingHeader))
			}
			// An extent never written → same marker.
			rec = do(t, s, http.MethodGet, "/cells/9/0?slot=0&count=1", nil)
			if rec.Code != http.StatusNotFound || rec.Header().Get(nodeapi.MissingHeader) == "" {
				t.Fatalf("missing extent: %d", rec.Code)
			}

			if rec := do(t, s, http.MethodPost, "/sync/2/1", nil); rec.Code != http.StatusNoContent {
				t.Fatalf("sync: %d", rec.Code)
			}

			rec = do(t, s, http.MethodGet, "/cells/2/1/meta", nil)
			var meta nodeapi.DiskMeta
			if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
				t.Fatal(err)
			}
			if meta.Slots != 7 || meta.Elements != 3 {
				t.Fatalf("meta = %+v, want slots 7 elements 3", meta)
			}

			var st nodeapi.NodeStatus
			rec = do(t, s, http.MethodGet, nodeapi.StatusPath, nil)
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				t.Fatal(err)
			}
			if st.Backend != backend || len(st.Disks) != 1 {
				t.Fatalf("status = %+v", st)
			}

			if rec := do(t, s, http.MethodPost, "/truncate/2/1?slots=5", nil); rec.Code != http.StatusNoContent {
				t.Fatalf("truncate: %d", rec.Code)
			}
			rec = do(t, s, http.MethodGet, "/cells/2/1?slot=6&count=1", nil)
			if rec.Code != http.StatusNotFound {
				t.Fatalf("read past truncation: %d", rec.Code)
			}
			rec = do(t, s, http.MethodGet, "/cells/2/1?slot=4&count=1", nil)
			if rec.Code != http.StatusOK {
				t.Fatalf("read below truncation: %d", rec.Code)
			}
		})
	}
}

// TestNodeRestartRediscovers proves a file-backed node reopened on the same
// directory serves its sealed cells again.
func TestNodeRestartRediscovers(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{ElemSize: 32, Dir: dir, File: store.FileConfig{Fsync: store.FsyncNever}}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cell := bytes.Repeat([]byte{0x5a}, 32)
	if rec := do(t, s, http.MethodPut, "/cells/0/3?slot=0", frame(32, cell)); rec.Code != http.StatusNoContent {
		t.Fatalf("write: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodPost, "/sync/0/3", nil); rec.Code != http.StatusNoContent {
		t.Fatalf("sync: %d", rec.Code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rec := do(t, s2, http.MethodGet, "/cells/0/3?slot=0&count=1", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("read after restart: %d %s", rec.Code, rec.Body.String())
	}
	data, _, err := nodeapi.DecodeRun(rec.Body.Bytes(), 32)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, cell) {
		t.Fatal("restarted node returned wrong bytes")
	}
}

// TestNodeHealthEndpoints covers the liveness/readiness pair.
func TestNodeHealthEndpoints(t *testing.T) {
	s, err := New(Config{ElemSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rec := do(t, s, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/readyz", nil); rec.Code != http.StatusOK {
		t.Fatalf("readyz: %d", rec.Code)
	}
	s.SetDraining(true)
	if rec := do(t, s, http.MethodGet, "/readyz", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz draining: %d", rec.Code)
	}
	if rec := do(t, s, http.MethodGet, "/healthz", nil); rec.Code != http.StatusOK {
		t.Fatalf("healthz draining: %d", rec.Code)
	}
}
