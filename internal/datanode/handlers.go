package datanode

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"

	"repro/internal/nodeapi"
	"repro/internal/obs"
	"repro/internal/store"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /cells/{group}/{disk}", s.timed(s.handleReadRun))
	s.mux.HandleFunc("PUT /cells/{group}/{disk}", s.timed(s.handleWriteRun))
	s.mux.HandleFunc("GET /cells/{group}/{disk}/meta", s.timed(s.handleMeta))
	s.mux.HandleFunc("POST /sync/{group}/{disk}", s.timed(s.handleSync))
	s.mux.HandleFunc("POST /truncate/{group}/{disk}", s.timed(s.handleTruncate))
	s.mux.HandleFunc("GET "+nodeapi.StatusPath, s.timed(s.handleStatus))
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	s.mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.draining.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ready\n")
	})
	if s.reg != nil {
		s.mux.Handle("GET /metrics", s.reg.Handler())
	}
}

// timed wraps a handler with the request-latency histogram.
func (s *Server) timed(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		defer obs.StartSpan(s.reqLat).End()
		h(w, r)
	}
}

// pathKey parses the {group}/{disk} wildcards.
func pathKey(r *http.Request) (diskKey, error) {
	g, err := strconv.Atoi(r.PathValue("group"))
	if err != nil || g < 0 {
		return diskKey{}, fmt.Errorf("bad group %q", r.PathValue("group"))
	}
	d, err := strconv.Atoi(r.PathValue("disk"))
	if err != nil || d < 0 {
		return diskKey{}, fmt.Errorf("bad disk %q", r.PathValue("disk"))
	}
	return diskKey{g, d}, nil
}

// missing answers a read of cells the node never stored: 404 plus the marker
// header the gateway maps to store.ErrCellMissing.
func missing(w http.ResponseWriter) {
	w.Header().Set(nodeapi.MissingHeader, "1")
	http.Error(w, "cell not present", http.StatusNotFound)
}

func (s *Server) handleReadRun(w http.ResponseWriter, r *http.Request) {
	k, err := pathKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	slot, err1 := strconv.Atoi(r.URL.Query().Get("slot"))
	count, err2 := strconv.Atoi(r.URL.Query().Get("count"))
	if err1 != nil || err2 != nil || slot < 0 || count < 1 {
		http.Error(w, "bad slot/count", http.StatusBadRequest)
		return
	}
	ds, _ := s.getDisk(k, false)
	if ds == nil {
		missing(w)
		return
	}
	data, crcs, err := ds.ReadRun(slot, count)
	switch {
	case errors.Is(err, store.ErrCellMissing):
		missing(w)
		return
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.readCells.Add(int64(count))
	s.readBytes.Add(int64(len(data)))
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(nodeapi.EncodeRun(s.cfg.ElemSize, data, crcs))
}

func (s *Server) handleWriteRun(w http.ResponseWriter, r *http.Request) {
	k, err := pathKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	slot, err := strconv.Atoi(r.URL.Query().Get("slot"))
	if err != nil || slot < 0 {
		http.Error(w, "bad slot", http.StatusBadRequest)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRunBytes+1))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) > maxRunBytes {
		http.Error(w, "run too large", http.StatusRequestEntityTooLarge)
		return
	}
	data, crcs, err := nodeapi.DecodeRun(body, s.cfg.ElemSize)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	ds, err := s.getDisk(k, true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := ds.WriteRun(slot, data, crcs); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeCells.Add(int64(len(crcs)))
	s.writeBytes.Add(int64(len(data)))
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	k, err := pathKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	meta := nodeapi.DiskMeta{Group: k.group, Disk: k.disk}
	if ds, _ := s.getDisk(k, false); ds != nil {
		meta.Slots = ds.Slots()
		meta.Elements = ds.Elements()
	}
	writeJSON(w, meta)
}

func (s *Server) handleSync(w http.ResponseWriter, r *http.Request) {
	k, err := pathKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	// Syncing an extent that was never written is a durable no-op.
	if ds, _ := s.getDisk(k, false); ds != nil {
		if err := ds.Sync(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		s.syncs.Inc()
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleTruncate(w http.ResponseWriter, r *http.Request) {
	k, err := pathKey(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	slots, err := strconv.Atoi(r.URL.Query().Get("slots"))
	if err != nil || slots < 0 {
		http.Error(w, "bad slots", http.StatusBadRequest)
		return
	}
	ds, err := s.getDisk(k, true)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if err := ds.Truncate(slots); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	keys := make([]diskKey, 0, len(s.disks))
	for k := range s.disks {
		keys = append(keys, k)
	}
	s.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].group != keys[j].group {
			return keys[i].group < keys[j].group
		}
		return keys[i].disk < keys[j].disk
	})
	st := nodeapi.NodeStatus{
		Backend:  s.Backend(),
		ElemSize: s.cfg.ElemSize,
		Draining: s.draining.Load(),
	}
	for _, k := range keys {
		ds, _ := s.getDisk(k, false)
		if ds == nil {
			continue
		}
		st.Disks = append(st.Disks, nodeapi.DiskMeta{
			Group: k.group, Disk: k.disk, Slots: ds.Slots(), Elements: ds.Elements(),
		})
	}
	writeJSON(w, st)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}
