// Package datanode is the storage half of the cluster split: a node service
// owning per-(group,disk) cell extents behind the nodeapi HTTP protocol.
//
// A node is deliberately dumb. It stores cells and checksums verbatim,
// reads them back, fsyncs on demand, and truncates when told — all the
// erasure-coding intelligence (planning, degraded reads, hedging, heal,
// the two-phase commit gate) lives on the gateway side, which drives the
// node through store.CellBackend clients. Keeping integrity verification
// off the node means a node cannot mask its own torn writes: checksums are
// recomputed only where the data is consumed.
//
// Extents are store.DiskStore instances — the same mem/file backends and
// per-disk submission queues a local store uses — created lazily on first
// write and rediscovered from the data directory on restart.
package datanode

import (
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/store"
)

// maxRunBytes bounds one cell-run request body (64 MiB) so a bad client
// cannot balloon node memory.
const maxRunBytes = 64 << 20

// Config configures a data node.
type Config struct {
	// ElemSize is the cell size in bytes; every extent on the node uses it.
	ElemSize int
	// Dir, when non-empty, selects the file backend: each extent lives in a
	// gNNNN_dNN.data/.crc pair under it, rediscovered on restart. Empty
	// selects in-memory extents.
	Dir string
	// File tunes the file backend (fsync discipline, O_DIRECT, queue
	// geometry). File.Dir is ignored.
	File store.FileConfig
	// Registry receives the node's metrics; nil disables instrumentation.
	Registry *obs.Registry
}

// diskKey identifies one extent.
type diskKey struct{ group, disk int }

// Server is one data node: a set of DiskStore extents behind the nodeapi
// HTTP surface plus health, status, and metrics endpoints.
type Server struct {
	cfg      Config
	mux      *http.ServeMux
	draining atomic.Bool

	mu    sync.Mutex
	disks map[diskKey]*store.DiskStore

	reg        *obs.Registry
	readCells  *obs.Counter
	writeCells *obs.Counter
	readBytes  *obs.Counter
	writeBytes *obs.Counter
	syncs      *obs.Counter
	reqLat     *obs.Histogram
	disksGauge *obs.Gauge
}

// New creates a node, reopening any extents found in cfg.Dir.
func New(cfg Config) (*Server, error) {
	if cfg.ElemSize < 1 {
		return nil, fmt.Errorf("datanode: element size %d", cfg.ElemSize)
	}
	s := &Server{
		cfg:   cfg,
		mux:   http.NewServeMux(),
		disks: make(map[diskKey]*store.DiskStore),
		reg:   cfg.Registry,
	}
	if s.reg != nil {
		s.readCells = s.reg.Counter("ecfrm_node_read_cells_total", "Cells served by this node.")
		s.writeCells = s.reg.Counter("ecfrm_node_write_cells_total", "Cells stored by this node.")
		s.readBytes = s.reg.Counter("ecfrm_node_read_bytes_total", "Cell payload bytes served.")
		s.writeBytes = s.reg.Counter("ecfrm_node_write_bytes_total", "Cell payload bytes stored.")
		s.syncs = s.reg.Counter("ecfrm_node_syncs_total", "Durability barriers executed.")
		s.reqLat = s.reg.Histogram("ecfrm_node_request_seconds",
			"Node request latency.", obs.ExpBuckets(1e-5, 4, 10))
		s.disksGauge = s.reg.Gauge("ecfrm_node_disks", "Extents this node serves.")
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, err
		}
		if err := s.rediscover(); err != nil {
			s.Close()
			return nil, err
		}
	}
	s.routes()
	return s, nil
}

// extentPaths names the file pair of one extent.
func extentPaths(dir string, k diskKey) (data, crc string) {
	base := filepath.Join(dir, fmt.Sprintf("g%04d_d%02d", k.group, k.disk))
	return base + ".data", base + ".crc"
}

// rediscover reopens every extent whose files survive in the data directory,
// so a restarted node serves its sealed cells again.
func (s *Server) rediscover() error {
	matches, err := filepath.Glob(filepath.Join(s.cfg.Dir, "g*_d*.data"))
	if err != nil {
		return err
	}
	sort.Strings(matches)
	for _, m := range matches {
		var g, d int
		if _, err := fmt.Sscanf(filepath.Base(m), "g%04d_d%02d.data", &g, &d); err != nil {
			continue
		}
		if _, err := s.getDisk(diskKey{g, d}, true); err != nil {
			return fmt.Errorf("datanode: reopen extent g%d d%d: %w", g, d, err)
		}
	}
	return nil
}

// getDisk returns the extent, creating (or reopening) it when create is set.
func (s *Server) getDisk(k diskKey, create bool) (*store.DiskStore, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ds, ok := s.disks[k]; ok {
		return ds, nil
	}
	if !create {
		return nil, nil
	}
	var ds *store.DiskStore
	if s.cfg.Dir == "" {
		ds = store.NewMemDisk(s.cfg.ElemSize)
	} else {
		dataPath, crcPath := extentPaths(s.cfg.Dir, k)
		var err error
		ds, err = store.OpenFileDisk(dataPath, crcPath, s.cfg.ElemSize, s.cfg.File)
		if err != nil {
			return nil, err
		}
	}
	s.disks[k] = ds
	s.disksGauge.Set(float64(len(s.disks)))
	return ds, nil
}

// Backend reports "mem" or "file".
func (s *Server) Backend() string {
	if s.cfg.Dir != "" {
		return "file"
	}
	return "mem"
}

// SetDraining flips readiness: a draining node answers /healthz but fails
// /readyz, so gateways stop routing new work while in-flight requests finish.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

// Close releases every extent (files and submission queues).
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	for k, ds := range s.disks {
		if cerr := ds.Close(); err == nil {
			err = cerr
		}
		delete(s.disks, k)
	}
	return err
}

// ServeHTTP serves the nodeapi surface.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }
