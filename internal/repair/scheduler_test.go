package repair

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/store"
)

// fastConfig is an aggressive scheduler tuning for in-memory test stores.
func fastConfig(reg *obs.Registry) Config {
	return Config{
		Rate:           64 << 20, // effectively unthrottled for tiny stores
		BatchStripes:   4,
		DetectInterval: 2 * time.Millisecond,
		Detector:       DetectorConfig{ErrorBurst: 4},
		ScrubInterval:  -1, // scrub off unless the test wants it
		Registry:       reg,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// metricValue scrapes reg's text exposition for the sample named line (name
// plus optional {labels}) and returns its value.
func metricValue(t *testing.T, reg *obs.Registry, sample string) float64 {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if !strings.HasPrefix(line, sample+" ") {
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, sample)), 64)
		if err != nil {
			t.Fatalf("parse metric line %q: %v", line, err)
		}
		return v
	}
	return 0
}

// stubInjector scripts per-device read faults for detector tests.
type stubInjector struct {
	read func(dev int) store.Fault
}

func (s stubInjector) ReadFault(dev int) store.Fault {
	if s.read != nil {
		return s.read(dev)
	}
	return store.Fault{}
}
func (s stubInjector) WriteFault(int) store.Fault { return store.Fault{} }

// TestSchedulerRebuildsFailedDisk: an operator fail-stop is detected on the
// next tick and rebuilt automatically, with MTTR and byte metrics recorded.
func TestSchedulerRebuildsFailedDisk(t *testing.T) {
	s := testStore(t)
	data := fillStripes(t, s, 12, 21)
	reg := obs.NewRegistry()
	sch, err := New(s, fastConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()

	s.FailDisk(4)
	waitFor(t, 5*time.Second, "auto rebuild", func() bool {
		return len(s.FailedDisks()) == 0 && len(s.Rebuilding()) == 0
	})

	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("rebuilt store returned different data")
	}
	waitFor(t, time.Second, "rebuild metrics", func() bool {
		return metricValue(t, reg, `ecfrm_repair_rebuilds_total{outcome="ok"}`) >= 1
	})
	if v := metricValue(t, reg, `ecfrm_repair_detections_total{kind="failed"}`); v < 1 {
		t.Fatalf("failed detections = %v, want >= 1", v)
	}
	if v := metricValue(t, reg, `ecfrm_repair_bytes_total{kind="rebuild"}`); v <= 0 {
		t.Fatalf("repair bytes = %v, want > 0", v)
	}
	if v := metricValue(t, reg, "ecfrm_repair_mttr_seconds_count"); v != 1 {
		t.Fatalf("MTTR observations = %v, want 1", v)
	}
}

// TestSchedulerDetectsErrorBurst: a disk that serves hard errors (without
// anyone fail-stopping it) trips the error detector, is fail-stopped within
// tolerance, and rebuilds — while foreground reads keep succeeding degraded.
func TestSchedulerDetectsErrorBurst(t *testing.T) {
	s := testStore(t)
	s.SetRetryPolicy(200*time.Microsecond, 1)
	data := fillStripes(t, s, 12, 33)
	reg := obs.NewRegistry()
	sch, err := New(s, fastConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()

	s.SetFaultInjector(stubInjector{read: func(d int) store.Fault {
		if d == 2 {
			return store.Fault{Failed: true}
		}
		return store.Fault{}
	}})
	// Drive reads until the error budget on disk 2 trips the detector. The
	// tiny store rebuilds near-instantly, so wait on the detection counter
	// rather than trying to catch the transient failed state.
	waitFor(t, 5*time.Second, "error-burst fail-stop", func() bool {
		if _, err := s.ReadAt(0, len(data)); err != nil {
			t.Fatalf("foreground read failed during error burst: %v", err)
		}
		return metricValue(t, reg, `ecfrm_repair_detections_total{kind="errored"}`) >= 1
	})
	// The faulty hardware is "replaced" (plan cleared) and the rebuild runs.
	s.SetFaultInjector(nil)
	waitFor(t, 5*time.Second, "rebuild after error burst", func() bool {
		return len(s.FailedDisks()) == 0 && len(s.Rebuilding()) == 0
	})
	if v := metricValue(t, reg, `ecfrm_repair_detections_total{kind="errored"}`); v < 1 {
		t.Fatalf("errored detections = %v, want >= 1", v)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("rebuilt store returned different data")
	}
}

// TestSchedulerZeroRatePaused: with a zero rate the failure is detected and
// the rebuild begins, but no batch runs until the rate rises.
func TestSchedulerZeroRatePaused(t *testing.T) {
	s := testStore(t)
	data := fillStripes(t, s, 10, 41)
	reg := obs.NewRegistry()
	cfg := fastConfig(reg)
	cfg.Rate = 0
	sch, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()

	s.FailDisk(1)
	waitFor(t, 5*time.Second, "rebuild to begin", func() bool {
		return len(s.Rebuilding()) == 1
	})
	time.Sleep(50 * time.Millisecond)
	if len(s.FailedDisks()) != 1 {
		t.Fatal("paused scheduler rebuilt the disk anyway")
	}
	st := sch.StatusSnapshot()
	if len(st.Active) != 1 || st.Active[0].Next != 0 {
		t.Fatalf("paused rebuild made progress: %+v", st.Active)
	}
	if v := metricValue(t, reg, `ecfrm_repair_backoff_total{reason="tokens"}`); v < 1 {
		t.Fatalf("paused rebuild recorded no token backoff (= %v)", v)
	}

	sch.SetRate(64 << 20)
	waitFor(t, 5*time.Second, "rebuild after unpause", func() bool {
		return len(s.FailedDisks()) == 0 && len(s.Rebuilding()) == 0
	})
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("rebuilt store returned different data")
	}
}

// TestSchedulerMigration: the rebalance trigger copies a healthy disk onto
// fresh media in the background.
func TestSchedulerMigration(t *testing.T) {
	s := testStore(t)
	data := fillStripes(t, s, 10, 51)
	reg := obs.NewRegistry()
	sch, err := New(s, fastConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()

	if err := sch.TriggerMigrate(3); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "migration", func() bool {
		return len(s.Rebuilding()) == 0 &&
			metricValue(t, reg, `ecfrm_repair_bytes_total{kind="migrate"}`) > 0
	})
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("migrated store returned different data")
	}
}

// TestSchedulerScrubHeals: the background scrub loop finds and heals silent
// corruption, advancing its cursor and cycle metrics.
func TestSchedulerScrubHeals(t *testing.T) {
	s := testStore(t)
	fillStripes(t, s, 8, 61)
	if err := s.CorruptCell(5, layout.Pos{Row: 0, Col: 3}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := fastConfig(reg)
	cfg.ScrubInterval = 2 * time.Millisecond
	cfg.ScrubBatch = 3
	sch, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()

	waitFor(t, 5*time.Second, "scrub heal", func() bool {
		return metricValue(t, reg, "ecfrm_scrub_heals_total") == 1 &&
			metricValue(t, reg, "ecfrm_scrub_cycles_total") >= 1
	})
	if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("store dirty after background scrub: bad=%v err=%v", bad, err)
	}
}

// TestSchedulerHTTP drives the /repair endpoint surface.
func TestSchedulerHTTP(t *testing.T) {
	s := testStore(t)
	data := fillStripes(t, s, 8, 71)
	reg := obs.NewRegistry()
	sch, err := New(s, fastConfig(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()
	ts := httptest.NewServer(sch.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	body := new(bytes.Buffer)
	body.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(body.String(), `"rate_bytes_per_sec"`) {
		t.Fatalf("GET / = %d %q", resp.StatusCode, body.String())
	}

	// Rebuild of a healthy disk queues, then no-ops harmlessly.
	resp, err = http.Post(ts.URL+"/rebuild?disk=2", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /rebuild = %d", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/rebuild?disk=99", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /rebuild?disk=99 = %d, want conflict", resp.StatusCode)
	}

	resp, err = http.Post(ts.URL+"/rate?bytes=1048576", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent || sch.Rate() != 1<<20 {
		t.Fatalf("POST /rate = %d, rate now %v", resp.StatusCode, sch.Rate())
	}

	// Migrate via HTTP and watch it finish.
	resp, err = http.Post(ts.URL+"/migrate?disk=0", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /migrate = %d", resp.StatusCode)
	}
	waitFor(t, 5*time.Second, "HTTP-triggered migration", func() bool {
		return len(s.Rebuilding()) == 0 &&
			metricValue(t, reg, `ecfrm_repair_bytes_total{kind="migrate"}`) > 0
	})
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("data changed across HTTP-driven repairs")
	}

	resp, err = http.Post(ts.URL+"/scrub", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /scrub = %d", resp.StatusCode)
	}
}

// TestSchedulerCloseAbortsCleanly: closing mid-rebuild aborts the run and a
// fresh scheduler picks the disk back up.
func TestSchedulerCloseAbortsCleanly(t *testing.T) {
	s := testStore(t)
	data := fillStripes(t, s, 30, 81)
	cfg := fastConfig(nil)
	cfg.Rate = float64(s.Scheme().Layout().Rows() * s.ElementSize()) // ~1 stripe/sec: glacial
	cfg.BatchStripes = 1
	sch, err := New(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.FailDisk(2)
	waitFor(t, 5*time.Second, "rebuild to begin", func() bool {
		return len(s.Rebuilding()) == 1
	})
	sch.Close()
	if got := s.Rebuilding(); len(got) != 0 {
		t.Fatalf("close left rebuild registered: %v", got)
	}
	if got := s.FailedDisks(); len(got) != 1 || got[0] != 2 {
		t.Fatalf("aborted disk not still failed: %v", got)
	}

	// A new scheduler (a daemon restart) finishes the job.
	sch2, err := New(s, fastConfig(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer sch2.Close()
	waitFor(t, 5*time.Second, "rebuild after restart", func() bool {
		return len(s.FailedDisks()) == 0 && len(s.Rebuilding()) == 0
	})
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("rebuilt store returned different data")
	}
}
