package repair

import (
	"reflect"
	"testing"
	"time"
)

func ms(n int) time.Duration { return time.Duration(n) * time.Millisecond }

func TestDetectorErrorBurst(t *testing.T) {
	d := NewDetector(DetectorConfig{ErrorBurst: 5})
	// First sample sets baselines — pre-existing errors don't trip.
	v := d.Observe(Sample{Errors: []int64{100, 0, 0}})
	if len(v.Errored) != 0 {
		t.Fatalf("baseline sample reported errored disks: %v", v.Errored)
	}
	// +4 since baseline: below the burst.
	v = d.Observe(Sample{Errors: []int64{104, 0, 0}})
	if len(v.Errored) != 0 {
		t.Fatalf("sub-threshold delta reported errored: %v", v.Errored)
	}
	// +5: trips. Cumulative-since-baseline, not per-window — the errors
	// arrived across two samples.
	v = d.Observe(Sample{Errors: []int64{105, 0, 0}})
	if !reflect.DeepEqual(v.Errored, []int{0}) {
		t.Fatalf("Errored = %v, want [0]", v.Errored)
	}
	// Reset rebaselines: the disk is clean again until 5 more.
	d.Reset(0, 105)
	v = d.Observe(Sample{Errors: []int64{109, 0, 0}})
	if len(v.Errored) != 0 {
		t.Fatalf("post-reset sub-threshold reported errored: %v", v.Errored)
	}
	v = d.Observe(Sample{Errors: []int64{110, 0, 0}})
	if !reflect.DeepEqual(v.Errored, []int{0}) {
		t.Fatalf("post-reset Errored = %v, want [0]", v.Errored)
	}
}

func TestDetectorSkipsFailedAndRebuilding(t *testing.T) {
	d := NewDetector(DetectorConfig{ErrorBurst: 1})
	d.Observe(Sample{Errors: []int64{0, 0, 0}})
	// Disk 0 failed, disk 1 rebuilding: both over threshold, neither may be
	// re-detected.
	v := d.Observe(Sample{
		Errors:     []int64{50, 50, 0},
		Failed:     []int{0},
		Rebuilding: []int{1},
	})
	if !reflect.DeepEqual(v.Failed, []int{0}) {
		t.Fatalf("Failed = %v, want [0]", v.Failed)
	}
	if len(v.Errored) != 0 {
		t.Fatalf("Errored = %v, want none (both disks busy)", v.Errored)
	}
}

func TestDetectorLimping(t *testing.T) {
	d := NewDetector(DetectorConfig{LatencyFactor: 4, MinLatency: ms(2), LimpWindows: 3})
	slow := Sample{Latency: []time.Duration{ms(100), ms(5), ms(5), ms(4)}}
	// Two slow windows: not yet.
	for i := 0; i < 2; i++ {
		if v := d.Observe(slow); len(v.Limping) != 0 {
			t.Fatalf("window %d: Limping = %v, want none yet", i, v.Limping)
		}
	}
	// Third consecutive window trips.
	if v := d.Observe(slow); !reflect.DeepEqual(v.Limping, []int{0}) {
		t.Fatalf("Limping = %v, want [0]", v.Limping)
	}
	// One healthy window clears the streak.
	if v := d.Observe(Sample{Latency: []time.Duration{ms(5), ms(5), ms(5), ms(4)}}); len(v.Limping) != 0 {
		t.Fatalf("healthy window still limping: %v", v.Limping)
	}
	if v := d.Observe(slow); len(v.Limping) != 0 {
		t.Fatalf("streak did not reset: %v", v.Limping)
	}
}

func TestDetectorLimpingGuards(t *testing.T) {
	cases := []struct {
		name   string
		sample Sample
	}{
		{
			// Sub-floor latencies never limp however skewed the ratio.
			name:   "below MinLatency floor",
			sample: Sample{Latency: []time.Duration{800 * time.Microsecond, 10 * time.Microsecond, 11 * time.Microsecond, 10 * time.Microsecond}},
		},
		{
			// One serving disk: no peer median to compare against.
			name:   "fewer than two peers",
			sample: Sample{Latency: []time.Duration{ms(100), 0, 0, 0}},
		},
		{
			// The slow disk is already rebuilding.
			name: "rebuilding disk skipped",
			sample: Sample{
				Latency:    []time.Duration{ms(100), ms(5), ms(5), ms(4)},
				Rebuilding: []int{0},
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := NewDetector(DetectorConfig{LimpWindows: 1})
			for i := 0; i < 3; i++ {
				if v := d.Observe(tc.sample); len(v.Limping) != 0 {
					t.Fatalf("Limping = %v, want none", v.Limping)
				}
			}
		})
	}
}

func TestDetectorDefaults(t *testing.T) {
	cfg := DetectorConfig{}.withDefaults()
	if cfg.ErrorBurst != 8 || cfg.LatencyFactor != 4 ||
		cfg.MinLatency != 2*time.Millisecond || cfg.LimpWindows != 3 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
}
