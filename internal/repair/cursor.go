package repair

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/store"
)

// Cursor is the scrub's persisted position: which full pass we are on and
// the next stripe to verify. It is saved after each batch completes, so a
// crash resumes at the start of the in-flight batch. Re-verifying (and, if
// needed, re-healing) those few stripes is idempotent — healing rewrites a
// cell to the value it should already have — so the at-least-once semantics
// never skip a stripe and never corrupt one.
type Cursor struct {
	// Cycle counts completed full passes over the store.
	Cycle int `json:"cycle"`
	// Next is the first unverified stripe of the current pass.
	Next int `json:"next"`
}

// LoadCursor reads a cursor from path. A missing file is a fresh start, not
// an error; a corrupt file is reported so the operator knows scrub history
// was lost.
func LoadCursor(path string) (Cursor, error) {
	var c Cursor
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return c, nil
	}
	if err != nil {
		return c, fmt.Errorf("repair: read scrub cursor: %w", err)
	}
	if err := json.Unmarshal(b, &c); err != nil {
		return Cursor{}, fmt.Errorf("repair: parse scrub cursor %s: %w", path, err)
	}
	if c.Next < 0 || c.Cycle < 0 {
		return Cursor{}, fmt.Errorf("repair: scrub cursor %s has negative fields", path)
	}
	return c, nil
}

// Save atomically persists the cursor: write a temp file in the same
// directory, fsync, rename over the target. A crash leaves either the old
// cursor or the new one, never a torn file.
func (c Cursor) Save(path string) error {
	b, err := json.Marshal(c)
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".scrub-cursor-*")
	if err != nil {
		return fmt.Errorf("repair: save scrub cursor: %w", err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("repair: save scrub cursor: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("repair: save scrub cursor: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("repair: save scrub cursor: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("repair: save scrub cursor: %w", err)
	}
	return nil
}

// ScrubReport summarises one incremental scrub batch.
type ScrubReport struct {
	// Start and End bound the stripes verified this batch: [Start, End).
	Start, End int
	// Bad lists stripes where a checksum or parity check failed.
	Bad []int
	// Healed counts cells rebuilt from redundancy and rewritten.
	Healed int
	// Wrapped is true when this batch finished a full pass.
	Wrapped bool
}

// ScrubStep verifies one batch of stripes starting at cur, heals any stripe
// that fails verification, and persists the advanced cursor to path (skipped
// when path is empty, for callers that keep the cursor in memory).
//
// The store lock is held per batch, not per pass: ScrubRange takes a shared
// read lock over at most batch stripes, and each heal is its own short
// exclusive section. Foreground reads interleave freely between them.
//
// Persisting after the work (not before) gives crash-safe at-least-once
// coverage: a crash between verify and save re-runs the batch on restart.
func ScrubStep(st *store.Store, cur Cursor, batch int, path string) (Cursor, ScrubReport, error) {
	if batch <= 0 {
		batch = store.DefaultScrubBatch
	}
	rep := ScrubReport{Start: cur.Next, End: cur.Next}

	stripes := st.Stripes()
	if stripes == 0 {
		// Nothing sealed yet; stay at the pass origin so the first
		// sealed stripe is covered.
		cur.Next = 0
		return cur, rep, nil
	}
	if cur.Next >= stripes {
		// The store shrank below the cursor (fresh data dir with a
		// stale cursor file) — wrap to a new pass.
		cur.Cycle++
		cur.Next = 0
		rep.Start, rep.End, rep.Wrapped = 0, 0, true
		if path != "" {
			if err := cur.Save(path); err != nil {
				return cur, rep, err
			}
		}
		return cur, rep, nil
	}

	bad, next, err := st.ScrubRange(cur.Next, batch)
	if err != nil {
		return cur, rep, err
	}
	rep.End = next
	rep.Bad = bad
	for _, stripe := range bad {
		healed, err := st.HealStripe(stripe)
		if err != nil {
			return cur, rep, fmt.Errorf("repair: heal stripe %d: %w", stripe, err)
		}
		rep.Healed += healed
	}

	cur.Next = next
	if cur.Next >= st.Stripes() {
		cur.Cycle++
		cur.Next = 0
		rep.Wrapped = true
	}
	if path != "" {
		if err := cur.Save(path); err != nil {
			return cur, rep, err
		}
	}
	return cur, rep, nil
}
