package repair

import (
	"time"
)

// Sample is one snapshot of the store's per-device health signals, taken by
// the scheduler's detect loop from Store.DiskErrorCounts, Store.DiskLatencies,
// Store.FailedDisks, and Store.Rebuilding.
type Sample struct {
	// Errors holds the cumulative hard-error count per disk
	// (ecfrm_disk_errors_total): fail-stop faults, exhausted retry
	// budgets, and backend I/O failures.
	Errors []int64
	// Latency holds the per-disk service-latency EWMA; zero means the
	// disk has not served an op since the counter was seeded.
	Latency []time.Duration
	// Failed lists disks already marked failed in the store.
	Failed []int
	// Rebuilding lists disks with an in-progress rebuild or migration.
	Rebuilding []int
}

// DetectorConfig tunes the failure and limping detectors.
type DetectorConfig struct {
	// ErrorBurst is how many hard errors beyond a disk's baseline mark it
	// errored. The baseline resets when Reset is called after a rebuild,
	// so the detector counts errors per disk lifetime, not per window —
	// a slow trickle of real faults still trips it. <=0 uses 8.
	ErrorBurst int64
	// LatencyFactor flags a disk as limping when its latency EWMA exceeds
	// this multiple of the median across healthy peers. <=0 uses 4.
	LatencyFactor float64
	// MinLatency is the floor below which a disk is never considered
	// limping, however skewed the ratio — microsecond-scale memory
	// backends produce wild but harmless ratios. <=0 uses 2ms.
	MinLatency time.Duration
	// LimpWindows is how many consecutive samples a disk must look slow
	// before it is reported — a single GC pause is not a limp. <=0 uses 3.
	LimpWindows int
}

func (c DetectorConfig) withDefaults() DetectorConfig {
	if c.ErrorBurst <= 0 {
		c.ErrorBurst = 8
	}
	if c.LatencyFactor <= 0 {
		c.LatencyFactor = 4
	}
	if c.MinLatency <= 0 {
		c.MinLatency = 2 * time.Millisecond
	}
	if c.LimpWindows <= 0 {
		c.LimpWindows = 3
	}
	return c
}

// Verdict is the detector's per-sample classification. A disk appears in at
// most one list; Failed takes precedence over Errored over Limping.
type Verdict struct {
	// Failed: disks the store already marks failed (no detection needed;
	// the scheduler just has to repair them).
	Failed []int
	// Errored: disks whose hard-error count rose past the burst
	// threshold since their baseline — candidates for fail-stop.
	Errored []int
	// Limping: disks consistently serving far slower than their peers —
	// candidates for proactive migration.
	Limping []int
}

// Detector turns health samples into repair verdicts. It is a pure state
// machine — no clocks, no goroutines — so tests drive it with synthetic
// samples. Not safe for concurrent use; the scheduler owns one instance.
type Detector struct {
	cfg      DetectorConfig
	baseline map[int]int64 // error count at last reset per disk
	slow     map[int]int   // consecutive samples each disk looked slow
}

// NewDetector creates a detector with zero-valued fields of cfg replaced by
// defaults.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{
		cfg:      cfg.withDefaults(),
		baseline: make(map[int]int64),
		slow:     make(map[int]int),
	}
}

// Observe classifies one sample. Disks already failed or rebuilding are
// reported only in Failed (if failed) and never as Errored/Limping — the
// scheduler must not re-detect a disk it is already repairing.
func (d *Detector) Observe(s Sample) Verdict {
	var v Verdict
	busy := make(map[int]bool)
	for _, i := range s.Failed {
		busy[i] = true
	}
	v.Failed = append(v.Failed, s.Failed...)
	for _, i := range s.Rebuilding {
		busy[i] = true
	}

	for i, errs := range s.Errors {
		if busy[i] {
			continue
		}
		base, ok := d.baseline[i]
		if !ok {
			// First sight of this disk: its current count is the
			// baseline, so pre-existing errors (e.g. from before a
			// scheduler restart) don't instantly trip detection.
			d.baseline[i] = errs
			continue
		}
		if errs-base >= d.cfg.ErrorBurst {
			v.Errored = append(v.Errored, i)
			busy[i] = true
		}
	}

	med := medianLatency(s.Latency, busy)
	for i, lat := range s.Latency {
		if busy[i] || lat < d.cfg.MinLatency || med <= 0 {
			d.slow[i] = 0
			continue
		}
		if float64(lat) >= d.cfg.LatencyFactor*float64(med) {
			d.slow[i]++
		} else {
			d.slow[i] = 0
		}
		if d.slow[i] >= d.cfg.LimpWindows {
			v.Limping = append(v.Limping, i)
		}
	}
	return v
}

// Reset rebaselines a disk after its rebuild completes: the error count it
// has now becomes the new zero, and its limp streak clears. Without this a
// repaired disk would trip the detector forever on its historical errors.
func (d *Detector) Reset(disk int, errs int64) {
	d.baseline[disk] = errs
	d.slow[disk] = 0
}

// medianLatency is the median EWMA across disks that are healthy (not in
// skip) and have served at least one op. Returns 0 when fewer than two
// disks qualify — a median of one disk would compare it against itself.
func medianLatency(lat []time.Duration, skip map[int]bool) time.Duration {
	var vals []time.Duration
	for i, l := range lat {
		if skip[i] || l <= 0 {
			continue
		}
		vals = append(vals, l)
	}
	if len(vals) < 2 {
		return 0
	}
	// Insertion sort: n is the disk count, tiny.
	for i := 1; i < len(vals); i++ {
		for j := i; j > 0 && vals[j] < vals[j-1]; j-- {
			vals[j], vals[j-1] = vals[j-1], vals[j]
		}
	}
	return vals[len(vals)/2]
}
