package repair

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/store"
)

// Defaults for zero-valued Config fields.
const (
	DefaultBatchStripes   = 16
	DefaultDetectInterval = 50 * time.Millisecond
	DefaultScrubInterval  = time.Second
	DefaultWorkers        = 2
)

// Config tunes the background repair scheduler.
type Config struct {
	// Rate is the repair bandwidth budget in bytes/second of replacement-
	// device writes. <= 0 pauses repair: failures are still detected and
	// queued, but no rebuild batch runs until SetRate raises the budget.
	Rate float64
	// Burst caps the token bucket (and so the largest instantaneous batch
	// debt). <= 0 uses four batches' worth of bytes.
	Burst float64
	// BatchStripes is how many stripes one rebuild Step covers between
	// rate-limit checks. <= 0 uses DefaultBatchStripes.
	BatchStripes int
	// DetectInterval is the health-sampling period. <= 0 uses 50ms.
	DetectInterval time.Duration
	// Detector tunes failure/limping detection thresholds.
	Detector DetectorConfig
	// FailLimping, when true, fail-stops disks the latency detector flags
	// (within the code's tolerance) so they rebuild proactively. Off by
	// default: limping disks are reported in Status but left in service.
	FailLimping bool
	// ScrubInterval is the pause between incremental scrub batches.
	// 0 uses DefaultScrubInterval; negative disables scrubbing.
	ScrubInterval time.Duration
	// ScrubBatch is stripes verified per scrub batch. <= 0 uses the
	// store's DefaultScrubBatch.
	ScrubBatch int
	// CursorPath persists the scrub cursor (atomic write per batch) so a
	// restart resumes mid-pass. Empty keeps the cursor in memory only.
	CursorPath string
	// Workers sizes the rebuild goroutine pool — how many disks repair
	// concurrently. <= 0 uses DefaultWorkers.
	Workers int
	// Registry receives the scheduler's metrics; nil disables them.
	Registry *obs.Registry
	// Logf receives operational log lines (detections, rebuild outcomes,
	// scrub errors). Nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.BatchStripes <= 0 {
		c.BatchStripes = DefaultBatchStripes
	}
	if c.DetectInterval <= 0 {
		c.DetectInterval = DefaultDetectInterval
	}
	if c.ScrubInterval == 0 {
		c.ScrubInterval = DefaultScrubInterval
	}
	if c.ScrubBatch <= 0 {
		c.ScrubBatch = store.DefaultScrubBatch
	}
	if c.Workers <= 0 {
		c.Workers = DefaultWorkers
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// task is one unit of repair work handed to the worker pool.
type task struct {
	disk int
	kind store.RebuildKind
}

// pendingRepair tracks a detected-but-unfinished repair for dedup and MTTR.
type pendingRepair struct {
	since time.Time
	kind  store.RebuildKind
}

// Scheduler is the background maintenance loop: a detect goroutine samples
// device health and fail-stops error-bursting disks, a worker pool drains
// rebuild/migration tasks through the store's incremental DiskRebuild
// machinery under the token bucket's rate limit, and a scrub goroutine
// walks the store verifying checksums with a persisted cursor.
type Scheduler struct {
	st     *store.Store
	cfg    Config
	bucket *TokenBucket
	m      *metrics

	mu      sync.Mutex
	det     *Detector
	pending map[int]pendingRepair
	active  map[int]*store.DiskRebuild
	cursor  Cursor
	limping []int
	scrubOK bool // at least one batch since the last heal-relevant event
	lastRep ScrubReport

	tasks     chan task
	scrubKick chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New starts a scheduler over st. Call Close to stop it; an in-flight
// rebuild batch finishes, then the rebuild aborts cleanly (the disk stays
// failed and a later scheduler resumes it from scratch).
func New(st *store.Store, cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		st:        st,
		cfg:       cfg,
		m:         newMetrics(cfg.Registry),
		det:       NewDetector(cfg.Detector),
		pending:   make(map[int]pendingRepair),
		active:    make(map[int]*store.DiskRebuild),
		tasks:     make(chan task, st.Scheme().N()),
		scrubKick: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	burst := cfg.Burst
	if burst <= 0 {
		burst = float64(4 * s.batchBytes())
	}
	s.bucket = NewTokenBucket(cfg.Rate, burst)
	if cfg.CursorPath != "" {
		cur, err := LoadCursor(cfg.CursorPath)
		if err != nil {
			return nil, err
		}
		s.cursor = cur
	}
	s.m.setScrubCursor(s.cursor.Next)

	s.wg.Add(1)
	go s.detectLoop()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.workerLoop()
	}
	if cfg.ScrubInterval > 0 {
		s.wg.Add(1)
		go s.scrubLoop()
	}
	return s, nil
}

// Close stops every loop and waits for them. Unfinished rebuilds abort;
// their disks stay failed for the next scheduler to pick up.
func (s *Scheduler) Close() {
	s.closeOnce.Do(func() {
		close(s.done)
		s.wg.Wait()
	})
}

// batchBytes estimates replacement-device bytes one rebuild batch writes:
// stripes × rows-per-disk × element size. The token bucket charges this per
// Step.
func (s *Scheduler) batchBytes() int {
	rows := s.st.Scheme().Layout().Rows()
	return s.cfg.BatchStripes * rows * s.st.ElementSize()
}

// SetRate retunes the repair bandwidth budget at runtime; <= 0 pauses.
func (s *Scheduler) SetRate(rate float64) { s.bucket.SetRate(rate) }

// Rate returns the configured zero-pressure repair rate in bytes/second.
func (s *Scheduler) Rate() float64 { return s.bucket.Rate() }

// TriggerRebuild queues failed disk d for rebuild without waiting for the
// next detect tick.
func (s *Scheduler) TriggerRebuild(d int) error {
	return s.trigger(d, store.RebuildFailed)
}

// TriggerMigrate queues healthy disk d for migration onto a fresh
// replacement device — the rebalance path after swapping in new hardware.
func (s *Scheduler) TriggerMigrate(d int) error {
	return s.trigger(d, store.RebuildMigrate)
}

func (s *Scheduler) trigger(d int, kind store.RebuildKind) error {
	if d < 0 || d >= s.st.Scheme().N() {
		return fmt.Errorf("repair: no disk %d", d)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, busy := s.pending[d]; busy {
		return fmt.Errorf("repair: disk %d already queued", d)
	}
	if _, busy := s.active[d]; busy {
		return fmt.Errorf("repair: disk %d repair already running", d)
	}
	return s.enqueueLocked(d, kind)
}

// TriggerScrub requests an extra scrub batch as soon as the scrub loop can
// run one, instead of waiting out the interval.
func (s *Scheduler) TriggerScrub() {
	select {
	case s.scrubKick <- struct{}{}:
	default:
	}
}

// enqueueLocked records the repair as pending (MTTR clock starts now) and
// hands it to the worker pool. Caller holds s.mu.
func (s *Scheduler) enqueueLocked(d int, kind store.RebuildKind) error {
	select {
	case s.tasks <- task{disk: d, kind: kind}:
		s.pending[d] = pendingRepair{since: time.Now(), kind: kind}
		return nil
	default:
		return fmt.Errorf("repair: task queue full, disk %d not queued", d)
	}
}

// detectLoop samples device health every DetectInterval and turns detector
// verdicts into repair tasks.
func (s *Scheduler) detectLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.DetectInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
			s.detectOnce()
		}
	}
}

// detectOnce runs one sample → verdict → enqueue round.
func (s *Scheduler) detectOnce() {
	sample := Sample{
		Errors:     s.st.DiskErrorCounts(),
		Latency:    s.st.DiskLatencies(),
		Failed:     s.st.FailedDisks(),
		Rebuilding: s.st.Rebuilding(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.det.Observe(sample)
	s.limping = v.Limping

	for _, d := range v.Failed {
		if s.skipLocked(d) {
			continue
		}
		s.m.observeDetection("failed")
		s.cfg.Logf("repair: disk %d is failed, queueing rebuild", d)
		s.enqueueLocked(d, store.RebuildFailed)
	}
	for _, d := range v.Errored {
		if s.skipLocked(d) {
			continue
		}
		if !s.st.FailDiskWithinTolerance(d) {
			s.cfg.Logf("repair: disk %d error burst, but failing it would exceed tolerance; leaving in service", d)
			continue
		}
		s.m.observeDetection("errored")
		s.cfg.Logf("repair: disk %d exceeded error threshold, fail-stopped for rebuild", d)
		s.enqueueLocked(d, store.RebuildFailed)
	}
	for _, d := range v.Limping {
		if s.skipLocked(d) {
			continue
		}
		s.m.observeDetection("limping")
		if !s.cfg.FailLimping {
			continue
		}
		if !s.st.FailDiskWithinTolerance(d) {
			s.cfg.Logf("repair: disk %d limping, but failing it would exceed tolerance; leaving in service", d)
			continue
		}
		s.cfg.Logf("repair: disk %d limping, fail-stopped for proactive rebuild", d)
		s.enqueueLocked(d, store.RebuildFailed)
	}
}

// skipLocked reports whether disk d already has a repair queued or running.
func (s *Scheduler) skipLocked(d int) bool {
	if _, ok := s.pending[d]; ok {
		return true
	}
	_, ok := s.active[d]
	return ok
}

// workerLoop drains the task channel through runRepair.
func (s *Scheduler) workerLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case t := <-s.tasks:
			s.runRepair(t)
		}
	}
}

// runRepair drives one disk's rebuild or migration to completion under the
// rate limit, recording bytes, backoffs, MTTR, and the outcome.
func (s *Scheduler) runRepair(t task) {
	var (
		r   *store.DiskRebuild
		err error
	)
	if t.kind == store.RebuildMigrate {
		r, err = s.st.BeginDiskMigration(t.disk)
	} else {
		r, err = s.st.BeginDiskRebuild(t.disk)
	}
	if err != nil {
		s.mu.Lock()
		delete(s.pending, t.disk)
		s.mu.Unlock()
		// A disk that healed (or was migrated) between detection and here
		// is not an error worth counting.
		if !strings.Contains(err.Error(), "is not failed") {
			s.cfg.Logf("repair: begin %s of disk %d: %v", t.kind, t.disk, err)
			s.m.observeRebuildDone(false)
		}
		return
	}

	s.mu.Lock()
	since := s.pending[t.disk].since
	if since.IsZero() {
		since = r.Started()
	}
	s.active[t.disk] = r
	s.mu.Unlock()

	batchBytes := s.batchBytes()
	rowBytes := s.st.Scheme().Layout().Rows() * s.st.ElementSize()
	for {
		select {
		case <-s.done:
			r.Abort()
			s.finishRepair(t.disk)
			return
		default:
		}

		// Foreground pressure: the busiest disk's in-flight fan-out runs
		// shrink the bucket's refill, so client traffic wins the I/O race.
		pressure := 0
		for _, n := range s.st.InflightRuns() {
			if n > pressure {
				pressure = n
			}
		}
		s.bucket.SetPressure(float64(pressure))

		if !s.bucket.Take(batchBytes) {
			s.m.observeBackoff(pressure > 0)
			wait := s.bucket.Wait(batchBytes)
			if wait < 0 {
				// Paused: poll for a rate change at detect cadence.
				wait = s.cfg.DetectInterval
			}
			if wait < time.Millisecond {
				wait = time.Millisecond
			}
			if wait > 250*time.Millisecond {
				wait = 250 * time.Millisecond
			}
			select {
			case <-s.done:
				r.Abort()
				s.finishRepair(t.disk)
				return
			case <-time.After(wait):
			}
			continue
		}

		before, _, _ := r.Progress()
		done, err := r.Step(s.cfg.BatchStripes)
		after, _, _ := r.Progress()
		s.m.observeBytes(string(t.kind), (after-before)*rowBytes)
		if err != nil {
			s.cfg.Logf("repair: %s of disk %d failed: %v", t.kind, t.disk, err)
			s.m.observeRebuildDone(false)
			s.finishRepair(t.disk)
			return
		}
		if done {
			s.m.observeRebuildDone(true)
			if t.kind == store.RebuildFailed {
				mttr := time.Since(since)
				s.m.observeMTTR(mttr.Seconds())
				s.cfg.Logf("repair: disk %d rebuilt in %v", t.disk, mttr.Round(time.Millisecond))
			} else {
				s.cfg.Logf("repair: disk %d migrated in %v", t.disk,
					time.Since(r.Started()).Round(time.Millisecond))
			}
			s.mu.Lock()
			// Rebaseline the detector at the disk's current error count so
			// historical errors don't re-trip it forever.
			s.det.Reset(t.disk, s.st.DiskErrorCounts()[t.disk])
			delete(s.pending, t.disk)
			delete(s.active, t.disk)
			s.mu.Unlock()
			return
		}
	}
}

// finishRepair clears tracking for an aborted or failed repair. The detect
// loop re-detects a still-failed disk on its next tick, so retries are
// automatic (and rate-limited by the bucket like any other batch).
func (s *Scheduler) finishRepair(d int) {
	s.mu.Lock()
	delete(s.pending, d)
	delete(s.active, d)
	s.mu.Unlock()
}

// scrubLoop runs one incremental scrub batch per interval (or kick), sitting
// out while any disk is failed or rebuilding — repair I/O outranks scrub.
func (s *Scheduler) scrubLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.cfg.ScrubInterval)
	defer t.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-t.C:
		case <-s.scrubKick:
		}
		if len(s.st.FailedDisks()) > 0 || len(s.st.Rebuilding()) > 0 {
			continue
		}
		s.scrubOnce()
	}
}

// scrubOnce advances the scrub by one batch and records the result.
func (s *Scheduler) scrubOnce() {
	s.mu.Lock()
	cur := s.cursor
	s.mu.Unlock()

	next, rep, err := ScrubStep(s.st, cur, s.cfg.ScrubBatch, s.cfg.CursorPath)
	if err != nil {
		s.cfg.Logf("repair: scrub batch at stripe %d: %v", cur.Next, err)
		return
	}
	if rep.Healed > 0 {
		s.cfg.Logf("repair: scrub healed %d cells in stripes [%d,%d)", rep.Healed, rep.Start, rep.End)
	}
	s.m.observeScrub(rep)
	s.m.setScrubCursor(next.Next)

	s.mu.Lock()
	s.cursor = next
	s.lastRep = rep
	s.scrubOK = true
	s.mu.Unlock()
}

// RebuildStatus describes one in-flight repair for Status.
type RebuildStatus struct {
	Disk       int     `json:"disk"`
	Kind       string  `json:"kind"`
	Next       int     `json:"next"`
	Total      int     `json:"total"`
	ReadCost   int     `json:"read_cost"`
	RunningSec float64 `json:"running_sec"`
}

// Status is the scheduler's live state, served by the /repair endpoint.
type Status struct {
	RateBytesPerSec      float64         `json:"rate_bytes_per_sec"`
	EffectiveBytesPerSec float64         `json:"effective_bytes_per_sec"`
	Tokens               float64         `json:"tokens"`
	FailedDisks          []int           `json:"failed_disks"`
	LimpingDisks         []int           `json:"limping_disks"`
	QueuedDisks          []int           `json:"queued_disks"`
	Active               []RebuildStatus `json:"active"`
	ScrubCycle           int             `json:"scrub_cycle"`
	ScrubNext            int             `json:"scrub_next"`
	ScrubLastHealed      int             `json:"scrub_last_healed"`
	Stripes              int             `json:"stripes"`
}

// StatusSnapshot assembles the scheduler's current Status.
func (s *Scheduler) StatusSnapshot() Status {
	st := Status{
		RateBytesPerSec:      s.bucket.Rate(),
		EffectiveBytesPerSec: s.bucket.EffectiveRate(),
		Tokens:               s.bucket.Tokens(),
		FailedDisks:          s.st.FailedDisks(),
		Stripes:              s.st.Stripes(),
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st.LimpingDisks = append([]int(nil), s.limping...)
	for d, p := range s.pending {
		if _, running := s.active[d]; !running && p.kind == store.RebuildFailed {
			st.QueuedDisks = append(st.QueuedDisks, d)
		}
	}
	sort.Ints(st.QueuedDisks)
	for _, r := range s.active {
		next, total, cost := r.Progress()
		st.Active = append(st.Active, RebuildStatus{
			Disk:       r.Disk(),
			Kind:       string(r.Kind()),
			Next:       next,
			Total:      total,
			ReadCost:   cost,
			RunningSec: time.Since(r.Started()).Seconds(),
		})
	}
	sort.Slice(st.Active, func(i, j int) bool { return st.Active[i].Disk < st.Active[j].Disk })
	st.ScrubCycle = s.cursor.Cycle
	st.ScrubNext = s.cursor.Next
	st.ScrubLastHealed = s.lastRep.Healed
	return st
}
