package repair

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler returns the scheduler's HTTP surface, mounted by the daemon under
// /repair:
//
//	GET  /          scheduler status JSON (rates, queues, active repairs, scrub cursor)
//	POST /rebuild?disk=N   queue a rebuild of failed disk N now
//	POST /migrate?disk=N   queue a migration of healthy disk N onto fresh media
//	POST /scrub            run an extra scrub batch without waiting the interval
//	POST /rate?bytes=N     retune the repair bandwidth budget (0 pauses)
func (s *Scheduler) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" && r.URL.Path != "" {
			http.NotFound(w, r)
			return
		}
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.StatusSnapshot())
	})
	mux.HandleFunc("/rebuild", func(w http.ResponseWriter, r *http.Request) {
		s.handleDiskAction(w, r, s.TriggerRebuild)
	})
	mux.HandleFunc("/migrate", func(w http.ResponseWriter, r *http.Request) {
		s.handleDiskAction(w, r, s.TriggerMigrate)
	})
	mux.HandleFunc("/scrub", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		s.TriggerScrub()
		w.WriteHeader(http.StatusAccepted)
	})
	mux.HandleFunc("/rate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		bytes, err := strconv.ParseFloat(r.URL.Query().Get("bytes"), 64)
		if err != nil {
			http.Error(w, "bad bytes parameter: "+err.Error(), http.StatusBadRequest)
			return
		}
		s.SetRate(bytes)
		w.WriteHeader(http.StatusNoContent)
	})
	return mux
}

func (s *Scheduler) handleDiskAction(w http.ResponseWriter, r *http.Request, fn func(int) error) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	d, err := strconv.Atoi(r.URL.Query().Get("disk"))
	if err != nil {
		http.Error(w, "bad disk parameter: "+err.Error(), http.StatusBadRequest)
		return
	}
	if err := fn(d); err != nil {
		http.Error(w, err.Error(), http.StatusConflict)
		return
	}
	w.WriteHeader(http.StatusAccepted)
}
