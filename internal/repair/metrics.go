package repair

import (
	"repro/internal/obs"
)

// mttrBuckets resolve detection-to-rebuilt times from 10ms (in-memory test
// stores) out to ~3 minutes (rate-limited file-backed rebuilds).
var mttrBuckets = obs.ExpBuckets(0.01, 4, 8)

// metrics is the scheduler's observability bundle. Nil-safe like the store's:
// a scheduler built without a registry skips all accounting.
//
// Metric names:
//
//	ecfrm_repair_bytes_total{kind}         bytes rebuilt, by rebuild|migrate
//	ecfrm_repair_mttr_seconds             histogram: detection → rebuilt
//	ecfrm_repair_last_mttr_seconds        gauge: most recent repair's MTTR
//	ecfrm_repair_backoff_total{reason}    rate-limit stalls, tokens|pressure
//	ecfrm_repair_detections_total{kind}   detector verdicts, failed|errored|limping
//	ecfrm_repair_rebuilds_total{outcome}  finished repairs, ok|error
//	ecfrm_scrub_stripes_total             stripes verified by the scrubber
//	ecfrm_scrub_heals_total               cells healed by the scrubber
//	ecfrm_scrub_cycles_total              completed full scrub passes
//	ecfrm_scrub_cursor                    next stripe the scrubber will verify
type metrics struct {
	bytesRebuild *obs.Counter
	bytesMigrate *obs.Counter

	mttr     *obs.Histogram
	lastMTTR *obs.Gauge

	backoffTokens   *obs.Counter
	backoffPressure *obs.Counter

	detectFailed  *obs.Counter
	detectErrored *obs.Counter
	detectLimping *obs.Counter

	rebuildsOK  *obs.Counter
	rebuildsErr *obs.Counter

	scrubStripes *obs.Counter
	scrubHeals   *obs.Counter
	scrubCycles  *obs.Counter
	scrubCursor  *obs.Gauge
}

func newMetrics(reg *obs.Registry) *metrics {
	if reg == nil {
		return nil
	}
	m := &metrics{}
	m.bytesRebuild = reg.Counter("ecfrm_repair_bytes_total",
		"Bytes written to replacement devices by background repair, by kind.",
		obs.L("kind", "rebuild"))
	m.bytesMigrate = reg.Counter("ecfrm_repair_bytes_total",
		"Bytes written to replacement devices by background repair, by kind.",
		obs.L("kind", "migrate"))
	m.mttr = reg.Histogram("ecfrm_repair_mttr_seconds",
		"Mean-time-to-repair: failure detection to rebuilt-and-live.",
		mttrBuckets)
	m.lastMTTR = reg.Gauge("ecfrm_repair_last_mttr_seconds",
		"MTTR of the most recently completed repair.")
	m.backoffTokens = reg.Counter("ecfrm_repair_backoff_total",
		"Repair batches stalled by the rate limiter, by reason: tokens (budget exhausted) or pressure (foreground load shrank the refill).",
		obs.L("reason", "tokens"))
	m.backoffPressure = reg.Counter("ecfrm_repair_backoff_total",
		"Repair batches stalled by the rate limiter, by reason: tokens (budget exhausted) or pressure (foreground load shrank the refill).",
		obs.L("reason", "pressure"))
	m.detectFailed = reg.Counter("ecfrm_repair_detections_total",
		"Detector verdicts acted on, by kind.", obs.L("kind", "failed"))
	m.detectErrored = reg.Counter("ecfrm_repair_detections_total",
		"Detector verdicts acted on, by kind.", obs.L("kind", "errored"))
	m.detectLimping = reg.Counter("ecfrm_repair_detections_total",
		"Detector verdicts acted on, by kind.", obs.L("kind", "limping"))
	m.rebuildsOK = reg.Counter("ecfrm_repair_rebuilds_total",
		"Background repairs finished, by outcome.", obs.L("outcome", "ok"))
	m.rebuildsErr = reg.Counter("ecfrm_repair_rebuilds_total",
		"Background repairs finished, by outcome.", obs.L("outcome", "error"))
	m.scrubStripes = reg.Counter("ecfrm_scrub_stripes_total",
		"Stripes verified by the incremental scrubber.")
	m.scrubHeals = reg.Counter("ecfrm_scrub_heals_total",
		"Cells rebuilt from redundancy by the scrubber.")
	m.scrubCycles = reg.Counter("ecfrm_scrub_cycles_total",
		"Completed full scrub passes over the store.")
	m.scrubCursor = reg.Gauge("ecfrm_scrub_cursor",
		"Next stripe the incremental scrubber will verify.")
	return m
}

func (m *metrics) observeBytes(kind string, n int) {
	if m == nil {
		return
	}
	if kind == "migrate" {
		m.bytesMigrate.Add(int64(n))
	} else {
		m.bytesRebuild.Add(int64(n))
	}
}

func (m *metrics) observeMTTR(seconds float64) {
	if m == nil {
		return
	}
	m.mttr.Observe(seconds)
	m.lastMTTR.Set(seconds)
}

func (m *metrics) observeBackoff(pressure bool) {
	if m == nil {
		return
	}
	if pressure {
		m.backoffPressure.Inc()
	} else {
		m.backoffTokens.Inc()
	}
}

func (m *metrics) observeDetection(kind string) {
	if m == nil {
		return
	}
	switch kind {
	case "failed":
		m.detectFailed.Inc()
	case "errored":
		m.detectErrored.Inc()
	case "limping":
		m.detectLimping.Inc()
	}
}

func (m *metrics) observeRebuildDone(ok bool) {
	if m == nil {
		return
	}
	if ok {
		m.rebuildsOK.Inc()
	} else {
		m.rebuildsErr.Inc()
	}
}

func (m *metrics) observeScrub(rep ScrubReport) {
	if m == nil {
		return
	}
	m.scrubStripes.Add(int64(rep.End - rep.Start))
	m.scrubHeals.Add(int64(rep.Healed))
	if rep.Wrapped {
		m.scrubCycles.Inc()
	}
}

func (m *metrics) setScrubCursor(next int) {
	if m == nil {
		return
	}
	m.scrubCursor.Set(float64(next))
}
