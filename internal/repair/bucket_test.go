package repair

import (
	"testing"
	"time"
)

// fakeClock is a manually advanced time source for bucket tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestTokenBucketTable(t *testing.T) {
	type op struct {
		advance  time.Duration // clock motion before the op
		take     int           // Take(n) when > 0
		wantTake bool
		wait     int // Wait(n) when > 0
		wantWait time.Duration
		rate     float64 // SetRate when != 0 (use -1 to pause)
		pressure float64 // SetPressure when >= 0 (use -1 to skip)
	}
	cases := []struct {
		name        string
		rate, burst float64
		ops         []op
	}{
		{
			name: "starts full and burst caps the balance",
			rate: 100, burst: 50,
			ops: []op{
				{take: 50, wantTake: true, pressure: -1},
				{take: 1, wantTake: false, pressure: -1},
				// 10s at 100/s would be 1000 tokens; cap is 50.
				{advance: 10 * time.Second, take: 50, wantTake: true, pressure: -1},
				{take: 1, wantTake: false, pressure: -1},
			},
		},
		{
			name: "refills at rate",
			rate: 100, burst: 100,
			ops: []op{
				{take: 100, wantTake: true, pressure: -1},
				{advance: 250 * time.Millisecond, take: 26, wantTake: false, pressure: -1},
				{take: 25, wantTake: true, pressure: -1},
			},
		},
		{
			name: "request larger than burst clamps instead of deadlocking",
			rate: 100, burst: 10,
			ops: []op{
				{take: 1000, wantTake: true, pressure: -1}, // costs the full bucket
				{take: 1, wantTake: false, pressure: -1},
				{advance: time.Second, wait: 1000, wantWait: 0, pressure: -1},
			},
		},
		{
			name: "pressure shrinks the effective refill",
			rate: 100, burst: 100,
			ops: []op{
				{take: 100, wantTake: true, pressure: -1},
				// pressure 1 → effective 50/s → 1s accrues 50.
				{pressure: 1},
				{advance: time.Second, take: 51, wantTake: false, pressure: -1},
				{take: 50, wantTake: true, pressure: -1},
				// pressure 3 → effective 25/s → need 25 → 1s wait.
				{pressure: 3},
				{wait: 25, wantWait: time.Second, pressure: -1},
			},
		},
		{
			name: "pressure change settles elapsed time at old pressure",
			rate: 100, burst: 200,
			ops: []op{
				{take: 200, wantTake: true, pressure: -1},
				// 1s at zero pressure accrues 100 even though pressure
				// rises immediately after.
				{advance: time.Second, pressure: 9},
				{take: 100, wantTake: true, pressure: -1},
				{take: 1, wantTake: false, pressure: -1},
			},
		},
		{
			name: "negative pressure clamps to zero",
			rate: 100, burst: 100,
			ops: []op{
				{take: 100, wantTake: true, pressure: -1},
				{pressure: -0.5},
				{advance: time.Second, take: 100, wantTake: true, pressure: -1},
			},
		},
		{
			name: "zero rate is paused",
			rate: 0, burst: 100,
			ops: []op{
				{take: 1, wantTake: false, pressure: -1},
				{advance: time.Hour, take: 1, wantTake: false, pressure: -1},
				{wait: 1, wantWait: -1, pressure: -1},
			},
		},
		{
			name: "rate change applies after settling",
			rate: 100, burst: 100,
			ops: []op{
				{take: 100, wantTake: true, pressure: -1},
				// 1s at 100/s settles 100 tokens before the pause lands,
				// but a paused bucket refuses takes regardless of balance.
				{advance: time.Second, rate: -1, pressure: -1},
				{take: 100, wantTake: false, pressure: -1},
				{advance: time.Hour, take: 1, wantTake: false, pressure: -1},
				// Unpausing releases the settled balance without waiting.
				{rate: 200, pressure: -1},
				{take: 100, wantTake: true, pressure: -1},
				{take: 1, wantTake: false, pressure: -1},
				// And the new rate governs accrual: 500ms at 200/s = 100.
				{advance: 500 * time.Millisecond, take: 100, wantTake: true, pressure: -1},
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := &fakeClock{t: time.Unix(1000, 0)}
			b := newTokenBucket(tc.rate, tc.burst, clk.now)
			for i, o := range tc.ops {
				clk.advance(o.advance)
				if o.rate != 0 {
					r := o.rate
					if r == -1 {
						r = 0
					}
					b.SetRate(r)
				}
				if o.pressure >= 0 {
					b.SetPressure(o.pressure)
				}
				if o.take > 0 {
					if got := b.Take(o.take); got != o.wantTake {
						t.Fatalf("op %d: Take(%d) = %v, want %v (tokens %.1f)",
							i, o.take, got, o.wantTake, b.Tokens())
					}
				}
				if o.wait > 0 {
					got := b.Wait(o.wait)
					if o.wantWait < 0 {
						if got >= 0 {
							t.Fatalf("op %d: Wait(%d) = %v, want negative (paused)", i, o.wait, got)
						}
					} else if diff := got - o.wantWait; diff < -time.Millisecond || diff > time.Millisecond {
						t.Fatalf("op %d: Wait(%d) = %v, want %v", i, o.wait, got, o.wantWait)
					}
				}
			}
		})
	}
}

func TestTokenBucketBurstFloor(t *testing.T) {
	b := newTokenBucket(10, 0, (&fakeClock{t: time.Unix(0, 0)}).now)
	// Burst clamps to 1 so a positive rate can always make progress.
	if !b.Take(1) {
		t.Fatal("burst floor of 1 did not allow a take")
	}
}

func TestTokenBucketEffectiveRate(t *testing.T) {
	b := newTokenBucket(100, 100, (&fakeClock{t: time.Unix(0, 0)}).now)
	if got := b.EffectiveRate(); got != 100 {
		t.Fatalf("EffectiveRate = %v, want 100", got)
	}
	b.SetPressure(3)
	if got := b.EffectiveRate(); got != 25 {
		t.Fatalf("EffectiveRate under pressure 3 = %v, want 25", got)
	}
	b.SetRate(0)
	if got := b.EffectiveRate(); got != 0 {
		t.Fatalf("EffectiveRate paused = %v, want 0", got)
	}
}
