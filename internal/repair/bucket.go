// Package repair hosts the background maintenance scheduler: failure
// detection from device health signals, rate-limited disk rebuild and
// rebalance driven through the store's incremental DiskRebuild machinery,
// and a continuous incremental checksum scrub with a crash-safe persisted
// cursor.
//
// The scheduler's contract is the paper's repair-bandwidth trade-off: rebuild
// as fast as the configured budget allows, but never so fast that foreground
// reads starve. Repair traffic flows through a token bucket whose effective
// refill rate shrinks when foreground pressure (in-flight fan-out runs on
// the data disks) rises, so a busy store automatically yields bandwidth to
// clients and an idle store rebuilds at full speed.
package repair

import (
	"sync"
	"time"
)

// TokenBucket is a byte-granularity rate limiter for repair traffic.
//
// Tokens accrue at rate bytes/second up to a burst cap. Take consumes
// tokens if available; Wait reports how long until enough accrue. The
// effective refill rate is rate/(1+pressure): pressure is a dimensionless
// foreground-load signal (the scheduler feeds it the maximum per-disk
// in-flight run count), so refill halves when one request is in flight per
// busy disk, thirds at two, and so on. A zero rate pauses repair entirely.
type TokenBucket struct {
	mu       sync.Mutex
	rate     float64 // tokens (bytes) per second at zero pressure
	burst    float64 // token cap; also the largest single Take
	tokens   float64
	pressure float64
	last     time.Time
	now      func() time.Time
}

// NewTokenBucket creates a bucket refilling at rate bytes/second with the
// given burst. The bucket starts full so the first batch is never delayed.
// rate <= 0 means paused: Take always fails and Wait reports no deadline.
// burst is clamped to at least 1 so a positive rate can always make progress.
func NewTokenBucket(rate, burst float64) *TokenBucket {
	return newTokenBucket(rate, burst, time.Now)
}

// newTokenBucket injects the clock for tests.
func newTokenBucket(rate, burst float64, now func() time.Time) *TokenBucket {
	if burst < 1 {
		burst = 1
	}
	return &TokenBucket{
		rate:   rate,
		burst:  burst,
		tokens: burst,
		last:   now(),
		now:    now,
	}
}

// refillLocked accrues tokens for the time elapsed since the last refill at
// the pressure-scaled rate. Callers hold b.mu.
func (b *TokenBucket) refillLocked() {
	t := b.now()
	dt := t.Sub(b.last).Seconds()
	b.last = t
	if dt <= 0 || b.rate <= 0 {
		return
	}
	b.tokens += b.rate / (1 + b.pressure) * dt
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
}

// Take consumes n tokens if available and reports whether it did. Requests
// larger than the burst are clamped to it — a single huge batch costs the
// full bucket rather than deadlocking forever.
func (b *TokenBucket) Take(n int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return false
	}
	b.refillLocked()
	need := float64(n)
	if need > b.burst {
		need = b.burst
	}
	if b.tokens < need {
		return false
	}
	b.tokens -= need
	return true
}

// Wait reports how long until n tokens (clamped to burst) will have accrued
// at the current effective rate, or a negative duration when the bucket is
// paused (rate <= 0) and no amount of waiting will help.
func (b *TokenBucket) Wait(n int) time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return -1
	}
	b.refillLocked()
	need := float64(n)
	if need > b.burst {
		need = b.burst
	}
	if b.tokens >= need {
		return 0
	}
	eff := b.rate / (1 + b.pressure)
	return time.Duration((need - b.tokens) / eff * float64(time.Second))
}

// SetRate changes the zero-pressure refill rate. Accrued tokens are settled
// at the old rate first, so a mid-flight change never rewrites history.
func (b *TokenBucket) SetRate(rate float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	b.rate = rate
}

// SetPressure updates the foreground-load signal. Negative values clamp to
// zero. As with SetRate, elapsed time is settled at the old pressure first.
func (b *TokenBucket) SetPressure(p float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	if p < 0 {
		p = 0
	}
	b.pressure = p
}

// Tokens returns the current token balance after settling elapsed time.
func (b *TokenBucket) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.refillLocked()
	return b.tokens
}

// Rate returns the configured zero-pressure rate.
func (b *TokenBucket) Rate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.rate
}

// EffectiveRate returns the pressure-scaled refill rate in bytes/second.
func (b *TokenBucket) EffectiveRate() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.rate <= 0 {
		return 0
	}
	return b.rate / (1 + b.pressure)
}
