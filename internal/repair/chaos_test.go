package repair

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/httpd"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/obs"
	"repro/internal/store"
)

// chaosSeeds mirrors the faultinject suite: two fixed reproduction seeds
// plus an optional extra from CHAOS_SEED (the `make repair-chaos` target
// passes a time-derived one, logged so failures name their seed).
func chaosSeeds(t *testing.T) []int64 {
	seeds := []int64{1, 2}
	if env := os.Getenv("CHAOS_SEED"); env != "" {
		extra, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("CHAOS_SEED=%q: %v", env, err)
		}
		t.Logf("chaos: running extra seed %d (reproduce with CHAOS_SEED=%d)", extra, extra)
		seeds = append(seeds, extra)
	}
	return seeds
}

// mttrBound is the acceptance ceiling on detection-to-rebuilt time for the
// in-memory chaos store. Typical runs finish in well under a second; the
// bound absorbs race-detector and CI scheduling slop, not design slack.
const mttrBound = 10.0 // seconds

// TestChaosKilledDiskMTTR is the acceptance suite for the repair scheduler:
// serve object traffic over HTTP with latency faults everywhere, kill a
// random disk mid-traffic via a seeded fail-after-ops fault, and require
//
//   - no foreground request fails at any point (degraded reads cover the
//     window between the kill and the fail-stop, and the shared-lock
//     rebuild batches never starve readers);
//   - the scheduler detects the kill from device error counts alone,
//     fail-stops the disk within tolerance, and rebuilds it with MTTR
//     under mttrBound — asserted from a live /metrics scrape, not test
//     internals;
//   - foreground p99 during the failure-and-rebuild window stays within
//     3x the no-failure baseline at the default-ish rate limit;
//   - every object reads back byte-identical afterwards and a full scrub
//     comes back clean.
//
// Run under -race by `make repair-chaos`.
func TestChaosKilledDiskMTTR(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			chaosKilledDisk(t, seed)
		})
	}
}

func chaosKilledDisk(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	st := store.MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 1024)
	st.SetRetryPolicy(10*time.Millisecond, 2)
	reg := obs.NewRegistry()
	srv := httpd.NewServerWith(st, httpd.Config{Registry: reg})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	client := ts.Client()

	// Seed objects through the HTTP write path.
	const objects = 24
	payloads := make(map[string][]byte, objects)
	for i := 0; i < objects; i++ {
		name := fmt.Sprintf("obj-%02d", i)
		body := make([]byte, 4096+rng.Intn(16384))
		rng.Read(body)
		payloads[name] = body
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/objects/"+name, bytes.NewReader(body))
		resp, err := client.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			t.Fatalf("PUT %s = %d", name, resp.StatusCode)
		}
	}

	// Background latency everywhere — the no-failure regime.
	n := st.Scheme().N()
	latencyPlan := func() faultinject.Plan {
		p := faultinject.Plan{Seed: seed}
		for d := 0; d < n; d++ {
			p.Policies = append(p.Policies, faultinject.Policy{
				Device:  d,
				Latency: time.Millisecond,
				Jitter:  500 * time.Microsecond,
			})
		}
		return p
	}
	st.SetFaultInjector(faultinject.New(latencyPlan()))

	names := make([]string, 0, objects)
	for name := range payloads {
		names = append(names, name)
	}
	sort.Strings(names)
	get := func(name string) (time.Duration, error) {
		t0 := time.Now()
		resp, err := client.Get(ts.URL + "/objects/" + name + "?nocache=1")
		if err != nil {
			return 0, err
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, err
		}
		if resp.StatusCode != http.StatusOK {
			return 0, fmt.Errorf("GET %s = %d", name, resp.StatusCode)
		}
		if !bytes.Equal(body, payloads[name]) {
			return 0, fmt.Errorf("GET %s returned wrong bytes", name)
		}
		return time.Since(t0), nil
	}

	// Baseline p99 under the same client concurrency the chaos phase uses.
	const clients = 4
	baseline := concurrentGets(t, clients, 400, names, get, nil)
	p99Base := percentile(baseline, 0.99)
	if p99Base < 3*time.Millisecond {
		// Floor out scheduler noise on near-zero latencies so the 3x
		// bound tests repair interference, not microsecond jitter.
		p99Base = 3 * time.Millisecond
	}
	t.Logf("baseline p99 = %v over %d requests", p99Base, len(baseline))

	// Start the repair scheduler at a modest default-ish rate limit.
	sch, err := New(st, Config{
		Rate:           4 << 20,
		BatchStripes:   8,
		DetectInterval: 5 * time.Millisecond,
		Detector:       DetectorConfig{ErrorBurst: 6},
		ScrubInterval:  50 * time.Millisecond,
		Registry:       reg,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sch.Close()

	// Kill a random disk mid-traffic: after ~25 more ops it fail-stops at
	// the device level, and only the scheduler's error detector may notice.
	victim := rng.Intn(n)
	killPlan := latencyPlan()
	killPlan.Policies[victim].FailAfterOps = 25
	t.Logf("killing disk %d (fail after 25 ops)", victim)

	var failures atomic.Int64
	stop := make(chan struct{})
	var chaosLat []time.Duration
	var chaosMu sync.Mutex
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			i := c
			for {
				select {
				case <-stop:
					return
				default:
				}
				lat, err := get(names[i%len(names)])
				if err != nil {
					t.Logf("foreground request failed: %v", err)
					failures.Add(1)
					return
				}
				chaosMu.Lock()
				chaosLat = append(chaosLat, lat)
				chaosMu.Unlock()
				i += clients
			}
		}(c)
	}

	st.SetFaultInjector(faultinject.New(killPlan))

	// Wait for detection + rebuild, observed via the live metrics endpoint
	// like an operator would.
	scrape := func() string {
		resp, err := client.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	deadline := time.Now().Add(30 * time.Second)
	for scrapeValue(t, scrape(), "ecfrm_repair_mttr_seconds_count") < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("no rebuild completed within 30s; errs=%v failed=%v", st.DiskErrorCounts(), st.FailedDisks())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The faulty hardware is replaced: back to the latency-only plan so the
	// rebuilt disk stops re-erroring.
	st.SetFaultInjector(faultinject.New(latencyPlan()))
	for len(st.FailedDisks()) != 0 || len(st.Rebuilding()) != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("store not healthy within 30s: failed=%v rebuilding=%v", st.FailedDisks(), st.Rebuilding())
		}
		time.Sleep(10 * time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// 1. No foreground request failed across kill, degraded window, rebuild.
	if failures.Load() != 0 {
		t.Fatalf("%d foreground requests failed during chaos", failures.Load())
	}

	// 2. MTTR and repair bytes from the live scrape.
	text := scrape()
	if v := scrapeValue(t, text, "ecfrm_repair_last_mttr_seconds"); v <= 0 || v > mttrBound {
		t.Fatalf("MTTR = %vs, want (0, %v]", v, mttrBound)
	}
	if v := scrapeValue(t, text, `ecfrm_repair_bytes_total{kind="rebuild"}`); v <= 0 {
		t.Fatalf("repair bytes = %v, want > 0", v)
	}
	if v := scrapeValue(t, text, `ecfrm_repair_detections_total{kind="errored"}`); v < 1 {
		t.Fatalf("errored detections = %v, want >= 1", v)
	}

	// 3. Foreground p99 during failure + rebuild within 3x baseline.
	if len(chaosLat) < 100 {
		t.Fatalf("only %d chaos-phase requests recorded", len(chaosLat))
	}
	p99Chaos := percentile(chaosLat, 0.99)
	t.Logf("chaos p99 = %v over %d requests (baseline %v)", p99Chaos, len(chaosLat), p99Base)
	if p99Chaos > 3*p99Base {
		t.Fatalf("p99 during rebuild = %v, more than 3x baseline %v", p99Chaos, p99Base)
	}

	// 4. Byte-identical reads and a clean scrub after repair.
	for _, name := range names {
		if _, err := get(name); err != nil {
			t.Fatalf("post-repair read: %v", err)
		}
	}
	if bad, err := st.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("post-repair scrub: bad=%v err=%v", bad, err)
	}
}

// concurrentGets runs total GETs across c goroutines and returns latencies.
func concurrentGets(t *testing.T, c, total int, names []string, get func(string) (time.Duration, error), _ *rand.Rand) []time.Duration {
	t.Helper()
	var mu sync.Mutex
	var lats []time.Duration
	var wg sync.WaitGroup
	per := total / c
	for i := 0; i < c; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				lat, err := get(names[(i+j*c)%len(names)])
				if err != nil {
					t.Errorf("baseline GET: %v", err)
					return
				}
				mu.Lock()
				lats = append(lats, lat)
				mu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	return lats
}

// percentile returns the p-quantile of lats (copied, sorted).
func percentile(lats []time.Duration, p float64) time.Duration {
	s := append([]time.Duration(nil), lats...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	if len(s) == 0 {
		return 0
	}
	idx := int(p * float64(len(s)-1))
	return s[idx]
}

// scrapeValue pulls one sample's value out of Prometheus exposition text.
func scrapeValue(t *testing.T, text, sample string) float64 {
	t.Helper()
	for _, line := range splitLines(text) {
		if len(line) > len(sample) && line[:len(sample)] == sample && line[len(sample)] == ' ' {
			v, err := strconv.ParseFloat(line[len(sample)+1:], 64)
			if err != nil {
				t.Fatalf("parse metric line %q: %v", line, err)
			}
			return v
		}
	}
	return 0
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
