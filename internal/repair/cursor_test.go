package repair

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/store"
)

func testStore(t testing.TB) *store.Store {
	t.Helper()
	return store.MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 64)
}

func fillStripes(t testing.TB, s *store.Store, stripes int, seed int64) []byte {
	t.Helper()
	data := make([]byte, stripes*s.Scheme().DataPerStripe()*s.ElementSize())
	rand.New(rand.NewSource(seed)).Read(data)
	if err := s.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestCursorRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "scrub.cursor")
	// Missing file is a fresh start.
	c, err := LoadCursor(path)
	if err != nil || c != (Cursor{}) {
		t.Fatalf("LoadCursor(missing) = %+v, %v", c, err)
	}
	want := Cursor{Cycle: 3, Next: 17}
	if err := want.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCursor(path)
	if err != nil || got != want {
		t.Fatalf("LoadCursor = %+v, %v; want %+v", got, err, want)
	}
	// Corrupt file is an error, not a silent restart.
	if err := os.WriteFile(path, []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCursor(path); err == nil {
		t.Fatal("corrupt cursor loaded without error")
	}
}

func TestScrubStepWalksAndWraps(t *testing.T) {
	s := testStore(t)
	fillStripes(t, s, 7, 5)
	path := filepath.Join(t.TempDir(), "scrub.cursor")

	cur := Cursor{}
	var reps []ScrubReport
	for i := 0; i < 3; i++ {
		var rep ScrubReport
		var err error
		cur, rep, err = ScrubStep(s, cur, 3, path)
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	// 7 stripes in batches of 3: [0,3) [3,6) [6,7)+wrap.
	if reps[0].Start != 0 || reps[0].End != 3 || reps[1].End != 6 || reps[2].End != 7 {
		t.Fatalf("batch bounds wrong: %+v", reps)
	}
	if !reps[2].Wrapped || cur.Cycle != 1 || cur.Next != 0 {
		t.Fatalf("wrap not recorded: rep=%+v cur=%+v", reps[2], cur)
	}
	// The wrap was persisted.
	if got, err := LoadCursor(path); err != nil || got != cur {
		t.Fatalf("persisted cursor = %+v, %v; want %+v", got, err, cur)
	}
}

func TestScrubStepHealsCorruption(t *testing.T) {
	s := testStore(t)
	fillStripes(t, s, 6, 9)
	if err := s.CorruptCell(2, layout.Pos{Row: 0, Col: 1}); err != nil {
		t.Fatal(err)
	}
	cur, rep, err := ScrubStep(s, Cursor{}, 6, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Bad) != 1 || rep.Bad[0] != 2 || rep.Healed != 1 {
		t.Fatalf("rep = %+v, want bad=[2] healed=1", rep)
	}
	if !rep.Wrapped || cur.Cycle != 1 {
		t.Fatalf("full-store batch did not wrap: %+v", cur)
	}
	if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("store still dirty after ScrubStep heal: bad=%v err=%v", bad, err)
	}
}

func TestScrubStepEmptyAndStaleCursor(t *testing.T) {
	s := testStore(t)
	// Empty store: no-op, cursor pinned at origin.
	cur, rep, err := ScrubStep(s, Cursor{Next: 5}, 4, "")
	if err != nil || cur.Next != 0 || rep.End != rep.Start {
		t.Fatalf("empty store: cur=%+v rep=%+v err=%v", cur, rep, err)
	}
	// Stale cursor beyond a shrunken extent wraps to a fresh pass.
	fillStripes(t, s, 2, 3)
	cur, rep, err = ScrubStep(s, Cursor{Cycle: 4, Next: 99}, 4, "")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Cycle != 5 || cur.Next != 0 || !rep.Wrapped {
		t.Fatalf("stale cursor: cur=%+v rep=%+v", cur, rep)
	}
}
