package repair

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/layout"
)

// FuzzScrubCursor crash-tests the incremental scrub the way FuzzDiskRecovery
// crash-tests the file backend: corrupt a handful of cells, then drive
// ScrubStep with fuzz-chosen "daemon crashes" — at each crash the in-memory
// cursor is thrown away and reloaded from its file, while the store (the
// disks) keeps its state. Whatever the crash schedule:
//
//   - no stripe is skipped: after the reloaded cursor completes a full pass,
//     every corruption is healed and a full Scrub comes back clean;
//   - no stripe is double-healed: heals across all steps equal the number of
//     corrupted cells, because re-scrubbing the in-flight batch after a
//     crash finds already-healed stripes clean;
//   - the persisted batch ranges of the first pass tile [0, stripes) with
//     overlaps only at crash points, never gaps.
func FuzzScrubCursor(f *testing.F) {
	f.Add([]byte{0x00}, uint8(1))
	f.Add([]byte{0x13, 0x52, 0x07}, uint8(3))
	f.Add([]byte{0xff, 0x00, 0xa5, 0x3c, 0x77}, uint8(7))
	f.Add([]byte{0x21, 0x21, 0x21, 0x21, 0x21, 0x21, 0x21, 0x21}, uint8(5))

	f.Fuzz(func(t *testing.T, plan []byte, corruptions uint8) {
		const stripes = 11
		const batch = 2
		s := testStore(t)
		defer s.Close()
		data := fillStripes(t, s, stripes, 77)

		// Corrupt one cell in each of up to 8 distinct stripes — one per
		// stripe keeps every heal within any code tolerance.
		n := s.Scheme().N()
		rows := s.Scheme().Layout().Rows()
		want := int(corruptions) % 8
		for i := 0; i < want; i++ {
			stripe := (i*3 + int(corruptions)) % stripes
			pos := layout.Pos{Row: i % rows, Col: (i*5 + 1) % n}
			if err := s.CorruptCell(stripe, pos); err != nil {
				t.Fatal(err)
			}
		}

		path := filepath.Join(t.TempDir(), "scrub.cursor")
		cur, err := LoadCursor(path)
		if err != nil {
			t.Fatal(err)
		}
		healed := 0
		var ranges [][2]int // verified [start,end) in scrub order
		step := func() {
			next, rep, err := ScrubStep(s, cur, batch, path)
			if err != nil {
				t.Fatal(err)
			}
			healed += rep.Healed
			if rep.End > rep.Start {
				ranges = append(ranges, [2]int{rep.Start, rep.End})
			}
			cur = next
		}

		// The fuzz plan interleaves scrub batches with crashes: each byte
		// runs (b&7) batches, then crashes — the in-memory cursor is lost
		// and reloaded from disk, exactly a daemon restart.
		for _, b := range plan {
			for i := 0; i < int(b&7); i++ {
				step()
			}
			cur, err = LoadCursor(path)
			if err != nil {
				t.Fatalf("cursor reload after crash: %v", err)
			}
		}
		// Finish: run until two full passes complete, so the tail of the
		// first pass and one clean pass both happen whatever the plan did.
		for cur.Cycle < 2 {
			step()
		}

		if healed != want {
			t.Fatalf("healed %d cells across all steps, want exactly %d (skipped or double-healed)", healed, want)
		}
		if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
			t.Fatalf("final scrub: bad=%v err=%v", bad, err)
		}
		res, err := s.ReadAt(0, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Data, data) {
			t.Fatal("data changed across crash-interrupted scrubs")
		}

		// Coverage check: walking the recorded ranges in order, each one
		// starts at or before the furthest point seen (no gap), and the
		// union reaches the full extent at least twice (two passes).
		covered := 0 // stripes covered in the current pass
		passes := 0
		for _, r := range ranges {
			if r[0] > covered {
				t.Fatalf("coverage gap: batch starts at %d but pass only covered [0,%d)", r[0], covered)
			}
			if r[1] > covered {
				covered = r[1]
			}
			if covered >= stripes {
				passes++
				covered = 0
			}
		}
		if passes < 2 {
			t.Fatalf("completed %d full passes, want >= 2", passes)
		}
	})
}
