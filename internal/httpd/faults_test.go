package httpd

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// putTestObject stores a payload and returns it.
func putTestObject(t *testing.T, url, name string, size int) []byte {
	t.Helper()
	payload := make([]byte, size)
	rand.New(rand.NewSource(int64(size))).Read(payload)
	resp, _ := doReq(t, http.MethodPut, url+"/objects/"+name, payload)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	return payload
}

// TestFaultsPutGetRoundTrip: an installed plan reads back identically, and
// DELETE restores the zero plan.
func TestFaultsPutGetRoundTrip(t *testing.T) {
	ts, srv := newTestServer(t)
	plan := faultinject.Plan{
		Seed: 77,
		Policies: []faultinject.Policy{
			{Device: 1, Latency: 50 * time.Microsecond, ReadErrProb: 0.2},
			{Device: 4, StuckProb: 0.1, FailAfterOps: 500},
		},
	}
	blob, err := json.Marshal(plan)
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/faults", blob)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /faults status %d", resp.StatusCode)
	}
	if srv.store.FaultInjector() == nil {
		t.Fatal("PUT /faults did not install an injector on the store")
	}

	resp, body := doReq(t, http.MethodGet, ts.URL+"/faults", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /faults status %d", resp.StatusCode)
	}
	var got faultinject.Plan
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(plan)
	round, _ := json.Marshal(got)
	if !bytes.Equal(round, want) {
		t.Fatalf("round-trip changed the plan:\n%s\n%s", round, want)
	}

	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/faults", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /faults status %d", resp.StatusCode)
	}
	if srv.store.FaultInjector() != nil {
		t.Fatal("DELETE /faults left an injector installed")
	}
	_, body = doReq(t, http.MethodGet, ts.URL+"/faults", nil)
	got = faultinject.Plan{}
	if err := json.Unmarshal(body, &got); err != nil || got.Seed != 0 || len(got.Policies) != 0 {
		t.Fatalf("GET after DELETE = %s, want the zero plan", body)
	}
}

// TestFaultsRejectsInvalidPlan: malformed plans are 400s and install nothing.
func TestFaultsRejectsInvalidPlan(t *testing.T) {
	ts, srv := newTestServer(t)
	for name, blob := range map[string]string{
		"not json": `{"seed":`,
		"bad prob": `{"seed":1,"policies":[{"device":0,"read_err_prob":2}]}`,
	} {
		resp, _ := doReq(t, http.MethodPut, ts.URL+"/faults", []byte(blob))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if srv.store.FaultInjector() != nil {
		t.Fatal("invalid plan installed an injector")
	}
}

// TestGetReturns503WithRetryAfter: a plan pushing more devices into
// persistent errors than the code tolerates exhausts the read's retries —
// the GET must come back 503 with Retry-After, and clearing the plan must
// make the same GET succeed again (the failure was transient).
func TestGetReturns503WithRetryAfter(t *testing.T) {
	ts, srv := newTestServer(t)
	srv.store.SetRetryPolicy(200*time.Microsecond, 1)
	payload := putTestObject(t, ts.URL, "blob", 4096)

	// LRC(6,2,2) tolerates 3 erasures; error out 5 devices persistently.
	plan := faultinject.Plan{Seed: 9}
	for d := 0; d < 5; d++ {
		plan.Policies = append(plan.Policies, faultinject.Policy{Device: d, ReadErrProb: 1})
	}
	blob, _ := json.Marshal(plan)
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/faults", blob); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /faults status %d", resp.StatusCode)
	}

	resp, _ := doReq(t, http.MethodGet, ts.URL+"/objects/blob", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("GET under total outage: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 on exhausted retries is missing Retry-After")
	}

	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/faults", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /faults status %d", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/objects/blob", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET after clearing the plan: status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, payload) {
		t.Fatal("GET after clearing the plan returned wrong bytes")
	}
}

// deviceReads sums the store's per-device read counters — frozen counters
// across a GET prove the decoded cache served it.
func deviceReads(srv *Server) int {
	total := 0
	for d := 0; d < srv.store.Scheme().N(); d++ {
		total += srv.store.Device(d).Reads()
	}
	return total
}

// TestFaultPlanChangeInvalidatesCache: installing (or clearing) a plan must
// bump the store epoch so cached decoded reads are not served under the new
// fault regime.
func TestFaultPlanChangeInvalidatesCache(t *testing.T) {
	ts, srv := newTestServer(t)
	payload := putTestObject(t, ts.URL, "hot", 8192)

	read := func() {
		t.Helper()
		resp, body := doReq(t, http.MethodGet, ts.URL+"/objects/hot", nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
			t.Fatalf("GET status %d", resp.StatusCode)
		}
	}
	read() // fill the cache
	base := deviceReads(srv)
	read()
	if got := deviceReads(srv); got != base {
		t.Fatalf("cached GET still read %d cells from devices", got-base)
	}

	// A benign plan (pure latency, no errors) must still invalidate: the
	// next GET re-decodes under the plan rather than serving stale state.
	plan := faultinject.Plan{Seed: 3, Policies: []faultinject.Policy{{Device: 0, Latency: 10 * time.Microsecond}}}
	blob, _ := json.Marshal(plan)
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/faults", blob); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /faults status %d", resp.StatusCode)
	}
	read()
	if got := deviceReads(srv); got == base {
		t.Fatal("GET after plan install served the stale cache")
	}

	// Clearing the plan invalidates again, then the cache re-forms.
	base = deviceReads(srv)
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/faults", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE /faults status %d", resp.StatusCode)
	}
	read()
	if got := deviceReads(srv); got == base {
		t.Fatal("GET after plan clear served the stale cache")
	}
	base = deviceReads(srv)
	read()
	if got := deviceReads(srv); got != base {
		t.Fatal("cache did not re-form after the plan settled")
	}
}
