package httpd

import (
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rs"
	"repro/internal/store"
)

// scrape fetches and returns the /metrics text.
func scrape(t *testing.T, base string) string {
	t.Helper()
	resp, body := doReq(t, http.MethodGet, base+"/metrics", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q", ct)
	}
	return string(body)
}

// metricValue returns the value of the exactly-named series (name including
// its label block) in a scrape, or -1 if absent.
func metricValue(body, series string) float64 {
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				return -1
			}
			return v
		}
	}
	return -1
}

// histSnapshot is a scraped histogram series: cumulative bucket counts in
// bound order, plus sum and count.
type histSnapshot struct {
	les     []string
	buckets []float64
	sum     float64
	count   float64
}

// parseHist extracts one histogram series (by base name and label block,
// e.g. `{mode="normal"`) from a scrape. Bucket lines carry the le label
// appended to the series labels, so they are matched by prefix.
func parseHist(t *testing.T, body, name, labels string) histSnapshot {
	t.Helper()
	var h histSnapshot
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, name+"_bucket"+labels+",le=\""); ok {
			i := strings.Index(rest, `"} `)
			if i < 0 {
				t.Fatalf("malformed bucket line %q", line)
			}
			v, err := strconv.ParseFloat(rest[i+3:], 64)
			if err != nil {
				t.Fatalf("bucket value in %q: %v", line, err)
			}
			h.les = append(h.les, rest[:i])
			h.buckets = append(h.buckets, v)
		}
	}
	h.sum = metricValue(body, name+"_sum"+labels+"}")
	h.count = metricValue(body, name+"_count"+labels+"}")
	if len(h.buckets) == 0 || h.count < 0 {
		t.Fatalf("histogram %s%s absent from scrape", name, labels)
	}
	return h
}

// TestMetricsEndpointCountersMove drives the documented lifecycle — PUT, GET
// (cold), GET (cached), fail a disk, GET (degraded) — and asserts the scrape
// moves at every step.
func TestMetricsEndpointCountersMove(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := make([]byte, 20_000)
	rand.New(rand.NewSource(3)).Read(payload)
	doReq(t, http.MethodPut, ts.URL+"/objects/x", payload)

	doReq(t, http.MethodGet, ts.URL+"/objects/x", nil) // miss, fills cache
	doReq(t, http.MethodGet, ts.URL+"/objects/x", nil) // hit
	body := scrape(t, ts.URL)
	if v := metricValue(body, "ecfrm_httpd_cache_misses_total"); v < 1 {
		t.Fatalf("cache misses %v, want >= 1", v)
	}
	if v := metricValue(body, "ecfrm_httpd_cache_hits_total"); v < 1 {
		t.Fatalf("cache hits %v, want >= 1", v)
	}
	if v := metricValue(body, `ecfrm_store_reads_total{mode="normal"}`); v < 1 {
		t.Fatalf("normal store reads %v, want >= 1", v)
	}
	if v := metricValue(body, `ecfrm_disk_element_reads_total{disk="0"}`); v < 0 {
		t.Fatal("per-disk read counter missing from scrape")
	}
	var diskReads float64
	for d := 0; d < 10; d++ {
		diskReads += metricValue(body, fmt.Sprintf(`ecfrm_disk_element_reads_total{disk="%d"}`, d))
	}
	if diskReads <= 0 {
		t.Fatalf("summed per-disk reads %v, want > 0", diskReads)
	}
	lat := parseHist(t, body, "ecfrm_httpd_request_seconds", `{op="get"`)
	if lat.count < 2 {
		t.Fatalf("GET latency observations %v, want >= 2", lat.count)
	}

	epochBefore := metricValue(body, "ecfrm_store_epoch_invalidations_total")
	doReq(t, http.MethodPost, ts.URL+"/admin/fail?disk=1", nil)
	doReq(t, http.MethodGet, ts.URL+"/objects/x", nil) // degraded re-decode
	body = scrape(t, ts.URL)
	if v := metricValue(body, "ecfrm_store_epoch_invalidations_total"); v <= epochBefore {
		t.Fatalf("epoch invalidations %v did not move past %v", v, epochBefore)
	}
	if v := metricValue(body, `ecfrm_store_reads_total{mode="degraded"}`); v < 1 {
		t.Fatalf("degraded store reads %v, want >= 1", v)
	}
	deg := parseHist(t, body, "ecfrm_store_read_max_disk_load", `{mode="degraded"`)
	if deg.count < 1 {
		t.Fatal("degraded max-load histogram empty after degraded GET")
	}
}

func TestHeadObject(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := make([]byte, 12_345)
	rand.New(rand.NewSource(4)).Read(payload)
	doReq(t, http.MethodPut, ts.URL+"/objects/h", payload)

	resp, body := doReq(t, http.MethodHead, ts.URL+"/objects/h", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HEAD status %d", resp.StatusCode)
	}
	if len(body) != 0 {
		t.Fatalf("HEAD returned %d body bytes", len(body))
	}
	if got := resp.Header.Get("Content-Length"); got != "12345" {
		t.Fatalf("Content-Length %q, want 12345", got)
	}
	if got := resp.Header.Get("X-Read-Cost"); got != "1.000" {
		t.Fatalf("X-Read-Cost %q, want 1.000", got)
	}
	if resp.Header.Get("X-Max-Disk-Load") == "" {
		t.Fatal("missing X-Max-Disk-Load")
	}
	// Metadata only: planning must not have read a single element. Nothing
	// but the PUT and the HEAD has touched the store, so every per-disk read
	// counter must still be zero.
	b := scrape(t, ts.URL)
	var sum float64
	for d := 0; d < 10; d++ {
		sum += metricValue(b, fmt.Sprintf(`ecfrm_disk_element_reads_total{disk="%d"}`, d))
	}
	if sum != 0 {
		t.Fatalf("HEAD read %v elements from disks, want 0", sum)
	}

	if resp, _ := doReq(t, http.MethodHead, ts.URL+"/objects/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing HEAD status %d", resp.StatusCode)
	}

	// Degraded planning shows up in the headers without any decode.
	doReq(t, http.MethodPost, ts.URL+"/admin/fail?disk=0", nil)
	resp, _ = doReq(t, http.MethodHead, ts.URL+"/objects/h", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded HEAD status %d", resp.StatusCode)
	}
	cost, err := strconv.ParseFloat(resp.Header.Get("X-Read-Cost"), 64)
	if err != nil || cost < 1 {
		t.Fatalf("degraded X-Read-Cost %q", resp.Header.Get("X-Read-Cost"))
	}
}

// TestMaxLoadDistributionECFRMBeatsStandard is the acceptance check for the
// paper's claim, observed live through /metrics: identical uniform GET
// traffic against an ecfrm-form store and a standard-form store (same
// RS(6,2) code, same objects), then the scraped max-disk-load distributions
// compared. The ecfrm distribution must stochastically dominate (every
// cumulative bucket at least as full) and be strictly better in total.
func TestMaxLoadDistributionECFRMBeatsStandard(t *testing.T) {
	const elemSize = 64
	run := func(form layout.Form) histSnapshot {
		scheme := core.MustScheme(rs.Must(6, 2), form)
		srv := NewServer(store.MustNew(scheme, elemSize))
		ts := httptest.NewServer(srv)
		defer ts.Close()

		// Uniform traffic: objects spanning 1..12 elements, two of each
		// size, each fetched exactly once. Element-sized payload units keep
		// the two stores' request boundaries identical.
		rng := rand.New(rand.NewSource(7))
		for size := 1; size <= 12; size++ {
			for copyN := 0; copyN < 2; copyN++ {
				payload := make([]byte, size*elemSize)
				rng.Read(payload)
				name := fmt.Sprintf("o-%d-%d", size, copyN)
				resp, body := doReq(t, http.MethodPut, ts.URL+"/objects/"+name, payload)
				if resp.StatusCode != http.StatusCreated {
					t.Fatalf("%s: PUT %s: %d %s", form, name, resp.StatusCode, body)
				}
			}
		}
		for size := 1; size <= 12; size++ {
			for copyN := 0; copyN < 2; copyN++ {
				name := fmt.Sprintf("o-%d-%d", size, copyN)
				resp, _ := doReq(t, http.MethodGet, ts.URL+"/objects/"+name, nil)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("%s: GET %s: %d", form, name, resp.StatusCode)
				}
			}
		}
		return parseHist(t, scrape(t, ts.URL), "ecfrm_store_read_max_disk_load", `{mode="normal"`)
	}

	ec := run(layout.FormECFRM)
	std := run(layout.FormStandard)

	if ec.count != std.count {
		t.Fatalf("traffic mismatch: ecfrm observed %v reads, standard %v", ec.count, std.count)
	}
	if ec.count != 24 {
		t.Fatalf("observed %v reads, want 24", ec.count)
	}
	// Stochastic dominance: at every bucket bound, at least as many ecfrm
	// requests stayed at or below the load.
	if len(ec.buckets) != len(std.buckets) {
		t.Fatalf("bucket layouts differ: %v vs %v", ec.les, std.les)
	}
	for i := range ec.buckets {
		if ec.buckets[i] < std.buckets[i] {
			t.Fatalf("ecfrm CDF below standard at le=%s: %v < %v (ecfrm %+v, std %+v)",
				ec.les[i], ec.buckets[i], std.buckets[i], ec, std)
		}
	}
	// And strictly better overall: lower total max-load across the same
	// request sequence (the paper's claim, measured live).
	if ec.sum >= std.sum {
		t.Fatalf("ecfrm total max-load %v not strictly below standard %v", ec.sum, std.sum)
	}
}
