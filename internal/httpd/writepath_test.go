package httpd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/store"
)

// newWriteTestServer builds a server whose WAL config the test controls.
func newWriteTestServer(t *testing.T, cfg Config) (*httptest.Server, *Server, *store.Store) {
	t.Helper()
	scheme := core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	st := store.MustNew(scheme, 256)
	srv := NewServerWith(st, cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return ts, srv, st
}

// TestPutPacksConcurrentSmallObjects: concurrent small PUTs through the full
// HTTP path must share stripes — the store seals far fewer stripes than the
// old one-object-one-stripe path would — and every object reads back intact.
func TestPutPacksConcurrentSmallObjects(t *testing.T) {
	ts, srv, st := newWriteTestServer(t, Config{})
	objects := 48
	obj := func(i int) []byte { return bytes.Repeat([]byte{byte(i + 1)}, 200) }

	var wg sync.WaitGroup
	for i := 0; i < objects; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := doReq(t, http.MethodPut, fmt.Sprintf("%s/objects/o%d", ts.URL, i), obj(i))
			if resp.StatusCode != http.StatusCreated {
				t.Errorf("put o%d: %d %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()
	if err := srv.WAL().Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if got := st.Stripes(); got >= objects {
		t.Fatalf("%d objects sealed %d stripes; group commit should pack them into fewer", objects, got)
	}
	for i := 0; i < objects; i++ {
		resp, body := doReq(t, http.MethodGet, fmt.Sprintf("%s/objects/o%d", ts.URL, i), nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, obj(i)) {
			t.Fatalf("get o%d: %d, %d bytes", i, resp.StatusCode, len(body))
		}
	}
}

// TestPutFaulted503ThenRetrySucceeds is the write-fault regression: a PUT
// whose group commit trips the injector must return 503 with Retry-After and
// release its name reservation; after the plan clears, the retry succeeds
// and the WAL's retained bytes are still exactly-once in the store.
func TestPutFaulted503ThenRetrySucceeds(t *testing.T) {
	// A short interval lets the WAL's own retry timer drive both the faulted
	// attempt and the post-clear recovery — no manual flushing.
	ts, srv, st := newWriteTestServer(t, Config{WAL: store.WALConfig{FlushInterval: time.Millisecond}})
	st.SetRetryPolicy(200*time.Microsecond, 2)

	// Deterministic plan: device 3 fails every write. Installed through the
	// HTTP surface so the whole fault path is end-to-end.
	plan := `{"seed": 42, "policies": [{"device": 3, "write_err_prob": 1}]}`
	resp, body := doReq(t, http.MethodPut, ts.URL+"/faults", []byte(plan))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("install plan: %d %s", resp.StatusCode, body)
	}

	payload := bytes.Repeat([]byte{0xcd}, 300)
	resp, _ = doReq(t, http.MethodPut, ts.URL+"/objects/hot", payload)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("faulted put: %d; want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("faulted put missing Retry-After")
	}
	// The reservation is gone (404, not a half-visible object) but the WAL
	// keeps the bytes queued for the next batch.
	if r, _ := doReq(t, http.MethodGet, ts.URL+"/objects/hot", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("uncommitted object visible: %d", r.StatusCode)
	}
	if n, _ := srv.WAL().Depth(); n != 1 {
		t.Fatalf("wal retained %d entries; want 1", n)
	}

	// Clear the plan; the retry claims the freed name and commits — along
	// with the retained first attempt, which becomes an orphaned extent.
	if r, _ := doReq(t, http.MethodDelete, ts.URL+"/faults", nil); r.StatusCode != http.StatusOK {
		t.Fatal("clear plan failed")
	}
	resp, body = doReq(t, http.MethodPut, ts.URL+"/objects/hot", payload)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("retry put: %d %s", resp.StatusCode, body)
	}
	resp, body = doReq(t, http.MethodGet, ts.URL+"/objects/hot", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("get after retry: %d, %d bytes", resp.StatusCode, len(body))
	}
	// Parity must be consistent after the fault/retry dance.
	resp, body = doReq(t, http.MethodPost, ts.URL+"/admin/scrub", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub: %d", resp.StatusCode)
	}
	var scrub struct {
		Corrupt []int `json:"corrupt_stripes"`
	}
	if err := json.Unmarshal(body, &scrub); err != nil || len(scrub.Corrupt) != 0 {
		t.Fatalf("scrub after faulted commit: %s (err %v)", body, err)
	}
}

// TestPutDuplicateConflictsWhilePending: the 409 contract holds even while
// the first PUT is still waiting for its group commit, and the pending
// object stays invisible to GET/HEAD until the ack.
func TestPutDuplicateConflictsWhilePending(t *testing.T) {
	ts, srv, _ := newWriteTestServer(t, Config{WAL: store.WALConfig{FlushInterval: time.Hour}})
	payload := bytes.Repeat([]byte{7}, 100)

	done := make(chan *http.Response, 1)
	go func() {
		r, _ := doReq(t, http.MethodPut, ts.URL+"/objects/dup", payload)
		done <- r
	}()
	waitDepth(t, srv, 1)

	if r, _ := doReq(t, http.MethodPut, ts.URL+"/objects/dup", payload); r.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate put while pending: %d; want 409", r.StatusCode)
	}
	if r, _ := doReq(t, http.MethodGet, ts.URL+"/objects/dup", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("pending object visible to GET: %d", r.StatusCode)
	}
	if r, _ := doReq(t, http.MethodHead, ts.URL+"/objects/dup", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("pending object visible to HEAD: %d", r.StatusCode)
	}

	if err := srv.WAL().Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if r := <-done; r.StatusCode != http.StatusCreated {
		t.Fatalf("first put after sync: %d", r.StatusCode)
	}
	if r, body := doReq(t, http.MethodGet, ts.URL+"/objects/dup", nil); r.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatalf("get after commit: %d", r.StatusCode)
	}
	if r, _ := doReq(t, http.MethodPut, ts.URL+"/objects/dup", payload); r.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate put after commit: %d; want 409", r.StatusCode)
	}
}

// TestPutAfterCloseUnavailable: a drained server refuses writes with 503.
func TestPutAfterCloseUnavailable(t *testing.T) {
	ts, srv, _ := newWriteTestServer(t, Config{})
	if err := srv.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	resp, _ := doReq(t, http.MethodPut, ts.URL+"/objects/late", []byte("x"))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("put after close: %d; want 503", resp.StatusCode)
	}
}

// waitDepth polls until the WAL holds n queued objects.
func waitDepth(t *testing.T, srv *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got, _ := srv.WAL().Depth(); got == n {
			return
		}
		if time.Now().After(deadline) {
			got, _ := srv.WAL().Depth()
			t.Fatalf("wal depth %d; want %d", got, n)
		}
		time.Sleep(200 * time.Microsecond)
	}
}
