// Package httpd exposes the erasure-coded blob store as an HTTP object
// service — the "cloud storage system" face of the reproduction. Objects are
// PUT once (append-only, matching the paper's write model) and GET any
// number of times; reads degrade transparently under injected disk failures,
// and an admin surface drives failure injection, recovery, scrubbing, and
// I/O statistics.
//
//	PUT  /objects/{name}         store the request body as an object; the
//	                             response acks only after the WAL's group
//	                             commit makes the bytes durable, so many
//	                             concurrent small PUTs pack into shared
//	                             stripes instead of sealing one each
//	GET  /objects/{name}         read it back (degraded reads transparent)
//	                             ?sequential=1     use the sequential executor
//	                             ?concurrency=N    bound fan-out worker count
//	                             ?hedge=1|0        enable/disable hedged reads
//	                             ?nocache=1        bypass the decoded cache
//	HEAD /objects/{name}         metadata only: Content-Length, X-Read-Cost,
//	                             X-Max-Disk-Load from the plan — no decode
//	GET  /metrics                Prometheus text exposition (see internal/obs)
//	GET  /debug/pprof/*          net/http/pprof (opt-in via Config.EnablePprof)
//	GET  /admin/status           scheme, stripes, failures, device counters
//	POST /admin/fail?disk=D      mark device D failed
//	POST /admin/recover?disk=D   rebuild device D from survivors
//	POST /admin/scrub            verify parity of every stripe
//	GET  /admin/checksums        re-check every cell's CRC32C
//	POST /admin/corrupt?...      inject silent bit rot into one cell
//	GET  /faults                 the installed fault plan (zero plan if none)
//	PUT  /faults                 install a deterministic fault plan (JSON)
//	DELETE /faults               clear the fault plan
//
// Reads that exhaust their retry budget against slow or erroring devices
// surface as 503 with a Retry-After header: the condition is transient by
// construction (a cleared plan or a healthier disk serves the next attempt),
// unlike unrecoverable degradation which is also 503 but permanent until an
// admin intervenes.
//
// All handlers are safe for concurrent use. Locking is sharded so
// independent GETs plan and decode in parallel: the server holds only a
// small lock around the object-name map (PUTs take it just long enough to
// reserve the name, never across store I/O), each object carries its own
// mutex (which doubles as single-flight for cache fills), and the store
// synchronizes device access internally with shared-read locking and atomic
// I/O counters. PUTs whose group commit trips the fault injector get 503
// with Retry-After — the WAL keeps their bytes queued for the next batch,
// and the name reservation is released so the retry can claim it. Hot objects are served from an epoch-tagged decoded-payload
// cache that failure injection, recovery, corruption, and healing all
// invalidate by bumping the store epoch.
package httpd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/layout"
	"repro/internal/obs"
	"repro/internal/store"
)

// Cache sizing: only objects at most maxCachedObjectBytes are cached, and
// the total cached payload across all objects stays under cacheBudgetBytes.
const (
	maxCachedObjectBytes = 4 << 20
	cacheBudgetBytes     = 64 << 20
)

// objectMeta locates one object inside the append-only store.
type objectMeta struct {
	Off  int64 `json:"off"`
	Size int   `json:"size"`
}

// cachedRead is one decoded GET result, valid while the store epoch holds.
type cachedRead struct {
	epoch   int64
	data    []byte
	cost    float64
	maxLoad int
}

// object is one stored object: immutable metadata plus a small cache of its
// last decoded read. The mutex single-flights cache fills, so a burst of
// GETs for one hot object decodes it once; GETs for different objects never
// contend on it.
//
// An object enters the map as a name reservation before its bytes are
// durable: committed flips true (with release semantics, after meta is set)
// only when the WAL's group commit acks the PUT. Readers that observe
// committed==false treat the name as absent; the PUT handler deletes the
// reservation if the commit fails, so the name frees up for a retry.
type object struct {
	meta      objectMeta
	committed atomic.Bool
	mu        sync.Mutex
	cache     *cachedRead
}

// Server is the HTTP object service.
type Server struct {
	store *store.Store
	wal   *store.WAL
	mux   *http.ServeMux

	// mu guards only the objects map; per-object state has its own lock.
	mu      sync.RWMutex
	objects map[string]*object

	// faultMu guards the fault plan mirrored here for /faults GET round-trips
	// (the compiled injector lives in the store).
	faultMu   sync.Mutex
	faultPlan faultinject.Plan

	// cacheBytes tracks the total decoded payload bytes currently cached.
	cacheBytes atomic.Int64

	// draining flips when Close starts shutting the write path down:
	// /healthz keeps answering (the process lives) but /readyz fails, so
	// probers and gateways stop routing new work here.
	draining atomic.Bool

	// Observability (see internal/obs): the registry backing GET /metrics,
	// cache hit/miss counters, and per-op request latency histograms.
	reg         *obs.Registry
	cacheHits   *obs.Counter
	cacheMisses *obs.Counter
	latGet      *obs.Histogram
	latPut      *obs.Histogram
	latHead     *obs.Histogram
}

// Config tunes optional server behaviour.
type Config struct {
	// Registry receives the server's (and, via store.SetMetrics, the
	// store's) metrics. Nil creates a private registry; either way GET
	// /metrics serves it.
	Registry *obs.Registry
	// EnablePprof mounts net/http/pprof under /debug/pprof/. Off by
	// default: profiling endpoints on a storage port are opt-in.
	EnablePprof bool
	// WAL tunes the group-commit write path (batch threshold and flush
	// interval); the zero value uses the store defaults of one stripe and
	// store.DefaultFlushInterval.
	WAL store.WALConfig
}

// requestBuckets spans 100µs to ~25s exponentially — tight enough to
// resolve cache hits, wide enough for degraded reads under injected latency.
var requestBuckets = obs.ExpBuckets(1e-4, 4, 9)

// NewServer wraps a store (callers construct it with the scheme and element
// size they want) with default Config.
func NewServer(st *store.Store) *Server { return NewServerWith(st, Config{}) }

// NewServerWith wraps a store with explicit observability configuration.
func NewServerWith(st *store.Store, cfg Config) *Server {
	s := &Server{store: st, objects: make(map[string]*object)}
	// A plan installed before the server existed (ecfrmd -faults) still
	// round-trips through GET /faults.
	if in, ok := st.FaultInjector().(*faultinject.Injector); ok {
		s.faultPlan = in.Plan()
	}
	s.reg = cfg.Registry
	if s.reg == nil {
		s.reg = obs.NewRegistry()
	}
	// Wire the store's bundle into the same registry unless something
	// upstream (the daemon, a test) already installed one.
	if st.Metrics() == nil {
		st.SetMetrics(store.NewMetrics(s.reg, st.Scheme().N()))
	}
	s.wal = store.NewWAL(st, cfg.WAL)
	s.cacheHits = s.reg.Counter("ecfrm_httpd_cache_hits_total",
		"Object GETs served from the decoded-read cache.")
	s.cacheMisses = s.reg.Counter("ecfrm_httpd_cache_misses_total",
		"Object GETs that had to decode from the store.")
	s.latGet = s.reg.Histogram("ecfrm_httpd_request_seconds",
		"Object request latency by operation.", requestBuckets, obs.L("op", "get"))
	s.latPut = s.reg.Histogram("ecfrm_httpd_request_seconds",
		"Object request latency by operation.", requestBuckets, obs.L("op", "put"))
	s.latHead = s.reg.Histogram("ecfrm_httpd_request_seconds",
		"Object request latency by operation.", requestBuckets, obs.L("op", "head"))
	s.reg.GaugeFunc("ecfrm_httpd_cached_bytes",
		"Decoded payload bytes currently cached.",
		func() float64 { return float64(s.cacheBytes.Load()) })
	s.reg.GaugeFunc("ecfrm_httpd_objects",
		"Objects stored.",
		func() float64 {
			s.mu.RLock()
			defer s.mu.RUnlock()
			return float64(len(s.objects))
		})

	mux := http.NewServeMux()
	mux.HandleFunc("/objects/", s.handleObject)
	mux.HandleFunc("/admin/status", s.handleStatus)
	mux.HandleFunc("/admin/fail", s.handleFail)
	mux.HandleFunc("/admin/recover", s.handleRecover)
	mux.HandleFunc("/admin/scrub", s.handleScrub)
	mux.HandleFunc("/admin/checksums", s.handleChecksums)
	mux.HandleFunc("/admin/corrupt", s.handleCorrupt)
	mux.HandleFunc("/faults", s.handleFaults)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.Handle("/metrics", s.reg.Handler())
	if cfg.EnablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux = mux
	return s
}

// Registry returns the registry behind GET /metrics, so embedding callers
// (the daemons) can add their own instruments to the same scrape.
func (s *Server) Registry() *obs.Registry { return s.reg }

// WAL exposes the server's group-commit write path (tests and benchmarks
// inspect its depth and log).
func (s *Server) WAL() *store.WAL { return s.wal }

// Close drains and shuts down the write path: queued PUTs are committed,
// then further PUTs fail with 503. /readyz starts failing immediately so
// load balancers and smoke scripts see the drain. Call after the HTTP
// listener stops accepting requests.
func (s *Server) Close() error {
	s.draining.Store(true)
	return s.wal.Close()
}

// handleHealthz is the liveness probe: 200 whenever the process serves HTTP,
// draining or not.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ok\n")
}

// handleReadyz is the readiness probe: 200 while the server accepts new
// work, 503 once Close has started draining it.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if s.draining.Load() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, "ready\n")
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/objects/")
	if name == "" || strings.Contains(name, "/") {
		http.Error(w, "bad object name", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		defer obs.StartSpan(s.latPut).End()
		s.putObject(w, r, name)
	case http.MethodGet:
		defer obs.StartSpan(s.latGet).End()
		s.getObject(w, r, name)
	case http.MethodHead:
		defer obs.StartSpan(s.latHead).End()
		s.headObject(w, r, name)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) putObject(w http.ResponseWriter, r *http.Request, name string) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if len(body) == 0 {
		http.Error(w, "empty object", http.StatusBadRequest)
		return
	}
	// The map lock is held only to reserve the name — never across store
	// I/O — so concurrent PUTs for different objects proceed in parallel
	// and share group commits instead of serializing behind one another.
	// The reservation itself preserves the append-only contract: a second
	// PUT for the same name sees the entry (committed or not) and gets 409.
	obj := &object{}
	s.mu.Lock()
	if _, exists := s.objects[name]; exists {
		s.mu.Unlock()
		http.Error(w, "object exists (store is append-only)", http.StatusConflict)
		return
	}
	s.objects[name] = obj
	s.mu.Unlock()

	// Queue into the WAL and wait for the group commit that makes the
	// bytes durable. Many concurrent PUTs pack into shared stripes here.
	off, err := s.wal.Put(r.Context(), body)
	if err != nil {
		// The commit failed or the client gave up: free the name so a
		// retry can claim it. Fault-aborted commits are transient by
		// construction (the WAL retains its queue and retries), so steer
		// the client back just like degraded reads do.
		s.mu.Lock()
		delete(s.objects, name)
		s.mu.Unlock()
		switch {
		case errors.Is(err, store.ErrUnavailable):
			w.Header().Set("Retry-After", "1")
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case errors.Is(err, store.ErrWALClosed):
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
		case r.Context().Err() != nil:
			// Client disconnected while waiting for the ack; its entry may
			// still commit, but nobody is listening for the outcome.
			http.Error(w, err.Error(), 499)
		default:
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	obj.meta = objectMeta{Off: off, Size: len(body)}
	obj.committed.Store(true) // publish: readers load-acquire this flag
	w.WriteHeader(http.StatusCreated)
	fmt.Fprintf(w, "stored %d bytes at offset %d\n", len(body), off)
}

// lookup fetches an object's handle under the shared map lock. Names whose
// PUT has not yet group-committed are reservations, not objects: callers see
// them as absent.
func (s *Server) lookup(name string) (*object, bool) {
	s.mu.RLock()
	obj, ok := s.objects[name]
	s.mu.RUnlock()
	if !ok || !obj.committed.Load() {
		return nil, false
	}
	return obj, true
}

// parseReadOptions derives per-request executor options from query
// parameters, starting from the store's installed defaults. It reports
// whether the request also asked to bypass the decoded-payload cache.
func (s *Server) parseReadOptions(r *http.Request) (opts store.ReadOptions, nocache bool) {
	opts = s.store.ReadDefaults()
	q := r.URL.Query()
	if v := q.Get("sequential"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			opts.Sequential = b
		}
	}
	if v := q.Get("concurrency"); v != "" {
		if c, err := strconv.Atoi(v); err == nil && c > 0 {
			opts.Concurrency = c
		}
	}
	if v := q.Get("hedge"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			opts.Hedge.Enabled = b
		}
	}
	if v := q.Get("nocache"); v != "" {
		if b, err := strconv.ParseBool(v); err == nil {
			nocache = b
		}
	}
	return opts, nocache
}

func (s *Server) getObject(w http.ResponseWriter, r *http.Request, name string) {
	obj, ok := s.lookup(name)
	if !ok {
		http.Error(w, "no such object", http.StatusNotFound)
		return
	}
	opts, nocache := s.parseReadOptions(r)
	data, cost, maxLoad, err := s.readObject(r.Context(), obj, opts, nocache)
	if err != nil {
		// Both flavors of degradation are availability failures, but
		// exhausted retries against slow/erroring devices are transient:
		// tell the client when to come back.
		if errors.Is(err, store.ErrUnavailable) {
			w.Header().Set("Retry-After", "1")
		}
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Read-Cost", fmt.Sprintf("%.3f", cost))
	w.Header().Set("X-Max-Disk-Load", strconv.Itoa(maxLoad))
	w.Write(data)
}

// headObject serves object metadata without decoding or transferring the
// payload: the size from the object map and the cost/max-load a GET would
// incur, computed by planning the read without touching any device.
func (s *Server) headObject(w http.ResponseWriter, _ *http.Request, name string) {
	obj, ok := s.lookup(name)
	if !ok {
		// No http.Error: HEAD responses carry no body.
		w.WriteHeader(http.StatusNotFound)
		return
	}
	plan, err := s.store.PlanRead(obj.meta.Off, obj.meta.Size)
	if err != nil {
		w.WriteHeader(http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(obj.meta.Size))
	w.Header().Set("X-Read-Cost", fmt.Sprintf("%.3f", plan.Cost()))
	w.Header().Set("X-Max-Disk-Load", strconv.Itoa(plan.MaxLoad()))
	w.WriteHeader(http.StatusOK)
}

// readObject returns the object's decoded payload, serving from the
// epoch-tagged cache when valid and filling it otherwise. The per-object
// mutex is held only for the decode, never while writing the response, and
// cached payloads are immutable once published. The context cancels device
// waits when the client disconnects; nocache requests neither consult nor
// fill the cache (latency benchmarking must hit the executor every time).
func (s *Server) readObject(ctx context.Context, obj *object, opts store.ReadOptions, nocache bool) ([]byte, float64, int, error) {
	obj.mu.Lock()
	defer obj.mu.Unlock()
	epoch := s.store.Epoch()
	if c := obj.cache; c != nil {
		if c.epoch == epoch && !nocache {
			s.cacheHits.Inc()
			return c.data, c.cost, c.maxLoad, nil
		}
		if c.epoch != epoch {
			// Stale: drop it and release its budget before re-reading.
			s.cacheBytes.Add(-int64(len(c.data)))
			obj.cache = nil
		}
	}
	s.cacheMisses.Inc()
	res, err := s.store.ReadAtCtx(ctx, obj.meta.Off, obj.meta.Size, opts)
	if err != nil {
		return nil, 0, 0, err
	}
	cost, maxLoad := res.Plan.Cost(), res.Plan.MaxLoad()
	// Cache small objects while the budget lasts. A healing read bumps the
	// epoch itself, so re-check: only results still current are cacheable.
	if !nocache && obj.meta.Size <= maxCachedObjectBytes && s.store.Epoch() == epoch && res.Healed == 0 &&
		s.cacheBytes.Load()+int64(len(res.Data)) <= cacheBudgetBytes {
		obj.cache = &cachedRead{epoch: epoch, data: res.Data, cost: cost, maxLoad: maxLoad}
		s.cacheBytes.Add(int64(len(res.Data)))
	}
	return res.Data, cost, maxLoad, nil
}

// Status is the admin status document.
type Status struct {
	Scheme         string  `json:"scheme"`
	Disks          int     `json:"disks"`
	FaultTolerance int     `json:"fault_tolerance"`
	Overhead       float64 `json:"storage_overhead"`
	Stripes        int     `json:"stripes"`
	Bytes          int64   `json:"bytes"`
	Objects        int     `json:"objects"`
	FailedDisks    []int   `json:"failed_disks"`
	DeviceReads    []int   `json:"device_reads"`
	DeviceWrites   []int   `json:"device_writes"`
	CachedBytes    int64   `json:"cached_bytes"`
	WALQueued      int     `json:"wal_queued_objects"`
	WALQueuedBytes int     `json:"wal_queued_bytes"`
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	s.mu.RLock()
	objects := len(s.objects)
	s.mu.RUnlock()
	sch := s.store.Scheme()
	st := Status{
		Scheme:         sch.Name(),
		Disks:          sch.N(),
		FaultTolerance: sch.FaultTolerance(),
		Overhead:       sch.StorageOverhead(),
		Stripes:        s.store.Stripes(),
		Bytes:          s.store.Len(),
		Objects:        objects,
		FailedDisks:    s.store.FailedDisks(),
		CachedBytes:    s.cacheBytes.Load(),
	}
	st.WALQueued, st.WALQueuedBytes = s.wal.Depth()
	for d := 0; d < sch.N(); d++ {
		st.DeviceReads = append(st.DeviceReads, s.store.Device(d).Reads())
		st.DeviceWrites = append(st.DeviceWrites, s.store.Device(d).Writes())
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(st)
}

func (s *Server) diskParam(w http.ResponseWriter, r *http.Request) (int, bool) {
	d, err := strconv.Atoi(r.URL.Query().Get("disk"))
	if err != nil || d < 0 || d >= s.store.Scheme().N() {
		http.Error(w, "bad or missing disk parameter", http.StatusBadRequest)
		return 0, false
	}
	return d, true
}

func (s *Server) handleFail(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	d, ok := s.diskParam(w, r)
	if !ok {
		return
	}
	// The tolerance check and the mark are one atomic store operation, so
	// concurrent fail requests cannot race past the fault tolerance.
	if !s.store.FailDiskWithinTolerance(d) {
		http.Error(w, fmt.Sprintf("refusing: %d failures already at tolerance", len(s.store.FailedDisks())),
			http.StatusConflict)
		return
	}
	fmt.Fprintf(w, "disk %d failed\n", d)
}

func (s *Server) handleRecover(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	d, ok := s.diskParam(w, r)
	if !ok {
		return
	}
	cost, err := s.store.RecoverDisk(d)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, core.ErrUnrecoverable) {
			status = http.StatusServiceUnavailable
		}
		http.Error(w, err.Error(), status)
		return
	}
	fmt.Fprintf(w, "disk %d recovered, %d elements read\n", d, cost)
}

// handleChecksums re-verifies every stored cell's CRC and reports failures.
func (s *Server) handleChecksums(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	bad := s.store.VerifyChecksums()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"corrupt_cells": bad, "count": len(bad)})
}

// handleCorrupt injects silent bit rot into one stored cell — a failure-
// injection hook for demos and tests (the read path will heal it).
func (s *Server) handleCorrupt(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	stripe, err1 := strconv.Atoi(q.Get("stripe"))
	row, err2 := strconv.Atoi(q.Get("row"))
	col, err3 := strconv.Atoi(q.Get("col"))
	if err1 != nil || err2 != nil || err3 != nil {
		http.Error(w, "corrupt requires stripe, row, col", http.StatusBadRequest)
		return
	}
	lay := s.store.Scheme().Layout()
	if stripe < 0 || stripe >= s.store.Stripes() ||
		row < 0 || row >= lay.Rows() || col < 0 || col >= lay.N() {
		http.Error(w, "cell out of range", http.StatusBadRequest)
		return
	}
	if err := s.store.CorruptCell(stripe, layout.Pos{Row: row, Col: col}); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	fmt.Fprintf(w, "corrupted stripe %d cell (%d,%d)\n", stripe, row, col)
}

// handleFaults drives the deterministic fault-injection subsystem: PUT
// installs a validated plan (compiling it into the store's injector and
// bumping the store epoch, which invalidates every decoded-read cache), GET
// round-trips the installed plan, DELETE clears it.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.faultMu.Lock()
		plan := s.faultPlan
		s.faultMu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(plan)
	case http.MethodPut:
		body, err := io.ReadAll(r.Body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		plan, err := faultinject.ParsePlan(body)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		s.faultMu.Lock()
		s.faultPlan = plan
		s.store.SetFaultInjector(faultinject.New(plan))
		s.faultMu.Unlock()
		fmt.Fprintf(w, "fault plan installed: seed %d, %d policies\n", plan.Seed, len(plan.Policies))
	case http.MethodDelete:
		s.faultMu.Lock()
		s.faultPlan = faultinject.Plan{}
		s.store.SetFaultInjector(nil)
		s.faultMu.Unlock()
		fmt.Fprintln(w, "fault plan cleared")
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

func (s *Server) handleScrub(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	bad, err := s.store.Scrub()
	if err != nil {
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"corrupt_stripes": bad})
}
