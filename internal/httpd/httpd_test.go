package httpd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/store"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	scheme := core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
	srv := NewServer(store.MustNew(scheme, 256))
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, srv
}

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	var rdr io.Reader
	if body != nil {
		rdr = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func TestPutGetRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := make([]byte, 10_000)
	rand.New(rand.NewSource(1)).Read(payload)

	resp, _ := doReq(t, http.MethodPut, ts.URL+"/objects/song.mp3", payload)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("PUT status %d", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/objects/song.mp3", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, payload) {
		t.Fatal("payload mismatch")
	}
	if resp.Header.Get("X-Read-Cost") != "1.000" {
		t.Fatalf("read cost header %q, want 1.000", resp.Header.Get("X-Read-Cost"))
	}
	if resp.Header.Get("X-Max-Disk-Load") == "" {
		t.Fatal("missing max-load header")
	}
}

func TestObjectErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/objects/missing", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing GET status %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/objects/empty", []byte{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty PUT status %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/objects/", []byte("x")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless PUT status %d", resp.StatusCode)
	}
	if resp, _ := doReq(t, http.MethodDelete, ts.URL+"/objects/x", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d", resp.StatusCode)
	}
	// Duplicate PUT conflicts (append-only).
	doReq(t, http.MethodPut, ts.URL+"/objects/dup", []byte("abc"))
	if resp, _ := doReq(t, http.MethodPut, ts.URL+"/objects/dup", []byte("xyz")); resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate PUT status %d", resp.StatusCode)
	}
}

func TestDegradedReadThroughFailures(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := make([]byte, 40_000)
	rand.New(rand.NewSource(2)).Read(payload)
	doReq(t, http.MethodPut, ts.URL+"/objects/data", payload)

	// Fail three disks (the LRC(6,2,2) tolerance).
	for _, d := range []int{0, 4, 9} {
		resp, body := doReq(t, http.MethodPost, fmt.Sprintf("%s/admin/fail?disk=%d", ts.URL, d), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fail disk %d: %d %s", d, resp.StatusCode, body)
		}
	}
	// A fourth failure must be refused.
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/admin/fail?disk=5", nil); resp.StatusCode != http.StatusConflict {
		t.Fatalf("over-tolerance fail status %d", resp.StatusCode)
	}
	resp, body := doReq(t, http.MethodGet, ts.URL+"/objects/data", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded GET status %d", resp.StatusCode)
	}
	if !bytes.Equal(body, payload) {
		t.Fatal("degraded payload mismatch")
	}
	if resp.Header.Get("X-Read-Cost") <= "1.000" && resp.Header.Get("X-Read-Cost") != "1.000" {
		t.Fatalf("degraded read cost header %q", resp.Header.Get("X-Read-Cost"))
	}
	// Recover all three and scrub.
	for _, d := range []int{0, 4, 9} {
		resp, body := doReq(t, http.MethodPost, fmt.Sprintf("%s/admin/recover?disk=%d", ts.URL, d), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("recover disk %d: %d %s", d, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "elements read") {
			t.Fatalf("recover body %q", body)
		}
	}
	resp, body = doReq(t, http.MethodPost, ts.URL+"/admin/scrub", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrub status %d", resp.StatusCode)
	}
	var scrub map[string][]int
	if err := json.Unmarshal(body, &scrub); err != nil {
		t.Fatal(err)
	}
	if len(scrub["corrupt_stripes"]) != 0 {
		t.Fatalf("scrub found %v", scrub["corrupt_stripes"])
	}
}

func TestStatus(t *testing.T) {
	ts, _ := newTestServer(t)
	doReq(t, http.MethodPut, ts.URL+"/objects/a", []byte("hello world"))
	resp, body := doReq(t, http.MethodGet, ts.URL+"/admin/status", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var st Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Scheme != "EC-FRM-LRC(6,2,2)" || st.Disks != 10 || st.FaultTolerance != 3 {
		t.Fatalf("status wrong: %+v", st)
	}
	if st.Objects != 1 || st.Stripes < 1 || st.Bytes != 11 {
		t.Fatalf("counters wrong: %+v", st)
	}
	if len(st.DeviceWrites) != 10 || st.DeviceWrites[0] == 0 {
		t.Fatalf("device writes wrong: %v", st.DeviceWrites)
	}
}

func TestAdminParamValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	for _, url := range []string{
		ts.URL + "/admin/fail",
		ts.URL + "/admin/fail?disk=abc",
		ts.URL + "/admin/fail?disk=10",
		ts.URL + "/admin/recover?disk=-1",
	} {
		if resp, _ := doReq(t, http.MethodPost, url, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", url, resp.StatusCode)
		}
	}
	// Recovering a healthy disk is a 400.
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/admin/recover?disk=1", nil); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("healthy recover status %d", resp.StatusCode)
	}
	// Wrong methods.
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/admin/fail?disk=1", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("GET on fail must be 405")
	}
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/admin/status", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("POST on status must be 405")
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/admin/scrub", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("GET on scrub must be 405")
	}
}

func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := make([]byte, 5000)
	rand.New(rand.NewSource(3)).Read(payload)
	doReq(t, http.MethodPut, ts.URL+"/objects/shared", payload)

	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				resp, body := func() (*http.Response, []byte) {
					resp, err := http.Get(ts.URL + "/objects/shared")
					if err != nil {
						errs <- err
						return nil, nil
					}
					defer resp.Body.Close()
					b, _ := io.ReadAll(resp.Body)
					return resp, b
				}()
				if resp == nil {
					return
				}
				if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
					errs <- fmt.Errorf("goroutine %d: bad read status=%d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestCorruptionInjectionAndHealing(t *testing.T) {
	ts, _ := newTestServer(t)
	payload := make([]byte, 8000)
	rand.New(rand.NewSource(5)).Read(payload)
	doReq(t, http.MethodPut, ts.URL+"/objects/x", payload)

	// Inject silent corruption into a data cell.
	resp, body := doReq(t, http.MethodPost, ts.URL+"/admin/corrupt?stripe=0&row=0&col=1", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("corrupt: %d %s", resp.StatusCode, body)
	}
	// Checksums report it.
	resp, body = doReq(t, http.MethodGet, ts.URL+"/admin/checksums", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checksums: %d", resp.StatusCode)
	}
	var rep map[string]any
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep["count"].(float64) != 1 {
		t.Fatalf("checksum count = %v, want 1", rep["count"])
	}
	// Reading the object heals it transparently.
	resp, body = doReq(t, http.MethodGet, ts.URL+"/objects/x", nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, payload) {
		t.Fatal("healing read failed")
	}
	resp, body = doReq(t, http.MethodGet, ts.URL+"/admin/checksums", nil)
	json.Unmarshal(body, &rep)
	if rep["count"].(float64) != 0 {
		t.Fatalf("corruption not healed: %v", rep["count"])
	}
	// Parameter validation.
	for _, q := range []string{"", "stripe=0&row=0", "stripe=99&row=0&col=0", "stripe=0&row=0&col=99"} {
		if resp, _ := doReq(t, http.MethodPost, ts.URL+"/admin/corrupt?"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("corrupt?%s status %d, want 400", q, resp.StatusCode)
		}
	}
	if resp, _ := doReq(t, http.MethodPost, ts.URL+"/admin/checksums", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("POST checksums must be 405")
	}
	if resp, _ := doReq(t, http.MethodGet, ts.URL+"/admin/corrupt?stripe=0&row=0&col=0", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Error("GET corrupt must be 405")
	}
}

// TestConcurrentChaos hammers the server with overlapping PUTs, GETs,
// failure injection, and recovery from many goroutines. Run under -race it
// checks the sharded locking: any interleaving must keep every successful
// GET byte-identical to its PUT, and the failed-disk set within tolerance.
func TestConcurrentChaos(t *testing.T) {
	ts, srv := newTestServer(t)
	rng := rand.New(rand.NewSource(11))

	// Seed a set of objects whose contents every reader can verify.
	const objects = 8
	payloads := make([][]byte, objects)
	for i := range payloads {
		payloads[i] = make([]byte, 1+rng.Intn(4096))
		rng.Read(payloads[i])
		resp, body := doReq(t, http.MethodPut, fmt.Sprintf("%s/objects/chaos%d", ts.URL, i), payloads[i])
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("seed put %d: %d %s", i, resp.StatusCode, body)
		}
	}

	tol := srv.store.Scheme().FaultTolerance()
	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	report := func(format string, args ...any) {
		select {
		case errCh <- fmt.Errorf(format, args...):
		default:
		}
	}

	// Readers: every 200 must return the exact payload.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 40; i++ {
				oi := rng.Intn(objects)
				req, _ := http.NewRequest(http.MethodGet, fmt.Sprintf("%s/objects/chaos%d", ts.URL, oi), nil)
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					report("get: %v", err)
					return
				}
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if !bytes.Equal(body, payloads[oi]) {
						report("chaos%d: got %d bytes, want %d", oi, len(body), len(payloads[oi]))
						return
					}
				case http.StatusServiceUnavailable:
					// Transiently unrecoverable while disks cycle: allowed.
				default:
					report("get chaos%d: status %d", oi, resp.StatusCode)
					return
				}
			}
		}(int64(100 + g))
	}

	// Writers: fresh names so they never conflict with the verified set.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(200 + id)))
			for i := 0; i < 10; i++ {
				data := make([]byte, 1+rng.Intn(2048))
				rng.Read(data)
				resp, body := doReq(t, http.MethodPut, fmt.Sprintf("%s/objects/w%d-%d", ts.URL, id, i), data)
				if resp.StatusCode != http.StatusCreated {
					report("writer put: %d %s", resp.StatusCode, body)
					return
				}
			}
		}(g)
	}

	// Chaos agents: fail and recover random disks. Any status the server
	// chooses is fine (409 at tolerance, 400/503 racing recover) — the
	// invariant is that failures never exceed tolerance.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			n := srv.store.Scheme().N()
			for i := 0; i < 20; i++ {
				d := rng.Intn(n)
				if rng.Intn(2) == 0 {
					doReq(t, http.MethodPost, fmt.Sprintf("%s/admin/fail?disk=%d", ts.URL, d), nil)
				} else {
					doReq(t, http.MethodPost, fmt.Sprintf("%s/admin/recover?disk=%d", ts.URL, d), nil)
				}
				if failed := len(srv.store.FailedDisks()); failed > tol {
					report("%d disks failed, tolerance %d", failed, tol)
					return
				}
			}
		}(int64(300 + g))
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Settle: recover everything and verify all objects come back clean.
	for _, d := range srv.store.FailedDisks() {
		if resp, body := doReq(t, http.MethodPost, fmt.Sprintf("%s/admin/recover?disk=%d", ts.URL, d), nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("settle recover %d: %d %s", d, resp.StatusCode, body)
		}
	}
	for i, want := range payloads {
		resp, body := doReq(t, http.MethodGet, fmt.Sprintf("%s/objects/chaos%d", ts.URL, i), nil)
		if resp.StatusCode != http.StatusOK || !bytes.Equal(body, want) {
			t.Fatalf("post-chaos read chaos%d: status %d", i, resp.StatusCode)
		}
	}
}
