package codes

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/matrix"
)

// testCode builds a small MDS base: identity(k) stacked on Cauchy(m,k).
func testCode(t *testing.T, k, m int) *Base {
	t.Helper()
	return NewBase(matrix.Identity(k).Stack(matrix.Cauchy(m, k)))
}

func randShards(rng *rand.Rand, count, size int) [][]byte {
	s := make([][]byte, count)
	for i := range s {
		s[i] = make([]byte, size)
		rng.Read(s[i])
	}
	return s
}

func TestNewBaseValidation(t *testing.T) {
	for name, gen := range map[string]*matrix.Matrix{
		"nonsystematic": matrix.Cauchy(4, 2),
		"tooFewRows":    matrix.New(1, 2),
		"zeroCols":      matrix.New(3, 0),
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewBase(%s) did not panic", name)
				}
			}()
			NewBase(gen)
		}()
	}
}

func TestEncodeShapes(t *testing.T) {
	b := testCode(t, 3, 2)
	rng := rand.New(rand.NewSource(1))
	parity, err := b.Encode(randShards(rng, 3, 64))
	if err != nil {
		t.Fatal(err)
	}
	if len(parity) != 2 || len(parity[0]) != 64 || len(parity[1]) != 64 {
		t.Fatalf("parity shapes wrong: %d shards", len(parity))
	}
}

func TestEncodeErrors(t *testing.T) {
	b := testCode(t, 3, 2)
	if _, err := b.Encode(make([][]byte, 2)); !errors.Is(err, ErrShardSize) {
		t.Fatalf("wrong shard count: err = %v", err)
	}
	if _, err := b.Encode([][]byte{{1}, nil, {3}}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("nil shard: err = %v", err)
	}
	if _, err := b.Encode([][]byte{{1, 2}, {3}, {4, 5}}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged shards: err = %v", err)
	}
}

func TestReconstructAllPatterns(t *testing.T) {
	const k, m = 4, 3
	b := testCode(t, k, m)
	if b.FaultTolerance() != m {
		t.Fatalf("MDS base tolerance = %d, want %d", b.FaultTolerance(), m)
	}
	rng := rand.New(rand.NewSource(2))
	data := randShards(rng, k, 37)
	parity, err := b.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)

	n := k + m
	// Erase every subset of size ≤ m and reconstruct.
	for mask := 0; mask < 1<<n; mask++ {
		cnt := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				cnt++
			}
		}
		if cnt == 0 || cnt > m {
			continue
		}
		shards := make([][]byte, n)
		for i := range shards {
			if mask>>i&1 == 0 {
				shards[i] = append([]byte(nil), full[i]...)
			}
		}
		if err := b.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("mask %b: shard %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructTooManyErasures(t *testing.T) {
	b := testCode(t, 3, 2)
	rng := rand.New(rand.NewSource(3))
	data := randShards(rng, 3, 8)
	parity, _ := b.Encode(data)
	shards := [][]byte{nil, nil, nil, parity[0], parity[1]}
	if err := b.Reconstruct(shards); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestReconstructNoErasures(t *testing.T) {
	b := testCode(t, 3, 2)
	rng := rand.New(rand.NewSource(4))
	data := randShards(rng, 3, 8)
	parity, _ := b.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	if err := b.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
}

func TestReconstructErrors(t *testing.T) {
	b := testCode(t, 3, 2)
	if err := b.Reconstruct(make([][]byte, 3)); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short slice: err = %v", err)
	}
	if err := b.Reconstruct(make([][]byte, 5)); !errors.Is(err, ErrShardSize) {
		t.Fatalf("all nil: err = %v", err)
	}
	ragged := [][]byte{{1, 2}, {3}, nil, {4, 5}, {6, 7}}
	if err := b.Reconstruct(ragged); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged: err = %v", err)
	}
}

func TestCanRecover(t *testing.T) {
	b := testCode(t, 4, 2)
	if !b.CanRecover(nil) {
		t.Fatal("empty erasure must be recoverable")
	}
	if !b.CanRecover([]int{0, 5}) {
		t.Fatal("2 erasures of MDS(4,2) must be recoverable")
	}
	if b.CanRecover([]int{0, 1, 2}) {
		t.Fatal("3 erasures of MDS(4,2) must NOT be recoverable")
	}
	if b.CanRecover([]int{-1}) || b.CanRecover([]int{6}) {
		t.Fatal("out-of-range indices must report unrecoverable")
	}
}

func TestVerifySet(t *testing.T) {
	b := testCode(t, 3, 2)
	if !b.VerifySet(0, []int{1, 2, 3}) {
		t.Fatal("3 survivors must rebuild one element of MDS(3,2)")
	}
	if b.VerifySet(0, []int{1, 2}) {
		t.Fatal("2 survivors cannot rebuild data of MDS(3,2)")
	}
}

func TestFaultToleranceNonMDS(t *testing.T) {
	// A deliberately weak code: second parity duplicates the first, so two
	// erasures hitting both parities plus... actually any 2 erasures that
	// include a data element covered only by the duplicated parity fail.
	gen := matrix.Identity(2).Stack(matrix.FromRows([][]byte{{1, 1}, {1, 1}}))
	b := NewBase(gen)
	if b.FaultTolerance() != 1 {
		t.Fatalf("duplicated-parity tolerance = %d, want 1", b.FaultTolerance())
	}
	// {d0, d1} unrecoverable: p0 = p1 = d0+d1 gives one equation.
	if b.CanRecover([]int{0, 1}) {
		t.Fatal("two data erasures must be unrecoverable with duplicate parity")
	}
	// {d0, p0} is fine.
	if !b.CanRecover([]int{0, 2}) {
		t.Fatal("{d0,p0} must be recoverable")
	}
}

func TestReconstructedParityConsistent(t *testing.T) {
	// Reconstructing a parity shard must yield exactly what Encode yields.
	b := testCode(t, 3, 3)
	rng := rand.New(rand.NewSource(5))
	data := randShards(rng, 3, 50)
	parity, _ := b.Encode(data)
	shards := append(append([][]byte{}, data...), parity...)
	shards[4] = nil
	if err := b.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[4], parity[1]) {
		t.Fatal("reconstructed parity differs from encoded parity")
	}
}

func TestReconstructElementsPartialPattern(t *testing.T) {
	// The motivating case: more shards are erased than we need to rebuild,
	// and the full pattern is NOT jointly recoverable — but the single
	// target is. LRC-style: gen row 2 = d0+d1 (local parity of {0,1}),
	// row 5 = d2+d3. Erase d0, d2, d3: {d2,d3} unrecoverable (only one
	// parity covers them... erase its parity too).
	gen := matrix.Identity(4).Stack(matrix.FromRows([][]byte{
		{1, 1, 0, 0},
		{0, 0, 1, 1},
	}))
	b := NewBase(gen)
	rng := rand.New(rand.NewSource(60))
	data := randShards(rng, 4, 10)
	parity, err := b.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	shards := [][]byte{nil, data[1], nil, nil, parity[0], nil}
	// Full reconstruct must fail: d2,d3 have no surviving equation.
	if err := b.Reconstruct(append([][]byte{}, shards...)); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("full reconstruct err = %v, want ErrUnrecoverable", err)
	}
	// Targeted reconstruct of d0 alone succeeds via d1 + p0.
	work := append([][]byte{}, shards...)
	if err := b.ReconstructElements(work, []int{0}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(work[0], data[0]) {
		t.Fatal("target d0 rebuilt wrong")
	}
	// Non-target erased shards stay nil.
	if work[2] != nil || work[3] != nil {
		t.Fatal("non-targets were touched")
	}
	// Asking for the impossible target fails.
	if err := b.ReconstructElements(append([][]byte{}, shards...), []int{2}); !errors.Is(err, ErrUnrecoverable) {
		t.Fatalf("impossible target err = %v", err)
	}
}

func TestReconstructElementsValidation(t *testing.T) {
	b := testCode(t, 3, 2)
	if err := b.ReconstructElements(make([][]byte, 2), []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("short shards: %v", err)
	}
	if err := b.ReconstructElements(make([][]byte, 5), []int{7}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("bad target: %v", err)
	}
	if err := b.ReconstructElements(make([][]byte, 5), []int{0}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("all nil: %v", err)
	}
	// Present targets are a no-op.
	shards := [][]byte{{1}, {2}, {3}, nil, nil}
	if err := b.ReconstructElements(shards, []int{0}); err != nil {
		t.Fatal(err)
	}
	ragged := [][]byte{{1, 2}, {3}, nil, nil, nil}
	if err := b.ReconstructElements(ragged, []int{2}); !errors.Is(err, ErrShardSize) {
		t.Fatalf("ragged: %v", err)
	}
}

func TestDecodeCacheCorrectAndConcurrent(t *testing.T) {
	b := testCode(t, 4, 3)
	rng := rand.New(rand.NewSource(70))
	data := randShards(rng, 4, 40)
	parity, _ := b.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	// Hammer the same erasure pattern from many goroutines (run under
	// -race); results must stay byte-correct.
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for trial := 0; trial < 50; trial++ {
				shards := append([][]byte{}, full...)
				shards[1], shards[5] = nil, nil
				if err := b.Reconstruct(shards); err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(shards[1], full[1]) || !bytes.Equal(shards[5], full[5]) {
					errs <- errors.New("cached decode produced wrong bytes")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Different patterns must not collide in the cache.
	shards := append([][]byte{}, full...)
	shards[0], shards[6] = nil, nil
	if err := b.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[0], full[0]) || !bytes.Equal(shards[6], full[6]) {
		t.Fatal("second pattern wrong after first was cached")
	}
}
