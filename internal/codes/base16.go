// Base16 is the GF(2^16) twin of Base: the generator-matrix engine behind
// wide-stripe codes, whose n = k+m can exceed the 256-element ceiling a
// GF(2^8) Cauchy construction imposes. Elements are 16-bit symbols packed
// little-endian in ordinary byte shards, so a Base16-backed code satisfies
// the same Code interface and flows through the stores, the streaming
// pipeline, and the fan-out executor unchanged — shard sizes just have to
// be even.
//
// Two deliberate departures from Base:
//
//   - Fault tolerance is declared by the constructor, not recomputed by
//     exhaustive erasure-pattern search: at wide parameters the search is
//     combinatorial (C(132,4) ≈ 18M solves for a (128,4) code). Cauchy
//     generators are provably MDS, so RS-style constructors declare n-k;
//     constructions without a closed-form guarantee (LRC16) verify their
//     declaration by sampling (see VerifyFaultTolerance).
//
//   - The decode cache keys patterns with [16]uint64 bitmask pairs,
//     supporting n up to 1024 with stack-allocated comparable keys.
package codes

import (
	"fmt"
	"sync"

	"repro/internal/gf16"
	"repro/internal/matrix"
)

// maskWords is the width of one erasure-pattern bitmask in the Base16
// decode cache; it bounds supported n at 64·maskWords = 1024 elements.
const maskWords = 16

// MaxN16 is the widest code Base16 supports (decode-cache mask width).
const MaxN16 = 64 * maskWords

// Base16 implements the generator-matrix-driven parts of Code over
// GF(2^16). Concrete wide codes embed it and supply Name and RecoverySets.
type Base16 struct {
	gen       *matrix.Matrix16 // n×k, first k rows identity
	parityMat *matrix.Matrix16 // gen rows k..n, precomputed for encode
	n         int
	k         int
	ft        int
	// decodeCache memoizes SpanSolve16 coefficient matrices keyed by the
	// (available, targets) bitmask pair, exactly like Base's cache but wide
	// enough for n ≤ 1024. Guarded by a mutex rather than sync.Map so the
	// [2·maskWords]uint64 key never boxes (allocates) on the hot path.
	decodeMu    sync.RWMutex
	decodeCache map[[2 * maskWords]uint64]*matrix.Matrix16
}

// NewBase16 wraps an n×k systematic generator matrix over GF(2^16) with a
// declared fault tolerance (see the package comment for why it is declared
// rather than searched). It panics if the generator is malformed or the
// declaration exceeds n-k — the codes own their constructors, so a
// violation is a programming error.
func NewBase16(gen *matrix.Matrix16, declaredFT int) *Base16 {
	n, k := gen.Rows(), gen.Cols()
	if n < k || k < 1 {
		panic(fmt.Sprintf("codes: invalid generator %d×%d", n, k))
	}
	if n > MaxN16 {
		panic(fmt.Sprintf("codes: n=%d exceeds Base16 limit %d", n, MaxN16))
	}
	if !gen.SubMatrix(0, k, 0, k).IsIdentity() {
		panic("codes: generator is not systematic")
	}
	if declaredFT < 0 || declaredFT > n-k {
		panic(fmt.Sprintf("codes: declared fault tolerance %d out of [0,%d]", declaredFT, n-k))
	}
	return &Base16{
		gen:         gen,
		parityMat:   gen.SubMatrix(k, n, 0, k),
		n:           n,
		k:           k,
		ft:          declaredFT,
		decodeCache: make(map[[2 * maskWords]uint64]*matrix.Matrix16),
	}
}

// N returns the total number of elements per row.
func (b *Base16) N() int { return b.n }

// K returns the number of data elements per row.
func (b *Base16) K() int { return b.k }

// FaultTolerance returns the declared guaranteed erasure tolerance.
func (b *Base16) FaultTolerance() int { return b.ft }

// Generator returns the generator matrix. Callers must not modify it.
func (b *Base16) Generator() *matrix.Matrix16 { return b.gen }

// SymbolBytes returns 2: elements are 16-bit symbols, so shard sizes must
// be even.
func (b *Base16) SymbolBytes() int { return gf16.SymbolBytes }

// PositionalKernel reports true: the generator matrix applies
// symbol-position by symbol-position, and since every whole-symbol
// sub-range is encodable independently, byte sub-ranges used by chunking
// remain valid as long as stripe element sizes stay even (which the even
// shard-size contract guarantees at every layer).
func (b *Base16) PositionalKernel() bool { return true }

// solveCoefficients returns the SpanSolve16 coefficient matrix expressing
// the target rows in terms of the available rows, memoized per pattern.
func (b *Base16) solveCoefficients(avail, targets []int) (*matrix.Matrix16, error) {
	var key [2 * maskWords]uint64
	for _, a := range avail {
		key[a>>6] |= 1 << uint(a&63)
	}
	for _, t := range targets {
		key[maskWords+t>>6] |= 1 << uint(t&63)
	}
	b.decodeMu.RLock()
	coeff, ok := b.decodeCache[key]
	b.decodeMu.RUnlock()
	if ok {
		return coeff, nil
	}
	coeff, err := matrix.SpanSolve16(b.gen.SelectRows(avail), b.gen.SelectRows(targets))
	if err != nil {
		return nil, err
	}
	b.decodeMu.Lock()
	b.decodeCache[key] = coeff
	b.decodeMu.Unlock()
	return coeff, nil
}

func (b *Base16) checkData(data [][]byte) (int, error) {
	if len(data) != b.k {
		return 0, fmt.Errorf("%w: got %d data shards, want %d", ErrShardSize, len(data), b.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", ErrShardSize, i)
		}
		if size == -1 {
			size = len(d)
		} else if len(d) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(d), size)
		}
	}
	if size%gf16.SymbolBytes != 0 {
		return 0, fmt.Errorf("%w: shard size %d not a whole number of 16-bit symbols", ErrShardSize, size)
	}
	return size, nil
}

// Encode computes the parity shards for the given data shards.
func (b *Base16) Encode(data [][]byte) ([][]byte, error) {
	size, err := b.checkData(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, b.n-b.k)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	b.parityMat.MulVec(parity, data)
	return parity, nil
}

// EncodeInto computes the parity shards into the caller-provided cells —
// the zero-allocation encode path. parity must hold n-k buffers, each the
// size of a data shard; contents are overwritten.
func (b *Base16) EncodeInto(parity, data [][]byte) error {
	size, err := b.checkData(data)
	if err != nil {
		return err
	}
	if len(parity) != b.n-b.k {
		return fmt.Errorf("%w: got %d parity cells, want %d", ErrShardSize, len(parity), b.n-b.k)
	}
	for i, p := range parity {
		if len(p) != size {
			return fmt.Errorf("%w: parity cell %d has %d bytes, want %d", ErrShardSize, i, len(p), size)
		}
	}
	b.parityMat.MulVec(parity, data)
	return nil
}

// Reconstruct rebuilds nil shards in place. shards must have length n.
func (b *Base16) Reconstruct(shards [][]byte) error {
	return b.ReconstructInto(shards, heapAlloc{})
}

// ReconstructInto rebuilds nil shards in place, drawing the output buffers
// from alloc — the zero-allocation decode path when alloc recycles memory.
func (b *Base16) ReconstructInto(shards [][]byte, alloc Allocator) error {
	if len(shards) != b.n {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), b.n)
	}
	sc := getScratch()
	defer putScratch(sc)
	size := -1
	for i, s := range shards {
		if s == nil {
			sc.targetIdx = append(sc.targetIdx, i)
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		sc.availIdx = append(sc.availIdx, i)
	}
	erased := sc.targetIdx
	if len(erased) == 0 {
		return nil
	}
	if size == -1 {
		return fmt.Errorf("%w: all shards erased", ErrShardSize)
	}
	if size%gf16.SymbolBytes != 0 {
		return fmt.Errorf("%w: shard size %d not a whole number of 16-bit symbols", ErrShardSize, size)
	}
	coeff, err := b.solveCoefficients(sc.availIdx, erased)
	if err != nil {
		return fmt.Errorf("%w: erased %v", ErrUnrecoverable, erased)
	}
	for _, a := range sc.availIdx {
		sc.availShards = append(sc.availShards, shards[a])
	}
	for range erased {
		sc.out = append(sc.out, alloc.GetShard(size))
	}
	coeff.MulVec(sc.out, sc.availShards)
	for i, e := range erased {
		shards[e] = sc.out[i]
	}
	return nil
}

// ReconstructElements rebuilds only the listed target elements from the
// non-nil shards, writing the results into shards — the degraded-read
// decode, succeeding whenever the targets (not necessarily every erasure)
// are in the survivors' span.
func (b *Base16) ReconstructElements(shards [][]byte, targets []int) error {
	return b.ReconstructElementsInto(shards, targets, heapAlloc{})
}

// ReconstructElementsInto is ReconstructElements drawing output buffers
// from alloc — the zero-allocation degraded-read path.
func (b *Base16) ReconstructElementsInto(shards [][]byte, targets []int, alloc Allocator) error {
	if len(shards) != b.n {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), b.n)
	}
	sc := getScratch()
	defer putScratch(sc)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		sc.availIdx = append(sc.availIdx, i)
	}
	for _, t := range targets {
		if t < 0 || t >= b.n {
			return fmt.Errorf("%w: target %d out of [0,%d)", ErrShardSize, t, b.n)
		}
		if shards[t] == nil {
			sc.targetIdx = append(sc.targetIdx, t)
		}
	}
	missing := sc.targetIdx
	if len(missing) == 0 {
		return nil
	}
	if size == -1 {
		return fmt.Errorf("%w: all shards erased", ErrShardSize)
	}
	if size%gf16.SymbolBytes != 0 {
		return fmt.Errorf("%w: shard size %d not a whole number of 16-bit symbols", ErrShardSize, size)
	}
	coeff, err := b.solveCoefficients(sc.availIdx, missing)
	if err != nil {
		return fmt.Errorf("%w: targets %v", ErrUnrecoverable, missing)
	}
	for _, a := range sc.availIdx {
		sc.availShards = append(sc.availShards, shards[a])
	}
	for range missing {
		sc.out = append(sc.out, alloc.GetShard(size))
	}
	coeff.MulVec(sc.out, sc.availShards)
	for i, t := range missing {
		shards[t] = sc.out[i]
	}
	return nil
}

// ApplyDelta updates the n-k parity shards for an in-place change of data
// element elem, where delta is newData XOR oldData. delta must hold whole
// symbols.
func (b *Base16) ApplyDelta(parity [][]byte, elem int, delta []byte) error {
	if len(parity) != b.n-b.k {
		return fmt.Errorf("%w: got %d parity shards, want %d", ErrShardSize, len(parity), b.n-b.k)
	}
	if elem < 0 || elem >= b.k {
		return fmt.Errorf("%w: data element %d out of [0,%d)", ErrShardSize, elem, b.k)
	}
	if len(delta)%gf16.SymbolBytes != 0 {
		return fmt.Errorf("%w: delta size %d not a whole number of 16-bit symbols", ErrShardSize, len(delta))
	}
	for t, p := range parity {
		if len(p) != len(delta) {
			return fmt.Errorf("%w: parity %d has %d bytes, delta %d", ErrShardSize, t, len(p), len(delta))
		}
	}
	for t, p := range parity {
		gf16.MulAddSlice(b.gen.At(b.k+t, elem), p, delta)
	}
	return nil
}

// CanRecover reports whether the erasure pattern is decodable.
func (b *Base16) CanRecover(erased []int) bool {
	if len(erased) == 0 {
		return true
	}
	mark := make([]bool, b.n)
	for _, e := range erased {
		if e < 0 || e >= b.n {
			return false
		}
		mark[e] = true
	}
	avail := make([]int, 0, b.n)
	for i := 0; i < b.n; i++ {
		if !mark[i] {
			avail = append(avail, i)
		}
	}
	_, err := matrix.SpanSolve16(b.gen.SelectRows(avail), b.gen.SelectRows(erased))
	return err == nil
}

// VerifySet reports whether the surviving set `set` suffices to rebuild
// element idx. Used by tests and by planners validating recovery sets.
func (b *Base16) VerifySet(idx int, set []int) bool {
	_, err := matrix.SpanSolve16(b.gen.SelectRows(set), b.gen.SelectRows([]int{idx}))
	return err == nil
}

// VerifyFaultTolerance checks the declared tolerance against real erasure
// patterns: every pattern of size ft drawn by the sampler must be
// recoverable. When the total pattern count is at most maxExhaustive it
// enumerates all of them (a proof); otherwise it draws `samples` random
// patterns with the given next function (an audit). Returns the first
// failing pattern, or nil.
//
// Constructors without a closed-form MDS argument call this at build time
// with a modest sample budget; tests call it with large ones.
func (b *Base16) VerifyFaultTolerance(maxExhaustive, samples int, next func(n int) int) []int {
	f := b.ft
	if f == 0 {
		return nil
	}
	total := 1
	for i := 0; i < f; i++ {
		total *= b.n - i
		total /= i + 1
		if total > maxExhaustive {
			break
		}
	}
	if total <= maxExhaustive {
		var bad []int
		idx := make([]int, f)
		var rec func(start, depth int) bool
		rec = func(start, depth int) bool {
			if depth == f {
				if !b.CanRecover(idx) {
					bad = append([]int(nil), idx...)
					return false
				}
				return true
			}
			for i := start; i <= b.n-(f-depth); i++ {
				idx[depth] = i
				if !rec(i+1, depth+1) {
					return false
				}
			}
			return true
		}
		rec(0, 0)
		return bad
	}
	pattern := make([]int, 0, f)
	used := make(map[int]bool, f)
	for s := 0; s < samples; s++ {
		pattern = pattern[:0]
		for k := range used {
			delete(used, k)
		}
		for len(pattern) < f {
			e := next(b.n)
			if !used[e] {
				used[e] = true
				pattern = append(pattern, e)
			}
		}
		if !b.CanRecover(pattern) {
			return append([]int(nil), pattern...)
		}
	}
	return nil
}

var (
	_ IntoEncoder       = (*Base16)(nil)
	_ IntoReconstructor = (*Base16)(nil)
	_ WideSymbolCode    = (*Base16)(nil)
	_ PositionalCoder   = (*Base16)(nil)
)
