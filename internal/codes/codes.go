// Package codes defines the candidate-code abstraction of the EC-FRM paper
// (§IV-A) and a shared generator-matrix engine the concrete codes build on.
//
// A candidate code is a systematic one-row erasure code: a row holds n
// elements, the first k of which are data and the remaining n-k parity.
// Reed-Solomon (k,m) and Azure LRC (k,l,m) are the two candidates the paper
// integrates; both are expressed here through an n×k generator matrix G whose
// first k rows are the identity, so element i of a row equals G.Row(i)·data.
//
// All erasure decoding is done generically: an element is recoverable from a
// surviving set exactly when its generator row lies in the row span of the
// survivors' rows (matrix.SpanSolve). This handles MDS and non-MDS
// candidates (LRC) uniformly, including LRC's beyond-guarantee recoverable
// patterns.
package codes

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/gf"
	"repro/internal/matrix"
)

// ErrUnrecoverable is returned when an erasure pattern cannot be decoded.
var ErrUnrecoverable = errors.New("codes: erasure pattern unrecoverable")

// ErrShardSize is returned when shards passed to Encode/Reconstruct are
// missing, ragged, or of inconsistent counts.
var ErrShardSize = errors.New("codes: invalid shard sizes")

// Code is a systematic one-row candidate erasure code.
type Code interface {
	// Name identifies the code family and parameters, e.g. "RS(6,3)".
	Name() string
	// N is the total number of elements per row.
	N() int
	// K is the number of data elements per row.
	K() int
	// FaultTolerance is the largest f such that EVERY f-element erasure
	// pattern is decodable. MDS codes have f = N-K; LRC has f < N-K but
	// recovers many larger patterns too (see CanRecover).
	FaultTolerance() int
	// Encode computes the n-k parity shards for k equally sized data shards.
	Encode(data [][]byte) ([][]byte, error)
	// Reconstruct rebuilds every nil shard in the length-n slice in place,
	// given the non-nil survivors. Returns ErrUnrecoverable if the pattern
	// is information-theoretically lost.
	Reconstruct(shards [][]byte) error
	// ReconstructElements rebuilds only the listed target elements in
	// place, succeeding whenever those targets (not necessarily every
	// erased shard) are decodable from the survivors.
	ReconstructElements(shards [][]byte, targets []int) error
	// CanRecover reports whether the given erased element indices are
	// jointly decodable from the survivors.
	CanRecover(erased []int) bool
	// RecoverySets returns candidate read sets for rebuilding element idx
	// when idx alone is erased, cheapest (fewest reads) first. Every set
	// consists of surviving element indices that suffice to rebuild idx.
	// At least one set is always returned for a valid code.
	RecoverySets(idx int) [][]int
	// ApplyDelta folds an in-place update of data element elem into the
	// parity shards: given delta = newData XOR oldData, each parity shard
	// p becomes p + coeff(p, elem)·delta. This is the classic
	// read-modify-write small-write path: the data disks other than elem
	// are never touched.
	ApplyDelta(parity [][]byte, elem int, delta []byte) error
}

// Allocator hands out shard buffers for decode outputs. Implementations must
// return a zeroable buffer of exactly the requested length; they may recycle
// memory (core.Buffers does, via sync.Pool), so callers own the buffer until
// they choose to return it.
type Allocator interface {
	GetShard(size int) []byte
}

// heapAlloc is the fallback Allocator: plain make. Zero-sized, so converting
// it to the Allocator interface does not allocate.
type heapAlloc struct{}

func (heapAlloc) GetShard(size int) []byte { return make([]byte, size) }

// IntoEncoder is implemented by codes whose encode can write parity into
// caller-provided cells without allocating.
type IntoEncoder interface {
	EncodeInto(parity, data [][]byte) error
}

// IntoReconstructor is implemented by codes whose decode can draw output
// buffers from an Allocator instead of the heap.
type IntoReconstructor interface {
	ReconstructInto(shards [][]byte, alloc Allocator) error
	ReconstructElementsInto(shards [][]byte, targets []int, alloc Allocator) error
}

// WideSymbolCode is implemented by codes whose elements are multi-byte
// field symbols. SymbolBytes is the symbol width in bytes — shard sizes
// must be a multiple of it. Codes that don't implement it operate
// byte-wise (width 1).
type WideSymbolCode interface {
	SymbolBytes() int
}

// SymbolBytesOf returns the symbol width of a code: c's SymbolBytes when it
// implements WideSymbolCode, else 1.
func SymbolBytesOf(c Code) int {
	if w, ok := c.(WideSymbolCode); ok {
		return w.SymbolBytes()
	}
	return 1
}

// PositionalCoder reports whether the code's kernel is byte-positional:
// parity byte b depends only on the data shards' bytes at offset b, so
// encoding a byte sub-range of every shard independently yields the same
// result as encoding whole shards. Generator-matrix codes are positional;
// CRS is not (its packet layout mixes offsets). Intra-stripe chunking is
// only valid for positional codes.
type PositionalCoder interface {
	PositionalKernel() bool
}

// PositionalKernel reports true: Base codes apply the generator matrix
// byte-position by byte-position.
func (b *Base) PositionalKernel() bool { return true }

// baseScratch holds the index and shard-pointer slices a decode needs,
// recycled through a pool so steady-state reconstruct allocates nothing.
type baseScratch struct {
	availIdx    []int
	targetIdx   []int
	availShards [][]byte
	out         [][]byte
}

var scratchPool = sync.Pool{New: func() any { return new(baseScratch) }}

func getScratch() *baseScratch { return scratchPool.Get().(*baseScratch) }

func putScratch(s *baseScratch) {
	s.availIdx = s.availIdx[:0]
	s.targetIdx = s.targetIdx[:0]
	for i := range s.availShards {
		s.availShards[i] = nil
	}
	s.availShards = s.availShards[:0]
	for i := range s.out {
		s.out[i] = nil
	}
	s.out = s.out[:0]
	scratchPool.Put(s)
}

// Base implements the generator-matrix-driven parts of Code. Concrete codes
// embed it and supply Name and RecoverySets.
type Base struct {
	gen *matrix.Matrix // n×k, first k rows identity
	// parityMat is gen's parity block (rows k..n), precomputed so the encode
	// hot path never re-slices the generator.
	parityMat *matrix.Matrix
	n         int
	k         int
	ft        int
	// decodeCache memoizes SpanSolve coefficient matrices keyed by the
	// (available, targets) bitmask pair — a storage system repairs the
	// same failure pattern for every stripe, so the solve is paid once.
	// Only used when n ≤ 64 (one word per mask). Guarded by decodeMu rather
	// than sync.Map: loading a [2]uint64 key through an interface would box
	// it and allocate, which the zero-alloc decode path cannot afford.
	decodeMu    sync.RWMutex
	decodeCache map[[2]uint64]*matrix.Matrix
}

// NewBase wraps an n×k systematic generator matrix. It panics if the first
// k rows are not the identity (the codes own their constructors, so a
// violation is a programming error, not an input error). Fault tolerance is
// computed by exhaustive search over erasure patterns, which is affordable
// for the storage-system scale parameters this repo targets (n ≤ ~20).
func NewBase(gen *matrix.Matrix) *Base {
	n, k := gen.Rows(), gen.Cols()
	if n < k || k < 1 {
		panic(fmt.Sprintf("codes: invalid generator %d×%d", n, k))
	}
	if !gen.SubMatrix(0, k, 0, k).IsIdentity() {
		panic("codes: generator is not systematic")
	}
	b := &Base{
		gen:         gen,
		parityMat:   gen.SubMatrix(k, n, 0, k),
		n:           n,
		k:           k,
		decodeCache: make(map[[2]uint64]*matrix.Matrix),
	}
	b.ft = b.computeFaultTolerance()
	return b
}

// N returns the total number of elements per row.
func (b *Base) N() int { return b.n }

// K returns the number of data elements per row.
func (b *Base) K() int { return b.k }

// FaultTolerance returns the guaranteed erasure tolerance.
func (b *Base) FaultTolerance() int { return b.ft }

// Generator returns the generator matrix. Callers must not modify it.
func (b *Base) Generator() *matrix.Matrix { return b.gen }

// solveCoefficients returns the SpanSolve coefficient matrix expressing the
// target rows in terms of the available rows, memoized per pattern when the
// code is narrow enough to key with single-word bitmasks.
func (b *Base) solveCoefficients(avail, targets []int) (*matrix.Matrix, error) {
	var key [2]uint64
	cacheable := b.n <= 64
	if cacheable {
		for _, a := range avail {
			key[0] |= 1 << uint(a)
		}
		for _, t := range targets {
			key[1] |= 1 << uint(t)
		}
		b.decodeMu.RLock()
		coeff, ok := b.decodeCache[key]
		b.decodeMu.RUnlock()
		if ok {
			return coeff, nil
		}
	}
	coeff, err := matrix.SpanSolve(b.gen.SelectRows(avail), b.gen.SelectRows(targets))
	if err != nil {
		return nil, err
	}
	if cacheable {
		b.decodeMu.Lock()
		b.decodeCache[key] = coeff
		b.decodeMu.Unlock()
	}
	return coeff, nil
}

// Encode computes the parity shards for the given data shards.
func (b *Base) Encode(data [][]byte) ([][]byte, error) {
	size, err := b.checkData(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, b.n-b.k)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	b.parityMat.MulVec(parity, data)
	return parity, nil
}

// EncodeInto computes the parity shards into the caller-provided cells —
// the zero-allocation encode path. parity must hold n-k buffers, each the
// size of a data shard; contents are overwritten.
func (b *Base) EncodeInto(parity, data [][]byte) error {
	size, err := b.checkData(data)
	if err != nil {
		return err
	}
	if len(parity) != b.n-b.k {
		return fmt.Errorf("%w: got %d parity cells, want %d", ErrShardSize, len(parity), b.n-b.k)
	}
	for i, p := range parity {
		if len(p) != size {
			return fmt.Errorf("%w: parity cell %d has %d bytes, want %d", ErrShardSize, i, len(p), size)
		}
	}
	b.parityMat.MulVec(parity, data)
	return nil
}

func (b *Base) checkData(data [][]byte) (int, error) {
	if len(data) != b.k {
		return 0, fmt.Errorf("%w: got %d data shards, want %d", ErrShardSize, len(data), b.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", ErrShardSize, i)
		}
		if size == -1 {
			size = len(d)
		} else if len(d) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(d), size)
		}
	}
	return size, nil
}

// Reconstruct rebuilds nil shards in place. shards must have length n.
func (b *Base) Reconstruct(shards [][]byte) error {
	return b.ReconstructInto(shards, heapAlloc{})
}

// ReconstructInto rebuilds nil shards in place, drawing the output buffers
// from alloc — the zero-allocation decode path when alloc recycles memory.
func (b *Base) ReconstructInto(shards [][]byte, alloc Allocator) error {
	if len(shards) != b.n {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), b.n)
	}
	sc := getScratch()
	defer putScratch(sc)
	size := -1
	for i, s := range shards {
		if s == nil {
			sc.targetIdx = append(sc.targetIdx, i)
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		sc.availIdx = append(sc.availIdx, i)
	}
	erased := sc.targetIdx
	if len(erased) == 0 {
		return nil
	}
	if size == -1 {
		return fmt.Errorf("%w: all shards erased", ErrShardSize)
	}
	coeff, err := b.solveCoefficients(sc.availIdx, erased)
	if err != nil {
		return fmt.Errorf("%w: erased %v", ErrUnrecoverable, erased)
	}
	for _, a := range sc.availIdx {
		sc.availShards = append(sc.availShards, shards[a])
	}
	for range erased {
		sc.out = append(sc.out, alloc.GetShard(size))
	}
	coeff.MulVec(sc.out, sc.availShards)
	for i, e := range erased {
		shards[e] = sc.out[i]
	}
	return nil
}

// ReconstructElements rebuilds only the listed target elements from the
// non-nil shards, writing the results into shards. Unlike Reconstruct it
// succeeds as long as the *targets* are in the span of the survivors, even
// when other erased elements are unrecoverable — exactly the degraded-read
// situation, where a minimal recovery set was read and nothing else.
func (b *Base) ReconstructElements(shards [][]byte, targets []int) error {
	return b.ReconstructElementsInto(shards, targets, heapAlloc{})
}

// ReconstructElementsInto is ReconstructElements drawing output buffers from
// alloc — the zero-allocation degraded-read path when alloc recycles memory.
func (b *Base) ReconstructElementsInto(shards [][]byte, targets []int, alloc Allocator) error {
	if len(shards) != b.n {
		return fmt.Errorf("%w: got %d shards, want %d", ErrShardSize, len(shards), b.n)
	}
	sc := getScratch()
	defer putScratch(sc)
	size := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if size == -1 {
			size = len(s)
		} else if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", ErrShardSize, i, len(s), size)
		}
		sc.availIdx = append(sc.availIdx, i)
	}
	for _, t := range targets {
		if t < 0 || t >= b.n {
			return fmt.Errorf("%w: target %d out of [0,%d)", ErrShardSize, t, b.n)
		}
		if shards[t] == nil {
			sc.targetIdx = append(sc.targetIdx, t)
		}
	}
	missing := sc.targetIdx
	if len(missing) == 0 {
		return nil
	}
	if size == -1 {
		return fmt.Errorf("%w: all shards erased", ErrShardSize)
	}
	coeff, err := b.solveCoefficients(sc.availIdx, missing)
	if err != nil {
		return fmt.Errorf("%w: targets %v", ErrUnrecoverable, missing)
	}
	for _, a := range sc.availIdx {
		sc.availShards = append(sc.availShards, shards[a])
	}
	for range missing {
		sc.out = append(sc.out, alloc.GetShard(size))
	}
	coeff.MulVec(sc.out, sc.availShards)
	for i, t := range missing {
		shards[t] = sc.out[i]
	}
	return nil
}

// ApplyDelta updates the n-k parity shards for an in-place change of data
// element elem, where delta is newData XOR oldData.
func (b *Base) ApplyDelta(parity [][]byte, elem int, delta []byte) error {
	if len(parity) != b.n-b.k {
		return fmt.Errorf("%w: got %d parity shards, want %d", ErrShardSize, len(parity), b.n-b.k)
	}
	if elem < 0 || elem >= b.k {
		return fmt.Errorf("%w: data element %d out of [0,%d)", ErrShardSize, elem, b.k)
	}
	for t, p := range parity {
		if len(p) != len(delta) {
			return fmt.Errorf("%w: parity %d has %d bytes, delta %d", ErrShardSize, t, len(p), len(delta))
		}
	}
	for t, p := range parity {
		gf.MulAddSlice(b.gen.At(b.k+t, elem), p, delta)
	}
	return nil
}

// CanRecover reports whether the erasure pattern is decodable.
func (b *Base) CanRecover(erased []int) bool {
	if len(erased) == 0 {
		return true
	}
	mark := make([]bool, b.n)
	for _, e := range erased {
		if e < 0 || e >= b.n {
			return false
		}
		mark[e] = true
	}
	avail := make([]int, 0, b.n)
	for i := 0; i < b.n; i++ {
		if !mark[i] {
			avail = append(avail, i)
		}
	}
	_, err := matrix.SpanSolve(b.gen.SelectRows(avail), b.gen.SelectRows(erased))
	return err == nil
}

// computeFaultTolerance finds the largest f such that every f-subset of
// elements is recoverable, by exhaustive enumeration.
func (b *Base) computeFaultTolerance() int {
	for f := 1; f <= b.n-b.k; f++ {
		if !b.allPatternsRecoverable(f) {
			return f - 1
		}
	}
	return b.n - b.k
}

func (b *Base) allPatternsRecoverable(f int) bool {
	idx := make([]int, f)
	ok := true
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if !ok {
			return
		}
		if depth == f {
			if !b.CanRecover(idx) {
				ok = false
			}
			return
		}
		for i := start; i <= b.n-(f-depth); i++ {
			idx[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
	return ok
}

// VerifySet reports whether the surviving set `set` suffices to rebuild
// element idx. Used by tests and by planners validating recovery sets.
func (b *Base) VerifySet(idx int, set []int) bool {
	_, err := matrix.SpanSolve(b.gen.SelectRows(set), b.gen.SelectRows([]int{idx}))
	return err == nil
}

var (
	_ IntoEncoder       = (*Base)(nil)
	_ IntoReconstructor = (*Base)(nil)
)
