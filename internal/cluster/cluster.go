// Package cluster models the distributed deployment the paper targets: each
// disk lives in a storage node behind a network link, and a client
// aggregates element reads over its own ingress link. The paper restricts
// itself to "cloud storage systems with sufficient bandwidth" (§III) — this
// package makes that assumption explicit and testable by simulating the
// read path end to end:
//
//	node d's service time   = disk time(load_d) + load_d·elem/link_d
//	client aggregation time = total bytes / client ingress
//	request time            = max(max_d node_d, client aggregation)
//
// When links are fat (the paper's regime) the disk term dominates and
// EC-FRM's load balancing delivers its full gain; when the client link is
// the bottleneck every layout converges — and degraded reads, which move
// plan.Cost()× the payload across the network, suffer first. That is the
// quantitative content of the paper's §III scoping remark.
//
// The simulator and the real cluster (internal/gateway over
// internal/datanode) share the same placement types: NewPlaced deploys a
// group of the same placement.Map the gateway routes with, aggregating the
// disks each node serves onto that node's drive and link. A plan priced
// here and a plan executed over HTTP follow identical disk→node assignment,
// so simulated what-ifs (fewer nodes, thinner links) are directly
// comparable to measured BENCH_cluster numbers.
package cluster

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/placement"
)

// Config describes the cluster fabric.
type Config struct {
	// Disk is the per-node drive model.
	Disk disksim.Config
	// NodeLinkMBps is each storage node's egress bandwidth (MB/s).
	NodeLinkMBps float64
	// ClientLinkMBps is the reading client's ingress bandwidth (MB/s).
	ClientLinkMBps float64
	// Seed drives the disk jitter streams.
	Seed int64
}

// DefaultConfig models the paper's inner-enterprise regime: 10 GbE links
// (≈1250 MB/s) that comfortably exceed single-disk throughput.
func DefaultConfig() Config {
	return Config{
		Disk:           disksim.DefaultConfig(),
		NodeLinkMBps:   1250,
		ClientLinkMBps: 1250,
	}
}

// Validate reports whether the fabric is usable.
func (c Config) Validate() error {
	if c.NodeLinkMBps <= 0 || c.ClientLinkMBps <= 0 {
		return fmt.Errorf("cluster: link bandwidths must be positive (node %v, client %v)",
			c.NodeLinkMBps, c.ClientLinkMBps)
	}
	return c.Disk.Validate()
}

// Cluster simulates one scheme deployed across storage nodes. Without a
// placement each disk is its own node (the paper's idealised spread); with
// one, disks co-located by placement.Map share their node's drive queue and
// egress link.
type Cluster struct {
	scheme *core.Scheme
	cfg    Config
	array  *disksim.Array
	// nodeOf[d] is the placement node serving disk d; nil when every disk
	// is its own node.
	nodeOf []int
}

// New builds a cluster for the scheme with one disk per node.
func New(scheme *core.Scheme, cfg Config) (*Cluster, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	array, err := disksim.NewArray(scheme.N(), cfg.Disk, cfg.Seed)
	if err != nil {
		return nil, err
	}
	return &Cluster{scheme: scheme, cfg: cfg, array: array}, nil
}

// NewPlaced builds a cluster deploying one placement group of pm — the same
// disk→node rotation the real gateway routes with. Disks sharing a node are
// serialised on that node's drive and share its egress link, so losing a
// node (or shrinking the fleet) prices exactly the contention the networked
// cluster would see.
func NewPlaced(scheme *core.Scheme, cfg Config, pm *placement.Map, group int) (*Cluster, error) {
	c, err := New(scheme, cfg)
	if err != nil {
		return nil, err
	}
	if pm == nil {
		return nil, fmt.Errorf("cluster: nil placement")
	}
	if pm.Disks < scheme.N() {
		return nil, fmt.Errorf("cluster: placement has %d disks per group, scheme needs %d", pm.Disks, scheme.N())
	}
	if group < 0 || group >= pm.Groups {
		return nil, fmt.Errorf("cluster: group %d outside placement's %d groups", group, pm.Groups)
	}
	nodeOf := make([]int, scheme.N())
	for d := range nodeOf {
		nodeOf[d] = pm.Node(group, d)
	}
	c.nodeOf = nodeOf
	return c, nil
}

// Result is one simulated request outcome.
type Result struct {
	// Time is the end-to-end service time.
	Time time.Duration
	// NetworkBytes is the traffic the request moved node→client — the
	// paper's degraded-read-cost metric in bytes.
	NetworkBytes int
	// DiskBound reports whether a storage node (rather than the client
	// link) determined the service time.
	DiskBound bool
}

// Read simulates a normal or degraded read of count elements from start;
// failed lists failed nodes (nil for a normal read).
func (c *Cluster) Read(start, count, elemBytes int, failed []int) (Result, error) {
	var plan *core.Plan
	var err error
	if len(failed) == 0 {
		plan, err = c.scheme.PlanNormalRead(start, count)
	} else {
		plan, err = c.scheme.PlanDegradedRead(start, count, failed)
	}
	if err != nil {
		return Result{}, err
	}
	return c.serve(plan, elemBytes), nil
}

// serve prices a plan on the fabric. Disks placed on the same node queue
// behind one drive and share one egress link: the node's service time is the
// sum of its disks' times plus one transfer of the node's total bytes.
func (c *Cluster) serve(plan *core.Plan, elemBytes int) Result {
	var nodeWorst time.Duration
	total := 0
	nodeTime := map[int]time.Duration{}
	nodeBytes := map[int]int{}
	for d, load := range plan.Loads {
		if load == 0 {
			continue
		}
		total += load
		node := d
		if c.nodeOf != nil {
			node = c.nodeOf[d]
		}
		nodeTime[node] += c.array.DiskTime(d, load, elemBytes)
		nodeBytes[node] += load * elemBytes
	}
	for node, t := range nodeTime {
		t += transferTime(nodeBytes[node], c.cfg.NodeLinkMBps)
		if t > nodeWorst {
			nodeWorst = t
		}
	}
	client := transferTime(total*elemBytes, c.cfg.ClientLinkMBps)
	res := Result{
		NetworkBytes: total * elemBytes,
		Time:         nodeWorst,
		DiskBound:    true,
	}
	if client > nodeWorst {
		res.Time = client
		res.DiskBound = false
	}
	return res
}

func transferTime(bytes int, mbps float64) time.Duration {
	return time.Duration(float64(bytes) / (mbps * 1e6) * float64(time.Second))
}

// Scheme returns the deployed scheme.
func (c *Cluster) Scheme() *core.Scheme { return c.scheme }
