package cluster

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/placement"
	"repro/internal/workload"
)

func testScheme(t testing.TB, form layout.Form) *core.Scheme {
	t.Helper()
	return core.MustScheme(lrc.Must(6, 2, 2), form)
}

func noJitterCfg() Config {
	cfg := DefaultConfig()
	cfg.Disk.PositioningJitter = 0
	cfg.Disk.BandwidthJitter = 0
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.NodeLinkMBps = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero node link validated")
	}
	bad = DefaultConfig()
	bad.ClientLinkMBps = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative client link validated")
	}
	bad = DefaultConfig()
	bad.Disk.BandwidthMBps = 0
	if _, err := New(testScheme(t, layout.FormECFRM), bad); err == nil {
		t.Fatal("bad disk config accepted")
	}
}

func TestReadDiskBoundRegime(t *testing.T) {
	// Fat links (default): the disk term dominates, and the 8-element
	// Figure 7(a) read on EC-FRM beats standard exactly as in the single-
	// box model.
	cfg := noJitterCfg()
	std, err := New(testScheme(t, layout.FormStandard), cfg)
	if err != nil {
		t.Fatal(err)
	}
	frm, err := New(testScheme(t, layout.FormECFRM), cfg)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := std.Read(0, 8, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := frm.Read(0, 8, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.DiskBound || !rf.DiskBound {
		t.Fatal("fat links must leave requests disk-bound")
	}
	if rf.Time >= rs.Time {
		t.Fatalf("EC-FRM %v not faster than standard %v when disk-bound", rf.Time, rs.Time)
	}
	if rs.NetworkBytes != 8<<20 || rf.NetworkBytes != 8<<20 {
		t.Fatal("normal reads must move exactly the payload")
	}
}

func TestReadNetworkBoundRegimeConverges(t *testing.T) {
	// Starve the client link: every layout is bottlenecked identically and
	// the EC-FRM advantage vanishes (the paper's "sufficient bandwidth"
	// scoping, inverted).
	cfg := noJitterCfg()
	cfg.ClientLinkMBps = 10 // 10 MB/s ingress
	std, _ := New(testScheme(t, layout.FormStandard), cfg)
	frm, _ := New(testScheme(t, layout.FormECFRM), cfg)
	rs, err := std.Read(0, 8, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := frm.Read(0, 8, 1<<20, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rs.DiskBound || rf.DiskBound {
		t.Fatal("starved client link must be the bottleneck")
	}
	if rs.Time != rf.Time {
		t.Fatalf("network-bound forms must converge: %v vs %v", rs.Time, rf.Time)
	}
}

func TestDegradedReadMovesCostTimesPayload(t *testing.T) {
	cfg := noJitterCfg()
	cl, _ := New(testScheme(t, layout.FormECFRM), cfg)
	// A single lost element read in isolation needs its whole local
	// recovery set from the network: 3 reads for 1 element.
	res, err := cl.Read(2, 1, 1<<20, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkBytes != 3<<20 {
		t.Fatalf("isolated lost element moved %d bytes, want 3 MiB (local set)", res.NetworkBytes)
	}
	// A large request amortizes: the recovery set overlaps the request and
	// network bytes equal the planner's total reads exactly.
	res, err = cl.Read(0, 10, 1<<20, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := cl.Scheme().PlanDegradedRead(0, 10, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	if res.NetworkBytes != plan.TotalReads()<<20 {
		t.Fatalf("network bytes %d != total reads × elem %d", res.NetworkBytes, plan.TotalReads()<<20)
	}
}

func TestNodeLinkBottleneck(t *testing.T) {
	// A slow node link on a 2-element node adds serialization the disk
	// model alone would not show.
	cfg := noJitterCfg()
	slow := cfg
	slow.NodeLinkMBps = 20
	fast, _ := New(testScheme(t, layout.FormStandard), cfg)
	throttled, _ := New(testScheme(t, layout.FormStandard), slow)
	rf, _ := fast.Read(0, 12, 1<<20, nil)
	rt, _ := throttled.Read(0, 12, 1<<20, nil)
	if rt.Time <= rf.Time {
		t.Fatalf("throttled node links %v not slower than fat %v", rt.Time, rf.Time)
	}
}

func TestGainErodesAsClientLinkShrinks(t *testing.T) {
	// Sweep the client link from fat to thin: EC-FRM's relative gain over
	// standard must be monotonically non-increasing (within tolerance).
	gen := workload.MustGenerator(workload.Config{TotalElements: 300, Disks: 10, Seed: 4})
	trials := gen.NormalSeries(150)
	gain := func(clientMBps float64) float64 {
		cfg := noJitterCfg()
		cfg.ClientLinkMBps = clientMBps
		std, _ := New(testScheme(t, layout.FormStandard), cfg)
		frm, _ := New(testScheme(t, layout.FormECFRM), cfg)
		var ts, tf time.Duration
		for _, tr := range trials {
			rs, err := std.Read(tr.Start, tr.Count, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := frm.Read(tr.Start, tr.Count, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			ts += rs.Time
			tf += rf.Time
		}
		return float64(ts)/float64(tf) - 1
	}
	fat := gain(1250)
	mid := gain(100)
	thin := gain(25)
	if fat < 0.15 {
		t.Fatalf("fat-link gain %.2f implausibly small", fat)
	}
	if !(fat >= mid && mid >= thin) {
		t.Fatalf("gain not eroding with client bandwidth: fat %.3f mid %.3f thin %.3f", fat, mid, thin)
	}
	if thin > 0.02 {
		t.Fatalf("thin-link gain %.3f should be near zero", thin)
	}
}

func TestPlacedOneDiskPerNodeMatchesIdeal(t *testing.T) {
	// With as many nodes as disks the placement is a pure rotation: every
	// node serves exactly one disk, so pricing must be identical to the
	// idealised one-disk-per-node cluster, for every group.
	cfg := noJitterCfg()
	scheme := testScheme(t, layout.FormECFRM)
	ideal, err := New(scheme, cfg)
	if err != nil {
		t.Fatal(err)
	}
	nodes := make([]string, scheme.N())
	for i := range nodes {
		nodes[i] = "n"
	}
	pm, err := placement.New(4, scheme.N(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	for grp := 0; grp < pm.Groups; grp++ {
		placed, err := NewPlaced(scheme, cfg, pm, grp)
		if err != nil {
			t.Fatal(err)
		}
		for _, trial := range []struct{ start, count int }{{0, 8}, {3, 1}, {0, 12}} {
			ri, err := ideal.Read(trial.start, trial.count, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			rp, err := placed.Read(trial.start, trial.count, 1<<20, nil)
			if err != nil {
				t.Fatal(err)
			}
			if ri != rp {
				t.Fatalf("group %d read %d+%d: placed %+v != ideal %+v", grp, trial.start, trial.count, rp, ri)
			}
		}
	}
}

func TestPlacedFewerNodesSlower(t *testing.T) {
	// Shrinking the fleet piles disks onto shared drives and links: the same
	// read must take at least as long on 4 nodes as on 12, and strictly
	// longer than the idealised spread for a full-stripe read.
	cfg := noJitterCfg()
	scheme := testScheme(t, layout.FormECFRM)
	ideal, _ := New(scheme, cfg)
	read := func(c *Cluster) time.Duration {
		r, err := c.Read(0, 12, 1<<20, nil)
		if err != nil {
			t.Fatal(err)
		}
		return r.Time
	}
	times := map[int]time.Duration{}
	for _, w := range []int{4, 6, 12} {
		pm, err := placement.New(1, scheme.N(), make([]string, w))
		if err != nil {
			t.Fatal(err)
		}
		placed, err := NewPlaced(scheme, cfg, pm, 0)
		if err != nil {
			t.Fatal(err)
		}
		times[w] = read(placed)
	}
	if !(times[4] >= times[6] && times[6] >= times[12]) {
		t.Fatalf("service time not monotone in fleet size: %v", times)
	}
	if times[4] <= read(ideal) {
		t.Fatalf("4-node placement %v not slower than idealised spread %v", times[4], read(ideal))
	}
}

func TestPlacedNodeDownEqualsDiskSet(t *testing.T) {
	// Killing a whole node is exactly failing that node's disk set — the
	// identity the gateway chaos tests rely on. Price a degraded read with
	// the node's disks failed and check it moves more bytes than normal.
	cfg := noJitterCfg()
	scheme := testScheme(t, layout.FormECFRM)
	pm, err := placement.New(1, scheme.N(), make([]string, 6))
	if err != nil {
		t.Fatal(err)
	}
	if err := pm.CheckTolerance(scheme.FaultTolerance()); err != nil {
		t.Fatal(err)
	}
	placed, err := NewPlaced(scheme, cfg, pm, 0)
	if err != nil {
		t.Fatal(err)
	}
	down := pm.DisksOn(0, 2)
	if len(down) == 0 || len(down) > scheme.FaultTolerance() {
		t.Fatalf("node 2 serves %d disks, want 1..%d", len(down), scheme.FaultTolerance())
	}
	degraded, err := placed.Read(0, 12, 1<<20, down)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := scheme.PlanDegradedRead(0, 12, down)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.NetworkBytes != plan.TotalReads()<<20 {
		t.Fatalf("node-down read moved %d bytes, planner says %d",
			degraded.NetworkBytes, plan.TotalReads()<<20)
	}
	for _, d := range down {
		if plan.Loads[d] != 0 {
			t.Fatalf("plan reads disk %d on the downed node", d)
		}
	}
}

func TestNewPlacedValidation(t *testing.T) {
	cfg := noJitterCfg()
	scheme := testScheme(t, layout.FormECFRM)
	if _, err := NewPlaced(scheme, cfg, nil, 0); err == nil {
		t.Fatal("nil placement accepted")
	}
	small, _ := placement.New(2, scheme.N()-1, make([]string, 3))
	if _, err := NewPlaced(scheme, cfg, small, 0); err == nil {
		t.Fatal("undersized placement accepted")
	}
	pm, _ := placement.New(2, scheme.N(), make([]string, 4))
	if _, err := NewPlaced(scheme, cfg, pm, 2); err == nil {
		t.Fatal("out-of-range group accepted")
	}
}

func TestNewRejectsBadArray(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Disk = disksim.Config{BandwidthMBps: -5}
	if _, err := New(testScheme(t, layout.FormECFRM), cfg); err == nil {
		t.Fatal("invalid disk model accepted")
	}
}
