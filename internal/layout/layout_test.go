package layout

import (
	"testing"
	"testing/quick"
)

// paperShapes are the (n,k) candidate shapes from Table I:
// RS (6,3)→(9,6), (8,4)→(12,8), (10,5)→(15,10);
// LRC (6,2,2)→(10,6), (8,2,3)→(13,8), (10,2,4)→(16,10).
var paperShapes = [][2]int{{9, 6}, {12, 8}, {15, 10}, {10, 6}, {13, 8}, {16, 10}}

func allShapes() [][2]int {
	shapes := append([][2]int{}, paperShapes...)
	// Plus awkward shapes: coprime, k|n, large r.
	shapes = append(shapes, [2]int{7, 3}, [2]int{10, 5}, [2]int{12, 9}, [2]int{5, 4}, [2]int{16, 4})
	return shapes
}

func TestGCD(t *testing.T) {
	cases := [][3]int{{9, 6, 3}, {10, 6, 2}, {7, 3, 1}, {10, 5, 5}, {12, 8, 4}}
	for _, c := range cases {
		if got := gcd(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestValidatePanics(t *testing.T) {
	for _, fn := range []func(){
		func() { NewStandard(3, 3) },
		func() { NewRotated(2, 0) },
		func() { NewECFRM(5, 6) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid shape did not panic")
				}
			}()
			fn()
		}()
	}
}

func TestStandardGeometry(t *testing.T) {
	s := NewStandard(10, 6)
	if s.Rows() != 1 || s.Groups() != 1 || s.DataPerStripe() != 6 || s.N() != 10 || s.K() != 6 {
		t.Fatal("standard geometry wrong")
	}
	for e := 0; e < 6; e++ {
		if p := s.DataPos(e); p.Row != 0 || p.Col != e {
			t.Fatalf("DataPos(%d) = %+v", e, p)
		}
	}
	c := s.CellAt(Pos{0, 7})
	if c.IsData || c.Element != 7 || c.Group != 0 {
		t.Fatalf("CellAt parity wrong: %+v", c)
	}
	if s.Disk(42, 3) != 3 || s.Col(42, 3) != 3 {
		t.Fatal("standard must not rotate")
	}
}

func TestRotatedMapping(t *testing.T) {
	r := NewRotated(10, 6)
	if r.Name() != "rotated" {
		t.Fatal("name")
	}
	// Stripe 0: identity. Stripe 1: window slides down by one
	// (left-symmetric convention).
	if r.Disk(0, 3) != 3 || r.Disk(1, 3) != 2 || r.Disk(1, 0) != 9 {
		t.Fatal("rotation wrong")
	}
	// Disk and Col must be inverses for many stripes.
	for stripe := 0; stripe < 25; stripe++ {
		for col := 0; col < 10; col++ {
			if r.Col(stripe, r.Disk(stripe, col)) != col {
				t.Fatalf("Col∘Disk != id at stripe %d col %d", stripe, col)
			}
		}
	}
}

func TestECFRMGeometryPaperExample(t *testing.T) {
	// The paper's Figure 4 example: (10,6) candidate → r=2, 5 rows,
	// 3 data rows, 5 groups.
	e := NewECFRM(10, 6)
	if e.R() != 2 || e.Rows() != 5 || e.DataRows() != 3 || e.Groups() != 5 {
		t.Fatalf("geometry: r=%d rows=%d dataRows=%d groups=%d",
			e.R(), e.Rows(), e.DataRows(), e.Groups())
	}
	if e.DataPerStripe() != 30 {
		t.Fatalf("DataPerStripe = %d, want 30", e.DataPerStripe())
	}
}

func TestECFRMFigure4Cells(t *testing.T) {
	// Worked cells from the paper's §IV-B discussion of Figure 4
	// ((10,6) candidate, r=2, k/r=3):
	//   D0 = {d0,0 .. d0,5}; P0,0 = {p3,6, p3,7}; P0,1 = {p4,8, p4,9}
	//   D1 starts at d0,6 and wraps to d1,1 (green group in Fig. 5)
	//   D3's last data element is d2,3; P3,0 = {p3,4, p3,5}; P3,1 = {p4,6, p4,7}
	e := NewECFRM(10, 6)

	// Group 0 data at row 0, cols 0..5.
	for t2 := 0; t2 < 6; t2++ {
		if p := e.GroupCell(0, t2); p != (Pos{0, t2}) {
			t.Fatalf("G0 d%d at %+v", t2, p)
		}
	}
	// Group 0 parities.
	wantP0 := []Pos{{3, 6}, {3, 7}, {4, 8}, {4, 9}}
	for i, want := range wantP0 {
		if p := e.GroupCell(0, 6+i); p != want {
			t.Fatalf("G0 p%d at %+v, want %+v", i, p, want)
		}
	}
	// Group 1 data: d0,6..d0,9 then d1,0, d1,1.
	wantD1 := []Pos{{0, 6}, {0, 7}, {0, 8}, {0, 9}, {1, 0}, {1, 1}}
	for t2, want := range wantD1 {
		if p := e.GroupCell(1, t2); p != want {
			t.Fatalf("G1 d%d at %+v, want %+v", t2, p, want)
		}
	}
	// Group 1 parities (paper Fig. 5: {p3,2, p3,3} and {p4,4, p4,5}).
	wantP1 := []Pos{{3, 2}, {3, 3}, {4, 4}, {4, 5}}
	for i, want := range wantP1 {
		if p := e.GroupCell(1, 6+i); p != want {
			t.Fatalf("G1 p%d at %+v, want %+v", i, p, want)
		}
	}
	// Group 3: P3,0 = {p3,4, p3,5}, P3,1 = {p4,6, p4,7}.
	wantP3 := []Pos{{3, 4}, {3, 5}, {4, 6}, {4, 7}}
	for i, want := range wantP3 {
		if p := e.GroupCell(3, 6+i); p != want {
			t.Fatalf("G3 p%d at %+v, want %+v", i, p, want)
		}
	}
	// And G3's last data element must be d2,3.
	if p := e.GroupCell(3, 5); p != (Pos{2, 3}) {
		t.Fatalf("G3 last data at %+v, want {2 3}", p)
	}
}

func TestECFRMDataSequential(t *testing.T) {
	// Equation (1): data element x at row x/n, col x%n — perfectly
	// sequential striping over all disks.
	for _, sh := range allShapes() {
		e := NewECFRM(sh[0], sh[1])
		for x := 0; x < e.DataPerStripe(); x++ {
			p := e.DataPos(x)
			if p.Row != x/sh[0] || p.Col != x%sh[0] {
				t.Fatalf("(%d,%d): DataPos(%d) = %+v", sh[0], sh[1], x, p)
			}
		}
	}
}

func TestECFRMCellInversionExhaustive(t *testing.T) {
	// CellAt must invert GroupCell for every cell of every shape.
	for _, sh := range allShapes() {
		e := NewECFRM(sh[0], sh[1])
		for g := 0; g < e.Groups(); g++ {
			for t2 := 0; t2 < e.N(); t2++ {
				p := e.GroupCell(g, t2)
				c := e.CellAt(p)
				if c.Group != g || c.Element != t2 {
					t.Fatalf("(%d,%d): cell %+v maps to (g=%d,t=%d), want (%d,%d)",
						sh[0], sh[1], p, c.Group, c.Element, g, t2)
				}
				if c.IsData != (t2 < e.K()) {
					t.Fatalf("(%d,%d): cell %+v IsData wrong", sh[0], sh[1], p)
				}
			}
		}
	}
}

func TestECFRMLemma1Invariant(t *testing.T) {
	// Lemma 1's precondition: every group spans all n columns exactly once,
	// i.e. each disk holds exactly one element of every group. Also the
	// perfect-tiling invariant: every cell belongs to exactly one group.
	for _, sh := range allShapes() {
		n, k := sh[0], sh[1]
		e := NewECFRM(n, k)
		// Group → columns covered.
		for g := 0; g < e.Groups(); g++ {
			cols := make(map[int]bool, n)
			for t2 := 0; t2 < n; t2++ {
				cols[e.GroupCell(g, t2).Col] = true
			}
			if len(cols) != n {
				t.Fatalf("(%d,%d): group %d covers %d distinct columns, want %d",
					n, k, g, len(cols), n)
			}
		}
		// Cell → unique (group, element) covering every slot exactly once.
		seen := make(map[Pos]bool)
		elems := make(map[[2]int]bool)
		for g := 0; g < e.Groups(); g++ {
			for t2 := 0; t2 < n; t2++ {
				p := e.GroupCell(g, t2)
				if seen[p] {
					t.Fatalf("(%d,%d): cell %+v assigned twice", n, k, p)
				}
				seen[p] = true
				elems[[2]int{g, t2}] = true
			}
		}
		if len(seen) != e.Rows()*n {
			t.Fatalf("(%d,%d): %d cells assigned, want %d", n, k, len(seen), e.Rows()*n)
		}
	}
}

func TestECFRMParityRowsTile(t *testing.T) {
	// Parity rows contain only parity cells; data rows only data cells.
	for _, sh := range allShapes() {
		e := NewECFRM(sh[0], sh[1])
		for row := 0; row < e.Rows(); row++ {
			for col := 0; col < e.N(); col++ {
				c := e.CellAt(Pos{row, col})
				if got, want := c.IsData, row < e.DataRows(); got != want {
					t.Fatalf("(%d,%d): cell (%d,%d) IsData=%v, want %v",
						sh[0], sh[1], row, col, got, want)
				}
			}
		}
	}
}

func TestECFRMPanics(t *testing.T) {
	e := NewECFRM(10, 6)
	for name, fn := range map[string]func(){
		"DataPosNeg":    func() { e.DataPos(-1) },
		"DataPosBig":    func() { e.DataPos(30) },
		"CellAtBig":     func() { e.CellAt(Pos{5, 0}) },
		"CellAtNegCol":  func() { e.CellAt(Pos{0, -1}) },
		"GroupCellBig":  func() { e.GroupCell(5, 0) },
		"GroupCellElem": func() { e.GroupCell(0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
	s := NewStandard(10, 6)
	for name, fn := range map[string]func(){
		"StdDataPos":   func() { s.DataPos(6) },
		"StdCellAt":    func() { s.CellAt(Pos{1, 0}) },
		"StdGroupCell": func() { s.GroupCell(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestNewFactory(t *testing.T) {
	for _, form := range []Form{FormStandard, FormRotated, FormECFRM} {
		l, err := New(form, 10, 6)
		if err != nil {
			t.Fatalf("New(%s): %v", form, err)
		}
		if l.Name() != string(form) {
			t.Fatalf("Name = %q, want %q", l.Name(), form)
		}
	}
	if _, err := New("bogus", 10, 6); err == nil {
		t.Fatal("unknown form must error")
	}
}

func TestPropertyDataPosBijective(t *testing.T) {
	f := func(rawN, rawK uint8) bool {
		n := int(rawN%14) + 4
		k := int(rawK)%(n-1) + 1
		e := NewECFRM(n, k)
		seen := make(map[Pos]bool)
		for x := 0; x < e.DataPerStripe(); x++ {
			p := e.DataPos(x)
			if seen[p] {
				return false
			}
			seen[p] = true
			if c := e.CellAt(p); !c.IsData {
				return false
			}
		}
		return len(seen) == e.DataPerStripe()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestECFRMNormalReadSpreadsBetterThanStandard(t *testing.T) {
	// The paper's Figure 3/7(a) observation: an 8-element read on the
	// (10,6) shape loads some disk twice under standard/rotated layouts
	// but only once under EC-FRM.
	n, k := 10, 6
	maxLoad := func(l Layout, start, count int) int {
		loads := make(map[int]int)
		for i := 0; i < count; i++ {
			x := start + i
			stripe := x / l.DataPerStripe()
			p := l.DataPos(x % l.DataPerStripe())
			loads[l.Disk(stripe, p.Col)]++
		}
		max := 0
		for _, v := range loads {
			if v > max {
				max = v
			}
		}
		return max
	}
	if got := maxLoad(NewStandard(n, k), 0, 8); got != 2 {
		t.Fatalf("standard 8-element read max load = %d, want 2", got)
	}
	if got := maxLoad(NewRotated(n, k), 0, 8); got != 2 {
		t.Fatalf("rotated 8-element read max load = %d, want 2", got)
	}
	if got := maxLoad(NewECFRM(n, k), 0, 8); got != 1 {
		t.Fatalf("ecfrm 8-element read max load = %d, want 1", got)
	}
}

func TestRotatedStride(t *testing.T) {
	r := NewRotatedStride(10, 6, 3)
	if r.Stride() != 3 {
		t.Fatalf("stride = %d", r.Stride())
	}
	if r.Disk(1, 5) != 2 || r.Disk(2, 0) != 4 {
		t.Fatalf("stride-3 mapping wrong: %d %d", r.Disk(1, 5), r.Disk(2, 0))
	}
	for stripe := 0; stripe < 30; stripe++ {
		for col := 0; col < 10; col++ {
			if r.Col(stripe, r.Disk(stripe, col)) != col {
				t.Fatal("Col∘Disk != id for stride 3")
			}
		}
	}
	for _, s := range []int{0, 10, -1} {
		func(stride int) {
			defer func() {
				if recover() == nil {
					t.Errorf("stride %d did not panic", stride)
				}
			}()
			NewRotatedStride(10, 6, stride)
		}(s)
	}
}
