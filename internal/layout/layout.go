// Package layout implements the stripe layouts the EC-FRM paper compares:
//
//   - Standard: the candidate code's native one-row layout — data on disks
//     0..k-1, parity on disks k..n-1, identical in every stripe (Figures 1-2).
//   - Rotated: the standard layout with the logical→physical disk mapping
//     rotated by one position per stripe (the "rotated stripes" baseline,
//     Figure 3b).
//   - ECFRM: the paper's framework layout (§IV-B, Equations 1-4): a stripe of
//     n/r rows × n columns with r = gcd(n,k), data elements deployed
//     sequentially across ALL disks and parities arranged so that every code
//     group spans all n disks exactly once.
//
// A layout is pure geometry: it knows where cells live and which code group
// each cell belongs to, but nothing about field arithmetic. The core package
// combines a layout with a candidate code into an operational scheme.
package layout

import "fmt"

// Pos identifies a cell within one stripe: a row and a column. Columns are
// logical disk positions before any per-stripe rotation.
type Pos struct {
	Row int
	Col int
}

// Cell describes a stripe cell: its position, the code group it belongs to,
// its element index within that group's candidate-code row (0..n-1, data for
// element < k), and whether it is a data cell.
type Cell struct {
	Pos
	Group   int
	Element int
	IsData  bool
}

// Layout maps a candidate code with n elements (k data) per row onto a
// stripe geometry.
type Layout interface {
	// Name identifies the layout form: "standard", "rotated", or "ecfrm".
	Name() string
	// N is the number of columns (disks) in a stripe.
	N() int
	// K is the number of data elements per candidate-code row.
	K() int
	// Rows is the number of rows per stripe.
	Rows() int
	// Groups is the number of independent code groups per stripe.
	Groups() int
	// DataPerStripe is the number of data elements in one stripe
	// (Groups() × K()).
	DataPerStripe() int
	// DataPos returns the cell position of in-stripe sequential data
	// element e, 0 ≤ e < DataPerStripe(). Sequential data elements are the
	// order user bytes are laid down in.
	DataPos(e int) Pos
	// CellAt describes the cell at position p.
	CellAt(p Pos) Cell
	// GroupCell returns the position of element t (0..n-1) of group g.
	GroupCell(g, t int) Pos
	// Disk maps a stripe-local column to a physical disk for the given
	// stripe index (identity except for rotated layouts).
	Disk(stripe, col int) int
	// Col inverts Disk for the given stripe.
	Col(stripe, disk int) int
}

// gcd returns the greatest common divisor of a and b.
func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func validate(n, k int) {
	if k < 1 || n <= k {
		panic(fmt.Sprintf("layout: invalid candidate shape n=%d k=%d", n, k))
	}
}

// ---------------------------------------------------------------------------
// Standard layout
// ---------------------------------------------------------------------------

// Standard is the candidate code's native one-row layout.
type Standard struct{ n, k int }

// NewStandard returns the standard layout for an (n,k) candidate code.
func NewStandard(n, k int) *Standard {
	validate(n, k)
	return &Standard{n: n, k: k}
}

// Name implements Layout.
func (s *Standard) Name() string { return "standard" }

// N implements Layout.
func (s *Standard) N() int { return s.n }

// K implements Layout.
func (s *Standard) K() int { return s.k }

// Rows implements Layout.
func (s *Standard) Rows() int { return 1 }

// Groups implements Layout.
func (s *Standard) Groups() int { return 1 }

// DataPerStripe implements Layout.
func (s *Standard) DataPerStripe() int { return s.k }

// DataPos implements Layout.
func (s *Standard) DataPos(e int) Pos {
	if e < 0 || e >= s.k {
		panic(fmt.Sprintf("layout: data element %d out of [0,%d)", e, s.k))
	}
	return Pos{Row: 0, Col: e}
}

// CellAt implements Layout.
func (s *Standard) CellAt(p Pos) Cell {
	if p.Row != 0 || p.Col < 0 || p.Col >= s.n {
		panic(fmt.Sprintf("layout: cell %+v out of 1×%d", p, s.n))
	}
	return Cell{Pos: p, Group: 0, Element: p.Col, IsData: p.Col < s.k}
}

// GroupCell implements Layout.
func (s *Standard) GroupCell(g, t int) Pos {
	if g != 0 || t < 0 || t >= s.n {
		panic(fmt.Sprintf("layout: group cell (%d,%d) invalid", g, t))
	}
	return Pos{Row: 0, Col: t}
}

// Disk implements Layout: identity mapping.
func (s *Standard) Disk(_, col int) int { return col }

// Col implements Layout: identity mapping.
func (s *Standard) Col(_, disk int) int { return disk }

// ---------------------------------------------------------------------------
// Rotated layout
// ---------------------------------------------------------------------------

// Rotated is the standard layout with a per-stripe rotation of the
// logical→physical disk mapping (the R-RS / R-LRC baseline).
type Rotated struct {
	Standard
	stride int
}

// NewRotated returns the rotated layout for an (n,k) candidate code with
// the conventional stride of one position per stripe.
func NewRotated(n, k int) *Rotated {
	return NewRotatedStride(n, k, 1)
}

// NewRotatedStride rotates by `stride` positions per stripe — an ablation
// knob over the baseline. stride must be in [1, n); stride 1 is the RAID-5
// left-symmetric convention the paper's R- forms use.
func NewRotatedStride(n, k, stride int) *Rotated {
	validate(n, k)
	if stride < 1 || stride >= n {
		panic(fmt.Sprintf("layout: rotation stride %d out of [1,%d)", stride, n))
	}
	return &Rotated{Standard: Standard{n: n, k: k}, stride: stride}
}

// Name implements Layout.
func (r *Rotated) Name() string { return "rotated" }

// Stride returns the per-stripe rotation amount.
func (r *Rotated) Stride() int { return r.stride }

// Disk implements Layout: column c of stripe s lives on disk
// (c - s·stride) mod n, i.e. the stripe's window of data disks slides down
// per stripe (the RAID-5 left-symmetric convention at stride 1). Sliding
// opposite to the read direction lets a boundary-crossing sequential read
// start the next stripe on a disk the previous stripe's tail did not touch.
func (r *Rotated) Disk(stripe, col int) int {
	return ((col-stripe*r.stride)%r.n + r.n) % r.n
}

// Col implements Layout.
func (r *Rotated) Col(stripe, disk int) int {
	return ((disk+stripe*r.stride)%r.n + r.n) % r.n
}

// ---------------------------------------------------------------------------
// EC-FRM layout
// ---------------------------------------------------------------------------

// ECFRM is the paper's layout (§IV-B): r = gcd(n,k); a stripe has n/r rows
// and n columns; the first k/r rows hold data laid out sequentially across
// all columns; group i consists of the n consecutive (mod n) column slots
// starting at column i·k, with its n-k parities continuing right after its
// k data elements.
type ECFRM struct {
	n, k, r  int
	rows     int
	dataRows int
	groups   int
	// kInv is the inverse of k/r modulo n/r, used to invert the
	// column→group mapping for parity cells.
	kInv int
}

// NewECFRM returns the EC-FRM layout for an (n,k) candidate code.
func NewECFRM(n, k int) *ECFRM {
	validate(n, k)
	r := gcd(n, k)
	e := &ECFRM{
		n: n, k: k, r: r,
		rows:     n / r,
		dataRows: k / r,
		groups:   n / r,
	}
	// Find (k/r)^{-1} mod n/r; exists because gcd(k/r, n/r) = 1.
	kr, nr := k/r, n/r
	for i := 0; i < nr; i++ {
		if (kr*i)%nr == 1%nr {
			e.kInv = i
			break
		}
	}
	return e
}

// Name implements Layout.
func (e *ECFRM) Name() string { return "ecfrm" }

// N implements Layout.
func (e *ECFRM) N() int { return e.n }

// K implements Layout.
func (e *ECFRM) K() int { return e.k }

// R returns gcd(n,k), the paper's parameter r.
func (e *ECFRM) R() int { return e.r }

// Rows implements Layout.
func (e *ECFRM) Rows() int { return e.rows }

// DataRows returns the number of leading rows that hold data (k/r).
func (e *ECFRM) DataRows() int { return e.dataRows }

// Groups implements Layout.
func (e *ECFRM) Groups() int { return e.groups }

// DataPerStripe implements Layout.
func (e *ECFRM) DataPerStripe() int { return e.groups * e.k }

// DataPos implements Layout. Equation (1): sequential data element
// x = i·k + t lands at row ⌊x/n⌋, column x mod n.
func (e *ECFRM) DataPos(x int) Pos {
	if x < 0 || x >= e.DataPerStripe() {
		panic(fmt.Sprintf("layout: data element %d out of [0,%d)", x, e.DataPerStripe()))
	}
	return Pos{Row: x / e.n, Col: x % e.n}
}

// GroupCell implements Layout. Element t of group g lives in column
// ⟨g·k + t⟩ mod n; data elements (t < k) in row ⌊(g·k+t)/n⌋ and parity
// elements (t ≥ k) in row k/r + ⌊(t-k)/r⌋ (Equation 2 / Step-1 procedure).
func (e *ECFRM) GroupCell(g, t int) Pos {
	if g < 0 || g >= e.groups || t < 0 || t >= e.n {
		panic(fmt.Sprintf("layout: group cell (%d,%d) invalid", g, t))
	}
	col := (g*e.k + t) % e.n
	if t < e.k {
		return Pos{Row: (g*e.k + t) / e.n, Col: col}
	}
	return Pos{Row: e.dataRows + (t-e.k)/e.r, Col: col}
}

// CellAt implements Layout, inverting GroupCell.
func (e *ECFRM) CellAt(p Pos) Cell {
	if p.Row < 0 || p.Row >= e.rows || p.Col < 0 || p.Col >= e.n {
		panic(fmt.Sprintf("layout: cell %+v out of %d×%d", p, e.rows, e.n))
	}
	if p.Row < e.dataRows {
		x := p.Row*e.n + p.Col
		return Cell{Pos: p, Group: x / e.k, Element: x % e.k, IsData: true}
	}
	// Parity cell. Row gives j; the column determines the group: the cell
	// belongs to group g with col ≡ g·k + k + j·r + s (mod n), 0 ≤ s < r.
	j := p.Row - e.dataRows
	cp := ((p.Col-e.k-j*e.r)%e.n + e.n) % e.n
	s := cp % e.r
	b := cp - s // g·k ≡ b (mod n), b a multiple of r
	g := (b / e.r * e.kInv) % (e.n / e.r)
	return Cell{Pos: p, Group: g, Element: e.k + j*e.r + s, IsData: false}
}

// Disk implements Layout: identity — EC-FRM needs no per-stripe rotation
// because data already spreads across all disks.
func (e *ECFRM) Disk(_, col int) int { return col }

// Col implements Layout.
func (e *ECFRM) Col(_, disk int) int { return disk }

var (
	_ Layout = (*Standard)(nil)
	_ Layout = (*Rotated)(nil)
	_ Layout = (*ECFRM)(nil)
)

// Form names a layout family; used to construct layouts generically.
type Form string

// The three layout forms the paper evaluates.
const (
	FormStandard Form = "standard"
	FormRotated  Form = "rotated"
	FormECFRM    Form = "ecfrm"
)

// New constructs the layout of the given form for an (n,k) candidate shape.
func New(form Form, n, k int) (Layout, error) {
	switch form {
	case FormStandard:
		return NewStandard(n, k), nil
	case FormRotated:
		return NewRotated(n, k), nil
	case FormECFRM:
		return NewECFRM(n, k), nil
	default:
		return nil, fmt.Errorf("layout: unknown form %q", form)
	}
}
