package experiment

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/vertical"
	"repro/internal/workload"
)

// MotivationRow is one line of the §III-A comparison: why vertical codes
// read well but are rarely deployed, and how EC-FRM closes the gap.
type MotivationRow struct {
	Name             string
	Disks            int
	StorageOverhead  float64
	FaultTolerance   int
	ArbitraryDisks   bool // applies to arbitrary disk counts
	NormalSpeedMBps  float64
	MeanMaxLoad      float64
	MeanContributing float64
}

// MotivationTable reproduces the paper's §II-B/§III-A argument as a
// measurement: X-Code and WEAVER spread normal reads across all disks (high
// speed) but pay for it in overhead, tolerance, or disk-count restrictions;
// standard LRC has the opposite profile; EC-FRM-LRC combines both
// strengths. All rows replay the same seeded normal-read protocol, with the
// disk count fixed by each code's own constraints.
func MotivationTable(opt Options) ([]MotivationRow, error) {
	opt = opt.Defaults()
	var rows []MotivationRow

	// Shared measurement for a data-placement function.
	measure := func(name string, disks int, dataDiskOf func(x int) int, overhead float64, ft int, arb bool) error {
		gen, err := workload.NewGenerator(workload.Config{
			TotalElements: opt.TotalElements,
			Disks:         disks,
			MaxSize:       opt.MaxReadSize,
			Seed:          opt.Seed,
		})
		if err != nil {
			return err
		}
		array, err := disksim.NewArray(disks, opt.Disk, opt.Seed)
		if err != nil {
			return err
		}
		var speedSum, maxLoadSum, contribSum float64
		trials := gen.NormalSeries(opt.NormalTrials)
		loads := make([]int, disks)
		for _, tr := range trials {
			for d := range loads {
				loads[d] = 0
			}
			maxLoad, contrib := 0, 0
			for x := tr.Start; x < tr.Start+tr.Count; x++ {
				d := dataDiskOf(x)
				loads[d]++
				if loads[d] > maxLoad {
					maxLoad = loads[d]
				}
			}
			for _, l := range loads {
				if l > 0 {
					contrib++
				}
			}
			t := array.ServeRead(loads, opt.ElementBytes)
			speedSum += disksim.SpeedMBps(tr.Count*opt.ElementBytes, t)
			maxLoadSum += float64(maxLoad)
			contribSum += float64(contrib)
		}
		n := float64(len(trials))
		rows = append(rows, MotivationRow{
			Name: name, Disks: disks,
			StorageOverhead: overhead, FaultTolerance: ft, ArbitraryDisks: arb,
			NormalSpeedMBps:  speedSum / n,
			MeanMaxLoad:      maxLoadSum / n,
			MeanContributing: contribSum / n,
		})
		return nil
	}

	// Horizontal baseline and EC-FRM at the paper's (6,2,2) shape (10 disks).
	code := lrc.Must(6, 2, 2)
	for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
		scheme := core.MustScheme(code, form)
		lay := scheme.Layout()
		dps := lay.DataPerStripe()
		err := measure(scheme.Name(), scheme.N(), func(x int) int {
			return lay.Disk(x/dps, lay.DataPos(x%dps).Col)
		}, scheme.StorageOverhead(), scheme.FaultTolerance(), true)
		if err != nil {
			return nil, err
		}
	}

	// X-Code at the nearest prime (11 disks for a ~10-disk array).
	xc, err := vertical.NewXCode(11)
	if err != nil {
		return nil, err
	}
	xrefs := xc.DataRefs()
	if err := measure(xc.Name(), xc.Disks(), func(x int) int {
		return xrefs[x%len(xrefs)].Disk
	}, xc.StorageOverhead(), 2, false); err != nil {
		return nil, err
	}

	// WEAVER at 10 disks.
	wv, err := vertical.NewWeaver(10)
	if err != nil {
		return nil, err
	}
	wrefs := wv.DataRefs()
	if err := measure(wv.Name(), wv.Disks(), func(x int) int {
		return wrefs[x%len(wrefs)].Disk
	}, wv.StorageOverhead(), 2, true); err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderMotivation formats the table.
func RenderMotivation(rows []MotivationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Motivation (§III-A): vertical codes vs horizontal vs EC-FRM\n")
	fmt.Fprintf(&b, "%-18s %5s %9s %9s %9s %10s %8s %8s\n",
		"code", "disks", "overhead", "tolerate", "any-n?", "speed MB/s", "maxload", "contrib")
	for _, r := range rows {
		arb := "yes"
		if !r.ArbitraryDisks {
			arb = "no"
		}
		fmt.Fprintf(&b, "%-18s %5d %8.2fx %9d %9s %10.1f %8.2f %8.2f\n",
			r.Name, r.Disks, r.StorageOverhead, r.FaultTolerance, arb,
			r.NormalSpeedMBps, r.MeanMaxLoad, r.MeanContributing)
	}
	b.WriteString("→ vertical codes match EC-FRM's read balance but pay 1.22-2.0x overhead at\n")
	b.WriteString("  tolerance 2 and (X-Code) prime-only disk counts; EC-FRM-LRC keeps LRC's\n")
	b.WriteString("  overhead/tolerance while reading like a vertical code.\n")
	return b.String()
}
