package experiment

import (
	"fmt"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/workload"
)

// BandwidthPoint is one cell of the bandwidth-sensitivity sweep.
type BandwidthPoint struct {
	ClientLinkMBps float64
	Form           layout.Form
	SpeedMBps      float64
	DiskBoundFrac  float64 // fraction of requests bottlenecked at a node
}

// BandwidthSweep quantifies the paper's §III scoping assumption ("cloud
// storage systems with sufficient bandwidth"): the same normal-read trial
// stream runs through the cluster model at several client ingress
// bandwidths. With fat links requests are disk-bound and EC-FRM delivers
// its full gain; as the client link starves, every layout converges to the
// same wire-limited speed.
func BandwidthSweep(clientMBps []float64, opt Options) ([]BandwidthPoint, error) {
	opt = opt.Defaults()
	code := lrc.Must(6, 2, 2)
	gen, err := workload.NewGenerator(workload.Config{
		TotalElements: opt.TotalElements,
		Disks:         code.N(),
		MaxSize:       opt.MaxReadSize,
		Seed:          opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	trials := gen.NormalSeries(opt.NormalTrials)

	var out []BandwidthPoint
	for _, mbps := range clientMBps {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
			scheme := core.MustScheme(code, form)
			cfg := cluster.DefaultConfig()
			cfg.Disk = opt.Disk
			cfg.ClientLinkMBps = mbps
			cfg.Seed = opt.Seed
			cl, err := cluster.New(scheme, cfg)
			if err != nil {
				return nil, err
			}
			var speedSum, diskBound float64
			for _, tr := range trials {
				res, err := cl.Read(tr.Start, tr.Count, opt.ElementBytes, nil)
				if err != nil {
					return nil, err
				}
				speedSum += float64(tr.Count*opt.ElementBytes) / 1e6 / res.Time.Seconds()
				if res.DiskBound {
					diskBound++
				}
			}
			n := float64(len(trials))
			out = append(out, BandwidthPoint{
				ClientLinkMBps: mbps,
				Form:           form,
				SpeedMBps:      speedSum / n,
				DiskBoundFrac:  diskBound / n,
			})
		}
	}
	return out, nil
}

// RenderBandwidth formats the sweep.
func RenderBandwidth(points []BandwidthPoint) string {
	var b strings.Builder
	b.WriteString("Bandwidth sensitivity (§III scoping): normal reads on (6,2,2) through the cluster model\n")
	fmt.Fprintf(&b, "%-14s %-10s %12s %12s\n", "client MB/s", "form", "speed MB/s", "disk-bound")
	for _, p := range points {
		fmt.Fprintf(&b, "%-14.0f %-10s %12.1f %11.0f%%\n",
			p.ClientLinkMBps, p.Form, p.SpeedMBps, 100*p.DiskBoundFrac)
	}
	b.WriteString("→ with fat links (the paper's regime) requests are disk-bound and EC-FRM\n")
	b.WriteString("  wins by its load-balance margin; as the client link starves, both forms\n")
	b.WriteString("  converge to the wire speed — 'sufficient bandwidth' is load-bearing.\n")
	return b.String()
}
