// Package experiment reproduces the EC-FRM paper's evaluation (§VI): for
// each candidate code family (Reed-Solomon, LRC), each Table I parameter
// set, and each layout form (standard, rotated, EC-FRM), it runs the
// randomized read protocol and reports the paper's metrics —
//
//	Figure 8(a)/(b): average normal read speed (MB/s),
//	Figure 9(a)/(b): average degraded read cost (reads per requested element),
//	Figure 9(c)/(d): average degraded read speed (MB/s).
//
// Methodology matches §VI-B/§VI-C: every form of a configuration sees the
// identical seeded trial sequence, so differences come only from the layout.
// Timing comes from the disksim array model; planning from the core planner.
package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/workload"
)

// CodeSpec names one candidate code configuration.
type CodeSpec struct {
	Family string // "RS" or "LRC"
	K      int
	L      int // LRC only
	M      int
}

// Label renders the paper's parameter label, e.g. "(6,3)" or "(6,2,2)".
func (cs CodeSpec) Label() string {
	if cs.Family == "LRC" {
		return fmt.Sprintf("(%d,%d,%d)", cs.K, cs.L, cs.M)
	}
	return fmt.Sprintf("(%d,%d)", cs.K, cs.M)
}

// Build constructs the candidate code. Families: "RS", "LRC", and "CRS"
// (Cauchy Reed-Solomon, an extension family showing the framework accepts
// any one-row candidate).
func (cs CodeSpec) Build() (codes.Code, error) {
	switch cs.Family {
	case "RS":
		return rs.New(cs.K, cs.M)
	case "LRC":
		return lrc.New(cs.K, cs.L, cs.M)
	case "CRS":
		return crs.New(cs.K, cs.M)
	default:
		return nil, fmt.Errorf("experiment: unknown family %q", cs.Family)
	}
}

// Table I of the paper.
var (
	// RSConfigs are the Reed-Solomon parameter sets.
	RSConfigs = []CodeSpec{
		{Family: "RS", K: 6, M: 3},
		{Family: "RS", K: 8, M: 4},
		{Family: "RS", K: 10, M: 5},
	}
	// LRCConfigs are the LRC parameter sets.
	LRCConfigs = []CodeSpec{
		{Family: "LRC", K: 6, L: 2, M: 2},
		{Family: "LRC", K: 8, L: 2, M: 3},
		{Family: "LRC", K: 10, L: 2, M: 4},
	}
)

// Forms are the three layout forms in the order the paper plots them.
var Forms = []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM}

// FormLabel renders the paper's legend label for a form within a family.
func FormLabel(form layout.Form, family string) string {
	switch form {
	case layout.FormStandard:
		return family
	case layout.FormRotated:
		return "R-" + family
	case layout.FormECFRM:
		return "EC-FRM-" + family
	}
	return string(form)
}

// Options configure an experiment run. The zero value is completed by
// Defaults.
type Options struct {
	// ElementBytes is the element size (paper: ~1 MB).
	ElementBytes int
	// Disk is the drive timing model.
	Disk disksim.Config
	// Seed drives workload and timing randomness.
	Seed int64
	// NormalTrials and DegradedTrials are the per-configuration trial
	// counts (paper: 2000 and 5000).
	NormalTrials   int
	DegradedTrials int
	// TotalElements is the readable extent in data elements.
	TotalElements int
	// MaxReadSize caps request sizes (paper: 20).
	MaxReadSize int
	// Parallel is the number of (spec, form) cells measured concurrently
	// (≤1 = sequential). Results are bit-identical either way: trial lists
	// are generated sequentially per spec before the fan-out, every cell
	// seeds its own disk-array jitter stream, and each cell writes to a
	// preassigned slot of the result.
	Parallel int
}

// Defaults fills unset fields with the paper's protocol values.
func (o Options) Defaults() Options {
	if o.ElementBytes == 0 {
		o.ElementBytes = 1 << 20
	}
	if o.Disk == (disksim.Config{}) {
		o.Disk = disksim.DefaultConfig()
	}
	if o.NormalTrials == 0 {
		o.NormalTrials = workload.NormalTrials
	}
	if o.DegradedTrials == 0 {
		o.DegradedTrials = workload.DegradedTrials
	}
	if o.TotalElements == 0 {
		o.TotalElements = 1200
	}
	if o.MaxReadSize == 0 {
		o.MaxReadSize = workload.MaxReadElements
	}
	if o.Seed == 0 {
		o.Seed = 20150901 // ICPP'15 vintage
	}
	return o
}

// Measurement aggregates one (spec, form) cell of a figure.
type Measurement struct {
	Spec CodeSpec
	Form layout.Form
	// SpeedMBps is the mean per-trial read speed.
	SpeedMBps float64
	// Cost is the mean reads-per-requested-element (1.0 for normal reads).
	Cost float64
	// MeanMaxLoad is the mean over trials of the most-loaded disk's
	// element count — the quantity EC-FRM minimizes.
	MeanMaxLoad float64
	// MeanContributing is the mean number of disks serving each request.
	MeanContributing float64
	// Trials is the number of requests measured.
	Trials int
}

// runOne measures a scheme against a fixed trial list.
func runOne(spec CodeSpec, form layout.Form, trials []workload.ReadTrial, opt Options) (Measurement, error) {
	code, err := spec.Build()
	if err != nil {
		return Measurement{}, err
	}
	scheme, err := core.NewScheme(code, form)
	if err != nil {
		return Measurement{}, err
	}
	// A fresh array per form keeps the jitter streams aligned across forms.
	array, err := disksim.NewArray(scheme.N(), opt.Disk, opt.Seed)
	if err != nil {
		return Measurement{}, err
	}
	m := Measurement{Spec: spec, Form: form, Trials: len(trials)}
	var speedSum, costSum, maxLoadSum, contribSum float64
	for _, tr := range trials {
		var plan *core.Plan
		if tr.FailedDisk < 0 {
			plan, err = scheme.PlanNormalRead(tr.Start, tr.Count)
		} else {
			plan, err = scheme.PlanDegradedRead(tr.Start, tr.Count, []int{tr.FailedDisk})
		}
		if err != nil {
			return Measurement{}, fmt.Errorf("%s %s trial %+v: %w", spec.Label(), form, tr, err)
		}
		t := array.ServeRead(plan.Loads, opt.ElementBytes)
		speedSum += disksim.SpeedMBps(tr.Count*opt.ElementBytes, t)
		costSum += plan.Cost()
		maxLoadSum += float64(plan.MaxLoad())
		contribSum += float64(plan.ContributingDisks())
	}
	n := float64(len(trials))
	m.SpeedMBps = speedSum / n
	m.Cost = costSum / n
	m.MeanMaxLoad = maxLoadSum / n
	m.MeanContributing = contribSum / n
	return m, nil
}

// Metric selects which aggregate a figure reports.
type Metric string

// The metrics the paper's figures plot.
const (
	MetricNormalSpeed   Metric = "normal-speed"
	MetricDegradedSpeed Metric = "degraded-speed"
	MetricDegradedCost  Metric = "degraded-cost"
)

// Figure describes one of the paper's evaluation figures.
type Figure struct {
	ID     string
	Title  string
	Metric Metric
	Specs  []CodeSpec
	Unit   string
}

// Figures indexes every figure of the paper's evaluation section.
var Figures = []Figure{
	{ID: "8a", Title: "Normal read speed, Reed-Solomon family", Metric: MetricNormalSpeed, Specs: RSConfigs, Unit: "MB/s"},
	{ID: "8b", Title: "Normal read speed, LRC family", Metric: MetricNormalSpeed, Specs: LRCConfigs, Unit: "MB/s"},
	{ID: "9a", Title: "Degraded read cost, Reed-Solomon family", Metric: MetricDegradedCost, Specs: RSConfigs, Unit: "reads/element"},
	{ID: "9b", Title: "Degraded read cost, LRC family", Metric: MetricDegradedCost, Specs: LRCConfigs, Unit: "reads/element"},
	{ID: "9c", Title: "Degraded read speed, Reed-Solomon family", Metric: MetricDegradedSpeed, Specs: RSConfigs, Unit: "MB/s"},
	{ID: "9d", Title: "Degraded read speed, LRC family", Metric: MetricDegradedSpeed, Specs: LRCConfigs, Unit: "MB/s"},
}

// FigureByID looks a figure up by its paper number ("8a" … "9d").
func FigureByID(id string) (Figure, error) {
	for _, f := range Figures {
		if f.ID == id {
			return f, nil
		}
	}
	return Figure{}, fmt.Errorf("experiment: unknown figure %q (have 8a,8b,9a,9b,9c,9d)", id)
}

// FigureResult holds a regenerated figure: one value per (form, spec) cell.
type FigureResult struct {
	Figure Figure
	// Cells[form][specIndex], forms in Forms order.
	Cells map[layout.Form][]Measurement
}

// cellJob is one (spec, form) measurement with its preassigned result slot.
type cellJob struct {
	spec   CodeSpec
	si     int
	form   layout.Form
	trials []workload.ReadTrial
}

// Run regenerates one figure. With opt.Parallel > 1 the figure's (spec,
// form) cells are measured across a worker pool; the output is bit-identical
// to a sequential run (see Options.Parallel).
func Run(fig Figure, opt Options) (*FigureResult, error) {
	opt = opt.Defaults()
	res := &FigureResult{Figure: fig, Cells: make(map[layout.Form][]Measurement)}
	for _, form := range Forms {
		res.Cells[form] = make([]Measurement, len(fig.Specs))
	}
	// Trial generation stays sequential: one seeded list per spec, shared
	// by all three forms (§VI: identical workloads; only the layout varies).
	var jobs []cellJob
	for si, spec := range fig.Specs {
		code, err := spec.Build()
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(workload.Config{
			TotalElements: opt.TotalElements,
			Disks:         code.N(),
			MaxSize:       opt.MaxReadSize,
			Seed:          opt.Seed + int64(spec.K)*1009 + int64(spec.M)*9973,
		})
		if err != nil {
			return nil, err
		}
		var trials []workload.ReadTrial
		if fig.Metric == MetricNormalSpeed {
			trials = gen.NormalSeries(opt.NormalTrials)
		} else {
			trials = gen.DegradedSeries(opt.DegradedTrials)
		}
		for _, form := range Forms {
			jobs = append(jobs, cellJob{spec: spec, si: si, form: form, trials: trials})
		}
	}

	workers := opt.Parallel
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			m, err := runOne(j.spec, j.form, j.trials, opt)
			if err != nil {
				return nil, err
			}
			res.Cells[j.form][j.si] = m
		}
		return res, nil
	}

	ch := make(chan cellJob)
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	var abort atomic.Bool
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for j := range ch {
				if abort.Load() {
					continue
				}
				m, err := runOne(j.spec, j.form, j.trials, opt)
				if err != nil {
					errOnce.Do(func() { firstErr = err; abort.Store(true) })
					continue
				}
				res.Cells[j.form][j.si] = m
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return res, nil
}

// RunAll regenerates every figure.
func RunAll(opt Options) ([]*FigureResult, error) {
	var out []*FigureResult
	for _, fig := range Figures {
		r, err := Run(fig, opt)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// value extracts the figure's metric from a measurement.
func (r *FigureResult) value(m Measurement) float64 {
	if r.Figure.Metric == MetricDegradedCost {
		return m.Cost
	}
	return m.SpeedMBps
}

// Value returns the metric for a form and spec index.
func (r *FigureResult) Value(form layout.Form, specIdx int) float64 {
	return r.value(r.Cells[form][specIdx])
}

// Improvement returns the relative gain of EC-FRM over the given baseline
// form for spec index i: value(ecfrm)/value(base) - 1. For the cost metric
// the sign is inverted so positive still means "EC-FRM better".
func (r *FigureResult) Improvement(base layout.Form, i int) float64 {
	b := r.Value(base, i)
	e := r.Value(layout.FormECFRM, i)
	if b == 0 {
		return 0
	}
	if r.Figure.Metric == MetricDegradedCost {
		return b/e - 1
	}
	return e/b - 1
}

// Table renders the figure as a text table in the paper's orientation:
// one row per form, one column per parameter set.
func (r *FigureResult) Table() string {
	var b strings.Builder
	family := r.Figure.Specs[0].Family
	fmt.Fprintf(&b, "Figure %s: %s (%s)\n", r.Figure.ID, r.Figure.Title, r.Figure.Unit)
	fmt.Fprintf(&b, "%-14s", "")
	for _, spec := range r.Figure.Specs {
		fmt.Fprintf(&b, "%12s", spec.Label())
	}
	b.WriteByte('\n')
	for _, form := range Forms {
		fmt.Fprintf(&b, "%-14s", FormLabel(form, family))
		for i := range r.Figure.Specs {
			fmt.Fprintf(&b, "%12.2f", r.Value(form, i))
		}
		b.WriteByte('\n')
	}
	// Relative improvements, as the paper quotes them.
	for _, base := range []layout.Form{layout.FormStandard, layout.FormRotated} {
		fmt.Fprintf(&b, "%-14s", "Δ vs "+FormLabel(base, family))
		for i := range r.Figure.Specs {
			fmt.Fprintf(&b, "%11.1f%%", 100*r.Improvement(base, i))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// SortedForms returns Forms (a fixed order); exported for rendering code
// that wants a stable iteration without importing layout directly.
func SortedForms() []layout.Form {
	out := append([]layout.Form{}, Forms...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WriteCSV emits the figure as plot-ready CSV: one row per (form, params)
// cell with the metric value plus the auxiliary aggregates.
func (r *FigureResult) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"figure", "form", "params", r.Figure.Unit,
		"mean_max_load", "mean_contributing_disks", "trials"}); err != nil {
		return err
	}
	family := r.Figure.Specs[0].Family
	for _, form := range Forms {
		for i, spec := range r.Figure.Specs {
			m := r.Cells[form][i]
			rec := []string{
				r.Figure.ID,
				FormLabel(form, family),
				spec.Label(),
				strconv.FormatFloat(r.Value(form, i), 'f', 4, 64),
				strconv.FormatFloat(m.MeanMaxLoad, 'f', 4, 64),
				strconv.FormatFloat(m.MeanContributing, 'f', 4, 64),
				strconv.Itoa(m.Trials),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
