package experiment

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/layout"
)

// fastOpts keeps unit tests quick; the full paper protocol runs in the
// benchmarks and cmd/ecfrmbench.
func fastOpts() Options {
	return Options{NormalTrials: 150, DegradedTrials: 200, TotalElements: 400}
}

func TestCodeSpecLabelsAndBuild(t *testing.T) {
	rsSpec := CodeSpec{Family: "RS", K: 6, M: 3}
	if rsSpec.Label() != "(6,3)" {
		t.Fatalf("label = %q", rsSpec.Label())
	}
	lrcSpec := CodeSpec{Family: "LRC", K: 6, L: 2, M: 2}
	if lrcSpec.Label() != "(6,2,2)" {
		t.Fatalf("label = %q", lrcSpec.Label())
	}
	for _, spec := range append(append([]CodeSpec{}, RSConfigs...), LRCConfigs...) {
		c, err := spec.Build()
		if err != nil {
			t.Fatalf("%s: %v", spec.Label(), err)
		}
		if c.K() != spec.K {
			t.Fatalf("%s: built k=%d", spec.Label(), c.K())
		}
	}
	if _, err := (CodeSpec{Family: "XOR"}).Build(); err == nil {
		t.Fatal("unknown family must fail")
	}
}

func TestFormLabel(t *testing.T) {
	cases := map[layout.Form]string{
		layout.FormStandard: "RS",
		layout.FormRotated:  "R-RS",
		layout.FormECFRM:    "EC-FRM-RS",
	}
	for form, want := range cases {
		if got := FormLabel(form, "RS"); got != want {
			t.Errorf("FormLabel(%s) = %q, want %q", form, got, want)
		}
	}
}

func TestFigureByID(t *testing.T) {
	for _, id := range []string{"8a", "8b", "9a", "9b", "9c", "9d"} {
		if _, err := FigureByID(id); err != nil {
			t.Errorf("FigureByID(%s): %v", id, err)
		}
	}
	if _, err := FigureByID("11"); err == nil {
		t.Fatal("unknown figure must fail")
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.Defaults()
	if o.ElementBytes != 1<<20 || o.NormalTrials != 2000 || o.DegradedTrials != 5000 {
		t.Fatalf("defaults wrong: %+v", o)
	}
	// Explicit values survive.
	o = Options{NormalTrials: 7}.Defaults()
	if o.NormalTrials != 7 {
		t.Fatal("explicit trial count overridden")
	}
}

func TestRunFigure8aShape(t *testing.T) {
	fig, _ := FigureByID("8a")
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.Specs {
		std := res.Value(layout.FormStandard, i)
		frm := res.Value(layout.FormECFRM, i)
		if std <= 0 || frm <= 0 {
			t.Fatalf("non-positive speeds: std=%v frm=%v", std, frm)
		}
		// The paper's headline: EC-FRM-RS reads at least 15% faster than
		// standard RS at every parameter set (paper: 19.2-33.9%).
		if frm < std*1.15 {
			t.Errorf("%s: EC-FRM %v not >15%% over standard %v",
				fig.Specs[i].Label(), frm, std)
		}
	}
}

func TestRunFigure8bShape(t *testing.T) {
	fig, _ := FigureByID("8b")
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.Specs {
		if imp := res.Improvement(layout.FormStandard, i); imp < 0.15 {
			t.Errorf("%s: EC-FRM-LRC improvement %.1f%% below 15%%",
				fig.Specs[i].Label(), 100*imp)
		}
		if imp := res.Improvement(layout.FormRotated, i); imp < 0.05 {
			t.Errorf("%s: EC-FRM-LRC vs rotated %.1f%% below 5%%",
				fig.Specs[i].Label(), 100*imp)
		}
	}
}

func TestRunFigure9CostParity(t *testing.T) {
	// Degraded read cost must be nearly layout-independent (paper: <0.9%
	// for RS, <0.7% for LRC; allow slack at reduced trial counts).
	for _, id := range []string{"9a", "9b"} {
		fig, _ := FigureByID(id)
		opts := fastOpts()
		opts.DegradedTrials = 1500
		res, err := Run(fig, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range fig.Specs {
			std := res.Value(layout.FormStandard, i)
			frm := res.Value(layout.FormECFRM, i)
			rot := res.Value(layout.FormRotated, i)
			for _, v := range []float64{std, frm, rot} {
				if v < 1.0 {
					t.Fatalf("%s %s: cost %v below 1", id, fig.Specs[i].Label(), v)
				}
			}
			if diff := frm/std - 1; diff > 0.06 || diff < -0.06 {
				t.Errorf("fig %s %s: cost gap %.1f%% exceeds 6%%",
					id, fig.Specs[i].Label(), 100*diff)
			}
		}
	}
}

func TestRunFigure9dDegradedSpeedShape(t *testing.T) {
	fig, _ := FigureByID("9d")
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range fig.Specs {
		if imp := res.Improvement(layout.FormStandard, i); imp <= 0 {
			t.Errorf("%s: EC-FRM-LRC degraded speed not above standard (%.1f%%)",
				fig.Specs[i].Label(), 100*imp)
		}
	}
}

func TestLRCCostBelowRSCost(t *testing.T) {
	// Cross-family claim (Figure 9a vs 9b): LRC's degraded cost is much
	// lower than RS's at comparable k.
	opts := fastOpts()
	figRS, _ := FigureByID("9a")
	figLRC, _ := FigureByID("9b")
	rsRes, err := Run(figRS, opts)
	if err != nil {
		t.Fatal(err)
	}
	lrcRes, err := Run(figLRC, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range RSConfigs {
		if lrcRes.Value(layout.FormStandard, i) >= rsRes.Value(layout.FormStandard, i) {
			t.Errorf("config %d: LRC cost %.3f not below RS cost %.3f", i,
				lrcRes.Value(layout.FormStandard, i), rsRes.Value(layout.FormStandard, i))
		}
	}
}

func TestMeasurementExtras(t *testing.T) {
	fig, _ := FigureByID("8a")
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Cells[layout.FormECFRM][0]
	if m.MeanMaxLoad <= 0 || m.MeanMaxLoad > 20 {
		t.Fatalf("MeanMaxLoad = %v", m.MeanMaxLoad)
	}
	if m.MeanContributing <= 0 || m.MeanContributing > float64(9) {
		t.Fatalf("MeanContributing = %v", m.MeanContributing)
	}
	if m.Trials != 150 {
		t.Fatalf("Trials = %d", m.Trials)
	}
	// EC-FRM engages more disks than standard on average.
	std := res.Cells[layout.FormStandard][0]
	if m.MeanContributing <= std.MeanContributing {
		t.Fatalf("EC-FRM contributing %v not above standard %v",
			m.MeanContributing, std.MeanContributing)
	}
}

func TestTableRendering(t *testing.T) {
	fig, _ := FigureByID("8a")
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	table := res.Table()
	for _, want := range []string{"Figure 8a", "RS", "R-RS", "EC-FRM-RS", "(6,3)", "(10,5)", "Δ vs RS"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
}

func TestIdenticalTrialsAcrossForms(t *testing.T) {
	// Two runs of the same figure must be bit-identical (full determinism).
	fig, _ := FigureByID("9d")
	opts := fastOpts()
	a, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fig, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, form := range Forms {
		for i := range fig.Specs {
			if a.Cells[form][i] != b.Cells[form][i] {
				t.Fatalf("non-deterministic measurement at %s/%d", form, i)
			}
		}
	}
}

func TestSortedForms(t *testing.T) {
	f := SortedForms()
	if len(f) != 3 {
		t.Fatalf("got %d forms", len(f))
	}
}

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("RunAll is slow")
	}
	opts := Options{NormalTrials: 40, DegradedTrials: 40, TotalElements: 400}
	results, err := RunAll(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Figures) {
		t.Fatalf("got %d figures, want %d", len(results), len(Figures))
	}
}

func TestMotivationTable(t *testing.T) {
	rows, err := MotivationTable(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(rows))
	}
	byName := map[string]MotivationRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	std := byName["LRC(6,2,2)"]
	frm := byName["EC-FRM-LRC(6,2,2)"]
	xc := byName["X-Code(11)"]
	wv := byName["WEAVER(10,2,2)"]
	// The §III-A claims, measured:
	if frm.NormalSpeedMBps <= std.NormalSpeedMBps {
		t.Error("EC-FRM must out-read standard LRC")
	}
	if xc.MeanMaxLoad >= std.MeanMaxLoad {
		t.Error("X-Code must balance better than standard LRC")
	}
	if wv.StorageOverhead != 2.0 || xc.FaultTolerance != 2 {
		t.Error("vertical-code costs wrong")
	}
	if frm.FaultTolerance != 3 || frm.StorageOverhead > 1.67 {
		t.Error("EC-FRM must keep LRC's tolerance/overhead")
	}
	if xc.ArbitraryDisks {
		t.Error("X-Code must be flagged prime-only")
	}
	out := RenderMotivation(rows)
	if !strings.Contains(out, "X-Code(11)") || !strings.Contains(out, "WEAVER(10,2,2)") {
		t.Fatalf("render missing rows:\n%s", out)
	}
}

func TestConcurrencySweep(t *testing.T) {
	ias := []time.Duration{200 * time.Millisecond, 40 * time.Millisecond}
	points, err := ConcurrencySweep(ias, 300, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	byKey := map[string]ConcurrencyPoint{}
	for _, p := range points {
		byKey[string(p.Form)+p.InterArrival.String()] = p
	}
	for _, ia := range ias {
		std := byKey[string(layout.FormStandard)+ia.String()]
		frm := byKey[string(layout.FormECFRM)+ia.String()]
		if frm.MeanLatency >= std.MeanLatency {
			t.Errorf("ia=%v: EC-FRM mean latency %v not below standard %v",
				ia, frm.MeanLatency, std.MeanLatency)
		}
	}
	// EC-FRM's relative advantage must grow (or at least not shrink much)
	// as offered load rises: compare latency ratios at low vs high load.
	low := float64(byKey[string(layout.FormStandard)+ias[0].String()].MeanLatency) /
		float64(byKey[string(layout.FormECFRM)+ias[0].String()].MeanLatency)
	high := float64(byKey[string(layout.FormStandard)+ias[1].String()].MeanLatency) /
		float64(byKey[string(layout.FormECFRM)+ias[1].String()].MeanLatency)
	if high < low*0.95 {
		t.Errorf("advantage shrank under load: ratio %.3f (low) vs %.3f (high)", low, high)
	}
	if out := RenderConcurrency(points); !strings.Contains(out, "p99") {
		t.Fatal("render missing columns")
	}
}

func TestRecoverySweep(t *testing.T) {
	rows, err := RecoverySweep(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 { // 6 configs × 2 forms
		t.Fatalf("got %d rows, want 12", len(rows))
	}
	byName := map[string]RecoveryRow{}
	for _, r := range rows {
		byName[r.Scheme] = r
	}
	// RS recovery reads k elements per rebuilt element.
	rs63 := byName["RS(6,3)"]
	if rs63.Amplification != 6 {
		t.Errorf("RS(6,3) amplification = %v, want 6", rs63.Amplification)
	}
	// EC-FRM does not change the amplification (same groups erased).
	frm63 := byName["EC-FRM-RS(6,3)"]
	if frm63.Amplification != rs63.Amplification {
		t.Errorf("layout changed RS recovery amplification: %v vs %v",
			frm63.Amplification, rs63.Amplification)
	}
	// LRC's local parities cut recovery well below RS's k.
	lrc622 := byName["LRC(6,2,2)"]
	if lrc622.Amplification >= rs63.Amplification {
		t.Errorf("LRC amplification %v not below RS %v",
			lrc622.Amplification, rs63.Amplification)
	}
	if out := RenderRecovery(rows); !strings.Contains(out, "EC-FRM-LRC(10,2,4)") {
		t.Fatal("render missing rows")
	}
}

func TestCRSFamilyWorksInHarness(t *testing.T) {
	// Framework generality: the harness runs EC-FRM over Cauchy RS with the
	// same machinery, and the layout effect matches plain RS (identical
	// geometry, identical plans — only the encode kernel differs).
	spec := CodeSpec{Family: "CRS", K: 6, M: 3}
	c, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CRS(6,3)" || c.FaultTolerance() != 3 {
		t.Fatalf("built %s tolerance %d", c.Name(), c.FaultTolerance())
	}
	fig := Figure{ID: "x-crs", Title: "CRS extension", Metric: MetricNormalSpeed,
		Specs: []CodeSpec{spec}, Unit: "MB/s"}
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	rsRes, err := Run(Figure{ID: "x-rs", Title: "", Metric: MetricNormalSpeed,
		Specs: []CodeSpec{{Family: "RS", K: 6, M: 3}}, Unit: "MB/s"}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, form := range Forms {
		if res.Value(form, 0) != rsRes.Value(form, 0) {
			t.Fatalf("%s: CRS speed %v != RS speed %v (same geometry must plan identically)",
				form, res.Value(form, 0), rsRes.Value(form, 0))
		}
	}
}

func TestFigureWriteCSV(t *testing.T) {
	fig, _ := FigureByID("8a")
	res, err := Run(fig, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+3*3 { // header + 3 forms × 3 params
		t.Fatalf("%d CSV lines, want 10:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "figure,form,params,MB/s") {
		t.Fatalf("header: %s", lines[0])
	}
	for _, want := range []string{"EC-FRM-RS", `"(6,3)"`, "8a"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestBandwidthSweep(t *testing.T) {
	points, err := BandwidthSweep([]float64{1250, 25}, fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points, want 4", len(points))
	}
	byKey := map[string]BandwidthPoint{}
	for _, p := range points {
		byKey[fmt.Sprintf("%s@%.0f", p.Form, p.ClientLinkMBps)] = p
	}
	fatStd := byKey["standard@1250"]
	fatFrm := byKey["ecfrm@1250"]
	thinStd := byKey["standard@25"]
	thinFrm := byKey["ecfrm@25"]
	if fatFrm.SpeedMBps < fatStd.SpeedMBps*1.15 {
		t.Errorf("fat-link EC-FRM gain too small: %v vs %v", fatFrm.SpeedMBps, fatStd.SpeedMBps)
	}
	if fatStd.DiskBoundFrac < 0.99 {
		t.Errorf("fat links should be disk-bound, got %.2f", fatStd.DiskBoundFrac)
	}
	if thinStd.DiskBoundFrac > 0.01 {
		t.Errorf("thin links should be network-bound, got %.2f disk-bound", thinStd.DiskBoundFrac)
	}
	if diff := thinFrm.SpeedMBps/thinStd.SpeedMBps - 1; diff > 0.01 || diff < -0.01 {
		t.Errorf("thin-link forms did not converge: %.1f%%", 100*diff)
	}
	if out := RenderBandwidth(points); !strings.Contains(out, "disk-bound") {
		t.Fatal("render missing columns")
	}
}

// TestParallelRunBitIdentical pins the determinism contract: a parallel
// sweep must render byte-identical CSV to the sequential one.
func TestParallelRunBitIdentical(t *testing.T) {
	opt := Options{NormalTrials: 60, DegradedTrials: 60, TotalElements: 240}
	for _, fig := range []string{"8a", "9b"} {
		f, err := FigureByID(fig)
		if err != nil {
			t.Fatal(err)
		}
		seq, err := Run(f, opt)
		if err != nil {
			t.Fatal(err)
		}
		par, err := Run(f, func() Options { o := opt; o.Parallel = 4; return o }())
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := seq.WriteCSV(&a); err != nil {
			t.Fatal(err)
		}
		if err := par.WriteCSV(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Fatalf("figure %s: parallel CSV differs from sequential:\n%s\n---\n%s", fig, a.String(), b.String())
		}
	}
}
