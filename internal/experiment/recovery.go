package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/store"
)

// RecoveryRow is one (scheme, form) cell of the single-disk recovery
// experiment.
type RecoveryRow struct {
	Scheme string
	// ReadElements is the number of elements read from survivors to rebuild
	// one disk's worth of a fixed extent.
	ReadElements int
	// RebuiltElements is the number of elements written to the replacement.
	RebuiltElements int
	// Amplification is ReadElements / RebuiltElements — the recovery I/O
	// cost per rebuilt element (k for RS, between k/l and k for LRC
	// depending on which cells the disk held).
	Amplification float64
	// SimTime is the modeled rebuild time: survivors stream their reads in
	// parallel, the replacement writes sequentially; the slower side bounds.
	SimTime time.Duration
}

// RecoverySweep measures single-disk recovery (the §II-D companion metric to
// degraded reads) for every Table I configuration under standard and EC-FRM
// forms: fill a store, fail disk 0, rebuild it, and account the observed
// I/O. The layout must not change recovery amplification (every group loses
// exactly one element either way); LRC's local parities must cut it well
// below RS's k×.
func RecoverySweep(opt Options) ([]RecoveryRow, error) {
	opt = opt.Defaults()
	const totalElements = 1200 // fixed data extent so rebuild volumes compare
	var rows []RecoveryRow
	specs := append(append([]CodeSpec{}, RSConfigs...), LRCConfigs...)
	for _, spec := range specs {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
			code, err := spec.Build()
			if err != nil {
				return nil, err
			}
			scheme, err := core.NewScheme(code, form)
			if err != nil {
				return nil, err
			}
			st, err := store.New(scheme, 64) // element size irrelevant to counts
			if err != nil {
				return nil, err
			}
			stripes := (totalElements + scheme.DataPerStripe() - 1) / scheme.DataPerStripe()
			if err := st.Append(make([]byte, stripes*scheme.DataPerStripe()*64)); err != nil {
				return nil, err
			}
			// Average over every disk: which cells a disk holds (data,
			// local parity, global parity) determines its rebuild cost, and
			// the mix per disk differs between the standard and EC-FRM
			// layouts even though the per-array total is identical.
			readCost, rebuilt := 0, 0
			for d := 0; d < scheme.N(); d++ {
				st.FailDisk(d)
				cost, err := st.RecoverDisk(d)
				if err != nil {
					return nil, err
				}
				readCost += cost
				rebuilt += st.Device(d).Elements()
			}
			readCost /= scheme.N()
			rebuilt /= scheme.N()
			// Timing model: survivors serve readCost element reads spread
			// evenly; the replacement absorbs `rebuilt` writes. Use the
			// disk model's per-element time for both.
			array, err := disksim.NewArray(scheme.N(), opt.Disk, opt.Seed)
			if err != nil {
				return nil, err
			}
			perSurvivor := (readCost + scheme.N() - 2) / (scheme.N() - 1)
			readTime := array.DiskTime(1, perSurvivor, opt.ElementBytes)
			writeTime := array.DiskTime(0, rebuilt, opt.ElementBytes)
			simTime := readTime
			if writeTime > simTime {
				simTime = writeTime
			}
			rows = append(rows, RecoveryRow{
				Scheme:          scheme.Name(),
				ReadElements:    readCost,
				RebuiltElements: rebuilt,
				Amplification:   float64(readCost) / float64(rebuilt),
				SimTime:         simTime,
			})
		}
	}
	return rows, nil
}

// RenderRecovery formats the sweep.
func RenderRecovery(rows []RecoveryRow) string {
	var b strings.Builder
	b.WriteString("Single-disk recovery (1200-element extent, averaged over every failed disk)\n")
	fmt.Fprintf(&b, "%-22s %10s %10s %8s %12s\n", "scheme", "reads", "rebuilt", "amp", "sim time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-22s %10d %10d %7.2fx %12s\n",
			r.Scheme, r.ReadElements, r.RebuiltElements, r.Amplification,
			r.SimTime.Round(time.Millisecond))
	}
	b.WriteString("→ recovery amplification depends on the code, not the layout; LRC's local\n")
	b.WriteString("  parities cut it far below RS's k× (the Azure trade the paper describes).\n")
	return b.String()
}
