package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/disksim"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/workload"
)

// ConcurrencyPoint is one (form, inter-arrival) cell of the concurrency
// extension experiment.
type ConcurrencyPoint struct {
	Form          layout.Form
	InterArrival  time.Duration
	MeanLatency   time.Duration
	P99Latency    time.Duration
	ThroughputMBs float64
}

// ConcurrencySweep extends the paper's serial-trial evaluation to an
// open-loop concurrent workload (a planned future-work direction the paper
// leaves implicit in its "most loaded disk" argument): the same seeded
// normal-read trial stream is offered to each layout form at several
// arrival rates, and each form's per-request plans are replayed through the
// FIFO queued disk simulator. Queueing compounds load imbalance, so EC-FRM's
// advantage grows with offered load until the array saturates.
func ConcurrencySweep(interArrivals []time.Duration, requests int, opt Options) ([]ConcurrencyPoint, error) {
	opt = opt.Defaults()
	code := lrc.Must(6, 2, 2)
	gen, err := workload.NewGenerator(workload.Config{
		TotalElements: opt.TotalElements,
		Disks:         code.N(),
		MaxSize:       opt.MaxReadSize,
		Seed:          opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	trials := gen.NormalSeries(requests)

	var out []ConcurrencyPoint
	for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
		scheme := core.MustScheme(code, form)
		// Plan every trial once per form; plans don't depend on arrival rate.
		plans := make([]*core.Plan, len(trials))
		payloads := make([]int, len(trials))
		for i, tr := range trials {
			p, err := scheme.PlanNormalRead(tr.Start, tr.Count)
			if err != nil {
				return nil, err
			}
			plans[i] = p
			payloads[i] = tr.Count * opt.ElementBytes
		}
		for _, ia := range interArrivals {
			array, err := disksim.NewArray(scheme.N(), opt.Disk, opt.Seed)
			if err != nil {
				return nil, err
			}
			reqs := make([]disksim.Request, len(plans))
			for i, p := range plans {
				reqs[i] = disksim.Request{ID: i, Arrival: time.Duration(i) * ia, Loads: p.Loads}
			}
			comps, err := array.SimulateQueued(reqs, opt.ElementBytes)
			if err != nil {
				return nil, err
			}
			stats, err := disksim.Summarize(comps, payloads)
			if err != nil {
				return nil, err
			}
			out = append(out, ConcurrencyPoint{
				Form:          form,
				InterArrival:  ia,
				MeanLatency:   stats.MeanLatency,
				P99Latency:    stats.P99Latency,
				ThroughputMBs: stats.ThroughputMBs,
			})
		}
	}
	return out, nil
}

// RenderConcurrency formats the sweep as a table.
func RenderConcurrency(points []ConcurrencyPoint) string {
	var b strings.Builder
	b.WriteString("Concurrency extension: open-loop normal reads on (6,2,2), FIFO disk queues\n")
	fmt.Fprintf(&b, "%-12s %-14s %12s %12s %12s\n",
		"form", "inter-arrival", "mean lat", "p99 lat", "MB/s")
	for _, p := range points {
		fmt.Fprintf(&b, "%-12s %-14s %12s %12s %12.1f\n",
			p.Form, p.InterArrival, p.MeanLatency.Round(time.Microsecond*100),
			p.P99Latency.Round(time.Microsecond*100), p.ThroughputMBs)
	}
	b.WriteString("→ queueing compounds the hot-disk penalty: EC-FRM's latency advantage\n")
	b.WriteString("  grows with offered load (compare rows at equal inter-arrival).\n")
	return b.String()
}
