// Package store implements an erasure-coded blob store over a set of
// simulated devices — the "erasure coded cloud storage system" substrate the
// paper evaluates on.
//
// Writes follow the paper's append-only model (§I): user bytes accumulate in
// a buffer and are erasure coded a full stripe at a time. Reads go through
// the core planner: normal reads touch only data cells, degraded reads fetch
// recovery sets and decode. Every device access is counted, so experiments
// can cross-check planned loads against observed I/O.
//
// The store is safe for concurrent use: reads share a read lock so
// independent clients plan and decode in parallel, while writes, failure
// injection, recovery, and healing exclude. Device I/O counters are atomic,
// so concurrent readers account their accesses without contending.
package store

import (
	"context"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/obs"
)

// ErrRange is returned for reads outside the written extent.
var ErrRange = errors.New("store: read out of range")

// ErrFailed is returned when an operation touches a failed device without a
// recovery path.
var ErrFailed = errors.New("store: device failed")

// ErrCorrupt is returned when a cell's content no longer matches the
// checksum recorded at write time (silent bit rot). Reads heal such cells
// automatically when the group has enough redundancy.
var ErrCorrupt = errors.New("store: corrupt cell")

// ErrUnavailable is returned when a device exhausted its retry budget on
// slow-or-transient faults. It is softer than ErrFailed: the device is not
// marked failed, but the current operation could not complete through it,
// and reads fall back to a degraded plan that routes around it.
var ErrUnavailable = errors.New("store: device unavailable")

// errNeedsHeal is the internal signal that a shared-lock read hit a corrupt
// cell and must retry exclusively so it may rewrite the healed bytes.
var errNeedsHeal = errors.New("store: read needs exclusive heal")

// Default per-operation retry policy: how long one device operation may
// take before it counts as timed out, and how many times a transient fault
// is retried before the device is reported ErrUnavailable.
const (
	DefaultOpTimeout = 50 * time.Millisecond
	DefaultRetries   = 2
)

// Fault is the injected outcome of one device operation, decided by a
// FaultInjector before the store touches the device. The zero value means
// "no fault": the operation proceeds normally.
type Fault struct {
	// Delay is added service latency. A delay exceeding the store's per-op
	// timeout counts as a timed-out operation (the store waits out the
	// timeout, not the full delay).
	Delay time.Duration
	// Stuck marks an operation that would hang past any timeout — a stuck
	// or pathologically slow disk.
	Stuck bool
	// Err is a transient error returned instead of performing the
	// operation. Retried up to the store's retry budget.
	Err error
	// Corrupt marks a read whose returned bits fail the cell checksum — a
	// transient medium mis-read, detected and retried like Err (reads only).
	Corrupt bool
	// Failed marks a device that has fail-stopped (e.g. a fail-after-N-ops
	// policy tripping). The operation returns ErrFailed and reads treat the
	// device exactly like one marked by FailDisk.
	Failed bool
}

// FaultInjector decides the fault, if any, for every device operation. The
// store consults it on each element-granularity read and write (including
// retries — every attempt is a fresh decision). Implementations must be
// safe for concurrent use; internal/faultinject provides a seeded,
// deterministic one.
type FaultInjector interface {
	ReadFault(dev int) Fault
	WriteFault(dev int) Fault
}

// Device is one disk of the array: a cell container with I/O accounting and
// per-cell CRC32C checksums that detect silent corruption on read. Where the
// cells actually live is the backend's business (diskdev.go): an in-memory
// map for simulated devices, or a data/checksum file pair behind an async
// submission queue for real ones.
type Device struct {
	id     int
	rows   int // cells per stripe on this device; slot = stripe*rows + row
	be     devBackend
	failed bool
	// reads and writes count element-granularity accesses. They are atomic
	// because reads are served under the store's shared lock, so many
	// goroutines increment them concurrently.
	reads  atomic.Int64
	writes atomic.Int64
	// obsReads/obsWrites mirror the counts into the store's metrics registry
	// when one is installed (SetMetrics). Unlike reads/writes they are never
	// reset: scrape counters are monotonic. Guarded by the store lock for
	// writes of the pointers; the counters themselves are atomic.
	obsReads  *obs.Counter
	obsWrites *obs.Counter
	// inflight counts fan-out runs currently being served by this device.
	// The load-aware degraded planner reads it as a live queue-depth signal;
	// obsInflight mirrors it into the metrics registry.
	inflight    atomic.Int64
	obsInflight *obs.Gauge
	// errs counts hard device errors — fail-stops, exhausted retry budgets,
	// backend I/O failures — the repair scheduler's error-rate detector
	// watches. latEWMA is an exponentially weighted moving average of op
	// service latency in nanoseconds (α = 1/8), the limping-disk signal.
	// obsErrors/obsLatency mirror both into the metrics registry.
	errs       atomic.Int64
	latEWMA    atomic.Int64
	obsErrors  *obs.Counter
	obsLatency *obs.Gauge
}

type cellKey struct {
	stripe int
	pos    layout.Pos
}

func newDevice(id, rows int) *Device {
	return &Device{id: id, rows: rows, be: newMemBackend()}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ID returns the device's index in the array.
func (d *Device) ID() int { return d.id }

// Failed reports whether the device is marked failed.
func (d *Device) Failed() bool { return d.failed }

// Elements returns the number of elements currently stored on the device.
func (d *Device) Elements() int { return d.be.elements() }

// Reads returns the element-granularity read count.
func (d *Device) Reads() int { return int(d.reads.Load()) }

// Writes returns the element-granularity write count.
func (d *Device) Writes() int { return int(d.writes.Load()) }

// Errors returns the hard-error count (fail-stops, exhausted retry budgets,
// backend I/O failures) since construction.
func (d *Device) Errors() int64 { return d.errs.Load() }

// noteError counts one hard device error for the failure detectors.
func (d *Device) noteError() {
	d.errs.Add(1)
	d.obsErrors.Inc()
}

// observeLatency folds one op's service latency into the device's EWMA
// (α = 1/8; the first sample seeds it) and mirrors the result to the
// metrics gauge. Lock-free: concurrent readers fold their samples in
// CAS-retry order.
func (d *Device) observeLatency(sample time.Duration) {
	for {
		old := d.latEWMA.Load()
		next := int64(sample)
		if old != 0 {
			next = old + (int64(sample)-old)/8
		}
		if d.latEWMA.CompareAndSwap(old, next) {
			d.obsLatency.Set(float64(next) / 1e9)
			return
		}
	}
}

// slot maps a cell to its dense device-local index: within one device a
// stripe occupies rows consecutive slots, so this is also the cell's on-disk
// record offset for file backends.
func (d *Device) slot(k cellKey) int { return k.stripe*d.rows + k.pos.Row }

func (d *Device) write(k cellKey, data []byte) error {
	if err := d.be.writeCell(d.slot(k), data, crc32.Checksum(data, castagnoli)); err != nil {
		return err
	}
	d.writes.Add(1)
	d.obsWrites.Inc()
	return nil
}

// writeRun writes count contiguous cells — one stripe's worth on this device
// seals exactly this way — as a single backend operation when the backend
// supports it (one pwrite instead of rows).
func (d *Device) writeRun(k cellKey, cells [][]byte) error {
	crcs := make([]uint32, len(cells))
	for i, c := range cells {
		crcs[i] = crc32.Checksum(c, castagnoli)
	}
	slot := d.slot(k)
	var err error
	if r, ok := d.be.(runIO); ok {
		err = r.writeRun(slot, cells, crcs)
	} else {
		for i := range cells {
			if err = d.be.writeCell(slot+i, cells[i], crcs[i]); err != nil {
				break
			}
		}
	}
	if err != nil {
		return err
	}
	d.writes.Add(int64(len(cells)))
	d.obsWrites.Add(int64(len(cells)))
	return nil
}

func (d *Device) read(k cellKey) ([]byte, error) {
	if d.failed {
		return nil, fmt.Errorf("%w: device %d", ErrFailed, d.id)
	}
	data, crc, err := d.be.readCell(d.slot(k))
	if err != nil {
		if errors.Is(err, errCellMissing) {
			return nil, fmt.Errorf("store: device %d has no element %v", d.id, k)
		}
		return nil, fmt.Errorf("%w: device %d: %v", ErrUnavailable, d.id, err)
	}
	d.reads.Add(1)
	d.obsReads.Inc()
	if crc32.Checksum(data, castagnoli) != crc {
		return nil, fmt.Errorf("%w: device %d stripe %d cell (%d,%d)",
			ErrCorrupt, d.id, k.stripe, k.pos.Row, k.pos.Col)
	}
	return data, nil
}

// readRun reads count contiguous cells starting at k as one backend I/O when
// the backend supports bulk reads (the fan-out executor's coalesced runs map
// to a single pread this way), verifying each cell's checksum. The returned
// slices subdivide one backend buffer.
func (d *Device) readRun(k cellKey, count int) ([][]byte, error) {
	if d.failed {
		return nil, fmt.Errorf("%w: device %d", ErrFailed, d.id)
	}
	r, ok := d.be.(runIO)
	if !ok {
		return nil, errCellMissing // caller falls back to per-cell reads
	}
	slot := d.slot(k)
	raw, crcs, err := r.readRun(slot, count)
	if err != nil {
		if errors.Is(err, errCellMissing) {
			return nil, fmt.Errorf("store: device %d missing elements in run at %v", d.id, k)
		}
		return nil, fmt.Errorf("%w: device %d: %v", ErrUnavailable, d.id, err)
	}
	d.reads.Add(int64(count))
	d.obsReads.Add(int64(count))
	elem := len(raw) / count
	out := make([][]byte, count)
	for i := range out {
		cell := raw[i*elem : (i+1)*elem : (i+1)*elem]
		if crc32.Checksum(cell, castagnoli) != crcs[i] {
			s := slot + i
			return nil, fmt.Errorf("%w: device %d stripe %d row %d",
				ErrCorrupt, d.id, s/d.rows, s%d.rows)
		}
		out[i] = cell
	}
	return out, nil
}

// Store is an erasure-coded append-only blob store.
type Store struct {
	scheme   *core.Scheme
	elemSize int
	rows     int // scheme.Layout().Rows(), cached: slot math sits on hot paths

	// File-backend state (zero for memory-backed stores): the data
	// directory, whether commits run the fsync barrier before publishing,
	// and the factory RecoverDisk uses to open a fresh truncated backend for
	// a replacement device. closed poisons use-after-Close.
	dataDir      string
	fsync        bool
	newBackendFn func(d int) (devBackend, error)
	closed       bool

	// remote marks a store whose devices delegate to CellBackends (see
	// remote.go): Backend() reports it, Close() closes the backends even
	// though there is no data directory. nodeOf, when set, maps each device
	// to its placement node so inflightBias aggregates per node (guarded by
	// mu like readOpts).
	remote bool
	nodeOf []int

	// Migration staging hooks (file backends; nil means in-memory staging):
	// newStagingBackendFn opens device d's dev_NN.{data,crc}.new staging
	// pair, promoteStagingFn renames it over the live pair, and
	// discardStagingFn removes an abandoned one. See repair.go.
	newStagingBackendFn func(d int) (devBackend, error)
	promoteStagingFn    func(d int) error
	discardStagingFn    func(d int) error

	// rebuilding marks devices with an incremental rebuild or migration in
	// progress (guarded by mu), so two repairs cannot race on one device and
	// WriteAt refuses while staged copies could go stale.
	rebuilding map[int]bool

	// testScrubYield, when set by a test, runs between Scrub batches while
	// the shared lock is released — the window concurrent reads and writes
	// are promised.
	testScrubYield func(next int)

	// mu guards devices' cell maps, failure flags, and the append state.
	// Reads hold it shared; writes, failure injection, recovery, and healing
	// hold it exclusively.
	mu      sync.RWMutex
	devices []*Device
	stripes int    // full stripes sealed so far
	pending []byte // buffered bytes not yet forming a full stripe
	length  int64  // total bytes appended

	// epoch increments on every mutation that can change the bytes a read
	// returns or the plan it follows (failure, recovery, corruption, heal,
	// overwrite, fault-plan change). Callers caching decoded reads key them
	// by this value.
	epoch atomic.Int64

	// obs, when non-nil, is the metrics bundle every interesting event feeds
	// (see metrics.go). Guarded by mu like inject: set exclusively, consulted
	// under either lock mode; the instruments themselves are atomic.
	obs *Metrics

	// inject, when non-nil, decides a fault for every device operation.
	// Guarded by mu (set exclusively, consulted under either lock mode).
	inject FaultInjector
	// opTimeout and retries are the per-operation retry policy applied when
	// a fault injector is installed.
	opTimeout time.Duration
	retries   int

	// testBeforeHeal, when set by a test, runs between a shared-lock read
	// detecting corruption and the exclusive re-acquisition that heals it —
	// the window where concurrent failures can change what is recoverable.
	testBeforeHeal func()

	// bufs is the shard arena decoded cells are drawn from; cellsPool
	// recycles per-stripe cell containers. Together they keep the read
	// executors from allocating per-stripe garbage on every request.
	bufs      core.Buffers
	cellsPool sync.Pool // *stripeCells

	// readOpts are the default execution options ReadAt uses (see fanout.go).
	// Guarded by mu like inject.
	readOpts ReadOptions
	// hedgeLat records recent per-run latencies; hedged reads derive their
	// speculation delay from its quantiles.
	hedgeLat latencyRing
}

// New creates a store using the given scheme with elemSize-byte elements.
func New(scheme *core.Scheme, elemSize int) (*Store, error) {
	if elemSize < 1 {
		return nil, fmt.Errorf("store: element size %d must be positive", elemSize)
	}
	rows := scheme.Layout().Rows()
	devs := make([]*Device, scheme.N())
	for i := range devs {
		devs[i] = newDevice(i, rows)
	}
	return &Store{
		scheme:    scheme,
		elemSize:  elemSize,
		rows:      rows,
		devices:   devs,
		opTimeout: DefaultOpTimeout,
		retries:   DefaultRetries,
	}, nil
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(scheme *core.Scheme, elemSize int) *Store {
	s, err := New(scheme, elemSize)
	if err != nil {
		panic(err)
	}
	return s
}

// Scheme returns the erasure-coding scheme in use.
func (s *Store) Scheme() *core.Scheme { return s.scheme }

// ElementSize returns the element size in bytes.
func (s *Store) ElementSize() int { return s.elemSize }

// Len returns the total number of bytes appended so far.
func (s *Store) Len() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.length
}

// NextOffset returns the logical offset the next appended byte will occupy.
// It differs from Len whenever Flush has padded a partial stripe: the
// padding occupies address space (reads map offsets to stripe positions
// arithmetically) without being user data.
func (s *Store) NextOffset() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(s.stripes)*int64(s.stripeBytes()) + int64(len(s.pending))
}

// Stripes returns the number of sealed (fully encoded) stripes.
func (s *Store) Stripes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stripes
}

// Epoch returns the current mutation epoch. Two reads of the same range
// observing the same epoch are guaranteed byte-identical, so decoded results
// may be cached until the epoch moves.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// bumpEpoch advances the mutation epoch and accounts the invalidation.
// Caller holds mu (the epoch itself is atomic; the convention keeps bumps
// tied to the mutation they publish).
func (s *Store) bumpEpoch() {
	s.epoch.Add(1)
	s.obs.epochBump()
}

// SetFaultInjector installs (or with nil, removes) the fault injector
// consulted on every device operation. Installing a plan bumps the epoch:
// a plan can change what reads observe (e.g. corruption behaviour), so any
// decoded-read cache keyed by the epoch must invalidate.
func (s *Store) SetFaultInjector(fi FaultInjector) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.inject = fi
	s.bumpEpoch()
}

// FaultInjector returns the currently installed fault injector (nil if none).
func (s *Store) FaultInjector() FaultInjector {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.inject
}

// SetRetryPolicy overrides the per-operation timeout and transient-fault
// retry budget (attempts = retries+1). Zero or negative arguments keep the
// defaults.
func (s *Store) SetRetryPolicy(perOp time.Duration, retries int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if perOp > 0 {
		s.opTimeout = perOp
	}
	if retries >= 0 {
		s.retries = retries
	}
}

// Device returns device d for inspection.
func (s *Store) Device(d int) *Device {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.devices[d]
}

// ResetCounters zeroes every device's I/O counters.
func (s *Store) ResetCounters() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.devices {
		d.reads.Store(0)
		d.writes.Store(0)
	}
}

// stripeBytes is the user-data capacity of one stripe.
func (s *Store) stripeBytes() int { return s.scheme.DataPerStripe() * s.elemSize }

// readCell reads one cell from device dev through the fault injector.
// Injected latency is served (capped at the per-op timeout), transient
// faults — errors, timed-out/stuck operations, checksum-failing mis-reads —
// are retried up to the retry budget, and a device that exhausts the budget
// is reported ErrUnavailable so read paths can route around it. Checksum
// failures of the stored bytes themselves surface as ErrCorrupt (persistent
// corruption: retrying cannot help, healing can). Caller holds mu in either
// mode.
func (s *Store) readCell(dev int, k cellKey) ([]byte, error) {
	return s.readCellCtx(context.Background(), dev, k)
}

// readCellCtx is readCell with cancellable fault waits: injected delays and
// stuck-op timeouts return early when ctx is done, so hedged and fanned-out
// reads can abandon a straggling device without leaking a sleeping
// goroutine. Caller holds mu in either mode.
func (s *Store) readCellCtx(ctx context.Context, dev int, k cellKey) ([]byte, error) {
	d := s.devices[dev]
	start := time.Now()
	var last error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		var f Fault
		if s.inject != nil {
			f = s.inject.ReadFault(dev)
		}
		if f.Failed {
			d.noteError()
			return nil, fmt.Errorf("%w: device %d fail-stopped by fault plan", ErrFailed, dev)
		}
		if f.Stuck || f.Delay > s.opTimeout {
			if err := sleepCtx(ctx, s.opTimeout); err != nil {
				return nil, err
			}
			last = fmt.Errorf("%w: device %d read timed out after %v", ErrUnavailable, dev, s.opTimeout)
			s.obs.retry(false)
			d.observeLatency(s.opTimeout)
			continue
		}
		if f.Delay > 0 {
			if err := sleepCtx(ctx, f.Delay); err != nil {
				return nil, err
			}
		}
		if f.Err != nil {
			last = fmt.Errorf("%w: device %d: %v", ErrUnavailable, dev, f.Err)
			s.obs.retry(false)
			continue
		}
		data, err := d.read(k)
		if err != nil {
			// Failed flag, missing cell, or stored-bytes checksum failure:
			// none of these are transient, so no retry. A backend I/O error
			// (ErrUnavailable from the device itself, not an injected fault)
			// is a hard signal for the failure detector.
			if errors.Is(err, ErrUnavailable) {
				d.noteError()
			}
			return nil, err
		}
		if f.Corrupt {
			// The device returned bits failing the checksum — a transient
			// medium mis-read (the stored cell is clean). Retry.
			last = fmt.Errorf("%w: device %d returned bytes failing checksum", ErrUnavailable, dev)
			s.obs.retry(false)
			continue
		}
		d.observeLatency(time.Since(start))
		return data, nil
	}
	if last != nil {
		// Retry budget exhausted: the device is limping hard enough to count.
		d.noteError()
	}
	return nil, last
}

// writeGate runs the write-side fault decision for one cell write on device
// dev: latency is served and transient faults retried, exactly like
// readCell. Actual cell commits are pure memory mutations that cannot fail,
// so multi-cell updates gate every write first and only then mutate — a
// faulted update aborts with no partial state, keeping stripes
// parity-consistent under any fault schedule. Caller holds mu exclusively.
func (s *Store) writeGate(dev int) error {
	var last error
	for attempt := 0; attempt <= s.retries; attempt++ {
		var f Fault
		if s.inject != nil {
			f = s.inject.WriteFault(dev)
		}
		if f.Failed {
			s.devices[dev].noteError()
			return fmt.Errorf("%w: device %d fail-stopped by fault plan", ErrFailed, dev)
		}
		if f.Stuck || f.Delay > s.opTimeout {
			time.Sleep(s.opTimeout)
			last = fmt.Errorf("%w: device %d write timed out after %v", ErrUnavailable, dev, s.opTimeout)
			s.obs.retry(true)
			continue
		}
		if f.Delay > 0 {
			time.Sleep(f.Delay)
		}
		if f.Err != nil {
			last = fmt.Errorf("%w: device %d: %v", ErrUnavailable, dev, f.Err)
			s.obs.retry(true)
			continue
		}
		return nil
	}
	if last != nil {
		s.devices[dev].noteError()
	}
	return last
}

// Append adds data to the store, sealing (encoding and distributing) every
// stripe that fills. Partial tails stay buffered until more data arrives or
// Flush pads them out.
//
// On a file-backed store with the FsyncAlways discipline, Append returns
// only after every sealed stripe is durably on disk: each seal gates all
// writes, then writes, and one fsync barrier covers every device before
// Append returns — write-then-fsync-then-publish, with the publish being the
// lock release that makes the new stripes visible to readers.
func (s *Store) Append(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, data...)
	s.length += int64(len(data))
	sealed := false
	for len(s.pending) >= s.stripeBytes() {
		if err := s.seal(s.pending[:s.stripeBytes()]); err != nil {
			return err
		}
		sealed = true
		s.pending = s.pending[s.stripeBytes():]
	}
	if sealed {
		return s.syncDevices(nil)
	}
	return nil
}

// Flush zero-pads and seals any buffered partial stripe. The store's Len is
// unchanged: padding is not user data. It does occupy address space, though,
// so callers placing multiple objects must take NextOffset — not Len — as
// the next object's position.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	buf := make([]byte, s.stripeBytes())
	copy(buf, s.pending)
	if err := s.seal(buf); err != nil {
		// Keep the partial tail: a faulted seal wrote nothing, so the bytes
		// are still only in the buffer and a later Flush can retry.
		return err
	}
	s.pending = nil
	return s.syncDevices(nil)
}

// seal encodes one stripe's worth of bytes and writes all cells to devices.
// Caller holds mu exclusively.
func (s *Store) seal(buf []byte) error {
	dps := s.scheme.DataPerStripe()
	data := make([][]byte, dps)
	for e := range data {
		// Copy: the pending buffer is reused.
		shard := make([]byte, s.elemSize)
		copy(shard, buf[e*s.elemSize:(e+1)*s.elemSize])
		data[e] = shard
	}
	cells, err := s.scheme.EncodeStripe(data)
	if err != nil {
		return err
	}
	lay := s.scheme.Layout()
	n := s.scheme.N()
	// Fault gate every cell write before touching any device: a faulted
	// stripe seal aborts whole, leaving the pending buffer intact for a
	// later retry instead of a half-written stripe.
	for col := 0; col < n; col++ {
		disk := lay.Disk(s.stripes, col)
		for row := 0; row < lay.Rows(); row++ {
			if err := s.writeGate(disk); err != nil {
				return fmt.Errorf("store: seal stripe %d: %w", s.stripes, err)
			}
		}
	}
	// Each device's share of the stripe occupies rows contiguous slots, so
	// it commits as one run (a single pwrite on file backends). The stripe
	// counter advances only after every device write succeeded; the fsync
	// barrier is the caller's (Append/Flush sync once per batch of seals).
	devCells := make([][]byte, lay.Rows())
	for col := 0; col < n; col++ {
		disk := lay.Disk(s.stripes, col)
		for row := 0; row < lay.Rows(); row++ {
			devCells[row] = cells[row*n+col]
		}
		k := cellKey{s.stripes, layout.Pos{Row: 0, Col: col}}
		if err := s.devices[disk].writeRun(k, devCells); err != nil {
			return fmt.Errorf("store: seal stripe %d device %d: %w", s.stripes, disk, err)
		}
	}
	s.stripes++
	return nil
}

// FailDisk marks device d failed. Its contents become unreadable until
// RecoverDisk rebuilds them.
func (s *Store) FailDisk(d int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.devices[d].failed = true
	s.bumpEpoch()
}

// FailDiskWithinTolerance marks device d failed only if the total failure
// count stays within the scheme's fault tolerance, and reports whether it
// did. The check and the mark are one atomic step, so concurrent callers can
// never push the array past tolerance.
func (s *Store) FailDiskWithinTolerance(d int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	failed := 0
	for _, dev := range s.devices {
		if dev.failed {
			failed++
		}
	}
	if s.devices[d].failed {
		return true
	}
	if failed >= s.scheme.FaultTolerance() {
		return false
	}
	s.devices[d].failed = true
	s.bumpEpoch()
	return true
}

// FailedDisks returns the currently failed device IDs, ascending.
func (s *Store) FailedDisks() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.failedDisksLocked()
}

func (s *Store) failedDisksLocked() []int {
	var out []int
	for _, d := range s.devices {
		if d.failed {
			out = append(out, d.id)
		}
	}
	return out
}

// ReadResult carries a read's payload alongside the plan that produced it,
// so callers can feed the plan's loads into a timing model.
type ReadResult struct {
	Data []byte
	Plan *core.Plan
	// Healed counts cells whose checksum failed during this read and that
	// were rebuilt from their group and rewritten in place.
	Healed int
}

// ReadAt reads length bytes starting at byte offset off. With no failed
// devices this is a normal read; with failures the planner fetches recovery
// sets and the store decodes the lost elements. Bytes must lie within
// sealed stripes (append full stripes or Flush first).
//
// Slow or erroring devices (injected faults) are retried with a bounded
// budget; a device that stays unavailable is routed around exactly like a
// failed one — the read re-plans degraded and decodes the missing elements —
// so availability degrades gracefully long before a disk is marked failed.
//
// Concurrent ReadAt calls share the store lock and proceed in parallel. The
// one exception is a read that trips over silent corruption: healing
// rewrites the cell, so the read retries under the exclusive lock.
//
// Plans execute through the fan-out executor by default (per-device
// coalesced runs issued concurrently — see fanout.go); SetReadOptions or
// ReadAtCtx select the sequential executor, a concurrency bound, or hedged
// reads per call.
func (s *Store) ReadAt(off int64, length int) (*ReadResult, error) {
	return s.ReadAtCtx(context.Background(), off, length, s.ReadDefaults())
}

// PlanRead plans the read of length bytes at offset off — normal or
// degraded, exactly as ReadAt would plan it — without touching any device.
// It backs metadata-only requests (HTTP HEAD): the plan carries the read
// cost and max-disk-load a real read would incur, for free.
func (s *Store) PlanRead(off int64, length int) (*core.Plan, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("%w: off=%d length=%d", ErrRange, off, length)
	}
	sealed := int64(s.stripes) * int64(s.stripeBytes())
	if off+int64(length) > sealed {
		return nil, fmt.Errorf("%w: [%d,%d) beyond sealed extent %d", ErrRange, off, off+int64(length), sealed)
	}
	if length == 0 {
		return &core.Plan{}, nil
	}
	startElem := int(off / int64(s.elemSize))
	endElem := int((off + int64(length) - 1) / int64(s.elemSize))
	count := endElem - startElem + 1
	failed := s.failedDisksLocked()
	if len(failed) == 0 {
		return s.scheme.PlanNormalRead(startElem, count)
	}
	return s.scheme.PlanDegradedRead(startElem, count, failed)
}

// readAt executes one read under whichever lock the caller holds. With
// heal=false a corrupt cell aborts with errNeedsHeal (the caller escalates
// to the exclusive lock); with heal=true (exclusive lock held) corrupt cells
// are rebuilt and rewritten in place.
//
// Devices that exhaust their retry budget mid-plan are collected and the
// read re-plans with them treated as failed (degraded fallback). The loop
// terminates: each iteration either returns or grows the unavailable set,
// and planning fails with ErrUnrecoverable once too much of the array is
// out of service.
func (s *Store) readAt(ctx context.Context, off int64, length int, heal bool) (*ReadResult, error) {
	startElem, count, err := s.checkReadRange(off, length)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		return &ReadResult{Data: []byte{}, Plan: &core.Plan{}}, nil
	}
	dps := s.scheme.DataPerStripe()
	endElem := startElem + count - 1
	startStripe := startElem / dps

	// Per-stripe cell containers come from the store's pool and decoded
	// shards from the arena; release recycles them on every exit path —
	// including each replan, whose pass may refill the same slots from
	// different sources — so steady-state reads generate no per-stripe
	// garbage and no pooled buffer is ever dropped or recycled twice.
	fetched := make([]*stripeCells, endElem/dps-startStripe+1)
	release := func() {
		for i, sc := range fetched {
			if sc != nil {
				s.putStripeCells(sc)
				fetched[i] = nil
			}
		}
	}

	unavail := make(map[int]bool) // devices that proved slow-or-erroring

replan:
	for {
		failed := s.failedDisksLocked()
		for d := range unavail {
			failed = append(failed, d)
		}
		sort.Ints(failed)
		failed = dedupInts(failed)

		var plan *core.Plan
		var err error
		if len(failed) == 0 {
			plan, err = s.scheme.PlanNormalRead(startElem, count)
		} else {
			plan, err = s.scheme.PlanDegradedRead(startElem, count, failed)
		}
		if err != nil {
			release()
			if len(unavail) > 0 {
				// The plan only became impossible because of devices that
				// are transiently out: surface that, so callers can retry
				// later rather than treat the data as lost.
				return nil, fmt.Errorf("%w: degraded fallback exhausted (unavailable %v): %w",
					ErrUnavailable, keysSorted(unavail), err)
			}
			return nil, err
		}

		// Execute the plan: fetch each planned cell into per-stripe buffers.
		// Checksum failures are healed on the fly from the cell's group;
		// unavailable devices send the read back around for a new plan.
		healed := 0
		for _, a := range plan.Reads {
			sc := fetched[a.Stripe-startStripe]
			if sc == nil {
				sc = s.getStripeCells()
				fetched[a.Stripe-startStripe] = sc
			}
			data, err := s.readCellCtx(ctx, a.Disk, cellKey{a.Stripe, a.Pos})
			if errors.Is(err, ErrCorrupt) {
				if !heal {
					release()
					return nil, errNeedsHeal
				}
				data, err = s.healCell(a.Stripe, a.Pos)
				if err != nil {
					release()
					return nil, err
				}
				healed++
			} else if errors.Is(err, ErrUnavailable) || errors.Is(err, ErrFailed) {
				unavail[a.Disk] = true
				s.obs.replan()
				release()
				continue replan
			}
			if err != nil {
				release()
				return nil, err
			}
			sc.cells[a.Pos.Row*s.scheme.N()+a.Pos.Col] = data
		}

		// Assemble the requested elements, decoding lost ones on the fly.
		data, err := s.assemble(fetched, startStripe, startElem, endElem, off, length)
		release()
		if err != nil {
			return nil, err
		}
		s.obs.observeRead(len(failed) > 0, plan.MaxLoad())
		return &ReadResult{Data: data, Plan: plan, Healed: healed}, nil
	}
}

// dedupInts removes adjacent duplicates from a sorted slice, in place.
func dedupInts(xs []int) []int {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

// keysSorted returns the map's keys ascending, for stable error text.
func keysSorted(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// healCell rebuilds a corrupt (checksum-failing) cell from the surviving
// cells of its code group, rewrites it to its device, and returns the clean
// bytes. The corrupt cell and any failed disks count as erasures. Caller
// holds mu exclusively.
//
// Recoverability is re-validated here, under the exclusive lock: the
// corruption was detected under the shared lock, and a concurrent FailDisk
// in the lock gap can push the group past what the code decodes. The heal
// refuses loudly (ErrUnrecoverable) rather than rewrite anything derived
// from an over-erased group.
func (s *Store) healCell(stripe int, pos layout.Pos) ([]byte, error) {
	lay := s.scheme.Layout()
	code := s.scheme.Code()
	target := lay.CellAt(pos)
	ownDisk := lay.Disk(stripe, pos.Col)
	if s.devices[ownDisk].failed {
		// The corrupt cell's own disk failed in the lock gap: there is
		// nothing to rewrite — the whole device needs recovery.
		return nil, fmt.Errorf("%w: cannot heal stripe %d cell (%d,%d): device %d failed mid-heal",
			core.ErrUnrecoverable, stripe, pos.Row, pos.Col, ownDisk)
	}
	group := make([][]byte, code.N())
	erased := []int{target.Element}
	for t := 0; t < code.N(); t++ {
		p := lay.GroupCell(target.Group, t)
		if p == pos {
			continue // the corrupt cell itself
		}
		disk := lay.Disk(stripe, p.Col)
		data, err := s.readCell(disk, cellKey{stripe, p})
		if err != nil {
			// Failed or unavailable disk, or a second corrupt cell: leave
			// as erasure and let the decoder decide recoverability.
			erased = append(erased, t)
			continue
		}
		group[t] = data
	}
	if !code.CanRecover(erased) {
		return nil, fmt.Errorf("%w: cannot heal stripe %d cell (%d,%d): erased elements %v exceed what %s decodes",
			core.ErrUnrecoverable, stripe, pos.Row, pos.Col, erased, code.Name())
	}
	if err := code.ReconstructElements(group, []int{target.Element}); err != nil {
		return nil, fmt.Errorf("%w: cannot heal stripe %d cell (%d,%d): %v",
			ErrCorrupt, stripe, pos.Row, pos.Col, err)
	}
	clean := group[target.Element]
	if err := s.writeGate(ownDisk); err != nil {
		return nil, fmt.Errorf("store: heal stripe %d cell (%d,%d) rewrite: %w",
			stripe, pos.Row, pos.Col, err)
	}
	if err := s.devices[ownDisk].write(cellKey{stripe, pos}, clean); err != nil {
		return nil, fmt.Errorf("store: heal stripe %d cell (%d,%d) rewrite: %w",
			stripe, pos.Row, pos.Col, err)
	}
	if err := s.syncDevices([]int{ownDisk}); err != nil {
		return nil, err
	}
	s.obs.heal()
	s.bumpEpoch()
	return clean, nil
}

// Heal checks the cell at (stripe, pos) and, if its stored bytes fail their
// checksum, rebuilds and rewrites it from its group. It reports whether a
// heal happened. Clean cells are a no-op; unrecoverable cells return an
// error wrapping core.ErrUnrecoverable.
func (s *Store) Heal(stripe int, pos layout.Pos) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	disk := s.scheme.Layout().Disk(stripe, pos.Col)
	_, err := s.devices[disk].read(cellKey{stripe, pos})
	if err == nil {
		return false, nil
	}
	if !errors.Is(err, ErrCorrupt) {
		return false, err
	}
	if _, err := s.healCell(stripe, pos); err != nil {
		return false, err
	}
	return true, nil
}

// WriteAt overwrites length-len(data) bytes at offset off within the sealed
// extent, using the read-modify-write small-write path: for each touched
// element, the old cell is read, the delta folded into the group's parity
// cells, and only those cells rewritten. Writes must be element-aligned and
// a whole number of elements (partial-element updates would need a
// read-merge step the paper's append-only model never exercises). All disks
// must be healthy.
func (s *Store) WriteAt(off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkWriteArgs(off, data); err != nil {
		return err
	}
	lay := s.scheme.Layout()
	n := s.scheme.N()
	dps := s.scheme.DataPerStripe()
	count := len(data) / s.elemSize
	startElem := int(off / int64(s.elemSize))

	// Stage every cell update first, then fault-gate every write, then
	// commit. Loads of cells an earlier element already updated read from
	// the staging overlay, so parity deltas compose; nothing touches a
	// device until every read succeeded and every write cleared its gate —
	// a faulted update aborts whole, never leaving parity inconsistent.
	type stagedWrite struct {
		disk int
		k    cellKey
	}
	overlay := make(map[cellKey][]byte)
	var order []stagedWrite
	for i := 0; i < count; i++ {
		x := startElem + i
		stripe, e := x/dps, x%dps
		// Materialize the element's cell and its group's parity cells.
		cells := make([][]byte, s.scheme.CellsPerStripe())
		pos := lay.DataPos(e)
		cell := lay.CellAt(pos)
		load := func(p layout.Pos) error {
			k := cellKey{stripe, p}
			if staged, ok := overlay[k]; ok {
				cells[p.Row*n+p.Col] = staged
				return nil
			}
			disk := lay.Disk(stripe, p.Col)
			data, err := s.readCell(disk, k)
			if err != nil {
				return err
			}
			// Copy: UpdateData mutates parity in place and we re-write it.
			cells[p.Row*n+p.Col] = append([]byte(nil), data...)
			return nil
		}
		if err := load(pos); err != nil {
			return err
		}
		for t := s.scheme.Code().K(); t < s.scheme.Code().N(); t++ {
			if err := load(lay.GroupCell(cell.Group, t)); err != nil {
				return err
			}
		}
		touched, err := s.scheme.UpdateData(cells, e, data[i*s.elemSize:(i+1)*s.elemSize])
		if err != nil {
			return err
		}
		for _, idx := range touched {
			p := layout.Pos{Row: idx / n, Col: idx % n}
			k := cellKey{stripe, p}
			if _, ok := overlay[k]; !ok {
				order = append(order, stagedWrite{lay.Disk(stripe, p.Col), k})
			}
			overlay[k] = cells[idx]
		}
	}
	for _, sw := range order {
		if err := s.writeGate(sw.disk); err != nil {
			return fmt.Errorf("store: write [%d,+%d): %w", off, len(data), err)
		}
	}
	touched := make(map[int]bool)
	for _, sw := range order {
		if err := s.devices[sw.disk].write(sw.k, overlay[sw.k]); err != nil {
			return fmt.Errorf("store: write [%d,+%d): %w", off, len(data), err)
		}
		touched[sw.disk] = true
	}
	if err := s.syncDevices(keysSorted(touched)); err != nil {
		return err
	}
	s.bumpEpoch()
	return nil
}

// checkWriteArgs validates an in-place overwrite request: element-aligned,
// within the sealed extent, no failed disks. Caller holds mu exclusively.
func (s *Store) checkWriteArgs(off int64, data []byte) error {
	if off < 0 || off%int64(s.elemSize) != 0 || len(data)%s.elemSize != 0 {
		return fmt.Errorf("%w: write [%d,+%d) not element-aligned (element %d)",
			ErrRange, off, len(data), s.elemSize)
	}
	sealed := int64(s.stripes) * int64(s.stripeBytes())
	if off+int64(len(data)) > sealed {
		return fmt.Errorf("%w: write [%d,+%d) beyond sealed extent %d", ErrRange, off, len(data), sealed)
	}
	if failed := s.failedDisksLocked(); len(failed) > 0 {
		return fmt.Errorf("%w: cannot update with failed disks %v (recover first)", ErrFailed, failed)
	}
	if len(s.rebuilding) > 0 {
		// A migration's staged copy would go stale under an in-place update
		// (its already-copied stripes are not re-read). Transient: retry
		// after the repair finishes.
		return fmt.Errorf("%w: cannot update while devices %v are being rebuilt or migrated",
			ErrUnavailable, keysSorted(s.rebuilding))
	}
	return nil
}

// WriteAtReencode performs the same overwrite as WriteAt through the naive
// full-stripe path: every touched stripe's data elements are read back, the
// new bytes merged in, the whole stripe re-encoded, and every cell of the
// stripe rewritten. It exists as the measurable baseline the parity-delta
// path is judged against — identical bytes, strictly more device I/O — and
// shares WriteAt's atomicity: every write is fault-gated before any device
// mutates, so a faulted update aborts whole.
func (s *Store) WriteAtReencode(off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.checkWriteArgs(off, data); err != nil {
		return err
	}
	lay := s.scheme.Layout()
	n := s.scheme.N()
	dps := s.scheme.DataPerStripe()
	count := len(data) / s.elemSize
	startElem := int(off / int64(s.elemSize))
	endElem := startElem + count - 1

	// Stage every touched stripe's full cell set first, then gate every
	// write, then commit — nothing touches a device until every read
	// succeeded and every write cleared its gate.
	type stagedStripe struct {
		stripe int
		cells  [][]byte
	}
	var staged []stagedStripe
	for stripe := startElem / dps; stripe <= endElem/dps; stripe++ {
		shards := make([][]byte, dps)
		for e := 0; e < dps; e++ {
			x := stripe*dps + e
			if x >= startElem && x <= endElem {
				// Fully overwritten: no read needed. Copy — device cells must
				// not alias caller-owned bytes.
				i := x - startElem
				shard := make([]byte, s.elemSize)
				copy(shard, data[i*s.elemSize:(i+1)*s.elemSize])
				shards[e] = shard
				continue
			}
			pos := lay.DataPos(e)
			cell, err := s.readCell(lay.Disk(stripe, pos.Col), cellKey{stripe, pos})
			if err != nil {
				return err
			}
			shards[e] = cell
		}
		cells, err := s.scheme.EncodeStripe(shards)
		if err != nil {
			return err
		}
		staged = append(staged, stagedStripe{stripe, cells})
	}
	for _, st := range staged {
		for col := 0; col < n; col++ {
			disk := lay.Disk(st.stripe, col)
			for row := 0; row < lay.Rows(); row++ {
				if err := s.writeGate(disk); err != nil {
					return fmt.Errorf("store: reencode write [%d,+%d): %w", off, len(data), err)
				}
			}
		}
	}
	for _, st := range staged {
		for row := 0; row < lay.Rows(); row++ {
			for col := 0; col < n; col++ {
				pos := layout.Pos{Row: row, Col: col}
				if err := s.devices[lay.Disk(st.stripe, col)].write(cellKey{st.stripe, pos}, st.cells[row*n+col]); err != nil {
					return fmt.Errorf("store: reencode write [%d,+%d): %w", off, len(data), err)
				}
			}
		}
	}
	if err := s.syncDevices(nil); err != nil {
		return err
	}
	s.bumpEpoch()
	return nil
}

// CorruptCell overwrites one stored cell with garbage — a test hook for
// scrub and failure-injection scenarios.
func (s *Store) CorruptCell(stripe int, pos layout.Pos) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	disk := s.scheme.Layout().Disk(stripe, pos.Col)
	k := cellKey{stripe, pos}
	dev := s.devices[disk]
	if err := dev.be.corrupt(dev.slot(k)); err != nil {
		if errors.Is(err, errCellMissing) {
			return fmt.Errorf("store: no cell %v on device %d", k, disk)
		}
		return err
	}
	s.bumpEpoch()
	return nil
}
