// Package store implements an erasure-coded blob store over a set of
// simulated devices — the "erasure coded cloud storage system" substrate the
// paper evaluates on.
//
// Writes follow the paper's append-only model (§I): user bytes accumulate in
// a buffer and are erasure coded a full stripe at a time. Reads go through
// the core planner: normal reads touch only data cells, degraded reads fetch
// recovery sets and decode. Every device access is counted, so experiments
// can cross-check planned loads against observed I/O.
//
// The store is safe for concurrent use: reads share a read lock so
// independent clients plan and decode in parallel, while writes, failure
// injection, recovery, and healing exclude. Device I/O counters are atomic,
// so concurrent readers account their accesses without contending.
package store

import (
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/layout"
)

// ErrRange is returned for reads outside the written extent.
var ErrRange = errors.New("store: read out of range")

// ErrFailed is returned when an operation touches a failed device without a
// recovery path.
var ErrFailed = errors.New("store: device failed")

// ErrCorrupt is returned when a cell's content no longer matches the
// checksum recorded at write time (silent bit rot). Reads heal such cells
// automatically when the group has enough redundancy.
var ErrCorrupt = errors.New("store: corrupt cell")

// errNeedsHeal is the internal signal that a shared-lock read hit a corrupt
// cell and must retry exclusively so it may rewrite the healed bytes.
var errNeedsHeal = errors.New("store: read needs exclusive heal")

// Device is one simulated disk: a cell container with I/O accounting and
// per-cell CRC32C checksums that detect silent corruption on read.
type Device struct {
	id     int
	cells  map[cellKey][]byte
	crcs   map[cellKey]uint32
	failed bool
	// reads and writes count element-granularity accesses. They are atomic
	// because reads are served under the store's shared lock, so many
	// goroutines increment them concurrently.
	reads  atomic.Int64
	writes atomic.Int64
}

type cellKey struct {
	stripe int
	pos    layout.Pos
}

func newDevice(id int) *Device {
	return &Device{
		id:    id,
		cells: make(map[cellKey][]byte),
		crcs:  make(map[cellKey]uint32),
	}
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ID returns the device's index in the array.
func (d *Device) ID() int { return d.id }

// Failed reports whether the device is marked failed.
func (d *Device) Failed() bool { return d.failed }

// Elements returns the number of elements currently stored on the device.
func (d *Device) Elements() int { return len(d.cells) }

// Reads returns the element-granularity read count.
func (d *Device) Reads() int { return int(d.reads.Load()) }

// Writes returns the element-granularity write count.
func (d *Device) Writes() int { return int(d.writes.Load()) }

func (d *Device) write(k cellKey, data []byte) {
	d.cells[k] = data
	d.crcs[k] = crc32.Checksum(data, castagnoli)
	d.writes.Add(1)
}

func (d *Device) read(k cellKey) ([]byte, error) {
	if d.failed {
		return nil, fmt.Errorf("%w: device %d", ErrFailed, d.id)
	}
	data, ok := d.cells[k]
	if !ok {
		return nil, fmt.Errorf("store: device %d has no element %v", d.id, k)
	}
	d.reads.Add(1)
	if crc32.Checksum(data, castagnoli) != d.crcs[k] {
		return nil, fmt.Errorf("%w: device %d stripe %d cell (%d,%d)",
			ErrCorrupt, d.id, k.stripe, k.pos.Row, k.pos.Col)
	}
	return data, nil
}

// Store is an erasure-coded append-only blob store.
type Store struct {
	scheme   *core.Scheme
	elemSize int

	// mu guards devices' cell maps, failure flags, and the append state.
	// Reads hold it shared; writes, failure injection, recovery, and healing
	// hold it exclusively.
	mu      sync.RWMutex
	devices []*Device
	stripes int    // full stripes sealed so far
	pending []byte // buffered bytes not yet forming a full stripe
	length  int64  // total bytes appended

	// epoch increments on every mutation that can change the bytes a read
	// returns or the plan it follows (failure, recovery, corruption, heal,
	// overwrite). Callers caching decoded reads key them by this value.
	epoch atomic.Int64
}

// New creates a store using the given scheme with elemSize-byte elements.
func New(scheme *core.Scheme, elemSize int) (*Store, error) {
	if elemSize < 1 {
		return nil, fmt.Errorf("store: element size %d must be positive", elemSize)
	}
	devs := make([]*Device, scheme.N())
	for i := range devs {
		devs[i] = newDevice(i)
	}
	return &Store{scheme: scheme, elemSize: elemSize, devices: devs}, nil
}

// MustNew is New for known-good arguments; it panics on error.
func MustNew(scheme *core.Scheme, elemSize int) *Store {
	s, err := New(scheme, elemSize)
	if err != nil {
		panic(err)
	}
	return s
}

// Scheme returns the erasure-coding scheme in use.
func (s *Store) Scheme() *core.Scheme { return s.scheme }

// ElementSize returns the element size in bytes.
func (s *Store) ElementSize() int { return s.elemSize }

// Len returns the total number of bytes appended so far.
func (s *Store) Len() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.length
}

// NextOffset returns the logical offset the next appended byte will occupy.
// It differs from Len whenever Flush has padded a partial stripe: the
// padding occupies address space (reads map offsets to stripe positions
// arithmetically) without being user data.
func (s *Store) NextOffset() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return int64(s.stripes)*int64(s.stripeBytes()) + int64(len(s.pending))
}

// Stripes returns the number of sealed (fully encoded) stripes.
func (s *Store) Stripes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.stripes
}

// Epoch returns the current mutation epoch. Two reads of the same range
// observing the same epoch are guaranteed byte-identical, so decoded results
// may be cached until the epoch moves.
func (s *Store) Epoch() int64 { return s.epoch.Load() }

// Device returns device d for inspection.
func (s *Store) Device(d int) *Device {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.devices[d]
}

// ResetCounters zeroes every device's I/O counters.
func (s *Store) ResetCounters() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for _, d := range s.devices {
		d.reads.Store(0)
		d.writes.Store(0)
	}
}

// stripeBytes is the user-data capacity of one stripe.
func (s *Store) stripeBytes() int { return s.scheme.DataPerStripe() * s.elemSize }

// Append adds data to the store, sealing (encoding and distributing) every
// stripe that fills. Partial tails stay buffered until more data arrives or
// Flush pads them out.
func (s *Store) Append(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pending = append(s.pending, data...)
	s.length += int64(len(data))
	for len(s.pending) >= s.stripeBytes() {
		if err := s.seal(s.pending[:s.stripeBytes()]); err != nil {
			return err
		}
		s.pending = s.pending[s.stripeBytes():]
	}
	return nil
}

// Flush zero-pads and seals any buffered partial stripe. The store's Len is
// unchanged: padding is not user data. It does occupy address space, though,
// so callers placing multiple objects must take NextOffset — not Len — as
// the next object's position.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.pending) == 0 {
		return nil
	}
	buf := make([]byte, s.stripeBytes())
	copy(buf, s.pending)
	s.pending = nil
	return s.seal(buf)
}

// seal encodes one stripe's worth of bytes and writes all cells to devices.
// Caller holds mu exclusively.
func (s *Store) seal(buf []byte) error {
	dps := s.scheme.DataPerStripe()
	data := make([][]byte, dps)
	for e := range data {
		// Copy: the pending buffer is reused.
		shard := make([]byte, s.elemSize)
		copy(shard, buf[e*s.elemSize:(e+1)*s.elemSize])
		data[e] = shard
	}
	cells, err := s.scheme.EncodeStripe(data)
	if err != nil {
		return err
	}
	lay := s.scheme.Layout()
	n := s.scheme.N()
	for row := 0; row < lay.Rows(); row++ {
		for col := 0; col < n; col++ {
			pos := layout.Pos{Row: row, Col: col}
			disk := lay.Disk(s.stripes, col)
			s.devices[disk].write(cellKey{s.stripes, pos}, cells[row*n+col])
		}
	}
	s.stripes++
	return nil
}

// FailDisk marks device d failed. Its contents become unreadable until
// RecoverDisk rebuilds them.
func (s *Store) FailDisk(d int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.devices[d].failed = true
	s.epoch.Add(1)
}

// FailDiskWithinTolerance marks device d failed only if the total failure
// count stays within the scheme's fault tolerance, and reports whether it
// did. The check and the mark are one atomic step, so concurrent callers can
// never push the array past tolerance.
func (s *Store) FailDiskWithinTolerance(d int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	failed := 0
	for _, dev := range s.devices {
		if dev.failed {
			failed++
		}
	}
	if s.devices[d].failed {
		return true
	}
	if failed >= s.scheme.FaultTolerance() {
		return false
	}
	s.devices[d].failed = true
	s.epoch.Add(1)
	return true
}

// FailedDisks returns the currently failed device IDs, ascending.
func (s *Store) FailedDisks() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.failedDisksLocked()
}

func (s *Store) failedDisksLocked() []int {
	var out []int
	for _, d := range s.devices {
		if d.failed {
			out = append(out, d.id)
		}
	}
	return out
}

// ReadResult carries a read's payload alongside the plan that produced it,
// so callers can feed the plan's loads into a timing model.
type ReadResult struct {
	Data []byte
	Plan *core.Plan
	// Healed counts cells whose checksum failed during this read and that
	// were rebuilt from their group and rewritten in place.
	Healed int
}

// ReadAt reads length bytes starting at byte offset off. With no failed
// devices this is a normal read; with failures the planner fetches recovery
// sets and the store decodes the lost elements. Bytes must lie within
// sealed stripes (append full stripes or Flush first).
//
// Concurrent ReadAt calls share the store lock and proceed in parallel. The
// one exception is a read that trips over silent corruption: healing
// rewrites the cell, so the read retries under the exclusive lock.
func (s *Store) ReadAt(off int64, length int) (*ReadResult, error) {
	s.mu.RLock()
	res, err := s.readAt(off, length, false)
	s.mu.RUnlock()
	if !errors.Is(err, errNeedsHeal) {
		return res, err
	}
	// Corruption found: retry exclusively so healCell may rewrite devices.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readAt(off, length, true)
}

// readAt executes one read under whichever lock the caller holds. With
// heal=false a corrupt cell aborts with errNeedsHeal (the caller escalates
// to the exclusive lock); with heal=true (exclusive lock held) corrupt cells
// are rebuilt and rewritten in place.
func (s *Store) readAt(off int64, length int, heal bool) (*ReadResult, error) {
	if off < 0 || length < 0 {
		return nil, fmt.Errorf("%w: off=%d length=%d", ErrRange, off, length)
	}
	sealed := int64(s.stripes) * int64(s.stripeBytes())
	if off+int64(length) > sealed {
		return nil, fmt.Errorf("%w: [%d,%d) beyond sealed extent %d", ErrRange, off, off+int64(length), sealed)
	}
	if length == 0 {
		return &ReadResult{Data: []byte{}, Plan: &core.Plan{}}, nil
	}
	startElem := int(off / int64(s.elemSize))
	endElem := int((off + int64(length) - 1) / int64(s.elemSize))
	count := endElem - startElem + 1

	failed := s.failedDisksLocked()
	var plan *core.Plan
	var err error
	if len(failed) == 0 {
		plan, err = s.scheme.PlanNormalRead(startElem, count)
	} else {
		plan, err = s.scheme.PlanDegradedRead(startElem, count, failed)
	}
	if err != nil {
		return nil, err
	}

	// Execute the plan: fetch each planned cell into per-stripe buffers.
	// Checksum failures are healed on the fly from the cell's group.
	fetched := make(map[int][][]byte) // stripe → cells
	healed := 0
	for _, a := range plan.Reads {
		cells, ok := fetched[a.Stripe]
		if !ok {
			cells = make([][]byte, s.scheme.CellsPerStripe())
			fetched[a.Stripe] = cells
		}
		data, err := s.devices[a.Disk].read(cellKey{a.Stripe, a.Pos})
		if errors.Is(err, ErrCorrupt) {
			if !heal {
				return nil, errNeedsHeal
			}
			data, err = s.healCell(a.Stripe, a.Pos)
			if err != nil {
				return nil, err
			}
			healed++
		}
		if err != nil {
			return nil, err
		}
		cells[a.Pos.Row*s.scheme.N()+a.Pos.Col] = data
	}

	// Assemble the requested elements, decoding lost ones on the fly.
	dps := s.scheme.DataPerStripe()
	out := make([]byte, 0, count*s.elemSize)
	for x := startElem; x <= endElem; x++ {
		stripe, e := x/dps, x%dps
		cells, ok := fetched[stripe]
		if !ok {
			return nil, fmt.Errorf("store: plan missed stripe %d", stripe)
		}
		shard, err := s.scheme.RebuildData(cells, e)
		if err != nil {
			return nil, err
		}
		out = append(out, shard...)
	}
	skip := int(off - int64(startElem)*int64(s.elemSize))
	return &ReadResult{Data: out[skip : skip+length], Plan: plan, Healed: healed}, nil
}

// healCell rebuilds a corrupt (checksum-failing) cell from the surviving
// cells of its code group, rewrites it to its device, and returns the clean
// bytes. The corrupt cell and any failed disks count as erasures. Caller
// holds mu exclusively.
func (s *Store) healCell(stripe int, pos layout.Pos) ([]byte, error) {
	lay := s.scheme.Layout()
	target := lay.CellAt(pos)
	group := make([][]byte, s.scheme.Code().N())
	for t := 0; t < s.scheme.Code().N(); t++ {
		p := lay.GroupCell(target.Group, t)
		if p == pos {
			continue // the corrupt cell itself
		}
		disk := lay.Disk(stripe, p.Col)
		data, err := s.devices[disk].read(cellKey{stripe, p})
		if err != nil {
			// Failed disk, or a second corrupt cell: leave as erasure and
			// let the decoder decide recoverability.
			continue
		}
		group[t] = data
	}
	if err := s.scheme.Code().ReconstructElements(group, []int{target.Element}); err != nil {
		return nil, fmt.Errorf("%w: cannot heal stripe %d cell (%d,%d): %v",
			ErrCorrupt, stripe, pos.Row, pos.Col, err)
	}
	clean := group[target.Element]
	s.devices[lay.Disk(stripe, pos.Col)].write(cellKey{stripe, pos}, clean)
	s.epoch.Add(1)
	return clean, nil
}

// WriteAt overwrites length-len(data) bytes at offset off within the sealed
// extent, using the read-modify-write small-write path: for each touched
// element, the old cell is read, the delta folded into the group's parity
// cells, and only those cells rewritten. Writes must be element-aligned and
// a whole number of elements (partial-element updates would need a
// read-merge step the paper's append-only model never exercises). All disks
// must be healthy.
func (s *Store) WriteAt(off int64, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if off < 0 || off%int64(s.elemSize) != 0 || len(data)%s.elemSize != 0 {
		return fmt.Errorf("%w: write [%d,+%d) not element-aligned (element %d)",
			ErrRange, off, len(data), s.elemSize)
	}
	sealed := int64(s.stripes) * int64(s.stripeBytes())
	if off+int64(len(data)) > sealed {
		return fmt.Errorf("%w: write [%d,+%d) beyond sealed extent %d", ErrRange, off, len(data), sealed)
	}
	if failed := s.failedDisksLocked(); len(failed) > 0 {
		return fmt.Errorf("%w: cannot update with failed disks %v (recover first)", ErrFailed, failed)
	}
	lay := s.scheme.Layout()
	n := s.scheme.N()
	dps := s.scheme.DataPerStripe()
	count := len(data) / s.elemSize
	startElem := int(off / int64(s.elemSize))
	// Group touched elements by stripe and apply per-stripe updates.
	for i := 0; i < count; i++ {
		x := startElem + i
		stripe, e := x/dps, x%dps
		// Materialize the element's cell and its group's parity cells.
		cells := make([][]byte, s.scheme.CellsPerStripe())
		pos := lay.DataPos(e)
		cell := lay.CellAt(pos)
		load := func(p layout.Pos) error {
			disk := lay.Disk(stripe, p.Col)
			data, err := s.devices[disk].read(cellKey{stripe, p})
			if err != nil {
				return err
			}
			// Copy: UpdateData mutates parity in place and we re-write it.
			cells[p.Row*n+p.Col] = append([]byte(nil), data...)
			return nil
		}
		if err := load(pos); err != nil {
			return err
		}
		for t := s.scheme.Code().K(); t < s.scheme.Code().N(); t++ {
			if err := load(lay.GroupCell(cell.Group, t)); err != nil {
				return err
			}
		}
		touched, err := s.scheme.UpdateData(cells, e, data[i*s.elemSize:(i+1)*s.elemSize])
		if err != nil {
			return err
		}
		for _, idx := range touched {
			p := layout.Pos{Row: idx / n, Col: idx % n}
			s.devices[lay.Disk(stripe, p.Col)].write(cellKey{stripe, p}, cells[idx])
		}
	}
	s.epoch.Add(1)
	return nil
}

// RecoverDisk rebuilds every element of failed device d from the survivors
// onto a fresh replacement, clears the failure flag, and returns the number
// of distinct elements read from other devices during the repair.
//
// Recovery is I/O-minimal per group: each lost cell is rebuilt from the
// candidate code's cheapest usable recovery set (LRC's local groups make
// this k/l reads per data element instead of k), with reads shared across
// the lost cells of a stripe. If no minimal set survives (multiple failures
// or corruption), the group falls back to reading every surviving element.
func (s *Store) RecoverDisk(d int) (readCost int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	dev := s.devices[d]
	if !dev.failed {
		return 0, fmt.Errorf("store: device %d is not failed", d)
	}
	failedSet := make(map[int]bool)
	for _, f := range s.failedDisksLocked() {
		failedSet[f] = true
	}
	lay := s.scheme.Layout()
	code := s.scheme.Code()
	replacement := newDevice(d)

	for stripe := 0; stripe < s.stripes; stripe++ {
		// Per-stripe read cache: an element fetched for one group's repair
		// is free for the next (same physical element).
		fetched := make(map[layout.Pos][]byte)
		fetch := func(pos layout.Pos) ([]byte, bool) {
			if data, ok := fetched[pos]; ok {
				return data, true
			}
			disk := lay.Disk(stripe, pos.Col)
			if failedSet[disk] {
				return nil, false
			}
			data, err := s.devices[disk].read(cellKey{stripe, pos})
			if err != nil {
				// Failed or silently corrupt: treat as erased.
				return nil, false
			}
			fetched[pos] = data
			readCost++
			return data, true
		}

		col := lay.Col(stripe, d)
		for row := 0; row < lay.Rows(); row++ {
			pos := layout.Pos{Row: row, Col: col}
			cell := lay.CellAt(pos)
			group := make([][]byte, code.N())
			ok := false
			// Try the cheapest surviving recovery set first.
			for _, set := range code.RecoverySets(cell.Element) {
				usable := true
				for _, t := range set {
					if _, have := fetch(lay.GroupCell(cell.Group, t)); !have {
						usable = false
						break
					}
				}
				if usable {
					for _, t := range set {
						group[t] = fetched[lay.GroupCell(cell.Group, t)]
					}
					ok = true
					break
				}
			}
			if !ok {
				// Fallback: every surviving element of the group.
				for t := 0; t < code.N(); t++ {
					if t == cell.Element {
						continue
					}
					if data, have := fetch(lay.GroupCell(cell.Group, t)); have {
						group[t] = data
					}
				}
			}
			if err := code.ReconstructElements(group, []int{cell.Element}); err != nil {
				return readCost, fmt.Errorf("store: rebuild stripe %d cell (%d,%d): %w",
					stripe, pos.Row, pos.Col, err)
			}
			replacement.write(cellKey{stripe, pos}, group[cell.Element])
		}
	}
	s.devices[d] = replacement
	s.epoch.Add(1)
	return readCost, nil
}

// Scrub verifies parity consistency of every sealed stripe, returning the
// indices of corrupt stripes (nil if all clean). It reads every cell.
func (s *Store) Scrub() ([]int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lay := s.scheme.Layout()
	n := s.scheme.N()
	var bad []int
	for stripe := 0; stripe < s.stripes; stripe++ {
		cells := make([][]byte, s.scheme.CellsPerStripe())
		corrupt := false
		for row := 0; row < lay.Rows() && !corrupt; row++ {
			for col := 0; col < n; col++ {
				data, err := s.devices[lay.Disk(stripe, col)].read(cellKey{stripe, layout.Pos{Row: row, Col: col}})
				if errors.Is(err, ErrCorrupt) {
					corrupt = true
					break
				}
				if err != nil {
					return nil, err
				}
				cells[row*n+col] = data
			}
		}
		if corrupt {
			bad = append(bad, stripe)
			continue
		}
		ok, err := s.scheme.VerifyStripe(cells)
		if err != nil {
			return nil, err
		}
		if !ok {
			bad = append(bad, stripe)
		}
	}
	return bad, nil
}

// CorruptCell overwrites one stored cell with garbage — a test hook for
// scrub and failure-injection scenarios.
func (s *Store) CorruptCell(stripe int, pos layout.Pos) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	disk := s.scheme.Layout().Disk(stripe, pos.Col)
	k := cellKey{stripe, pos}
	dev := s.devices[disk]
	cell, ok := dev.cells[k]
	if !ok {
		return fmt.Errorf("store: no cell %v on device %d", k, disk)
	}
	for i := range cell {
		cell[i] ^= 0xa5
	}
	s.epoch.Add(1)
	return nil
}
