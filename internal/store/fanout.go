// Fan-out read executor: the parallel counterpart of the sequential readAt.
//
// The sequential executor walks a plan one cell at a time, so a read's
// wall-clock latency is the *sum* of per-device service times and the
// layout's load-balancing win (PAPER.md §III, Lemma 1) never reaches the
// client. This executor regroups the plan by device, coalesces cells at
// adjacent on-disk offsets into single runs (one positioning cost instead of
// one per element — the fault injector charges per run, exactly like a real
// disk charges per seek), and issues the per-device queues concurrently
// through a bounded worker pool, so latency approaches the *max* of
// per-device times.
//
// Determinism with the seeded fault injector is preserved by construction:
// every device's runs execute in ascending offset order on exactly one
// worker, a pass always drains (devices that turn out unavailable are
// collected, never raced against with cancellation), and the hedging and
// load-bias features below are either opt-in or quiescent when the store is
// idle, so single-threaded replays draw identical per-device fault streams.
//
// Two tail-latency features ride on top:
//
//   - Hedged reads (opt-in): each run's primary executes on a child
//     goroutine; if it has not finished after a delay derived from a live
//     latency quantile, the worker rebuilds the same cells from a
//     parity-equivalent recovery set on other devices and the first result
//     wins. The loser is cancelled through its context — injected stuck-op
//     sleeps are cancellable — and joined before the read returns.
//
//   - Load-aware degraded planning: when a degraded plan must choose among
//     survivor subsets, live per-device in-flight run counts are fed into
//     core.PlanDegradedReadBiased so the choice avoids momentarily busy
//     disks. With no concurrent load the bias is nil and plans are exactly
//     the unbiased planner's.
package store

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// HedgeConfig controls hedged (speculative duplicate) reads on the fan-out
// path. The zero value disables hedging.
type HedgeConfig struct {
	// Enabled turns hedging on.
	Enabled bool
	// Quantile of recent run latencies after which a straggling run is
	// hedged. Defaults to 0.9; values outside (0,1) use the default.
	Quantile float64
	// Min and Max clamp the derived hedge delay. Min defaults to 1ms; Max
	// defaults to the store's per-op timeout. Until enough latency samples
	// accumulate the delay is Max.
	Min time.Duration
	Max time.Duration
}

// ReadOptions selects the execution strategy for one read.
type ReadOptions struct {
	// Sequential selects the original one-cell-at-a-time executor instead of
	// the fan-out one. The two return byte-identical results.
	Sequential bool
	// Concurrency bounds how many devices are served at once by the fan-out
	// executor. Zero or negative means one worker per participating device.
	Concurrency int
	// Hedge configures speculative re-reads of straggling runs.
	Hedge HedgeConfig
}

// SetReadOptions installs the default options ReadAt uses. The zero value
// (fan-out, per-device concurrency, no hedging) is the initial default.
func (s *Store) SetReadOptions(o ReadOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.readOpts = o
}

// ReadDefaults returns the options installed with SetReadOptions.
func (s *Store) ReadDefaults() ReadOptions {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.readOpts
}

// ReadAtCtx is ReadAt with an explicit context and per-call options. The
// context cancels device waits (including injected stuck-op sleeps) on the
// fan-out path.
func (s *Store) ReadAtCtx(ctx context.Context, off int64, length int, opts ReadOptions) (*ReadResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	s.mu.RLock()
	var res *ReadResult
	var err error
	if opts.Sequential {
		res, err = s.readAt(ctx, off, length, false)
	} else {
		res, err = s.fanoutRead(ctx, off, length, opts)
	}
	s.mu.RUnlock()
	if !errors.Is(err, errNeedsHeal) {
		return res, err
	}
	if s.testBeforeHeal != nil {
		s.testBeforeHeal()
	}
	// Corruption found: retry sequentially under the exclusive lock so
	// healCell may rewrite devices. Healing never runs on worker goroutines.
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readAt(ctx, off, length, true)
}

// checkReadRange validates [off, off+length) against the sealed extent and
// returns the covered element range.
func (s *Store) checkReadRange(off int64, length int) (startElem, count int, err error) {
	if off < 0 || length < 0 {
		return 0, 0, fmt.Errorf("%w: off=%d length=%d", ErrRange, off, length)
	}
	sealed := int64(s.stripes) * int64(s.stripeBytes())
	if off+int64(length) > sealed {
		return 0, 0, fmt.Errorf("%w: [%d,%d) beyond sealed extent %d", ErrRange, off, off+int64(length), sealed)
	}
	if length == 0 {
		return 0, 0, nil
	}
	startElem = int(off / int64(s.elemSize))
	endElem := int((off + int64(length) - 1) / int64(s.elemSize))
	return startElem, endElem - startElem + 1, nil
}

// stripeCells is one stripe's fetched cell set plus the indices of cells
// whose buffers this read owns (decoded shards drawn from the arena, or
// hedge results). Device-read cells alias live device storage and are never
// recycled. The containers themselves are pooled per store.
type stripeCells struct {
	cells [][]byte
	owned []int
}

// getStripeCells draws a cleared container from the store's pool.
func (s *Store) getStripeCells() *stripeCells {
	if v := s.cellsPool.Get(); v != nil {
		return v.(*stripeCells)
	}
	return &stripeCells{cells: make([][]byte, s.scheme.CellsPerStripe())}
}

// putStripeCells recycles sc: every owned buffer goes back to the shard
// arena exactly once (slots are nilled as they are put, so a double-listed
// index cannot double-free), then the container returns to the pool.
func (s *Store) putStripeCells(sc *stripeCells) {
	for _, idx := range sc.owned {
		if sc.cells[idx] != nil {
			s.bufs.PutShard(sc.cells[idx])
			sc.cells[idx] = nil
		}
	}
	sc.owned = sc.owned[:0]
	clear(sc.cells)
	s.cellsPool.Put(sc)
}

// runSlot is one cell of a coalesced run.
type runSlot struct {
	stripe int
	idx    int // row*n+col within the stripe's cell slice
	key    cellKey
	off    int // modeled on-disk element offset: stripe*rows + row
}

// devRun is a maximal set of same-device cells at consecutive on-disk
// offsets, served as one device operation.
type devRun struct {
	dev   int
	slots []runSlot
}

// buildRuns groups the plan's reads by device and coalesces each device's
// cells into offset-ordered runs. Runs cross stripe boundaries: with the
// standard layout (one row per stripe) a multi-stripe read of one device
// collapses into a single run, exactly like one large sequential ReadAt.
//
// The construction is allocation-frugal (it sits on every read): slots are
// counting-sorted by device into one flat array, runs subslice that array,
// and the per-device offset sort is an in-place insertion sort (per-device
// slot counts are tiny — count/n — and nearly sorted already).
func buildRuns(scheme *core.Scheme, reads []core.Access) []devQueue {
	lay := scheme.Layout()
	n := scheme.N()
	rows := lay.Rows()
	counts := make([]int, n+1)
	for _, a := range reads {
		counts[a.Disk+1]++
	}
	for d := 0; d < n; d++ {
		counts[d+1] += counts[d] // counts[d] = start of device d's bucket
	}
	starts := make([]int, n)
	copy(starts, counts[:n])
	next := make([]int, n)
	copy(next, starts)
	slots := make([]runSlot, len(reads))
	for _, a := range reads {
		slots[next[a.Disk]] = runSlot{
			stripe: a.Stripe,
			idx:    a.Pos.Row*n + a.Pos.Col,
			key:    cellKey{a.Stripe, a.Pos},
			off:    a.Stripe*rows + a.Pos.Row,
		}
		next[a.Disk]++
	}
	devsUsed, totalRuns := 0, 0
	for d := 0; d < n; d++ {
		sub := slots[starts[d]:next[d]]
		if len(sub) == 0 {
			continue
		}
		devsUsed++
		for i := 1; i < len(sub); i++ { // insertion sort by offset
			for j := i; j > 0 && sub[j].off < sub[j-1].off; j-- {
				sub[j], sub[j-1] = sub[j-1], sub[j]
			}
		}
		for i := range sub {
			if i == 0 || sub[i].off != sub[i-1].off+1 {
				totalRuns++
			}
		}
	}
	runsBacking := make([]devRun, 0, totalRuns)
	queues := make([]devQueue, 0, devsUsed)
	for d := 0; d < n; d++ {
		sub := slots[starts[d]:next[d]]
		if len(sub) == 0 {
			continue
		}
		first := len(runsBacking)
		runStart := 0
		for i := 1; i <= len(sub); i++ {
			if i == len(sub) || sub[i].off != sub[i-1].off+1 {
				runsBacking = append(runsBacking, devRun{dev: d, slots: sub[runStart:i]})
				runStart = i
			}
		}
		queues = append(queues, devQueue{dev: d, runs: runsBacking[first:len(runsBacking):len(runsBacking)]})
	}
	return queues
}

// devQueue is one device's runs, served in offset order by one worker.
type devQueue struct {
	dev  int
	runs []devRun
}

// inflightBias snapshots live per-device in-flight run counts for the
// load-aware planner. It returns nil when every device is idle, so
// single-threaded callers always get the unbiased (deterministic) planner.
// When SetDeviceNodes has mapped devices onto placement nodes, counts are
// aggregated per node: in the networked regime queueing happens at the node,
// so every disk a busy node serves inherits its whole depth.
func (s *Store) inflightBias() []int {
	var bias []int
	for i, d := range s.devices {
		if v := int(d.inflight.Load()); v > 0 {
			if bias == nil {
				bias = make([]int, len(s.devices))
			}
			bias[i] = v
		}
	}
	if bias != nil && s.nodeOf != nil {
		nodeSum := make(map[int]int)
		for i, v := range bias {
			nodeSum[s.nodeOf[i]] += v
		}
		for i := range bias {
			bias[i] = nodeSum[s.nodeOf[i]]
		}
	}
	return bias
}

// fanoutRead executes one read through the fan-out executor. Caller holds
// mu shared; every goroutine spawned here is joined before return, so no
// device access escapes the lock.
func (s *Store) fanoutRead(ctx context.Context, off int64, length int, opts ReadOptions) (*ReadResult, error) {
	startElem, count, err := s.checkReadRange(off, length)
	if err != nil {
		return nil, err
	}
	if length == 0 {
		return &ReadResult{Data: []byte{}, Plan: &core.Plan{}}, nil
	}
	dps := s.scheme.DataPerStripe()
	endElem := startElem + count - 1
	startStripe := startElem / dps
	fetched := make([]*stripeCells, endElem/dps-startStripe+1)
	release := func() {
		for i, sc := range fetched {
			if sc != nil {
				s.putStripeCells(sc)
				fetched[i] = nil
			}
		}
	}

	unavail := make(map[int]bool)
	for {
		failed := s.failedDisksLocked()
		for d := range unavail {
			failed = append(failed, d)
		}
		sort.Ints(failed)
		failed = dedupInts(failed)

		var plan *core.Plan
		if len(failed) == 0 {
			plan, err = s.scheme.PlanNormalRead(startElem, count)
		} else {
			plan, err = s.scheme.PlanDegradedReadBiased(startElem, count, failed, core.PolicyMinCost, s.inflightBias())
		}
		if err != nil {
			release()
			if len(unavail) > 0 {
				return nil, fmt.Errorf("%w: degraded fallback exhausted (unavailable %v): %w",
					ErrUnavailable, keysSorted(unavail), err)
			}
			return nil, err
		}

		for i := range fetched {
			if fetched[i] == nil {
				fetched[i] = s.getStripeCells()
			}
		}

		p := &fanoutPass{
			s:           s,
			ctx:         ctx,
			startStripe: startStripe,
			fetched:     fetched,
			newUnavail:  make(map[int]bool),
			errs:        make(map[int]error),
		}
		if opts.Hedge.Enabled {
			p.hedge = true
			p.hedgeDelay = s.hedgeDelay(opts.Hedge)
		}
		// Small plans run the same coalesced pass inline: below the
		// threshold, goroutine dispatch costs more than the per-device
		// overlap could save. An explicit Concurrency or hedging opts into
		// threads regardless.
		conc := opts.Concurrency
		if conc <= 0 {
			if !opts.Hedge.Enabled && len(plan.Reads)*s.elemSize < fanoutInlineBytes {
				conc = 1
			} else {
				conc = len(plan.Reads)
			}
		}
		p.runQueues(buildRuns(s.scheme, plan.Reads), conc)

		switch {
		case len(p.newUnavail) > 0:
			// Drain-then-replan: every newly unavailable device joins the
			// avoid set and the whole pass's buffers are recycled exactly
			// once before the retry (no buffer is carried across plans — a
			// new plan may fill the same slots from different sources).
			for d := range p.newUnavail {
				unavail[d] = true
			}
			s.obs.replan()
			for i, sc := range fetched {
				if sc != nil {
					s.putStripeCells(sc)
					fetched[i] = nil
				}
			}
			continue
		case p.corrupt:
			// Persistent corruption needs the exclusive lock to heal.
			release()
			return nil, errNeedsHeal
		case len(p.errs) > 0:
			release()
			return nil, p.firstErr()
		}
		if err := ctx.Err(); err != nil {
			release()
			return nil, err
		}

		data, err := s.assemble(fetched, startStripe, startElem, endElem, off, length)
		release()
		if err != nil {
			return nil, err
		}
		s.obs.observeRead(len(failed) > 0, plan.MaxLoad())
		return &ReadResult{Data: data, Plan: plan}, nil
	}
}

// assemble decodes the requested elements out of the fetched cells into a
// fresh exactly-sized buffer. Shards decoded here (lost elements) draw their
// buffers from the arena and are registered as owned, so the caller's
// release recycles them.
func (s *Store) assemble(fetched []*stripeCells, startStripe, startElem, endElem int, off int64, length int) ([]byte, error) {
	dps := s.scheme.DataPerStripe()
	data := make([]byte, length)
	written := 0
	for x := startElem; x <= endElem; x++ {
		stripe, e := x/dps, x%dps
		sc := fetched[stripe-startStripe]
		if sc == nil {
			return nil, fmt.Errorf("store: plan missed stripe %d", stripe)
		}
		idx := s.scheme.Layout().DataPos(e)
		cellIdx := idx.Row*s.scheme.N() + idx.Col
		wasNil := sc.cells[cellIdx] == nil
		shard, err := s.scheme.RebuildDataInto(&s.bufs, sc.cells, e)
		if err != nil {
			return nil, err
		}
		if wasNil {
			sc.owned = append(sc.owned, cellIdx)
		}
		lo := 0
		if x == startElem {
			lo = int(off - int64(startElem)*int64(s.elemSize))
		}
		hi := s.elemSize
		if rem := length - written; hi-lo > rem {
			hi = lo + rem
		}
		written += copy(data[written:], shard[lo:hi])
	}
	return data, nil
}

// fanoutPass is the shared state of one drain-to-completion execution pass.
type fanoutPass struct {
	s           *Store
	ctx         context.Context
	startStripe int
	fetched     []*stripeCells
	hedge       bool
	hedgeDelay  time.Duration

	mu         sync.Mutex
	newUnavail map[int]bool
	corrupt    bool
	errs       map[int]error // first internal error per device
	stragglers sync.WaitGroup
}

// firstErr returns the recorded error of the lowest-numbered device, so the
// surfaced error is independent of goroutine scheduling.
func (p *fanoutPass) firstErr() error {
	best := -1
	for d := range p.errs {
		if best < 0 || d < best {
			best = d
		}
	}
	if best < 0 {
		return nil
	}
	return p.errs[best]
}

func (p *fanoutPass) fail(dev int, err error) {
	p.mu.Lock()
	if _, ok := p.errs[dev]; !ok {
		p.errs[dev] = err
	}
	p.mu.Unlock()
}

// fanoutInlineBytes is the planned-read size below which the executor skips
// worker goroutines and serves the queues inline: on tiny reads the dispatch
// cost exceeds anything per-device overlap could recover. Explicit
// Concurrency or hedging overrides the heuristic.
const fanoutInlineBytes = 64 << 10

// runQueues serves every device queue through at most conc workers and
// joins them all (including hedged stragglers) before returning. With conc 1
// the queues are served inline on the calling goroutine — same coalescing,
// same device order, zero dispatch overhead. With more, queues are sharded
// round-robin across conc workers (the caller is worker 0), so each device
// still lands on exactly one goroutine and its runs stay offset-ordered.
func (p *fanoutPass) runQueues(queues []devQueue, conc int) {
	if len(queues) == 0 {
		return
	}
	if conc <= 0 || conc > len(queues) {
		conc = len(queues)
	}
	if conc > 1 {
		var wg sync.WaitGroup
		for w := 1; w < conc; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(queues); i += conc {
					p.serveDevice(queues[i])
				}
			}(w)
		}
		for i := 0; i < len(queues); i += conc {
			p.serveDevice(queues[i])
		}
		wg.Wait()
	} else {
		for _, q := range queues {
			p.serveDevice(q)
		}
	}
	p.stragglers.Wait()
}

// serveDevice executes one device's runs sequentially in offset order. A
// device that proves unavailable has its remaining runs skipped — the
// replan routes around the whole device anyway — while other devices keep
// draining (no cross-device cancellation, which keeps per-device fault
// streams deterministic).
func (p *fanoutPass) serveDevice(q devQueue) {
	for _, run := range q.runs {
		if err := p.ctx.Err(); err != nil {
			p.fail(q.dev, err)
			return
		}
		var err error
		if p.hedge {
			err = p.execHedged(run)
		} else {
			err = p.execRun(p.ctx, run, nil)
		}
		if err == nil {
			continue
		}
		switch {
		case errors.Is(err, ErrUnavailable) || errors.Is(err, ErrFailed):
			p.mu.Lock()
			p.newUnavail[q.dev] = true
			p.mu.Unlock()
			return
		case errors.Is(err, ErrCorrupt):
			p.mu.Lock()
			p.corrupt = true
			p.mu.Unlock()
		default:
			p.fail(q.dev, err)
		}
	}
}

// execRun performs one coalesced device operation: a single fault decision
// covers the whole run (one large sequential I/O pays one positioning cost),
// then every cell is read with per-element accounting. With staged non-nil
// the results go there (hedged primaries stage privately and commit under
// the pass lock); otherwise they land directly in the pass's fetched slots,
// which is safe because distinct devices own distinct slots.
func (p *fanoutPass) execRun(ctx context.Context, run devRun, staged [][]byte) error {
	s := p.s
	d := s.devices[run.dev]
	d.inflight.Add(1)
	d.obsInflight.Add(1)
	defer func() {
		d.inflight.Add(-1)
		d.obsInflight.Add(-1)
	}()
	s.obs.observeRun(len(run.slots) * s.elemSize)
	start := time.Now()
	var last error
	for attempt := 0; attempt <= s.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		var f Fault
		if s.inject != nil {
			f = s.inject.ReadFault(run.dev)
		}
		if f.Failed {
			d.noteError()
			return fmt.Errorf("%w: device %d fail-stopped by fault plan", ErrFailed, run.dev)
		}
		if f.Stuck || f.Delay > s.opTimeout {
			if err := sleepCtx(ctx, s.opTimeout); err != nil {
				return err
			}
			last = fmt.Errorf("%w: device %d read timed out after %v", ErrUnavailable, run.dev, s.opTimeout)
			s.obs.retry(false)
			d.observeLatency(s.opTimeout)
			continue
		}
		if f.Delay > 0 {
			if err := sleepCtx(ctx, f.Delay); err != nil {
				return err
			}
		}
		if f.Err != nil {
			last = fmt.Errorf("%w: device %d: %v", ErrUnavailable, run.dev, f.Err)
			s.obs.retry(false)
			continue
		}
		var readErr error
		if _, bulk := d.be.(runIO); bulk && len(run.slots) > 1 {
			// Bulk backend (file-backed device): the whole coalesced run is
			// one positioned pread through the submission queue — the modeled
			// one-positioning-cost-per-run now literally holds on disk.
			cells, err := d.readRun(run.slots[0].key, len(run.slots))
			if err != nil {
				readErr = err
			} else {
				for i, sl := range run.slots {
					if staged != nil {
						staged[i] = cells[i]
					} else {
						p.fetched[sl.stripe-p.startStripe].cells[sl.idx] = cells[i]
					}
				}
			}
		} else {
			for i, sl := range run.slots {
				data, err := d.read(sl.key)
				if err != nil {
					readErr = err
					break
				}
				if staged != nil {
					staged[i] = data
				} else {
					p.fetched[sl.stripe-p.startStripe].cells[sl.idx] = data
				}
			}
		}
		if readErr != nil {
			// A backend I/O error (not an injected fault) is a hard signal
			// for the failure detector; corruption and fail-stop marks are
			// accounted elsewhere.
			if errors.Is(readErr, ErrUnavailable) {
				d.noteError()
			}
			return readErr
		}
		if f.Corrupt {
			last = fmt.Errorf("%w: device %d returned bytes failing checksum", ErrUnavailable, run.dev)
			s.obs.retry(false)
			continue
		}
		elapsed := time.Since(start)
		s.hedgeLat.observe(elapsed)
		d.observeLatency(elapsed)
		return nil
	}
	if last != nil {
		// Retry budget exhausted: the device is limping hard enough to count.
		d.noteError()
	}
	return last
}

// commit publishes a completed run's cell buffers into the fetched slots.
// owned marks arena/decoded buffers (hedge results) for recycling.
func (p *fanoutPass) commit(run devRun, vals [][]byte, owned bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, sl := range run.slots {
		sc := p.fetched[sl.stripe-p.startStripe]
		sc.cells[sl.idx] = vals[i]
		if owned {
			sc.owned = append(sc.owned, sl.idx)
		}
	}
}

// execHedged races a run's primary against a parity-equivalent rebuild. The
// primary runs on a child goroutine staging into a private buffer; if it has
// not finished after the hedge delay, the worker rebuilds the same cells
// from other devices and the first to commit (atomic winner election) wins.
// The loser's context is cancelled — injected delays and stuck-op waits are
// cancellable sleeps — and joined via the pass's straggler group.
func (p *fanoutPass) execHedged(run devRun) error {
	s := p.s
	runCtx, cancel := context.WithCancel(p.ctx)
	defer cancel()
	// The hedge gets its own child context so a finishing primary can abort
	// an in-flight rebuild: the worker runs hedgeFetch synchronously, and
	// without this cancel it would sit out the full rebuild (its device
	// reads include injected delays) even after the run is already served —
	// turning a latency hedge into a throughput tax whenever every device is
	// uniformly slow.
	hedgeCtx, hedgeCancel := context.WithCancel(runCtx)
	defer hedgeCancel()
	primStaged := make([][]byte, len(run.slots))
	var winner atomic.Int32 // 0 undecided, 1 primary, 2 hedge
	done := make(chan error, 1)
	p.stragglers.Add(1)
	go func() {
		defer p.stragglers.Done()
		err := p.execRun(runCtx, run, primStaged)
		if err == nil && winner.CompareAndSwap(0, 1) {
			p.commit(run, primStaged, false)
			hedgeCancel()
		}
		done <- err
	}()
	timer := time.NewTimer(p.hedgeDelay)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
	}
	s.obs.hedge("fired")
	hedged, herr := p.hedgeFetch(hedgeCtx, run)
	if herr == nil {
		if winner.CompareAndSwap(0, 2) {
			p.commit(run, hedged, true)
			s.obs.hedge("won")
			return nil
		}
		// The primary committed while we were decoding: drop our copy.
		for _, b := range hedged {
			s.bufs.PutShard(b)
		}
	}
	err := <-done
	if err == nil {
		s.obs.hedge("cancelled")
		return nil
	}
	return err
}

// hedgeFetch rebuilds every cell of a straggling run from a recovery set of
// its code group that avoids the straggler itself and every failed device.
// Returned buffers are arena-owned copies. On any failure it recycles what
// it built and reports the error; the caller falls back to the primary.
func (p *fanoutPass) hedgeFetch(ctx context.Context, run devRun) ([][]byte, error) {
	s := p.s
	lay := s.scheme.Layout()
	code := s.scheme.Code()
	out := make([][]byte, len(run.slots))
	fail := func(err error) ([][]byte, error) {
		for _, b := range out {
			if b != nil {
				s.bufs.PutShard(b)
			}
		}
		return nil, err
	}
	for i, sl := range run.slots {
		if err := ctx.Err(); err != nil {
			return fail(err)
		}
		cell := lay.CellAt(sl.key.pos)
		rebuilt := false
	sets:
		for _, set := range code.RecoverySets(cell.Element) {
			group := make([][]byte, code.N())
			for _, t := range set {
				pos := lay.GroupCell(cell.Group, t)
				disk := lay.Disk(sl.key.stripe, pos.Col)
				if disk == run.dev || s.devices[disk].failed {
					continue sets
				}
				data, err := s.readCellCtx(ctx, disk, cellKey{sl.key.stripe, pos})
				if err != nil {
					continue sets
				}
				group[t] = data
			}
			if err := code.ReconstructElements(group, []int{cell.Element}); err != nil {
				continue
			}
			buf := s.bufs.GetShard(s.elemSize)
			copy(buf, group[cell.Element])
			out[i] = buf
			rebuilt = true
			break
		}
		if !rebuilt {
			return fail(fmt.Errorf("store: hedge: no usable recovery set for stripe %d cell (%d,%d) avoiding device %d",
				sl.key.stripe, sl.key.pos.Row, sl.key.pos.Col, run.dev))
		}
	}
	return out, nil
}

// latencyRing is a small lock-guarded reservoir of recent run latencies
// backing the hedge-delay quantile.
type latencyRing struct {
	mu  sync.Mutex
	buf [128]int64
	n   int // saturates at len(buf)
	idx int
}

// hedgeMinSamples is how many latency samples must accumulate before the
// quantile is trusted; below it the hedge delay stays at its maximum.
const hedgeMinSamples = 8

func (r *latencyRing) observe(d time.Duration) {
	r.mu.Lock()
	r.buf[r.idx] = int64(d)
	r.idx = (r.idx + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// quantile returns the q-quantile of the recorded samples, or -1 while
// fewer than hedgeMinSamples have been observed.
func (r *latencyRing) quantile(q float64) time.Duration {
	r.mu.Lock()
	if r.n < hedgeMinSamples {
		r.mu.Unlock()
		return -1
	}
	tmp := make([]int64, r.n)
	copy(tmp, r.buf[:r.n])
	r.mu.Unlock()
	sort.Slice(tmp, func(i, j int) bool { return tmp[i] < tmp[j] })
	i := int(q * float64(len(tmp)))
	if i >= len(tmp) {
		i = len(tmp) - 1
	}
	return time.Duration(tmp[i])
}

// hedgeDelay derives the current hedge delay from cfg and the live latency
// reservoir.
func (s *Store) hedgeDelay(cfg HedgeConfig) time.Duration {
	q := cfg.Quantile
	if q <= 0 || q >= 1 {
		q = 0.9
	}
	min := cfg.Min
	if min <= 0 {
		min = time.Millisecond
	}
	max := cfg.Max
	if max <= 0 {
		max = s.opTimeout
	}
	if max < min {
		max = min
	}
	d := s.hedgeLat.quantile(q)
	if d < 0 || d > max {
		return max
	}
	if d < min {
		return min
	}
	return d
}

// sleepCtx sleeps for d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if ctx == nil || ctx.Done() == nil {
		time.Sleep(d)
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
