package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
	"repro/internal/trace"
)

func testStore(t testing.TB, form layout.Form) *Store {
	t.Helper()
	return MustNew(core.MustScheme(lrc.Must(6, 2, 2), form), 64)
}

func fill(t testing.TB, s *Store, nBytes int, seed int64) []byte {
	t.Helper()
	data := make([]byte, nBytes)
	rand.New(rand.NewSource(seed)).Read(data)
	if err := s.Append(data); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	return data
}

func TestNewValidation(t *testing.T) {
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	if _, err := New(sch, 0); err == nil {
		t.Fatal("zero element size must fail")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew did not panic")
		}
	}()
	MustNew(sch, -1)
}

func TestAppendSealsFullStripes(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	if err := s.Append(make([]byte, stripeBytes-1)); err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 0 {
		t.Fatal("partial stripe sealed early")
	}
	if err := s.Append(make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 1 {
		t.Fatalf("stripes = %d, want 1", s.Stripes())
	}
	if s.Len() != int64(stripeBytes) {
		t.Fatalf("Len = %d, want %d", s.Len(), stripeBytes)
	}
}

func TestFlushPadsPartial(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	if err := s.Append([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if s.Stripes() != 1 {
		t.Fatalf("stripes = %d, want 1", s.Stripes())
	}
	// Flushing again is a no-op.
	if err := s.Flush(); err != nil || s.Stripes() != 1 {
		t.Fatal("second flush misbehaved")
	}
	res, err := s.ReadAt(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Data) != "hello" {
		t.Fatalf("read %q", res.Data)
	}
}

func TestNormalReadRoundTrip(t *testing.T) {
	for _, form := range []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM} {
		s := testStore(t, form)
		data := fill(t, s, 5000, 60)
		rng := rand.New(rand.NewSource(61))
		for trial := 0; trial < 100; trial++ {
			off := rng.Intn(4500)
			ln := 1 + rng.Intn(500)
			res, err := s.ReadAt(int64(off), ln)
			if err != nil {
				t.Fatalf("%s: %v", form, err)
			}
			if !bytes.Equal(res.Data, data[off:off+ln]) {
				t.Fatalf("%s: payload mismatch at [%d,%d)", form, off, off+ln)
			}
			if res.Plan.Cost() != 1.0 {
				t.Fatalf("%s: normal read cost %v", form, res.Plan.Cost())
			}
		}
	}
}

func TestReadRangeErrors(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 1000, 62)
	sealed := int64(s.Stripes()) * int64(s.Scheme().DataPerStripe()*s.ElementSize())
	cases := []struct {
		off int64
		ln  int
	}{
		{-1, 10}, {0, -1}, {sealed, 1}, {sealed - 5, 10},
	}
	for _, c := range cases {
		if _, err := s.ReadAt(c.off, c.ln); !errors.Is(err, ErrRange) {
			t.Errorf("ReadAt(%d,%d) err = %v, want ErrRange", c.off, c.ln, err)
		}
	}
	// Zero-length read succeeds with empty payload.
	res, err := s.ReadAt(0, 0)
	if err != nil || len(res.Data) != 0 {
		t.Fatalf("zero-length read: %v, %d bytes", err, len(res.Data))
	}
}

func TestDegradedReadEveryDisk(t *testing.T) {
	for _, form := range []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM} {
		s := testStore(t, form)
		data := fill(t, s, 8000, 63)
		rng := rand.New(rand.NewSource(64))
		for d := 0; d < s.Scheme().N(); d++ {
			s.FailDisk(d)
			for trial := 0; trial < 20; trial++ {
				off := rng.Intn(7000)
				ln := 1 + rng.Intn(900)
				res, err := s.ReadAt(int64(off), ln)
				if err != nil {
					t.Fatalf("%s disk %d: %v", form, d, err)
				}
				if !bytes.Equal(res.Data, data[off:off+ln]) {
					t.Fatalf("%s disk %d: payload mismatch", form, d)
				}
				if res.Plan.Loads[d] != 0 {
					t.Fatalf("%s: degraded plan loaded failed disk %d", form, d)
				}
			}
			// Restore for the next iteration.
			if _, err := s.RecoverDisk(d); err != nil {
				t.Fatalf("%s: recover disk %d: %v", form, d, err)
			}
		}
	}
}

func TestPlannedLoadsMatchObservedIO(t *testing.T) {
	// Invariant 5 of DESIGN.md: the plan's per-disk loads must equal the
	// devices' observed read counters exactly.
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 6000, 65)
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 50; trial++ {
		var failed int = -1
		if trial%2 == 1 {
			failed = rng.Intn(s.Scheme().N())
			s.FailDisk(failed)
		}
		s.ResetCounters()
		off := rng.Intn(5000)
		ln := 1 + rng.Intn(800)
		res, err := s.ReadAt(int64(off), ln)
		if err != nil {
			t.Fatal(err)
		}
		for d := 0; d < s.Scheme().N(); d++ {
			if got, want := s.Device(d).Reads(), res.Plan.Loads[d]; got != want {
				t.Fatalf("trial %d disk %d: observed %d reads, planned %d", trial, d, got, want)
			}
		}
		if failed >= 0 {
			if _, err := s.RecoverDisk(failed); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestRecoverDiskRestoresContent(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 10000, 67)
	before := s.Device(3).Elements()
	s.FailDisk(3)
	cost, err := s.RecoverDisk(3)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("recovery read nothing")
	}
	if got := s.Device(3).Elements(); got != before {
		t.Fatalf("replacement has %d elements, want %d", got, before)
	}
	if s.Device(3).Failed() {
		t.Fatal("device still marked failed")
	}
	// All data must read back clean with zero failures.
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("data corrupted by recovery")
	}
	// And the parity must scrub clean.
	bad, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if bad != nil {
		t.Fatalf("scrub found corrupt stripes %v after recovery", bad)
	}
}

func TestRecoverDiskNotFailed(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 100, 68)
	if _, err := s.RecoverDisk(0); err == nil {
		t.Fatal("recovering healthy disk must fail")
	}
}

func TestMultiFailureWithinTolerance(t *testing.T) {
	s := testStore(t, layout.FormECFRM) // LRC(6,2,2): tolerance 3
	data := fill(t, s, 4000, 69)
	for _, d := range []int{1, 5, 8} {
		s.FailDisk(d)
	}
	res, err := s.ReadAt(100, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data[100:2100]) {
		t.Fatal("triple-failure degraded read wrong")
	}
	// Recover all three.
	for _, d := range []int{1, 5, 8} {
		if _, err := s.RecoverDisk(d); err != nil {
			t.Fatalf("recover %d: %v", d, err)
		}
	}
	if bad, _ := s.Scrub(); bad != nil {
		t.Fatalf("scrub found %v after triple recovery", bad)
	}
}

func TestBeyondToleranceReadFails(t *testing.T) {
	s := MustNew(core.MustScheme(rs.Must(6, 3), layout.FormECFRM), 64)
	fill(t, s, 4000, 70)
	for _, d := range []int{0, 1, 2, 3} {
		s.FailDisk(d)
	}
	if _, err := s.ReadAt(0, 4000); !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want core.ErrUnrecoverable", err)
	}
}

func TestScrubFindsCorruption(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 4000, 71)
	if bad, err := s.Scrub(); err != nil || bad != nil {
		t.Fatalf("clean store scrubbed dirty: %v %v", bad, err)
	}
	if err := s.CorruptCell(1, layout.Pos{Row: 0, Col: 2}); err != nil {
		t.Fatal(err)
	}
	bad, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("scrub = %v, want [1]", bad)
	}
}

func TestCorruptCellMissing(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 0}); err == nil {
		t.Fatal("corrupting unwritten cell must fail")
	}
}

func TestFailedDisksSorted(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	s.FailDisk(7)
	s.FailDisk(2)
	got := s.FailedDisks()
	if len(got) != 2 || got[0] != 2 || got[1] != 7 {
		t.Fatalf("FailedDisks = %v", got)
	}
}

func TestRotatedLayoutBalancesDevices(t *testing.T) {
	// With many stripes, rotation must distribute stored elements evenly
	// across devices (each device gets the same cell count).
	s := MustNew(core.MustScheme(rs.Must(6, 3), layout.FormRotated), 16)
	fill(t, s, 16*6*9*3, 72) // 27 stripes
	want := s.Device(0).Elements()
	for d := 1; d < 9; d++ {
		if got := s.Device(d).Elements(); got != want {
			t.Fatalf("device %d has %d elements, device 0 has %d", d, got, want)
		}
	}
}

func TestReadAtUnalignedBoundaries(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 3000, 73)
	// Single byte at an element boundary, spanning boundary, etc.
	for _, c := range [][2]int{{63, 1}, {64, 1}, {63, 2}, {0, 3000}, {2999, 1}, {100, 1000}} {
		res, err := s.ReadAt(int64(c[0]), c[1])
		if err != nil {
			t.Fatalf("ReadAt(%d,%d): %v", c[0], c[1], err)
		}
		if !bytes.Equal(res.Data, data[c[0]:c[0]+c[1]]) {
			t.Fatalf("ReadAt(%d,%d) mismatch", c[0], c[1])
		}
	}
}

func BenchmarkStoreNormalRead(b *testing.B) {
	s := MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 4096)
	data := make([]byte, 4096*30*4)
	rand.New(rand.NewSource(74)).Read(data)
	if err := s.Append(data); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadAt(int64(i%16)*4096, 8*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreDegradedRead(b *testing.B) {
	s := MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 4096)
	data := make([]byte, 4096*30*4)
	rand.New(rand.NewSource(75)).Read(data)
	if err := s.Append(data); err != nil {
		b.Fatal(err)
	}
	s.FailDisk(0)
	b.SetBytes(8 * 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ReadAt(int64(i%16)*4096, 8*4096); err != nil {
			b.Fatal(err)
		}
	}
}

func TestZipfTraceReplay(t *testing.T) {
	// Integration with internal/trace: a Zipf-skewed whole-object workload
	// replayed against the store, healthy and degraded, byte-verified.
	objs, err := trace.Catalog(25, 500, 3000, 90)
	if err != nil {
		t.Fatal(err)
	}
	s := testStore(t, layout.FormECFRM)
	payload := make([]byte, trace.TotalBytes(objs))
	rand.New(rand.NewSource(91)).Read(payload)
	if err := s.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	events, err := trace.Zipf(objs, 400, 1.3, 92)
	if err != nil {
		t.Fatal(err)
	}
	run := func() {
		for _, e := range events {
			res, err := s.ReadAt(e.Off, e.Size)
			if err != nil {
				t.Fatalf("object %d: %v", e.Object, err)
			}
			if !bytes.Equal(res.Data, payload[e.Off:e.Off+int64(e.Size)]) {
				t.Fatalf("object %d bytes wrong", e.Object)
			}
		}
	}
	run()
	s.FailDisk(6)
	run()
	if _, err := s.RecoverDisk(6); err != nil {
		t.Fatal(err)
	}
}

func TestWriteAtSmallWritePath(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 8000, 95)
	rng := rand.New(rand.NewSource(96))
	// Overwrite several aligned element runs and verify reads + scrub.
	for trial := 0; trial < 20; trial++ {
		elem := rng.Intn(100)
		count := 1 + rng.Intn(3)
		off := int64(elem * s.ElementSize())
		if off+int64(count*s.ElementSize()) > int64(len(data)) {
			continue
		}
		upd := make([]byte, count*s.ElementSize())
		rng.Read(upd)
		if err := s.WriteAt(off, upd); err != nil {
			t.Fatal(err)
		}
		copy(data[off:], upd)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("data wrong after in-place updates")
	}
	if bad, err := s.Scrub(); err != nil || bad != nil {
		t.Fatalf("scrub after updates: %v %v", bad, err)
	}
	// Degraded read still works after updates.
	s.FailDisk(4)
	res, err = s.ReadAt(100, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data[100:3100]) {
		t.Fatal("degraded read wrong after updates")
	}
}

func TestWriteAtValidation(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 4000, 97)
	es := s.ElementSize()
	if err := s.WriteAt(1, make([]byte, es)); !errors.Is(err, ErrRange) {
		t.Fatalf("unaligned offset: %v", err)
	}
	if err := s.WriteAt(0, make([]byte, es-1)); !errors.Is(err, ErrRange) {
		t.Fatalf("unaligned length: %v", err)
	}
	if err := s.WriteAt(1<<40, make([]byte, es)); !errors.Is(err, ErrRange) {
		t.Fatalf("beyond extent: %v", err)
	}
	s.FailDisk(0)
	if err := s.WriteAt(0, make([]byte, es)); !errors.Is(err, ErrFailed) {
		t.Fatalf("failed disk: %v", err)
	}
}

func TestSelfHealingRead(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 4000, 98)
	// Silently corrupt a data cell the next read will touch.
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 3}); err != nil {
		t.Fatal(err)
	}
	// Element 3 lives at stripe 0 cell (0,3); read it.
	res, err := s.ReadAt(int64(3*s.ElementSize()), s.ElementSize())
	if err != nil {
		t.Fatal(err)
	}
	if res.Healed != 1 {
		t.Fatalf("healed = %d, want 1", res.Healed)
	}
	if !bytes.Equal(res.Data, data[3*s.ElementSize():4*s.ElementSize()]) {
		t.Fatal("healed read returned wrong bytes")
	}
	// The cell is rewritten: scrub must be clean and a re-read heals nothing.
	if bad, err := s.Scrub(); err != nil || bad != nil {
		t.Fatalf("scrub after heal: %v %v", bad, err)
	}
	res, err = s.ReadAt(int64(3*s.ElementSize()), s.ElementSize())
	if err != nil || res.Healed != 0 {
		t.Fatalf("second read healed %d, err %v", res.Healed, err)
	}
}

func TestHealingUnderConcurrentFailure(t *testing.T) {
	// Corruption plus failed disks within tolerance: the heal must use the
	// surviving redundancy.
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 4000, 99)
	s.FailDisk(7)
	s.FailDisk(8)
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 2}); err != nil {
		t.Fatal(err)
	}
	res, err := s.ReadAt(0, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Healed == 0 {
		t.Fatal("no healing occurred")
	}
	if !bytes.Equal(res.Data, data[:2000]) {
		t.Fatal("payload wrong")
	}
}

func TestScrubReportsCorruptionViaChecksum(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 4000, 100)
	if err := s.CorruptCell(1, layout.Pos{Row: 4, Col: 9}); err != nil {
		t.Fatal(err) // a parity cell: only the checksum can finger it
	}
	bad, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 1 || bad[0] != 1 {
		t.Fatalf("scrub = %v, want [1]", bad)
	}
}

func TestRecoverDiskSkipsCorruptCells(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 4000, 101)
	if err := s.CorruptCell(0, layout.Pos{Row: 1, Col: 5}); err != nil {
		t.Fatal(err)
	}
	s.FailDisk(2)
	if _, err := s.RecoverDisk(2); err != nil {
		t.Fatalf("recovery blocked by unrelated corruption: %v", err)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("data wrong after recovery with corruption present")
	}
}

func TestStoreWithCRSScheme(t *testing.T) {
	// CRS requires element sizes divisible by its packet width (8); with an
	// aligned element size the whole store pipeline works unchanged —
	// including the XOR decode path on degraded reads.
	s := MustNew(core.MustScheme(crs.Must(6, 3), layout.FormECFRM), 64)
	data := fill(t, s, 6000, 110)
	s.FailDisk(4)
	res, err := s.ReadAt(100, 3000)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data[100:3100]) {
		t.Fatal("CRS degraded read wrong")
	}
	if _, err := s.RecoverDisk(4); err != nil {
		t.Fatal(err)
	}
	if bad, _ := s.Scrub(); bad != nil {
		t.Fatalf("CRS scrub found %v", bad)
	}
	// Small writes use CRS's bit-matrix delta path.
	upd := make([]byte, 2*64)
	rand.New(rand.NewSource(111)).Read(upd)
	if err := s.WriteAt(int64(5*64), upd); err != nil {
		t.Fatal(err)
	}
	copy(data[5*64:], upd)
	res, err = s.ReadAt(0, len(data))
	if err != nil || !bytes.Equal(res.Data, data) {
		t.Fatalf("CRS after WriteAt: err=%v match=%v", err, bytes.Equal(res.Data, data))
	}
}

// TestConcurrentReadersWithMutation exercises the shared-read locking under
// -race: many goroutines read (normal, degraded, and healing reads) while
// others inject failures, recover, and corrupt cells. Every successful read
// must return exactly the written bytes, whatever the interleaving.
func TestConcurrentReadersWithMutation(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 4*stripeBytes, 42)

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}

	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 60; i++ {
				off := rng.Intn(len(data) - 1)
				n := 1 + rng.Intn(len(data)-off)
				res, err := s.ReadAt(int64(off), n)
				if err != nil {
					if errors.Is(err, core.ErrUnrecoverable) || errors.Is(err, ErrCorrupt) {
						continue // transiently beyond tolerance mid-chaos
					}
					report(err)
					return
				}
				if !bytes.Equal(res.Data, data[off:off+n]) {
					report(fmt.Errorf("read [%d,+%d) returned wrong bytes", off, n))
					return
				}
			}
		}(int64(g))
	}

	// Mutators, each owning one kind of damage so their sum stays within
	// the scheme's tolerance: the failure mutator keeps at most
	// FaultTolerance()-1 disks down (leaving erasure headroom), and the
	// corruption mutator keeps at most one corrupt cell outstanding —
	// exercising heal-on-read, then guaranteeing the heal with HealStripe
	// before corrupting again. Tolerance-many failed disks PLUS an
	// unhealed corrupt cell in the same stripe group is genuine data loss,
	// not chaos, and incremental rebuilds hold disks in the failed state
	// long enough to make that collision reachable.
	tol := s.Scheme().FaultTolerance()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1000))
		for i := 0; i < 30; i++ {
			if rng.Intn(2) == 0 && len(s.FailedDisks()) < tol-1 {
				s.FailDiskWithinTolerance(rng.Intn(s.Scheme().N()))
			} else {
				for _, d := range s.FailedDisks() {
					s.RecoverDisk(d)
				}
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(1001))
		lay := s.Scheme().Layout()
		for i := 0; i < 30; i++ {
			stripe := rng.Intn(s.Stripes())
			pos := layout.Pos{Row: rng.Intn(lay.Rows()), Col: rng.Intn(lay.N())}
			if err := s.CorruptCell(stripe, pos); err != nil {
				continue
			}
			// A data-cell read heals through the exclusive-retry path;
			// HealStripe then guarantees the cell (data or parity) is fixed
			// so the next corruption is never the second one outstanding.
			off := stripe * stripeBytes
			if res, err := s.ReadAt(int64(off), stripeBytes); err == nil {
				if !bytes.Equal(res.Data, data[off:off+stripeBytes]) {
					report(fmt.Errorf("heal read stripe %d returned wrong bytes", stripe))
					return
				}
			}
			if _, err := s.HealStripe(stripe); err != nil {
				report(fmt.Errorf("heal stripe %d: %v", stripe, err))
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// Settle and verify the store is fully intact.
	for _, d := range s.FailedDisks() {
		if _, err := s.RecoverDisk(d); err != nil {
			t.Fatalf("settle recover %d: %v (failed=%v)", d, err, s.FailedDisks())
		}
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("data corrupted after concurrent chaos")
	}
}

// TestNextOffsetAccountsForPadding pins the multi-object placement contract:
// after a Flush pads a partial stripe, NextOffset (not Len) is where the
// next appended byte lands, and reading there returns the new bytes.
func TestNextOffsetAccountsForPadding(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	first := fill(t, s, 100, 1) // padded to a full stripe by Flush
	stripeBytes := int64(s.Scheme().DataPerStripe() * s.ElementSize())
	if s.Len() != 100 {
		t.Fatalf("Len = %d, want 100 (padding is not user data)", s.Len())
	}
	if got := s.NextOffset(); got != stripeBytes {
		t.Fatalf("NextOffset = %d, want %d", got, stripeBytes)
	}
	off := s.NextOffset()
	second := fill(t, s, 200, 2)
	res, err := s.ReadAt(off, len(second))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, second) {
		t.Fatal("second object unreadable at NextOffset")
	}
	res, err = s.ReadAt(0, len(first))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, first) {
		t.Fatal("first object damaged by second append")
	}
}
