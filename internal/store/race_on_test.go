//go:build race

package store

// raceEnabled reports the race detector is active: sync.Pool deliberately
// drops a fraction of Puts under race instrumentation, so allocation-count
// assertions are meaningless in that build.
const raceEnabled = true
