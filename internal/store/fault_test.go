package store

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rs"
)

// stubInjector adapts plain funcs to the FaultInjector interface so tests
// can script exact per-device behaviour.
type stubInjector struct {
	read  func(dev int) Fault
	write func(dev int) Fault
}

func (s stubInjector) ReadFault(dev int) Fault {
	if s.read != nil {
		return s.read(dev)
	}
	return Fault{}
}

func (s stubInjector) WriteFault(dev int) Fault {
	if s.write != nil {
		return s.write(dev)
	}
	return Fault{}
}

// onlyDev returns a fault for one device and no fault for the rest.
func onlyDev(dev int, f Fault) func(int) Fault {
	return func(d int) Fault {
		if d == dev {
			return f
		}
		return Fault{}
	}
}

func fastRetries(s *Store) { s.SetRetryPolicy(200*time.Microsecond, 2) }

// TestReadFallsBackOnErroringDevice: a device that always errors (but is
// not marked failed) must be routed around via the degraded-read fallback,
// returning correct bytes from a plan that never touches it.
func TestReadFallsBackOnErroringDevice(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fastRetries(s)
	want := fill(t, s, 4*s.stripeBytes(), 11)
	s.SetFaultInjector(stubInjector{read: onlyDev(0, Fault{Err: errors.New("io error")})})

	res, err := s.ReadAt(0, len(want))
	if err != nil {
		t.Fatalf("ReadAt through erroring device: %v", err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("fallback read returned wrong bytes")
	}
	for _, a := range res.Plan.Reads {
		if a.Disk == 0 {
			t.Fatalf("final plan still reads unavailable device 0: %+v", a)
		}
	}
}

// TestReadFallsBackOnStuckDevice: a stuck device times out per-op and the
// read degrades around it instead of hanging.
func TestReadFallsBackOnStuckDevice(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fastRetries(s)
	want := fill(t, s, 2*s.stripeBytes(), 12)
	s.SetFaultInjector(stubInjector{read: onlyDev(3, Fault{Stuck: true})})

	start := time.Now()
	res, err := s.ReadAt(0, len(want))
	if err != nil {
		t.Fatalf("ReadAt through stuck device: %v", err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("fallback read returned wrong bytes")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stuck device stalled the read for %v", elapsed)
	}
}

// TestReadFallsBackOnInjectedFailStop: a fault-plan fail-stop (fail-after-N
// tripping) degrades reads exactly like a FailDisk, without the device ever
// being marked failed.
func TestReadFallsBackOnInjectedFailStop(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fastRetries(s)
	want := fill(t, s, 2*s.stripeBytes(), 13)
	s.SetFaultInjector(stubInjector{read: onlyDev(5, Fault{Failed: true})})

	res, err := s.ReadAt(0, len(want))
	if err != nil {
		t.Fatalf("ReadAt through fail-stopped device: %v", err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("fallback read returned wrong bytes")
	}
	if len(s.FailedDisks()) != 0 {
		t.Fatal("injected fail-stop must not mark the device failed")
	}
}

// TestReadUnavailableBeyondTolerance: when more devices are unavailable
// than the code tolerates, the read fails loudly with ErrUnavailable —
// never silent wrong bytes.
func TestReadUnavailableBeyondTolerance(t *testing.T) {
	s := testStore(t, layout.FormECFRM) // LRC(6,2,2): tolerance 3
	fastRetries(s)
	want := fill(t, s, s.stripeBytes(), 14)
	bad := map[int]bool{0: true, 1: true, 2: true, 3: true}
	s.SetFaultInjector(stubInjector{read: func(d int) Fault {
		if bad[d] {
			return Fault{Err: errors.New("io error")}
		}
		return Fault{}
	}})

	_, err := s.ReadAt(0, len(want))
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}

	// The failure is transient: clearing the plan restores the read.
	s.SetFaultInjector(nil)
	res, err := s.ReadAt(0, len(want))
	if err != nil || !bytes.Equal(res.Data, want) {
		t.Fatalf("read after clearing faults: %v", err)
	}
}

// TestInjectedLatencyIsServed: latency within the timeout is slept, not
// treated as a fault.
func TestInjectedLatencyIsServed(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	want := fill(t, s, s.stripeBytes(), 15)
	s.SetFaultInjector(stubInjector{read: func(int) Fault {
		return Fault{Delay: 100 * time.Microsecond}
	}})
	res, err := s.ReadAt(0, len(want))
	if err != nil || !bytes.Equal(res.Data, want) {
		t.Fatalf("latency-only plan broke the read: %v", err)
	}
}

// TestWriteFaultAbortsSealCleanly: a seal that cannot clear its write gate
// fails whole — no partial stripe, bytes retryable after the fault clears.
func TestWriteFaultAbortsSealCleanly(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fastRetries(s)
	s.SetFaultInjector(stubInjector{write: onlyDev(2, Fault{Err: errors.New("io error")})})

	data := make([]byte, s.stripeBytes())
	for i := range data {
		data[i] = byte(i)
	}
	if err := s.Append(data); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("Append through write fault: err = %v, want ErrUnavailable", err)
	}
	if s.Stripes() != 0 {
		t.Fatalf("faulted seal left %d stripes", s.Stripes())
	}

	// Clearing the fault and flushing the retained buffer must succeed.
	s.SetFaultInjector(nil)
	if err := s.Flush(); err != nil {
		t.Fatalf("Flush after clearing faults: %v", err)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil || !bytes.Equal(res.Data, data) {
		t.Fatalf("read after retried seal: %v", err)
	}
}

// TestWriteFaultAbortsWriteAtAtomically: a faulted read-modify-write
// changes nothing — parity stays consistent and old bytes remain readable.
func TestWriteFaultAbortsWriteAtAtomically(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fastRetries(s)
	want := fill(t, s, 2*s.stripeBytes(), 16)
	s.SetFaultInjector(stubInjector{write: onlyDev(1, Fault{Err: errors.New("io error")})})

	upd := make([]byte, 3*s.ElementSize())
	for i := range upd {
		upd[i] = 0xee
	}
	if err := s.WriteAt(0, upd); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("WriteAt through write fault: err = %v, want ErrUnavailable", err)
	}
	s.SetFaultInjector(nil)
	res, err := s.ReadAt(0, len(want))
	if err != nil || !bytes.Equal(res.Data, want) {
		t.Fatal("aborted WriteAt mutated data")
	}
	if bad, err := s.Scrub(); err != nil || bad != nil {
		t.Fatalf("aborted WriteAt left parity inconsistent: stripes %v err %v", bad, err)
	}
}

// TestHealRevalidatesToleranceUnderWriteLock is the regression test for the
// shared→exclusive heal escalation: a concurrent FailDisk in the lock gap
// can push the corrupt cell's group past tolerance mid-heal. The heal must
// re-validate under the write lock and fail loudly (ErrUnrecoverable) —
// never rewrite from an over-erased group, never return wrong bytes.
func TestHealRevalidatesToleranceUnderWriteLock(t *testing.T) {
	// RS(6,3) EC-FRM: every group has one element per disk, tolerance 3.
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	s := MustNew(sch, 64)
	fill(t, s, s.stripeBytes(), 17)
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 0}); err != nil {
		t.Fatal(err)
	}
	// In the window between corruption detection (shared lock) and healing
	// (exclusive lock), three more disks fail: together with the corrupt
	// cell that is four erasures in its group — beyond RS(6,3)'s reach.
	s.testBeforeHeal = func() {
		s.FailDisk(1)
		s.FailDisk(2)
		s.FailDisk(3)
	}
	_, err := s.ReadAt(0, s.ElementSize())
	if err == nil {
		t.Fatal("read healed through an over-erased group; want a loud error")
	}
	if !errors.Is(err, core.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

// TestHealSurvivesInterleavedFailureWithinTolerance: the same interleaving
// with the group still within tolerance must heal and return clean bytes.
func TestHealSurvivesInterleavedFailureWithinTolerance(t *testing.T) {
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	s := MustNew(sch, 64)
	want := fill(t, s, s.stripeBytes(), 18)
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 0}); err != nil {
		t.Fatal(err)
	}
	s.testBeforeHeal = func() {
		s.FailDisk(1)
		s.FailDisk(2)
	}
	res, err := s.ReadAt(0, len(want))
	if err != nil {
		t.Fatalf("within-tolerance interleaved heal: %v", err)
	}
	if !bytes.Equal(res.Data, want) {
		t.Fatal("interleaved heal returned wrong bytes")
	}
	if res.Healed == 0 {
		t.Fatal("read did not report the heal")
	}
}

// TestHealExported: Heal repairs exactly the corrupt cell and reports it.
func TestHealExported(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	want := fill(t, s, s.stripeBytes(), 19)
	pos := layout.Pos{Row: 0, Col: 4}
	if healed, err := s.Heal(0, pos); err != nil || healed {
		t.Fatalf("Heal on clean cell = (%v, %v), want (false, nil)", healed, err)
	}
	if err := s.CorruptCell(0, pos); err != nil {
		t.Fatal(err)
	}
	if healed, err := s.Heal(0, pos); err != nil || !healed {
		t.Fatalf("Heal on corrupt cell = (%v, %v), want (true, nil)", healed, err)
	}
	if got := s.VerifyChecksums(); got != nil {
		t.Fatalf("checksums after Heal: %+v", got)
	}
	res, err := s.ReadAt(0, len(want))
	if err != nil || !bytes.Equal(res.Data, want) {
		t.Fatalf("read after Heal: %v", err)
	}
}

// TestSetFaultInjectorBumpsEpoch: installing, replacing, or clearing a
// fault plan must invalidate epoch-keyed decoded-read caches.
func TestSetFaultInjectorBumpsEpoch(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	before := s.Epoch()
	s.SetFaultInjector(stubInjector{})
	if s.Epoch() == before {
		t.Fatal("SetFaultInjector did not bump the epoch")
	}
	mid := s.Epoch()
	s.SetFaultInjector(nil)
	if s.Epoch() == mid {
		t.Fatal("clearing the injector did not bump the epoch")
	}
}
