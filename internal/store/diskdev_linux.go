//go:build linux

package store

import "syscall"

// oDirectFlag is the open(2) flag requesting direct I/O on Linux. Data-file
// opens OR it in when FileConfig.Direct is set and the element size is
// directAlign-aligned; filesystems that refuse it fall back to buffered.
const oDirectFlag = syscall.O_DIRECT
