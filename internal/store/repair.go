// Incremental disk repair: batched rebuild and migration that interleave
// with foreground traffic.
//
// The original RecoverDisk held the exclusive lock for the whole rebuild, so
// a failing disk froze every reader for the duration — exactly the regime
// the Facebook warehouse study warns about, where repair traffic dominates
// after failures. The machinery here splits recovery into bounded stripe
// batches:
//
//   - BeginDiskRebuild installs the (still-failed) replacement device
//     immediately, so stripes sealed during the rebuild are written straight
//     into it by the normal seal path and only the stripes sealed before
//     Begin need reconstruction.
//   - Step reconstructs one batch of stripes under the *shared* lock:
//     survivors are read through the normal fault-gated read path and the
//     rebuilt cells written directly to the replacement backend, which no
//     reader touches while the device is marked failed. Foreground reads
//     proceed concurrently with every batch.
//   - The final Step takes the exclusive lock briefly to fsync the
//     replacement, clear the failed flag, and bump the epoch.
//
// BeginDiskMigration is the rebalance counterpart: it copies a *healthy*
// device onto a freshly added replacement (one read per element instead of a
// k-element decode), staging file backends into dev_NN.{data,crc}.new and
// promoting them by rename. Migration steps run under the exclusive lock —
// the source keeps serving reads between batches — and the copy is
// byte-identical to the source, so even a crash between the two renames
// leaves equivalent content behind.
//
// Scrub is batched the same way: ScrubRange verifies one section per shared
// lock hold, Scrub stitches sections together releasing the lock between
// them, and HealStripe repairs what a scrub flagged under a short exclusive
// hold. internal/repair drives all three from its background scheduler.
package store

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/layout"
)

// DefaultRebuildBatch is the stripes one rebuild Step covers when the caller
// does not choose a batch size.
const DefaultRebuildBatch = 64

// DefaultScrubBatch is the stripes one shared-lock hold verifies when Scrub
// batches its full-store walk.
const DefaultScrubBatch = 32

// RebuildKind distinguishes the two incremental repair flavours.
type RebuildKind string

const (
	// RebuildFailed reconstructs a failed device from survivors.
	RebuildFailed RebuildKind = "rebuild"
	// RebuildMigrate copies a healthy device onto a newly added replacement.
	RebuildMigrate RebuildKind = "migrate"
)

// DiskRebuild is an in-progress incremental reconstruction or migration of
// one device. Obtain one with BeginDiskRebuild or BeginDiskMigration and
// drive it with Step until done; Abort abandons it (the device keeps its
// pre-existing state: failed for rebuilds, healthy source for migrations).
// Methods are safe for concurrent use, but Steps serialize internally — the
// intended driver is one scheduler goroutine.
type DiskRebuild struct {
	s           *Store
	dev         int
	kind        RebuildKind
	replacement *Device
	started     time.Time

	mu       sync.Mutex
	total    int // rebuild: stripes sealed at Begin; migrate: live, grows
	next     int // first stripe not yet reconstructed/copied
	readCost int // distinct survivor elements read (rebuild) or cells copied (migrate)
	written  int // elements written to the replacement
	done     bool
	aborted  bool
}

// Disk returns the device index being rebuilt or migrated.
func (r *DiskRebuild) Disk() int { return r.dev }

// Kind returns the repair flavour.
func (r *DiskRebuild) Kind() RebuildKind { return r.kind }

// Started returns when the rebuild began.
func (r *DiskRebuild) Started() time.Time { return r.started }

// Progress reports stripes completed so far, the total the rebuild covers,
// and the survivor elements read. For migrations the total tracks the live
// sealed extent (it can grow between calls).
func (r *DiskRebuild) Progress() (next, total, readCost int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next, r.total, r.readCost
}

// Done reports whether the rebuild has completed and the device is healthy.
func (r *DiskRebuild) Done() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.done
}

// Abort abandons an unfinished rebuild so a later BeginDiskRebuild (or
// RecoverDisk) can start over. A rebuilt-but-unfinalized device stays failed
// with the replacement backend installed, exactly like a mid-rebuild error.
func (r *DiskRebuild) Abort() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done || r.aborted {
		return
	}
	r.aborted = true
	r.s.endRebuild(r.dev)
	if r.kind == RebuildMigrate {
		r.s.discardStaging(r.dev, r.replacement)
	}
}

// BeginDiskRebuild starts the incremental reconstruction of failed device d.
// The replacement device is created and installed immediately (still marked
// failed): stripes sealed while the rebuild runs are written straight into
// it by the normal seal path, so Step only has to reconstruct the stripes
// sealed before this call. On file backends the old device's files are
// closed and reopened truncated, like RecoverDisk always did.
func (s *Store) BeginDiskRebuild(d int) (*DiskRebuild, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if d < 0 || d >= len(s.devices) {
		return nil, fmt.Errorf("store: no device %d", d)
	}
	dev := s.devices[d]
	if !dev.failed {
		return nil, fmt.Errorf("store: device %d is not failed", d)
	}
	if s.rebuilding[d] {
		return nil, fmt.Errorf("store: device %d rebuild already in progress", d)
	}
	replacement := newDevice(d, s.rows)
	// The replacement inherits the failed device's metric series: to the
	// registry it is the same disk slot.
	replacement.obsReads, replacement.obsWrites = dev.obsReads, dev.obsWrites
	replacement.obsInflight = dev.obsInflight
	replacement.obsErrors, replacement.obsLatency = dev.obsErrors, dev.obsLatency
	replacement.failed = true // cleared by the final Step
	if s.newBackendFn != nil {
		// File backend: the replacement writes to the same dev_NN files, so
		// the failed device's handles must close before the factory reopens
		// them truncated. The old contents are untrusted anyway — that is
		// what "failed" means — and the device stays marked failed until the
		// rebuild completes, so no reader touches the half-built files.
		if err := dev.be.close(); err != nil {
			dev.be = newMemBackend() // dead placeholder; keeps later Close safe
			return nil, fmt.Errorf("store: recover device %d: close old backend: %w", d, err)
		}
		dev.be = newMemBackend()
		be, berr := s.newBackendFn(d)
		if berr != nil {
			return nil, fmt.Errorf("store: recover device %d: open replacement: %w", d, berr)
		}
		replacement.be = be
	}
	s.devices[d] = replacement
	if s.rebuilding == nil {
		s.rebuilding = make(map[int]bool)
	}
	s.rebuilding[d] = true
	return &DiskRebuild{
		s:           s,
		dev:         d,
		kind:        RebuildFailed,
		replacement: replacement,
		started:     time.Now(),
		total:       s.stripes,
	}, nil
}

// BeginDiskMigration starts copying healthy device d onto a fresh
// replacement — the "device added" rebalance path: the operator swaps in new
// hardware, the scheduler streams the old device's cells across. Unlike a
// rebuild this is one read per element (no decode), but the source keeps
// serving and mutating, so Step batches run under the exclusive lock and the
// swap happens in the same critical section that observes the copy caught up
// with the sealed extent. File backends stage into dev_NN.{data,crc}.new and
// promote by rename.
func (s *Store) BeginDiskMigration(d int) (*DiskRebuild, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if d < 0 || d >= len(s.devices) {
		return nil, fmt.Errorf("store: no device %d", d)
	}
	dev := s.devices[d]
	if dev.failed {
		return nil, fmt.Errorf("store: device %d is failed; rebuild it instead of migrating", d)
	}
	if s.rebuilding[d] {
		return nil, fmt.Errorf("store: device %d rebuild already in progress", d)
	}
	replacement := newDevice(d, s.rows)
	replacement.obsReads, replacement.obsWrites = dev.obsReads, dev.obsWrites
	replacement.obsInflight = dev.obsInflight
	replacement.obsErrors, replacement.obsLatency = dev.obsErrors, dev.obsLatency
	if s.newStagingBackendFn != nil {
		be, err := s.newStagingBackendFn(d)
		if err != nil {
			return nil, fmt.Errorf("store: migrate device %d: open staging backend: %w", d, err)
		}
		replacement.be = be
	}
	if s.rebuilding == nil {
		s.rebuilding = make(map[int]bool)
	}
	s.rebuilding[d] = true
	return &DiskRebuild{
		s:           s,
		dev:         d,
		kind:        RebuildMigrate,
		replacement: replacement,
		started:     time.Now(),
		total:       s.stripes,
	}, nil
}

// Step advances the rebuild by up to batch stripes (DefaultRebuildBatch when
// batch < 1) and reports whether the device is now healthy. Rebuild batches
// run under the shared lock so foreground reads proceed concurrently;
// migration batches and the finalize run under short exclusive holds. On
// error the rebuild aborts: a failed device stays failed (retry with a fresh
// BeginDiskRebuild), a migration source stays in service.
func (r *DiskRebuild) Step(batch int) (done bool, err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.done {
		return true, nil
	}
	if r.aborted {
		return false, fmt.Errorf("store: device %d rebuild aborted", r.dev)
	}
	if batch < 1 {
		batch = DefaultRebuildBatch
	}
	if r.kind == RebuildMigrate {
		done, err = r.stepMigrate(batch)
	} else {
		done, err = r.stepRebuild(batch)
	}
	if err != nil {
		r.aborted = true
		r.s.endRebuild(r.dev)
		if r.kind == RebuildMigrate {
			r.s.discardStaging(r.dev, r.replacement)
		}
	}
	return done, err
}

// stepRebuild reconstructs one batch under the shared lock, then finalizes
// exclusively once every pre-Begin stripe is rebuilt. Caller holds r.mu.
func (r *DiskRebuild) stepRebuild(batch int) (bool, error) {
	s := r.s
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return false, errors.New("store: closed")
	}
	end := r.next + batch
	if end > r.total {
		end = r.total
	}
	failedSet := make(map[int]bool)
	for _, f := range s.failedDisksLocked() {
		failedSet[f] = true
	}
	for stripe := r.next; stripe < end; stripe++ {
		if err := r.rebuildStripe(stripe, failedSet); err != nil {
			s.mu.RUnlock()
			return false, err
		}
	}
	r.next = end
	s.mu.RUnlock()
	if r.next < r.total {
		return false, nil
	}
	return true, r.finalizeRebuild()
}

// rebuildStripe reconstructs every cell device r.dev holds in one stripe
// from the cheapest surviving recovery set and writes them to the
// replacement. Caller holds r.mu and the store's shared lock.
func (r *DiskRebuild) rebuildStripe(stripe int, failedSet map[int]bool) error {
	s := r.s
	lay := s.scheme.Layout()
	code := s.scheme.Code()
	// Per-stripe read cache: an element fetched for one group's repair is
	// free for the next (same physical element).
	fetched := make(map[layout.Pos][]byte)
	fetch := func(pos layout.Pos) ([]byte, bool) {
		if data, ok := fetched[pos]; ok {
			return data, true
		}
		disk := lay.Disk(stripe, pos.Col)
		if failedSet[disk] {
			return nil, false
		}
		data, err := s.readCell(disk, cellKey{stripe, pos})
		if err != nil {
			// Failed, unavailable, or silently corrupt: treat as erased.
			return nil, false
		}
		fetched[pos] = data
		r.readCost++
		return data, true
	}

	col := lay.Col(stripe, r.dev)
	for row := 0; row < lay.Rows(); row++ {
		pos := layout.Pos{Row: row, Col: col}
		cell := lay.CellAt(pos)
		group := make([][]byte, code.N())
		ok := false
		// Try the cheapest surviving recovery set first.
		for _, set := range code.RecoverySets(cell.Element) {
			usable := true
			for _, t := range set {
				if _, have := fetch(lay.GroupCell(cell.Group, t)); !have {
					usable = false
					break
				}
			}
			if usable {
				for _, t := range set {
					group[t] = fetched[lay.GroupCell(cell.Group, t)]
				}
				ok = true
				break
			}
		}
		if !ok {
			// Fallback: every surviving element of the group.
			for t := 0; t < code.N(); t++ {
				if t == cell.Element {
					continue
				}
				if data, have := fetch(lay.GroupCell(cell.Group, t)); have {
					group[t] = data
				}
			}
		}
		if err := code.ReconstructElements(group, []int{cell.Element}); err != nil {
			return fmt.Errorf("store: rebuild stripe %d cell (%d,%d): %w",
				stripe, pos.Row, pos.Col, err)
		}
		if err := r.replacement.write(cellKey{stripe, pos}, group[cell.Element]); err != nil {
			return fmt.Errorf("store: rebuild stripe %d cell (%d,%d): %w",
				stripe, pos.Row, pos.Col, err)
		}
		r.written++
	}
	return nil
}

// finalizeRebuild makes the reconstructed contents durable and visible:
// fsync (under the FsyncAlways discipline), clear the failed flag, bump the
// epoch. Caller holds r.mu.
func (r *DiskRebuild) finalizeRebuild() error {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	// Durability before visibility: the rebuilt contents hit stable storage
	// before the swap clears the failed flag and readers route back here.
	if s.fsync {
		if err := r.replacement.be.sync(); err != nil {
			r.aborted = true
			delete(s.rebuilding, r.dev)
			return fmt.Errorf("store: recover device %d: fsync: %w", r.dev, err)
		}
	}
	r.replacement.failed = false
	delete(s.rebuilding, r.dev)
	s.bumpEpoch()
	r.done = true
	s.obs.observeRecover(string(r.kind), r.readCost, time.Since(r.started).Seconds())
	return nil
}

// stepMigrate copies one batch of stripes from the live source device to the
// staging replacement under the exclusive lock, and — in the same critical
// section that observes the copy caught up with the sealed extent — promotes
// the staging files and swaps the replacement in. Caller holds r.mu.
func (r *DiskRebuild) stepMigrate(batch int) (bool, error) {
	s := r.s
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false, errors.New("store: closed")
	}
	src := s.devices[r.dev]
	if src.failed {
		return false, fmt.Errorf("store: migrate device %d: source failed mid-migration", r.dev)
	}
	r.total = s.stripes
	end := r.next + batch
	if end > r.total {
		end = r.total
	}
	for stripe := r.next; stripe < end; stripe++ {
		col := s.scheme.Layout().Col(stripe, r.dev)
		for row := 0; row < s.rows; row++ {
			k := cellKey{stripe, layout.Pos{Row: row, Col: col}}
			data, err := s.readCell(r.dev, k)
			if err != nil {
				// Corrupt or unavailable source cell: scrub/heal first, then
				// retry the migration.
				return false, fmt.Errorf("store: migrate device %d stripe %d: %w", r.dev, stripe, err)
			}
			// Copy: on memory backends readCell returns the live cell slice,
			// and the two backends must not alias.
			if err := r.replacement.write(k, append([]byte(nil), data...)); err != nil {
				return false, fmt.Errorf("store: migrate device %d stripe %d: %w", r.dev, stripe, err)
			}
			r.readCost++
			r.written++
		}
	}
	r.next = end
	if r.next < s.stripes {
		return false, nil
	}
	// Caught up inside this exclusive hold: no seal can slip in before the
	// swap. Durability, promote (file rename), then install.
	if s.fsync {
		if err := r.replacement.be.sync(); err != nil {
			return false, fmt.Errorf("store: migrate device %d: fsync staging: %w", r.dev, err)
		}
	}
	if s.promoteStagingFn != nil {
		if err := s.promoteStagingFn(r.dev); err != nil {
			return false, fmt.Errorf("store: migrate device %d: promote staging files: %w", r.dev, err)
		}
	}
	old := s.devices[r.dev]
	s.devices[r.dev] = r.replacement
	delete(s.rebuilding, r.dev)
	s.bumpEpoch()
	r.done = true
	s.obs.observeRecover(string(r.kind), r.readCost, time.Since(r.started).Seconds())
	// The old backend's files were renamed over (file) or are garbage (mem);
	// a close failure no longer threatens the data.
	if err := old.be.close(); err != nil {
		return true, fmt.Errorf("store: migrate device %d: close old backend: %w", r.dev, err)
	}
	return true, nil
}

// endRebuild clears the in-progress flag for device d so a fresh Begin can
// retry.
func (s *Store) endRebuild(d int) {
	s.mu.Lock()
	delete(s.rebuilding, d)
	s.mu.Unlock()
}

// discardStaging closes and removes an abandoned migration's staging
// backend and files.
func (s *Store) discardStaging(d int, replacement *Device) {
	replacement.be.close()
	s.mu.RLock()
	discard := s.discardStagingFn
	s.mu.RUnlock()
	if discard != nil {
		discard(d)
	}
}

// Rebuilding returns the device IDs with a rebuild or migration in
// progress, ascending.
func (s *Store) Rebuilding() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, 0, len(s.rebuilding))
	for d := range s.rebuilding {
		out = append(out, d)
	}
	sort.Ints(out)
	return out
}

// RecoverDisk rebuilds every element of failed device d from the survivors
// onto a fresh replacement, clears the failure flag, and returns the number
// of distinct elements read from other devices during the repair.
//
// Recovery is I/O-minimal per group: each lost cell is rebuilt from the
// candidate code's cheapest usable recovery set (LRC's local groups make
// this k/l reads per data element instead of k), with reads shared across
// the lost cells of a stripe. If no minimal set survives (multiple failures
// or corruption), the group falls back to reading every surviving element.
//
// This is the synchronous convenience wrapper over the incremental
// machinery: it batches through BeginDiskRebuild/Step, so concurrent reads
// interleave between batches instead of stalling for the whole rebuild.
func (s *Store) RecoverDisk(d int) (readCost int, err error) {
	r, err := s.BeginDiskRebuild(d)
	if err != nil {
		return 0, err
	}
	for {
		done, err := r.Step(DefaultRebuildBatch)
		if err != nil {
			return r.readCostSnapshot(), err
		}
		if done {
			return r.readCostSnapshot(), nil
		}
	}
}

func (r *DiskRebuild) readCostSnapshot() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.readCost
}

// ScrubRange verifies parity consistency of sealed stripes [start,
// start+count) under a single shared-lock hold, clamped to the sealed
// extent. It returns the corrupt stripe indices found and the first stripe
// index after the verified range (== start when start is at or past the
// sealed extent).
func (s *Store) ScrubRange(start, count int) (bad []int, next int, err error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, start, errors.New("store: closed")
	}
	if start < 0 {
		start = 0
	}
	if start >= s.stripes {
		return nil, start, nil
	}
	end := s.stripes
	if count > 0 && start+count < end {
		end = start + count
	}
	lay := s.scheme.Layout()
	n := s.scheme.N()
	for stripe := start; stripe < end; stripe++ {
		cells := make([][]byte, s.scheme.CellsPerStripe())
		corrupt := false
		for row := 0; row < lay.Rows() && !corrupt; row++ {
			for col := 0; col < n; col++ {
				data, err := s.readCell(lay.Disk(stripe, col), cellKey{stripe, layout.Pos{Row: row, Col: col}})
				if errors.Is(err, ErrCorrupt) {
					corrupt = true
					break
				}
				if err != nil {
					return nil, stripe, err
				}
				cells[row*n+col] = data
			}
		}
		if corrupt {
			bad = append(bad, stripe)
			continue
		}
		ok, err := s.scheme.VerifyStripe(cells)
		if err != nil {
			return nil, stripe, err
		}
		if !ok {
			bad = append(bad, stripe)
		}
	}
	return bad, end, nil
}

// Scrub verifies parity consistency of every sealed stripe, returning the
// indices of corrupt stripes (nil if all clean). It reads every cell, in
// DefaultScrubBatch-stripe sections with the shared lock released between
// them, so concurrent reads and writes interleave with a full-store scrub
// instead of queueing behind it. Stripes sealed while the scrub walks are
// verified too: the walk ends only when it catches up with the live extent.
func (s *Store) Scrub() ([]int, error) {
	var bad []int
	start := 0
	for {
		b, next, err := s.ScrubRange(start, DefaultScrubBatch)
		if err != nil {
			return nil, err
		}
		bad = append(bad, b...)
		if y := s.testScrubYield; y != nil {
			y(next)
		}
		if next <= start {
			return bad, nil
		}
		start = next
	}
}

// HealStripe re-checks every cell of one sealed stripe and heals the
// checksum-corrupt ones from their groups under the exclusive lock,
// returning how many cells were rewritten. Cells on failed or unavailable
// devices are skipped — device loss is the rebuild machinery's job, not the
// scrub's. An unrecoverable corrupt cell aborts with the heal error.
func (s *Store) HealStripe(stripe int) (healed int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if stripe < 0 || stripe >= s.stripes {
		return 0, fmt.Errorf("%w: stripe %d of %d", ErrRange, stripe, s.stripes)
	}
	lay := s.scheme.Layout()
	for row := 0; row < s.rows; row++ {
		for col := 0; col < s.scheme.N(); col++ {
			pos := layout.Pos{Row: row, Col: col}
			disk := lay.Disk(stripe, col)
			_, rerr := s.devices[disk].read(cellKey{stripe, pos})
			switch {
			case rerr == nil:
				continue
			case errors.Is(rerr, ErrCorrupt):
				if _, herr := s.healCell(stripe, pos); herr != nil {
					return healed, herr
				}
				healed++
			case errors.Is(rerr, ErrFailed) || errors.Is(rerr, ErrUnavailable):
				continue
			default:
				return healed, rerr
			}
		}
	}
	return healed, nil
}

// InflightRuns snapshots every device's in-flight fan-out run count — the
// live foreground-pressure signal the load-aware degraded planner biases on
// and the repair scheduler's token bucket shrinks on.
func (s *Store) InflightRuns() []int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int, len(s.devices))
	for i, d := range s.devices {
		out[i] = int(d.inflight.Load())
	}
	return out
}

// DiskErrorCounts snapshots every device's hard-error count (fail-stops,
// exhausted retry budgets, backend I/O failures) for the failure detectors.
func (s *Store) DiskErrorCounts() []int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]int64, len(s.devices))
	for i, d := range s.devices {
		out[i] = d.errs.Load()
	}
	return out
}

// DiskLatencies snapshots every device's op-latency EWMA (zero until a
// device has served an operation), for the limping-disk detector.
func (s *Store) DiskLatencies() []time.Duration {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]time.Duration, len(s.devices))
	for i, d := range s.devices {
		out[i] = time.Duration(d.latEWMA.Load())
	}
	return out
}
