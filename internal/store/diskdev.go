// File-backed device layer: real disks under the store.
//
// Each device owns two files inside the store's data directory:
//
//	dev_NN.data  — cells at elemSize-byte strides, slot = stripe*rows + row
//	dev_NN.crc   — 4-byte CRC32C records at the same slot index
//
// The data file is strided (no per-record headers) so offsets stay
// block-aligned and O_DIRECT can bypass the page cache when the element size
// permits; checksums live in the sidecar so a torn data write and a torn
// checksum write are independently detectable — a mismatch between the two
// is exactly how recovery finds cells a crash half-wrote.
//
// All data-file I/O goes through the device's submission queue (sq.go):
// cell reads and coalesced run reads are OpRead SQEs, commits are OpWrite
// SQEs followed by an OpSync barrier. Durability discipline maps the store's
// two-phase gated writes onto write-then-fsync-then-publish: a seal gates
// every cell, submits every write, fsyncs every touched device, and only
// then advances the sealed-stripe counter; WriteAt, healing, and recovery
// follow the same order. FsyncNever trades that barrier away for throughput
// (the recovery scrub still bounds the damage to torn tails).
//
// Startup recovery (OpenFileBacked) scrubs the directory before serving:
// geometry is derived from the files themselves (never trusted from a
// manifest), every cell is checksum-verified, torn or missing cells are
// rebuilt from their group when the code allows, a parity-inconsistent
// stripe with clean checksums (the WriteAt write-hole) is re-encoded from
// its data cells, and an unrecoverable torn tail is truncated. The store
// that comes back is always decode-clean.
package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"time"
	"unsafe"

	"repro/internal/core"
	"repro/internal/layout"
)

// errCellMissing reports a read of a slot the backend has never stored.
var errCellMissing = errors.New("store: cell not present")

// devBackend abstracts where a device keeps its cells: the in-memory map
// every store starts with, or a file pair driven through a submission queue.
// Slot indices are stripe*rows + row — dense, device-local, and identical to
// the on-disk record order persist.go has always used.
type devBackend interface {
	// readCell returns slot's payload and its recorded checksum. The caller
	// verifies the checksum (so transient mis-reads and stored corruption
	// are distinguished at one place, Device.read).
	readCell(slot int) (data []byte, crc uint32, err error)
	// writeCell stores payload and checksum for slot.
	writeCell(slot int, data []byte, crc uint32) error
	// corrupt damages slot's stored payload without touching its recorded
	// checksum — the test hook behind Store.CorruptCell.
	corrupt(slot int) error
	// slots returns the exclusive upper bound of occupied slot indices.
	slots() int
	// elements returns how many slots hold a cell.
	elements() int
	// sync flushes everything stored to stable storage (no-op in memory).
	sync() error
	// close releases the backend's resources.
	close() error
}

// runIO is the optional bulk interface backends expose when contiguous
// slots map to contiguous storage: the fan-out executor reads a whole
// coalesced run as one positioned I/O, and seals write a stripe's worth of
// device cells as one.
type runIO interface {
	readRun(slot, count int) (data []byte, crcs []uint32, err error)
	writeRun(slot int, cells [][]byte, crcs []uint32) error
}

// truncater is implemented by backends whose recovery can drop a torn tail.
type truncater interface {
	truncate(slots int) error
}

// ---------------------------------------------------------------------------
// Memory backend — the simulated device every store starts with.

type memBackend struct {
	cells map[int][]byte
	crcs  map[int]uint32
	bound int // exclusive upper bound of occupied slots
}

func newMemBackend() *memBackend {
	return &memBackend{cells: make(map[int][]byte), crcs: make(map[int]uint32)}
}

func (b *memBackend) readCell(slot int) ([]byte, uint32, error) {
	data, ok := b.cells[slot]
	if !ok {
		return nil, 0, errCellMissing
	}
	return data, b.crcs[slot], nil
}

func (b *memBackend) writeCell(slot int, data []byte, crc uint32) error {
	b.cells[slot] = data
	b.crcs[slot] = crc
	if slot >= b.bound {
		b.bound = slot + 1
	}
	return nil
}

func (b *memBackend) corrupt(slot int) error {
	cell, ok := b.cells[slot]
	if !ok {
		return errCellMissing
	}
	for i := range cell {
		cell[i] ^= 0xa5
	}
	return nil
}

func (b *memBackend) slots() int    { return b.bound }
func (b *memBackend) elements() int { return len(b.cells) }
func (b *memBackend) sync() error   { return nil }
func (b *memBackend) close() error  { return nil }

// ---------------------------------------------------------------------------
// File backend.

// FsyncMode selects the durability discipline of a file-backed store.
type FsyncMode string

const (
	// FsyncAlways fsyncs every touched device before a commit publishes —
	// the crash-safe default.
	FsyncAlways FsyncMode = "always"
	// FsyncNever leaves flushing to the OS. Fast, and crash consistency
	// degrades gracefully: the recovery scrub still heals or truncates
	// whatever the crash tore, but recently "committed" stripes may be
	// among the torn.
	FsyncNever FsyncMode = "never"
)

// FileConfig tunes the file-backed device layer. The zero value of every
// field is usable; Dir is required.
type FileConfig struct {
	// Dir is the data directory (created if absent). One dev_NN.data and
	// dev_NN.crc pair per device lives directly inside it.
	Dir string
	// Fsync is the durability discipline; empty means FsyncAlways.
	Fsync FsyncMode
	// Direct requests O_DIRECT on the data files. Honored when the element
	// size is a multiple of 4096 and the filesystem accepts the flag;
	// otherwise the store falls back to buffered I/O (see
	// RecoveryReport.DirectActive).
	Direct bool
	// QueueDepth bounds each device's submission ring (default 64).
	QueueDepth int
	// Workers is the executor pool size per device (default 4).
	Workers int
	// SkipScrub skips the parity-verification pass of startup recovery.
	// Checksum validation, torn-cell healing, and tail truncation still
	// run; only the (read-everything, re-encode-everything) parity check
	// is elided. For large stores whose workload never uses WriteAt.
	SkipScrub bool
}

func (c *FileConfig) fsyncAlways() bool { return c.Fsync != FsyncNever }

// directAlign is the alignment O_DIRECT requires of offsets and buffers.
const directAlign = 4096

// alignedBytes returns an n-byte slice whose backing array is
// directAlign-aligned, for O_DIRECT transfers.
func alignedBytes(n int) []byte {
	raw := make([]byte, n+directAlign)
	off := 0
	if rem := uintptr(unsafe.Pointer(&raw[0])) % directAlign; rem != 0 {
		off = directAlign - int(rem)
	}
	return raw[off : off+n : off+n]
}

func devDataFile(dir string, d int) string {
	return filepath.Join(dir, fmt.Sprintf("dev_%02d.data", d))
}

func devCRCFile(dir string, d int) string {
	return filepath.Join(dir, fmt.Sprintf("dev_%02d.crc", d))
}

// stagingSuffix marks a migration's staging file pair (repair.go): the copy
// of a device being rebalanced onto new storage, promoted over the live pair
// by rename. A *.new pair found at startup is a crashed migration and is
// discarded — the live pair is still authoritative.
const stagingSuffix = ".new"

type fileBackend struct {
	elemSize int
	q        *ioQueue // data file, behind the submission queue
	crcf     *os.File // checksum sidecar, tiny inline writes
	crcs     []uint32 // in-memory checksum index, slot-indexed
	present  []bool
	count    int
	direct   bool
}

// openFileBackend opens (creating if needed) device d's file pair in dir and
// loads the checksum index. With trunc the files are emptied first — the
// fresh-replacement path RecoverDisk uses. Direct I/O is attempted when
// requested and the element size permits; openErr of the O_DIRECT attempt
// falls back to buffered.
func openFileBackend(dir string, d, elemSize int, cfg FileConfig, trunc bool) (*fileBackend, error) {
	return openFileBackendPaths(devDataFile(dir, d), devCRCFile(dir, d), elemSize, cfg, trunc)
}

// openFileBackendPaths is openFileBackend over explicit file paths — the
// migration staging path opens dev_NN.{data,crc}.new pairs this way.
func openFileBackendPaths(dataPath, crcPath string, elemSize int, cfg FileConfig, trunc bool) (*fileBackend, error) {
	flags := os.O_RDWR | os.O_CREATE
	if trunc {
		flags |= os.O_TRUNC
	}
	direct := cfg.Direct && oDirectFlag != 0 && elemSize%directAlign == 0
	var df *os.File
	var err error
	if direct {
		df, err = os.OpenFile(dataPath, flags|oDirectFlag, 0o644)
		if err != nil {
			direct = false
		}
	}
	if df == nil {
		df, err = os.OpenFile(dataPath, flags, 0o644)
		if err != nil {
			return nil, err
		}
	}
	cf, err := os.OpenFile(crcPath, flags, 0o644)
	if err != nil {
		df.Close()
		return nil, err
	}
	b := &fileBackend{
		elemSize: elemSize,
		q:        newIOQueue(df, cfg.Workers, cfg.QueueDepth),
		crcf:     cf,
		direct:   direct,
	}
	if err := b.loadIndex(); err != nil {
		b.close()
		return nil, err
	}
	return b, nil
}

// loadIndex reads the checksum sidecar and sizes the slot index to the
// records both files fully cover. Data beyond the sidecar (or vice versa) is
// a torn tail and simply not indexed; recovery truncates it.
func (b *fileBackend) loadIndex() error {
	dInfo, err := b.q.f.Stat()
	if err != nil {
		return err
	}
	cInfo, err := b.crcf.Stat()
	if err != nil {
		return err
	}
	n := int(dInfo.Size() / int64(b.elemSize))
	if c := int(cInfo.Size() / 4); c < n {
		n = c
	}
	b.crcs = make([]uint32, n)
	b.present = make([]bool, n)
	b.count = n
	if n == 0 {
		return nil
	}
	raw := make([]byte, 4*n)
	if _, err := b.crcf.ReadAt(raw, 0); err != nil {
		return err
	}
	for slot := 0; slot < n; slot++ {
		b.crcs[slot] = binary.LittleEndian.Uint32(raw[4*slot:])
		b.present[slot] = true
	}
	return nil
}

func (b *fileBackend) readCell(slot int) ([]byte, uint32, error) {
	if slot < 0 || slot >= len(b.present) || !b.present[slot] {
		return nil, 0, errCellMissing
	}
	var buf []byte
	if b.direct {
		buf = alignedBytes(b.elemSize)
	} else {
		buf = make([]byte, b.elemSize)
	}
	if _, err := b.q.SubmitWait(OpRead, int64(slot)*int64(b.elemSize), buf); err != nil {
		return nil, 0, fmt.Errorf("store: device read slot %d: %w", slot, err)
	}
	return buf, b.crcs[slot], nil
}

// readRun reads count contiguous slots as one positioned I/O, returning the
// concatenated payloads alongside their recorded checksums.
func (b *fileBackend) readRun(slot, count int) ([]byte, []uint32, error) {
	for s := slot; s < slot+count; s++ {
		if s < 0 || s >= len(b.present) || !b.present[s] {
			return nil, nil, errCellMissing
		}
	}
	var buf []byte
	if b.direct {
		buf = alignedBytes(count * b.elemSize)
	} else {
		buf = make([]byte, count*b.elemSize)
	}
	if _, err := b.q.SubmitWait(OpRead, int64(slot)*int64(b.elemSize), buf); err != nil {
		return nil, nil, fmt.Errorf("store: device read run [%d,+%d): %w", slot, count, err)
	}
	return buf, b.crcs[slot : slot+count], nil
}

func (b *fileBackend) grow(bound int) {
	for len(b.present) < bound {
		b.present = append(b.present, false)
		b.crcs = append(b.crcs, 0)
	}
}

func (b *fileBackend) writeCell(slot int, data []byte, crc uint32) error {
	return b.writeRun(slot, [][]byte{data}, []uint32{crc})
}

// writeRun writes contiguous slots as one data-file I/O plus one sidecar
// I/O, then publishes them in the index.
func (b *fileBackend) writeRun(slot int, cells [][]byte, crcs []uint32) error {
	n := len(cells)
	var buf []byte
	if b.direct {
		buf = alignedBytes(n * b.elemSize)[:0]
	} else {
		buf = make([]byte, 0, n*b.elemSize)
	}
	for _, c := range cells {
		if len(c) != b.elemSize {
			return fmt.Errorf("store: cell size %d, device stride %d", len(c), b.elemSize)
		}
		buf = append(buf, c...)
	}
	if _, err := b.q.SubmitWait(OpWrite, int64(slot)*int64(b.elemSize), buf[:n*b.elemSize]); err != nil {
		return fmt.Errorf("store: device write run [%d,+%d): %w", slot, n, err)
	}
	crcRaw := make([]byte, 4*n)
	for i, crc := range crcs {
		binary.LittleEndian.PutUint32(crcRaw[4*i:], crc)
	}
	if _, err := b.crcf.WriteAt(crcRaw, int64(slot)*4); err != nil {
		return fmt.Errorf("store: device checksum write [%d,+%d): %w", slot, n, err)
	}
	b.grow(slot + n)
	for i := 0; i < n; i++ {
		if !b.present[slot+i] {
			b.present[slot+i] = true
			b.count++
		}
		b.crcs[slot+i] = crcs[i]
	}
	return nil
}

func (b *fileBackend) corrupt(slot int) error {
	data, _, err := b.readCell(slot)
	if err != nil {
		return err
	}
	for i := range data {
		data[i] ^= 0xa5
	}
	if _, err := b.q.SubmitWait(OpWrite, int64(slot)*int64(b.elemSize), data); err != nil {
		return err
	}
	return nil
}

func (b *fileBackend) truncate(slots int) error {
	if slots >= len(b.present) {
		return nil
	}
	if err := b.q.f.Truncate(int64(slots) * int64(b.elemSize)); err != nil {
		return err
	}
	if err := b.crcf.Truncate(int64(slots) * 4); err != nil {
		return err
	}
	b.count = 0
	b.present = b.present[:slots]
	b.crcs = b.crcs[:slots]
	for _, p := range b.present {
		if p {
			b.count++
		}
	}
	return nil
}

func (b *fileBackend) slots() int    { return len(b.present) }
func (b *fileBackend) elements() int { return b.count }

func (b *fileBackend) sync() error {
	if _, err := b.q.SubmitWait(OpSync, 0, nil); err != nil {
		return err
	}
	return b.crcf.Sync()
}

func (b *fileBackend) close() error {
	err := b.q.Close()
	if cerr := b.crcf.Close(); err == nil {
		err = cerr
	}
	return err
}

// ---------------------------------------------------------------------------
// Store plumbing: opening, recovery, manifest, close.

// RecoveryReport summarizes what the startup scrub found and fixed.
type RecoveryReport struct {
	// Stripes is the sealed-stripe count the store serves after recovery.
	Stripes int
	// HealedCells counts torn or checksum-failing cells rebuilt from their
	// group and rewritten.
	HealedCells int
	// ReencodedStripes counts parity-inconsistent stripes with clean
	// checksums (the WriteAt write-hole) whose parity was re-encoded from
	// their data cells.
	ReencodedStripes int
	// TruncatedStripes counts unrecoverable torn tail stripes dropped.
	TruncatedStripes int
	// DirectActive reports whether the data files actually opened with
	// O_DIRECT (the request downgrades on unaligned element sizes and
	// filesystems that refuse the flag).
	DirectActive bool
	// ScrubSkipped reports that the parity pass was elided (SkipScrub).
	ScrubSkipped bool
}

// backendManifest is the file backend's best-effort metadata: geometry for
// sanity checks and the user-byte length (recovery re-derives the stripe
// count from the files themselves and never trusts this for it).
type backendManifest struct {
	Scheme   string `json:"scheme"`
	Disks    int    `json:"disks"`
	Rows     int    `json:"rows"`
	ElemSize int    `json:"elem_size"`
	Stripes  int    `json:"stripes"`
	Length   int64  `json:"length"`
}

const backendManifestName = "backend.json"

// OpenFileBacked creates (or reopens) a store whose devices live in
// cfg.Dir, one data/checksum file pair per device, fronted by per-device
// submission queues. Reopening runs the recovery scrub described in the
// package comment; the returned report says what it found. All existing
// store APIs behave identically to the memory backend — tests and tools
// select the backend purely by construction.
func OpenFileBacked(scheme *core.Scheme, elemSize int, cfg FileConfig) (*Store, *RecoveryReport, error) {
	if cfg.Dir == "" {
		return nil, nil, fmt.Errorf("store: file backend needs a data directory")
	}
	st, err := New(scheme, elemSize)
	if err != nil {
		return nil, nil, err
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, nil, err
	}
	// A *.new pair is a migration that crashed before its promote renames:
	// the live dev_NN pair is still authoritative, so the stale staging copy
	// is simply dropped.
	if stray, err := filepath.Glob(filepath.Join(cfg.Dir, "dev_*"+stagingSuffix)); err == nil {
		for _, p := range stray {
			os.Remove(p)
		}
	}
	report := &RecoveryReport{ScrubSkipped: cfg.SkipScrub}
	for d := range st.devices {
		be, err := openFileBackend(cfg.Dir, d, elemSize, cfg, false)
		if err != nil {
			st.closeBackends()
			return nil, nil, err
		}
		st.devices[d].be = be
		report.DirectActive = be.direct
	}
	st.dataDir = cfg.Dir
	st.fsync = cfg.fsyncAlways()
	fileCfg := cfg
	st.newBackendFn = func(d int) (devBackend, error) {
		return openFileBackend(fileCfg.Dir, d, elemSize, fileCfg, true)
	}
	st.newStagingBackendFn = func(d int) (devBackend, error) {
		return openFileBackendPaths(devDataFile(fileCfg.Dir, d)+stagingSuffix,
			devCRCFile(fileCfg.Dir, d)+stagingSuffix, elemSize, fileCfg, true)
	}
	st.promoteStagingFn = func(d int) error {
		// The staging pair is a byte-exact copy of the live pair's cells, so
		// even a crash between the two renames leaves equivalent content
		// under both names. Open fds survive the rename.
		if err := os.Rename(devDataFile(fileCfg.Dir, d)+stagingSuffix, devDataFile(fileCfg.Dir, d)); err != nil {
			return err
		}
		if err := os.Rename(devCRCFile(fileCfg.Dir, d)+stagingSuffix, devCRCFile(fileCfg.Dir, d)); err != nil {
			return err
		}
		return syncDir(fileCfg.Dir)
	}
	st.discardStagingFn = func(d int) error {
		os.Remove(devDataFile(fileCfg.Dir, d) + stagingSuffix)
		os.Remove(devCRCFile(fileCfg.Dir, d) + stagingSuffix)
		return nil
	}
	if err := st.recoverFiles(report, cfg.SkipScrub); err != nil {
		st.closeBackends()
		return nil, nil, err
	}
	// Length: the manifest is trusted only when it agrees with the
	// recovered geometry; otherwise the sealed extent is all we know.
	st.length = int64(st.stripes) * int64(st.stripeBytes())
	if man, err := readBackendManifest(cfg.Dir); err == nil {
		if man.Scheme == scheme.Name() && man.Stripes == st.stripes &&
			man.ElemSize == elemSize && man.Length >= 0 && man.Length <= st.length {
			st.length = man.Length
		}
	}
	if err := syncDir(cfg.Dir); err != nil {
		st.closeBackends()
		return nil, nil, err
	}
	report.Stripes = st.stripes
	return st, report, nil
}

// missingCell locates one cell the recovery scrub counts as erased: absent
// from its device, or failing its recorded checksum.
type missingCell struct {
	idx  int // row*n+col within the stripe's cell slice
	pos  layout.Pos
	disk int
}

// gatherStripe reads every checksum-valid cell of a stripe from the backends
// and lists the rest as missing.
func (s *Store) gatherStripe(stripe int) (cells [][]byte, missing []missingCell) {
	lay := s.scheme.Layout()
	n := s.scheme.N()
	cells = make([][]byte, s.scheme.CellsPerStripe())
	for row := 0; row < s.rows; row++ {
		for col := 0; col < n; col++ {
			pos := layout.Pos{Row: row, Col: col}
			disk := lay.Disk(stripe, col)
			data, crc, err := s.devices[disk].be.readCell(stripe*s.rows + row)
			if err != nil || crc32.Checksum(data, castagnoli) != crc {
				missing = append(missing, missingCell{row*n + col, pos, disk})
				continue
			}
			cells[row*n+col] = data
		}
	}
	return cells, missing
}

// recoverFiles derives the sealed extent from the device files and makes it
// decode-clean: cells whose payload and recorded checksum disagree (torn
// data or torn checksum write) and cells one device lost entirely count as
// erasures and are rebuilt from their group; a stripe every group decodes is
// kept, healed cells rewritten and fsynced. Unrecoverable stripes are legal
// only as the torn tail — possibly several of them, since one crashed commit
// can seal a multi-stripe batch — and are truncated there. An unrecoverable
// stripe *followed by recoverable data* is no crash artifact (seals are
// ordered), so recovery refuses loudly rather than silently drop sealed
// stripes.
func (s *Store) recoverFiles(report *RecoveryReport, skipParity bool) error {
	maxStripes := 0
	for _, dev := range s.devices {
		if st := dev.be.slots() / s.rows; st > maxStripes {
			maxStripes = st
		}
	}
	stripes := 0
	healedDisks := make(map[int]bool)
scan:
	for stripe := 0; stripe < maxStripes; stripe++ {
		cells, missing := s.gatherStripe(stripe)
		if len(missing) == 0 {
			if !skipParity {
				ok, err := s.scheme.VerifyStripe(cells)
				if err != nil {
					return err
				}
				if !ok {
					if err := s.reencodeStripe(stripe, cells, healedDisks); err != nil {
						return err
					}
					report.ReencodedStripes++
				}
			}
			stripes++
			continue
		}
		if err := s.scheme.ReconstructStripe(cells); err != nil {
			// A torn tail may span several stripes (one crashed commit seals a
			// whole batch), but it is always a suffix: if any LATER stripe
			// still decodes, this hole sits in the middle of sealed data and
			// truncating would discard it.
			for later := stripe + 1; later < maxStripes; later++ {
				lcells, _ := s.gatherStripe(later)
				if s.scheme.ReconstructStripe(lcells) == nil {
					return fmt.Errorf("store: recovery: stripe %d unrecoverable but stripe %d still decodes (not a torn tail): %w",
						stripe, later, err)
				}
			}
			report.TruncatedStripes = maxStripes - stripe
			break scan
		}
		for _, mc := range missing {
			cell := cells[mc.idx]
			if err := s.devices[mc.disk].be.writeCell(stripe*s.rows+mc.pos.Row,
				cell, crc32.Checksum(cell, castagnoli)); err != nil {
				return fmt.Errorf("store: recovery: rewrite stripe %d cell (%d,%d): %w",
					stripe, mc.pos.Row, mc.pos.Col, err)
			}
			healedDisks[mc.disk] = true
			report.HealedCells++
		}
		stripes++
	}
	for _, dev := range s.devices {
		if tr, ok := dev.be.(truncater); ok {
			if err := tr.truncate(stripes * s.rows); err != nil {
				return err
			}
		}
	}
	if report.HealedCells > 0 || report.ReencodedStripes > 0 || report.TruncatedStripes > 0 {
		for d := range s.devices {
			if err := s.devices[d].be.sync(); err != nil {
				return err
			}
		}
	}
	s.stripes = stripes
	return nil
}

// reencodeStripe repairs a write-hole stripe: checksums are clean but parity
// disagrees with data, so the data cells are taken as truth and every parity
// cell re-encoded and rewritten.
func (s *Store) reencodeStripe(stripe int, cells [][]byte, healedDisks map[int]bool) error {
	lay := s.scheme.Layout()
	n := s.scheme.N()
	shards := make([][]byte, s.scheme.DataPerStripe())
	for e := range shards {
		pos := lay.DataPos(e)
		shards[e] = cells[pos.Row*n+pos.Col]
	}
	enc, err := s.scheme.EncodeStripe(shards)
	if err != nil {
		return err
	}
	for idx, cell := range enc {
		pos := layout.Pos{Row: idx / n, Col: idx % n}
		cur := cells[idx]
		if cur != nil && string(cur) == string(cell) {
			continue
		}
		disk := lay.Disk(stripe, pos.Col)
		if err := s.devices[disk].be.writeCell(stripe*s.rows+pos.Row,
			cell, crc32.Checksum(cell, castagnoli)); err != nil {
			return fmt.Errorf("store: recovery: re-encode stripe %d cell (%d,%d): %w",
				stripe, pos.Row, pos.Col, err)
		}
		healedDisks[disk] = true
	}
	return nil
}

func readBackendManifest(dir string) (backendManifest, error) {
	var man backendManifest
	raw, err := os.ReadFile(filepath.Join(dir, backendManifestName))
	if err != nil {
		return man, err
	}
	if err := json.Unmarshal(raw, &man); err != nil {
		return man, err
	}
	return man, nil
}

// writeBackendManifest writes the manifest atomically (temp file, fsync,
// rename, directory fsync).
func (s *Store) writeBackendManifest() error {
	man := backendManifest{
		Scheme:   s.scheme.Name(),
		Disks:    s.scheme.N(),
		Rows:     s.rows,
		ElemSize: s.elemSize,
		Stripes:  s.stripes,
		Length:   s.length,
	}
	raw, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return atomicWriteFile(filepath.Join(s.dataDir, backendManifestName), raw)
}

// atomicWriteFile durably replaces path with data: write a temp sibling,
// fsync it, rename over path, fsync the directory.
func atomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creations inside it are durable.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Backend names the device backend in use: "mem", "file", or "remote".
func (s *Store) Backend() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.remote {
		return "remote"
	}
	if s.dataDir != "" {
		return "file"
	}
	return "mem"
}

// DataDir returns the file backend's data directory ("" for memory).
func (s *Store) DataDir() string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.dataDir
}

// syncDevices runs the fsync barrier over the given device IDs (all devices
// when ids is nil) under the FsyncAlways discipline. Memory backends and
// FsyncNever stores return immediately. Caller holds mu exclusively.
func (s *Store) syncDevices(ids []int) error {
	if !s.fsync {
		return nil
	}
	start := time.Now()
	if ids == nil {
		for d := range s.devices {
			if err := s.devices[d].be.sync(); err != nil {
				return fmt.Errorf("store: fsync device %d: %w", d, err)
			}
		}
	} else {
		for _, d := range ids {
			if err := s.devices[d].be.sync(); err != nil {
				return fmt.Errorf("store: fsync device %d: %w", d, err)
			}
		}
	}
	s.obs.fsyncBarrier(time.Since(start).Seconds())
	return nil
}

// closeBackends closes every device backend, keeping the first error.
func (s *Store) closeBackends() error {
	var err error
	for _, dev := range s.devices {
		if cerr := dev.be.close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Close flushes the file backend's manifest and closes every device file
// and submission queue. Buffered partial-stripe bytes are NOT sealed —
// Flush first if they should survive (they were never durable). Close on a
// memory-backed store is a no-op. The store must not be used afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.dataDir == "" {
		// Remote-backed stores own no manifest and fsync through the commit
		// barrier, but their backends hold connections that must be released.
		if s.remote {
			return s.closeBackends()
		}
		return nil
	}
	err := s.writeBackendManifest()
	for d := range s.devices {
		if serr := s.devices[d].be.sync(); err == nil {
			err = serr
		}
	}
	if cerr := s.closeBackends(); err == nil {
		err = cerr
	}
	return err
}
