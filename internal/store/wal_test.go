package store

import (
	"bytes"
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/obs"
)

// walStore builds a small-element store so a handful of small objects spans
// stripe boundaries interestingly.
func walStore(t testing.TB) *Store {
	t.Helper()
	return MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 64)
}

// TestWALPutAcksWithReadableOffset: every Put's returned offset must read
// back the object's exact bytes once the ack fires.
func TestWALPutAcksWithReadableOffset(t *testing.T) {
	s := walStore(t)
	w := NewWAL(s, WALConfig{FlushInterval: time.Millisecond})
	defer w.Close()

	rng := rand.New(rand.NewSource(1))
	type put struct {
		data []byte
		off  int64
	}
	var puts []put
	for i := 0; i < 20; i++ {
		data := make([]byte, 1+rng.Intn(3*s.ElementSize()))
		rng.Read(data)
		off, err := w.Put(context.Background(), data)
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
		puts = append(puts, put{data, off})
	}
	for i, p := range puts {
		res, err := s.ReadAt(p.off, len(p.data))
		if err != nil {
			t.Fatalf("read back put %d at %d: %v", i, p.off, err)
		}
		if !bytes.Equal(res.Data, p.data) {
			t.Fatalf("put %d read back wrong bytes at offset %d", i, p.off)
		}
	}
}

// TestWALPacksSmallObjects: many sub-stripe objects committed through the
// WAL must seal far fewer stripes than the one-stripe-per-object Flush path.
func TestWALPacksSmallObjects(t *testing.T) {
	s := walStore(t)
	w := NewWAL(s, WALConfig{})
	objBytes, objects := 64, 64 // one element each; a stripe holds dps of them

	var wg sync.WaitGroup
	errs := make([]error, objects)
	for i := 0; i < objects; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i + 1)}, objBytes)
			_, errs[i] = w.Put(context.Background(), data)
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	perObject := objects // the old path: one padded stripe per object
	if got := s.Stripes(); got >= perObject/2 {
		t.Fatalf("wal sealed %d stripes for %d one-element objects; packing should need far fewer than %d",
			got, objects, perObject)
	}
}

// TestWALConcurrentPutsBatch: concurrent Puts must share group commits — the
// successful-commit count must be well below the object count.
func TestWALConcurrentPutsBatch(t *testing.T) {
	s := walStore(t)
	reg := obs.NewRegistry()
	s.SetMetrics(NewMetrics(reg, s.Scheme().N()))
	w := NewWAL(s, WALConfig{FlushInterval: 2 * time.Millisecond})
	objects := 48

	var wg sync.WaitGroup
	for i := 0; i < objects; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data := bytes.Repeat([]byte{byte(i + 1)}, 64)
			if _, err := w.Put(context.Background(), data); err != nil {
				t.Errorf("put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	commits := reg.Counter("ecfrm_wal_commits_total", "", obs.L("outcome", "ok")).Value()
	if commits == 0 || commits >= int64(objects) {
		t.Fatalf("%d objects committed in %d batches; want 1 <= batches < objects", objects, commits)
	}
	if obj, bts := w.Depth(); obj != 0 || bts != 0 {
		t.Fatalf("closed wal still holds %d objects / %d bytes", obj, bts)
	}
}

// TestWALFaultedCommitRetainsAndRetries: a group commit that trips the fault
// injector must tell its waiters ErrUnavailable, keep the objects queued,
// and commit them on the next (healthy) attempt — the write-path analog of
// the read path's 503-then-retry contract.
func TestWALFaultedCommitRetainsAndRetries(t *testing.T) {
	s := walStore(t)
	fastRetries(s)
	w := NewWAL(s, WALConfig{FlushInterval: time.Hour}) // no timer rescue: explicit Sync drives
	var faulting sync.Mutex
	active := true
	s.SetFaultInjector(stubInjector{write: func(d int) Fault {
		faulting.Lock()
		defer faulting.Unlock()
		if active {
			return Fault{Err: errors.New("injected write fault")}
		}
		return Fault{}
	}})

	data := bytes.Repeat([]byte{0xab}, 3*s.ElementSize())
	done := make(chan error, 1)
	go func() {
		_, err := w.Put(context.Background(), data)
		done <- err
	}()
	// The put queues; force the commit attempt against the faulting plan.
	waitFor(t, func() bool { n, _ := w.Depth(); return n == 1 })
	if err := w.Sync(); err == nil {
		t.Fatal("faulted group commit reported success")
	}
	err := <-done
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put got %v; want ErrUnavailable", err)
	}
	if n, b := w.Depth(); n != 1 || b != len(data) {
		t.Fatalf("faulted commit dropped the entry: depth %d objects / %d bytes", n, b)
	}

	// Clear the faults; the retained entry must commit on the next attempt.
	faulting.Lock()
	active = false
	faulting.Unlock()
	if err := w.Sync(); err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	if n, _ := w.Depth(); n != 0 {
		t.Fatalf("retry left %d entries queued", n)
	}
	s.SetFaultInjector(nil)
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatalf("read back retained object: %v", err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("retained object committed with wrong bytes")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestWALFaultedCommitNeverDoubleAppends: when Append seals some stripes and
// then faults, the retry must hand the store only the un-handed delta —
// the committed bytes must contain exactly one copy of every object.
func TestWALFaultedCommitNeverDoubleAppends(t *testing.T) {
	s := walStore(t)
	fastRetries(s)
	w := NewWAL(s, WALConfig{FlushInterval: time.Hour})

	// First object fills several stripes; fault the seal partway through by
	// failing writes on device 5 after a few clean gates.
	var mu sync.Mutex
	gates, failFrom, active := 0, 30, true
	s.SetFaultInjector(stubInjector{write: func(d int) Fault {
		mu.Lock()
		defer mu.Unlock()
		if !active {
			return Fault{}
		}
		gates++
		if gates > failFrom {
			return Fault{Err: errors.New("seal fault")}
		}
		return Fault{}
	}})

	rng := rand.New(rand.NewSource(7))
	first := make([]byte, 3*s.stripeBytes()+s.ElementSize())
	rng.Read(first)
	done := make(chan error, 1)
	go func() {
		_, err := w.Put(context.Background(), first)
		done <- err
	}()
	waitFor(t, func() bool { n, _ := w.Depth(); return n == 1 })
	if err := w.Sync(); err == nil {
		t.Fatal("partially faulted commit reported success")
	}
	if err := <-done; !errors.Is(err, ErrUnavailable) {
		t.Fatalf("put got %v; want ErrUnavailable", err)
	}

	// Heal the plan and queue a second object; the retry commits both.
	mu.Lock()
	active = false
	mu.Unlock()
	second := make([]byte, 2*s.ElementSize())
	rng.Read(second)
	off2, err := w.Put(context.Background(), second)
	if err == nil {
		err = w.Sync()
	}
	if err != nil {
		t.Fatalf("retry commit: %v", err)
	}
	s.SetFaultInjector(nil)

	if want := int64(len(first)); off2 != want {
		t.Fatalf("second object at offset %d; want %d (exactly one copy of the first)", off2, want)
	}
	res, err := s.ReadAt(0, len(first)+len(second))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(res.Data[:len(first)], first) || !bytes.Equal(res.Data[len(first):], second) {
		t.Fatal("committed bytes are not exactly first‖second")
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestWALClosedRejectsPuts: Put after Close fails with ErrWALClosed.
func TestWALClosedRejectsPuts(t *testing.T) {
	s := walStore(t)
	w := NewWAL(s, WALConfig{})
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := w.Put(context.Background(), []byte{1}); !errors.Is(err, ErrWALClosed) {
		t.Fatalf("put after close: %v; want ErrWALClosed", err)
	}
}

// TestWALPutContextCancel: an abandoned Put returns the context error, and
// the entry still commits (the bytes were accepted into the log).
func TestWALPutContextCancel(t *testing.T) {
	s := walStore(t)
	w := NewWAL(s, WALConfig{FlushInterval: time.Hour})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	data := bytes.Repeat([]byte{7}, 128)
	if _, err := w.Put(ctx, data); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled put: %v; want context.Canceled", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatalf("read back abandoned put: %v", err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("abandoned put's bytes were not committed")
	}
}

// TestWALReplayMatchesLive: replaying the log into a fresh store reproduces
// the live store's committed extent byte-for-byte, across multiple batches.
func TestWALReplayMatchesLive(t *testing.T) {
	s := walStore(t)
	w := NewWAL(s, WALConfig{FlushInterval: time.Millisecond})
	rng := rand.New(rand.NewSource(3))
	var all [][]byte
	for i := 0; i < 17; i++ {
		data := make([]byte, 1+rng.Intn(2*s.stripeBytes()))
		rng.Read(data)
		all = append(all, data)
		if _, err := w.Put(context.Background(), data); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	replay := walStore(t)
	extents, err := ReplayWAL(w.LogSnapshot(), replay)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(extents) != len(all) {
		t.Fatalf("replay committed %d objects; want %d", len(extents), len(all))
	}
	if lw, lr := s.NextOffset(), replay.NextOffset(); lw != lr {
		t.Fatalf("replayed extent %d != live extent %d", lr, lw)
	}
	sealed := int(s.NextOffset())
	lres, err := s.ReadAt(0, sealed)
	if err != nil {
		t.Fatalf("live read: %v", err)
	}
	rres, err := replay.ReadAt(0, sealed)
	if err != nil {
		t.Fatalf("replay read: %v", err)
	}
	if !bytes.Equal(lres.Data, rres.Data) {
		t.Fatal("replayed store differs from live store")
	}
	for i, e := range extents {
		res, err := replay.ReadAt(e.Off, e.Size)
		if err != nil {
			t.Fatalf("replay extent %d: %v", i, err)
		}
		if !bytes.Equal(res.Data, all[i]) {
			t.Fatalf("replay extent %d holds wrong bytes", i)
		}
	}
}

// waitFor polls cond for up to a second.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// TestWALDepthGaugeMoves: the queue-depth gauges must reflect queued entries
// and drain to zero after commit.
func TestWALDepthGaugeMoves(t *testing.T) {
	s := walStore(t)
	reg := obs.NewRegistry()
	s.SetMetrics(NewMetrics(reg, s.Scheme().N()))
	w := NewWAL(s, WALConfig{FlushInterval: time.Hour})
	gauge := reg.Gauge("ecfrm_wal_queued_objects", "")

	done := make(chan error, 1)
	go func() {
		_, err := w.Put(context.Background(), []byte{1, 2, 3})
		done <- err
	}()
	waitFor(t, func() bool { return gauge.Value() == 1 })
	if err := w.Sync(); err != nil {
		t.Fatalf("sync: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("put: %v", err)
	}
	if v := gauge.Value(); v != 0 {
		t.Fatalf("depth gauge %v after drain; want 0", v)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// BenchmarkWALSmallPuts measures batched small-object throughput against the
// per-object Append+Flush path (see also ecfrmbench -writepath).
func BenchmarkWALSmallPuts(b *testing.B) {
	for _, batched := range []bool{false, true} {
		name := "per-object"
		if batched {
			name = "wal"
		}
		b.Run(name, func(b *testing.B) {
			s := MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 4096)
			obj := bytes.Repeat([]byte{0x5a}, 4096)
			b.SetBytes(int64(len(obj)))
			b.ResetTimer()
			if batched {
				w := NewWAL(s, WALConfig{})
				var wg sync.WaitGroup
				workers := 8
				per := b.N / workers
				for g := 0; g < workers; g++ {
					wg.Add(1)
					go func() {
						defer wg.Done()
						for i := 0; i < per; i++ {
							if _, err := w.Put(context.Background(), obj); err != nil {
								b.Error(err)
								return
							}
						}
					}()
				}
				wg.Wait()
				if err := w.Close(); err != nil {
					b.Fatal(err)
				}
			} else {
				for i := 0; i < b.N; i++ {
					if err := s.Append(obj); err != nil {
						b.Fatal(err)
					}
					if err := s.Flush(); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
