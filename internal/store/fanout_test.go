package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/obs"
	"repro/internal/rs"
)

// fanoutGrid is the {RS, LRC, CRS} × {standard, rotated, ecfrm} sweep the
// fan-out property tests cover.
func fanoutGrid(t testing.TB) map[string]*core.Scheme {
	t.Helper()
	cells := make(map[string]*core.Scheme)
	for cname, c := range map[string]codes.Code{
		"rs":  rs.Must(6, 3),
		"lrc": lrc.Must(6, 2, 2),
		"crs": crs.Must(6, 3),
	} {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM} {
			cells[fmt.Sprintf("%s-%s", cname, form)] = core.MustScheme(c, form)
		}
	}
	return cells
}

// fanoutLeakCheck asserts the test leaves no goroutines behind, giving
// hedged stragglers a grace window to drain.
func fanoutLeakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

// TestFanoutMatchesSequentialProperty is the satellite byte-identity
// property: across every code×layout cell, with random in-tolerance disk
// failures or random corrupt cells, the fan-out executor (inline heuristic,
// forced threading, and hedged) returns exactly the bytes the sequential
// executor returns — which are exactly the payload's. Runs under -race via
// `make race-io`.
func TestFanoutMatchesSequentialProperty(t *testing.T) {
	fanoutLeakCheck(t)
	optsList := []ReadOptions{
		{Sequential: true},
		{}, // fan-out defaults: inline heuristic decides
		{Concurrency: 2},
		{Concurrency: 8},
		{Concurrency: 8, Hedge: HedgeConfig{Enabled: true, Quantile: 0.9, Min: 5 * time.Millisecond}},
	}
	for name, scheme := range fanoutGrid(t) {
		t.Run(name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(500))
			for trial := 0; trial < 6; trial++ {
				st := MustNew(scheme, 64)
				st.SetRetryPolicy(200*time.Microsecond, 2)
				payload := make([]byte, 4*scheme.DataPerStripe()*64)
				rng.Read(payload)
				if err := st.Append(payload); err != nil {
					t.Fatal(err)
				}
				if trial%2 == 0 {
					// Failure trial: knock out a random set of disks, never
					// past tolerance.
					for i := 0; i < rng.Intn(scheme.FaultTolerance()+1); i++ {
						st.FailDiskWithinTolerance(rng.Intn(scheme.N()))
					}
				} else {
					// Corruption trial (disks all healthy, so heals always
					// stay within tolerance).
					pos := scheme.Layout().DataPos(rng.Intn(scheme.DataPerStripe()))
					if err := st.CorruptCell(rng.Intn(st.Stripes()), pos); err != nil {
						t.Fatal(err)
					}
				}
				for r := 0; r < 8; r++ {
					off := rng.Intn(len(payload) - 1)
					ln := 1 + rng.Intn(len(payload)-off)
					opts := optsList[r%len(optsList)]
					res, err := st.ReadAtCtx(context.Background(), int64(off), ln, opts)
					if err != nil {
						t.Fatalf("trial %d read %d opts %+v: %v", trial, r, opts, err)
					}
					if !bytes.Equal(res.Data, payload[off:off+ln]) {
						t.Fatalf("trial %d read %d opts %+v: wrong bytes at [%d,%d)",
							trial, r, opts, off, off+ln)
					}
				}
			}
		})
	}
}

// TestFanoutConcurrentSharedStore hammers one store from many goroutines
// mixing executors while a device persistently errors (forcing replans and
// degraded decodes on the shared buffer arena). Any double-recycled buffer
// would alias two readers' shards and surface as wrong bytes or a race.
func TestFanoutConcurrentSharedStore(t *testing.T) {
	fanoutLeakCheck(t)
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := MustNew(sch, 256)
	st.SetRetryPolicy(200*time.Microsecond, 1)
	payload := make([]byte, 6*sch.DataPerStripe()*256)
	rand.New(rand.NewSource(501)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(stubInjector{read: onlyDev(2, Fault{Err: errors.New("io error")})})

	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func(g int) {
			rng := rand.New(rand.NewSource(int64(600 + g)))
			opts := ReadOptions{Concurrency: 4}
			if g%2 == 0 {
				opts = ReadOptions{Sequential: true}
			}
			for i := 0; i < 40; i++ {
				off := rng.Intn(len(payload) - 1)
				ln := 1 + rng.Intn(2048)
				if off+ln > len(payload) {
					ln = len(payload) - off
				}
				res, err := st.ReadAtCtx(context.Background(), int64(off), ln, opts)
				if err != nil {
					errs <- fmt.Errorf("reader %d: %v", g, err)
					return
				}
				if !bytes.Equal(res.Data, payload[off:off+ln]) {
					errs <- fmt.Errorf("reader %d: wrong bytes at [%d,%d)", g, off, off+ln)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < 8; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestFanoutBoundedAllocs is the satellite alloc-regression gate: on the
// fan-out path the per-stripe cell containers and decoded shards come from
// pools, so steady-state allocations per read are a small constant — they
// must not scale with the number of cells fetched. (The result buffer, plan,
// and ReadResult are necessarily fresh per call.)
func TestFanoutBoundedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts under the race detector, so alloc counts are meaningless")
	}
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := MustNew(sch, 4096)
	payload := make([]byte, 4*sch.DataPerStripe()*4096)
	rand.New(rand.NewSource(502)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}

	measure := func(name string, length int, opts ReadOptions) float64 {
		t.Helper()
		// Warm the pools.
		if _, err := st.ReadAtCtx(context.Background(), 0, length, opts); err != nil {
			t.Fatalf("%s warmup: %v", name, err)
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := st.ReadAtCtx(context.Background(), 0, length, opts); err != nil {
				t.Fatal(err)
			}
		})
	}

	small := measure("small", st.ElementSize(), ReadOptions{})
	large := measure("large", 4*sch.DataPerStripe()*st.ElementSize(), ReadOptions{})
	if small > 40 {
		t.Errorf("1-element fan-out read: %v allocs/op, want <= 40", small)
	}
	// 24 data elements across 4 stripes: if per-cell or per-stripe slices
	// were still allocated per request this would blow far past the bound.
	if large > small+60 {
		t.Errorf("24-element fan-out read: %v allocs/op vs %v for 1 element — per-cell allocation crept back",
			large, small)
	}

	// Degraded reads decode lost shards; those buffers must come from (and
	// return to) the arena, so the fan-out executor adds only a small
	// constant over the sequential one on the identical workload (the
	// planner's own allocations dominate both and are out of scope here).
	st.FailDiskWithinTolerance(0)
	degSeq := measure("degraded-seq", 4*sch.DataPerStripe()*st.ElementSize(), ReadOptions{Sequential: true})
	degFan := measure("degraded-fanout", 4*sch.DataPerStripe()*st.ElementSize(), ReadOptions{})
	if degFan > degSeq+60 {
		t.Errorf("degraded fan-out read: %v allocs/op vs %v sequential — decoded shards are not pooled",
			degFan, degSeq)
	}
}

// TestFanoutReplanRecyclesBuffers is the satellite bugfix regression: when a
// pass discovers an unavailable device and replans, every already-fetched
// container must be recycled exactly once before the retry. A leak would
// grow allocations per replanning read; a double-put would corrupt the pool
// and surface as wrong bytes in the property tests. Here we count container
// pool traffic directly via a replan-heavy workload.
func TestFanoutReplanRecyclesBuffers(t *testing.T) {
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := MustNew(sch, 64)
	st.SetRetryPolicy(200*time.Microsecond, 1)
	payload := make([]byte, 4*sch.DataPerStripe()*64)
	rand.New(rand.NewSource(503)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	// Device 1 always errors: every read plans normally, fails, replans
	// degraded around it — exercising the recycle-before-continue path.
	st.SetFaultInjector(stubInjector{read: onlyDev(1, Fault{Err: errors.New("io error")})})
	for i := 0; i < 30; i++ {
		res, err := st.ReadAtCtx(context.Background(), 0, len(payload), ReadOptions{Concurrency: 4})
		if err != nil {
			t.Fatalf("replanning read %d: %v", i, err)
		}
		if !bytes.Equal(res.Data, payload) {
			t.Fatalf("replanning read %d returned wrong bytes", i)
		}
	}
	if st.Metrics() != nil {
		t.Fatal("test assumes no metrics installed")
	}
}

// TestFanoutStuckOpCancellable is the satellite fault-injection-safety test:
// a stuck-op fault sleeping toward the op timeout must be cut short by
// context cancellation, and the read must return promptly with the context's
// error — no goroutine parked in a sleep it cannot leave.
func TestFanoutStuckOpCancellable(t *testing.T) {
	fanoutLeakCheck(t)
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := MustNew(sch, 64)
	st.SetRetryPolicy(5*time.Second, 0) // stuck op would sleep 5s uncancelled
	payload := make([]byte, sch.DataPerStripe()*64)
	rand.New(rand.NewSource(504)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(stubInjector{read: func(int) Fault { return Fault{Stuck: true} }})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := st.ReadAtCtx(ctx, 0, len(payload), ReadOptions{Concurrency: 4})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("cancellation took %v; stuck-op sleep is not cancellable", elapsed)
	}
}

// TestHedgeBeatsStuckDevice: with one device injected to straggle far past
// the hedge delay, a hedged fan-out read must rebuild the straggler's cells
// from a parity-equivalent recovery set and finish in hedge time, not
// straggler time — with correct bytes, fired/won counters moving, and the
// cancelled primary joined before return.
func TestHedgeBeatsStuckDevice(t *testing.T) {
	fanoutLeakCheck(t)
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := MustNew(sch, 4096)
	st.SetRetryPolicy(2*time.Second, 0)
	reg := obs.NewRegistry()
	m := NewMetrics(reg, sch.N())
	st.SetMetrics(m)
	payload := make([]byte, 2*sch.DataPerStripe()*4096)
	rand.New(rand.NewSource(505)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(stubInjector{read: onlyDev(0, Fault{Delay: 400 * time.Millisecond})})

	opts := ReadOptions{
		Concurrency: 8,
		Hedge:       HedgeConfig{Enabled: true, Quantile: 0.5, Min: time.Millisecond, Max: 20 * time.Millisecond},
	}
	start := time.Now()
	res, err := st.ReadAtCtx(context.Background(), 0, len(payload), opts)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged read: %v", err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if elapsed > 300*time.Millisecond {
		t.Fatalf("hedged read took %v; the hedge did not beat the 400ms straggler", elapsed)
	}
	if m.hedgeFired.Value() == 0 {
		t.Fatal("hedge fired counter did not move")
	}
	if m.hedgeWon.Value() == 0 {
		t.Fatal("hedge won counter did not move")
	}
}

// TestHedgeStragglersJoinBeforeReturn: a hedged read whose primary is stuck
// must not leave the primary goroutine running after ReadAtCtx returns —
// the loser is cancelled and joined, so the leak check sees a quiet world.
func TestHedgeStragglersJoinBeforeReturn(t *testing.T) {
	fanoutLeakCheck(t)
	sch := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	st := MustNew(sch, 4096)
	st.SetRetryPolicy(10*time.Second, 0) // an unjoined stuck primary would outlive the test
	payload := make([]byte, sch.DataPerStripe()*4096)
	rand.New(rand.NewSource(506)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	st.SetFaultInjector(stubInjector{read: onlyDev(3, Fault{Stuck: true})})

	opts := ReadOptions{
		Concurrency: 8,
		Hedge:       HedgeConfig{Enabled: true, Min: time.Millisecond, Max: 10 * time.Millisecond},
	}
	start := time.Now()
	res, err := st.ReadAtCtx(context.Background(), 0, len(payload), opts)
	if err != nil {
		t.Fatalf("hedged read around stuck device: %v", err)
	}
	if !bytes.Equal(res.Data, payload) {
		t.Fatal("hedged read returned wrong bytes")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("read took %v; stuck primary was not cancelled", elapsed)
	}
}

// TestFanoutCoalescing: run construction merges same-device cells at
// adjacent on-disk offsets. With the standard layout (one row per stripe) a
// multi-stripe read collapses to exactly one run per device; with EC-FRM's
// rotated multi-row stripes, runs never span an offset gap.
func TestFanoutCoalescing(t *testing.T) {
	sch := core.MustScheme(rs.Must(6, 3), layout.FormStandard)
	st := MustNew(sch, 64)
	payload := make([]byte, 5*sch.DataPerStripe()*64)
	rand.New(rand.NewSource(507)).Read(payload)
	if err := st.Append(payload); err != nil {
		t.Fatal(err)
	}
	plan, err := sch.PlanNormalRead(0, 5*sch.DataPerStripe())
	if err != nil {
		t.Fatal(err)
	}
	queues := buildRuns(sch, plan.Reads)
	for _, q := range queues {
		if len(q.runs) != 1 {
			t.Fatalf("standard layout: device %d got %d runs, want 1 coalesced run", q.dev, len(q.runs))
		}
		for _, run := range q.runs {
			for i := 1; i < len(run.slots); i++ {
				if run.slots[i].off != run.slots[i-1].off+1 {
					t.Fatalf("device %d: run has offset gap %d -> %d",
						q.dev, run.slots[i-1].off, run.slots[i].off)
				}
			}
		}
	}

	ecfrm := core.MustScheme(rs.Must(6, 3), layout.FormECFRM)
	plan, err = ecfrm.PlanNormalRead(0, 2*ecfrm.DataPerStripe())
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range buildRuns(ecfrm, plan.Reads) {
		for _, run := range q.runs {
			for i := 1; i < len(run.slots); i++ {
				if run.slots[i].off != run.slots[i-1].off+1 {
					t.Fatalf("ecfrm: device %d run has offset gap %d -> %d",
						q.dev, run.slots[i-1].off, run.slots[i].off)
				}
			}
		}
	}
}

// TestReadAtCtxRespectsSealedExtent: the fan-out range validation matches
// the sequential executor's contract.
func TestReadAtCtxRespectsSealedExtent(t *testing.T) {
	st := testStore(t, layout.FormECFRM)
	fill(t, st, 1000, 508)
	sealed := int64(st.Stripes()) * int64(st.Scheme().DataPerStripe()*st.ElementSize())
	if _, err := st.ReadAtCtx(context.Background(), sealed-1, 2, ReadOptions{}); !errors.Is(err, ErrRange) {
		t.Fatalf("read past sealed extent: err = %v, want ErrRange", err)
	}
	if _, err := st.ReadAtCtx(context.Background(), -1, 1, ReadOptions{}); !errors.Is(err, ErrRange) {
		t.Fatalf("negative offset: err = %v, want ErrRange", err)
	}
	res, err := st.ReadAtCtx(context.Background(), 0, 0, ReadOptions{})
	if err != nil || len(res.Data) != 0 {
		t.Fatalf("zero-length read = (%v, %v), want empty success", res, err)
	}
}
