//go:build !linux

package store

// oDirectFlag is zero off Linux: O_DIRECT is not portable, so the file
// backend silently serves buffered I/O there (RecoveryReport.DirectActive
// reports the downgrade).
const oDirectFlag = 0
