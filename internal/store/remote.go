// Remote cell backends: the seam that turns a single-process Store into the
// access half of a networked cluster.
//
// A CellBackend is a device whose cells live somewhere else — in practice on
// a data node reached over HTTP (internal/gateway), or inside an in-process
// node during tests. NewWithCellBackends builds a Store whose devices all
// delegate to such backends, which means the *entire* existing machinery —
// the fan-out executor's coalesced runs, hedged reads racing parity rebuild,
// degraded replanning on ErrUnavailable, group-commit WAL sealing through
// the two-phase gate, heal, scrub, and startup recovery — operates across
// the network unchanged. A dead node surfaces as ErrUnavailable from its
// backend, exactly like a failed local disk, and the replan loop routes
// around it.
package store

import (
	"fmt"

	"repro/internal/core"
)

// ErrCellMissing is the sentinel a CellBackend returns (possibly wrapped)
// for a read of a slot it has never stored. It is distinct from transport
// errors: a missing cell means "ask the group to reconstruct", an arbitrary
// error means "this device is unavailable, replan".
var ErrCellMissing = errCellMissing

// CellBackend is a device whose cells live remotely. Slot indices are the
// same dense stripe*rows+row layout every backend uses; data buffers are
// count contiguous elemSize cells. Implementations must be safe for
// concurrent use — the fan-out executor issues reads from many goroutines.
type CellBackend interface {
	// ReadRun returns count cells starting at slot as one contiguous buffer
	// of count*elemSize bytes plus each cell's recorded checksum. A slot the
	// backend never stored fails with an error wrapping ErrCellMissing.
	ReadRun(slot, count int) (data []byte, crcs []uint32, err error)
	// WriteRun stores count contiguous cells (flattened into data) and their
	// checksums starting at slot. Checksums are stored verbatim, never
	// recomputed — the store side owns integrity.
	WriteRun(slot int, data []byte, crcs []uint32) error
	// Sync makes everything written so far durable on the remote device (the
	// commit barrier of the two-phase gate, forwarded node-side).
	Sync() error
	// Truncate drops every slot at or above the bound (recovery's torn-tail
	// cut, and rebuilds clearing a replacement device).
	Truncate(slots int) error
	// Slots returns the exclusive upper bound of occupied slot indices.
	Slots() int
	// Elements returns how many slots hold a cell.
	Elements() int
	// Close releases the backend's resources (connections, files).
	Close() error
}

// cellAdapter wires a CellBackend into the unexported devBackend seam,
// including the bulk runIO and truncater capabilities, so Device treats a
// remote disk exactly like a local file pair.
type cellAdapter struct {
	cb   CellBackend
	elem int
}

func (a *cellAdapter) readCell(slot int) ([]byte, uint32, error) {
	data, crcs, err := a.cb.ReadRun(slot, 1)
	if err != nil {
		return nil, 0, err
	}
	if len(data) != a.elem || len(crcs) != 1 {
		return nil, 0, fmt.Errorf("store: remote cell %d: malformed response (%d bytes, %d crcs)",
			slot, len(data), len(crcs))
	}
	return data[:a.elem:a.elem], crcs[0], nil
}

func (a *cellAdapter) writeCell(slot int, data []byte, crc uint32) error {
	if err := a.cb.WriteRun(slot, data, []uint32{crc}); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return nil
}

// corrupt damages the stored payload while re-writing the original recorded
// checksum — no node-side endpoint needed, since nodes store checksums
// verbatim.
func (a *cellAdapter) corrupt(slot int) error {
	data, crcs, err := a.cb.ReadRun(slot, 1)
	if err != nil {
		return err
	}
	flipped := append([]byte(nil), data...)
	flipped[0] ^= 0xFF
	return a.cb.WriteRun(slot, flipped, crcs)
}

func (a *cellAdapter) readRun(slot, count int) ([]byte, []uint32, error) {
	data, crcs, err := a.cb.ReadRun(slot, count)
	if err != nil {
		return nil, nil, err
	}
	if len(data) != count*a.elem || len(crcs) != count {
		return nil, nil, fmt.Errorf("store: remote run %d+%d: malformed response (%d bytes, %d crcs)",
			slot, count, len(data), len(crcs))
	}
	return data, crcs, nil
}

// writeRun (like writeCell and sync) wraps transport failures in
// ErrUnavailable: a node that cannot be reached is a transiently unavailable
// device, so WAL commit aborts surface to clients as 503 + Retry-After, not
// opaque 500s.
func (a *cellAdapter) writeRun(slot int, cells [][]byte, crcs []uint32) error {
	flat := make([]byte, 0, len(cells)*a.elem)
	for _, c := range cells {
		flat = append(flat, c...)
	}
	if err := a.cb.WriteRun(slot, flat, crcs); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return nil
}

func (a *cellAdapter) truncate(slots int) error { return a.cb.Truncate(slots) }
func (a *cellAdapter) slots() int               { return a.cb.Slots() }
func (a *cellAdapter) elements() int            { return a.cb.Elements() }
func (a *cellAdapter) close() error             { return a.cb.Close() }

func (a *cellAdapter) sync() error {
	if err := a.cb.Sync(); err != nil {
		return fmt.Errorf("%w: %v", ErrUnavailable, err)
	}
	return nil
}

// CellStoreConfig configures a remote-backed store.
type CellStoreConfig struct {
	// Sync runs the commit-path durability barrier: after a seal's writes,
	// CellBackend.Sync is called on every touched device before the stripe
	// is published — the node-side fsync of the two-phase gate.
	Sync bool
	// Recover re-derives the sealed extent from the backends at open (the
	// gateway-restart path): torn cells healed from their group, write-hole
	// stripes re-encoded, torn tails truncated — the same scrub
	// OpenFileBacked runs over local files.
	Recover bool
	// SkipScrub elides Recover's parity verification pass over clean-looking
	// stripes.
	SkipScrub bool
}

// NewWithCellBackends creates a store whose devices delegate to the
// CellBackends returned by open(disk). All store APIs — appends, fan-out and
// hedged reads, degraded planning, WAL commit, heal, rebuild — behave
// identically to local backends; Backend() reports "remote". open is also
// retained as the device factory RecoverDisk uses for a replacement backend
// (the returned backend is truncated to empty first).
func NewWithCellBackends(scheme *core.Scheme, elemSize int, cfg CellStoreConfig, open func(disk int) (CellBackend, error)) (*Store, *RecoveryReport, error) {
	st, err := New(scheme, elemSize)
	if err != nil {
		return nil, nil, err
	}
	opened := 0
	for d := range st.devices {
		cb, err := open(d)
		if err != nil {
			for i := 0; i < opened; i++ {
				st.devices[i].be.close()
			}
			return nil, nil, fmt.Errorf("store: open remote device %d: %w", d, err)
		}
		st.devices[d].be = &cellAdapter{cb: cb, elem: elemSize}
		opened++
	}
	st.remote = true
	st.fsync = cfg.Sync
	st.newBackendFn = func(d int) (devBackend, error) {
		cb, err := open(d)
		if err != nil {
			return nil, err
		}
		if err := cb.Truncate(0); err != nil {
			cb.Close()
			return nil, err
		}
		return &cellAdapter{cb: cb, elem: elemSize}, nil
	}
	report := &RecoveryReport{ScrubSkipped: cfg.SkipScrub}
	if cfg.Recover {
		if err := st.recoverFiles(report, cfg.SkipScrub); err != nil {
			st.closeBackends()
			return nil, nil, err
		}
		st.length = int64(st.stripes) * int64(st.stripeBytes())
	}
	report.Stripes = st.stripes
	return st, report, nil
}

// SetDeviceNodes tells the degraded-read planner which placement node serves
// each device. When set, the inflight bias fed to PlanDegradedReadBiased is
// aggregated per node — every disk of a busy or slow node carries that
// node's whole queue depth — because in the networked regime contention
// lives at the node (its NIC, its process), not the individual disk.
func (s *Store) SetDeviceNodes(nodeOf []int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if nodeOf == nil {
		s.nodeOf = nil
		return nil
	}
	if len(nodeOf) != len(s.devices) {
		return fmt.Errorf("store: device-node map has %d entries for %d devices", len(nodeOf), len(s.devices))
	}
	s.nodeOf = append([]int(nil), nodeOf...)
	return nil
}
