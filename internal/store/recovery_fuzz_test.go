package store

import (
	"bytes"
	"math/rand"
	"os"
	"testing"
)

// FuzzDiskRecovery crash-tests the file backend the way FuzzWALReplay
// crash-tests the log: fill a file-backed store, then model a crash by
// truncating every device's data and checksum files to arbitrary lengths no
// shorter than a chosen barrier stripe T (the last fsync barrier the crash
// provably survived — writes before a barrier are durable, writes after may
// be torn to any extent, including unevenly across devices and between a
// cell and its sidecar checksum). Reopening must always succeed, keep at
// least the T durable stripes, serve a byte-identical prefix of the original
// data, and leave a store a second reopen finds nothing wrong with.
func FuzzDiskRecovery(f *testing.F) {
	f.Add(int64(1), uint8(4), uint16(0))
	f.Add(int64(2), uint8(1), uint16(9999))
	f.Add(int64(3), uint8(6), uint16(31000))
	f.Add(int64(4), uint8(3), uint16(777))
	f.Add(int64(5), uint8(5), uint16(54321))
	f.Fuzz(func(t *testing.T, seed int64, nStripes uint8, cutSeed uint16) {
		stripes := 1 + int(nStripes%6)
		sch := fileScheme()
		stripeBytes := sch.DataPerStripe() * testElemSize
		rows := rowsOf(sch)
		dir := t.TempDir()

		st, _, err := OpenFileBacked(sch, testElemSize, FileConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, stripes*stripeBytes)
		rand.New(rand.NewSource(seed)).Read(data)
		if err := st.Append(data); err != nil {
			t.Fatal(err)
		}
		if err := st.Flush(); err != nil {
			t.Fatal(err)
		}
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}

		// Crash: everything up to barrier stripe T is durable; each device's
		// files independently keep an arbitrary amount of the rest.
		rng := rand.New(rand.NewSource(seed ^ int64(cutSeed)<<17))
		barrier := rng.Intn(stripes + 1)
		for d := 0; d < sch.N(); d++ {
			durableData := int64(barrier * rows * testElemSize)
			fullData := int64(stripes * rows * testElemSize)
			if err := os.Truncate(devDataFile(dir, d),
				durableData+rng.Int63n(fullData-durableData+1)); err != nil {
				t.Fatal(err)
			}
			durableCRC := int64(barrier * rows * 4)
			fullCRC := int64(stripes * rows * 4)
			if err := os.Truncate(devCRCFile(dir, d),
				durableCRC+rng.Int63n(fullCRC-durableCRC+1)); err != nil {
				t.Fatal(err)
			}
		}

		st2, rep, err := OpenFileBacked(sch, testElemSize, FileConfig{Dir: dir})
		if err != nil {
			t.Fatalf("recovery failed (barrier %d of %d): %v", barrier, stripes, err)
		}
		if rep.Stripes < barrier {
			t.Fatalf("recovered %d stripes, barrier guaranteed %d", rep.Stripes, barrier)
		}
		if n := int(st2.Len()); n > 0 {
			res, err := st2.ReadAt(0, n)
			if err != nil {
				t.Fatalf("read recovered extent: %v", err)
			}
			if !bytes.Equal(res.Data, data[:n]) {
				t.Fatalf("recovered extent diverges from written data (barrier %d, kept %d stripes)",
					barrier, rep.Stripes)
			}
		}
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}

		st3, rep3, err := OpenFileBacked(sch, testElemSize, FileConfig{Dir: dir})
		if err != nil {
			t.Fatal(err)
		}
		if rep3.HealedCells != 0 || rep3.TruncatedStripes != 0 || rep3.ReencodedStripes != 0 {
			t.Fatalf("recovery not idempotent: second open found %+v", rep3)
		}
		st3.Close()
	})
}
