// Group-committed write path: a write-ahead log and packing layer that turns
// many small synchronous appends into few full-stripe seals.
//
// The store's Append/Flush path is correct but brutal for small objects: each
// object pays a whole-stripe encode and a whole-group device write (every
// cell of every row), so a 4 KiB object on an RS(6,3) ecfrm layout writes 27
// cells where packing would amortize it to ~1.5. The WAL fixes the write
// amplification and the serialization at once:
//
//   - Put appends the object to an in-memory log and a FIFO queue and blocks
//     on a per-object ack. Many goroutines enqueue concurrently; nobody holds
//     the store's exclusive lock while waiting.
//   - A group commit drains the queue as one batch: the concatenated bytes go
//     through the store's ordinary Append (full-stripe encode via the
//     zero-alloc kernels) and one Flush pads a single shared tail. Every
//     waiter then learns its object's assigned offset at once.
//   - Commits trigger by size (BatchBytes of queued data) or by time
//     (FlushInterval after the first queued object), whichever comes first.
//     The triggering Put becomes the commit leader — there is no resident
//     flusher goroutine; an idle WAL owns no timers and no goroutines.
//
// Fault semantics compose with the store's two-phase gated writes: a seal
// that trips the fault injector aborts whole, so a faulted group commit
// commits nothing new. Waiters of that batch are told ErrUnavailable (the
// condition is transient — HTTP surfaces it as 503 + Retry-After, exactly
// like the read path) but their bytes are retained: the log still holds the
// records and the queue still holds the entries, so the next commit attempt
// — triggered by a later Put or the retry timer — re-seals them. Because the
// store's own pending buffer survives a faulted seal, the WAL tracks how much
// of the current batch has already been handed to the store and only hands
// over the delta on retry: bytes are never appended twice.
//
// The log is replayable: ReplayWAL applied to a log snapshot rebuilds the
// committed store byte-for-byte (commit records mark exactly which prefix of
// objects sealed, and sealing is deterministic), which FuzzWALReplay checks
// under random object sizes, batch boundaries, and crash points.
//
// While a WAL is attached to a store, all appends must go through it: the
// offset bookkeeping assumes no other writer advances NextOffset between
// hand-over and commit. (Reads, WriteAt updates, healing, and recovery touch
// sealed stripes only and compose freely.)
package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"
)

// ErrWALClosed is returned by Put after Close.
var ErrWALClosed = errors.New("store: wal closed")

// Default WAL thresholds: a batch commits once a stripe's worth of user data
// has queued, or DefaultFlushInterval after the first object queued,
// whichever comes first.
const DefaultFlushInterval = 2 * time.Millisecond

// WALConfig tunes the group-commit thresholds. The zero value is usable:
// BatchBytes defaults to one stripe of user data, FlushInterval to
// DefaultFlushInterval.
type WALConfig struct {
	// BatchBytes is the queued-byte threshold that triggers an immediate
	// group commit. Zero or negative means one stripe's worth.
	BatchBytes int
	// FlushInterval bounds how long a queued object waits for company: a
	// commit fires this long after the first object of a batch queued even
	// if BatchBytes never accumulates. Zero or negative means
	// DefaultFlushInterval.
	FlushInterval time.Duration
	// LogPath, when non-empty, spills the serialized log to this file
	// through a single-worker submission queue (the same executor the file
	// backend's devices use): every successful group commit appends the new
	// log records — the batch's puts and its commit record — and fsyncs them
	// before any waiter is acked. RecoverWALFile replays such a file at
	// startup. The file is truncated when the WAL attaches: recover first.
	//
	// A spill failure after the store commit succeeded never fails the
	// commit (the bytes are sealed); it is counted, the error is retained
	// (SpillErr), and further spilling is disabled.
	LogPath string
}

// walResult is the outcome of one entry's first commit attempt.
type walResult struct {
	off int64
	err error
}

// walEntry is one queued object. res is buffered so the committer never
// blocks on a departed waiter; it is nilled after the first notification —
// an entry retained across a faulted commit has no one left to tell.
type walEntry struct {
	data []byte
	res  chan walResult
}

// WAL is the group-commit batcher. Safe for concurrent use.
type WAL struct {
	st  *Store
	cfg WALConfig

	mu          sync.Mutex
	queue       []*walEntry // FIFO; [0:handed) already handed to the store
	queuedBytes int         // user bytes across queue
	handed      int         // queue prefix whose bytes the store already buffers
	batchBase   int64       // NextOffset when this batch first handed bytes over; -1 if none
	log         []byte      // serialized put/commit records (see record format below)
	flushing    bool        // a commit leader is active
	timerSet    bool        // a FlushInterval timer is pending
	closed      bool

	// Spill state (LogPath configured): the log file behind a one-worker
	// submission queue, the durable prefix of log, and the first spill
	// failure (which disables further spilling). Only the active commit
	// leader advances spilled, so the watermark needs no extra guard.
	logQ     *ioQueue
	spilled  int
	spillErr error
}

// NewWAL attaches a group-commit write-ahead log to st. Install the store's
// metrics (SetMetrics) before serving traffic if WAL instruments should
// record.
func NewWAL(st *Store, cfg WALConfig) *WAL {
	if cfg.BatchBytes <= 0 {
		cfg.BatchBytes = st.stripeBytes()
	}
	if cfg.FlushInterval <= 0 {
		cfg.FlushInterval = DefaultFlushInterval
	}
	w := &WAL{st: st, cfg: cfg, batchBase: -1}
	if cfg.LogPath != "" {
		// Truncate: the caller replayed any previous log (RecoverWALFile)
		// before attaching, so this file describes only this WAL's lifetime.
		f, err := os.OpenFile(cfg.LogPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			w.spillErr = fmt.Errorf("store: wal: open log %s: %w", cfg.LogPath, err)
			st.Metrics().walLogError()
		} else {
			w.logQ = newIOQueue(f, 1, defaultQueueDepth)
		}
	}
	return w
}

// SpillErr returns the first log-spill failure. It is nil while spilling
// works, and trivially nil when no LogPath is configured.
func (w *WAL) SpillErr() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.spillErr
}

// Config returns the resolved thresholds in effect.
func (w *WAL) Config() WALConfig { return w.cfg }

// Depth returns the number of objects and user bytes queued but not yet
// committed — the WAL depth gauge's source of truth.
func (w *WAL) Depth() (objects, bytes int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.queue), w.queuedBytes
}

// LogSnapshot returns a copy of the serialized log — every accepted object
// and every successful commit, in order. Feeding any prefix of it (a crash
// point) to ReplayWAL reproduces the store's committed state at that moment.
func (w *WAL) LogSnapshot() []byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]byte(nil), w.log...)
}

// Put queues data for the next group commit and blocks until that commit
// succeeds (returning the object's assigned store offset), fails (returning
// the commit error — the bytes stay queued and a later commit will seal
// them), or ctx is done. Data is copied; the caller may reuse it.
func (w *WAL) Put(ctx context.Context, data []byte) (int64, error) {
	if len(data) == 0 {
		return 0, fmt.Errorf("store: wal: empty object")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	e := &walEntry{data: append([]byte(nil), data...), res: make(chan walResult, 1)}
	res := e.res // e.res is nilled by the committer under w.mu; select on our copy

	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return 0, ErrWALClosed
	}
	w.appendPutRecord(e.data)
	w.queue = append(w.queue, e)
	w.queuedBytes += len(e.data)
	w.st.Metrics().walDepth(len(w.queue), w.queuedBytes)
	lead := false
	if w.queuedBytes >= w.cfg.BatchBytes && !w.flushing {
		w.flushing = true
		lead = true
	} else if !w.flushing && !w.timerSet {
		w.timerSet = true
		time.AfterFunc(w.cfg.FlushInterval, w.timedFlush)
	}
	w.mu.Unlock()

	if lead {
		w.flush()
	}
	select {
	case r := <-res:
		w.st.Metrics().walPut(time.Since(start).Seconds())
		return r.off, r.err
	case <-ctx.Done():
		// The entry stays queued: its bytes are in the log and will commit.
		w.st.Metrics().walPut(time.Since(start).Seconds())
		return 0, fmt.Errorf("store: wal put abandoned: %w", ctx.Err())
	}
}

// Sync forces a group commit of everything currently queued and returns the
// commit error, waiting out any concurrent leader first. An empty queue is a
// no-op.
func (w *WAL) Sync() error {
	for {
		w.mu.Lock()
		if len(w.queue) == 0 {
			w.mu.Unlock()
			return nil
		}
		if w.flushing {
			w.mu.Unlock()
			time.Sleep(50 * time.Microsecond)
			continue
		}
		w.flushing = true
		w.mu.Unlock()
		err := w.flushOnce()
		w.mu.Lock()
		w.flushing = false
		if err != nil && !w.closed && !w.timerSet && len(w.queue) > 0 {
			w.timerSet = true
			time.AfterFunc(w.cfg.FlushInterval, w.timedFlush)
		}
		w.mu.Unlock()
		if err != nil {
			return err
		}
	}
}

// Close commits everything queued and marks the WAL closed; later Puts fail
// with ErrWALClosed. If a commit error persists, the error is returned and
// the un-committed entries stay in the log (a replay can still recover them).
func (w *WAL) Close() error {
	err := w.Sync()
	w.mu.Lock()
	w.closed = true
	q := w.logQ
	w.logQ = nil
	w.mu.Unlock()
	if q != nil {
		if cerr := q.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// timedFlush is the FlushInterval callback: commit whatever queued unless a
// leader is already active (its own post-commit check covers late arrivals).
func (w *WAL) timedFlush() {
	w.mu.Lock()
	w.timerSet = false
	if w.flushing || w.closed || len(w.queue) == 0 {
		w.mu.Unlock()
		return
	}
	w.flushing = true
	w.mu.Unlock()
	w.flush()
}

// flush drains the queue through repeated group commits until it falls below
// the byte threshold or a commit faults. Caller must have set w.flushing;
// flush clears it before returning, arming the interval timer whenever
// entries remain (late arrivals below the threshold, or a faulted batch
// awaiting retry).
func (w *WAL) flush() {
	for {
		err := w.flushOnce()
		w.mu.Lock()
		if err != nil || len(w.queue) == 0 || w.queuedBytes < w.cfg.BatchBytes {
			w.flushing = false
			if len(w.queue) > 0 && !w.closed && !w.timerSet {
				w.timerSet = true
				time.AfterFunc(w.cfg.FlushInterval, w.timedFlush)
			}
			w.mu.Unlock()
			return
		}
		w.mu.Unlock()
	}
}

// flushOnce performs one group commit of the queue snapshotted at entry.
// Caller must hold the flushing flag (and releases it afterwards). On a
// commit fault it notifies the batch's waiters, retains the entries, and
// returns the error.
func (w *WAL) flushOnce() error {
	w.mu.Lock()
	n := len(w.queue)
	if n == 0 {
		w.mu.Unlock()
		return nil
	}
	batch := make([]*walEntry, n)
	copy(batch, w.queue[:n])
	toHand := batch[w.handed:]
	base := w.batchBase
	w.mu.Unlock()

	// Hand the not-yet-handed suffix to the store, then seal. Device faults
	// can sleep (injected latency, stuck-op timeouts), so no WAL lock is held
	// here — Puts keep enqueueing into the next batch meanwhile. Append
	// buffers bytes even when a seal inside it faults, so the handed
	// watermark advances unconditionally; only the delta is ever re-handed.
	var err error
	if len(toHand) > 0 {
		buf := make([]byte, 0, batchBytesOf(toHand))
		for _, e := range toHand {
			buf = append(buf, e.data...)
		}
		if base < 0 {
			base = w.st.NextOffset()
		}
		err = w.st.Append(buf)
	}
	if err == nil {
		err = w.st.Flush()
	}

	w.mu.Lock()
	w.handed = n
	w.batchBase = base
	m := w.st.Metrics()
	if err != nil {
		cerr := fmt.Errorf("store: wal group commit: %w", err)
		for _, e := range batch {
			notify(e, 0, cerr)
		}
		m.walCommit(false, 0, 0)
		w.mu.Unlock()
		return cerr
	}
	bytes := batchBytesOf(batch)
	// Durability before ack: the commit record joins the log and the log's
	// new suffix is spilled and fsynced before any waiter hears success.
	// The spill itself runs outside the WAL lock (an fsync on rotational
	// media is milliseconds — Puts keep enqueueing the next batch meanwhile);
	// only the leader advances the spilled watermark, so the snapshot below
	// cannot race another spill.
	w.appendCommitRecord(n, base)
	var delta []byte
	lq := w.logQ
	spillBase := w.spilled
	if lq != nil && w.spillErr == nil {
		delta = append([]byte(nil), w.log[w.spilled:]...)
		w.spilled = len(w.log)
	}
	w.mu.Unlock()

	if len(delta) > 0 {
		start := time.Now()
		serr := w.spill(lq, spillBase, delta)
		if serr == nil {
			m.walLogSync(time.Since(start).Seconds())
			m.walLog(int64(spillBase + len(delta)))
		} else {
			// The store commit already sealed these bytes; losing log
			// durability is a degradation, not a failure. Record it, disable
			// the spill, and keep serving.
			m.walLogError()
			w.mu.Lock()
			if w.spillErr == nil {
				w.spillErr = serr
			}
			w.mu.Unlock()
		}
	}

	w.mu.Lock()
	off := base
	for _, e := range batch {
		notify(e, off, nil)
		off += int64(len(e.data))
	}
	w.queue = w.queue[n:]
	w.queuedBytes -= bytes
	w.handed = 0
	w.batchBase = -1
	m.walCommit(true, n, bytes)
	m.walDepth(len(w.queue), w.queuedBytes)
	w.mu.Unlock()
	return nil
}

// spill appends delta at off in the log file and fsyncs it, both through the
// log's submission queue (passed in: Close may nil w.logQ concurrently).
func (w *WAL) spill(lq *ioQueue, off int, delta []byte) error {
	if _, err := lq.SubmitWait(OpWrite, int64(off), delta); err != nil {
		return fmt.Errorf("store: wal: spill log [%d,+%d): %w", off, len(delta), err)
	}
	if _, err := lq.SubmitWait(OpSync, 0, nil); err != nil {
		return fmt.Errorf("store: wal: fsync log: %w", err)
	}
	return nil
}

func batchBytesOf(entries []*walEntry) int {
	total := 0
	for _, e := range entries {
		total += len(e.data)
	}
	return total
}

// notify delivers an entry's first outcome; later outcomes (a retained
// entry's eventual commit) have no waiter and are dropped.
func notify(e *walEntry, off int64, err error) {
	if e.res != nil {
		e.res <- walResult{off, err}
		e.res = nil
	}
}

// Log record format (little-endian):
//
//	put:    'P' | u32 len | data       | u32 crc32c(data)
//	commit: 'C' | u32 count | u64 base | u32 crc32c(count‖base)
//
// A put record logs one accepted object; a commit record marks the oldest
// `count` logged-but-uncommitted objects as sealed starting at store offset
// `base`. A torn or checksum-failing record ends the readable log — exactly
// the crash-consistency a real on-disk WAL would give.
const (
	walRecPut    = 'P'
	walRecCommit = 'C'
)

func (w *WAL) appendPutRecord(data []byte) {
	var hdr [5]byte
	hdr[0] = walRecPut
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(data)))
	w.log = append(w.log, hdr[:]...)
	w.log = append(w.log, data...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.Checksum(data, castagnoli))
	w.log = append(w.log, crc[:]...)
}

func (w *WAL) appendCommitRecord(count int, base int64) {
	var rec [17]byte
	rec[0] = walRecCommit
	binary.LittleEndian.PutUint32(rec[1:], uint32(count))
	binary.LittleEndian.PutUint64(rec[5:], uint64(base))
	binary.LittleEndian.PutUint32(rec[13:], crc32.Checksum(rec[1:13], castagnoli))
	w.log = append(w.log, rec[:]...)
}

// Extent locates one committed object inside the store's address space.
type Extent struct {
	Off  int64
	Size int
}

// ReplayWAL replays a log (or any prefix of one — a crash point) into st,
// re-performing every group commit: each commit record's objects are
// concatenated, appended, and flush-padded exactly as the live commit did, so
// the replayed store's sealed extent is byte-for-byte the committed state the
// log describes. It returns the committed objects' extents in commit order.
// Replay stops cleanly at a torn or corrupt record and verifies each commit's
// base offset against the store being rebuilt.
func ReplayWAL(log []byte, st *Store) ([]Extent, error) {
	var queued [][]byte
	var extents []Extent
	for len(log) > 0 {
		switch log[0] {
		case walRecPut:
			if len(log) < 5 {
				return extents, nil // torn header
			}
			n := int(binary.LittleEndian.Uint32(log[1:5]))
			if len(log) < 5+n+4 {
				return extents, nil // torn payload
			}
			data := log[5 : 5+n]
			crc := binary.LittleEndian.Uint32(log[5+n : 5+n+4])
			if crc32.Checksum(data, castagnoli) != crc {
				return extents, nil // corrupt record ends the readable log
			}
			queued = append(queued, data)
			log = log[5+n+4:]
		case walRecCommit:
			if len(log) < 17 {
				return extents, nil
			}
			if crc32.Checksum(log[1:13], castagnoli) != binary.LittleEndian.Uint32(log[13:17]) {
				return extents, nil
			}
			count := int(binary.LittleEndian.Uint32(log[1:5]))
			base := int64(binary.LittleEndian.Uint64(log[5:13]))
			if count <= 0 || count > len(queued) {
				return extents, fmt.Errorf("store: wal replay: commit of %d objects with %d queued", count, len(queued))
			}
			if got := st.NextOffset(); got != base {
				return extents, fmt.Errorf("store: wal replay: commit base %d, store at %d", base, got)
			}
			var buf []byte
			off := base
			for _, data := range queued[:count] {
				buf = append(buf, data...)
				extents = append(extents, Extent{Off: off, Size: len(data)})
				off += int64(len(data))
			}
			if err := st.Append(buf); err != nil {
				return extents, fmt.Errorf("store: wal replay: %w", err)
			}
			if err := st.Flush(); err != nil {
				return extents, fmt.Errorf("store: wal replay: %w", err)
			}
			queued = queued[count:]
			log = log[17:]
		default:
			return extents, nil // unrecognized byte: treat as torn tail
		}
	}
	return extents, nil
}

// RecoverWALFile replays a spilled WAL log file into a freshly (re)opened
// store and truncates the file, returning every committed object's extent
// plus the count of logged-but-uncommitted objects the crash orphaned (their
// Puts were never acked, so dropping them is correct).
//
// Unlike ReplayWAL — which assumes an empty store — this tolerates a store
// that already recovered sealed stripes from its own device files: a commit
// record whose flush-padded extent lies inside the recovered extent was
// durably applied before the crash (under FsyncAlways the device fsync
// barrier precedes the commit record) and is skipped; one starting exactly
// at the store's next offset is re-applied (the FsyncNever crash window,
// where the log hardened before the devices); anything else means the log
// and the store diverged, which is an error.
func RecoverWALFile(path string, st *Store) (extents []Extent, dropped int, err error) {
	log, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return nil, 0, nil
		}
		return nil, 0, rerr
	}
	stripeBytes := int64(st.stripeBytes())
	var queued [][]byte
	for len(log) > 0 {
		switch log[0] {
		case walRecPut:
			if len(log) < 5 {
				log = nil
				continue
			}
			n := int(binary.LittleEndian.Uint32(log[1:5]))
			if len(log) < 5+n+4 {
				log = nil
				continue
			}
			data := log[5 : 5+n]
			if crc32.Checksum(data, castagnoli) != binary.LittleEndian.Uint32(log[5+n:5+n+4]) {
				log = nil
				continue
			}
			queued = append(queued, data)
			log = log[5+n+4:]
		case walRecCommit:
			if len(log) < 17 || crc32.Checksum(log[1:13], castagnoli) != binary.LittleEndian.Uint32(log[13:17]) {
				log = nil
				continue
			}
			count := int(binary.LittleEndian.Uint32(log[1:5]))
			base := int64(binary.LittleEndian.Uint64(log[5:13]))
			log = log[17:]
			if count <= 0 || count > len(queued) {
				return extents, 0, fmt.Errorf("store: wal recover: commit of %d objects with %d queued", count, len(queued))
			}
			var bytes int64
			for _, d := range queued[:count] {
				bytes += int64(len(d))
			}
			paddedEnd := (base + bytes + stripeBytes - 1) / stripeBytes * stripeBytes
			sealed := st.NextOffset()
			switch {
			case paddedEnd <= sealed:
				// Already durably applied before the crash: record only.
			case base == sealed:
				var buf []byte
				for _, d := range queued[:count] {
					buf = append(buf, d...)
				}
				if aerr := st.Append(buf); aerr != nil {
					return extents, 0, fmt.Errorf("store: wal recover: %w", aerr)
				}
				if ferr := st.Flush(); ferr != nil {
					return extents, 0, fmt.Errorf("store: wal recover: %w", ferr)
				}
			default:
				return extents, 0, fmt.Errorf("store: wal recover: commit base %d (end %d) inconsistent with store extent %d",
					base, paddedEnd, sealed)
			}
			off := base
			for _, d := range queued[:count] {
				extents = append(extents, Extent{Off: off, Size: len(d)})
				off += int64(len(d))
			}
			queued = queued[count:]
		default:
			log = nil
		}
	}
	dropped = len(queued)
	// The log's content is now fully reflected in the store; empty it so the
	// next WAL's spill starts from a clean file.
	if terr := os.Truncate(path, 0); terr != nil && !os.IsNotExist(terr) {
		return extents, dropped, terr
	}
	return extents, dropped, nil
}
