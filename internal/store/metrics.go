package store

import (
	"strconv"

	"repro/internal/obs"
)

// maxLoadBuckets are the upper bounds for the per-request max-disk-load
// histogram. Loads are small integers (elements on the most-loaded disk for
// one request), so the buckets resolve every value the paper's request sizes
// (1-20 one-element reads) can produce and coarsen beyond that.
var maxLoadBuckets = []float64{1, 2, 3, 4, 5, 6, 8, 12, 16, 24, 32}

// Metrics is the store's observability bundle: per-disk element I/O
// counters, the per-request max-disk-load histogram the paper's design
// minimizes (§III-B), and counters for the fault-handling machinery
// (retries, degraded replans, heals, epoch invalidations). A nil *Metrics
// disables everything — every method is nil-safe, so the store's hot paths
// carry no "is observability on?" branches.
//
// Metric names:
//
//	ecfrm_disk_element_reads_total{disk}     element reads served per disk
//	ecfrm_disk_element_writes_total{disk}    element writes per disk
//	ecfrm_store_reads_total{mode}            completed reads, normal|degraded
//	ecfrm_store_read_max_disk_load{mode}     histogram of Plan.MaxLoad per read
//	ecfrm_store_op_retries_total{op}         transient-fault retries, read|write
//	ecfrm_store_read_replans_total           reads re-planned around unavailable disks
//	ecfrm_store_heals_total                  corrupt cells rebuilt and rewritten
//	ecfrm_store_epoch_invalidations_total    mutation-epoch bumps (cache invalidations)
type Metrics struct {
	diskReads    []*obs.Counter
	diskWrites   []*obs.Counter
	diskInflight []*obs.Gauge
	diskErrors   []*obs.Counter
	diskLatency  []*obs.Gauge

	recoverElems      *obs.Counter
	recoverSecRebuild *obs.Histogram
	recoverSecMigrate *obs.Histogram

	readsNormal   *obs.Counter
	readsDegraded *obs.Counter
	loadNormal    *obs.Histogram
	loadDegraded  *obs.Histogram

	readRetries  *obs.Counter
	writeRetries *obs.Counter
	replans      *obs.Counter
	heals        *obs.Counter
	epochInval   *obs.Counter

	hedgeFired     *obs.Counter
	hedgeWon       *obs.Counter
	hedgeCancelled *obs.Counter
	runBytes       *obs.Histogram

	walQueuedObjects *obs.Gauge
	walQueuedBytes   *obs.Gauge
	walBatchObjects  *obs.Histogram
	walBatchBytes    *obs.Histogram
	walPutSeconds    *obs.Histogram
	walCommitsOK     *obs.Counter
	walCommitsFault  *obs.Counter

	// File-backend instruments: per-device submission-queue depth, per-op
	// service-time histograms inside the queues, the commit-path fsync
	// barrier, and the spilled WAL log.
	devqDepth    []*obs.Gauge
	devqReadSec  *obs.Histogram
	devqWriteSec *obs.Histogram
	devqSyncSec  *obs.Histogram
	fsyncSec     *obs.Histogram

	walLogBytes   *obs.Gauge
	walLogSyncSec *obs.Histogram
	walLogErrors  *obs.Counter
}

// NewMetrics registers the store's metric families for a disks-device array
// in reg and returns the bundle to install with SetMetrics. Registration is
// idempotent per registry: two stores sharing one registry share series.
func NewMetrics(reg *obs.Registry, disks int) *Metrics {
	m := &Metrics{}
	for d := 0; d < disks; d++ {
		lbl := obs.L("disk", strconv.Itoa(d))
		m.diskReads = append(m.diskReads, reg.Counter("ecfrm_disk_element_reads_total",
			"Element-granularity reads served per disk.", lbl))
		m.diskWrites = append(m.diskWrites, reg.Counter("ecfrm_disk_element_writes_total",
			"Element-granularity writes per disk.", lbl))
		m.diskInflight = append(m.diskInflight, reg.Gauge("ecfrm_disk_inflight_runs",
			"Fan-out runs currently in flight per disk (the load-aware planner's bias signal).", lbl))
		m.diskErrors = append(m.diskErrors, reg.Counter("ecfrm_disk_errors_total",
			"Hard device errors per disk: fail-stops, exhausted retry budgets, backend I/O failures (the repair scheduler's error-rate detector input).", lbl))
		m.diskLatency = append(m.diskLatency, reg.Gauge("ecfrm_disk_latency_ewma_seconds",
			"Exponentially weighted moving average of per-op service latency per disk (the limping-disk detector input).", lbl))
	}
	m.recoverElems = reg.Counter("ecfrm_store_recover_read_elements_total",
		"Distinct survivor elements read by disk rebuilds and migrations (the paper's recovery read cost).")
	m.recoverSecRebuild = reg.Histogram("ecfrm_store_recover_seconds",
		"Wall-clock duration of completed disk recoveries, by kind.",
		recoverSecondsBuckets, obs.L("kind", "rebuild"))
	m.recoverSecMigrate = reg.Histogram("ecfrm_store_recover_seconds",
		"Wall-clock duration of completed disk recoveries, by kind.",
		recoverSecondsBuckets, obs.L("kind", "migrate"))
	m.readsNormal = reg.Counter("ecfrm_store_reads_total",
		"Completed store reads by mode.", obs.L("mode", "normal"))
	m.readsDegraded = reg.Counter("ecfrm_store_reads_total",
		"Completed store reads by mode.", obs.L("mode", "degraded"))
	m.loadNormal = reg.Histogram("ecfrm_store_read_max_disk_load",
		"Per-request element count on the most-loaded disk (the paper's max-load metric).",
		maxLoadBuckets, obs.L("mode", "normal"))
	m.loadDegraded = reg.Histogram("ecfrm_store_read_max_disk_load",
		"Per-request element count on the most-loaded disk (the paper's max-load metric).",
		maxLoadBuckets, obs.L("mode", "degraded"))
	m.readRetries = reg.Counter("ecfrm_store_op_retries_total",
		"Transient-fault retries by operation.", obs.L("op", "read"))
	m.writeRetries = reg.Counter("ecfrm_store_op_retries_total",
		"Transient-fault retries by operation.", obs.L("op", "write"))
	m.replans = reg.Counter("ecfrm_store_read_replans_total",
		"Reads re-planned degraded around unavailable devices.")
	m.heals = reg.Counter("ecfrm_store_heals_total",
		"Corrupt cells rebuilt from their group and rewritten in place.")
	m.epochInval = reg.Counter("ecfrm_store_epoch_invalidations_total",
		"Mutation-epoch bumps; each invalidates decoded-read caches.")
	m.hedgeFired = reg.Counter("ecfrm_store_hedge_total",
		"Hedged-read outcomes: fired (speculation launched), won (hedge beat the primary), cancelled (primary finished first).",
		obs.L("outcome", "fired"))
	m.hedgeWon = reg.Counter("ecfrm_store_hedge_total",
		"Hedged-read outcomes: fired (speculation launched), won (hedge beat the primary), cancelled (primary finished first).",
		obs.L("outcome", "won"))
	m.hedgeCancelled = reg.Counter("ecfrm_store_hedge_total",
		"Hedged-read outcomes: fired (speculation launched), won (hedge beat the primary), cancelled (primary finished first).",
		obs.L("outcome", "cancelled"))
	m.runBytes = reg.Histogram("ecfrm_store_read_run_bytes",
		"Bytes per coalesced device run issued by the fan-out executor.",
		obs.ExpBuckets(1024, 4, 9))
	m.walQueuedObjects = reg.Gauge("ecfrm_wal_queued_objects",
		"Objects accepted by the WAL and awaiting group commit.")
	m.walQueuedBytes = reg.Gauge("ecfrm_wal_queued_bytes",
		"User bytes queued in the WAL awaiting group commit.")
	m.walBatchObjects = reg.Histogram("ecfrm_wal_batch_objects",
		"Objects sealed per successful group commit.",
		obs.ExpBuckets(1, 2, 11))
	m.walBatchBytes = reg.Histogram("ecfrm_wal_batch_bytes",
		"User bytes sealed per successful group commit.",
		obs.ExpBuckets(4096, 4, 9))
	m.walPutSeconds = reg.Histogram("ecfrm_wal_put_seconds",
		"Time a WAL Put waited for its group commit (ack latency).",
		requestSecondsBuckets)
	m.walCommitsOK = reg.Counter("ecfrm_wal_commits_total",
		"Group-commit attempts by outcome: ok (batch sealed) or fault (aborted whole, entries retained).",
		obs.L("outcome", "ok"))
	m.walCommitsFault = reg.Counter("ecfrm_wal_commits_total",
		"Group-commit attempts by outcome: ok (batch sealed) or fault (aborted whole, entries retained).",
		obs.L("outcome", "fault"))
	for d := 0; d < disks; d++ {
		m.devqDepth = append(m.devqDepth, reg.Gauge("ecfrm_devq_depth",
			"Submitted-but-uncompleted SQEs in the device's submission queue (file backend).",
			obs.L("disk", strconv.Itoa(d))))
	}
	m.devqReadSec = reg.Histogram("ecfrm_devq_io_seconds",
		"Per-operation service time inside the device submission queues, by op.",
		ioSecondsBuckets, obs.L("op", "read"))
	m.devqWriteSec = reg.Histogram("ecfrm_devq_io_seconds",
		"Per-operation service time inside the device submission queues, by op.",
		ioSecondsBuckets, obs.L("op", "write"))
	m.devqSyncSec = reg.Histogram("ecfrm_devq_io_seconds",
		"Per-operation service time inside the device submission queues, by op.",
		ioSecondsBuckets, obs.L("op", "sync"))
	m.fsyncSec = reg.Histogram("ecfrm_store_fsync_barrier_seconds",
		"Duration of the commit-path fsync barrier (all touched devices synced before publish).",
		ioSecondsBuckets)
	m.walLogBytes = reg.Gauge("ecfrm_wal_log_bytes",
		"Bytes of the WAL log spilled to its on-disk file (live spill watermark).")
	m.walLogSyncSec = reg.Histogram("ecfrm_wal_log_sync_seconds",
		"Duration of the WAL log spill-and-fsync performed before a group commit acks.",
		ioSecondsBuckets)
	m.walLogErrors = reg.Counter("ecfrm_wal_log_errors_total",
		"WAL log spill failures; after one, the WAL keeps serving from memory with spill disabled.")
	return m
}

// ioSecondsBuckets spans 10µs to ~2.6s exponentially — resolves both page-
// cache hits and real rotational fsyncs.
var ioSecondsBuckets = obs.ExpBuckets(1e-5, 4, 10)

// requestSecondsBuckets spans 100µs to ~6.5s exponentially — resolves
// sub-millisecond group-commit acks and degrades gracefully under injected
// device latency.
var requestSecondsBuckets = obs.ExpBuckets(1e-4, 4, 9)

// recoverSecondsBuckets spans 1ms to ~4.4min exponentially — in-memory
// rebuilds finish in milliseconds, rate-limited file rebuilds in minutes.
var recoverSecondsBuckets = obs.ExpBuckets(1e-3, 4, 9)

// observeRecover records one completed disk recovery: its survivor read
// cost and wall-clock duration, labeled by kind ("rebuild" or "migrate").
func (m *Metrics) observeRecover(kind string, readElems int, seconds float64) {
	if m == nil {
		return
	}
	m.recoverElems.Add(int64(readElems))
	if kind == string(RebuildMigrate) {
		m.recoverSecMigrate.Observe(seconds)
	} else {
		m.recoverSecRebuild.Observe(seconds)
	}
}

// RecoverReadElements returns the cumulative survivor-element read count
// recorded by completed recoveries (the satellite metrics-assertion hook).
func (m *Metrics) RecoverReadElements() int64 {
	if m == nil {
		return 0
	}
	return m.recoverElems.Value()
}

// RecoverCount returns how many recoveries of the given kind have recorded
// a duration.
func (m *Metrics) RecoverCount(kind string) int64 {
	if m == nil {
		return 0
	}
	if kind == string(RebuildMigrate) {
		return m.recoverSecMigrate.Count()
	}
	return m.recoverSecRebuild.Count()
}

// DiskErrors returns the exported hard-error count for disk d.
func (m *Metrics) DiskErrors(d int) int64 {
	if m == nil || d >= len(m.diskErrors) {
		return 0
	}
	return m.diskErrors[d].Value()
}

// observeRead records one completed read: its mode and its plan's max load.
func (m *Metrics) observeRead(degraded bool, maxLoad int) {
	if m == nil {
		return
	}
	if degraded {
		m.readsDegraded.Inc()
		m.loadDegraded.Observe(float64(maxLoad))
	} else {
		m.readsNormal.Inc()
		m.loadNormal.Observe(float64(maxLoad))
	}
}

// retry records one transient-fault retry on the given path.
func (m *Metrics) retry(write bool) {
	if m == nil {
		return
	}
	if write {
		m.writeRetries.Inc()
	} else {
		m.readRetries.Inc()
	}
}

// replan records a read falling back to a degraded plan mid-flight.
func (m *Metrics) replan() {
	if m != nil {
		m.replans.Inc()
	}
}

// heal records one corrupt cell rebuilt and rewritten.
func (m *Metrics) heal() {
	if m != nil {
		m.heals.Inc()
	}
}

// epochBump records one mutation-epoch invalidation.
func (m *Metrics) epochBump() {
	if m != nil {
		m.epochInval.Inc()
	}
}

// hedge records one hedged-read outcome: "fired", "won", or "cancelled".
func (m *Metrics) hedge(outcome string) {
	if m == nil {
		return
	}
	switch outcome {
	case "fired":
		m.hedgeFired.Inc()
	case "won":
		m.hedgeWon.Inc()
	case "cancelled":
		m.hedgeCancelled.Inc()
	}
}

// observeRun records the size of one coalesced device run.
func (m *Metrics) observeRun(bytes int) {
	if m != nil {
		m.runBytes.Observe(float64(bytes))
	}
}

// walDepth publishes the WAL's current queue depth.
func (m *Metrics) walDepth(objects, bytes int) {
	if m != nil {
		m.walQueuedObjects.Set(float64(objects))
		m.walQueuedBytes.Set(float64(bytes))
	}
}

// walCommit records one group-commit attempt; ok batches also record their
// size in objects and user bytes.
func (m *Metrics) walCommit(ok bool, objects, bytes int) {
	if m == nil {
		return
	}
	if ok {
		m.walCommitsOK.Inc()
		m.walBatchObjects.Observe(float64(objects))
		m.walBatchBytes.Observe(float64(bytes))
	} else {
		m.walCommitsFault.Inc()
	}
}

// walPut records one Put's ack latency in seconds.
func (m *Metrics) walPut(seconds float64) {
	if m != nil {
		m.walPutSeconds.Observe(seconds)
	}
}

// fsyncBarrier records one commit-path fsync barrier's duration.
func (m *Metrics) fsyncBarrier(seconds float64) {
	if m != nil {
		m.fsyncSec.Observe(seconds)
	}
}

// walLog publishes the spilled WAL log's on-disk size.
func (m *Metrics) walLog(bytes int64) {
	if m != nil {
		m.walLogBytes.Set(float64(bytes))
	}
}

// walLogSync records one WAL log spill-and-fsync duration.
func (m *Metrics) walLogSync(seconds float64) {
	if m != nil {
		m.walLogSyncSec.Observe(seconds)
	}
}

// walLogError records one WAL log spill failure.
func (m *Metrics) walLogError() {
	if m != nil {
		m.walLogErrors.Inc()
	}
}

// queueObsFor returns the submission-queue metric bundle for device d, nil
// when the metrics bundle is nil (clearing the queue's sinks).
func (m *Metrics) queueObsFor(d int) *queueObs {
	if m == nil || d >= len(m.devqDepth) {
		return nil
	}
	return &queueObs{
		depth:    m.devqDepth[d],
		readSec:  m.devqReadSec,
		writeSec: m.devqWriteSec,
		syncSec:  m.devqSyncSec,
	}
}

// deviceCounters returns the per-disk counters for device d (nil when the
// bundle is nil or d is out of the registered range), for wiring into the
// device itself so its read/write methods account without a store hop.
func (m *Metrics) deviceCounters(d int) (reads, writes *obs.Counter) {
	if m == nil || d >= len(m.diskReads) {
		return nil, nil
	}
	return m.diskReads[d], m.diskWrites[d]
}

// deviceInflight returns the per-disk in-flight gauge for device d (nil when
// the bundle is nil or d is out of range).
func (m *Metrics) deviceInflight(d int) *obs.Gauge {
	if m == nil || d >= len(m.diskInflight) {
		return nil
	}
	return m.diskInflight[d]
}

// SetMetrics installs (or with nil, removes) the store's metrics bundle and
// wires every device's I/O counters. Call it before serving traffic;
// installation takes the exclusive lock.
func (s *Store) SetMetrics(m *Metrics) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.obs = m
	for i, d := range s.devices {
		d.obsReads, d.obsWrites = m.deviceCounters(i)
		d.obsInflight = m.deviceInflight(i)
		d.obsErrors, d.obsLatency = m.deviceHealth(i)
		if fb, ok := d.be.(*fileBackend); ok {
			fb.q.setObs(m.queueObsFor(i))
		}
	}
}

// deviceHealth returns the per-disk error counter and latency-EWMA gauge for
// device d (nil when the bundle is nil or d is out of range).
func (m *Metrics) deviceHealth(d int) (errs *obs.Counter, lat *obs.Gauge) {
	if m == nil || d >= len(m.diskErrors) {
		return nil, nil
	}
	return m.diskErrors[d], m.diskLatency[d]
}

// Metrics returns the installed metrics bundle (nil if none).
func (s *Store) Metrics() *Metrics {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.obs
}
