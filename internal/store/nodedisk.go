// DiskStore: the data-node side of the cluster split.
//
// A data node owns a set of per-(group,disk) cell extents and serves them
// over HTTP (internal/datanode). DiskStore is that extent: the same
// memBackend / fileBackend machinery a local Store uses — including the
// io_uring-shaped submission queues and O_DIRECT discipline of the file
// backend — wrapped in its own lock, because a node's HTTP handlers hit one
// disk concurrently and the backends themselves rely on the owning Store's
// lock for index safety. DiskStore implements CellBackend, so an in-process
// node can be wired straight into NewWithCellBackends in tests.
package store

import (
	"fmt"
	"sync"
)

// DiskStore is one device's cell extent served by a data node: slot-indexed
// elemSize cells with recorded checksums, in memory or on a data/crc file
// pair. Checksums are stored verbatim and never verified here — integrity
// checking stays on the store/gateway side so a node cannot mask torn
// writes. All methods are safe for concurrent use.
type DiskStore struct {
	mu   sync.RWMutex
	be   devBackend
	elem int
}

// NewMemDisk creates an in-memory DiskStore for elemSize-byte cells.
func NewMemDisk(elemSize int) *DiskStore {
	return &DiskStore{be: newMemBackend(), elem: elemSize}
}

// OpenFileDisk creates (or reopens) a file-backed DiskStore on the given
// data/checksum file pair, fronted by a per-disk submission queue. cfg.Dir
// is ignored; the paths name the files directly.
func OpenFileDisk(dataPath, crcPath string, elemSize int, cfg FileConfig) (*DiskStore, error) {
	be, err := openFileBackendPaths(dataPath, crcPath, elemSize, cfg, false)
	if err != nil {
		return nil, err
	}
	return &DiskStore{be: be, elem: elemSize}, nil
}

// ElemSize returns the cell size in bytes.
func (ds *DiskStore) ElemSize() int { return ds.elem }

// ReadRun returns count cells starting at slot as one contiguous buffer plus
// each cell's recorded checksum. Any slot in the run the disk never stored
// fails the whole run with ErrCellMissing.
func (ds *DiskStore) ReadRun(slot, count int) ([]byte, []uint32, error) {
	if slot < 0 || count < 1 {
		return nil, nil, fmt.Errorf("store: disk read run [%d,+%d): bad range", slot, count)
	}
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	if r, ok := ds.be.(runIO); ok {
		return r.readRun(slot, count)
	}
	data := make([]byte, 0, count*ds.elem)
	crcs := make([]uint32, 0, count)
	for i := 0; i < count; i++ {
		cell, crc, err := ds.be.readCell(slot + i)
		if err != nil {
			return nil, nil, err
		}
		data = append(data, cell...)
		crcs = append(crcs, crc)
	}
	return data, crcs, nil
}

// WriteRun stores len(crcs) contiguous cells (flattened into data) and their
// checksums starting at slot.
func (ds *DiskStore) WriteRun(slot int, data []byte, crcs []uint32) error {
	count := len(crcs)
	if slot < 0 || count < 1 || len(data) != count*ds.elem {
		return fmt.Errorf("store: disk write run [%d,+%d): %d bytes does not match %d cells of %d",
			slot, count, len(data), count, ds.elem)
	}
	cells := make([][]byte, count)
	for i := range cells {
		cells[i] = data[i*ds.elem : (i+1)*ds.elem : (i+1)*ds.elem]
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if r, ok := ds.be.(runIO); ok {
		return r.writeRun(slot, cells, crcs)
	}
	for i := range cells {
		// The mem backend keeps the slice it is handed; copy so callers can
		// reuse request buffers.
		if err := ds.be.writeCell(slot+i, append([]byte(nil), cells[i]...), crcs[i]); err != nil {
			return err
		}
	}
	return nil
}

// Sync makes everything written so far durable (fsync through the disk's
// submission queue; no-op in memory).
func (ds *DiskStore) Sync() error {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.be.sync()
}

// Truncate drops every slot at or above the bound.
func (ds *DiskStore) Truncate(slots int) error {
	if slots < 0 {
		return fmt.Errorf("store: disk truncate to %d slots", slots)
	}
	ds.mu.Lock()
	defer ds.mu.Unlock()
	if tr, ok := ds.be.(truncater); ok {
		return tr.truncate(slots)
	}
	// Memory backend: rebuild below the bound.
	mem, ok := ds.be.(*memBackend)
	if !ok {
		return fmt.Errorf("store: disk backend cannot truncate")
	}
	next := newMemBackend()
	for s, cell := range mem.cells {
		if s < slots {
			next.cells[s] = cell
			next.crcs[s] = mem.crcs[s]
			if s >= next.bound {
				next.bound = s + 1
			}
		}
	}
	ds.be = next
	return nil
}

// Slots returns the exclusive upper bound of occupied slot indices.
func (ds *DiskStore) Slots() int {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.be.slots()
}

// Elements returns how many slots hold a cell.
func (ds *DiskStore) Elements() int {
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	return ds.be.elements()
}

// Close releases the disk's files and submission queue.
func (ds *DiskStore) Close() error {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	return ds.be.close()
}

// compile-time check: an in-process DiskStore is a valid remote device.
var _ CellBackend = (*DiskStore)(nil)
