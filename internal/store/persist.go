package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/layout"
)

// ErrManifest flags a missing, malformed, or mismatched persistence
// manifest.
var ErrManifest = errors.New("store: bad manifest")

// persistManifest records the geometry a saved store directory was written
// with, so Load can refuse a mismatched scheme instead of decoding garbage.
type persistManifest struct {
	Scheme   string `json:"scheme"`
	Disks    int    `json:"disks"`
	Rows     int    `json:"rows"`
	ElemSize int    `json:"elem_size"`
	Stripes  int    `json:"stripes"`
	Length   int64  `json:"length"`
}

const manifestName = "store.json"

// deviceFile names device d's backing file inside a save directory.
func deviceFile(dir string, d int) string {
	return filepath.Join(dir, fmt.Sprintf("device_%02d.dat", d))
}

// Save persists the store into dir: one binary file per device (cells in
// stripe/row order, each followed by its CRC32C) plus a JSON manifest.
// Buffered partial stripes must be flushed and no device may be failed —
// recover first, so the saved image is always complete and consistent.
//
// Save is durable when it returns: every device file is fsynced, the
// manifest is written via temp-file + fsync + rename, and the containing
// directory is fsynced, so a snapshot that reports success survives power
// loss. Checksums are copied verbatim from the live devices (not
// recomputed), so corruption present at save time remains detectable after
// a round trip.
func (s *Store) Save(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.pending) > 0 {
		return fmt.Errorf("store: flush the %d pending bytes before saving", len(s.pending))
	}
	if failed := s.failedDisksLocked(); len(failed) > 0 {
		return fmt.Errorf("%w: %v (recover before saving)", ErrFailed, failed)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for d, dev := range s.devices {
		buf := make([]byte, 0, s.stripes*s.rows*(s.elemSize+4))
		var crcBytes [4]byte
		for slot := 0; slot < s.stripes*s.rows; slot++ {
			cell, crc, err := dev.be.readCell(slot)
			if err != nil {
				return fmt.Errorf("store: device %d save slot %d: %w", d, slot, err)
			}
			buf = append(buf, cell...)
			binary.LittleEndian.PutUint32(crcBytes[:], crc)
			buf = append(buf, crcBytes[:]...)
		}
		f, err := os.OpenFile(deviceFile(dir, d), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
		if err != nil {
			return err
		}
		if _, err := f.Write(buf); err != nil {
			f.Close()
			return err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	man := persistManifest{
		Scheme:   s.scheme.Name(),
		Disks:    s.scheme.N(),
		Rows:     s.rows,
		ElemSize: s.elemSize,
		Stripes:  s.stripes,
		Length:   s.length,
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	// atomicWriteFile fsyncs the manifest and the directory, making the
	// device files' creation durable along with it.
	return atomicWriteFile(filepath.Join(dir, manifestName), mb)
}

// Load restores a store saved by Save. The caller supplies the scheme (the
// manifest's geometry and scheme name must match) and the directory. Saved
// checksums are preserved verbatim, so corruption that happened on disk
// remains detectable after a round trip.
func Load(scheme *core.Scheme, dir string) (*Store, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	var man persistManifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	lay := scheme.Layout()
	if man.Scheme != scheme.Name() || man.Disks != scheme.N() || man.Rows != lay.Rows() {
		return nil, fmt.Errorf("%w: saved as %s (%d disks × %d rows), loading as %s (%d × %d)",
			ErrManifest, man.Scheme, man.Disks, man.Rows, scheme.Name(), scheme.N(), lay.Rows())
	}
	if man.ElemSize < 1 || man.Stripes < 0 || man.Length < 0 {
		return nil, fmt.Errorf("%w: nonsensical geometry %+v", ErrManifest, man)
	}
	st, err := New(scheme, man.ElemSize)
	if err != nil {
		return nil, err
	}
	recSize := man.ElemSize + 4
	want := man.Stripes * lay.Rows() * recSize
	for d := range st.devices {
		buf, err := os.ReadFile(deviceFile(dir, d))
		if err != nil {
			return nil, err
		}
		if len(buf) != want {
			return nil, fmt.Errorf("%w: device %d has %d bytes, want %d", ErrManifest, d, len(buf), want)
		}
		off := 0
		for slot := 0; slot < man.Stripes*lay.Rows(); slot++ {
			cell := append([]byte(nil), buf[off:off+man.ElemSize]...)
			crc := binary.LittleEndian.Uint32(buf[off+man.ElemSize : off+recSize])
			off += recSize
			// Backend-direct write: checksums restore verbatim (no recompute)
			// and the load does not count as device write traffic.
			if err := st.devices[d].be.writeCell(slot, cell, crc); err != nil {
				return nil, err
			}
		}
	}
	st.stripes = man.Stripes
	st.length = man.Length
	return st, nil
}

// VerifyChecksums re-checks every stored cell against its recorded CRC32C
// without counting I/O, returning the locations that fail.
func (s *Store) VerifyChecksums() []core.Access {
	s.mu.RLock()
	defer s.mu.RUnlock()
	lay := s.scheme.Layout()
	var bad []core.Access
	for d, dev := range s.devices {
		for slot := 0; slot < dev.be.slots(); slot++ {
			cell, crc, err := dev.be.readCell(slot)
			if err != nil {
				continue // absent slot
			}
			if crc32.Checksum(cell, castagnoli) != crc {
				stripe, row := slot/s.rows, slot%s.rows
				bad = append(bad, core.Access{Disk: d, Stripe: stripe,
					Pos: layout.Pos{Row: row, Col: lay.Col(stripe, d)}})
			}
		}
	}
	return bad
}
