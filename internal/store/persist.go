package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/layout"
)

// ErrManifest flags a missing, malformed, or mismatched persistence
// manifest.
var ErrManifest = errors.New("store: bad manifest")

// persistManifest records the geometry a saved store directory was written
// with, so Load can refuse a mismatched scheme instead of decoding garbage.
type persistManifest struct {
	Scheme   string `json:"scheme"`
	Disks    int    `json:"disks"`
	Rows     int    `json:"rows"`
	ElemSize int    `json:"elem_size"`
	Stripes  int    `json:"stripes"`
	Length   int64  `json:"length"`
}

const manifestName = "store.json"

// deviceFile names device d's backing file inside a save directory.
func deviceFile(dir string, d int) string {
	return filepath.Join(dir, fmt.Sprintf("device_%02d.dat", d))
}

// Save persists the store into dir: one binary file per device (cells in
// stripe/row order, each followed by its CRC32C) plus a JSON manifest.
// Buffered partial stripes must be flushed and no device may be failed —
// recover first, so the saved image is always complete and consistent.
func (s *Store) Save(dir string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if len(s.pending) > 0 {
		return fmt.Errorf("store: flush the %d pending bytes before saving", len(s.pending))
	}
	if failed := s.failedDisksLocked(); len(failed) > 0 {
		return fmt.Errorf("%w: %v (recover before saving)", ErrFailed, failed)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	lay := s.scheme.Layout()
	for d, dev := range s.devices {
		buf := make([]byte, 0, s.stripes*lay.Rows()*(s.elemSize+4))
		var crcBytes [4]byte
		for stripe := 0; stripe < s.stripes; stripe++ {
			col := lay.Col(stripe, d)
			for row := 0; row < lay.Rows(); row++ {
				k := cellKey{stripe, layout.Pos{Row: row, Col: col}}
				cell, ok := dev.cells[k]
				if !ok {
					return fmt.Errorf("store: device %d missing cell %v", d, k)
				}
				buf = append(buf, cell...)
				binary.LittleEndian.PutUint32(crcBytes[:], dev.crcs[k])
				buf = append(buf, crcBytes[:]...)
			}
		}
		if err := os.WriteFile(deviceFile(dir, d), buf, 0o644); err != nil {
			return err
		}
	}
	man := persistManifest{
		Scheme:   s.scheme.Name(),
		Disks:    s.scheme.N(),
		Rows:     lay.Rows(),
		ElemSize: s.elemSize,
		Stripes:  s.stripes,
		Length:   s.length,
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, manifestName), mb, 0o644)
}

// Load restores a store saved by Save. The caller supplies the scheme (the
// manifest's geometry and scheme name must match) and the directory. Saved
// checksums are preserved verbatim, so corruption that happened on disk
// remains detectable after a round trip.
func Load(scheme *core.Scheme, dir string) (*Store, error) {
	mb, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	var man persistManifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrManifest, err)
	}
	lay := scheme.Layout()
	if man.Scheme != scheme.Name() || man.Disks != scheme.N() || man.Rows != lay.Rows() {
		return nil, fmt.Errorf("%w: saved as %s (%d disks × %d rows), loading as %s (%d × %d)",
			ErrManifest, man.Scheme, man.Disks, man.Rows, scheme.Name(), scheme.N(), lay.Rows())
	}
	if man.ElemSize < 1 || man.Stripes < 0 || man.Length < 0 {
		return nil, fmt.Errorf("%w: nonsensical geometry %+v", ErrManifest, man)
	}
	st, err := New(scheme, man.ElemSize)
	if err != nil {
		return nil, err
	}
	recSize := man.ElemSize + 4
	want := man.Stripes * lay.Rows() * recSize
	for d := range st.devices {
		buf, err := os.ReadFile(deviceFile(dir, d))
		if err != nil {
			return nil, err
		}
		if len(buf) != want {
			return nil, fmt.Errorf("%w: device %d has %d bytes, want %d", ErrManifest, d, len(buf), want)
		}
		off := 0
		for stripe := 0; stripe < man.Stripes; stripe++ {
			col := lay.Col(stripe, d)
			for row := 0; row < lay.Rows(); row++ {
				cell := append([]byte(nil), buf[off:off+man.ElemSize]...)
				crc := binary.LittleEndian.Uint32(buf[off+man.ElemSize : off+recSize])
				off += recSize
				k := cellKey{stripe, layout.Pos{Row: row, Col: col}}
				st.devices[d].cells[k] = cell
				st.devices[d].crcs[k] = crc
			}
		}
		st.devices[d].writes.Store(0)
	}
	st.stripes = man.Stripes
	st.length = man.Length
	return st, nil
}

// VerifyChecksums re-checks every stored cell against its recorded CRC32C
// without counting I/O, returning the locations that fail.
func (s *Store) VerifyChecksums() []core.Access {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var bad []core.Access
	for d, dev := range s.devices {
		for k, cell := range dev.cells {
			if crc32.Checksum(cell, castagnoli) != dev.crcs[k] {
				bad = append(bad, core.Access{Disk: d, Stripe: k.stripe, Pos: k.pos})
			}
		}
	}
	return bad
}
