package store

import (
	"errors"
	"testing"

	"repro/internal/layout"
	"repro/internal/obs"
)

// metricsStore builds a store with a fresh registry and bundle installed.
func metricsStore(t *testing.T) (*Store, *obs.Registry, *Metrics) {
	t.Helper()
	s := testStore(t, layout.FormECFRM)
	reg := obs.NewRegistry()
	m := NewMetrics(reg, s.Scheme().N())
	s.SetMetrics(m)
	return s, reg, m
}

func TestMetricsCountIO(t *testing.T) {
	s, _, m := metricsStore(t)
	fill(t, s, 3*s.Scheme().DataPerStripe()*s.ElementSize(), 1)

	var writes int64
	for d := 0; d < s.Scheme().N(); d++ {
		writes += m.diskWrites[d].Value()
	}
	// Three stripes, every cell written once.
	if want := int64(3 * s.Scheme().CellsPerStripe()); writes != want {
		t.Fatalf("disk write counters total %d, want %d", writes, want)
	}

	if _, err := s.ReadAt(0, 5*s.ElementSize()); err != nil {
		t.Fatal(err)
	}
	var reads int64
	for d := 0; d < s.Scheme().N(); d++ {
		reads += m.diskReads[d].Value()
	}
	if reads != 5 {
		t.Fatalf("disk read counters total %d, want 5", reads)
	}
	if m.readsNormal.Value() != 1 || m.loadNormal.Count() != 1 {
		t.Fatalf("normal read not observed: reads=%d hist=%d",
			m.readsNormal.Value(), m.loadNormal.Count())
	}
	if m.readsDegraded.Value() != 0 {
		t.Fatal("no degraded read happened yet")
	}
}

func TestMetricsDegradedAndEpoch(t *testing.T) {
	s, _, m := metricsStore(t)
	fill(t, s, 2*s.Scheme().DataPerStripe()*s.ElementSize(), 2)

	before := m.epochInval.Value()
	s.FailDisk(0)
	if m.epochInval.Value() != before+1 {
		t.Fatal("FailDisk did not bump the epoch-invalidation counter")
	}
	if _, err := s.ReadAt(0, s.Scheme().DataPerStripe()*s.ElementSize()); err != nil {
		t.Fatal(err)
	}
	if m.readsDegraded.Value() != 1 || m.loadDegraded.Count() != 1 {
		t.Fatalf("degraded read not observed: reads=%d hist=%d",
			m.readsDegraded.Value(), m.loadDegraded.Count())
	}
}

func TestMetricsHeal(t *testing.T) {
	s, _, m := metricsStore(t)
	fill(t, s, s.Scheme().DataPerStripe()*s.ElementSize(), 3)
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.ReadAt(0, s.ElementSize()); err != nil {
		t.Fatal(err)
	}
	if m.heals.Value() != 1 {
		t.Fatalf("heals = %d, want 1", m.heals.Value())
	}
}

func TestMetricsSurviveRecovery(t *testing.T) {
	s, _, m := metricsStore(t)
	fill(t, s, s.Scheme().DataPerStripe()*s.ElementSize(), 4)
	s.FailDisk(1)
	if _, err := s.RecoverDisk(1); err != nil {
		t.Fatal(err)
	}
	wrote := m.diskWrites[1].Value()
	if wrote == 0 {
		t.Fatal("recovery writes not accounted to the replacement device")
	}
	// The replacement keeps feeding the same series on later traffic.
	if _, err := s.ReadAt(0, s.Scheme().DataPerStripe()*s.ElementSize()); err != nil {
		t.Fatal(err)
	}
	var reads int64
	for d := 0; d < s.Scheme().N(); d++ {
		reads += m.diskReads[d].Value()
	}
	if reads == 0 {
		t.Fatal("post-recovery reads not accounted")
	}
}

func TestPlanReadMatchesReadAt(t *testing.T) {
	s, _, _ := metricsStore(t)
	fill(t, s, 2*s.Scheme().DataPerStripe()*s.ElementSize(), 5)

	plan, err := s.PlanRead(0, 7*s.ElementSize())
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.ReadAt(0, 7*s.ElementSize())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost() != res.Plan.Cost() || plan.MaxLoad() != res.Plan.MaxLoad() {
		t.Fatalf("PlanRead (cost=%v maxload=%d) disagrees with ReadAt (cost=%v maxload=%d)",
			plan.Cost(), plan.MaxLoad(), res.Plan.Cost(), res.Plan.MaxLoad())
	}

	// Degraded planning agrees too.
	s.FailDisk(2)
	plan, err = s.PlanRead(0, 7*s.ElementSize())
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.ReadAt(0, 7*s.ElementSize())
	if err != nil {
		t.Fatal(err)
	}
	if plan.Cost() != res.Plan.Cost() || plan.MaxLoad() != res.Plan.MaxLoad() {
		t.Fatal("degraded PlanRead disagrees with ReadAt")
	}

	if _, err := s.PlanRead(-1, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("negative offset error = %v, want ErrRange", err)
	}
	if _, err := s.PlanRead(0, int(s.NextOffset())+1); !errors.Is(err, ErrRange) {
		t.Fatalf("over-extent error = %v, want ErrRange", err)
	}
}

// TestMetricsNilSafe: a store with no bundle installed takes every hot path
// without observing anything — the nil-receiver contract.
func TestMetricsNilSafe(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, s.Scheme().DataPerStripe()*s.ElementSize(), 6)
	s.FailDisk(0)
	if _, err := s.ReadAt(0, s.ElementSize()); err != nil {
		t.Fatal(err)
	}
	if _, err := s.RecoverDisk(0); err != nil {
		t.Fatal(err)
	}
}
