package store

import (
	"bytes"
	"errors"
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/layout"
	"repro/internal/obs"
)

// TestScrubBatchedConcurrentRead proves the scrub's lock is released between
// batches: a full-store Scrub yields to a concurrent exclusive writer (and a
// reader) at every batch boundary instead of queueing them behind one
// store-length lock hold.
func TestScrubBatchedConcurrentRead(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, (3*DefaultScrubBatch+5)*stripeBytes, 42)

	yields := 0
	s.testScrubYield = func(next int) {
		yields++
		done := make(chan error, 2)
		go func() {
			res, err := s.ReadAt(0, 100)
			if err == nil && !bytes.Equal(res.Data, data[:100]) {
				err = errors.New("stale read during scrub")
			}
			done <- err
		}()
		go func() {
			// Exclusive-lock op: blocked for the whole scrub if the
			// scrub held its lock across batches.
			done <- s.WriteAt(0, data[:s.ElementSize()])
		}()
		for i := 0; i < 2; i++ {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("concurrent op during scrub batch %d: %v", yields, err)
				}
			case <-time.After(5 * time.Second):
				t.Fatalf("concurrent op deadlocked during scrub batch %d: scrub is holding the store lock across batches", yields)
			}
		}
	}
	bad, err := s.Scrub()
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean store scrubbed dirty: %v", bad)
	}
	if yields < 3 {
		t.Fatalf("scrub took %d batches, want >= 3 (batching broken)", yields)
	}
}

// TestRecoverDiskMetrics checks the rebuild records its read cost and
// duration in the store's obs bundle.
func TestRecoverDiskMetrics(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	reg := obs.NewRegistry()
	s.SetMetrics(NewMetrics(reg, s.Scheme().N()))
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	fill(t, s, 8*stripeBytes, 7)

	s.FailDisk(3)
	cost, err := s.RecoverDisk(3)
	if err != nil {
		t.Fatal(err)
	}
	if cost == 0 {
		t.Fatal("rebuild read no survivor elements")
	}
	m := s.Metrics()
	if got := m.RecoverReadElements(); got != int64(cost) {
		t.Fatalf("recover-read-elements counter = %d, want %d", got, cost)
	}
	if got := m.RecoverCount(string(RebuildFailed)); got != 1 {
		t.Fatalf("rebuild duration histogram count = %d, want 1", got)
	}
	if got := m.RecoverCount(string(RebuildMigrate)); got != 0 {
		t.Fatalf("migrate duration histogram count = %d, want 0", got)
	}
}

// TestIncrementalRebuildMatchesRecoverDisk drives a rebuild one stripe per
// Step and checks the result is indistinguishable from the synchronous
// wrapper: identical data, clean scrub, device healthy.
func TestIncrementalRebuildMatchesRecoverDisk(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 7*stripeBytes+13, 11)

	s.FailDisk(2)
	r, err := s.BeginDiskRebuild(2)
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for {
		done, err := r.Step(1)
		if err != nil {
			t.Fatal(err)
		}
		steps++
		if done {
			break
		}
	}
	if steps != s.Stripes() {
		t.Fatalf("one-stripe steps = %d, want %d", steps, s.Stripes())
	}
	if got := s.FailedDisks(); len(got) != 0 {
		t.Fatalf("disks still failed after rebuild: %v", got)
	}
	if got := s.Rebuilding(); len(got) != 0 {
		t.Fatalf("rebuild still registered: %v", got)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("rebuilt store returned different data")
	}
	if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("post-rebuild scrub: bad=%v err=%v", bad, err)
	}
}

func TestBeginDiskRebuildValidation(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 1000, 3)
	if _, err := s.BeginDiskRebuild(0); err == nil {
		t.Fatal("rebuild of healthy disk must fail")
	}
	if _, err := s.BeginDiskRebuild(-1); err == nil {
		t.Fatal("rebuild of bogus disk must fail")
	}
	s.FailDisk(1)
	r, err := s.BeginDiskRebuild(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.BeginDiskRebuild(1); err == nil {
		t.Fatal("double begin must fail")
	}
	if _, err := s.BeginDiskMigration(1); err == nil {
		t.Fatal("migrating a failed disk must fail")
	}
	r.Abort()
	if got := s.Rebuilding(); len(got) != 0 {
		t.Fatalf("abort left rebuild registered: %v", got)
	}
	// Abort leaves the disk failed; a fresh begin may start over.
	if _, err := s.BeginDiskRebuild(1); err != nil {
		t.Fatalf("begin after abort: %v", err)
	}
}

// TestConcurrentReadsDuringRebuild hammers reads while a rebuild steps
// through its batches — the shared-lock batching must keep every read
// succeeding with correct data (run under -race).
func TestConcurrentReadsDuringRebuild(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 20*stripeBytes, 23)

	s.FailDisk(4)
	r, err := s.BeginDiskRebuild(4)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			off := seed * 100
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := s.ReadAt(int64(off), 256)
				if err != nil {
					t.Errorf("read during rebuild: %v", err)
					return
				}
				if !bytes.Equal(res.Data, data[off:off+256]) {
					t.Error("stale data during rebuild")
					return
				}
			}
		}(i)
	}
	for {
		done, err := r.Step(2)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	close(stop)
	wg.Wait()
}

// TestMigrationMem migrates a healthy device onto a fresh in-memory
// replacement and checks nothing observable changes.
func TestMigrationMem(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 9*stripeBytes+5, 31)

	r, err := s.BeginDiskMigration(5)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Rebuilding(); len(got) != 1 || got[0] != 5 {
		t.Fatalf("Rebuilding = %v, want [5]", got)
	}
	// Writes are fenced off while a migration may have already copied the
	// cells a write would touch.
	if err := s.WriteAt(0, make([]byte, s.ElementSize())); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("WriteAt during migration = %v, want ErrUnavailable", err)
	}
	for {
		done, err := r.Step(3)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("migrated store returned different data")
	}
	if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("post-migration scrub: bad=%v err=%v", bad, err)
	}
	// The fence lifts once the migration is done.
	if err := s.WriteAt(0, data[:s.ElementSize()]); err != nil {
		t.Fatalf("WriteAt after migration: %v", err)
	}
}

// TestMigrationFileBacked checks the staging-file protocol: cells stream
// into dev_NN.{data,crc}.new, promotion renames them over the originals,
// and a reopened store recovers cleanly with identical contents.
func TestMigrationFileBacked(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 6*stripeBytes, 59)

	r, err := s.BeginDiskMigration(1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(2); err != nil {
		t.Fatal(err)
	}
	// Mid-migration the staging pair exists alongside the live files.
	if _, err := os.Stat(devDataFile(dir, 1) + stagingSuffix); err != nil {
		t.Fatalf("staging data file missing mid-migration: %v", err)
	}
	for {
		done, err := r.Step(2)
		if err != nil {
			t.Fatal(err)
		}
		if done {
			break
		}
	}
	// Promotion renamed the staging pair over the originals.
	for _, name := range []string{devDataFile(dir, 1) + stagingSuffix, devCRCFile(dir, 1) + stagingSuffix} {
		if _, err := os.Stat(name); !os.IsNotExist(err) {
			t.Fatalf("staging file %s survived promotion (err=%v)", name, err)
		}
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("migrated store returned different data")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, rep := openFileStore(t, dir)
	defer s2.Close()
	if rep.HealedCells != 0 {
		t.Fatalf("reopen after migration healed %d cells, want 0", rep.HealedCells)
	}
	if got := readAll(t, s2); !bytes.Equal(got, data) {
		t.Fatal("reopened store returned different data")
	}
}

// TestMigrationAbortDiscardsStaging checks an abandoned migration removes
// its staging files and leaves the source device serving.
func TestMigrationAbortDiscardsStaging(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	defer s.Close()
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 6*stripeBytes, 61)

	r, err := s.BeginDiskMigration(2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Step(2); err != nil {
		t.Fatal(err)
	}
	r.Abort()
	for _, name := range []string{devDataFile(dir, 2) + stagingSuffix, devCRCFile(dir, 2) + stagingSuffix} {
		if _, err := os.Stat(name); !os.IsNotExist(err) {
			t.Fatalf("staging file %s survived abort (err=%v)", name, err)
		}
	}
	if got := readAll(t, s); !bytes.Equal(got, data) {
		t.Fatal("aborted migration changed data")
	}
	if err := s.WriteAt(0, data[:s.ElementSize()]); err != nil {
		t.Fatalf("WriteAt after aborted migration: %v", err)
	}
}

// TestScrubRangeBounds exercises the incremental scrub cursor arithmetic.
func TestScrubRangeBounds(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	fill(t, s, 5*stripeBytes, 17)

	bad, next, err := s.ScrubRange(0, 2)
	if err != nil || len(bad) != 0 || next != 2 {
		t.Fatalf("ScrubRange(0,2) = %v,%d,%v", bad, next, err)
	}
	// Count past the extent clamps.
	bad, next, err = s.ScrubRange(3, 100)
	if err != nil || len(bad) != 0 || next != 5 {
		t.Fatalf("ScrubRange(3,100) = %v,%d,%v", bad, next, err)
	}
	// At or past the extent: no-op, cursor unchanged.
	if _, next, _ = s.ScrubRange(5, 2); next != 5 {
		t.Fatalf("ScrubRange(5,2) next = %d, want 5", next)
	}
	if _, next, _ = s.ScrubRange(99, 2); next != 99 {
		t.Fatalf("ScrubRange(99,2) next = %d, want 99", next)
	}
}

// TestScrubRangeFindsAndHealStripeFixes corrupts cells in known stripes and
// drives the detect→heal cycle the background scrubber uses.
func TestScrubRangeFindsAndHealStripeFixes(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	data := fill(t, s, 6*stripeBytes, 19)

	for _, stripe := range []int{1, 4} {
		if err := s.CorruptCell(stripe, layout.Pos{Row: 0, Col: 2}); err != nil {
			t.Fatal(err)
		}
	}
	bad, _, err := s.ScrubRange(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != 1 || bad[1] != 4 {
		t.Fatalf("bad stripes = %v, want [1 4]", bad)
	}
	total := 0
	for _, stripe := range bad {
		healed, err := s.HealStripe(stripe)
		if err != nil {
			t.Fatal(err)
		}
		total += healed
	}
	if total != 2 {
		t.Fatalf("healed %d cells, want 2", total)
	}
	if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("post-heal scrub: bad=%v err=%v", bad, err)
	}
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("healed store returned different data")
	}
}

// TestDeviceHealthSignals checks the detector inputs: error counts rise on
// injected faults, latency EWMAs fill in after successful reads.
func TestDeviceHealthSignals(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	stripeBytes := s.Scheme().DataPerStripe() * s.ElementSize()
	fill(t, s, 4*stripeBytes, 29)

	if _, err := s.ReadAt(0, 512); err != nil {
		t.Fatal(err)
	}
	lats := s.DiskLatencies()
	some := false
	for _, l := range lats {
		if l > 0 {
			some = true
		}
	}
	if !some {
		t.Fatalf("no latency EWMA seeded after reads: %v", lats)
	}

	errsBefore := s.DiskErrorCounts()
	// An injected fail-stop verdict counts as a hard error on every touch;
	// the degraded fallback still serves the read.
	fastRetries(s)
	s.SetFaultInjector(stubInjector{read: onlyDev(0, Fault{Failed: true})})
	if _, err := s.ReadAt(0, 512); err != nil {
		t.Fatal(err)
	}
	errsAfter := s.DiskErrorCounts()
	if errsAfter[0] <= errsBefore[0] {
		t.Fatalf("disk 0 error count did not rise: %d -> %d", errsBefore[0], errsAfter[0])
	}
}
