package store

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

// wideGrid is the GF(2^16) wide-stripe sweep the store end-to-end tests
// cover: stripes of k=32/64 data elements, widths no GF(2^8) code reaches.
// Element sizes respect each scheme's SymbolBytes (2 for the matrix codes,
// 16 for packet-layout CRS16).
func wideGrid(t testing.TB) map[string]*core.Scheme {
	t.Helper()
	cells := make(map[string]*core.Scheme)
	for cname, c := range map[string]codes.Code{
		"rs16-64":  rs.Must16(64, 4),
		"lrc16-32": lrc.Must16(32, 4, 2),
		"crs16-32": crs.Must16(32, 3),
	} {
		for _, form := range []layout.Form{layout.FormStandard, layout.FormECFRM} {
			cells[fmt.Sprintf("%s-%s", cname, form)] = core.MustScheme(c, form)
		}
	}
	return cells
}

// TestWideStripeStoreEndToEnd proves the wide-stripe hot path through the
// full store: append, seal, flush, normal reads, in-tolerance disk failures
// with degraded reads, and the fan-out executor — all at k=32/64 where the
// GF(2^16) kernels carry every encode and rebuild. Runs under -race via
// `make race-io`.
func TestWideStripeStoreEndToEnd(t *testing.T) {
	for name, scheme := range wideGrid(t) {
		t.Run(name, func(t *testing.T) {
			const elem = 64 // multiple of every SymbolBytes in the grid
			st := MustNew(scheme, elem)
			st.SetRetryPolicy(200*time.Microsecond, 2)
			rng := rand.New(rand.NewSource(int64(len(name))))
			payload := make([]byte, 3*scheme.DataPerStripe()*elem+elem/2)
			rng.Read(payload)
			if err := st.Append(payload); err != nil {
				t.Fatal(err)
			}
			if err := st.Flush(); err != nil {
				t.Fatal(err)
			}

			// Normal reads across random ranges.
			for trial := 0; trial < 12; trial++ {
				off := rng.Intn(len(payload) - 1)
				ln := 1 + rng.Intn(len(payload)-off)
				res, err := st.ReadAt(int64(off), ln)
				if err != nil {
					t.Fatalf("normal read [%d,%d): %v", off, off+ln, err)
				}
				if !bytes.Equal(res.Data, payload[off:off+ln]) {
					t.Fatalf("normal read [%d,%d): wrong bytes", off, off+ln)
				}
			}

			// Fail FaultTolerance() disks; every read must still return the
			// exact payload, via sequential and fan-out executors alike.
			for i := 0; i < scheme.FaultTolerance(); i++ {
				st.FailDiskWithinTolerance(rng.Intn(scheme.N()))
			}
			optsList := []ReadOptions{
				{Sequential: true},
				{},
				{Concurrency: 4},
				{Concurrency: 8, Hedge: HedgeConfig{Enabled: true, Quantile: 0.9, Min: 5 * time.Millisecond}},
			}
			for trial := 0; trial < 12; trial++ {
				off := rng.Intn(len(payload) - 1)
				ln := 1 + rng.Intn(len(payload)-off)
				opts := optsList[trial%len(optsList)]
				res, err := st.ReadAtCtx(context.Background(), int64(off), ln, opts)
				if err != nil {
					t.Fatalf("degraded read [%d,%d) opts %+v: %v", off, off+ln, opts, err)
				}
				if !bytes.Equal(res.Data, payload[off:off+ln]) {
					t.Fatalf("degraded read [%d,%d) opts %+v: wrong bytes", off, off+ln, opts)
				}
			}

			// Full disk recovery brings the store back to verifying clean.
			for _, d := range st.FailedDisks() {
				if _, err := st.RecoverDisk(d); err != nil {
					t.Fatalf("recover disk %d: %v", d, err)
				}
			}
			res, err := st.ReadAt(0, len(payload))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(res.Data, payload) {
				t.Fatal("payload mismatch after repair")
			}
		})
	}
}
