// Per-device async submission queues: the I/O executor under the file
// backend (see diskdev.go).
//
// The interface is deliberately io_uring-shaped — prepare an SQE, Submit it,
// reap a CQE — so that a native io_uring (or SPDK-style) backend can slot in
// behind the same store plumbing later without touching any caller. Today
// the executor is a bounded goroutine pool doing pread/pwrite/fsync against
// one *os.File per device: submissions queue on a bounded channel (the
// "ring"), a small fixed set of workers drains it, and completions are
// delivered either to the queue's shared completion channel (ring style) or
// to a per-call channel via SubmitWait (what the store's synchronous cell
// paths use).
//
// Ordering: the queue itself promises nothing about cross-SQE ordering —
// exactly like io_uring. The store layers its ordering on top: commits gate
// every write, then submit, then SubmitWait(OpSync) before publishing, so
// write-then-fsync-then-publish holds regardless of how workers interleave.
package store

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// OpKind is the operation an SQE requests.
type OpKind uint8

const (
	// OpRead fills Buf from Off (a positioned pread; short reads error).
	OpRead OpKind = iota
	// OpWrite writes Buf at Off (a positioned pwrite).
	OpWrite
	// OpSync flushes the file (and its metadata) to stable storage.
	OpSync
)

func (op OpKind) String() string {
	switch op {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	}
	return fmt.Sprintf("op(%d)", op)
}

// SQE is one submission-queue entry.
type SQE struct {
	Op  OpKind
	Off int64
	Buf []byte
	// UserData is echoed verbatim in the completion, like io_uring's
	// user_data field.
	UserData uint64
	// done, when non-nil, receives this SQE's completion instead of the
	// queue's shared completion channel (SubmitWait installs it).
	done chan CQE
}

// CQE is one completion-queue entry.
type CQE struct {
	UserData uint64
	N        int
	Err      error
}

// queueObs is the observability bundle an ioQueue reports into. Swapped
// atomically so metrics can be wired after the queue (and its workers)
// exist.
type queueObs struct {
	depth    *obs.Gauge     // queued + executing SQEs
	readSec  *obs.Histogram // per-OpRead service time
	writeSec *obs.Histogram // per-OpWrite service time
	syncSec  *obs.Histogram // per-OpSync (fsync) service time
}

// ioQueue is the pooled pread/pwrite implementation of the submission-queue
// interface over one file.
type ioQueue struct {
	f      *os.File
	sq     chan SQE
	cq     chan CQE
	wg     sync.WaitGroup
	depth  atomic.Int64
	obs    atomic.Pointer[queueObs]
	closed atomic.Bool
}

// errQueueClosed is returned for submissions after Close.
var errQueueClosed = fmt.Errorf("store: submission queue closed")

const (
	defaultQueueDepth   = 64
	defaultQueueWorkers = 4
)

// newIOQueue starts workers goroutines draining a depth-bounded submission
// queue over f. The queue owns f: Close closes it.
func newIOQueue(f *os.File, workers, depth int) *ioQueue {
	if workers <= 0 {
		workers = defaultQueueWorkers
	}
	if depth <= 0 {
		depth = defaultQueueDepth
	}
	q := &ioQueue{
		f:  f,
		sq: make(chan SQE, depth),
		cq: make(chan CQE, depth),
	}
	q.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go q.worker()
	}
	return q
}

// setObs installs (or clears) the queue's metric sinks.
func (q *ioQueue) setObs(o *queueObs) { q.obs.Store(o) }

// Depth returns the number of submitted-but-uncompleted SQEs.
func (q *ioQueue) Depth() int { return int(q.depth.Load()) }

// Submit enqueues e, blocking while the ring is full. The completion arrives
// on the shared completion channel (reap with Complete) unless the SQE
// carries a private done channel.
func (q *ioQueue) Submit(e SQE) error {
	if q.closed.Load() {
		return errQueueClosed
	}
	q.depth.Add(1)
	if o := q.obs.Load(); o != nil {
		o.depth.Add(1)
	}
	q.sq <- e
	return nil
}

// Complete reaps one completion from the shared completion channel,
// blocking until one is available.
func (q *ioQueue) Complete() CQE { return <-q.cq }

// SubmitWait submits one operation and blocks for its completion — the
// synchronous convenience the store's cell paths use.
func (q *ioQueue) SubmitWait(op OpKind, off int64, buf []byte) (int, error) {
	done := make(chan CQE, 1)
	if err := q.Submit(SQE{Op: op, Off: off, Buf: buf, done: done}); err != nil {
		return 0, err
	}
	c := <-done
	return c.N, c.Err
}

// Close drains the ring, stops the workers, and closes the file. Concurrent
// and later submissions fail with errQueueClosed.
func (q *ioQueue) Close() error {
	if q.closed.Swap(true) {
		return nil
	}
	close(q.sq)
	q.wg.Wait()
	return q.f.Close()
}

func (q *ioQueue) worker() {
	defer q.wg.Done()
	for e := range q.sq {
		start := time.Now()
		c := CQE{UserData: e.UserData}
		switch e.Op {
		case OpRead:
			c.N, c.Err = q.f.ReadAt(e.Buf, e.Off)
		case OpWrite:
			c.N, c.Err = q.f.WriteAt(e.Buf, e.Off)
		case OpSync:
			c.Err = q.f.Sync()
		default:
			c.Err = fmt.Errorf("store: unknown submission op %d", e.Op)
		}
		if o := q.obs.Load(); o != nil {
			o.depth.Add(-1)
			sec := time.Since(start).Seconds()
			switch e.Op {
			case OpRead:
				o.readSec.Observe(sec)
			case OpWrite:
				o.writeSec.Observe(sec)
			case OpSync:
				o.syncSec.Observe(sec)
			}
		}
		q.depth.Add(-1)
		if e.done != nil {
			e.done <- c
		} else {
			q.cq <- c
		}
	}
}
