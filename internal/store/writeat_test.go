package store

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/crs"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

// totalWrites sums the element-write counters across all devices.
func totalWrites(s *Store) int {
	n := 0
	for d := 0; d < s.Scheme().N(); d++ {
		n += s.Device(d).Writes()
	}
	return n
}

// TestWriteAtDeltaEquivalentToReencode is the parity-delta property test:
// for every candidate code × layout form, a random sequence of element-
// aligned sub-stripe overwrites applied via the parity-delta path (WriteAt)
// and via full-stripe re-encode (WriteAtReencode) must leave two stores
// byte-identical and scrub-clean — while the delta path writes strictly
// fewer device elements.
func TestWriteAtDeltaEquivalentToReencode(t *testing.T) {
	codeSet := map[string]codes.Code{
		"rs":  rs.Must(6, 3),
		"lrc": lrc.Must(6, 2, 2),
		"crs": crs.Must(6, 3),
	}
	forms := []layout.Form{layout.FormStandard, layout.FormRotated, layout.FormECFRM}
	for name, code := range codeSet {
		for _, form := range forms {
			t.Run(name+"/"+string(form), func(t *testing.T) {
				t.Parallel()
				rng := rand.New(rand.NewSource(int64(len(name)) + int64(len(form))*17))
				mk := func() *Store {
					s := MustNew(core.MustScheme(code, form), 64)
					fill(t, s, 6*s.stripeBytes(), 42)
					return s
				}
				delta, reenc := mk(), mk()
				delta.ResetCounters()
				reenc.ResetCounters()

				elem := delta.ElementSize()
				extent := delta.NextOffset()
				for i := 0; i < 24; i++ {
					// Element-aligned offset and length, inside the sealed
					// extent, spanning 1..4 elements (often sub-stripe).
					maxElems := int(extent)/elem - 1
					at := int64(rng.Intn(maxElems)) * int64(elem)
					n := 1 + rng.Intn(4)
					if rem := int(extent-at) / elem; n > rem {
						n = rem
					}
					data := make([]byte, n*elem)
					rng.Read(data)
					if err := delta.WriteAt(at, data); err != nil {
						t.Fatalf("update %d: delta WriteAt(%d,%d): %v", i, at, len(data), err)
					}
					if err := reenc.WriteAtReencode(at, data); err != nil {
						t.Fatalf("update %d: WriteAtReencode(%d,%d): %v", i, at, len(data), err)
					}
				}

				dres, err := delta.ReadAt(0, int(extent))
				if err != nil {
					t.Fatalf("delta read: %v", err)
				}
				rres, err := reenc.ReadAt(0, int(extent))
				if err != nil {
					t.Fatalf("reencode read: %v", err)
				}
				if !bytes.Equal(dres.Data, rres.Data) {
					t.Fatal("delta and re-encode stores diverged")
				}
				for which, s := range map[string]*Store{"delta": delta, "reencode": reenc} {
					bad, err := s.Scrub()
					if err != nil {
						t.Fatalf("%s scrub: %v", which, err)
					}
					if len(bad) != 0 {
						t.Fatalf("%s scrub found corrupt stripes %v", which, bad)
					}
				}

				// Scrub reads don't write; compare the accumulated write
				// counters. The delta path touches changed data cells plus
				// their parity cells; re-encode rewrites whole stripes.
				dw, rw := totalWrites(delta), totalWrites(reenc)
				if dw >= rw {
					t.Fatalf("parity-delta wrote %d elements, re-encode wrote %d; delta must be strictly cheaper", dw, rw)
				}
				t.Logf("%s/%s: delta wrote %d elements vs re-encode %d (%.1fx fewer)",
					name, form, dw, rw, float64(rw)/float64(dw))
			})
		}
	}
}

// TestWriteAtReencodeValidation: the baseline path enforces the same
// argument contract as WriteAt.
func TestWriteAtReencodeValidation(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 2*s.stripeBytes(), 1)
	elem := s.ElementSize()
	if err := s.WriteAtReencode(1, make([]byte, elem)); err == nil {
		t.Fatal("unaligned offset accepted")
	}
	if err := s.WriteAtReencode(0, make([]byte, elem-1)); err == nil {
		t.Fatal("unaligned length accepted")
	}
	if err := s.WriteAtReencode(s.NextOffset(), make([]byte, elem)); err == nil {
		t.Fatal("write past sealed extent accepted")
	}
}

// TestWriteAtReencodeFaultAborts: like WriteAt, the re-encode baseline must
// gate every cell before mutating any device — a faulted device aborts the
// whole update and leaves both data and parity untouched.
func TestWriteAtReencodeFaultAborts(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fastRetries(s)
	fill(t, s, 2*s.stripeBytes(), 5)
	before, err := s.ReadAt(0, int(s.NextOffset()))
	if err != nil {
		t.Fatalf("read before: %v", err)
	}
	orig := append([]byte(nil), before.Data...)

	s.SetFaultInjector(stubInjector{write: onlyDev(2, Fault{Err: errors.New("injected write fault")})})
	upd := bytes.Repeat([]byte{0xee}, 2*s.ElementSize())
	if err := s.WriteAtReencode(0, upd); err == nil {
		t.Fatal("faulted re-encode reported success")
	}
	s.SetFaultInjector(nil)

	after, err := s.ReadAt(0, int(s.NextOffset()))
	if err != nil {
		t.Fatalf("read after: %v", err)
	}
	if !bytes.Equal(after.Data, orig) {
		t.Fatal("aborted re-encode mutated the store")
	}
	if bad, err := s.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("scrub after aborted write: bad=%v err=%v", bad, err)
	}
}
