package store

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
	"repro/internal/rs"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 7000, 120)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), dir)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stripes() != s.Stripes() || loaded.Len() != s.Len() {
		t.Fatalf("geometry: %d/%d stripes, %d/%d bytes",
			loaded.Stripes(), s.Stripes(), loaded.Len(), s.Len())
	}
	res, err := loaded.ReadAt(0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("loaded store returned different bytes")
	}
	if bad, _ := loaded.Scrub(); bad != nil {
		t.Fatalf("loaded store scrubs dirty: %v", bad)
	}
	// Degraded read still works on the loaded store.
	loaded.FailDisk(5)
	res, err = loaded.ReadAt(100, 2000)
	if err != nil || !bytes.Equal(res.Data, data[100:2100]) {
		t.Fatalf("degraded read on loaded store: %v", err)
	}
}

func TestSaveRefusesPendingAndFailed(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, layout.FormECFRM)
	if err := s.Append([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err == nil {
		t.Fatal("save with pending bytes must fail")
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.FailDisk(1)
	if err := s.Save(dir); !errors.Is(err, ErrFailed) {
		t.Fatalf("save with failed disk: %v", err)
	}
}

func TestLoadRejectsMismatchedScheme(t *testing.T) {
	dir := t.TempDir()
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 2000, 121)
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	// Wrong code entirely.
	if _, err := Load(core.MustScheme(rs.Must(6, 3), layout.FormECFRM), dir); !errors.Is(err, ErrManifest) {
		t.Fatalf("wrong scheme: %v", err)
	}
	// Same code, wrong form.
	if _, err := Load(core.MustScheme(lrc.Must(6, 2, 2), layout.FormStandard), dir); !errors.Is(err, ErrManifest) {
		t.Fatalf("wrong form: %v", err)
	}
	// Missing directory.
	if _, err := Load(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), filepath.Join(dir, "nope")); !errors.Is(err, ErrManifest) {
		t.Fatalf("missing manifest: %v", err)
	}
}

func TestCorruptionSurvivesSaveLoad(t *testing.T) {
	// Silent corruption on a saved store must stay detectable after Load
	// (checksums persist verbatim, not recomputed over corrupt bytes).
	dir := t.TempDir()
	s := testStore(t, layout.FormECFRM)
	data := fill(t, s, 3000, 122)
	if err := s.CorruptCell(0, layout.Pos{Row: 0, Col: 1}); err != nil {
		t.Fatal(err)
	}
	if err := s.Save(dir); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := loaded.VerifyChecksums()
	if len(bad) != 1 || bad[0].Stripe != 0 || bad[0].Pos != (layout.Pos{Row: 0, Col: 1}) {
		t.Fatalf("VerifyChecksums = %+v, want the one corrupted cell", bad)
	}
	// And a read through it heals.
	res, err := loaded.ReadAt(64, 64)
	if err != nil || res.Healed != 1 {
		t.Fatalf("healing read: healed=%d err=%v", res.Healed, err)
	}
	if !bytes.Equal(res.Data, data[64:128]) {
		t.Fatal("healed bytes wrong")
	}
	if got := loaded.VerifyChecksums(); got != nil {
		t.Fatalf("checksums still bad after heal: %v", got)
	}
}

func TestVerifyChecksumsClean(t *testing.T) {
	s := testStore(t, layout.FormECFRM)
	fill(t, s, 1000, 123)
	if bad := s.VerifyChecksums(); bad != nil {
		t.Fatalf("clean store reports %v", bad)
	}
}
