package store

import (
	"bytes"
	"context"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
)

const testElemSize = 64

func fileScheme() *core.Scheme {
	return core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM)
}

// openFileStore opens (or reopens) a file-backed store in dir and fails the
// test on error.
func openFileStore(t *testing.T, dir string) (*Store, *RecoveryReport) {
	t.Helper()
	st, rep, err := OpenFileBacked(fileScheme(), testElemSize, FileConfig{Dir: dir})
	if err != nil {
		t.Fatalf("OpenFileBacked(%s): %v", dir, err)
	}
	return st, rep
}

func readAll(t *testing.T, s *Store) []byte {
	t.Helper()
	if s.Len() == 0 {
		return nil
	}
	res, err := s.ReadAt(0, int(s.Len()))
	if err != nil {
		t.Fatalf("ReadAt(0, %d): %v", s.Len(), err)
	}
	return res.Data
}

func TestFileBackendRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, rep := openFileStore(t, dir)
	defer s.Close()
	if rep.Stripes != 0 || rep.HealedCells != 0 {
		t.Fatalf("fresh store reported recovery work: %+v", rep)
	}
	data := fill(t, s, 5000, 70)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 50; trial++ {
		off := rng.Intn(4500)
		ln := 1 + rng.Intn(500)
		for _, opts := range []ReadOptions{
			{Sequential: true},
			{},
			{Hedge: HedgeConfig{Enabled: true}},
		} {
			res, err := s.ReadAtCtx(context.Background(), int64(off), ln, opts)
			if err != nil {
				t.Fatalf("opts %+v: %v", opts, err)
			}
			if !bytes.Equal(res.Data, data[off:off+ln]) {
				t.Fatalf("opts %+v: payload mismatch at [%d,%d)", opts, off, off+ln)
			}
		}
	}
}

func TestFileBackendReopenPersists(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	data := fill(t, s, 5000, 72) // not stripe-aligned: exercises the manifest length
	wantStripes := s.Stripes()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	s2, rep := openFileStore(t, dir)
	defer s2.Close()
	if rep.Stripes != wantStripes || rep.HealedCells != 0 || rep.TruncatedStripes != 0 || rep.ReencodedStripes != 0 {
		t.Fatalf("reopen report %+v, want %d clean stripes", rep, wantStripes)
	}
	if s2.Len() != int64(len(data)) {
		t.Fatalf("Len after reopen = %d, want %d", s2.Len(), len(data))
	}
	if !bytes.Equal(readAll(t, s2), data) {
		t.Fatal("payload mismatch after reopen")
	}
}

func TestFileBackendMatchesMemDegraded(t *testing.T) {
	dir := t.TempDir()
	fs, _ := openFileStore(t, dir)
	defer fs.Close()
	ms := MustNew(fileScheme(), testElemSize)
	var want []byte
	{
		data := make([]byte, 4000)
		rand.New(rand.NewSource(73)).Read(data)
		for _, s := range []*Store{fs, ms} {
			if err := s.Append(data); err != nil {
				t.Fatal(err)
			}
			if err := s.Flush(); err != nil {
				t.Fatal(err)
			}
		}
		want = data
	}
	fs.FailDisk(2)
	ms.FailDisk(2)
	rng := rand.New(rand.NewSource(74))
	for trial := 0; trial < 30; trial++ {
		off := rng.Intn(3500)
		ln := 1 + rng.Intn(400)
		fres, err := fs.ReadAt(int64(off), ln)
		if err != nil {
			t.Fatalf("file degraded read: %v", err)
		}
		mres, err := ms.ReadAt(int64(off), ln)
		if err != nil {
			t.Fatalf("mem degraded read: %v", err)
		}
		if !bytes.Equal(fres.Data, want[off:off+ln]) || !bytes.Equal(fres.Data, mres.Data) {
			t.Fatalf("degraded payload mismatch at [%d,%d)", off, off+ln)
		}
	}
}

// rowsOf returns the rows-per-stripe of the test scheme, i.e. how many
// device-local records one stripe occupies.
func rowsOf(sch *core.Scheme) int { return sch.CellsPerStripe() / sch.N() }

func TestFileBackendTornCellHealed(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	data := fill(t, s, 5000, 75)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear one cell: flip a byte of device 0's first record. The sidecar
	// checksum now disagrees, so recovery must rebuild the cell.
	f, err := os.OpenFile(devDataFile(dir, 0), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff, 0xee, 0xdd}, 3); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2, rep := openFileStore(t, dir)
	if rep.HealedCells == 0 {
		t.Fatalf("torn cell not healed: %+v", rep)
	}
	if !bytes.Equal(readAll(t, s2), data) {
		t.Fatal("payload mismatch after heal")
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	// The heal was persisted: a third open finds nothing to do.
	s3, rep := openFileStore(t, dir)
	defer s3.Close()
	if rep.HealedCells != 0 || rep.TruncatedStripes != 0 {
		t.Fatalf("heal did not stick: %+v", rep)
	}
}

func TestFileBackendTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	sch := s.Scheme()
	stripeBytes := sch.DataPerStripe() * testElemSize
	data := fill(t, s, 5*stripeBytes, 76)
	if s.Stripes() != 5 {
		t.Fatalf("stripes = %d, want 5", s.Stripes())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Garbage the last TWO stripes on every device — the multi-stripe torn
	// tail one crashed group commit leaves. Both must be truncated.
	rows := rowsOf(sch)
	garbage := bytes.Repeat([]byte{0x5a}, 2*rows*testElemSize)
	for d := 0; d < sch.N(); d++ {
		f, err := os.OpenFile(devDataFile(dir, d), os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(garbage, int64(3*rows*testElemSize)); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	s2, rep := openFileStore(t, dir)
	defer s2.Close()
	if rep.TruncatedStripes != 2 {
		t.Fatalf("TruncatedStripes = %d, want 2 (%+v)", rep.TruncatedStripes, rep)
	}
	if s2.Stripes() != 3 {
		t.Fatalf("stripes after truncation = %d, want 3", s2.Stripes())
	}
	want := int64(3 * stripeBytes)
	if s2.Len() != want {
		t.Fatalf("Len = %d, want %d", s2.Len(), want)
	}
	if !bytes.Equal(readAll(t, s2), data[:want]) {
		t.Fatal("surviving prefix mismatch")
	}
}

func TestFileBackendMidStoreHoleRefused(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	sch := s.Scheme()
	stripeBytes := sch.DataPerStripe() * testElemSize
	fill(t, s, 3*stripeBytes, 77)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Destroy stripe 0 on every device. Stripes 1 and 2 still decode, so
	// this is NOT a torn tail and recovery must refuse rather than truncate
	// sealed data away.
	rows := rowsOf(sch)
	garbage := bytes.Repeat([]byte{0x5a}, rows*testElemSize)
	for d := 0; d < sch.N(); d++ {
		f, err := os.OpenFile(devDataFile(dir, d), os.O_RDWR, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(garbage, 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	_, _, err := OpenFileBacked(fileScheme(), testElemSize, FileConfig{Dir: dir})
	if err == nil {
		t.Fatal("mid-store hole silently accepted")
	}
	if !strings.Contains(err.Error(), "not a torn tail") {
		t.Fatalf("unexpected refusal: %v", err)
	}
}

func TestFileBackendWriteHoleReencoded(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	sch := s.Scheme()
	stripeBytes := sch.DataPerStripe() * testElemSize
	data := fill(t, s, 2*stripeBytes, 78)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a write hole: overwrite a DATA cell and fix its sidecar
	// checksum, leaving the stripe checksum-clean but parity-inconsistent.
	// Recovery must take the data as truth and re-encode the parity.
	lay := sch.Layout()
	pos := lay.DataPos(0)
	disk := lay.Disk(0, pos.Col)
	slot := pos.Row // stripe 0
	cell := make([]byte, testElemSize)
	rand.New(rand.NewSource(79)).Read(cell)
	df, err := os.OpenFile(devDataFile(dir, disk), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := df.WriteAt(cell, int64(slot*testElemSize)); err != nil {
		t.Fatal(err)
	}
	df.Close()
	var crcRec [4]byte
	binary.LittleEndian.PutUint32(crcRec[:], crc32.Checksum(cell, castagnoli))
	cf, err := os.OpenFile(devCRCFile(dir, disk), os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cf.WriteAt(crcRec[:], int64(slot*4)); err != nil {
		t.Fatal(err)
	}
	cf.Close()

	s2, rep := openFileStore(t, dir)
	if rep.ReencodedStripes != 1 || rep.HealedCells != 0 {
		t.Fatalf("report %+v, want exactly one re-encoded stripe", rep)
	}
	// Data element 0 of stripe 0 occupies user offsets [0, elemSize): the
	// overwritten content — not the original — is what the store now serves.
	want := append([]byte(nil), cell...)
	want = append(want, data[testElemSize:]...)
	if !bytes.Equal(readAll(t, s2), want) {
		t.Fatal("payload mismatch after re-encode")
	}
	if bad, err := s2.Scrub(); err != nil || len(bad) != 0 {
		t.Fatalf("scrub after re-encode: bad=%v err=%v", bad, err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}

	s3, rep := openFileStore(t, dir)
	defer s3.Close()
	if rep.ReencodedStripes != 0 {
		t.Fatalf("re-encode did not stick: %+v", rep)
	}
}

func TestFileBackendWriteAtDurable(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	data := fill(t, s, 5000, 80)
	patch := make([]byte, 5*testElemSize)
	rand.New(rand.NewSource(81)).Read(patch)
	if err := s.WriteAt(16*testElemSize, patch); err != nil {
		t.Fatal(err)
	}
	copy(data[16*testElemSize:], patch)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The parity-delta partial write must be durable AND parity-consistent
	// on disk: reopening runs the full parity scrub.
	s2, rep := openFileStore(t, dir)
	defer s2.Close()
	if rep.HealedCells != 0 || rep.ReencodedStripes != 0 || rep.TruncatedStripes != 0 {
		t.Fatalf("WriteAt left inconsistent state: %+v", rep)
	}
	if !bytes.Equal(readAll(t, s2), data) {
		t.Fatal("payload mismatch after WriteAt + reopen")
	}
}

func TestFileBackendFailRecoverDisk(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	data := fill(t, s, 5000, 82)

	s.FailDisk(1)
	res, err := s.ReadAt(0, len(data))
	if err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(res.Data, data) {
		t.Fatal("degraded payload mismatch")
	}

	if _, err := s.RecoverDisk(1); err != nil {
		t.Fatalf("RecoverDisk: %v", err)
	}
	if !bytes.Equal(readAll(t, s), data) {
		t.Fatal("payload mismatch after rebuild")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// The rebuilt device file must hold the full complement of cells.
	s2, rep := openFileStore(t, dir)
	defer s2.Close()
	if rep.HealedCells != 0 || rep.TruncatedStripes != 0 {
		t.Fatalf("rebuild left holes: %+v", rep)
	}
	if !bytes.Equal(readAll(t, s2), data) {
		t.Fatal("payload mismatch after rebuild + reopen")
	}
}

func TestFileBackendCorruptCellHealOnRead(t *testing.T) {
	dir := t.TempDir()
	s, _ := openFileStore(t, dir)
	defer s.Close()
	data := fill(t, s, 5000, 83)

	pos := s.Scheme().Layout().DataPos(0)
	if err := s.CorruptCell(0, pos); err != nil {
		t.Fatal(err)
	}
	res, err := s.ReadAt(0, testElemSize)
	if err != nil {
		t.Fatalf("read over corrupt cell: %v", err)
	}
	if !bytes.Equal(res.Data, data[:testElemSize]) {
		t.Fatal("corrupt cell not reconstructed")
	}
}

func TestWALSpillSkippedAfterDeviceRecovery(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "wal.log")
	s, _ := openFileStore(t, dir)
	w := NewWAL(s, WALConfig{LogPath: logPath})
	var objs [][]byte
	var offs []int64
	for i := 0; i < 5; i++ {
		obj := bytes.Repeat([]byte{byte('a' + i)}, 200+i)
		off, err := w.Put(context.Background(), obj)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, obj)
		offs = append(offs, off)
	}
	if err := w.SpillErr(); err != nil {
		t.Fatalf("spill failed: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() == 0 {
		t.Fatalf("log not spilled: %v size=%v", err, fi)
	}

	// Under FsyncAlways the devices hardened before every commit record, so
	// reopening recovers everything from the device files and the log replay
	// must skip every commit without touching the store.
	s2, _ := openFileStore(t, dir)
	defer s2.Close()
	sealed := s2.NextOffset()
	extents, dropped, err := RecoverWALFile(logPath, s2)
	if err != nil {
		t.Fatalf("RecoverWALFile: %v", err)
	}
	if len(extents) != 5 || dropped != 0 {
		t.Fatalf("extents=%d dropped=%d, want 5/0", len(extents), dropped)
	}
	if s2.NextOffset() != sealed {
		t.Fatal("skip path mutated the store")
	}
	for i, e := range extents {
		if e.Off != offs[i] || e.Size != len(objs[i]) {
			t.Fatalf("extent %d = %+v, want {%d %d}", i, e, offs[i], len(objs[i]))
		}
		res, err := s2.ReadAt(e.Off, e.Size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Data, objs[i]) {
			t.Fatalf("object %d mismatch after recovery", i)
		}
	}
	if fi, err := os.Stat(logPath); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after recovery: %v", fi.Size())
	}
}

func TestWALSpillReplaysIntoFreshStore(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "wal.log")
	src := MustNew(fileScheme(), testElemSize)
	w := NewWAL(src, WALConfig{LogPath: logPath})
	var objs [][]byte
	for i := 0; i < 4; i++ {
		obj := bytes.Repeat([]byte{byte('k' + i)}, 150+10*i)
		off, err := w.Put(context.Background(), obj)
		if err != nil {
			t.Fatal(err)
		}
		_ = off
		objs = append(objs, obj)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// The FsyncNever crash window: the log hardened but the devices are
	// gone. Replaying the spilled file into an empty store re-applies every
	// commit and reproduces the source byte-for-byte.
	dst := MustNew(fileScheme(), testElemSize)
	extents, dropped, err := RecoverWALFile(logPath, dst)
	if err != nil {
		t.Fatalf("RecoverWALFile: %v", err)
	}
	if len(extents) != 4 || dropped != 0 {
		t.Fatalf("extents=%d dropped=%d, want 4/0", len(extents), dropped)
	}
	if dst.NextOffset() != src.NextOffset() {
		t.Fatalf("NextOffset %d, want %d", dst.NextOffset(), src.NextOffset())
	}
	for i, e := range extents {
		res, err := dst.ReadAt(e.Off, e.Size)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(res.Data, objs[i]) {
			t.Fatalf("object %d mismatch after replay", i)
		}
	}
}

func TestWALSpillTornCommitDropsPending(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "wal.log")
	src := MustNew(fileScheme(), testElemSize)
	w := NewWAL(src, WALConfig{LogPath: logPath})
	// Sequential Puts each lead their own group commit, so the file is a
	// deterministic (put, commit)* sequence.
	for i := 0; i < 3; i++ {
		if _, err := w.Put(context.Background(), bytes.Repeat([]byte{byte(i + 1)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final commit record: its object was logged but never
	// committed, so recovery must drop it (the Put was never acked).
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(logPath, fi.Size()-1); err != nil {
		t.Fatal(err)
	}

	dst := MustNew(fileScheme(), testElemSize)
	extents, dropped, err := RecoverWALFile(logPath, dst)
	if err != nil {
		t.Fatalf("RecoverWALFile: %v", err)
	}
	if len(extents) != 2 || dropped != 1 {
		t.Fatalf("extents=%d dropped=%d, want 2/1", len(extents), dropped)
	}
}
