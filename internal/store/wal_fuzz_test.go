package store

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/lrc"
)

// FuzzWALReplay drives a WAL with a fuzzer-chosen object stream and batch
// shape, then "crashes" by truncating the log at a fuzzer-chosen point and
// replays it into a fresh store. The invariants:
//
//   - replay never errors on any truncation (torn tails end the log cleanly);
//   - every extent replay reports was committed live at the same offset with
//     the same bytes;
//   - replaying the full log reproduces the live store's sealed extent
//     byte-for-byte.
func FuzzWALReplay(f *testing.F) {
	f.Add(int64(1), uint8(9), uint16(0))
	f.Add(int64(2), uint8(3), uint16(40))
	f.Add(int64(99), uint8(17), uint16(7))
	f.Fuzz(func(t *testing.T, seed int64, objects uint8, cut uint16) {
		if objects == 0 {
			objects = 1
		}
		if objects > 40 {
			objects = 40
		}
		rng := rand.New(rand.NewSource(seed))
		s := MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 64)
		w := NewWAL(s, WALConfig{
			// Fuzzed batch threshold: from "every put is its own batch" to
			// "several stripes per batch".
			BatchBytes:    1 + rng.Intn(4*s.stripeBytes()),
			FlushInterval: 0,
		})

		var sent [][]byte
		var offs []int64
		for i := 0; i < int(objects); i++ {
			data := make([]byte, 1+rng.Intn(2*s.stripeBytes()))
			rng.Read(data)
			off, err := w.Put(context.Background(), data)
			if err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
			sent = append(sent, data)
			offs = append(offs, off)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close: %v", err)
		}

		log := w.LogSnapshot()
		// Crash point: replay an arbitrary prefix of the log. A prefix may
		// end mid-record (torn write); replay must stop cleanly there.
		n := int(cut) % (len(log) + 1)
		replay := MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 64)
		extents, err := ReplayWAL(log[:n], replay)
		if err != nil {
			t.Fatalf("replay of %d/%d log bytes: %v", n, len(log), err)
		}
		if len(extents) > len(sent) {
			t.Fatalf("replay produced %d extents from %d puts", len(extents), len(sent))
		}
		for i, e := range extents {
			if e.Off != offs[i] {
				t.Fatalf("extent %d replayed at %d; committed live at %d", i, e.Off, offs[i])
			}
			if e.Size != len(sent[i]) {
				t.Fatalf("extent %d replayed %d bytes; put %d", i, e.Size, len(sent[i]))
			}
			res, err := replay.ReadAt(e.Off, e.Size)
			if err != nil {
				t.Fatalf("read extent %d: %v", i, err)
			}
			if !bytes.Equal(res.Data, sent[i]) {
				t.Fatalf("extent %d bytes differ after replay", i)
			}
		}

		// Full-log replay reproduces the live store exactly.
		full := MustNew(core.MustScheme(lrc.Must(6, 2, 2), layout.FormECFRM), 64)
		extents, err = ReplayWAL(log, full)
		if err != nil {
			t.Fatalf("full replay: %v", err)
		}
		if len(extents) != len(sent) {
			t.Fatalf("full replay committed %d objects; want %d", len(extents), len(sent))
		}
		if lw, lr := s.NextOffset(), full.NextOffset(); lw != lr {
			t.Fatalf("full replay extent %d != live %d", lr, lw)
		}
		if s.Stripes() != full.Stripes() {
			t.Fatalf("full replay sealed %d stripes; live sealed %d", full.Stripes(), s.Stripes())
		}
		sealed := int(s.NextOffset())
		if sealed == 0 {
			return
		}
		lres, err := s.ReadAt(0, sealed)
		if err != nil {
			t.Fatalf("live read: %v", err)
		}
		rres, err := full.ReadAt(0, sealed)
		if err != nil {
			t.Fatalf("replay read: %v", err)
		}
		if !bytes.Equal(lres.Data, rres.Data) {
			t.Fatal("full replay differs from live store byte-for-byte")
		}
	})
}
