package store

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/layout"
	"repro/internal/rs"
)

// newRemoteOverDisks builds a remote-backed store whose CellBackends are
// in-process DiskStores — the wiring the gateway uses, minus HTTP.
func newRemoteOverDisks(t *testing.T, scheme *core.Scheme, elem int, cfg CellStoreConfig) (*Store, []*DiskStore) {
	t.Helper()
	disks := make([]*DiskStore, scheme.N())
	for i := range disks {
		disks[i] = NewMemDisk(elem)
	}
	st, _, err := NewWithCellBackends(scheme, elem, cfg, func(d int) (CellBackend, error) {
		return disks[d], nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, disks
}

// TestRemoteStoreMatchesLocal: a store over cell backends behaves byte-for-
// byte like a plain mem store across append, read, partial overwrite,
// corruption heal, and disk recovery through the remote replacement factory.
func TestRemoteStoreMatchesLocal(t *testing.T) {
	scheme := core.MustScheme(rs.Must(4, 2), layout.FormECFRM)
	const elem = 64
	remote, _ := newRemoteOverDisks(t, scheme, elem, CellStoreConfig{Sync: true})
	defer remote.Close()
	local := MustNew(scheme, elem)

	rng := rand.New(rand.NewSource(11))
	payload := make([]byte, 7*scheme.DataPerStripe()*elem+37)
	rng.Read(payload)
	for _, s := range []*Store{remote, local} {
		if err := s.Append(payload); err != nil {
			t.Fatal(err)
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if remote.Backend() != "remote" {
		t.Fatalf("Backend() = %q, want remote", remote.Backend())
	}

	check := func(stage string) {
		t.Helper()
		for trial := 0; trial < 8; trial++ {
			off := int64(rng.Intn(len(payload)))
			n := 1 + rng.Intn(len(payload)-int(off))
			rr, err := remote.ReadAt(off, n)
			if err != nil {
				t.Fatalf("%s: remote read: %v", stage, err)
			}
			lr, err := local.ReadAt(off, n)
			if err != nil {
				t.Fatalf("%s: local read: %v", stage, err)
			}
			if !bytes.Equal(rr.Data, lr.Data) {
				t.Fatalf("%s: remote and local bytes differ at %d+%d", stage, off, n)
			}
		}
	}
	check("sealed")

	// Partial overwrite (parity-delta path) through both.
	over := make([]byte, 3*elem)
	rng.Read(over)
	for _, s := range []*Store{remote, local} {
		if err := s.WriteAt(int64(elem), over); err != nil {
			t.Fatal(err)
		}
	}
	copy(payload[elem:], over)
	check("overwritten")

	// Silent corruption heals on read.
	if err := remote.CorruptCell(2, layout.Pos{Row: 0, Col: 1}); err != nil {
		t.Fatal(err)
	}
	check("healed")

	// Fail a disk, then rebuild it through the remote replacement factory.
	if !remote.FailDiskWithinTolerance(3) {
		t.Fatal("could not fail disk 3")
	}
	check("degraded")
	if _, err := remote.RecoverDisk(3); err != nil {
		t.Fatalf("recover over remote backends: %v", err)
	}
	check("recovered")
	if got := remote.FailedDisks(); len(got) != 0 {
		t.Fatalf("failed disks after recover: %v", got)
	}
}

// TestRemoteStoreRecoverExtent: a second store opened over the same cell
// backends with Recover re-derives the sealed extent — the gateway-restart
// path — and serves identical bytes.
func TestRemoteStoreRecoverExtent(t *testing.T) {
	scheme := core.MustScheme(rs.Must(4, 2), layout.FormRotated)
	const elem = 32
	disks := make([]*DiskStore, scheme.N())
	for i := range disks {
		disks[i] = NewMemDisk(elem)
	}
	open := func(d int) (CellBackend, error) { return disks[d], nil }

	st1, _, err := NewWithCellBackends(scheme, elem, CellStoreConfig{Sync: true}, open)
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("0123456789abcdef"), 5*scheme.DataPerStripe()*elem/16)
	if err := st1.Append(payload); err != nil {
		t.Fatal(err)
	}
	if err := st1.Flush(); err != nil {
		t.Fatal(err)
	}
	stripes := st1.Stripes()
	// Close the first store WITHOUT closing the mem disks' state (DiskStore
	// close is a no-op for memory) — the "gateway restarted, nodes alive"
	// scenario.
	if err := st1.Close(); err != nil {
		t.Fatal(err)
	}

	st2, report, err := NewWithCellBackends(scheme, elem, CellStoreConfig{Sync: true, Recover: true}, open)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if report.Stripes != stripes {
		t.Fatalf("recovered %d stripes, want %d", report.Stripes, stripes)
	}
	got, err := st2.ReadAt(0, len(payload))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, payload) {
		t.Fatal("recovered store returned different bytes")
	}
}

// TestSetDeviceNodesBias: with a device→node map installed, a busy device
// inflates the bias of every device on its node.
func TestSetDeviceNodesBias(t *testing.T) {
	scheme := core.MustScheme(rs.Must(4, 2), layout.FormStandard)
	st := MustNew(scheme, 32)
	n := scheme.N()
	nodeOf := make([]int, n)
	for d := range nodeOf {
		nodeOf[d] = d % 3 // 3 nodes
	}
	if err := st.SetDeviceNodes(nodeOf); err != nil {
		t.Fatal(err)
	}
	if err := st.SetDeviceNodes(make([]int, n+1)); err == nil {
		t.Fatal("wrong-length map accepted")
	}

	// Simulate inflight load on device 0 (node 0); every node-0 device must
	// inherit it, others stay zero.
	st.devices[0].inflight.Add(5)
	defer st.devices[0].inflight.Add(-5)
	bias := st.inflightBias()
	if bias == nil {
		t.Fatal("bias nil with inflight load")
	}
	for d := 0; d < n; d++ {
		want := 0
		if nodeOf[d] == 0 {
			want = 5
		}
		if bias[d] != want {
			t.Fatalf("bias[%d] = %d, want %d (node %d)", d, bias[d], want, nodeOf[d])
		}
	}
}
