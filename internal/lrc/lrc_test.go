package lrc

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/gf"
)

func TestNewValidation(t *testing.T) {
	for _, p := range [][3]int{{0, 1, 1}, {6, 0, 2}, {6, 2, 0}, {7, 2, 2}, {250, 2, 10}} {
		if _, err := New(p[0], p[1], p[2]); err == nil {
			t.Errorf("New(%d,%d,%d) succeeded, want error", p[0], p[1], p[2])
		}
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must(7,2,2) did not panic")
		}
	}()
	Must(7, 2, 2)
}

func TestNameAndParams(t *testing.T) {
	c := Must(6, 2, 2)
	if c.Name() != "LRC(6,2,2)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.K() != 6 || c.L() != 2 || c.M() != 2 || c.N() != 10 || c.GroupSize() != 3 {
		t.Fatalf("params wrong: %s k=%d l=%d m=%d n=%d gs=%d",
			c.Name(), c.K(), c.L(), c.M(), c.N(), c.GroupSize())
	}
}

func TestFaultTolerancePaperConfigs(t *testing.T) {
	// Azure LRC guarantees any m+1 concurrent erasures; the paper's Fig. 6
	// walkthrough relies on (6,2,2) recovering arbitrary triple failures.
	for _, p := range [][3]int{{6, 2, 2}, {8, 2, 3}, {10, 2, 4}} {
		c := Must(p[0], p[1], p[2])
		if got, want := c.FaultTolerance(), p[2]+1; got != want {
			t.Errorf("%s tolerance = %d, want %d", c.Name(), got, want)
		}
	}
}

func TestGeneratorStructure(t *testing.T) {
	c := Must(6, 2, 2)
	g := c.Generator()
	// Local parity rows: 1s exactly over their group.
	for j := 0; j < 6; j++ {
		want := byte(0)
		if j < 3 {
			want = 1
		}
		if g.At(6, j) != want {
			t.Fatalf("l0 coefficient for d%d = %d, want %d", j, g.At(6, j), want)
		}
		want = 0
		if j >= 3 {
			want = 1
		}
		if g.At(7, j) != want {
			t.Fatalf("l1 coefficient for d%d = %d, want %d", j, g.At(7, j), want)
		}
	}
	// Global parity rows follow the paper's x^1 / x^2 structure with
	// distinct nonzero points: row m1 is the elementwise square of m0.
	for j := 0; j < 6; j++ {
		x := g.At(8, j)
		if x == 0 {
			t.Fatalf("global coefficient for d%d is zero", j)
		}
		if g.At(9, j) != gf.Mul(x, x) {
			t.Fatalf("m1 coefficient for d%d is not the square of m0's", j)
		}
		for jj := 0; jj < j; jj++ {
			if g.At(8, jj) == x {
				t.Fatalf("coefficient points repeat: d%d and d%d", jj, j)
			}
		}
	}
}

func TestEncodeMatchesPaperEquations(t *testing.T) {
	// Equations (5)-(8): l0 = d0+d1+d2, l1 = d3+d4+d5,
	// m_t = sum x_j^(t+1) d_j.
	c := Must(6, 2, 2)
	rng := rand.New(rand.NewSource(30))
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 13)
		rng.Read(data[i])
	}
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 13; b++ {
		l0 := data[0][b] ^ data[1][b] ^ data[2][b]
		l1 := data[3][b] ^ data[4][b] ^ data[5][b]
		if parity[0][b] != l0 || parity[1][b] != l1 {
			t.Fatalf("local parity mismatch at byte %d", b)
		}
		var m0, m1 byte
		for j := 0; j < 6; j++ {
			x := c.points[j]
			m0 ^= gf.Mul(x, data[j][b])
			m1 ^= gf.Mul(gf.Mul(x, x), data[j][b])
		}
		if parity[2][b] != m0 || parity[3][b] != m1 {
			t.Fatalf("global parity mismatch at byte %d", b)
		}
	}
}

func TestTripleFailureRecoveryPaperFig6(t *testing.T) {
	// The paper's Fig. 6 case: three whole-group data elements lost
	// (d3,d4,d5 of a group) recovered from l1 + m0 + m1.
	c := Must(6, 2, 2)
	rng := rand.New(rand.NewSource(31))
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 32)
		rng.Read(data[i])
	}
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	shards := make([][]byte, 10)
	for i, s := range full {
		shards[i] = append([]byte(nil), s...)
	}
	shards[3], shards[4], shards[5] = nil, nil, nil
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], full[i]) {
			t.Fatalf("shard %d mismatch after triple recovery", i)
		}
	}
}

func TestAllTriplePatterns622(t *testing.T) {
	c := Must(6, 2, 2)
	rng := rand.New(rand.NewSource(32))
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 8)
		rng.Read(data[i])
	}
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			for d := b + 1; d < 10; d++ {
				shards := make([][]byte, 10)
				for i, s := range full {
					shards[i] = append([]byte(nil), s...)
				}
				shards[a], shards[b], shards[d] = nil, nil, nil
				if err := c.Reconstruct(shards); err != nil {
					t.Fatalf("pattern {%d,%d,%d}: %v", a, b, d, err)
				}
				for i := range shards {
					if !bytes.Equal(shards[i], full[i]) {
						t.Fatalf("pattern {%d,%d,%d}: shard %d mismatch", a, b, d, i)
					}
				}
			}
		}
	}
}

func TestSomeQuadRecoverable622(t *testing.T) {
	// Azure's "maximally recoverable" property: many (not all) 4-failure
	// patterns decode. {d0, l0, d3, l1} is decodable via globals.
	c := Must(6, 2, 2)
	if !c.CanRecover([]int{0, 6, 3, 7}) {
		t.Fatal("{d0,l0,d3,l1} should be recoverable via global parities")
	}
	// Information-theoretically lost: 4 erasures concentrated so that a
	// local group loses 3 data + only globals could help but one global is
	// also gone: {d0,d1,d2,m0} leaves equations l0, m1 for 3 unknowns... wait
	// l0+m1 is 2 equations, d0,d1,d2 are 3 unknowns -> unrecoverable.
	if c.CanRecover([]int{0, 1, 2, 8}) {
		t.Fatal("{d0,d1,d2,m0} must NOT be recoverable (2 equations, 3 unknowns)")
	}
}

func TestLocalGroup(t *testing.T) {
	c := Must(6, 2, 2)
	wants := []int{0, 0, 0, 1, 1, 1, 0, 1, -1, -1}
	for idx, want := range wants {
		if got := c.LocalGroup(idx); got != want {
			t.Errorf("LocalGroup(%d) = %d, want %d", idx, got, want)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("LocalGroup out of range did not panic")
		}
	}()
	c.LocalGroup(10)
}

func TestRecoverySetsDataLocalFirst(t *testing.T) {
	c := Must(6, 2, 2)
	sets := c.RecoverySets(4) // d4, group 1
	if len(sets) < 2 {
		t.Fatalf("want local + global alternates, got %d sets", len(sets))
	}
	// First set must be the cheap local one: d3, d5, l1 (3 reads = k/l).
	first := sets[0]
	if len(first) != c.GroupSize() {
		t.Fatalf("local set size = %d, want %d", len(first), c.GroupSize())
	}
	wantMembers := map[int]bool{3: true, 5: true, 7: true}
	for _, e := range first {
		if !wantMembers[e] {
			t.Fatalf("local set contains unexpected element %d: %v", e, first)
		}
	}
	// Each set must verifiably rebuild the target.
	for si, set := range sets {
		if !c.VerifySet(4, set) {
			t.Fatalf("set %d does not rebuild d4: %v", si, set)
		}
	}
	// Later sets are the global alternates and cost more.
	for _, set := range sets[1:] {
		if len(set) <= len(first) {
			t.Fatalf("global alternate not more expensive than local: %v", set)
		}
	}
}

func TestRecoverySetsParities(t *testing.T) {
	c := Must(6, 2, 2)
	// Local parity l0 (index 6): cheapest set is its group's data.
	sets := c.RecoverySets(6)
	if len(sets[0]) != 3 {
		t.Fatalf("l0 set = %v, want 3 group data elements", sets[0])
	}
	for _, e := range sets[0] {
		if e > 2 {
			t.Fatalf("l0 recovery set reads outside group 0: %v", sets[0])
		}
	}
	// Global parity m1 (index 9): needs all data.
	sets = c.RecoverySets(9)
	if len(sets[0]) != 6 {
		t.Fatalf("m1 set = %v, want all 6 data", sets[0])
	}
	for si, set := range append(c.RecoverySets(6), c.RecoverySets(9)...) {
		target := 6
		if si >= len(c.RecoverySets(6)) {
			target = 9
		}
		if !c.VerifySet(target, set) {
			t.Fatalf("parity set %v does not rebuild element %d", set, target)
		}
	}
}

func TestRecoverySetsAllElementsValid(t *testing.T) {
	for _, p := range [][3]int{{6, 2, 2}, {8, 2, 3}, {10, 2, 4}, {4, 2, 2}} {
		c := Must(p[0], p[1], p[2])
		for idx := 0; idx < c.N(); idx++ {
			sets := c.RecoverySets(idx)
			if len(sets) == 0 {
				t.Fatalf("%s element %d has no recovery sets", c.Name(), idx)
			}
			for si, set := range sets {
				for _, e := range set {
					if e == idx {
						t.Fatalf("%s element %d set %d includes target", c.Name(), idx, si)
					}
				}
				if !c.VerifySet(idx, set) {
					t.Fatalf("%s element %d set %d invalid: %v", c.Name(), idx, si, set)
				}
			}
		}
	}
}

func TestRecoverySetsOutOfRangePanics(t *testing.T) {
	c := Must(6, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range did not panic")
		}
	}()
	c.RecoverySets(-1)
}

func TestDegradedReadSavings(t *testing.T) {
	// The LRC selling point: single data-element repair costs k/l reads,
	// versus k for RS. Verify the cheapest set sizes.
	for _, p := range [][3]int{{6, 2, 2}, {8, 2, 3}, {10, 2, 4}} {
		c := Must(p[0], p[1], p[2])
		for d := 0; d < c.K(); d++ {
			if got := len(c.RecoverySets(d)[0]); got != c.GroupSize() {
				t.Errorf("%s: cheapest repair of d%d costs %d, want %d",
					c.Name(), d, got, c.GroupSize())
			}
		}
	}
}

func TestStorageOverhead(t *testing.T) {
	// (6,2,2): 10 elements for 6 data = 1.67x, cheaper than 3-replication
	// and costlier than RS(6,3)'s 1.5x — the Azure tradeoff.
	c := Must(6, 2, 2)
	got := float64(c.N()) / float64(c.K())
	if got < 1.66 || got > 1.67 {
		t.Fatalf("overhead = %v, want ~1.667", got)
	}
}

func BenchmarkEncodeLRC622(b *testing.B) {
	c := Must(6, 2, 2)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	b.SetBytes(6 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLocalRepairLRC622(b *testing.B) {
	c := Must(6, 2, 2)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := append([][]byte{}, full...)
		shards[1] = nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuadFailureRecoverableFraction622(t *testing.T) {
	// Azure's LRC paper reports that (6,2,2) decodes about 86% of all
	// 4-failure patterns (the "maximally recoverable" property: every
	// information-theoretically decodable pattern decodes). Count ours.
	c := Must(6, 2, 2)
	total, recoverable := 0, 0
	for a := 0; a < 10; a++ {
		for b := a + 1; b < 10; b++ {
			for d := b + 1; d < 10; d++ {
				for e := d + 1; e < 10; e++ {
					total++
					if c.CanRecover([]int{a, b, d, e}) {
						recoverable++
					}
				}
			}
		}
	}
	if total != 210 {
		t.Fatalf("C(10,4) = %d?", total)
	}
	frac := float64(recoverable) / float64(total)
	// 86% of 210 ≈ 181 patterns. Accept the exact MR fraction band.
	if frac < 0.85 || frac > 0.87 {
		t.Fatalf("quad-failure recoverable fraction = %.3f (%d/%d), want ≈0.86",
			frac, recoverable, total)
	}
}

func TestMoreLocalGroups(t *testing.T) {
	// l > 2: the m+1 guarantee and local-repair cost must hold as the
	// group count grows (Azure deploys l up to 14 data per group; here the
	// interesting axis is more groups).
	for _, p := range [][3]int{{9, 3, 2}, {12, 3, 3}, {8, 4, 2}, {12, 4, 3}} {
		c := Must(p[0], p[1], p[2])
		if got, want := c.FaultTolerance(), p[2]+1; got != want {
			t.Errorf("%s tolerance = %d, want %d", c.Name(), got, want)
		}
		if c.GroupSize() != p[0]/p[1] {
			t.Errorf("%s group size = %d", c.Name(), c.GroupSize())
		}
		for d := 0; d < c.K(); d += c.GroupSize() {
			if got := len(c.RecoverySets(d)[0]); got != c.GroupSize() {
				t.Errorf("%s: local repair of d%d costs %d, want %d",
					c.Name(), d, got, c.GroupSize())
			}
		}
		// Encode/decode round trip under a full-tolerance erasure.
		rng := rand.New(rand.NewSource(int64(p[0]*100 + p[1]*10 + p[2])))
		data := make([][]byte, c.K())
		for i := range data {
			data[i] = make([]byte, 16)
			rng.Read(data[i])
		}
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		full := append(append([][]byte{}, data...), parity...)
		shards := make([][]byte, c.N())
		for i, s := range full {
			shards[i] = append([]byte(nil), s...)
		}
		for _, e := range rng.Perm(c.N())[:c.FaultTolerance()] {
			shards[e] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("%s shard %d mismatch", c.Name(), i)
			}
		}
	}
}
