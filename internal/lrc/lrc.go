// Package lrc implements the Azure-style Local Reconstruction Code candidate
// LRC(k,l,m): k data elements split into l equal local groups, each with one
// XOR local parity, plus m global parities over all data (the "LRC Code for
// Azure" candidate of the EC-FRM paper, §II-C, Equations 5-8).
//
// Element order within a row follows the paper's figures:
//
//	d_0 … d_{k-1}  l_0 … l_{l-1}  m_0 … m_{m-1}
//
// Global parity t (t = 0..m-1) assigns data element j the coefficient
// x_j^(t+1), where the x_j are distinct nonzero field points — exactly the
// a_i / b_i, a_i² / b_i² structure of the paper's Equations (7) and (8).
// The constructor searches a small family of point assignments and keeps the
// one maximizing the guaranteed fault tolerance (m+1 for the paper's
// configurations), since a careless assignment can make a split erasure
// pattern such as {d0,d1,d3,d4} singular.
package lrc

import (
	"fmt"

	"repro/internal/codes"
	"repro/internal/gf"
	"repro/internal/matrix"
)

// Code is an Azure-style LRC with parameters (k, l, m).
type Code struct {
	*codes.Base
	k, l, m   int
	groupSize int
	points    []byte // x_j for data element j
}

// New constructs LRC(k,l,m). l must divide k; k+l+m must fit the field.
func New(k, l, m int) (*Code, error) {
	if k < 1 || l < 1 || m < 1 {
		return nil, fmt.Errorf("lrc: invalid parameters k=%d l=%d m=%d", k, l, m)
	}
	if k%l != 0 {
		return nil, fmt.Errorf("lrc: l=%d must divide k=%d", l, k)
	}
	if k+l+m > 256 {
		return nil, fmt.Errorf("lrc: k+l+m = %d exceeds field size 256", k+l+m)
	}
	var best *Code
	// Try a handful of point assignments: x_j = g^(j·stride + 1). Distinct
	// strides change which cross-group sums coincide; keep the best.
	for _, stride := range []int{1, 2, 3, 5, 7, 11} {
		if (k*stride)%255 == 0 && k > 1 {
			continue // points would repeat
		}
		points := make([]byte, k)
		seen := make(map[byte]bool, k)
		ok := true
		for j := range points {
			points[j] = gf.Generator(j*stride + 1)
			if points[j] == 0 || seen[points[j]] {
				ok = false
				break
			}
			seen[points[j]] = true
		}
		if !ok {
			continue
		}
		c := build(k, l, m, points)
		if best == nil || c.FaultTolerance() > best.FaultTolerance() {
			best = c
		}
		if best.FaultTolerance() == m+1 {
			break // the Azure guarantee; no assignment does better for l≥2
		}
	}
	if best == nil {
		return nil, fmt.Errorf("lrc: no valid point assignment for (%d,%d,%d)", k, l, m)
	}
	return best, nil
}

func build(k, l, m int, points []byte) *Code {
	n := k + l + m
	gen := matrix.New(n, k)
	for j := 0; j < k; j++ {
		gen.Set(j, j, 1) // systematic
	}
	groupSize := k / l
	for g := 0; g < l; g++ {
		for j := g * groupSize; j < (g+1)*groupSize; j++ {
			gen.Set(k+g, j, 1) // local parity: XOR of its group
		}
	}
	for t := 0; t < m; t++ {
		for j := 0; j < k; j++ {
			gen.Set(k+l+t, j, gf.Exp(points[j], t+1))
		}
	}
	return &Code{
		Base: codes.NewBase(gen),
		k:    k, l: l, m: m,
		groupSize: groupSize,
		points:    points,
	}
}

// Must constructs LRC(k,l,m) and panics on invalid parameters.
func Must(k, l, m int) *Code {
	c, err := New(k, l, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns "LRC(k,l,m)".
func (c *Code) Name() string { return fmt.Sprintf("LRC(%d,%d,%d)", c.k, c.l, c.m) }

// L returns the number of local parity elements per row.
func (c *Code) L() int { return c.l }

// M returns the number of global parity elements per row.
func (c *Code) M() int { return c.m }

// GroupSize returns k/l, the number of data elements per local group.
func (c *Code) GroupSize() int { return c.groupSize }

// LocalGroup returns the index of the local group that element idx belongs
// to, or -1 for global parities (which belong to no local group).
func (c *Code) LocalGroup(idx int) int {
	switch {
	case idx < 0 || idx >= c.N():
		panic(fmt.Sprintf("lrc: element %d out of [0,%d)", idx, c.N()))
	case idx < c.k:
		return idx / c.groupSize
	case idx < c.k+c.l:
		return idx - c.k
	default:
		return -1
	}
}

// RecoverySets returns candidate read sets for element idx when it is the
// only erasure, cheapest first:
//
//   - data element: its local group's other data + local parity (k/l reads),
//     then one global alternative (all other data + one global parity);
//   - local parity: its group's data (k/l reads), then a global alternative;
//   - global parity: all k data elements (the only minimal option), with the
//     remaining global parities offering no cheaper route.
//
// The local-first ordering is what gives LRC its degraded-read I/O savings
// (paper §II-C); the global alternates let the planner dodge hot disks.
func (c *Code) RecoverySets(idx int) [][]int {
	return lrcRecoverySets(c.k, c.l, c.m, c.groupSize, idx)
}

// lrcRecoverySets is the field-width-independent body of RecoverySets,
// shared by the GF(2^8) and GF(2^16) codes (the set structure depends only
// on the local-group layout, not the symbol width).
func lrcRecoverySets(k, l, m, groupSize, idx int) [][]int {
	n := k + l + m
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("lrc: element %d out of [0,%d)", idx, n))
	}
	allData := func(except int) []int {
		s := make([]int, 0, k)
		for j := 0; j < k; j++ {
			if j != except {
				s = append(s, j)
			}
		}
		return s
	}
	var sets [][]int
	switch {
	case idx < k: // data element
		g := idx / groupSize
		local := make([]int, 0, groupSize)
		for j := g * groupSize; j < (g+1)*groupSize; j++ {
			if j != idx {
				local = append(local, j)
			}
		}
		local = append(local, k+g)
		sets = append(sets, local)
		for t := 0; t < m; t++ {
			sets = append(sets, append(allData(idx), k+l+t))
		}
	case idx < k+l: // local parity
		g := idx - k
		local := make([]int, 0, groupSize)
		for j := g * groupSize; j < (g+1)*groupSize; j++ {
			local = append(local, j)
		}
		sets = append(sets, local)
	default: // global parity
		sets = append(sets, allData(-1))
	}
	return sets
}

var (
	_ codes.Code              = (*Code)(nil)
	_ codes.IntoEncoder       = (*Code)(nil)
	_ codes.IntoReconstructor = (*Code)(nil)
)
