// Wide-stripe Azure LRC over GF(2^16): LRC16(k,l,m) is the same local-group
// construction as LRC(k,l,m) with 16-bit symbols, so wide stripes (k in the
// tens to hundreds) keep LRC's cheap local repair. Shards hold
// little-endian-packed symbols; sizes must be even.
//
// Unlike the GF(2^8) constructor, the fault tolerance of a candidate point
// assignment cannot be established by exhausting every erasure pattern —
// C(n, m+1) is astronomical at wide n. Instead each candidate declares the
// Azure guarantee m+1 and must survive an audit of erasure patterns
// (exhaustive when affordable, fixed-seed sampling otherwise); the first
// assignment passing the audit wins, with a declared-m fallback so
// construction never fails outright.
package lrc

import (
	"fmt"
	"math/rand"

	"repro/internal/codes"
	"repro/internal/gf16"
	"repro/internal/matrix"
)

// Audit budget for a candidate point assignment: enumerate every pattern
// when there are at most auditExhaustive, else sample auditSamples patterns
// with a fixed seed. Kept modest — construction cost is paid per (k,l,m),
// while tests audit with much larger budgets.
const (
	auditExhaustive = 20000
	auditSamples    = 48
)

// Code16 is a wide-stripe Azure-style LRC with parameters (k, l, m) over
// GF(2^16).
type Code16 struct {
	*codes.Base16
	k, l, m   int
	groupSize int
	points    []uint16 // x_j for data element j
}

// New16 constructs LRC16(k,l,m). l must divide k; k+l+m must fit the
// wide-code limit.
func New16(k, l, m int) (*Code16, error) {
	if k < 1 || l < 1 || m < 1 {
		return nil, fmt.Errorf("lrc: invalid parameters k=%d l=%d m=%d", k, l, m)
	}
	if k%l != 0 {
		return nil, fmt.Errorf("lrc: l=%d must divide k=%d", l, k)
	}
	if k+l+m > codes.MaxN16 {
		return nil, fmt.Errorf("lrc: k+l+m = %d exceeds wide-code limit %d", k+l+m, codes.MaxN16)
	}
	// Try point assignments x_j = g^(j·stride + 1); keep the first whose
	// declared m+1 tolerance survives the audit. The group order 65535 is
	// far beyond any stride·k product here, so points never repeat.
	for _, stride := range []int{1, 2, 3, 5, 7, 11} {
		points := make([]uint16, k)
		seen := make(map[uint16]bool, k)
		ok := true
		for j := range points {
			points[j] = gf16.Generator(j*stride + 1)
			if points[j] == 0 || seen[points[j]] {
				ok = false
				break
			}
			seen[points[j]] = true
		}
		if !ok {
			continue
		}
		c := build16(k, l, m, points, m+1)
		rng := rand.New(rand.NewSource(int64(k)<<32 | int64(l)<<16 | int64(m)))
		if c.VerifyFaultTolerance(auditExhaustive, auditSamples, rng.Intn) == nil {
			return c, nil
		}
	}
	// No assignment passed at m+1; fall back to the plain-RS-style m
	// guarantee with the first valid assignment.
	points := make([]uint16, k)
	for j := range points {
		points[j] = gf16.Generator(j + 1)
	}
	c := build16(k, l, m, points, m)
	rng := rand.New(rand.NewSource(int64(k)<<32 | int64(l)<<16 | int64(m)))
	if bad := c.VerifyFaultTolerance(auditExhaustive, auditSamples, rng.Intn); bad != nil {
		return nil, fmt.Errorf("lrc: no point assignment reaches tolerance %d for (%d,%d,%d); pattern %v unrecoverable", m, k, l, m, bad)
	}
	return c, nil
}

func build16(k, l, m int, points []uint16, declaredFT int) *Code16 {
	n := k + l + m
	gen := matrix.New16(n, k)
	for j := 0; j < k; j++ {
		gen.Set(j, j, 1) // systematic
	}
	groupSize := k / l
	for g := 0; g < l; g++ {
		for j := g * groupSize; j < (g+1)*groupSize; j++ {
			gen.Set(k+g, j, 1) // local parity: XOR of its group
		}
	}
	for t := 0; t < m; t++ {
		for j := 0; j < k; j++ {
			gen.Set(k+l+t, j, gf16.Exp(points[j], t+1))
		}
	}
	return &Code16{
		Base16: codes.NewBase16(gen, declaredFT),
		k:      k, l: l, m: m,
		groupSize: groupSize,
		points:    points,
	}
}

// Must16 constructs LRC16(k,l,m) and panics on invalid parameters.
func Must16(k, l, m int) *Code16 {
	c, err := New16(k, l, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns "LRC16(k,l,m)".
func (c *Code16) Name() string { return fmt.Sprintf("LRC16(%d,%d,%d)", c.k, c.l, c.m) }

// L returns the number of local parity elements per row.
func (c *Code16) L() int { return c.l }

// M returns the number of global parity elements per row.
func (c *Code16) M() int { return c.m }

// GroupSize returns k/l, the number of data elements per local group.
func (c *Code16) GroupSize() int { return c.groupSize }

// LocalGroup returns the index of the local group that element idx belongs
// to, or -1 for global parities.
func (c *Code16) LocalGroup(idx int) int {
	switch {
	case idx < 0 || idx >= c.N():
		panic(fmt.Sprintf("lrc: element %d out of [0,%d)", idx, c.N()))
	case idx < c.k:
		return idx / c.groupSize
	case idx < c.k+c.l:
		return idx - c.k
	default:
		return -1
	}
}

// RecoverySets returns candidate read sets for element idx when it is the
// only erasure, local-group-first — identical structure to LRC(k,l,m)'s
// (see Code.RecoverySets), shared through lrcRecoverySets.
func (c *Code16) RecoverySets(idx int) [][]int {
	return lrcRecoverySets(c.k, c.l, c.m, c.groupSize, idx)
}

var (
	_ codes.Code              = (*Code16)(nil)
	_ codes.IntoEncoder       = (*Code16)(nil)
	_ codes.IntoReconstructor = (*Code16)(nil)
	_ codes.WideSymbolCode    = (*Code16)(nil)
)
