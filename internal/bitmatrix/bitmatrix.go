// Package bitmatrix implements dense matrices over GF(2) with rows packed
// into 64-bit words — the representation Jerasure uses for Cauchy
// Reed-Solomon coding, where a GF(2^w) generator matrix is expanded into a
// w-times-larger bit matrix so that encoding becomes pure XOR of packets.
//
// The packing makes row operations (the inner loop of Gaussian elimination
// and of XOR scheduling) word-parallel.
package bitmatrix

import (
	"errors"
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/gf"
)

// ErrSingular is returned when inversion meets a rank-deficient matrix.
var ErrSingular = errors.New("bitmatrix: singular")

// Matrix is a rows×cols matrix over GF(2), each row packed LSB-first into
// ⌈cols/64⌉ words.
type Matrix struct {
	rows, cols int
	words      int // words per row
	data       []uint64
}

// New returns the zero rows×cols bit matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitmatrix: invalid dimensions %d×%d", rows, cols))
	}
	w := (cols + 63) / 64
	return &Matrix{rows: rows, cols: cols, words: w, data: make([]uint64, rows*w)}
}

// Identity returns the n×n identity bit matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, true)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("bitmatrix: index (%d,%d) out of %d×%d", i, j, m.rows, m.cols))
	}
}

// At returns the bit at row i, column j.
func (m *Matrix) At(i, j int) bool {
	m.check(i, j)
	return m.data[i*m.words+j/64]>>(uint(j)%64)&1 == 1
}

// Set assigns the bit at row i, column j.
func (m *Matrix) Set(i, j int, v bool) {
	m.check(i, j)
	w := &m.data[i*m.words+j/64]
	mask := uint64(1) << (uint(j) % 64)
	if v {
		*w |= mask
	} else {
		*w &^= mask
	}
}

// row returns row i's words.
func (m *Matrix) row(i int) []uint64 {
	return m.data[i*m.words : (i+1)*m.words]
}

// xorRow sets row dst ^= row src.
func (m *Matrix) xorRow(dst, src int) {
	d, s := m.row(dst), m.row(src)
	for w := range d {
		d[w] ^= s[w]
	}
}

// SwapRows exchanges rows i and j.
func (m *Matrix) SwapRows(i, j int) {
	if i == j {
		return
	}
	a, b := m.row(i), m.row(j)
	for w := range a {
		a[w], b[w] = b[w], a[w]
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Equal reports whether two matrices are identical in shape and content.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.data {
		if m.data[i] != o.data[i] {
			return false
		}
	}
	return true
}

// RowWeight returns the number of set bits in row i — the XOR count the row
// costs during encoding, the quantity CRS constructions minimize.
func (m *Matrix) RowWeight(i int) int {
	w := 0
	for _, word := range m.row(i) {
		w += bits.OnesCount64(word)
	}
	return w
}

// TotalWeight returns the number of set bits in the whole matrix.
func (m *Matrix) TotalWeight() int {
	w := 0
	for _, word := range m.data {
		w += bits.OnesCount64(word)
	}
	return w
}

// Mul returns the GF(2) product m·o.
func (m *Matrix) Mul(o *Matrix) *Matrix {
	if m.cols != o.rows {
		panic(fmt.Sprintf("bitmatrix: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, o.rows, o.cols))
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		ri := m.row(i)
		pi := p.row(i)
		for t := 0; t < m.cols; t++ {
			if ri[t/64]>>(uint(t)%64)&1 == 1 {
				ot := o.row(t)
				for w := range pi {
					pi[w] ^= ot[w]
				}
			}
		}
	}
	return p
}

// MulVec applies the matrix to packet slices: out[i] = XOR of packets[j] for
// every set bit (i,j). All packets and outputs must share one length; out is
// overwritten. This is the CRS encode/decode kernel.
func (m *Matrix) MulVec(out, packets [][]byte) {
	if len(packets) != m.cols {
		panic(fmt.Sprintf("bitmatrix: MulVec got %d packets, want %d", len(packets), m.cols))
	}
	if len(out) != m.rows {
		panic(fmt.Sprintf("bitmatrix: MulVec got %d outputs, want %d", len(out), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		dst := out[i]
		clear(dst)
		ri := m.row(i)
		for j := 0; j < m.cols; j++ {
			if ri[j/64]>>(uint(j)%64)&1 == 1 {
				src := packets[j]
				if len(src) != len(dst) {
					panic(fmt.Sprintf("bitmatrix: packet %d has %d bytes, want %d", j, len(src), len(dst)))
				}
				gf.AddSlice(dst, src)
			}
		}
	}
}

// Invert returns the inverse, or ErrSingular.
func (m *Matrix) Invert() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("bitmatrix: cannot invert non-square %d×%d", m.rows, m.cols)
	}
	n := m.rows
	work := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if work.At(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.SwapRows(col, pivot)
		inv.SwapRows(col, pivot)
		for r := 0; r < n; r++ {
			if r != col && work.At(r, col) {
				work.xorRow(r, col)
				inv.xorRow(r, col)
			}
		}
	}
	return inv, nil
}

// Rank returns the GF(2) rank.
func (m *Matrix) Rank() int {
	work := m.Clone()
	rank := 0
	for col := 0; col < m.cols && rank < m.rows; col++ {
		pivot := -1
		for r := rank; r < m.rows; r++ {
			if work.At(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		work.SwapRows(rank, pivot)
		for r := 0; r < m.rows; r++ {
			if r != rank && work.At(r, col) {
				work.xorRow(r, rank)
			}
		}
		rank++
	}
	return rank
}

// SelectRows returns a new matrix from the given row indices, in order.
func (m *Matrix) SelectRows(idx []int) *Matrix {
	s := New(len(idx), m.cols)
	for i, r := range idx {
		copy(s.row(i), m.row(r))
	}
	return s
}

// SolveVec solves the GF(2) linear system m·x = rhs where the unknowns x
// and the right-hand sides are byte vectors (XOR equations over packets):
// row i of m states that the XOR of the unknown vectors at its set columns
// equals rhs[i]. It requires a unique solution (rank == cols) and returns
// the unknown vectors; ErrSingular otherwise. rhs is consumed as scratch.
func (m *Matrix) SolveVec(rhs [][]byte) ([][]byte, error) {
	if len(rhs) != m.rows {
		panic(fmt.Sprintf("bitmatrix: SolveVec got %d rhs, want %d", len(rhs), m.rows))
	}
	work := m.Clone()
	pivotRow := make([]int, work.cols)
	rank := 0
	for col := 0; col < work.cols; col++ {
		pivot := -1
		for r := rank; r < work.rows; r++ {
			if work.At(r, col) {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, ErrSingular
		}
		work.SwapRows(rank, pivot)
		rhs[rank], rhs[pivot] = rhs[pivot], rhs[rank]
		for r := 0; r < work.rows; r++ {
			if r != rank && work.At(r, col) {
				work.xorRow(r, rank)
				gf.AddSlice(rhs[r], rhs[rank])
			}
		}
		pivotRow[col] = rank
		rank++
	}
	out := make([][]byte, work.cols)
	for col := 0; col < work.cols; col++ {
		out[col] = rhs[pivotRow[col]]
	}
	return out, nil
}

// String renders the matrix as 0/1 characters for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d×%d\n", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if m.At(i, j) {
				b.WriteByte('1')
			} else {
				b.WriteByte('0')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
