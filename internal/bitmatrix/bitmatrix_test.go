package bitmatrix

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rng.Intn(2) == 1)
		}
	}
	return m
}

func TestSetAtRoundTrip(t *testing.T) {
	m := New(3, 130) // spans three words
	m.Set(2, 129, true)
	m.Set(0, 0, true)
	m.Set(0, 63, true)
	m.Set(0, 64, true)
	if !m.At(2, 129) || !m.At(0, 0) || !m.At(0, 63) || !m.At(0, 64) {
		t.Fatal("set bits not readable")
	}
	if m.At(1, 64) {
		t.Fatal("unset bit reads true")
	}
	m.Set(0, 63, false)
	if m.At(0, 63) {
		t.Fatal("clear failed")
	}
}

func TestBoundsPanics(t *testing.T) {
	m := New(2, 70)
	for name, fn := range map[string]func(){
		"AtRow":  func() { m.At(2, 0) },
		"AtCol":  func() { m.At(0, 70) },
		"SetNeg": func() { m.Set(-1, 0, true) },
		"NewNeg": func() { New(2, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestIdentityAndEqual(t *testing.T) {
	id := Identity(65)
	for i := 0; i < 65; i++ {
		for j := 0; j < 65; j++ {
			if id.At(i, j) != (i == j) {
				t.Fatalf("identity wrong at (%d,%d)", i, j)
			}
		}
	}
	if !id.Equal(id.Clone()) {
		t.Fatal("clone not equal")
	}
	other := id.Clone()
	other.Set(64, 0, true)
	if id.Equal(other) {
		t.Fatal("different matrices report equal")
	}
	if id.Equal(New(65, 64)) {
		t.Fatal("different shapes report equal")
	}
}

func TestWeights(t *testing.T) {
	m := New(2, 100)
	m.Set(0, 5, true)
	m.Set(0, 99, true)
	m.Set(1, 64, true)
	if m.RowWeight(0) != 2 || m.RowWeight(1) != 1 {
		t.Fatalf("row weights %d,%d", m.RowWeight(0), m.RowWeight(1))
	}
	if m.TotalWeight() != 3 {
		t.Fatalf("total weight %d", m.TotalWeight())
	}
}

func TestMulIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMatrix(rng, 10, 70)
	if !Identity(10).Mul(m).Equal(m) {
		t.Fatal("I·M != M")
	}
	if !m.Mul(Identity(70)).Equal(m) {
		t.Fatal("M·I != M")
	}
}

func TestMulAgainstScalarDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randMatrix(rng, 7, 9)
	b := randMatrix(rng, 9, 13)
	p := a.Mul(b)
	for i := 0; i < 7; i++ {
		for j := 0; j < 13; j++ {
			want := false
			for t2 := 0; t2 < 9; t2++ {
				if a.At(i, t2) && b.At(t2, j) {
					want = !want
				}
			}
			if p.At(i, j) != want {
				t.Fatalf("product wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	found := 0
	for trial := 0; trial < 60 && found < 20; trial++ {
		m := randMatrix(rng, 16, 16)
		inv, err := m.Invert()
		if err != nil {
			continue
		}
		found++
		if !m.Mul(inv).Equal(Identity(16)) {
			t.Fatal("M·M⁻¹ != I")
		}
	}
	if found == 0 {
		t.Fatal("no invertible random GF(2) matrices in 60 tries (suspicious)")
	}
}

func TestInvertSingular(t *testing.T) {
	m := New(3, 3)
	m.Set(0, 0, true)
	m.Set(1, 0, true) // rows 0 and 1 identical
	m.Set(2, 2, true)
	if _, err := m.Invert(); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
	if _, err := New(2, 3).Invert(); err == nil {
		t.Fatal("non-square inversion must fail")
	}
}

func TestRank(t *testing.T) {
	if Identity(8).Rank() != 8 {
		t.Fatal("rank(I8)")
	}
	if New(4, 9).Rank() != 0 {
		t.Fatal("rank(0)")
	}
	m := New(3, 3)
	m.Set(0, 0, true)
	m.Set(0, 1, true)
	m.Set(1, 0, true)
	m.Set(1, 1, true) // row1 == row0
	m.Set(2, 2, true)
	if got := m.Rank(); got != 2 {
		t.Fatalf("rank = %d, want 2", got)
	}
}

func TestSelectRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 6, 40)
	s := m.SelectRows([]int{5, 0, 5})
	for j := 0; j < 40; j++ {
		if s.At(0, j) != m.At(5, j) || s.At(1, j) != m.At(0, j) || s.At(2, j) != m.At(5, j) {
			t.Fatal("SelectRows content wrong")
		}
	}
}

func TestMulVec(t *testing.T) {
	// out[0] = p0 ^ p2, out[1] = p1.
	m := New(2, 3)
	m.Set(0, 0, true)
	m.Set(0, 2, true)
	m.Set(1, 1, true)
	packets := [][]byte{{1, 2}, {3, 4}, {5, 6}}
	out := [][]byte{make([]byte, 2), make([]byte, 2)}
	m.MulVec(out, packets)
	if out[0][0] != 1^5 || out[0][1] != 2^6 || out[1][0] != 3 || out[1][1] != 4 {
		t.Fatalf("MulVec wrong: %v", out)
	}
}

func TestMulVecPanics(t *testing.T) {
	m := Identity(2)
	for name, fn := range map[string]func(){
		"packets": func() { m.MulVec([][]byte{{1}, {2}}, [][]byte{{1}}) },
		"outputs": func() { m.MulVec([][]byte{{1}}, [][]byte{{1}, {2}}) },
		"ragged":  func() { m.MulVec([][]byte{{1}, {2}}, [][]byte{{1}, {2, 3}}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPropertyInverseSolvesSystems(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func() bool {
		m := randMatrix(rng, 12, 12)
		inv, err := m.Invert()
		if err != nil {
			return true
		}
		// m · (inv · v) == v for packet vectors v.
		v := make([][]byte, 12)
		for i := range v {
			v[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		}
		mid := make([][]byte, 12)
		outv := make([][]byte, 12)
		for i := range mid {
			mid[i] = make([]byte, 2)
			outv[i] = make([]byte, 2)
		}
		inv.MulVec(mid, v)
		m.MulVec(outv, mid)
		for i := range v {
			if v[i][0] != outv[i][0] || v[i][1] != outv[i][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(func() bool { return f() }, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func BenchmarkMulVec(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	m := randMatrix(rng, 24, 48) // CRS-scale: (k=6,m=3,w=8)
	packets := make([][]byte, 48)
	for i := range packets {
		packets[i] = make([]byte, 8192)
	}
	out := make([][]byte, 24)
	for i := range out {
		out[i] = make([]byte, 8192)
	}
	b.SetBytes(48 * 8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MulVec(out, packets)
	}
}

func TestAccessorsAndString(t *testing.T) {
	m := New(3, 70)
	if m.Rows() != 3 || m.Cols() != 70 {
		t.Fatalf("shape %d×%d", m.Rows(), m.Cols())
	}
	m.Set(1, 2, true)
	s := m.String()
	if !strings.Contains(s, "3×70") || !strings.Contains(s, "001") {
		t.Fatalf("String rendering wrong:\n%s", s)
	}
}

func TestSolveVecKnownSystem(t *testing.T) {
	// x0 ^ x1 = {5}, x1 = {3}  →  x0 = {6}, x1 = {3}.
	A := New(2, 2)
	A.Set(0, 0, true)
	A.Set(0, 1, true)
	A.Set(1, 1, true)
	sol, err := A.SolveVec([][]byte{{5}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if sol[0][0] != 6 || sol[1][0] != 3 {
		t.Fatalf("solution = %v, want [6],[3]", sol)
	}
}

func TestSolveVecOverdetermined(t *testing.T) {
	// Three consistent equations, two unknowns, with a row swap needed:
	// x1 = {7}; x0 ^ x1 = {9}; x0 = {14}.
	A := New(3, 2)
	A.Set(0, 1, true)
	A.Set(1, 0, true)
	A.Set(1, 1, true)
	A.Set(2, 0, true)
	sol, err := A.SolveVec([][]byte{{7}, {9}, {14}})
	if err != nil {
		t.Fatal(err)
	}
	if sol[0][0] != 14 || sol[1][0] != 7 {
		t.Fatalf("solution = %v", sol)
	}
}

func TestSolveVecSingular(t *testing.T) {
	A := New(2, 2) // no equation touches x1
	A.Set(0, 0, true)
	A.Set(1, 0, true)
	if _, err := A.SolveVec([][]byte{{1}, {1}}); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestSolveVecArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("rhs arity mismatch did not panic")
		}
	}()
	New(2, 1).SolveVec([][]byte{{1}})
}

func TestSolveVecAgainstMulVec(t *testing.T) {
	// Property: for random invertible A and random x, SolveVec(A, A·x) == x.
	rng := rand.New(rand.NewSource(20))
	for trial := 0; trial < 40; trial++ {
		A := randMatrix(rng, 10, 10)
		if _, err := A.Invert(); err != nil {
			continue
		}
		x := make([][]byte, 10)
		for i := range x {
			x[i] = []byte{byte(rng.Intn(256)), byte(rng.Intn(256))}
		}
		rhs := make([][]byte, 10)
		for i := range rhs {
			rhs[i] = make([]byte, 2)
		}
		A.MulVec(rhs, x)
		sol, err := A.SolveVec(rhs)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if x[i][0] != sol[i][0] || x[i][1] != sol[i][1] {
				t.Fatalf("trial %d: solution differs at %d", trial, i)
			}
		}
	}
}
