package placement

import "testing"

func TestNodeRotationCoversAndBounds(t *testing.T) {
	m, err := New(8, 6, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.MaxDisksPerNode(); got != 2 {
		t.Fatalf("MaxDisksPerNode = %d, want 2", got)
	}
	if err := m.CheckTolerance(2); err != nil {
		t.Fatalf("tolerance 2 should pass: %v", err)
	}
	if err := m.CheckTolerance(1); err == nil {
		t.Fatal("tolerance 1 should fail with 2 disks per node")
	}
	for g := 0; g < m.Groups; g++ {
		perNode := make(map[int]int)
		nodeOf := m.NodeOf(g)
		for d := 0; d < m.Disks; d++ {
			n := m.Node(g, d)
			if n != nodeOf[d] {
				t.Fatalf("NodeOf disagrees with Node at (%d,%d)", g, d)
			}
			perNode[n]++
		}
		for n, c := range perNode {
			if c > m.MaxDisksPerNode() {
				t.Fatalf("group %d node %d serves %d disks > bound %d", g, n, c, m.MaxDisksPerNode())
			}
		}
		// DisksOn partitions the disk set.
		seen := 0
		for n := range m.Nodes {
			for _, d := range m.DisksOn(g, n) {
				if m.Node(g, d) != n {
					t.Fatalf("DisksOn(%d,%d) returned disk %d owned by node %d", g, n, d, m.Node(g, d))
				}
				seen++
			}
		}
		if seen != m.Disks {
			t.Fatalf("group %d: DisksOn covered %d disks, want %d", g, seen, m.Disks)
		}
	}
}

func TestGroupOfStableAndSpread(t *testing.T) {
	m, err := New(16, 6, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	hit := make(map[int]int)
	for i := 0; i < 4096; i++ {
		name := "obj-" + string(rune('a'+i%26)) + string(rune('0'+i%10)) + "-" + string(rune('A'+i%7))
		g := m.GroupOf(name)
		if g < 0 || g >= m.Groups {
			t.Fatalf("GroupOf out of range: %d", g)
		}
		if g2 := m.GroupOf(name); g2 != g {
			t.Fatalf("GroupOf unstable for %q: %d then %d", name, g, g2)
		}
		hit[g]++
	}
	if len(hit) < m.Groups/2 {
		t.Fatalf("hash hit only %d of %d groups", len(hit), m.Groups)
	}
}

func TestNewValidates(t *testing.T) {
	for _, c := range []struct{ g, d, w int }{{0, 6, 3}, {4, 0, 3}, {4, 6, 0}} {
		nodes := make([]string, c.w)
		if _, err := New(c.g, c.d, nodes); err == nil {
			t.Fatalf("New(%d,%d,%d nodes) should fail", c.g, c.d, c.w)
		}
	}
}
