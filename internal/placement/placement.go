// Package placement owns the cluster's data-distribution metadata: how
// object names hash onto (n,k) stripe groups, and how each group's n devices
// spread across data nodes.
//
// The map is deliberately tiny and deterministic — pure arithmetic both the
// gateway and the cluster simulator evaluate identically, so simulated runs
// and real networked runs share plans (ROADMAP item 1's "same placement
// types"). Two properties matter:
//
//   - Groups scale capacity and traffic horizontally: names hash uniformly
//     over Groups independent stripe groups, each its own append extent.
//   - Rotation spreads each group's disks over nodes so one node holds at
//     most ceil(n/W) disks of any group. When that bound is within the
//     scheme's fault tolerance, losing a whole node is equivalent to losing
//     tolerable disks in every group at once — degraded reads keep working,
//     which is the invariant the kill-a-node chaos tests lean on.
package placement

import (
	"fmt"
	"hash/fnv"
)

// Map is the placement metadata: Groups stripe groups of Disks devices each,
// spread over the Nodes. It is immutable after construction.
type Map struct {
	// Groups is the number of independent (n,k) stripe groups object names
	// hash across.
	Groups int
	// Disks is the number of devices per group (the scheme's n).
	Disks int
	// Nodes names the data nodes — base URLs for a real cluster, arbitrary
	// identifiers for the simulator. Device placement depends only on
	// len(Nodes).
	Nodes []string
}

// New validates and builds a placement map.
func New(groups, disks int, nodes []string) (*Map, error) {
	if groups < 1 {
		return nil, fmt.Errorf("placement: %d groups", groups)
	}
	if disks < 1 {
		return nil, fmt.Errorf("placement: %d disks per group", disks)
	}
	if len(nodes) < 1 {
		return nil, fmt.Errorf("placement: no nodes")
	}
	return &Map{Groups: groups, Disks: disks, Nodes: append([]string(nil), nodes...)}, nil
}

// GroupOf hashes an object name onto its stripe group (FNV-1a).
func (m *Map) GroupOf(name string) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(m.Groups))
}

// Node returns the index of the node serving the given disk of the given
// group: (group+disk) mod W. The group offset rotates assignments so node
// load evens out across groups even when n and W divide unevenly.
func (m *Map) Node(group, disk int) int {
	return (group + disk) % len(m.Nodes)
}

// NodeOf maps every disk of a group to its node index, in disk order — the
// vector Store.SetDeviceNodes wants.
func (m *Map) NodeOf(group int) []int {
	out := make([]int, m.Disks)
	for d := range out {
		out[d] = m.Node(group, d)
	}
	return out
}

// DisksOn lists the disks of a group served by one node, in disk order.
func (m *Map) DisksOn(group, node int) []int {
	var out []int
	for d := 0; d < m.Disks; d++ {
		if m.Node(group, d) == node {
			out = append(out, d)
		}
	}
	return out
}

// MaxDisksPerNode is the largest number of one group's disks any single node
// serves: ceil(Disks / len(Nodes)). Losing a node erases at most this many
// disks from each group.
func (m *Map) MaxDisksPerNode() int {
	w := len(m.Nodes)
	return (m.Disks + w - 1) / w
}

// CheckTolerance verifies that losing any one whole node keeps every group
// within the scheme's fault tolerance.
func (m *Map) CheckTolerance(tolerance int) error {
	if worst := m.MaxDisksPerNode(); worst > tolerance {
		return fmt.Errorf("placement: a node holds up to %d disks of one group but the scheme tolerates only %d failures; use ≥ %d nodes",
			worst, tolerance, (m.Disks+tolerance-1)/tolerance)
	}
	return nil
}
