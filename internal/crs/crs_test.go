package crs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/gf"
	"repro/internal/layout"
)

func randShards(rng *rand.Rand, count, size int) [][]byte {
	s := make([][]byte, count)
	for i := range s {
		s[i] = make([]byte, size)
		rng.Read(s[i])
	}
	return s
}

func TestNewValidation(t *testing.T) {
	for _, p := range [][2]int{{0, 1}, {1, 0}, {200, 100}} {
		if _, err := New(p[0], p[1]); err == nil {
			t.Errorf("New(%d,%d) succeeded", p[0], p[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Must did not panic")
		}
	}()
	Must(0, 0)
}

func TestNameAndParams(t *testing.T) {
	c := Must(6, 3)
	if c.Name() != "CRS(6,3)" || c.K() != 6 || c.M() != 3 || c.N() != 9 {
		t.Fatalf("params wrong: %s", c.Name())
	}
}

func TestMDSProperty(t *testing.T) {
	// Cauchy construction: every pattern up to m erasures decodable.
	for _, p := range [][2]int{{4, 2}, {6, 3}} {
		c := Must(p[0], p[1])
		if got := c.FaultTolerance(); got != p[1] {
			t.Errorf("CRS(%d,%d) tolerance = %d", p[0], p[1], got)
		}
	}
}

func TestEncodeRejectsBadSizes(t *testing.T) {
	c := Must(3, 2)
	if _, err := c.Encode(randShards(rand.New(rand.NewSource(1)), 2, 16)); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("wrong count: %v", err)
	}
	if _, err := c.Encode(randShards(rand.New(rand.NewSource(1)), 3, 15)); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("non-multiple-of-W size: %v", err)
	}
	if _, err := c.Encode([][]byte{make([]byte, 16), nil, make([]byte, 16)}); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("nil shard: %v", err)
	}
	if _, err := c.Encode([][]byte{make([]byte, 16), make([]byte, 8), make([]byte, 16)}); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("ragged shards: %v", err)
	}
}

func TestEncodeIsPureXOROfPackets(t *testing.T) {
	// Hand-check linearity: encoding the XOR of two datasets equals the
	// XOR of their encodings (any XOR-only scheme must satisfy this), and
	// encoding zeros yields zeros.
	c := Must(4, 2)
	rng := rand.New(rand.NewSource(2))
	a := randShards(rng, 4, 64)
	b := randShards(rng, 4, 64)
	sum := make([][]byte, 4)
	for i := range sum {
		sum[i] = make([]byte, 64)
		for t2 := range sum[i] {
			sum[i][t2] = a[i][t2] ^ b[i][t2]
		}
	}
	pa, err := c.Encode(a)
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := c.Encode(b)
	ps, _ := c.Encode(sum)
	for i := range ps {
		for t2 := range ps[i] {
			if ps[i][t2] != pa[i][t2]^pb[i][t2] {
				t.Fatalf("not linear at parity %d byte %d", i, t2)
			}
		}
	}
	zero, _ := c.Encode([][]byte{make([]byte, 64), make([]byte, 64), make([]byte, 64), make([]byte, 64)})
	for i := range zero {
		for _, v := range zero[i] {
			if v != 0 {
				t.Fatal("encoding zeros gave nonzero parity")
			}
		}
	}
}

func TestBitGeneratorMatchesFieldArithmetic(t *testing.T) {
	// Block (i,j) of the expanded generator must implement multiplication
	// by gen[i][j]: applying the block to the bit-decomposition of v gives
	// the bits of gen[i][j]·v.
	c := Must(3, 2)
	g := c.Generator()
	bg := c.BitGenerator()
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			a := g.At(i, j)
			for v := 0; v < 256; v += 17 {
				want := gf.Mul(a, byte(v))
				var got byte
				for row := 0; row < W; row++ {
					bit := byte(0)
					for col := 0; col < W; col++ {
						if bg.At(i*W+row, j*W+col) && byte(v)>>uint(col)&1 == 1 {
							bit ^= 1
						}
					}
					got |= bit << uint(row)
				}
				if got != want {
					t.Fatalf("block (%d,%d): %#x·%#x = %#x, want %#x", i, j, a, v, got, want)
				}
			}
		}
	}
}

func TestRoundTripAllPatterns(t *testing.T) {
	const k, m = 4, 2
	c := Must(k, m)
	rng := rand.New(rand.NewSource(3))
	data := randShards(rng, k, 48)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	n := k + m
	for mask := 1; mask < 1<<n; mask++ {
		cnt := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				cnt++
			}
		}
		if cnt > m {
			continue
		}
		shards := make([][]byte, n)
		for i := range shards {
			if mask>>i&1 == 0 {
				shards[i] = append([]byte(nil), full[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("mask %b shard %d mismatch", mask, i)
			}
		}
	}
}

func TestReconstructBeyondTolerance(t *testing.T) {
	c := Must(3, 2)
	rng := rand.New(rand.NewSource(4))
	data := randShards(rng, 3, 16)
	parity, _ := c.Encode(data)
	shards := [][]byte{nil, nil, nil, parity[0], parity[1]}
	if err := c.Reconstruct(shards); !errors.Is(err, codes.ErrUnrecoverable) {
		t.Fatalf("err = %v, want ErrUnrecoverable", err)
	}
}

func TestReconstructElements(t *testing.T) {
	c := Must(3, 2)
	rng := rand.New(rand.NewSource(5))
	data := randShards(rng, 3, 24)
	parity, _ := c.Encode(data)
	shards := [][]byte{data[0], nil, data[2], parity[0], nil}
	if err := c.ReconstructElements(shards, []int{1}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[1], data[1]) {
		t.Fatal("target not rebuilt correctly")
	}
	if err := c.ReconstructElements(shards, []int{9}); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("out-of-range target: %v", err)
	}
}

func TestXORCountPositiveAndBounded(t *testing.T) {
	c := Must(6, 3)
	x := c.XORCount()
	if x <= 0 {
		t.Fatal("XOR count must be positive")
	}
	// Upper bound: every parity bit-row can cost at most k·W-1 XORs.
	if x >= c.M()*W*c.K()*W {
		t.Fatalf("XOR count %d implausibly large", x)
	}
}

func TestCRSWorksAsECFRMCandidate(t *testing.T) {
	// The point of CRS here: it drops into the framework unchanged.
	c := Must(6, 3)
	scheme, err := core.NewScheme(c, layout.FormECFRM)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.Name() != "EC-FRM-CRS(6,3)" {
		t.Fatalf("name %q", scheme.Name())
	}
	rng := rand.New(rand.NewSource(6))
	data := randShards(rng, scheme.DataPerStripe(), 32)
	cells, err := scheme.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	// Fail 3 disks, reconstruct, verify.
	n := scheme.N()
	broken := make([][]byte, len(cells))
	for i := range cells {
		if i%n != 0 && i%n != 4 && i%n != 8 {
			broken[i] = cells[i]
		}
	}
	if err := scheme.ReconstructStripe(broken); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !bytes.Equal(broken[i], cells[i]) {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func TestRecoverySetsValid(t *testing.T) {
	c := Must(5, 3)
	for idx := 0; idx < c.N(); idx++ {
		for si, set := range c.RecoverySets(idx) {
			if !c.VerifySet(idx, set) {
				t.Fatalf("element %d set %d invalid: %v", idx, si, set)
			}
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("out of range did not panic")
		}
	}()
	c.RecoverySets(8)
}

func BenchmarkEncodeCRS63(b *testing.B) {
	c := Must(6, 3)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	b.SetBytes(6 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeCRS63(b *testing.B) {
	c := Must(6, 3)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := append([][]byte{}, full...)
		shards[1] = nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func TestScheduledEncodeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range [][2]int{{3, 2}, {6, 3}, {8, 4}} {
		c := Must(p[0], p[1])
		data := randShards(rng, p[0], 64)
		direct, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := c.EncodeScheduled(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct {
			if !bytes.Equal(direct[i], sched[i]) {
				t.Fatalf("CRS(%d,%d): scheduled parity %d differs", p[0], p[1], i)
			}
		}
	}
}

func TestScheduleSavesOperations(t *testing.T) {
	// The point of scheduling: fewer XOR passes than the naive bit count.
	for _, p := range [][2]int{{6, 3}, {8, 4}, {10, 5}} {
		c := Must(p[0], p[1])
		if got, naive := c.Schedule().Ops(), c.NaiveXOROps(); got >= naive {
			t.Errorf("CRS(%d,%d): schedule %d ops not below naive %d", p[0], p[1], got, naive)
		}
	}
}

func TestEncodeScheduledValidation(t *testing.T) {
	c := Must(3, 2)
	if _, err := c.EncodeScheduled(make([][]byte, 2)); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("count: %v", err)
	}
	if _, err := c.EncodeScheduled([][]byte{make([]byte, 15), make([]byte, 15), make([]byte, 15)}); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("alignment: %v", err)
	}
}

func BenchmarkEncodeScheduledCRS63(b *testing.B) {
	c := Must(6, 3)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	b.SetBytes(6 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.EncodeScheduled(data); err != nil {
			b.Fatal(err)
		}
	}
}

func TestApplyDeltaMatchesReencode(t *testing.T) {
	c := Must(4, 2)
	rng := rand.New(rand.NewSource(8))
	data := randShards(rng, 4, 48)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// Update element 2 via the delta path.
	newData := make([]byte, 48)
	rng.Read(newData)
	delta := make([]byte, 48)
	for i := range delta {
		delta[i] = data[2][i] ^ newData[i]
	}
	if err := c.ApplyDelta(parity, 2, delta); err != nil {
		t.Fatal(err)
	}
	data[2] = newData
	want, _ := c.Encode(data)
	for i := range want {
		if !bytes.Equal(parity[i], want[i]) {
			t.Fatalf("parity %d diverges from re-encode after delta", i)
		}
	}
	// Validation paths.
	if err := c.ApplyDelta(parity[:1], 0, delta); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("short parity: %v", err)
	}
	if err := c.ApplyDelta(parity, 9, delta); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("bad element: %v", err)
	}
	if err := c.ApplyDelta(parity, 0, delta[:47]); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("unaligned delta: %v", err)
	}
	if err := c.ApplyDelta([][]byte{make([]byte, 40), make([]byte, 48)}, 0, delta); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("ragged parity: %v", err)
	}
}
