package crs

import (
	"repro/internal/bitmatrix"
)

// Op is one step of an XOR schedule. If Copy is true the destination packet
// is overwritten with the source; otherwise the source is XORed in.
// Sources index the unified packet space: data packets are [0, k·w), output
// (parity) packets [k·w, n·w).
type Op struct {
	Dst  int
	Src  int
	Copy bool
}

// Schedule is a precomputed XOR program that produces the parity packets of
// one stripe. It mirrors Jerasure's "smart scheduling": instead of XORing
// every set bit of each parity bit-row from scratch, a row may start from a
// previously computed parity row and apply only the differing inputs, which
// shrinks the XOR count whenever adjacent rows overlap (Cauchy rows overlap
// heavily by construction).
type Schedule struct {
	k, m int
	ops  []Op
}

// Ops returns the number of XOR/copy operations in the schedule.
func (s *Schedule) Ops() int { return len(s.ops) }

// buildSchedule derives a schedule from the parity block of the binary
// generator (rows = m·w parity bit-rows over k·w data columns) using a
// greedy nearest-base heuristic: each output row is computed either directly
// from its inputs or as a delta from an already computed output row,
// whichever costs fewer XORs. w is the symbol width in bits.
func buildSchedule(parityBits *bitmatrix.Matrix, w, k, m int) *Schedule {
	rowsN := parityBits.Rows()
	colsN := parityBits.Cols()
	sched := &Schedule{k: k, m: m}
	rowBits := func(r int) []bool {
		out := make([]bool, colsN)
		for j := 0; j < colsN; j++ {
			out[j] = parityBits.At(r, j)
		}
		return out
	}
	computed := make([][]bool, 0, rowsN)
	for r := 0; r < rowsN; r++ {
		bits := rowBits(r)
		direct := 0
		for _, b := range bits {
			if b {
				direct++
			}
		}
		// Direct cost: first input is a copy, the rest XORs → `direct` ops.
		bestCost := direct
		bestBase := -1
		for base, bbits := range computed {
			diff := 0
			for j := 0; j < colsN; j++ {
				if bits[j] != bbits[j] {
					diff++
				}
			}
			// Base copy (1 op) plus one XOR per differing input.
			if cost := 1 + diff; cost < bestCost {
				bestCost = cost
				bestBase = base
			}
		}
		dst := k*w + r
		if bestBase < 0 {
			first := true
			for j := 0; j < colsN; j++ {
				if bits[j] {
					sched.ops = append(sched.ops, Op{Dst: dst, Src: j, Copy: first})
					first = false
				}
			}
			if first {
				// All-zero row (cannot happen for Cauchy blocks, but keep
				// the schedule total): emit a self-zeroing copy marker.
				sched.ops = append(sched.ops, Op{Dst: dst, Src: dst, Copy: true})
			}
		} else {
			sched.ops = append(sched.ops, Op{Dst: dst, Src: k*w + bestBase, Copy: true})
			base := computed[bestBase]
			for j := 0; j < colsN; j++ {
				if bits[j] != base[j] {
					sched.ops = append(sched.ops, Op{Dst: dst, Src: j})
				}
			}
		}
		computed = append(computed, bits)
	}
	return sched
}

// Schedule returns the code's precomputed XOR schedule.
func (c *Code) Schedule() *Schedule { return c.xc.sched }

// NaiveXOROps returns the operation count of the unscheduled encode (one op
// per set generator bit), for comparison with Schedule().Ops().
func (c *Code) NaiveXOROps() int { return c.xc.naiveXOROps() }

// EncodeScheduled computes parity shards by running the XOR schedule. The
// result is bit-identical to Encode but performs fewer XOR passes when rows
// overlap. Shard sizes must be multiples of W bytes.
func (c *Code) EncodeScheduled(data [][]byte) ([][]byte, error) {
	return c.xc.encodeScheduled(data)
}
