// Wide-stripe Cauchy Reed-Solomon over GF(2^16): CRS16(k,m) expands a
// GF(2^16) Cauchy generator into a GF(2) bit matrix, splits each element
// into 16 packets, and encodes/decodes by pure XOR — the same construction
// as CRS(k,m) with the field ceiling lifted from 256 to the wide-code limit.
// Shard sizes must be multiples of W16 (16) bytes.
package crs

import (
	"fmt"

	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/gf16"
	"repro/internal/matrix"
)

// W16 is the GF(2^16) symbol width in bits. Elements are split into W16
// packets; shard sizes must be multiples of W16 bytes.
const W16 = 16

// Code16 is a wide-stripe Cauchy Reed-Solomon code with parameters (k, m)
// over GF(2^16).
type Code16 struct {
	*codes.Base16
	k, m int
	xc   *xorCode
}

// New16 constructs CRS16(k,m). The Cauchy generator makes the code MDS by
// construction, so the declared fault tolerance m needs no search.
func New16(k, m int) (*Code16, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("crs: invalid parameters k=%d m=%d", k, m)
	}
	if k+m > codes.MaxN16 {
		return nil, fmt.Errorf("crs: k+m = %d exceeds wide-code limit %d", k+m, codes.MaxN16)
	}
	gen := matrix.Identity16(k).Stack(matrix.Cauchy16(m, k))
	return &Code16{
		Base16: codes.NewBase16(gen, m),
		k:      k, m: m,
		xc: newXORCode(expand16(gen), W16, k, m),
	}, nil
}

// Must16 constructs CRS16(k,m) and panics on invalid parameters.
func Must16(k, m int) *Code16 {
	c, err := New16(k, m)
	if err != nil {
		panic(err)
	}
	return c
}

// expand16 converts a GF(2^16) matrix into its binary equivalent: each field
// element a becomes the 16×16 companion block whose column j holds the bits
// of a·x^j, so block-vector products over GF(2) agree with field products.
func expand16(m *matrix.Matrix16) *bitmatrix.Matrix {
	out := bitmatrix.New(m.Rows()*W16, m.Cols()*W16)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			a := m.At(i, j)
			if a == 0 {
				continue
			}
			for col := 0; col < W16; col++ {
				v := gf16.Mul(a, gf16.Exp(2, col)) // a·x^col
				for row := 0; row < W16; row++ {
					if v>>uint(row)&1 == 1 {
						out.Set(i*W16+row, j*W16+col, true)
					}
				}
			}
		}
	}
	return out
}

// Name returns "CRS16(k,m)".
func (c *Code16) Name() string { return fmt.Sprintf("CRS16(%d,%d)", c.k, c.m) }

// PositionalKernel reports false, overriding the embedded Base16: CRS16
// shards use the packet layout (W16 bit-plane sub-blocks per shard), so a
// parity byte mixes data bytes from different offsets and byte-range
// chunking of shards would corrupt the code.
func (c *Code16) PositionalKernel() bool { return false }

// SymbolBytes reports the shard-size granularity, overriding the embedded
// Base16's symbol width: the packet layout needs shard sizes divisible by
// W16 bytes, not just by the 2-byte field symbol.
func (c *Code16) SymbolBytes() int { return W16 }

// M returns the number of parity elements per row.
func (c *Code16) M() int { return c.m }

// BitGenerator returns the binary generator matrix. Callers must not modify
// it.
func (c *Code16) BitGenerator() *bitmatrix.Matrix { return c.xc.bitGen }

// XORCount returns the number of packet XORs one stripe encode performs.
func (c *Code16) XORCount() int { return c.xc.xorCount() }

// Schedule returns the code's precomputed XOR schedule.
func (c *Code16) Schedule() *Schedule { return c.xc.sched }

// NaiveXOROps returns the operation count of the unscheduled encode (one op
// per set generator bit), for comparison with Schedule().Ops().
func (c *Code16) NaiveXOROps() int { return c.xc.naiveXOROps() }

// Encode computes parity shards using only XOR operations on packets. Shard
// sizes must be multiples of W16 bytes.
func (c *Code16) Encode(data [][]byte) ([][]byte, error) {
	return c.xc.encode(data)
}

// EncodeInto computes parity into caller-provided cells — the
// zero-allocation encode path. parity must hold m buffers of the data shard
// size; contents are overwritten.
func (c *Code16) EncodeInto(parity, data [][]byte) error {
	return c.xc.encodeInto(parity, data)
}

// EncodeScheduled computes parity shards by running the XOR schedule. The
// result is bit-identical to Encode but performs fewer XOR passes when rows
// overlap. Shard sizes must be multiples of W16 bytes.
func (c *Code16) EncodeScheduled(data [][]byte) ([][]byte, error) {
	return c.xc.encodeScheduled(data)
}

// Reconstruct rebuilds every nil shard. CRS16 shards use the packet layout,
// so decoding must go through the binary generator as well; this overrides
// the embedded field-arithmetic decoder with the XOR path.
func (c *Code16) Reconstruct(shards [][]byte) error {
	return c.xc.reconstructXOR(shards)
}

// ReconstructInto overrides the promoted Base16 method: the embedded
// field-arithmetic decode would silently corrupt packet-layout shards, so
// the XOR path must win no matter which interface the caller reached us
// through. The allocator is unused — the XOR decode manages its own buffers.
func (c *Code16) ReconstructInto(shards [][]byte, _ codes.Allocator) error {
	return c.xc.reconstructXOR(shards)
}

// ReconstructElementsInto overrides the promoted Base16 method for the same
// reason as ReconstructInto.
func (c *Code16) ReconstructElementsInto(shards [][]byte, targets []int, _ codes.Allocator) error {
	return c.xc.reconstructElements(shards, targets)
}

// ReconstructElements rebuilds the targets (and, as a side effect of the
// XOR decode, any other recoverable nil shard).
func (c *Code16) ReconstructElements(shards [][]byte, targets []int) error {
	return c.xc.reconstructElements(shards, targets)
}

// ReconstructXOR rebuilds every nil shard using the pure-XOR decode path.
func (c *Code16) ReconstructXOR(shards [][]byte) error {
	return c.xc.reconstructXOR(shards)
}

// ApplyDelta folds an update of data element elem into the parity shards
// through the binary generator. Pure XOR, like the encode.
func (c *Code16) ApplyDelta(parity [][]byte, elem int, delta []byte) error {
	return c.xc.applyDelta(parity, elem, delta)
}

// RecoverySets mirrors rs.Code16: data-heavy sets first, then cyclic
// windows.
func (c *Code16) RecoverySets(idx int) [][]int {
	return crsRecoverySets(c.k, c.m, idx)
}

var (
	_ codes.Code           = (*Code16)(nil)
	_ codes.IntoEncoder    = (*Code16)(nil)
	_ codes.WideSymbolCode = (*Code16)(nil)
)
