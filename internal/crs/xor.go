// Width-generic XOR machinery shared by the GF(2^8) and GF(2^16) Cauchy
// Reed-Solomon codes. The CRS construction is the same at any symbol width
// w: expand the field generator into a binary matrix, split each element
// into w packets, and encode/decode by XORing packets. Width enters only
// through packet counts and bit-row ranges, so one body serves Code (w=8)
// and Code16 (w=16).
package crs

import (
	"fmt"
	"sync"

	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/gf"
)

// invKeyWords sizes the survivor-selection bitmap used as the
// inverse-cache key: enough 64-bit words to cover the widest supported
// stripe (codes.MaxN16 elements).
const invKeyWords = codes.MaxN16 / 64

// xorCode is the width-generic XOR kernel behind Code and Code16.
type xorCode struct {
	w, k, m int
	// bitGen is the (n·w)×(k·w) binary generator; rows of element i are
	// bit-rows [i·w, (i+1)·w).
	bitGen *bitmatrix.Matrix
	// paritySub is bitGen's parity block restricted to the data columns —
	// the matrix every encode applies — precomputed so encodes never
	// re-extract it.
	paritySub *bitmatrix.Matrix
	// sched is the precomputed XOR schedule for EncodeScheduled.
	sched *Schedule
	// pkPool recycles the (k+m)·w packet-pointer tables the encode paths
	// need, so steady-state encodes allocate only the parity shards — or
	// nothing at all on the EncodeInto path.
	pkPool sync.Pool
	// invMu guards invCache, which memoizes the inverted survivor
	// sub-generator per survivor selection: a storage system repairs the
	// same failure pattern for every stripe, and the k·w×k·w GF(2)
	// inversion dwarfs the XOR work for small shards.
	invMu    sync.RWMutex
	invCache map[[invKeyWords]uint64]*bitmatrix.Matrix
}

// newXORCode precomputes the parity sub-matrix, the XOR schedule, and the
// packet-table pool for a binary generator of symbol width w.
func newXORCode(bitGen *bitmatrix.Matrix, w, k, m int) *xorCode {
	c := &xorCode{
		w: w, k: k, m: m,
		bitGen:   bitGen,
		invCache: make(map[[invKeyWords]uint64]*bitmatrix.Matrix),
	}
	c.paritySub = selectCols(bitGen.SelectRows(rowRange(k*w, (k+m)*w)), 0, k*w)
	c.sched = buildSchedule(c.paritySub, w, k, m)
	c.pkPool.New = func() any {
		s := make([][]byte, (k+m)*w)
		return &s
	}
	return c
}

// packets splits a shard into w equal packets (packet p holds bit-plane p's
// bytes: Jerasure's layout is simply w contiguous sub-blocks).
func packets(shard []byte, w int) [][]byte {
	out := make([][]byte, w)
	packetsInto(out, shard, w)
	return out
}

// packetsInto writes the w packet views of shard into dst without
// allocating. dst must have length w.
func packetsInto(dst [][]byte, shard []byte, w int) {
	plen := len(shard) / w
	for p := 0; p < w; p++ {
		dst[p] = shard[p*plen : (p+1)*plen]
	}
}

// checkData validates data shard count, consistency, and the packet-size
// constraint, returning the common shard size.
func (c *xorCode) checkData(data [][]byte) (int, error) {
	if len(data) != c.k {
		return 0, fmt.Errorf("%w: got %d data shards, want %d", codes.ErrShardSize, len(data), c.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", codes.ErrShardSize, i)
		}
		if size == -1 {
			size = len(d)
		}
		if len(d) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", codes.ErrShardSize, i, len(d), size)
		}
	}
	if size%c.w != 0 {
		return 0, fmt.Errorf("%w: shard size %d not a multiple of %d", codes.ErrShardSize, size, c.w)
	}
	return size, nil
}

// encode computes parity shards using only XOR operations on packets.
func (c *xorCode) encode(data [][]byte) ([][]byte, error) {
	size, err := c.checkData(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	c.encodePacked(parity, data)
	return parity, nil
}

// encodeInto computes parity into caller-provided cells — the
// zero-allocation encode path.
func (c *xorCode) encodeInto(parity, data [][]byte) error {
	size, err := c.checkData(data)
	if err != nil {
		return err
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity cells, want %d", codes.ErrShardSize, len(parity), c.m)
	}
	for i, p := range parity {
		if len(p) != size {
			return fmt.Errorf("%w: parity cell %d has %d bytes, want %d", codes.ErrShardSize, i, len(p), size)
		}
	}
	c.encodePacked(parity, data)
	return nil
}

// encodePacked runs the XOR encode through a pooled packet-pointer table.
// Inputs are pre-validated.
func (c *xorCode) encodePacked(parity, data [][]byte) {
	tp := c.pkPool.Get().(*[][]byte)
	table := *tp
	for i, d := range data {
		packetsInto(table[i*c.w:(i+1)*c.w], d, c.w)
	}
	out := table[c.k*c.w : (c.k+c.m)*c.w]
	for i, p := range parity {
		packetsInto(out[i*c.w:(i+1)*c.w], p, c.w)
	}
	// Parity bit-rows over the data columns are all we need since the left
	// block of the generator is identity.
	c.paritySub.MulVec(out, table[:c.k*c.w])
	for i := range table {
		table[i] = nil // don't pin shard memory inside the pool
	}
	c.pkPool.Put(tp)
}

// reconstructXOR rebuilds every nil shard using the pure-XOR decode path:
// pick k surviving elements, invert their k·w×k·w binary sub-generator,
// recover the data packets, and re-encode the erased elements. It fails
// with codes.ErrUnrecoverable beyond m erasures.
func (c *xorCode) reconstructXOR(shards [][]byte) error {
	n := c.k + c.m
	if len(shards) != n {
		return fmt.Errorf("%w: got %d shards, want %d", codes.ErrShardSize, len(shards), n)
	}
	var avail, erased []int
	size := -1
	for i, s := range shards {
		if s == nil {
			erased = append(erased, i)
			continue
		}
		if size == -1 {
			size = len(s)
		}
		if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", codes.ErrShardSize, i, len(s), size)
		}
		avail = append(avail, i)
	}
	if len(erased) == 0 {
		return nil
	}
	if len(avail) < c.k {
		return fmt.Errorf("%w: only %d survivors for k=%d", codes.ErrUnrecoverable, len(avail), c.k)
	}
	if size%c.w != 0 {
		return fmt.Errorf("%w: shard size %d not a multiple of %d", codes.ErrShardSize, size, c.w)
	}
	use := avail[:c.k]
	inv, err := c.survivorInverse(use)
	if err != nil {
		return fmt.Errorf("%w: survivor sub-generator singular", codes.ErrUnrecoverable)
	}
	// Recover all data packets.
	in := make([][]byte, 0, c.k*c.w)
	for _, e := range use {
		in = append(in, packets(shards[e], c.w)...)
	}
	dataShards := make([][]byte, c.k)
	dataPk := make([][]byte, 0, c.k*c.w)
	for i := range dataShards {
		dataShards[i] = make([]byte, size)
		dataPk = append(dataPk, packets(dataShards[i], c.w)...)
	}
	inv.MulVec(dataPk, in)
	// Re-emit the erased elements from the recovered data.
	for _, e := range erased {
		shard := make([]byte, size)
		outPk := packets(shard, c.w)
		rows := rowRange(e*c.w, (e+1)*c.w)
		selectCols(c.bitGen.SelectRows(rows), 0, c.k*c.w).MulVec(outPk, dataPk)
		shards[e] = shard
	}
	return nil
}

// reconstructElements rebuilds the targets (and, as a side effect of the
// XOR decode, any other recoverable nil shard). For an MDS code the targets
// are recoverable exactly when at least k survivors exist, so delegating to
// the full decode loses no generality.
func (c *xorCode) reconstructElements(shards [][]byte, targets []int) error {
	for _, t := range targets {
		if t < 0 || t >= c.k+c.m {
			return fmt.Errorf("%w: target %d out of range", codes.ErrShardSize, t)
		}
	}
	return c.reconstructXOR(shards)
}

// applyDelta folds an update of data element elem into the parity shards
// through the binary generator: each parity element's w×w block for elem is
// applied to the delta's packets and XORed in. Pure XOR, like the encode.
func (c *xorCode) applyDelta(parity [][]byte, elem int, delta []byte) error {
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity shards, want %d", codes.ErrShardSize, len(parity), c.m)
	}
	if elem < 0 || elem >= c.k {
		return fmt.Errorf("%w: data element %d out of [0,%d)", codes.ErrShardSize, elem, c.k)
	}
	if len(delta)%c.w != 0 {
		return fmt.Errorf("%w: delta size %d not a multiple of %d", codes.ErrShardSize, len(delta), c.w)
	}
	for t, p := range parity {
		if len(p) != len(delta) {
			return fmt.Errorf("%w: parity %d has %d bytes, delta %d", codes.ErrShardSize, t, len(p), len(delta))
		}
	}
	deltaPk := packets(delta, c.w)
	buf := make([]byte, len(delta))
	for t := 0; t < c.m; t++ {
		block := selectCols(c.bitGen.SelectRows(rowRange((c.k+t)*c.w, (c.k+t+1)*c.w)), elem*c.w, (elem+1)*c.w)
		block.MulVec(packets(buf, c.w), deltaPk) // MulVec zeroes buf's packets first
		gf.AddSlice(parity[t], buf)
	}
	return nil
}

// survivorInverse returns the inverted k·w×k·w sub-generator for the given
// survivor elements, memoized per selection: repairing a failure pattern
// touches every stripe with the same survivors, so the GF(2) inversion is
// paid once.
func (c *xorCode) survivorInverse(use []int) (*bitmatrix.Matrix, error) {
	var key [invKeyWords]uint64
	for _, e := range use {
		key[e/64] |= 1 << (uint(e) % 64)
	}
	c.invMu.RLock()
	inv, ok := c.invCache[key]
	c.invMu.RUnlock()
	if ok {
		return inv, nil
	}
	bitRows := make([]int, 0, c.k*c.w)
	for _, e := range use {
		bitRows = append(bitRows, rowRange(e*c.w, (e+1)*c.w)...)
	}
	inv, err := c.bitGen.SelectRows(bitRows).Invert()
	if err != nil {
		return nil, err
	}
	c.invMu.Lock()
	c.invCache[key] = inv
	c.invMu.Unlock()
	return inv, nil
}

// xorCount returns the number of packet XORs one stripe encode performs —
// the cost metric CRS constructions optimize (set bits in the parity block
// beyond the first contribution of each output packet).
func (c *xorCode) xorCount() int {
	count := 0
	for i := c.k * c.w; i < (c.k+c.m)*c.w; i++ {
		w := c.bitGen.RowWeight(i)
		if w > 0 {
			count += w - 1
		}
	}
	return count
}

// naiveXOROps returns the operation count of the unscheduled encode (one op
// per set generator bit).
func (c *xorCode) naiveXOROps() int {
	ops := 0
	for r := c.k * c.w; r < (c.k+c.m)*c.w; r++ {
		ops += c.bitGen.RowWeight(r)
	}
	return ops
}

// encodeScheduled computes parity shards by running the XOR schedule. The
// result is bit-identical to encode but performs fewer XOR passes when rows
// overlap.
func (c *xorCode) encodeScheduled(data [][]byte) ([][]byte, error) {
	size, err := c.checkData(data)
	if err != nil {
		return nil, err
	}
	// Unified packet table: data packets then parity packets.
	table := make([][]byte, (c.k+c.m)*c.w)
	for i, d := range data {
		packetsInto(table[i*c.w:(i+1)*c.w], d, c.w)
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
		packetsInto(table[(c.k+i)*c.w:(c.k+i+1)*c.w], parity[i], c.w)
	}
	for _, op := range c.sched.ops {
		dst := table[op.Dst]
		if op.Copy {
			if op.Src == op.Dst {
				clear(dst)
				continue
			}
			copy(dst, table[op.Src])
			continue
		}
		gf.AddSlice(dst, table[op.Src])
	}
	return parity, nil
}

// rowRange returns [lo, hi).
func rowRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// selectCols copies columns [lo,hi) of m into a new matrix.
func selectCols(m *bitmatrix.Matrix, lo, hi int) *bitmatrix.Matrix {
	out := bitmatrix.New(m.Rows(), hi-lo)
	for i := 0; i < m.Rows(); i++ {
		for j := lo; j < hi; j++ {
			if m.At(i, j) {
				out.Set(i, j-lo, true)
			}
		}
	}
	return out
}

// crsRecoverySets is the field-width-independent body of RecoverySets,
// shared by the GF(2^8) and GF(2^16) codes — the same data-heavy +
// cyclic-window families as the matrix RS codes.
func crsRecoverySets(k, m, idx int) [][]int {
	n := k + m
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("crs: element %d out of [0,%d)", idx, n))
	}
	var sets [][]int
	otherData := make([]int, 0, k)
	for j := 0; j < k; j++ {
		if j != idx {
			otherData = append(otherData, j)
		}
	}
	if idx < k {
		for p := k; p < n; p++ {
			sets = append(sets, append(append([]int{}, otherData...), p))
		}
	} else {
		sets = append(sets, otherData)
	}
	for t := 0; t < n-k; t++ {
		set := make([]int, 0, k)
		for j := 0; j < k; j++ {
			set = append(set, (idx+1+t+j)%n)
		}
		sets = append(sets, set)
	}
	return sets
}
