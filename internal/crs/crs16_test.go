package crs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/codes"
	"repro/internal/core"
	"repro/internal/gf16"
	"repro/internal/layout"
	"repro/internal/rs"
)

func TestNew16Validation(t *testing.T) {
	for _, p := range [][2]int{{0, 1}, {1, 0}, {1020, 100}} {
		if _, err := New16(p[0], p[1]); err == nil {
			t.Errorf("New16(%d,%d) succeeded", p[0], p[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Must16 did not panic")
		}
	}()
	Must16(0, 0)
}

func TestName16AndParams(t *testing.T) {
	c := Must16(6, 3)
	if c.Name() != "CRS16(6,3)" || c.K() != 6 || c.M() != 3 || c.N() != 9 {
		t.Fatalf("params wrong: %s", c.Name())
	}
	if c.FaultTolerance() != 3 {
		t.Fatalf("tolerance = %d", c.FaultTolerance())
	}
	if c.SymbolBytes() != W16 {
		t.Fatalf("SymbolBytes = %d, want %d", c.SymbolBytes(), W16)
	}
	if c.PositionalKernel() {
		t.Fatal("CRS16 must not claim a positional kernel")
	}
}

func TestEncode16RejectsBadSizes(t *testing.T) {
	c := Must16(3, 2)
	if _, err := c.Encode(randShards(rand.New(rand.NewSource(1)), 2, 32)); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("wrong count: %v", err)
	}
	// Even (symbol-aligned) but not a multiple of W16: still rejected.
	if _, err := c.Encode(randShards(rand.New(rand.NewSource(1)), 3, 24)); !errors.Is(err, codes.ErrShardSize) {
		t.Fatalf("non-multiple-of-W16 size: %v", err)
	}
}

func TestBitGenerator16MatchesFieldArithmetic(t *testing.T) {
	// Block (i,j) of the expanded generator must implement multiplication
	// by gen[i][j]: applying the block to the bit-decomposition of v gives
	// the bits of gen[i][j]·v.
	c := Must16(3, 2)
	g := c.Generator()
	bg := c.BitGenerator()
	for i := 0; i < g.Rows(); i++ {
		for j := 0; j < g.Cols(); j++ {
			a := g.At(i, j)
			for v := 0; v < 1<<16; v += 4099 {
				want := gf16.Mul(a, uint16(v))
				var got uint16
				for row := 0; row < W16; row++ {
					bit := uint16(0)
					for col := 0; col < W16; col++ {
						if bg.At(i*W16+row, j*W16+col) && uint16(v)>>uint(col)&1 == 1 {
							bit ^= 1
						}
					}
					got |= bit << uint(row)
				}
				if got != want {
					t.Fatalf("block (%d,%d): %#x·%#x = %#x, want %#x", i, j, a, v, got, want)
				}
			}
		}
	}
}

func TestRoundTrip16AllPatterns(t *testing.T) {
	const k, m = 4, 2
	c := Must16(k, m)
	rng := rand.New(rand.NewSource(3))
	data := randShards(rng, k, 48)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	n := k + m
	for mask := 1; mask < 1<<n; mask++ {
		cnt := 0
		for i := 0; i < n; i++ {
			if mask>>i&1 == 1 {
				cnt++
			}
		}
		if cnt > m {
			continue
		}
		shards := make([][]byte, n)
		for i := range shards {
			if mask>>i&1 == 0 {
				shards[i] = append([]byte(nil), full[i]...)
			}
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("mask %b shard %d mismatch", mask, i)
			}
		}
	}
}

func TestWideStripe16RoundTrip(t *testing.T) {
	// The reason CRS16 exists: stripes far beyond the GF(2^8) ceiling of
	// 256 elements. Encode at k=64, knock out m random shards, rebuild.
	const k, m = 64, 4
	c := Must16(k, m)
	rng := rand.New(rand.NewSource(9))
	data := randShards(rng, k, 64)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	full := append(append([][]byte{}, data...), parity...)
	for trial := 0; trial < 4; trial++ {
		shards := make([][]byte, k+m)
		for i := range shards {
			shards[i] = append([]byte(nil), full[i]...)
		}
		for len(erasedSet(shards)) < m {
			shards[rng.Intn(k+m)] = nil
		}
		if err := c.Reconstruct(shards); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				t.Fatalf("trial %d shard %d mismatch", trial, i)
			}
		}
	}
}

func erasedSet(shards [][]byte) []int {
	var out []int
	for i, s := range shards {
		if s == nil {
			out = append(out, i)
		}
	}
	return out
}

func TestScheduledEncode16MatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, p := range [][2]int{{3, 2}, {8, 4}, {32, 3}} {
		c := Must16(p[0], p[1])
		data := randShards(rng, p[0], 64)
		direct, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		sched, err := c.EncodeScheduled(data)
		if err != nil {
			t.Fatal(err)
		}
		for i := range direct {
			if !bytes.Equal(direct[i], sched[i]) {
				t.Fatalf("CRS16(%d,%d): scheduled parity %d differs", p[0], p[1], i)
			}
		}
		if got, naive := c.Schedule().Ops(), c.NaiveXOROps(); got >= naive {
			t.Errorf("CRS16(%d,%d): schedule %d ops not below naive %d", p[0], p[1], got, naive)
		}
	}
}

func TestApplyDelta16MatchesReencode(t *testing.T) {
	c := Must16(4, 2)
	rng := rand.New(rand.NewSource(8))
	data := randShards(rng, 4, 48)
	parity, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	newData := make([]byte, 48)
	rng.Read(newData)
	delta := make([]byte, 48)
	for i := range delta {
		delta[i] = data[2][i] ^ newData[i]
	}
	if err := c.ApplyDelta(parity, 2, delta); err != nil {
		t.Fatal(err)
	}
	data[2] = newData
	want, _ := c.Encode(data)
	for i := range want {
		if !bytes.Equal(parity[i], want[i]) {
			t.Fatalf("parity %d diverges from re-encode after delta", i)
		}
	}
}

func TestRecoverySets16Valid(t *testing.T) {
	c := Must16(5, 3)
	for idx := 0; idx < c.N(); idx++ {
		for si, set := range c.RecoverySets(idx) {
			if !c.VerifySet(idx, set) {
				t.Fatalf("element %d set %d invalid: %v", idx, si, set)
			}
		}
	}
}

func TestCRS16SameCodeAsRS16(t *testing.T) {
	// CRS16 and RS16 are built from the same Cauchy generator, so the
	// recovered data must agree even though the shard layouts differ:
	// rebuild the same erased data element through both kernels.
	const k, m = 8, 3
	xc := Must16(k, m)
	fc := rs.Must16(k, m)
	rng := rand.New(rand.NewSource(11))
	data := randShards(rng, k, 32)
	px, err := xc.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	pf, err := fc.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	sx := append(append([][]byte{}, data...), px...)
	sf := append(append([][]byte{}, data...), pf...)
	sx[2], sf[2] = nil, nil
	if err := xc.Reconstruct(sx); err != nil {
		t.Fatal(err)
	}
	if err := fc.Reconstruct(sf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sx[2], data[2]) || !bytes.Equal(sf[2], data[2]) {
		t.Fatal("recovered data element differs from original")
	}
}

func TestCRS16WorksAsECFRMCandidate(t *testing.T) {
	c := Must16(6, 3)
	scheme, err := core.NewScheme(c, layout.FormECFRM)
	if err != nil {
		t.Fatal(err)
	}
	if scheme.Name() != "EC-FRM-CRS16(6,3)" {
		t.Fatalf("name %q", scheme.Name())
	}
	rng := rand.New(rand.NewSource(6))
	data := randShards(rng, scheme.DataPerStripe(), 32)
	cells, err := scheme.EncodeStripe(data)
	if err != nil {
		t.Fatal(err)
	}
	n := scheme.N()
	broken := make([][]byte, len(cells))
	for i := range cells {
		if i%n != 0 && i%n != 4 && i%n != 8 {
			broken[i] = cells[i]
		}
	}
	if err := scheme.ReconstructStripe(broken); err != nil {
		t.Fatal(err)
	}
	for i := range cells {
		if !bytes.Equal(broken[i], cells[i]) {
			t.Fatalf("cell %d mismatch", i)
		}
	}
}

func BenchmarkEncodeCRS16Wide(b *testing.B) {
	c := Must16(64, 4)
	data := make([][]byte, 64)
	for i := range data {
		data[i] = make([]byte, 64<<10)
	}
	b.SetBytes(64 * 64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}
