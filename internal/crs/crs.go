// Package crs implements Cauchy Reed-Solomon coding (Blömer et al. 1995),
// the XOR-based horizontal code the EC-FRM paper surveys in §II-B: the
// GF(2^w) Cauchy generator is expanded into a GF(2) bit matrix, each element
// is split into w packets, and encoding becomes pure XOR of packets — no
// field multiplications on the data path. This mirrors Jerasure's
// cauchy_original coding path.
//
// CRS(k,m) is the same linear code as the matrix Reed-Solomon in
// internal/rs built from the same Cauchy block, so it is MDS and slots into
// EC-FRM as a candidate code; what changes is the encode/decode kernel.
// CRS16(k,m) is the identical construction over GF(2^16) for wide stripes
// (see crs16.go); both share the width-generic XOR machinery in xor.go.
package crs

import (
	"fmt"

	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/gf"
	"repro/internal/matrix"
)

// W is the GF(2^8) symbol width in bits. Elements are split into W packets;
// shard sizes must be multiples of W bytes.
const W = 8

// Code is a Cauchy Reed-Solomon code with parameters (k, m).
type Code struct {
	*codes.Base
	k, m int
	xc   *xorCode
}

// New constructs CRS(k,m).
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("crs: invalid parameters k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("crs: k+m = %d exceeds field size 256", k+m)
	}
	gen := matrix.Identity(k).Stack(matrix.Cauchy(m, k))
	return &Code{
		Base: codes.NewBase(gen),
		k:    k, m: m,
		xc: newXORCode(expand(gen), W, k, m),
	}, nil
}

// Must constructs CRS(k,m) and panics on invalid parameters.
func Must(k, m int) *Code {
	c, err := New(k, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns "CRS(k,m)".
func (c *Code) Name() string { return fmt.Sprintf("CRS(%d,%d)", c.k, c.m) }

// PositionalKernel reports false, overriding the embedded Base: CRS shards
// use the packet layout (W bit-plane sub-blocks per shard), so a parity byte
// mixes data bytes from different offsets and byte-range chunking of shards
// would corrupt the code.
func (c *Code) PositionalKernel() bool { return false }

// M returns the number of parity elements per row.
func (c *Code) M() int { return c.m }

// BitGenerator returns the binary generator matrix. Callers must not modify
// it.
func (c *Code) BitGenerator() *bitmatrix.Matrix { return c.xc.bitGen }

// XORCount returns the number of packet XORs one stripe encode performs —
// the cost metric CRS constructions optimize (set bits in the parity block
// beyond the first contribution of each output packet).
func (c *Code) XORCount() int { return c.xc.xorCount() }

// expand converts a GF(2^W) matrix into its binary equivalent: each field
// element a becomes the W×W companion block whose column j holds the bits of
// a·x^j, so block-vector products over GF(2) agree with field products.
func expand(m *matrix.Matrix) *bitmatrix.Matrix {
	out := bitmatrix.New(m.Rows()*W, m.Cols()*W)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			a := m.At(i, j)
			if a == 0 {
				continue
			}
			for col := 0; col < W; col++ {
				v := gf.Mul(a, gf.Exp(2, col)) // a·x^col
				for row := 0; row < W; row++ {
					if v>>uint(row)&1 == 1 {
						out.Set(i*W+row, j*W+col, true)
					}
				}
			}
		}
	}
	return out
}

// Encode computes parity shards using only XOR operations on packets. Shard
// sizes must be multiples of W bytes.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	return c.xc.encode(data)
}

// EncodeInto computes parity into caller-provided cells — the
// zero-allocation encode path. parity must hold m buffers of the data shard
// size; contents are overwritten.
func (c *Code) EncodeInto(parity, data [][]byte) error {
	return c.xc.encodeInto(parity, data)
}

// Reconstruct rebuilds every nil shard. CRS shards use the packet layout
// (W bit-plane sub-blocks per element), so decoding must go through the
// binary generator as well; this overrides the embedded field-arithmetic
// decoder with the XOR path.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.xc.reconstructXOR(shards)
}

// ReconstructInto overrides the promoted Base method: the embedded
// field-arithmetic decode would silently corrupt packet-layout shards, so
// the XOR path must win no matter which interface the caller reached us
// through. The allocator is unused — the XOR decode manages its own buffers.
func (c *Code) ReconstructInto(shards [][]byte, _ codes.Allocator) error {
	return c.xc.reconstructXOR(shards)
}

// ReconstructElementsInto overrides the promoted Base method for the same
// reason as ReconstructInto.
func (c *Code) ReconstructElementsInto(shards [][]byte, targets []int, _ codes.Allocator) error {
	return c.xc.reconstructElements(shards, targets)
}

// ReconstructElements rebuilds the targets (and, as a side effect of the
// XOR decode, any other recoverable nil shard). For an MDS code the targets
// are recoverable exactly when at least k survivors exist, so delegating to
// the full decode loses no generality.
func (c *Code) ReconstructElements(shards [][]byte, targets []int) error {
	return c.xc.reconstructElements(shards, targets)
}

// ReconstructXOR rebuilds every nil shard using the pure-XOR decode path:
// pick k surviving elements, invert their k·W×k·W binary sub-generator,
// recover the data packets, and re-encode the erased elements. It fails
// with codes.ErrUnrecoverable beyond m erasures.
func (c *Code) ReconstructXOR(shards [][]byte) error {
	return c.xc.reconstructXOR(shards)
}

// ApplyDelta folds an update of data element elem into the parity shards
// through the binary generator: each parity element's W×W block for elem is
// applied to the delta's packets and XORed in. Pure XOR, like the encode.
func (c *Code) ApplyDelta(parity [][]byte, elem int, delta []byte) error {
	return c.xc.applyDelta(parity, elem, delta)
}

// RecoverySets mirrors rs.Code: data-heavy sets first, then cyclic windows.
func (c *Code) RecoverySets(idx int) [][]int {
	return crsRecoverySets(c.k, c.m, idx)
}

var (
	_ codes.Code        = (*Code)(nil)
	_ codes.IntoEncoder = (*Code)(nil)
)
