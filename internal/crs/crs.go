// Package crs implements Cauchy Reed-Solomon coding (Blömer et al. 1995),
// the XOR-based horizontal code the EC-FRM paper surveys in §II-B: the
// GF(2^w) Cauchy generator is expanded into a GF(2) bit matrix, each element
// is split into w packets, and encoding becomes pure XOR of packets — no
// field multiplications on the data path. This mirrors Jerasure's
// cauchy_original coding path.
//
// CRS(k,m) is the same linear code as the matrix Reed-Solomon in
// internal/rs built from the same Cauchy block, so it is MDS and slots into
// EC-FRM as a candidate code; what changes is the encode/decode kernel.
package crs

import (
	"fmt"
	"sync"

	"repro/internal/bitmatrix"
	"repro/internal/codes"
	"repro/internal/gf"
	"repro/internal/matrix"
)

// W is the symbol width in bits. Elements are split into W packets; shard
// sizes must be multiples of W bytes.
const W = 8

// Code is a Cauchy Reed-Solomon code with parameters (k, m).
type Code struct {
	*codes.Base
	k, m int
	// bitGen is the (n·W)×(k·W) binary generator; rows of element i are
	// bit-rows [i·W, (i+1)·W).
	bitGen *bitmatrix.Matrix
	// paritySub is bitGen's parity block restricted to the data columns —
	// the matrix every encode applies — precomputed so Encode never
	// re-extracts it.
	paritySub *bitmatrix.Matrix
	// sched is the precomputed XOR schedule for EncodeScheduled.
	sched *Schedule
	// pkPool recycles the (k+m)·W packet-pointer tables the encode paths
	// need, so steady-state encodes allocate only the parity shards — or
	// nothing at all on the EncodeInto path.
	pkPool sync.Pool
	// invMu guards invCache, which memoizes the inverted survivor
	// sub-generator per survivor selection: a storage system repairs the
	// same failure pattern for every stripe, and the k·W×k·W GF(2)
	// inversion dwarfs the XOR work for small shards.
	invMu    sync.RWMutex
	invCache map[[4]uint64]*bitmatrix.Matrix
}

// New constructs CRS(k,m).
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("crs: invalid parameters k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("crs: k+m = %d exceeds field size 256", k+m)
	}
	gen := matrix.Identity(k).Stack(matrix.Cauchy(m, k))
	c := &Code{
		Base:     codes.NewBase(gen),
		k:        k,
		m:        m,
		invCache: make(map[[4]uint64]*bitmatrix.Matrix),
	}
	c.bitGen = expand(gen)
	c.paritySub = selectCols(c.bitGen.SelectRows(rowRange(k*W, (k+m)*W)), 0, k*W)
	c.sched = buildSchedule(c.paritySub, k, m)
	c.pkPool.New = func() any {
		s := make([][]byte, (k+m)*W)
		return &s
	}
	return c, nil
}

// Must constructs CRS(k,m) and panics on invalid parameters.
func Must(k, m int) *Code {
	c, err := New(k, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns "CRS(k,m)".
func (c *Code) Name() string { return fmt.Sprintf("CRS(%d,%d)", c.k, c.m) }

// PositionalKernel reports false, overriding the embedded Base: CRS shards
// use the packet layout (W bit-plane sub-blocks per shard), so a parity byte
// mixes data bytes from different offsets and byte-range chunking of shards
// would corrupt the code.
func (c *Code) PositionalKernel() bool { return false }

// M returns the number of parity elements per row.
func (c *Code) M() int { return c.m }

// BitGenerator returns the binary generator matrix. Callers must not modify
// it.
func (c *Code) BitGenerator() *bitmatrix.Matrix { return c.bitGen }

// XORCount returns the number of packet XORs one stripe encode performs —
// the cost metric CRS constructions optimize (set bits in the parity block
// beyond the first contribution of each output packet).
func (c *Code) XORCount() int {
	count := 0
	for i := c.k * W; i < (c.k+c.m)*W; i++ {
		w := c.bitGen.RowWeight(i)
		if w > 0 {
			count += w - 1
		}
	}
	return count
}

// expand converts a GF(2^W) matrix into its binary equivalent: each field
// element a becomes the W×W companion block whose column j holds the bits of
// a·x^j, so block-vector products over GF(2) agree with field products.
func expand(m *matrix.Matrix) *bitmatrix.Matrix {
	out := bitmatrix.New(m.Rows()*W, m.Cols()*W)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			a := m.At(i, j)
			if a == 0 {
				continue
			}
			for col := 0; col < W; col++ {
				v := gf.Mul(a, gf.Exp(2, col)) // a·x^col
				for row := 0; row < W; row++ {
					if v>>uint(row)&1 == 1 {
						out.Set(i*W+row, j*W+col, true)
					}
				}
			}
		}
	}
	return out
}

// packets splits a shard into W equal packets (packet p holds bit-plane p's
// bytes: Jerasure's layout is simply W contiguous sub-blocks).
func packets(shard []byte) [][]byte {
	out := make([][]byte, W)
	packetsInto(out, shard)
	return out
}

// packetsInto writes the W packet views of shard into dst without
// allocating. dst must have length W.
func packetsInto(dst [][]byte, shard []byte) {
	plen := len(shard) / W
	for p := 0; p < W; p++ {
		dst[p] = shard[p*plen : (p+1)*plen]
	}
}

// checkData validates data shard count, consistency, and the packet-size
// constraint, returning the common shard size.
func (c *Code) checkData(data [][]byte) (int, error) {
	if len(data) != c.k {
		return 0, fmt.Errorf("%w: got %d data shards, want %d", codes.ErrShardSize, len(data), c.k)
	}
	size := -1
	for i, d := range data {
		if d == nil {
			return 0, fmt.Errorf("%w: data shard %d is nil", codes.ErrShardSize, i)
		}
		if size == -1 {
			size = len(d)
		}
		if len(d) != size {
			return 0, fmt.Errorf("%w: shard %d has %d bytes, want %d", codes.ErrShardSize, i, len(d), size)
		}
	}
	if size%W != 0 {
		return 0, fmt.Errorf("%w: shard size %d not a multiple of %d", codes.ErrShardSize, size, W)
	}
	return size, nil
}

// Encode computes parity shards using only XOR operations on packets. Shard
// sizes must be multiples of W bytes.
func (c *Code) Encode(data [][]byte) ([][]byte, error) {
	size, err := c.checkData(data)
	if err != nil {
		return nil, err
	}
	parity := make([][]byte, c.m)
	for i := range parity {
		parity[i] = make([]byte, size)
	}
	c.encodePacked(parity, data)
	return parity, nil
}

// EncodeInto computes parity into caller-provided cells — the
// zero-allocation encode path. parity must hold m buffers of the data shard
// size; contents are overwritten.
func (c *Code) EncodeInto(parity, data [][]byte) error {
	size, err := c.checkData(data)
	if err != nil {
		return err
	}
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity cells, want %d", codes.ErrShardSize, len(parity), c.m)
	}
	for i, p := range parity {
		if len(p) != size {
			return fmt.Errorf("%w: parity cell %d has %d bytes, want %d", codes.ErrShardSize, i, len(p), size)
		}
	}
	c.encodePacked(parity, data)
	return nil
}

// encodePacked runs the XOR encode through a pooled packet-pointer table.
// Inputs are pre-validated.
func (c *Code) encodePacked(parity, data [][]byte) {
	tp := c.pkPool.Get().(*[][]byte)
	table := *tp
	for i, d := range data {
		packetsInto(table[i*W:(i+1)*W], d)
	}
	out := table[c.k*W : (c.k+c.m)*W]
	for i, p := range parity {
		packetsInto(out[i*W:(i+1)*W], p)
	}
	// Parity bit-rows over the data columns are all we need since the left
	// block of the generator is identity.
	c.paritySub.MulVec(out, table[:c.k*W])
	for i := range table {
		table[i] = nil // don't pin shard memory inside the pool
	}
	c.pkPool.Put(tp)
}

// Reconstruct rebuilds every nil shard. CRS shards use the packet layout
// (W bit-plane sub-blocks per element), so decoding must go through the
// binary generator as well; this overrides the embedded field-arithmetic
// decoder with the XOR path.
func (c *Code) Reconstruct(shards [][]byte) error {
	return c.ReconstructXOR(shards)
}

// ReconstructInto overrides the promoted Base method: the embedded
// field-arithmetic decode would silently corrupt packet-layout shards, so
// the XOR path must win no matter which interface the caller reached us
// through. The allocator is unused — the XOR decode manages its own buffers.
func (c *Code) ReconstructInto(shards [][]byte, _ codes.Allocator) error {
	return c.ReconstructXOR(shards)
}

// ReconstructElementsInto overrides the promoted Base method for the same
// reason as ReconstructInto.
func (c *Code) ReconstructElementsInto(shards [][]byte, targets []int, _ codes.Allocator) error {
	return c.ReconstructElements(shards, targets)
}

// ReconstructElements rebuilds the targets (and, as a side effect of the
// XOR decode, any other recoverable nil shard). For an MDS code the targets
// are recoverable exactly when at least k survivors exist, so delegating to
// the full decode loses no generality.
func (c *Code) ReconstructElements(shards [][]byte, targets []int) error {
	for _, t := range targets {
		if t < 0 || t >= c.k+c.m {
			return fmt.Errorf("%w: target %d out of range", codes.ErrShardSize, t)
		}
	}
	return c.ReconstructXOR(shards)
}

// ReconstructXOR rebuilds every nil shard using the pure-XOR decode path:
// pick k surviving elements, invert their k·W×k·W binary sub-generator,
// recover the data packets, and re-encode the erased elements. It fails
// with codes.ErrUnrecoverable beyond m erasures.
func (c *Code) ReconstructXOR(shards [][]byte) error {
	n := c.k + c.m
	if len(shards) != n {
		return fmt.Errorf("%w: got %d shards, want %d", codes.ErrShardSize, len(shards), n)
	}
	var avail, erased []int
	size := -1
	for i, s := range shards {
		if s == nil {
			erased = append(erased, i)
			continue
		}
		if size == -1 {
			size = len(s)
		}
		if len(s) != size {
			return fmt.Errorf("%w: shard %d has %d bytes, want %d", codes.ErrShardSize, i, len(s), size)
		}
		avail = append(avail, i)
	}
	if len(erased) == 0 {
		return nil
	}
	if len(avail) < c.k {
		return fmt.Errorf("%w: only %d survivors for k=%d", codes.ErrUnrecoverable, len(avail), c.k)
	}
	if size%W != 0 {
		return fmt.Errorf("%w: shard size %d not a multiple of %d", codes.ErrShardSize, size, W)
	}
	use := avail[:c.k]
	inv, err := c.survivorInverse(use)
	if err != nil {
		return fmt.Errorf("%w: survivor sub-generator singular", codes.ErrUnrecoverable)
	}
	// Recover all data packets.
	in := make([][]byte, 0, c.k*W)
	for _, e := range use {
		in = append(in, packets(shards[e])...)
	}
	dataShards := make([][]byte, c.k)
	dataPk := make([][]byte, 0, c.k*W)
	for i := range dataShards {
		dataShards[i] = make([]byte, size)
		dataPk = append(dataPk, packets(dataShards[i])...)
	}
	inv.MulVec(dataPk, in)
	// Re-emit the erased elements from the recovered data.
	for _, e := range erased {
		shard := make([]byte, size)
		outPk := packets(shard)
		var rows []int
		rows = append(rows, rowRange(e*W, (e+1)*W)...)
		selectCols(c.bitGen.SelectRows(rows), 0, c.k*W).MulVec(outPk, dataPk)
		shards[e] = shard
	}
	return nil
}

// ApplyDelta folds an update of data element elem into the parity shards
// through the binary generator: each parity element's W×W block for elem is
// applied to the delta's packets and XORed in. Pure XOR, like the encode.
func (c *Code) ApplyDelta(parity [][]byte, elem int, delta []byte) error {
	if len(parity) != c.m {
		return fmt.Errorf("%w: got %d parity shards, want %d", codes.ErrShardSize, len(parity), c.m)
	}
	if elem < 0 || elem >= c.k {
		return fmt.Errorf("%w: data element %d out of [0,%d)", codes.ErrShardSize, elem, c.k)
	}
	if len(delta)%W != 0 {
		return fmt.Errorf("%w: delta size %d not a multiple of %d", codes.ErrShardSize, len(delta), W)
	}
	for t, p := range parity {
		if len(p) != len(delta) {
			return fmt.Errorf("%w: parity %d has %d bytes, delta %d", codes.ErrShardSize, t, len(p), len(delta))
		}
	}
	deltaPk := packets(delta)
	buf := make([]byte, len(delta))
	for t := 0; t < c.m; t++ {
		block := selectCols(c.bitGen.SelectRows(rowRange((c.k+t)*W, (c.k+t+1)*W)), elem*W, (elem+1)*W)
		block.MulVec(packets(buf), deltaPk) // MulVec zeroes buf's packets first
		gf.AddSlice(parity[t], buf)
	}
	return nil
}

// survivorInverse returns the inverted k·W×k·W sub-generator for the given
// survivor elements, memoized per selection: repairing a failure pattern
// touches every stripe with the same survivors, so the GF(2) inversion is
// paid once.
func (c *Code) survivorInverse(use []int) (*bitmatrix.Matrix, error) {
	var key [4]uint64
	for _, e := range use {
		key[e/64] |= 1 << (uint(e) % 64)
	}
	c.invMu.RLock()
	inv, ok := c.invCache[key]
	c.invMu.RUnlock()
	if ok {
		return inv, nil
	}
	bitRows := make([]int, 0, c.k*W)
	for _, e := range use {
		bitRows = append(bitRows, rowRange(e*W, (e+1)*W)...)
	}
	inv, err := c.bitGen.SelectRows(bitRows).Invert()
	if err != nil {
		return nil, err
	}
	c.invMu.Lock()
	c.invCache[key] = inv
	c.invMu.Unlock()
	return inv, nil
}

// rowRange returns [lo, hi).
func rowRange(lo, hi int) []int {
	out := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		out = append(out, i)
	}
	return out
}

// selectCols copies columns [lo,hi) of m into a new matrix.
func selectCols(m *bitmatrix.Matrix, lo, hi int) *bitmatrix.Matrix {
	out := bitmatrix.New(m.Rows(), hi-lo)
	for i := 0; i < m.Rows(); i++ {
		for j := lo; j < hi; j++ {
			if m.At(i, j) {
				out.Set(i, j-lo, true)
			}
		}
	}
	return out
}

// RecoverySets mirrors rs.Code: data-heavy sets first, then cyclic windows.
func (c *Code) RecoverySets(idx int) [][]int {
	n := c.k + c.m
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("crs: element %d out of [0,%d)", idx, n))
	}
	var sets [][]int
	otherData := make([]int, 0, c.k)
	for j := 0; j < c.k; j++ {
		if j != idx {
			otherData = append(otherData, j)
		}
	}
	if idx < c.k {
		for p := c.k; p < n; p++ {
			sets = append(sets, append(append([]int{}, otherData...), p))
		}
	} else {
		sets = append(sets, otherData)
	}
	for t := 0; t < n-c.k; t++ {
		set := make([]int, 0, c.k)
		for j := 0; j < c.k; j++ {
			set = append(set, (idx+1+t+j)%n)
		}
		sets = append(sets, set)
	}
	return sets
}

var (
	_ codes.Code        = (*Code)(nil)
	_ codes.IntoEncoder = (*Code)(nil)
)
