// Wide-stripe Reed-Solomon over GF(2^16): RS16(k,m) is RS(k,m) with 16-bit
// symbols, lifting the k+m ≤ 256 field ceiling to the widths production
// systems run to cut storage overhead (k in the tens to hundreds, overhead
// m/k of a few percent). Shards hold little-endian-packed symbols, so the
// code plugs into every byte-shard consumer unchanged; sizes must be even.
package rs

import (
	"fmt"

	"repro/internal/codes"
	"repro/internal/matrix"
)

// Code16 is a systematic wide-stripe Reed-Solomon code with parameters
// (k, m) over GF(2^16).
type Code16 struct {
	*codes.Base16
	k, m int
}

// New16 constructs RS16(k,m). The Cauchy generator block makes the code MDS
// by construction, so the declared fault tolerance m needs no search.
func New16(k, m int) (*Code16, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("rs: invalid parameters k=%d m=%d", k, m)
	}
	if k+m > codes.MaxN16 {
		return nil, fmt.Errorf("rs: k+m = %d exceeds wide-code limit %d", k+m, codes.MaxN16)
	}
	gen := matrix.Identity16(k).Stack(matrix.Cauchy16(m, k))
	return &Code16{Base16: codes.NewBase16(gen, m), k: k, m: m}, nil
}

// Must16 constructs RS16(k,m) and panics on invalid parameters.
func Must16(k, m int) *Code16 {
	c, err := New16(k, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns "RS16(k,m)".
func (c *Code16) Name() string { return fmt.Sprintf("RS16(%d,%d)", c.k, c.m) }

// M returns the number of parity elements per row.
func (c *Code16) M() int { return c.m }

// RecoverySets returns candidate read sets for rebuilding element idx when
// it is the only erasure — the same data-heavy + cyclic-window families as
// RS(k,m) (see Code.RecoverySets), shared through recoverySets.
func (c *Code16) RecoverySets(idx int) [][]int {
	return recoverySets(c.N(), c.k, idx)
}

var (
	_ codes.Code              = (*Code16)(nil)
	_ codes.IntoEncoder       = (*Code16)(nil)
	_ codes.IntoReconstructor = (*Code16)(nil)
	_ codes.WideSymbolCode    = (*Code16)(nil)
)
