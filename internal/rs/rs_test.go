package rs

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	for _, p := range [][2]int{{0, 1}, {1, 0}, {-1, 3}, {200, 100}} {
		if _, err := New(p[0], p[1]); err == nil {
			t.Errorf("New(%d,%d) succeeded, want error", p[0], p[1])
		}
	}
	if _, err := New(6, 3); err != nil {
		t.Fatalf("New(6,3): %v", err)
	}
}

func TestMustPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Must(0,0) did not panic")
		}
	}()
	Must(0, 0)
}

func TestNameAndParams(t *testing.T) {
	c := Must(8, 4)
	if c.Name() != "RS(8,4)" {
		t.Fatalf("Name = %q", c.Name())
	}
	if c.K() != 8 || c.M() != 4 || c.N() != 12 {
		t.Fatalf("params wrong: k=%d m=%d n=%d", c.K(), c.M(), c.N())
	}
}

func TestMDSPropertyPaperConfigs(t *testing.T) {
	// Table I configurations: fault tolerance must equal m (MDS).
	for _, p := range [][2]int{{6, 3}, {8, 4}, {10, 5}} {
		c := Must(p[0], p[1])
		if got := c.FaultTolerance(); got != p[1] {
			t.Errorf("%s tolerance = %d, want %d (not MDS)", c.Name(), got, p[1])
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	for _, p := range [][2]int{{6, 3}, {8, 4}, {10, 5}, {3, 1}, {2, 2}} {
		c := Must(p[0], p[1])
		data := make([][]byte, c.K())
		for i := range data {
			data[i] = make([]byte, 97)
			rng.Read(data[i])
		}
		parity, err := c.Encode(data)
		if err != nil {
			t.Fatal(err)
		}
		full := append(append([][]byte{}, data...), parity...)
		// Erase m random elements, 50 trials.
		for trial := 0; trial < 50; trial++ {
			shards := make([][]byte, c.N())
			perm := rng.Perm(c.N())
			for i, s := range full {
				shards[i] = append([]byte(nil), s...)
			}
			for _, e := range perm[:c.M()] {
				shards[e] = nil
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("%s trial %d: %v", c.Name(), trial, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], full[i]) {
					t.Fatalf("%s trial %d shard %d mismatch", c.Name(), trial, i)
				}
			}
		}
	}
}

func TestRecoverySetsValid(t *testing.T) {
	c := Must(6, 3)
	for idx := 0; idx < c.N(); idx++ {
		sets := c.RecoverySets(idx)
		wantSets := c.N() - c.K() + 1 // data-heavy sets for parity + windows
		if idx < c.K() {
			wantSets = 2 * (c.N() - c.K()) // one per parity + windows
		}
		if len(sets) != wantSets {
			t.Fatalf("element %d: %d sets, want %d", idx, len(sets), wantSets)
		}
		for si, set := range sets {
			if len(set) != c.K() {
				t.Fatalf("element %d set %d has %d reads, want k=%d", idx, si, len(set), c.K())
			}
			seen := map[int]bool{idx: true}
			for _, e := range set {
				if seen[e] {
					t.Fatalf("element %d set %d repeats or includes target: %v", idx, si, set)
				}
				seen[e] = true
			}
			if !c.VerifySet(idx, set) {
				t.Fatalf("element %d set %d does not rebuild target: %v", idx, si, set)
			}
		}
	}
}

func TestRecoverySetsOutOfRangePanics(t *testing.T) {
	c := Must(4, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range did not panic")
		}
	}()
	c.RecoverySets(6)
}

func TestPropertyAnyKSubsetDecodes(t *testing.T) {
	// MDS: any k available elements determine all data. Sample random
	// k-subsets and reconstruct everything else.
	c := Must(5, 4)
	rng := rand.New(rand.NewSource(21))
	data := make([][]byte, 5)
	for i := range data {
		data[i] = make([]byte, 16)
		rng.Read(data[i])
	}
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		perm := r.Perm(c.N())
		shards := make([][]byte, c.N())
		for _, keep := range perm[:c.K()] {
			shards[keep] = append([]byte(nil), full[keep]...)
		}
		if err := c.Reconstruct(shards); err != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], full[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStorageOverhead(t *testing.T) {
	// Storage overhead is n/k; sanity-check the Google config (6,3) = 1.5×.
	c := Must(6, 3)
	if got := float64(c.N()) / float64(c.K()); got != 1.5 {
		t.Fatalf("overhead = %v, want 1.5", got)
	}
}

func BenchmarkEncodeRS63(b *testing.B) {
	c := Must(6, 3)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	b.SetBytes(6 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructRS63(b *testing.B) {
	c := Must(6, 3)
	data := make([][]byte, 6)
	for i := range data {
		data[i] = make([]byte, 1<<20)
	}
	parity, _ := c.Encode(data)
	full := append(append([][]byte{}, data...), parity...)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards := append([][]byte{}, full...)
		shards[2] = nil
		if err := c.Reconstruct(shards); err != nil {
			b.Fatal(err)
		}
	}
}
