// Package rs implements the systematic Reed-Solomon candidate code RS(k,m):
// k data elements and m parity elements per row, tolerating any m erasures
// (MDS). This is the "Reed-Solomon Code for Google" candidate of the EC-FRM
// paper (§II-C), equivalent in behaviour to Jerasure's Vandermonde RS.
//
// The generator is built from a Cauchy block, whose every square submatrix
// is invertible, so the MDS property holds by construction for any (k,m)
// with k+m ≤ 256.
package rs

import (
	"fmt"

	"repro/internal/codes"
	"repro/internal/matrix"
)

// Code is a systematic Reed-Solomon code with parameters (k, m).
type Code struct {
	*codes.Base
	k, m int
}

// New constructs RS(k,m). It returns an error when the parameters are out of
// the field's range or degenerate.
func New(k, m int) (*Code, error) {
	if k < 1 || m < 1 {
		return nil, fmt.Errorf("rs: invalid parameters k=%d m=%d", k, m)
	}
	if k+m > 256 {
		return nil, fmt.Errorf("rs: k+m = %d exceeds field size 256", k+m)
	}
	gen := matrix.Identity(k).Stack(matrix.Cauchy(m, k))
	return &Code{Base: codes.NewBase(gen), k: k, m: m}, nil
}

// Must constructs RS(k,m) and panics on invalid parameters. For tests and
// tables of known-good configurations.
func Must(k, m int) *Code {
	c, err := New(k, m)
	if err != nil {
		panic(err)
	}
	return c
}

// Name returns "RS(k,m)".
func (c *Code) Name() string { return fmt.Sprintf("RS(%d,%d)", c.k, c.m) }

// M returns the number of parity elements per row.
func (c *Code) M() int { return c.m }

// RecoverySets returns candidate read sets for rebuilding element idx when
// it is the only erasure. Every k-subset of the other n-1 elements works for
// an MDS code; enumerating all of them is exponential, so two linear
// families are offered:
//
//   - data-heavy sets: the other data elements plus one parity (one set per
//     parity; for a lost parity, just the k data elements). These maximize
//     overlap with a sequential read's direct accesses, so rebuilding costs
//     almost no extra I/O — the choice that keeps degraded read cost nearly
//     layout-independent (paper §VI-C, Figure 9a).
//   - cyclic windows: the k survivors following idx at stride 1 from offset
//     t. These give the planner genuinely different disk footprints to
//     balance load across.
func (c *Code) RecoverySets(idx int) [][]int {
	return recoverySets(c.N(), c.k, idx)
}

// recoverySets is the field-width-independent body of RecoverySets, shared
// by the GF(2^8) and GF(2^16) codes (the set structure depends only on the
// MDS property, not the symbol width).
func recoverySets(n, k, idx int) [][]int {
	if idx < 0 || idx >= n {
		panic(fmt.Sprintf("rs: element %d out of [0,%d)", idx, n))
	}
	var sets [][]int
	otherData := make([]int, 0, k)
	for j := 0; j < k && len(otherData) < k; j++ {
		if j != idx {
			otherData = append(otherData, j)
		}
	}
	if idx < k {
		// Lost data: other k-1 data + each parity in turn.
		for p := k; p < n; p++ {
			sets = append(sets, append(append([]int{}, otherData...), p))
		}
	} else {
		// Lost parity: recompute from the k data elements.
		sets = append(sets, otherData)
	}
	for t := 0; t < n-k; t++ {
		set := make([]int, 0, k)
		for j := 0; j < k; j++ {
			set = append(set, (idx+1+t+j)%n)
		}
		sets = append(sets, set)
	}
	return sets
}

var (
	_ codes.Code              = (*Code)(nil)
	_ codes.IntoEncoder       = (*Code)(nil)
	_ codes.IntoReconstructor = (*Code)(nil)
)
