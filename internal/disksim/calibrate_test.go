package disksim

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

func TestCalibrateRecoversKnownModel(t *testing.T) {
	// Synthesize samples from a known affine model with mild noise and
	// check the fit recovers it.
	const (
		positioning = 8 * time.Millisecond
		mbps        = 120.0
	)
	rng := rand.New(rand.NewSource(42))
	var samples []Sample
	for _, kb := range []int{4, 16, 64, 256, 1024, 4096} {
		for i := 0; i < 8; i++ {
			bytes := kb * 1024
			exact := positioning.Seconds() + float64(bytes)/(mbps*1e6)
			noisy := exact * (1 + 0.05*(2*rng.Float64()-1))
			samples = append(samples, Sample{bytes, time.Duration(noisy * float64(time.Second))})
		}
	}
	cfg, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if got := cfg.Positioning.Seconds(); math.Abs(got-positioning.Seconds()) > 0.25*positioning.Seconds() {
		t.Fatalf("Positioning = %v, want ~%v", cfg.Positioning, positioning)
	}
	if math.Abs(cfg.BandwidthMBps-mbps) > 0.15*mbps {
		t.Fatalf("BandwidthMBps = %v, want ~%v", cfg.BandwidthMBps, mbps)
	}
	if e := CalibrationError(cfg, samples); e > 0.08 {
		t.Fatalf("CalibrationError = %v, want <= 5%% noise + fit slack", e)
	}
}

func TestCalibrateExactFitHasZeroError(t *testing.T) {
	cfg0 := Config{Positioning: 2 * time.Millisecond, BandwidthMBps: 80}
	var samples []Sample
	for _, b := range []int{1 << 12, 1 << 16, 1 << 20} {
		lat := cfg0.Positioning.Seconds() + float64(b)/(cfg0.BandwidthMBps*1e6)
		samples = append(samples, Sample{b, time.Duration(lat * float64(time.Second))})
	}
	cfg, err := Calibrate(samples)
	if err != nil {
		t.Fatal(err)
	}
	if e := CalibrationError(cfg, samples); e > 1e-6 {
		t.Fatalf("exact samples should fit exactly, error = %v", e)
	}
	if cfg.PositioningJitter > 1e-6 || cfg.BandwidthJitter > 1e-6 {
		t.Fatalf("exact samples should fit with no jitter: %+v", cfg)
	}
}

func TestCalibrateDegenerateInputs(t *testing.T) {
	if _, err := Calibrate(nil); err == nil {
		t.Fatal("empty sample set must fail")
	}
	if _, err := Calibrate([]Sample{{4096, time.Millisecond}}); err == nil {
		t.Fatal("single sample must fail")
	}

	// One element size only: unidentifiable split, but still a valid config
	// that predicts the mean latency.
	same := []Sample{
		{1 << 20, 12 * time.Millisecond},
		{1 << 20, 14 * time.Millisecond},
		{1 << 20, 13 * time.Millisecond},
	}
	cfg, err := Calibrate(same)
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if e := CalibrationError(cfg, same); e > 0.10 {
		t.Fatalf("single-size calibration error %v too large", e)
	}

	// Latency shrinking with size (pure noise): slope clamp must keep the
	// config valid instead of producing a negative bandwidth.
	noisy := []Sample{
		{1 << 12, 10 * time.Millisecond},
		{1 << 20, 5 * time.Millisecond},
	}
	cfg, err = Calibrate(noisy)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BandwidthMBps <= 0 || cfg.Positioning < 0 {
		t.Fatalf("clamp failed: %+v", cfg)
	}
}

func TestCalibratedArrayPredictsMeasurement(t *testing.T) {
	// End-to-end: feed measurements into Calibrate, build an Array from the
	// result with jitter zeroed, and check single-access service time lands
	// on the measured latency within the documented bound.
	meas := []Sample{
		{64 * 1024, 3 * time.Millisecond},
		{256 * 1024, 6 * time.Millisecond},
		{1 << 20, 18 * time.Millisecond},
	}
	cfg, err := Calibrate(meas)
	if err != nil {
		t.Fatal(err)
	}
	cfg.PositioningJitter = 0
	cfg.BandwidthJitter = 0
	a, err := NewArray(1, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	bound := CalibrationError(cfg, meas)
	for _, m := range meas {
		got := a.DiskTime(0, 1, m.ElemBytes).Seconds()
		rel := math.Abs(got-m.Latency.Seconds()) / m.Latency.Seconds()
		if rel > bound+0.01 {
			t.Fatalf("ServiceTime(%d bytes) = %vs, measured %v: off by %.1f%% > bound %.1f%%",
				m.ElemBytes, got, m.Latency, rel*100, (bound+0.01)*100)
		}
	}
}
