package disksim

import (
	"testing"
	"time"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{Positioning: -time.Millisecond, BandwidthMBps: 100},
		{BandwidthMBps: 0},
		{BandwidthMBps: 100, PositioningJitter: 1.5},
		{BandwidthMBps: 100, BandwidthJitter: -0.1},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestNewArrayValidation(t *testing.T) {
	if _, err := NewArray(0, DefaultConfig(), 1); err == nil {
		t.Fatal("zero disks must fail")
	}
	if _, err := NewArray(4, Config{BandwidthMBps: -1}, 1); err == nil {
		t.Fatal("bad config must fail")
	}
	a := MustArray(16, DefaultConfig(), 1)
	if a.Disks() != 16 {
		t.Fatalf("Disks = %d", a.Disks())
	}
}

func TestMustArrayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustArray(0) did not panic")
		}
	}()
	MustArray(0, DefaultConfig(), 1)
}

func TestDiskTimeZeroLoad(t *testing.T) {
	a := MustArray(4, DefaultConfig(), 2)
	if got := a.DiskTime(0, 0, 1<<20); got != 0 {
		t.Fatalf("zero load took %v", got)
	}
}

func TestDiskTimeScalesWithLoad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PositioningJitter = 0
	cfg.BandwidthJitter = 0
	a := MustArray(1, cfg, 3)
	t1 := a.DiskTime(0, 1, 1e6)
	t4 := a.DiskTime(0, 4, 1e6)
	if t4 != 4*t1 {
		t.Fatalf("jitterless time not linear: %v vs 4×%v", t4, t1)
	}
	// 1 MB at 50 MB/s = 20 ms transfer + 15 ms positioning = 35 ms.
	want := 35 * time.Millisecond
	if t1 != want {
		t.Fatalf("t1 = %v, want %v", t1, want)
	}
}

func TestDiskTimePanics(t *testing.T) {
	a := MustArray(2, DefaultConfig(), 4)
	for name, fn := range map[string]func(){
		"badDisk": func() { a.DiskTime(2, 1, 1) },
		"negLoad": func() { a.DiskTime(0, -1, 1) },
		"negSize": func() { a.DiskTime(0, 1, -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestServeReadMaxOverDisks(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PositioningJitter = 0
	cfg.BandwidthJitter = 0
	a := MustArray(4, cfg, 5)
	// Loads {1,2,0,1}: bottleneck is the disk with 2 accesses.
	got := a.ServeRead([]int{1, 2, 0, 1}, 1e6)
	want := a.DiskTime(1, 2, 1e6)
	if got != want {
		t.Fatalf("ServeRead = %v, want %v (slowest disk)", got, want)
	}
	// All zero loads: zero time.
	if a.ServeRead([]int{0, 0, 0, 0}, 1e6) != 0 {
		t.Fatal("empty request must take zero time")
	}
}

func TestServeReadLoadsMismatchPanics(t *testing.T) {
	a := MustArray(4, DefaultConfig(), 6)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched loads did not panic")
		}
	}()
	a.ServeRead([]int{1, 2}, 1e6)
}

func TestJitterBounded(t *testing.T) {
	cfg := DefaultConfig()
	a := MustArray(1, cfg, 7)
	// Min possible: positioning×(1-0.4) + transfer at bw×1.1.
	minPos := float64(cfg.Positioning) * (1 - cfg.PositioningJitter)
	maxPos := float64(cfg.Positioning) * (1 + cfg.PositioningJitter)
	minXfer := 1e6 / (cfg.BandwidthMBps * 1e6 * (1 + cfg.BandwidthJitter)) * float64(time.Second)
	maxXfer := 1e6 / (cfg.BandwidthMBps * 1e6 * (1 - cfg.BandwidthJitter)) * float64(time.Second)
	for i := 0; i < 2000; i++ {
		got := float64(a.DiskTime(0, 1, 1e6))
		if got < minPos+minXfer-1 || got > maxPos+maxXfer+1 {
			t.Fatalf("sample %v outside [%v,%v]", time.Duration(got),
				time.Duration(minPos+minXfer), time.Duration(maxPos+maxXfer))
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []time.Duration {
		a := MustArray(3, DefaultConfig(), 99)
		var out []time.Duration
		for i := 0; i < 50; i++ {
			out = append(out, a.ServeRead([]int{1, 2, 1}, 1e6))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("run diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must (overwhelmingly) differ somewhere.
	c := MustArray(3, DefaultConfig(), 100)
	same := true
	for i := 0; i < 50; i++ {
		if c.ServeRead([]int{1, 2, 1}, 1e6) != a[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical timings")
	}
}

func TestSpeedMBps(t *testing.T) {
	if got := SpeedMBps(8e6, 80*time.Millisecond); got != 100 {
		t.Fatalf("SpeedMBps = %v, want 100", got)
	}
	if SpeedMBps(1, 0) != 0 {
		t.Fatal("zero duration must give zero speed")
	}
}

func TestLowerMaxLoadIsFaster(t *testing.T) {
	// The paper's core claim at the simulator level: a request spread
	// 1-element-per-disk beats one with a 2-element hot disk, on average.
	a := MustArray(10, DefaultConfig(), 8)
	var spread, hot time.Duration
	for i := 0; i < 500; i++ {
		spread += a.ServeRead([]int{1, 1, 1, 1, 1, 1, 1, 1, 0, 0}, 1e6)
		hot += a.ServeRead([]int{2, 2, 1, 1, 1, 1, 0, 0, 0, 0}, 1e6)
	}
	if spread >= hot {
		t.Fatalf("spread load %v not faster than hot load %v", spread, hot)
	}
}

func BenchmarkServeRead(b *testing.B) {
	a := MustArray(16, DefaultConfig(), 9)
	loads := []int{1, 1, 1, 2, 0, 1, 1, 1, 0, 1, 2, 1, 0, 1, 1, 1}
	for i := 0; i < b.N; i++ {
		a.ServeRead(loads, 1<<20)
	}
}

func TestHeterogeneousArray(t *testing.T) {
	if _, err := NewHeterogeneousArray(4, DefaultConfig(), 1, 1.5); err == nil {
		t.Fatal("spread ≥ 1 must fail")
	}
	if _, err := NewHeterogeneousArray(4, DefaultConfig(), 1, -0.1); err == nil {
		t.Fatal("negative spread must fail")
	}
	cfg := noJitter()
	a, err := NewHeterogeneousArray(8, cfg, 7, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	// Per-disk times must differ (factors fixed per disk) and be stable.
	t0 := a.DiskTime(0, 1, 1e6)
	t1 := a.DiskTime(1, 1, 1e6)
	if t0 == t1 {
		// Two disks could coincide by chance, but across 8 disks at least
		// one pair must differ.
		same := true
		for d := 1; d < 8; d++ {
			if a.DiskTime(d, 1, 1e6) != t0 {
				same = false
				break
			}
		}
		if same {
			t.Fatal("heterogeneous array produced identical disks")
		}
	}
	if a.DiskTime(0, 1, 1e6) != t0 {
		t.Fatal("per-disk factor not stable across calls (jitterless)")
	}
	// Spread 0 equals the homogeneous array.
	h, _ := NewHeterogeneousArray(3, cfg, 9, 0)
	plain := MustArray(3, cfg, 9)
	for d := 0; d < 3; d++ {
		if h.DiskTime(d, 2, 1e6) != plain.DiskTime(d, 2, 1e6) {
			t.Fatal("spread-0 heterogeneous differs from homogeneous")
		}
	}
	// Transfer time bounds: factor in [0.6, 1.4] of nominal.
	nominal := float64(1e6) / (cfg.BandwidthMBps * 1e6) * float64(time.Second)
	posT := float64(cfg.Positioning)
	for d := 0; d < 8; d++ {
		x := float64(a.DiskTime(d, 1, 1e6)) - posT
		if x < nominal/1.4-1 || x > nominal/0.6+1 {
			t.Fatalf("disk %d transfer %v outside heterogeneity bounds", d, time.Duration(x))
		}
	}
}
