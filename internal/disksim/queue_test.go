package disksim

import (
	"testing"
	"time"
)

// noJitter returns a deterministic config for exact-arithmetic tests.
func noJitter() Config {
	c := DefaultConfig()
	c.PositioningJitter = 0
	c.BandwidthJitter = 0
	return c
}

func TestSimulateQueuedValidation(t *testing.T) {
	a := MustArray(2, noJitter(), 1)
	if _, err := a.SimulateQueued([]Request{{ID: 0, Loads: []int{1}}}, 1e6); err == nil {
		t.Fatal("mismatched loads must fail")
	}
	if _, err := a.SimulateQueued([]Request{{ID: 0, Arrival: -1, Loads: []int{1, 0}}}, 1e6); err == nil {
		t.Fatal("negative arrival must fail")
	}
	out, err := a.SimulateQueued(nil, 1e6)
	if err != nil || len(out) != 0 {
		t.Fatal("empty simulation must succeed")
	}
}

func TestSimulateQueuedSingleRequestEqualsServeTime(t *testing.T) {
	a := MustArray(3, noJitter(), 2)
	per := a.DiskTime(0, 1, 1e6) // deterministic per-access time
	comps, err := a.SimulateQueued([]Request{{ID: 0, Loads: []int{1, 2, 0}}}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Latency() != 2*per {
		t.Fatalf("latency = %v, want %v (slowest disk has 2 accesses)", comps[0].Latency(), 2*per)
	}
}

func TestSimulateQueuedFIFOContention(t *testing.T) {
	// Two identical requests hitting the same single disk back to back:
	// the second waits for the first.
	a := MustArray(1, noJitter(), 3)
	per := a.DiskTime(0, 1, 1e6)
	comps, err := a.SimulateQueued([]Request{
		{ID: 0, Arrival: 0, Loads: []int{1}},
		{ID: 1, Arrival: 0, Loads: []int{1}},
	}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if comps[0].Finish != per {
		t.Fatalf("first finish %v, want %v", comps[0].Finish, per)
	}
	if comps[1].Finish != 2*per {
		t.Fatalf("second finish %v, want %v (queued)", comps[1].Finish, 2*per)
	}
	if comps[1].Latency() != 2*per {
		t.Fatalf("second latency %v includes no queueing", comps[1].Latency())
	}
}

func TestSimulateQueuedDisjointDisksNoContention(t *testing.T) {
	a := MustArray(2, noJitter(), 4)
	per := a.DiskTime(0, 1, 1e6)
	comps, err := a.SimulateQueued([]Request{
		{ID: 0, Arrival: 0, Loads: []int{1, 0}},
		{ID: 1, Arrival: 0, Loads: []int{0, 1}},
	}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.Latency() != per {
			t.Fatalf("request %d latency %v, want %v (no contention)", c.ID, c.Latency(), per)
		}
	}
}

func TestSimulateQueuedArrivalOrdering(t *testing.T) {
	// A late-arriving request must not be served before an earlier one on
	// the same disk, regardless of slice order.
	a := MustArray(1, noJitter(), 5)
	per := a.DiskTime(0, 1, 1e6)
	comps, err := a.SimulateQueued([]Request{
		{ID: 0, Arrival: per / 2, Loads: []int{1}},
		{ID: 1, Arrival: 0, Loads: []int{1}},
	}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	// comps sorted by ID: request 1 arrived first, finishes at per;
	// request 0 queues behind it.
	if comps[1].Finish != per {
		t.Fatalf("early request finish %v, want %v", comps[1].Finish, per)
	}
	if comps[0].Finish != 2*per {
		t.Fatalf("late request finish %v, want %v", comps[0].Finish, 2*per)
	}
}

func TestSummarize(t *testing.T) {
	comps := []Completion{
		{ID: 0, Start: 0, Finish: 10 * time.Millisecond},
		{ID: 1, Start: 0, Finish: 30 * time.Millisecond},
	}
	stats, err := Summarize(comps, []int{1e6, 2e6})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 2 || stats.MeanLatency != 20*time.Millisecond {
		t.Fatalf("stats wrong: %+v", stats)
	}
	if stats.P99Latency != 30*time.Millisecond {
		t.Fatalf("p99 = %v", stats.P99Latency)
	}
	if stats.MakespanTotal != 30*time.Millisecond {
		t.Fatalf("makespan = %v", stats.MakespanTotal)
	}
	if stats.ThroughputMBs != 100 {
		t.Fatalf("throughput = %v, want 100", stats.ThroughputMBs)
	}
	if _, err := Summarize(comps, []int{1}); err == nil {
		t.Fatal("mismatched payloads must fail")
	}
	empty, err := Summarize(nil, nil)
	if err != nil || empty.Requests != 0 {
		t.Fatal("empty summary")
	}
}

func TestQueueingAmplifiesImbalance(t *testing.T) {
	// Under concurrency, the balanced load profile must win by MORE than
	// its serial max-load ratio — queueing compounds the hot disk.
	a := MustArray(10, DefaultConfig(), 6)
	const n = 200
	mk := func(loads []int) []Request {
		reqs := make([]Request, n)
		for i := range reqs {
			// Open loop: arrivals every 5 ms — faster than a hot disk can
			// drain, slower than the balanced profile needs.
			reqs[i] = Request{ID: i, Arrival: time.Duration(i) * 5 * time.Millisecond, Loads: loads}
		}
		return reqs
	}
	balanced := []int{1, 1, 1, 1, 1, 1, 1, 1, 0, 0} // EC-FRM-like 8-elem read
	hot := []int{2, 2, 1, 1, 1, 1, 0, 0, 0, 0}      // standard-like
	payloads := make([]int, n)
	for i := range payloads {
		payloads[i] = 8e6
	}
	cb, err := a.SimulateQueued(mk(balanced), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := a.SimulateQueued(mk(hot), 1e6)
	if err != nil {
		t.Fatal(err)
	}
	sb, _ := Summarize(cb, payloads)
	sh, _ := Summarize(ch, payloads)
	if sb.MeanLatency >= sh.MeanLatency {
		t.Fatalf("balanced mean %v not below hot %v", sb.MeanLatency, sh.MeanLatency)
	}
	if sb.P99Latency >= sh.P99Latency {
		t.Fatalf("balanced p99 %v not below hot %v", sb.P99Latency, sh.P99Latency)
	}
}

func BenchmarkSimulateQueued(b *testing.B) {
	a := MustArray(10, DefaultConfig(), 7)
	reqs := make([]Request, 1000)
	for i := range reqs {
		reqs[i] = Request{ID: i, Arrival: time.Duration(i) * time.Millisecond,
			Loads: []int{1, 1, 1, 1, 1, 1, 1, 1, 0, 0}}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.SimulateQueued(reqs, 1<<20); err != nil {
			b.Fatal(err)
		}
	}
}
